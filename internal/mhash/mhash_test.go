package mhash

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyHash(t *testing.T) {
	var h Hash
	if !h.IsEmpty() {
		t.Fatal("zero Hash is not empty")
	}
	if h.Cardinality() != 0 {
		t.Fatalf("empty cardinality = %d", h.Cardinality())
	}
	acc := NewAccumulator([]byte("k"))
	if !acc.HashMultiset(nil).Equal(h) {
		t.Fatal("HashMultiset(nil) != zero Hash")
	}
}

func TestAddRemoveInverse(t *testing.T) {
	acc := NewAccumulator([]byte("key"))
	var h Hash
	h = acc.Add(h, []byte("a"))
	h = acc.Add(h, []byte("b"))
	h = acc.Remove(h, []byte("a"))
	want := acc.HashMultiset([][]byte{[]byte("b")})
	if !h.Equal(want) {
		t.Fatal("add/remove did not invert")
	}
	h = acc.Remove(h, []byte("b"))
	if !h.IsEmpty() {
		t.Fatal("removing all elements did not return to empty hash")
	}
}

func TestOrderIndependence(t *testing.T) {
	acc := NewAccumulator([]byte("key"))
	elems := [][]byte{[]byte("x"), []byte("y"), []byte("z"), []byte("x")}
	perm := [][]byte{[]byte("x"), []byte("x"), []byte("z"), []byte("y")}
	if !acc.HashMultiset(elems).Equal(acc.HashMultiset(perm)) {
		t.Fatal("multiset hash depends on order")
	}
}

func TestMultiplicityMatters(t *testing.T) {
	acc := NewAccumulator([]byte("key"))
	once := acc.HashMultiset([][]byte{[]byte("x")})
	thrice := acc.HashMultiset([][]byte{[]byte("x"), []byte("x"), []byte("x")})
	if once.Equal(thrice) {
		t.Fatal("multiplicity 1 and 3 collided")
	}
	// Even multiplicities cancel in the XOR accumulator; the cardinality
	// must still distinguish them.
	empty := Hash{}
	twice := acc.HashMultiset([][]byte{[]byte("x"), []byte("x")})
	if twice.Equal(empty) {
		t.Fatal("multiplicity 2 collided with empty multiset")
	}
	if !bytes.Equal(twice.acc[:], empty.acc[:]) {
		t.Fatal("XOR accumulator should cancel for even multiplicity")
	}
}

func TestKeySeparation(t *testing.T) {
	a := NewAccumulator([]byte("key-a"))
	b := NewAccumulator([]byte("key-b"))
	if a.ElementHash([]byte("e")).Equal(b.ElementHash([]byte("e"))) {
		t.Fatal("different keys produced equal element hashes")
	}
}

func TestReplace(t *testing.T) {
	acc := NewAccumulator([]byte("key"))
	h := acc.HashMultiset([][]byte{[]byte("old"), []byte("other")})
	h = acc.Replace(h, []byte("old"), []byte("new"))
	want := acc.HashMultiset([][]byte{[]byte("new"), []byte("other")})
	if !h.Equal(want) {
		t.Fatal("Replace != remove+add semantics")
	}
}

func TestCombineSubtract(t *testing.T) {
	acc := NewAccumulator([]byte("key"))
	left := acc.HashMultiset([][]byte{[]byte("a"), []byte("b")})
	right := acc.HashMultiset([][]byte{[]byte("c")})
	union := left.Combine(right)
	want := acc.HashMultiset([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if !union.Equal(want) {
		t.Fatal("Combine != multiset union")
	}
	if !union.Subtract(right).Equal(left) {
		t.Fatal("Subtract did not invert Combine")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	acc := NewAccumulator([]byte("key"))
	h := acc.HashMultiset([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	dec, err := DecodeHash(h.Encode())
	if err != nil {
		t.Fatalf("DecodeHash: %v", err)
	}
	if !dec.Equal(h) {
		t.Fatal("encode/decode round trip mismatch")
	}
}

func TestDecodeHashRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, 1, EncodedSize - 1, EncodedSize + 1} {
		if _, err := DecodeHash(make([]byte, n)); !errors.Is(err, ErrDecode) {
			t.Fatalf("len %d: want ErrDecode, got %v", n, err)
		}
	}
}

func TestStringIsStable(t *testing.T) {
	acc := NewAccumulator([]byte("key"))
	h := acc.ElementHash([]byte("e"))
	if h.String() == "" || h.String() != h.String() {
		t.Fatal("String not stable")
	}
}

// Property: hashing a shuffled multiset yields the same hash.
func TestQuickOrderInvariance(t *testing.T) {
	acc := NewAccumulator([]byte("quick-key"))
	prop := func(elems [][]byte, seed int64) bool {
		h1 := acc.HashMultiset(elems)
		shuffled := make([][]byte, len(elems))
		copy(shuffled, elems)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return acc.HashMultiset(shuffled).Equal(h1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: incremental add/remove over a random sequence agrees with the
// from-scratch hash of the surviving multiset.
func TestQuickIncrementalAgreesWithReference(t *testing.T) {
	acc := NewAccumulator([]byte("quick-key"))
	prop := func(elems [][]byte, removeMask uint32) bool {
		var h Hash
		for _, e := range elems {
			h = acc.Add(h, e)
		}
		var survivors [][]byte
		for i, e := range elems {
			if removeMask&(1<<(uint(i)%32)) != 0 && i < 32 {
				h = acc.Remove(h, e)
			} else {
				survivors = append(survivors, e)
			}
		}
		return h.Equal(acc.HashMultiset(survivors))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode is the identity.
func TestQuickEncodeDecode(t *testing.T) {
	acc := NewAccumulator([]byte("quick-key"))
	prop := func(elems [][]byte) bool {
		h := acc.HashMultiset(elems)
		dec, err := DecodeHash(h.Encode())
		return err == nil && dec.Equal(h)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
