// Command segshare-audit verifies a SeGShare tamper-evident audit log
// offline: hash-chain integrity, record authenticity, checkpoint MACs,
// and monotonic-counter continuity. With the operator's root key (SK_r,
// obtained through the §V-F replication protocol) it can also decrypt
// and dump every record.
//
// Usage:
//
//	segshare-audit verify -data ./data/audit -root <hex SK_r> [-expect-counter N]
//	segshare-audit dump   -data ./data/audit -root <hex SK_r>
//
// The -expect-counter value (the enclave's live audit counter, served at
// /debug/audit/head) distinguishes the current log from a stale but
// internally consistent copy: without it, a whole-log rollback to an
// older prefix is undetectable offline.
//
// Exit status: 0 on success, 1 on usage or I/O errors, 2 when the log
// fails verification.
package main

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"segshare"
	"segshare/internal/audit"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "segshare-audit:", err)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	if len(args) < 1 {
		return 1, errors.New("usage: segshare-audit verify|dump [flags]")
	}
	cmd := args[0]
	switch cmd {
	case "verify", "dump":
	default:
		return 1, fmt.Errorf("unknown command %q (want verify or dump)", cmd)
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		dataDir    = fs.String("data", "", "audit store directory (e.g. ./data/audit)")
		rootHex    = fs.String("root", "", "hex-encoded root key SK_r; audit keys are derived from it")
		rootFile   = fs.String("root-file", "", "file holding the hex-encoded root key (alternative to -root)")
		expCounter = fs.Uint64("expect-counter", 0, "enclave monotonic counter the final checkpoint must carry (from /debug/audit/head)")
		expRecords = fs.Uint64("expect-records", 0, "exact number of records the log must contain")
		expHead    = fs.String("expect-head", "", "hex chain head the log must end on (from /debug/audit/head)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return 1, nil // flag package already printed the error
	}
	if *dataDir == "" {
		return 1, errors.New("-data is required")
	}

	rootKey, err := loadRootKey(*rootHex, *rootFile)
	if err != nil {
		return 1, err
	}
	keys, err := audit.DeriveKeys(rootKey)
	if err != nil {
		return 1, err
	}
	backend, err := segshare.NewDiskStore(*dataDir)
	if err != nil {
		return 1, err
	}

	opts := audit.VerifyOptions{
		ExpectCounter: *expCounter,
		ExpectRecords: *expRecords,
		ExpectHead:    *expHead,
	}
	if cmd == "dump" {
		opts.Dump = os.Stdout
	}
	res, err := audit.Verify(backend, keys, opts)
	if err != nil {
		return 2, fmt.Errorf("verification FAILED: %w", err)
	}
	out, _ := json.MarshalIndent(res, "", "  ")
	fmt.Fprintf(os.Stderr, "verification OK\n%s\n", out)
	return 0, nil
}

// loadRootKey decodes SK_r from the flag value or a file.
func loadRootKey(hexVal, file string) ([]byte, error) {
	switch {
	case hexVal != "" && file != "":
		return nil, errors.New("-root and -root-file are mutually exclusive")
	case hexVal == "" && file == "":
		return nil, errors.New("one of -root or -root-file is required")
	case file != "":
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		hexVal = strings.TrimSpace(string(raw))
	}
	key, err := hex.DecodeString(hexVal)
	if err != nil {
		return nil, fmt.Errorf("root key is not valid hex: %v", err)
	}
	if len(key) == 0 {
		return nil, errors.New("root key is empty")
	}
	return key, nil
}
