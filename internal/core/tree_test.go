package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"segshare/internal/acl"
	"segshare/internal/fspath"
)

// TestTreeConsistencyUnderRandomOps drives the trusted file manager with
// a long random operation sequence (creates, updates, permission changes,
// moves, removals, directory creation) and after every operation verifies
// that EVERY reachable file still validates against the incremental
// rollback tree. This is the incremental-vs-recomputed equivalence check
// the §V-D optimizations must maintain.
func TestTreeConsistencyUnderRandomOps(t *testing.T) {
	fx := newFMFixture(t, fmOptions{rollback: true, guard: GuardCounter})
	fm := fx.fm
	rng := rand.New(rand.NewSource(42))

	type node struct {
		path  fspath.Path
		isDir bool
	}
	dirs := []node{{path: fspath.Root, isDir: true}}
	var files []node
	content := func(i int) []byte { return []byte(fmt.Sprintf("content-%d", i)) }

	validateAll := func(step int) {
		t.Helper()
		for _, f := range files {
			if _, err := fm.readContent(f.path); err != nil {
				t.Fatalf("step %d: validate %s: %v", step, f.path, err)
			}
			if _, err := fm.readACL(f.path); err != nil {
				t.Fatalf("step %d: validate ACL %s: %v", step, f.path, err)
			}
		}
		for _, d := range dirs {
			if _, err := fm.readDir(d.path); err != nil {
				t.Fatalf("step %d: validate dir %s: %v", step, d.path, err)
			}
		}
	}

	const steps = 120
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 3: // create a file in a random directory
			dir := dirs[rng.Intn(len(dirs))]
			child, err := dir.path.ChildFile(fmt.Sprintf("f%d", step))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fm.writeContent(child, content(step), ownedACL(1)); err != nil {
				t.Fatalf("step %d: create %s: %v", step, child, err)
			}
			files = append(files, node{path: child})

		case op < 5: // update a random file
			if len(files) == 0 {
				continue
			}
			f := files[rng.Intn(len(files))]
			if _, err := fm.writeContent(f.path, content(step), nil); err != nil {
				t.Fatalf("step %d: update %s: %v", step, f.path, err)
			}

		case op < 6: // create a subdirectory
			dir := dirs[rng.Intn(len(dirs))]
			if dir.path.Depth() >= 4 {
				continue
			}
			child, err := dir.path.ChildDir(fmt.Sprintf("d%d", step))
			if err != nil {
				t.Fatal(err)
			}
			if err := fm.createDir(child, ownedACL(1)); err != nil {
				t.Fatalf("step %d: mkdir %s: %v", step, child, err)
			}
			dirs = append(dirs, node{path: child, isDir: true})

		case op < 8: // change a random file's ACL
			if len(files) == 0 {
				continue
			}
			f := files[rng.Intn(len(files))]
			a, err := fm.readACL(f.path)
			if err != nil {
				t.Fatalf("step %d: readACL: %v", step, err)
			}
			a.SetPermission(acl.GroupID(rng.Intn(50)+2), acl.PermRead)
			if err := fm.writeACL(f.path, a); err != nil {
				t.Fatalf("step %d: writeACL: %v", step, err)
			}

		case op < 9: // move a random file to a random directory
			if len(files) == 0 {
				continue
			}
			i := rng.Intn(len(files))
			dir := dirs[rng.Intn(len(dirs))]
			dst, err := dir.path.ChildFile(fmt.Sprintf("m%d", step))
			if err != nil {
				t.Fatal(err)
			}
			if err := fm.movePath(files[i].path, dst); err != nil {
				t.Fatalf("step %d: move %s -> %s: %v", step, files[i].path, dst, err)
			}
			files[i].path = dst

		default: // remove a random file
			if len(files) == 0 {
				continue
			}
			i := rng.Intn(len(files))
			if err := fm.removePath(files[i].path, true); err != nil {
				t.Fatalf("step %d: remove %s: %v", step, files[i].path, err)
			}
			files = append(files[:i], files[i+1:]...)
		}
		if step%10 == 9 {
			validateAll(step)
		}
	}
	validateAll(steps)
	if len(files) == 0 {
		t.Log("note: random walk ended with zero files; consider another seed")
	}
}

// TestGroupStoreTreeConsistency exercises the flat group-store tree the
// same way: many member-list updates, then every list still validates.
func TestGroupStoreTreeConsistency(t *testing.T) {
	fx := newFMFixture(t, fmOptions{rollback: true, guard: GuardProtectedMemory})
	fm := fx.fm
	rng := rand.New(rand.NewSource(7))

	users := make([]acl.UserID, 30)
	for i := range users {
		users[i] = acl.UserID(fmt.Sprintf("user-%02d", i))
	}
	for step := 0; step < 150; step++ {
		u := users[rng.Intn(len(users))]
		ml, err := fm.readMemberList(u)
		if err != nil {
			ml = &acl.MemberList{}
		}
		if rng.Intn(3) == 0 && len(ml.Groups) > 0 {
			ml.Remove(ml.Groups[rng.Intn(len(ml.Groups))])
		} else {
			ml.Add(acl.GroupID(rng.Intn(100) + 1))
		}
		if err := fm.writeMemberList(u, ml); err != nil {
			t.Fatalf("step %d: write member list: %v", step, err)
		}
	}
	for _, u := range users {
		if _, err := fm.readMemberList(u); err != nil && !isNotFound(err) {
			t.Fatalf("validate %s: %v", u, err)
		}
	}
}

func isNotFound(err error) bool { return errors.Is(err, ErrNotFound) }
