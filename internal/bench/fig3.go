package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"

	"segshare/internal/baseline/plaindav"
	"segshare/internal/netsim"
)

// Experiment E1 — paper Fig. 3: mean latency of uploads and downloads of
// files of increasing size on SeGShare vs the two plaintext WebDAV
// baselines. The paper used 1 MB–200 MB on Azure; defaults here are
// scaled to keep `go test -bench` minutes-fast, and cmd/segshare-bench
// accepts the full sizes.

// Fig3Config parameterises E1.
type Fig3Config struct {
	// Sizes are the file sizes in bytes.
	Sizes []int
	// Runs per point.
	Runs int
	// Network optionally simulates the paper's inter-region link.
	Network netsim.Profile
}

// DefaultFig3 is the scaled-down default sweep.
func DefaultFig3() Fig3Config {
	return Fig3Config{
		Sizes: []int{64 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20},
		Runs:  5,
	}
}

// Fig3Row is one (server, size) measurement pair.
type Fig3Row struct {
	Server    string
	SizeBytes int
	Upload    Stat
	Download  Stat
}

// RunFig3 executes the sweep.
func RunFig3(cfg Fig3Config) ([]Fig3Row, error) {
	var rows []Fig3Row

	// SeGShare with all default features off (matching the paper's main
	// Fig. 3 configuration: extensions measured separately in Fig. 5).
	env, err := NewEnv(EnvConfig{Network: cfg.Network})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	client, err := env.NewClient("bench-user")
	if err != nil {
		return nil, err
	}
	for _, size := range cfg.Sizes {
		payload := randomPayload(size)
		path := fmt.Sprintf("/fig3-%d.bin", size)
		up, err := measure(cfg.Runs, func() error { return client.Upload(path, payload) })
		if err != nil {
			return nil, fmt.Errorf("segshare upload %d: %w", size, err)
		}
		down, err := measure(cfg.Runs, func() error {
			return client.DownloadTo(path, io.Discard)
		})
		if err != nil {
			return nil, fmt.Errorf("segshare download %d: %w", size, err)
		}
		rows = append(rows, Fig3Row{Server: "segshare", SizeBytes: size, Upload: up, Download: down})
	}

	for _, profile := range []plaindav.Profile{plaindav.ProfileApache, plaindav.ProfileNginx} {
		baseline, err := NewPlainDAV(profile, cfg.Network)
		if err != nil {
			return nil, err
		}
		for _, size := range cfg.Sizes {
			payload := randomPayload(size)
			url := fmt.Sprintf("%s/fig3-%d.bin", baseline.Base, size)
			up, err := measure(cfg.Runs, func() error { return DAVPut(baseline.Client, url, payload) })
			if err != nil {
				baseline.Close()
				return nil, fmt.Errorf("%s upload %d: %w", profile, size, err)
			}
			down, err := measure(cfg.Runs, func() error { return DAVGet(baseline.Client, url) })
			if err != nil {
				baseline.Close()
				return nil, fmt.Errorf("%s download %d: %w", profile, size, err)
			}
			rows = append(rows, Fig3Row{Server: profile.String(), SizeBytes: size, Upload: up, Download: down})
		}
		baseline.Close()
	}
	return rows, nil
}

func randomPayload(size int) []byte {
	payload := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(size)))
	rng.Read(payload)
	return payload
}

func DAVPut(client *http.Client, url string, payload []byte) error {
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("PUT status %d", resp.StatusCode)
	}
	return nil
}

func DAVGet(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET status %d", resp.StatusCode)
	}
	return nil
}
