package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"segshare"
)

// clientFixture issues real credential files and starts a live server so
// the CLI paths run end to end.
func clientFixture(t *testing.T) (addr, caPath, certPath, keyPath string) {
	t.Helper()
	dir := t.TempDir()
	authority, err := segshare.NewCA("cli CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := segshare.NewPlatform(segshare.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := segshare.ServerConfig{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: segshare.NewMemoryStore(),
		GroupStore:   segshare.NewMemoryStore(),
	}
	server, err := segshare.NewServer(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	if err := segshare.Provision(authority, platform, server, cfg, []string{"localhost"}); err != nil {
		t.Fatal(err)
	}
	listenAddr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := authority.IssueClientCertificate(segshare.Identity{UserID: "alice"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	caPath = filepath.Join(dir, "ca.pem")
	certPath = filepath.Join(dir, "cert.pem")
	keyPath = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(caPath, authority.CertificatePEM(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(certPath, cred.CertPEM, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyPath, cred.KeyPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	return listenAddr.String(), caPath, certPath, keyPath
}

func TestExecuteCommands(t *testing.T) {
	addr, caPath, certPath, keyPath := clientFixture(t)
	dir := t.TempDir()
	localIn := filepath.Join(dir, "in.txt")
	localOut := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(localIn, []byte("cli payload"), 0o644); err != nil {
		t.Fatal(err)
	}

	exec := func(args ...string) error {
		return execute(addr, caPath, certPath, keyPath, "localhost", args)
	}
	steps := [][]string{
		{"whoami"},
		{"mkdir", "/d/"},
		{"put", "/d/f", localIn},
		{"get", "/d/f", localOut},
		{"ls", "/d/"},
		{"share", "/d/f", "user:bob", "r"},
		{"inherit", "/d/f", "on"},
		{"group-add", "bob", "team"},
		{"group-rm", "bob", "team"},
		{"group-del", "team"},
		{"mv", "/d/f", "/d/g"},
		{"rm", "/d/g"},
	}
	for _, step := range steps {
		if err := exec(step...); err != nil {
			t.Fatalf("%v: %v", step, err)
		}
	}
	got, err := os.ReadFile(localOut)
	if err != nil || string(got) != "cli payload" {
		t.Fatalf("downloaded file = %q, %v", got, err)
	}

	// Error paths.
	if err := exec(); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := exec("bogus"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := exec("put", "/x"); err == nil {
		t.Fatal("put with missing args accepted")
	}
	if err := execute(addr, filepath.Join(dir, "missing.pem"), certPath, keyPath, "localhost", []string{"whoami"}); err == nil {
		t.Fatal("missing CA file accepted")
	}
}
