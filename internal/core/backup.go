package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"segshare/internal/ca"
	"segshare/internal/rollback"
)

// Backup and restoration (paper §V-G). Backing up is the cloud provider's
// job: it copies the encrypted objects on disk (see store.Copy). If the
// enclave that reads a restored backup is the same (same measurement,
// same platform), it possesses the decryption keys; a different enclave
// needs the replication protocol of §V-F.
//
// Restoration interacts with whole-file-system rollback protection: a
// restored (older) state fails the root-guard check by design. The CA can
// authorize the restored state with a signed reset message; the enclave
// verifies the signature with its hard-coded CA key, checks that the
// restored root files are internally consistent, and rebinds the guards
// (overwriting protected memory, or rewriting the root token with the
// counter's current value).

// resetState carries the outstanding reset challenge.
type resetState struct {
	mu    sync.Mutex
	nonce []byte
}

// ResetChallenge returns a fresh nonce the CA must sign to authorize a
// restoration. Each challenge can be consumed at most once.
func (s *Server) ResetChallenge() ([]byte, error) {
	nonce := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("segshare: reset nonce: %w", err)
	}
	s.reset.mu.Lock()
	defer s.reset.mu.Unlock()
	s.reset.nonce = nonce
	out := make([]byte, len(nonce))
	copy(out, nonce)
	return out, nil
}

// AcceptReset verifies a CA signature over the outstanding challenge and,
// on success, re-validates and re-binds the root state of both stores.
func (s *Server) AcceptReset(signature []byte) error {
	s.reset.mu.Lock()
	nonce := s.reset.nonce
	s.reset.nonce = nil
	s.reset.mu.Unlock()
	if nonce == nil {
		return errors.New("segshare: no outstanding reset challenge")
	}
	if !ca.VerifyReset(s.caPub, nonce, signature) {
		return errors.New("segshare: invalid reset signature")
	}
	unlock := s.locks.wholeTree(nil)
	defer unlock()
	// The operator restored arbitrary store state; everything cached from
	// the previous state is suspect.
	s.fm.caches.flushAll()
	// Finish any operation interrupted by the crash the operator is
	// recovering from. The restored counter state is behind the live one
	// by construction, so the strict tail bound cannot hold here.
	if err := s.fm.recoverJournal(recoverOpts{strict: false, validate: false}); err != nil {
		return err
	}
	if err := s.fm.rebindRoot(s.fm.content); err != nil {
		return err
	}
	return s.fm.rebindRoot(s.fm.group)
}

// rebindRoot checks that a namespace's restored root file is internally
// consistent and rebinds the guard to it.
func (fm *fileManager) rebindRoot(ns *namespace) error {
	if !fm.rollbackOn {
		return nil
	}
	hdr, body, err := fm.getBlob(ns, ns.rootName)
	if err != nil {
		return err
	}
	recomputed := fm.hasher.InnerMain(treeID(ns, ns.rootName), rollback.ContentDigest(body), &hdr.Buckets)
	if recomputed != hdr.Main {
		return fmt.Errorf("%w: restored root of %s is inconsistent", ErrRollback, ns.kind)
	}
	if cg, ok := ns.guard.(*rollback.CounterGuard); ok {
		// Overwrite the stored counter value with the TEE's current one
		// (paper §V-G).
		hdr.Token = cg.CurrentToken()
		if err := fm.putBlob(ns, ns.rootName, hdr, body); err != nil {
			return err
		}
	}
	return ns.guard.Reset(hdr.Main, hdr.Token)
}
