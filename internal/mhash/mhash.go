// Package mhash implements incremental multiset hashes following the
// MSet-XOR-Hash construction of Clarke et al. (ASIACRYPT 2003), the
// construction SeGShare's rollback-protection extension uses (paper §V-D,
// §VI).
//
// A multiset hash maps a multiset of byte strings to a fixed-size digest
// such that:
//
//   - the digest is independent of insertion order (commutative),
//   - elements can be added and removed incrementally in O(1),
//   - equality of two digests implies (computationally) equality of the
//     underlying multisets.
//
// MSet-XOR-Hash keeps the XOR of HMAC_K(element) over all elements plus the
// multiset's cardinality. XOR makes addition and removal the same cheap
// operation; the cardinality distinguishes multisets whose XORs collide
// through even multiplicities.
package mhash

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// DigestSize is the size in bytes of the XOR accumulator.
const DigestSize = sha256.Size

// EncodedSize is the size in bytes of an encoded Hash (accumulator plus
// cardinality).
const EncodedSize = DigestSize + 8

// ErrDecode is returned when decoding an encoded Hash of the wrong length.
var ErrDecode = errors.New("mhash: invalid encoded multiset hash")

// Hash is an incremental multiset hash value. The zero value is the hash
// of the empty multiset. Hash values are comparable only via Equal (or
// exact struct equality); they are tied to the key used by the Accumulator
// that produced them.
type Hash struct {
	acc  [DigestSize]byte
	card uint64
}

// Cardinality returns the number of elements (with multiplicity) in the
// hashed multiset. A removal without a matching addition underflows the
// cardinality and will never compare Equal to any honestly built hash.
func (h Hash) Cardinality() uint64 { return h.card }

// IsEmpty reports whether h is the hash of the empty multiset.
func (h Hash) IsEmpty() bool { return h == Hash{} }

// Equal reports whether two multiset hashes are equal in constant time.
func (h Hash) Equal(other Hash) bool {
	v := subtle.ConstantTimeCompare(h.acc[:], other.acc[:])
	if h.card == other.card {
		v &= 1
	} else {
		v = 0
	}
	return v == 1
}

// Combine returns the hash of the multiset union of the two operands.
func (h Hash) Combine(other Hash) Hash {
	out := Hash{card: h.card + other.card}
	for i := range out.acc {
		out.acc[i] = h.acc[i] ^ other.acc[i]
	}
	return out
}

// Subtract returns the hash of the multiset difference h minus other.
// The caller must know that other is a sub-multiset of h; otherwise the
// result will not match any honestly built hash.
func (h Hash) Subtract(other Hash) Hash {
	out := Hash{card: h.card - other.card}
	for i := range out.acc {
		out.acc[i] = h.acc[i] ^ other.acc[i]
	}
	return out
}

// Encode serialises h into a fixed-size byte string.
func (h Hash) Encode() []byte {
	out := make([]byte, EncodedSize)
	copy(out, h.acc[:])
	binary.BigEndian.PutUint64(out[DigestSize:], h.card)
	return out
}

// String implements fmt.Stringer with a short hex prefix for logs.
func (h Hash) String() string {
	return fmt.Sprintf("mset(%x…,n=%d)", h.acc[:4], h.card)
}

// DecodeHash parses a byte string produced by Encode.
func DecodeHash(b []byte) (Hash, error) {
	if len(b) != EncodedSize {
		return Hash{}, ErrDecode
	}
	var h Hash
	copy(h.acc[:], b[:DigestSize])
	h.card = binary.BigEndian.Uint64(b[DigestSize:])
	return h, nil
}

// Accumulator computes multiset hashes under a fixed secret key. The key
// is what makes the hash unforgeable to parties outside the enclave; in
// SeGShare it is derived from the root key SK_r. An Accumulator is safe
// for concurrent use.
type Accumulator struct {
	key []byte
}

// NewAccumulator constructs an accumulator over key. The key is copied.
func NewAccumulator(key []byte) *Accumulator {
	k := make([]byte, len(key))
	copy(k, key)
	return &Accumulator{key: k}
}

// ElementHash returns the hash of the singleton multiset {element}.
func (a *Accumulator) ElementHash(element []byte) Hash {
	mac := hmac.New(sha256.New, a.key)
	mac.Write(element)
	var h Hash
	copy(h.acc[:], mac.Sum(nil))
	h.card = 1
	return h
}

// Add returns the hash of the multiset with element added.
func (a *Accumulator) Add(h Hash, element []byte) Hash {
	return h.Combine(a.ElementHash(element))
}

// Remove returns the hash of the multiset with one occurrence of element
// removed. Removing an element not present produces a hash that never
// equals an honestly built one (the cardinality underflow and XOR residue
// both mismatch).
func (a *Accumulator) Remove(h Hash, element []byte) Hash {
	return h.Subtract(a.ElementHash(element))
}

// Replace returns the hash with one occurrence of oldElement replaced by
// newElement. This is the O(1) update SeGShare performs on each inner node
// of the rollback tree when a child's hash changes (paper §V-D).
func (a *Accumulator) Replace(h Hash, oldElement, newElement []byte) Hash {
	return a.Add(a.Remove(h, oldElement), newElement)
}

// HashMultiset hashes a full multiset from scratch. It is the reference
// (non-incremental) path used by validation and tests.
func (a *Accumulator) HashMultiset(elements [][]byte) Hash {
	var h Hash
	for _, e := range elements {
		h = a.Add(h, e)
	}
	return h
}
