package bench

import (
	"fmt"

	"segshare/internal/netsim"
)

// Experiments E2–E4 — paper §VII-B second/third/fourth experiments and
// Fig. 4: latency of membership and permission additions/revocations as a
// function of how many memberships (resp. permission entries) already
// exist. The paper's headline claims: ~154 ms flat for first-group
// operations, and only a negligible logarithmic dependence up to 1000
// pre-existing entries.

// Fig4Config parameterises the sweep.
type Fig4Config struct {
	// Counts are the numbers of pre-existing memberships/permissions.
	Counts []int
	// Runs per point.
	Runs int
}

// DefaultFig4 matches the paper's x-axis (powers of two up to 1000),
// scaled for test time.
func DefaultFig4() Fig4Config {
	return Fig4Config{Counts: []int{0, 1, 10, 100, 1000}, Runs: 10}
}

// Fig4Row is one (operation, pre-existing count) measurement.
type Fig4Row struct {
	Op          string // memb-add | memb-revoke | perm-add | perm-revoke
	Preexisting int
	Latency     Stat
}

// RunFig4Membership measures add_u/rmv_u with pre-populated member lists
// (E3).
func RunFig4Membership(cfg Fig4Config) ([]Fig4Row, error) {
	env, err := NewEnv(EnvConfig{})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	owner, err := env.NewClient("owner")
	if err != nil {
		return nil, err
	}

	var rows []Fig4Row
	for _, count := range cfg.Counts {
		subject := fmt.Sprintf("subject-%d", count)
		direct := env.Direct("owner")
		for i := 0; i < count; i++ {
			if err := direct.AddUser(subject, fmt.Sprintf("pre-%d-%d", count, i)); err != nil {
				return nil, fmt.Errorf("prepopulate membership %d: %w", i, err)
			}
		}
		group := fmt.Sprintf("bench-%d", count)
		// Create the measured group once so the measured operation is a
		// pure membership update, not group creation.
		if err := direct.AddUser("owner", group); err != nil {
			return nil, err
		}

		add, err := measure(cfg.Runs, func() error {
			return owner.AddUser(subject, group)
		})
		if err != nil {
			return nil, fmt.Errorf("memb-add @%d: %w", count, err)
		}
		// Ensure present before each revoke; the measured op is the
		// revoke itself, so re-add between runs inside the closure would
		// pollute it. Alternate instead: measure revoke with a re-add
		// after, subtracting nothing — the re-add happens outside timing
		// via measure's per-run structure (add is idempotent when already
		// a member, so the sequence below keeps state consistent).
		revoke, err := measure(cfg.Runs, func() error {
			if err := owner.AddUser(subject, group); err != nil {
				return err
			}
			return owner.RemoveUser(subject, group)
		})
		if err != nil {
			return nil, fmt.Errorf("memb-revoke @%d: %w", count, err)
		}
		// The revoke closure contains an add+remove pair; report the pair
		// latency minus the measured add latency as the revoke estimate.
		revoke = subtractStat(revoke, add)

		rows = append(rows,
			Fig4Row{Op: "memb-add", Preexisting: count, Latency: add},
			Fig4Row{Op: "memb-revoke", Preexisting: count, Latency: revoke},
		)
	}
	return rows, nil
}

// subtractStat estimates the second half of a paired measurement.
func subtractStat(pair, first Stat) Stat {
	mean := pair.Mean - first.Mean
	if mean < 0 {
		mean = 0
	}
	return Stat{Mean: mean, Std: pair.Std, N: pair.N}
}

// RunFig4Permission measures set_p additions/revocations with
// pre-populated ACLs (E4).
func RunFig4Permission(cfg Fig4Config) ([]Fig4Row, error) {
	env, err := NewEnv(EnvConfig{})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	owner, err := env.NewClient("owner")
	if err != nil {
		return nil, err
	}

	var rows []Fig4Row
	for _, count := range cfg.Counts {
		path := fmt.Sprintf("/perm-target-%d", count)
		direct := env.Direct("owner")
		if err := direct.Upload(path, []byte("permission target")); err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			// Default groups auto-create, keeping setup fast.
			if err := direct.SetPermission(path, fmt.Sprintf("user:pre-%d-%d", count, i), "r"); err != nil {
				return nil, fmt.Errorf("prepopulate ACL %d: %w", i, err)
			}
		}

		add, err := measure(cfg.Runs, func() error {
			return owner.SetPermission(path, "user:bench", "rw")
		})
		if err != nil {
			return nil, fmt.Errorf("perm-add @%d: %w", count, err)
		}
		revoke, err := measure(cfg.Runs, func() error {
			return owner.SetPermission(path, "user:bench", "none")
		})
		if err != nil {
			return nil, fmt.Errorf("perm-revoke @%d: %w", count, err)
		}
		rows = append(rows,
			Fig4Row{Op: "perm-add", Preexisting: count, Latency: add},
			Fig4Row{Op: "perm-revoke", Preexisting: count, Latency: revoke},
		)
	}
	return rows, nil
}

// RunMembershipFirstGroup is E2: add/revoke a fresh user to/from their
// first group, the paper's 154.05 ms / 153.40 ms headline. The paper's
// absolute number is dominated by the Azure inter-region link; pass a
// netsim profile to recover it.
func RunMembershipFirstGroup(runs int, network netsim.Profile) (add, revoke Stat, err error) {
	env, err := NewEnv(EnvConfig{Network: network})
	if err != nil {
		return Stat{}, Stat{}, err
	}
	defer env.Close()
	owner, err := env.NewClient("owner")
	if err != nil {
		return Stat{}, Stat{}, err
	}
	if err := env.Direct("owner").AddUser("owner", "first-group"); err != nil {
		return Stat{}, Stat{}, err
	}

	i := 0
	add, err = measure(runs, func() error {
		i++
		return owner.AddUser(fmt.Sprintf("fresh-%d", i), "first-group")
	})
	if err != nil {
		return Stat{}, Stat{}, err
	}
	j := 0
	revoke, err = measure(runs, func() error {
		j++
		return owner.RemoveUser(fmt.Sprintf("fresh-%d", j), "first-group")
	})
	if err != nil {
		return Stat{}, Stat{}, err
	}
	return add, revoke, nil
}
