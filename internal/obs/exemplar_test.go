package obs

import (
	"strings"
	"testing"
	"time"
)

// TestExemplarLinksBucketToTrace: an observation with a trace id becomes
// the exemplar of exactly the bucket it landed in, and the OpenMetrics
// export renders it in exemplar syntax so a dashboard can jump from a
// latency bucket straight to /debug/traces.
func TestExemplarLinksBucketToTrace(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("segshare_request_ns", "Request latency (ns).", Labels{"op": "fs_get"})
	h.ObserveDurationWithExemplar(100*time.Microsecond, 41)
	h.ObserveDurationWithExemplar(90*time.Millisecond, 42) // a "slow" outlier

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="42"}`) {
		t.Fatalf("OpenMetrics output missing the slow request's exemplar:\n%s", out)
	}
	if !strings.Contains(out, `# {trace_id="41"}`) {
		t.Fatalf("OpenMetrics output missing the fast request's exemplar:\n%s", out)
	}

	// The Prometheus 0.0.4 fallback format must stay exemplar-free —
	// classic scrapers reject the comment syntax mid-line.
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "trace_id") {
		t.Fatal("Prometheus 0.0.4 output carries exemplar syntax")
	}
}

// TestExemplarZeroTraceID: requests with no trace (id 0) must not
// produce exemplars — id 0 means "no trace recorded".
func TestExemplarZeroTraceID(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("segshare_request_ns", "Request latency (ns).", Labels{"op": "fs_put"})
	h.ObserveDurationWithExemplar(time.Millisecond, 0)

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "trace_id") {
		t.Fatal("observation with trace id 0 produced an exemplar")
	}
}

// TestExemplarLatestWins: within one bucket the most recent trace id is
// retained.
func TestExemplarLatestWins(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("segshare_request_ns", "Request latency (ns).", Labels{"op": "fs_move"})
	h.ObserveDurationWithExemplar(time.Millisecond, 7)
	h.ObserveDurationWithExemplar(time.Millisecond+time.Microsecond, 8) // same log2 bucket

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, `# {trace_id="7"}`) {
		t.Fatal("stale exemplar survived a newer observation in the same bucket")
	}
	if !strings.Contains(out, `# {trace_id="8"}`) {
		t.Fatal("newest exemplar missing")
	}
}
