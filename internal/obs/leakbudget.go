package obs

import (
	"fmt"
	"sync"
)

// The leak budget (package doc) is enforced here. Two complementary
// checks:
//
//  1. Identity-bearing *vocabulary* is banned from metric names and label
//     keys: a metric that needs a token like "user" or "path" in its name
//     is, by construction, about an identity and has no aggregate
//     formulation. The check splits on '_' so "segshare_store_get_ns" is
//     fine while "segshare_user_requests" is not.
//  2. Identity-shaped *content* is banned from label values: slashes
//     (paths), long hex runs (content addresses, MACs, key-derived
//     names), '@' (emails), and anything outside a short lowercase
//     alphabet. Legitimate label values are compile-time constants like
//     "ecall", "content", or "2xx" and trivially pass.
//
// Label keys additionally must themselves be valid metric tokens, which
// rules out smuggling identity through the key side.

// deniedTokens are identity-bearing words that must not appear as a
// '_'-separated token of a metric name or label key.
var deniedTokens = map[string]bool{
	"user": true, "users": true, "uid": true, "userid": true,
	"group": true, "groups": true, "gid": true, "member": true, "members": true,
	"path": true, "paths": true, "dir": true, "directory": true,
	"file": true, "files": true, "filename": true, "filenames": true,
	"name": true, "names": true, "hname": true,
	"key": true, "keys": true, "secret": true, "secrets": true,
	"mac": true, "digest": true, "hash": true,
	"email": true, "identity": true, "cert": true, "certificate": true,
}

const maxLabelValueLen = 32

// VerifyMetric checks one metric name and label set against the leak
// budget, returning a descriptive error on the first violation.
func VerifyMetric(name string, labels Labels) error {
	if err := verifyName(name, "metric name"); err != nil {
		return err
	}
	for k, v := range labels {
		if err := verifyName(k, fmt.Sprintf("label key in %q", name)); err != nil {
			return err
		}
		if err := verifyLabelValue(v); err != nil {
			return fmt.Errorf("obs: metric %q label %q: %w", name, k, err)
		}
	}
	return nil
}

// verifiedNames caches names that already passed verifyName. Names come
// from closed compile-time sets (metric names, annotation keys, span and
// check names), so the cache is bounded — and hot paths (one annotation
// per request field) skip the token scan entirely.
var verifiedNames sync.Map

func verifyName(name, what string) error {
	if _, ok := verifiedNames.Load(name); ok {
		return nil
	}
	if name == "" {
		return fmt.Errorf("obs: empty %s", what)
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return fmt.Errorf("obs: %s %q: character %q outside [a-z0-9_]", what, name, r)
		}
	}
	// Walk '_'-separated tokens in place; map lookups on substrings of
	// name do not allocate.
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '_' {
			if deniedTokens[name[start:i]] {
				return fmt.Errorf("obs: %s %q: identity-bearing token %q", what, name, name[start:i])
			}
			start = i + 1
		}
	}
	verifiedNames.Store(name, struct{}{})
	return nil
}

func verifyLabelValue(v string) error {
	if v == "" {
		return fmt.Errorf("empty label value")
	}
	if len(v) > maxLabelValueLen {
		return fmt.Errorf("value longer than %d characters (high-cardinality shape)", maxLabelValueLen)
	}
	hexRun := 0
	for _, r := range v {
		switch {
		case r == '/' || r == '\\':
			return fmt.Errorf("value contains a path separator")
		case r == '@':
			return fmt.Errorf("value contains '@' (email shape)")
		case (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' && r != '.' && r != '-':
			return fmt.Errorf("character %q outside [a-z0-9_.-]", r)
		}
		if (r >= '0' && r <= '9') || (r >= 'a' && r <= 'f') {
			hexRun++
			if hexRun >= 16 {
				return fmt.Errorf("value contains a %d+ character hex run (digest shape)", hexRun)
			}
		} else {
			hexRun = 0
		}
	}
	return nil
}
