package core

import (
	"bytes"
	"crypto/x509"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"segshare/internal/audit"
	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/obs"
	"segshare/internal/store"
)

// newAuditFixture builds a fully-featured server with the audit log
// enabled on a dedicated backend, returning both so the test can verify
// the persisted log offline afterwards.
func newAuditFixture(t *testing.T, auditStore store.Backend) *handlerFixture {
	t.Helper()
	authority, err := ca.New("audit test CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewMemory(),
		GroupStore:   store.NewMemory(),
		Features: Features{
			RollbackProtection: true,
			Guard:              GuardCounter,
		},
		Obs:        obs.NewRegistry(),
		AuditStore: auditStore,
		Audit:      audit.Options{CheckpointEvery: 4, Overflow: audit.OverflowBlock},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return &handlerFixture{server: server, authority: authority, certs: make(map[string]*x509.Certificate)}
}

// TestAuditTrailEndToEnd drives a workload covering every audited event
// class through the full handler stack, then closes the server and
// verifies the persisted log offline with keys re-derived from SK_r —
// the same procedure an operator runs with segshare-audit.
func TestAuditTrailEndToEnd(t *testing.T) {
	auditStore := store.NewMemory()
	f := newAuditFixture(t, auditStore)

	steps := []struct {
		user, method, target string
		body                 []byte
		want                 int
	}{
		{"alice", "MKCOL", "/fs/reports/", nil, 201},
		{"alice", "PUT", "/fs/reports/q3.txt", []byte("numbers"), 201},
		{"alice", "GET", "/fs/reports/q3.txt", nil, 200},
		{"alice", "POST", "/api/groups/add", []byte(`{"group":"finance","user":"bob"}`), 204},
		{"alice", "POST", "/api/permission", []byte(`{"path":"/reports/q3.txt","group":"finance","permission":"r"}`), 204},
		{"bob", "GET", "/fs/reports/q3.txt", nil, 200},
		{"eve", "GET", "/fs/reports/q3.txt", nil, 403}, // authz deny
		{"", "GET", "/fs/reports/q3.txt", nil, 401},    // authn failure
	}
	for _, s := range steps {
		if rec := f.do(t, s.user, s.method, s.target, s.body, nil); rec.Code != s.want {
			t.Fatalf("%s %s = %d (want %d): %s", s.method, s.target, rec.Code, s.want, rec.Body)
		}
	}

	// The live head endpoint serves counts and the sealed chain head, and
	// must leak no workload identity.
	rec := httptest.NewRecorder()
	f.server.AuditHeadHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/audit/head", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/audit/head = %d: %s", rec.Code, rec.Body)
	}
	var head audit.Head
	if err := json.Unmarshal(rec.Body.Bytes(), &head); err != nil {
		t.Fatal(err)
	}
	if head.Records == 0 {
		t.Fatal("audit head reports zero records after workload")
	}
	for _, leak := range []string{"alice", "bob", "eve", "reports", "q3.txt", "finance"} {
		if bytes.Contains(rec.Body.Bytes(), []byte(leak)) {
			t.Fatalf("/debug/audit/head leaks %q: %s", leak, rec.Body)
		}
	}

	// Snapshot inputs for offline verification, then shut down (flushes
	// the tail and seals the final checkpoint).
	keys, err := audit.DeriveKeys(f.server.RootKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.server.Close(); err != nil {
		t.Fatal(err)
	}
	// Close seals a final checkpoint, so the counter is read after it.
	liveCounter := f.server.Enclave().Counter("audit-log").Value()

	var dump bytes.Buffer
	res, err := audit.Verify(auditStore, keys, audit.VerifyOptions{
		ExpectCounter: liveCounter,
		Dump:          &dump,
	})
	if err != nil {
		t.Fatalf("offline verification failed: %v", err)
	}
	if res.Records < uint64(len(steps)) {
		t.Fatalf("log holds %d records for %d requests", res.Records, len(steps))
	}

	// Every audited event class from the workload must be present, with
	// identity intact after decryption — plus the key_op from startup and
	// the root-key export above.
	var recs []audit.Record
	dec := json.NewDecoder(&dump)
	for dec.More() {
		var r audit.Record
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	find := func(match func(audit.Record) bool) *audit.Record {
		for i := range recs {
			if match(recs[i]) {
				return &recs[i]
			}
		}
		return nil
	}
	if r := find(func(r audit.Record) bool { return r.Event == audit.EventKeyOp && r.Detail == "root_generate" }); r == nil {
		t.Error("missing key_op root_generate record")
	}
	if r := find(func(r audit.Record) bool { return r.Event == audit.EventKeyOp && r.Detail == "root_export" }); r == nil {
		t.Error("missing key_op root_export record")
	}
	if r := find(func(r audit.Record) bool { return r.Event == audit.EventAuthnFailure }); r == nil {
		t.Error("missing authn_failure record")
	}
	deny := find(func(r audit.Record) bool { return r.Event == audit.EventFileAuthzDeny })
	if deny == nil {
		t.Fatal("missing authz_deny record")
	}
	if deny.User != "eve" || deny.Path != "/reports/q3.txt" || deny.RequestID == 0 {
		t.Errorf("authz_deny record incomplete: %+v", deny)
	}
	grp := find(func(r audit.Record) bool { return r.Event == audit.EventGroupChange })
	if grp == nil {
		t.Fatal("missing group_change record")
	}
	if grp.User != "alice" || grp.Target != "bob" || grp.Group != "finance" {
		t.Errorf("group_change record incomplete: %+v", grp)
	}
	aclRec := find(func(r audit.Record) bool { return r.Event == audit.EventACLChange })
	if aclRec == nil {
		t.Fatal("missing acl_change record")
	}
	if aclRec.Path != "/reports/q3.txt" || aclRec.Group != "finance" {
		t.Errorf("acl_change record incomplete: %+v", aclRec)
	}
	if r := find(func(r audit.Record) bool { return r.Event == audit.EventFileAuthzAllow && r.User == "bob" }); r == nil {
		t.Error("missing authz_allow record for bob's shared read")
	}

	// Nothing identity-bearing may sit in the audit store in plaintext.
	names, err := auditStore.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		body, err := auditStore.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, leak := range []string{"alice", "bob", "eve", "reports", "finance"} {
			if bytes.Contains(body, []byte(leak)) {
				t.Fatalf("audit segment %s leaks %q in plaintext", n, leak)
			}
		}
	}
}

// TestAuditRollbackFailureRecorded forces a rollback-validation failure
// and checks it lands in the audit trail.
func TestAuditRollbackFailureRecorded(t *testing.T) {
	auditStore := store.NewMemory()
	content := store.NewMemory()
	authority, err := ca.New("audit test CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: content,
		GroupStore:   store.NewMemory(),
		Features:     Features{RollbackProtection: true},
		Obs:          obs.NewRegistry(),
		AuditStore:   auditStore,
		Audit:        audit.Options{Overflow: audit.OverflowBlock},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &handlerFixture{server: server, authority: authority, certs: make(map[string]*x509.Certificate)}

	if rec := f.do(t, "alice", http.MethodPut, "/fs/a.txt", []byte("v2"), nil); rec.Code != 201 {
		t.Fatalf("PUT = %d: %s", rec.Code, rec.Body)
	}
	// Snapshot the content store, update the file, then roll back only the
	// objects that changed EXCEPT one — a partial rollback the per-file
	// hash tree must reject (restoring every object would be a consistent
	// whole-store rollback, which needs the §V-E guard to catch and is
	// exercised elsewhere).
	snapshot := map[string][]byte{}
	names, err := content.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		data, err := content.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		snapshot[n] = data
	}
	if rec := f.do(t, "alice", http.MethodPut, "/fs/a.txt", []byte("v3"), nil); rec.Code != 204 {
		t.Fatalf("PUT update = %d: %s", rec.Code, rec.Body)
	}
	restored := 0
	for n, old := range snapshot {
		cur, err := content.Get(n)
		if err != nil {
			continue
		}
		if bytes.Equal(cur, old) {
			continue
		}
		if restored > 0 { // leave the remaining changed objects current
			break
		}
		if err := content.Put(n, old); err != nil {
			t.Fatal(err)
		}
		restored++
	}
	if restored == 0 {
		t.Fatal("update changed no previously-existing object; cannot stage rollback")
	}
	rec := f.do(t, "alice", http.MethodGet, "/fs/a.txt", nil, nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("GET after rollback = %d (want 500): %s", rec.Code, rec.Body)
	}

	keys, err := audit.DeriveKeys(server.RootKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	if _, err := audit.Verify(auditStore, keys, audit.VerifyOptions{Dump: &dump}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(dump.Bytes(), []byte(`"event":"rollback_failure"`)) {
		t.Fatalf("no rollback_failure record in audit dump:\n%s", dump.String())
	}
}
