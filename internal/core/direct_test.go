package core

import (
	"bytes"
	"errors"
	"testing"

	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/rollback"
	"segshare/internal/store"
)

func newDirectServer(t *testing.T) *Server {
	t.Helper()
	authority, err := ca.New("direct CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewMemory(),
		GroupStore:   store.NewMemory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return server
}

func TestDirectSessionFullFlow(t *testing.T) {
	server := newDirectServer(t)
	alice := server.Direct("alice")
	bob := server.Direct("bob")

	if err := alice.Mkdir("/d/"); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if err := alice.Upload("/d/f", []byte("direct")); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	got, err := alice.Download("/d/f")
	if err != nil || !bytes.Equal(got, []byte("direct")) {
		t.Fatalf("Download: %q %v", got, err)
	}
	entries, err := alice.List("/d/")
	if err != nil || len(entries) != 1 {
		t.Fatalf("List: %v %v", entries, err)
	}

	// Authorization is identical to the network path.
	if _, err := bob.Download("/d/f"); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("bob Download: %v", err)
	}
	if err := alice.AddUser("bob", "team"); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetPermission("/d/f", "team", "r"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Download("/d/f"); err != nil {
		t.Fatalf("bob after grant: %v", err)
	}
	if err := alice.SetInherit("/d/f", true); err != nil {
		t.Fatalf("SetInherit: %v", err)
	}
	if err := alice.RemoveUser("bob", "team"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Download("/d/f"); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("bob after revoke: %v", err)
	}

	if err := alice.Move("/d/f", "/moved"); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if err := alice.Remove("/moved"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := alice.Upload("bad-path", nil); err == nil {
		t.Fatal("invalid path accepted")
	}
	if err := alice.SetPermission("/d/", "team", "bogus"); err == nil {
		t.Fatal("invalid permission accepted")
	}

	if _, err := server.StoredContentBytes(); err != nil {
		t.Fatalf("StoredContentBytes: %v", err)
	}
}

// TestStorageFaultsSurfaceAsErrors injects I/O failures under the trusted
// file manager and checks they surface as errors without corrupting
// state.
func TestStorageFaultsSurfaceAsErrors(t *testing.T) {
	faulty := store.NewFaulty(store.NewMemory())
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := platform.Launch(enclave.CodeIdentity{Name: "segshare", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := newFileManager(fmConfig{
		rootKey:      bytes.Repeat([]byte{1}, 32),
		contentStore: faulty,
		groupStore:   store.NewMemory(),
		rollbackOn:   true,
		contentGuard: rollback.NewProtectedMemoryGuard(encl, "c"),
		groupGuard:   rollback.NewProtectedMemoryGuard(encl, "g"),
	})
	if err != nil {
		t.Fatal(err)
	}

	errInject := errors.New("disk on fire")
	if _, err := fm.writeContent(mustPath(t, "/ok"), []byte("fine"), ownedACL(1)); err != nil {
		t.Fatal(err)
	}

	// Fail a write mid-operation.
	faulty.FailAfter("put", 1, errInject)
	if _, err := fm.writeContent(mustPath(t, "/fail"), []byte("x"), ownedACL(1)); !errors.Is(err, errInject) {
		t.Fatalf("want injected error, got %v", err)
	}
	faulty.Clear()

	// Fail a read.
	faulty.FailAfter("get", 1, errInject)
	if _, err := fm.readContent(mustPath(t, "/ok")); !errors.Is(err, errInject) {
		t.Fatalf("want injected error, got %v", err)
	}
	faulty.Clear()

	// The pre-existing file remains readable and valid afterwards.
	got, err := fm.readContent(mustPath(t, "/ok"))
	if err != nil || string(got) != "fine" {
		t.Fatalf("after faults: %q %v", got, err)
	}
}

// TestCounterGuardSurvivesRestart: with the counter guard, a relaunched
// enclave on the same platform accepts the current store state (counters
// persist in the platform).
func TestCounterGuardSurvivesRestart(t *testing.T) {
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	content := store.NewMemory()
	group := store.NewMemory()

	build := func() *fileManager {
		encl, err := platform.Launch(enclave.CodeIdentity{Name: "segshare", Version: 1})
		if err != nil {
			t.Fatal(err)
		}
		rootKey, _, err := loadOrCreateRootKey(encl, group)
		if err != nil {
			t.Fatal(err)
		}
		fm, err := newFileManager(fmConfig{
			rootKey:      rootKey,
			contentStore: content,
			groupStore:   group,
			rollbackOn:   true,
			contentGuard: rollback.NewCounterGuard(encl, "content-root"),
			groupGuard:   rollback.NewCounterGuard(encl, "group-root"),
		})
		if err != nil {
			t.Fatal(err)
		}
		return fm
	}

	fm1 := build()
	if _, err := fm1.writeContent(mustPath(t, "/persist"), []byte("counted"), ownedACL(1)); err != nil {
		t.Fatal(err)
	}
	fm2 := build()
	got, err := fm2.readContent(mustPath(t, "/persist"))
	if err != nil || string(got) != "counted" {
		t.Fatalf("after restart: %q %v", got, err)
	}
	// And updates keep working (counter continues from its value).
	if _, err := fm2.writeContent(mustPath(t, "/persist"), []byte("again"), nil); err != nil {
		t.Fatal(err)
	}
	if got, err := fm2.readContent(mustPath(t, "/persist")); err != nil || string(got) != "again" {
		t.Fatalf("update after restart: %q %v", got, err)
	}
}

// TestCounterWearOutSurfacesGracefully: when the platform's counter wears
// out, writes fail with the counter error instead of corrupting state.
func TestCounterWearOutSurfacesGracefully(t *testing.T) {
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{CounterWearLimit: 6})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := platform.Launch(enclave.CodeIdentity{Name: "segshare", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := newFileManager(fmConfig{
		rootKey:      bytes.Repeat([]byte{2}, 32),
		contentStore: store.NewMemory(),
		groupStore:   store.NewMemory(),
		rollbackOn:   true,
		contentGuard: rollback.NewCounterGuard(encl, "content-root"),
		groupGuard:   rollback.NewCounterGuard(encl, "group-root"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wearErr error
	for i := 0; i < 20 && wearErr == nil; i++ {
		_, wearErr = fm.writeContent(mustPath(t, "/wear"), []byte{byte(i)}, ownedACL(1))
	}
	if !errors.Is(wearErr, enclave.ErrCounterWornOut) {
		t.Fatalf("want ErrCounterWornOut, got %v", wearErr)
	}
}
