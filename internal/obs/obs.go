// Package obs is SeGShare's dependency-free observability subsystem:
// atomic counters, gauges, log₂-bucketed latency histograms, and a
// per-request trace recorder, exported over HTTP in Prometheus text
// format, as a JSON snapshot, and alongside net/http/pprof.
//
// # Leak budget
//
// Everything this package exports crosses the enclave boundary and is
// visible to the untrusted host, so every signal must fit the "leak
// budget" of the paper's threat model (§III-B): the host already observes
// which store operations the enclave issues, the sizes of the ciphertexts
// it moves, and the timing of every ecall/ocall. Aggregate counts per
// operation class and log₂-bucketed durations reveal nothing beyond that.
// What must never be exported is anything identity-bearing: user IDs,
// group names, logical paths, content addresses, or key-derived values.
//
// The registry enforces this structurally. Metric names and label keys
// are checked against a denylist of identity-bearing tokens, and label
// values are checked for identity-shaped content (slashes, digest-like
// hex runs, high-cardinality shapes). A metric that violates the budget
// is quarantined: callers receive a working instrument so the calling
// code is unaffected, but the metric is never exported and the
// segshare_obs_leak_budget_violations_total counter is incremented.
// TestLeakBudget-style tests walk every registered metric and assert the
// violation counter is zero.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies an instrument type.
type Kind int

// Instrument kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Labels is a set of constant labels attached to an instrument. Label
// values must come from small closed sets fixed at compile time (operation
// classes, store roles, status classes) — never from request data.
type Labels map[string]string

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	help   string
	labels []Label // sorted by key
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	quarantined bool
	reason      string
}

// Label is one key/value pair of a metric's constant label set.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Registry holds a set of named instruments. Registering the same name
// and label set twice returns the same instrument, so independent
// components may share one registry freely. Registry is safe for
// concurrent use.
type Registry struct {
	mu      sync.RWMutex
	byKey   map[string]*metric
	ordered []*metric

	violations Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide default registry, used when a
// component is not handed an explicit one.
func Default() *Registry { return defaultRegistry }

// LeakBudgetViolations returns the number of quarantined registrations.
// Anything above zero means code attempted to export an identity-bearing
// metric; the leak-budget test fails on it.
func (r *Registry) LeakBudgetViolations() uint64 { return r.violations.Value() }

func sortLabels(labels Labels) []Label {
	out := make([]Label, 0, len(labels))
	for k, v := range labels {
		out = append(out, Label{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func metricKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('\x00')
		b.WriteString(l.Key)
		b.WriteByte('\x01')
		b.WriteString(l.Value)
	}
	return b.String()
}

// register returns the metric for (name, labels), creating it if absent.
func (r *Registry) register(name, help string, labels Labels, kind Kind) *metric {
	sorted := sortLabels(labels)
	key := metricKey(name, sorted)

	r.mu.RLock()
	m, ok := r.byKey[key]
	r.mu.RUnlock()
	if ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, m.kind))
		}
		return m
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, m.kind))
		}
		return m
	}
	m = &metric{name: name, help: help, labels: sorted, kind: kind}
	if err := VerifyMetric(name, labels); err != nil {
		m.quarantined = true
		m.reason = err.Error()
		r.violations.Inc()
	}
	switch kind {
	case KindCounter:
		m.counter = &Counter{}
	case KindGauge:
		m.gauge = &Gauge{}
	case KindHistogram:
		m.hist = newHistogram()
	}
	r.byKey[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.register(name, help, labels, KindCounter).counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.register(name, help, labels, KindGauge).gauge
}

// Histogram registers (or finds) a log₂-bucketed histogram.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.register(name, help, labels, KindHistogram).hist
}

// MetricSnapshot is one metric's point-in-time state for export.
type MetricSnapshot struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Kind   string  `json:"kind"`
	Labels []Label `json:"labels,omitempty"`

	// Value is set for counters and gauges.
	Value int64 `json:"value"`
	// Histogram is set for histograms.
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot captures all exportable (non-quarantined) metrics, sorted by
// name then label set.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.RLock()
	metrics := make([]*metric, len(r.ordered))
	copy(metrics, r.ordered)
	r.mu.RUnlock()

	out := make([]MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		if m.quarantined {
			continue
		}
		s := MetricSnapshot{Name: m.name, Help: m.help, Kind: m.kind.String(), Labels: m.labels}
		switch m.kind {
		case KindCounter:
			s.Value = int64(m.counter.Value())
		case KindGauge:
			s.Value = m.gauge.Value()
		case KindHistogram:
			h := m.hist.Snapshot()
			s.Histogram = &h
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return metricKey("", out[i].Labels) < metricKey("", out[j].Labels)
	})
	return out
}

// VerifyAll re-checks every registered metric against the leak budget and
// returns one error per violation (quarantined or not). The leak-budget
// test calls it so that even a future bug in quarantine bookkeeping is
// caught by walking the full registry.
func (r *Registry) VerifyAll() []error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var errs []error
	for _, m := range r.ordered {
		labels := make(Labels, len(m.labels))
		for _, l := range m.labels {
			labels[l.Key] = l.Value
		}
		if err := VerifyMetric(m.name, labels); err != nil {
			errs = append(errs, err)
		} else if m.quarantined {
			errs = append(errs, fmt.Errorf("obs: metric %q quarantined at registration: %s", m.name, m.reason))
		}
	}
	return errs
}

// Timer measures one duration into a histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing against h.
func StartTimer(h *Histogram) Timer { return Timer{h: h, start: time.Now()} }

// Stop records the elapsed time and returns it.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.start)
	t.h.ObserveDuration(d)
	return d
}
