package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestWideEventFieldClasses is the meta-test guarding the wide-event
// leak budget: every struct field must be classified in WideEventFields,
// no stale classifications may remain, and each class must match the Go
// type that makes its guarantee enforceable (bucketed and id fields are
// uint64, enums are strings checked by the label rules, and so on).
// Adding a field to WideEvent without classifying it fails here.
func TestWideEventFieldClasses(t *testing.T) {
	typ := reflect.TypeOf(WideEvent{})
	if typ.NumField() != len(WideEventFields) {
		t.Errorf("WideEvent has %d fields but WideEventFields classifies %d", typ.NumField(), len(WideEventFields))
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		class, ok := WideEventFields[f.Name]
		if !ok {
			t.Errorf("field %s is not classified in WideEventFields", f.Name)
			continue
		}
		var wantKind reflect.Kind
		switch class {
		case FieldEnum:
			wantKind = reflect.String
		case FieldBucketed, FieldID:
			wantKind = reflect.Uint64
		case FieldTime:
			wantKind = reflect.Int64
		case FieldFlag:
			wantKind = reflect.Bool
		default:
			t.Errorf("field %s has unknown class %q", f.Name, class)
			continue
		}
		if f.Type.Kind() != wantKind {
			t.Errorf("field %s: class %q requires kind %v, struct has %v", f.Name, class, wantKind, f.Type.Kind())
		}
		if f.Tag.Get("json") == "" {
			t.Errorf("field %s has no json tag; wide events are export records", f.Name)
		}
	}
	for name := range WideEventFields {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("WideEventFields classifies %q, which is not a WideEvent field", name)
		}
	}
}

// TestNewWideEventBucketsEveryNumeric feeds raw, non-power-of-two
// measurements through the constructor and checks that only log₂ bucket
// bounds come out — and that each bound is at least the raw value, so
// bucketing rounds up (never under-reports).
func TestNewWideEventBucketsEveryNumeric(t *testing.T) {
	rs := &ReqStats{}
	rs.AddLockWait(12345 * time.Nanosecond)
	rs.AddCacheHit()
	rs.AddCacheHit()
	rs.AddCacheHit()
	rs.AddCacheMiss()
	rs.AddStoreOps(7)
	rs.AddBridgeCalls(5, 11)
	rs.AddJournalCommit(999 * time.Microsecond)
	rs.AddAuditEnqueue(777 * time.Nanosecond)

	ev := NewWideEvent("fs_get", "2xx", 42, true, 1234567*time.Nanosecond, 3000, 5000, rs)
	if err := VerifyWideEvent(ev); err != nil {
		t.Fatalf("VerifyWideEvent: %v", err)
	}
	checks := []struct {
		name string
		got  uint64
		raw  int64
	}{
		{"DurationNs", ev.DurationNs, 1234567},
		{"BytesIn", ev.BytesIn, 3000},
		{"BytesOut", ev.BytesOut, 5000},
		{"LockWaitNs", ev.LockWaitNs, 12345},
		{"CacheHits", ev.CacheHits, 3},
		{"CacheMisses", ev.CacheMisses, 1},
		{"Ecalls", ev.Ecalls, 5},
		{"Ocalls", ev.Ocalls, 11},
		{"StoreOps", ev.StoreOps, 7},
		{"JournalCommitNs", ev.JournalCommitNs, 999000},
		{"AuditEnqueueNs", ev.AuditEnqueueNs, 777},
	}
	for _, c := range checks {
		if !IsBucketBound(c.got) {
			t.Errorf("%s = %d is not a log2 bucket bound", c.name, c.got)
		}
		if c.got < uint64(c.raw) {
			t.Errorf("%s = %d under-reports raw value %d", c.name, c.got, c.raw)
		}
	}
	// The raw values above are deliberately not powers of two; none may
	// survive into the event verbatim.
	for _, c := range checks {
		if c.got == uint64(c.raw) && !IsBucketBound(uint64(c.raw)) {
			t.Errorf("%s exported the raw value %d", c.name, c.raw)
		}
	}
}

// TestVerifyWideEventRejectsRawValues: a hand-built event holding an
// unbucketed numeric or a leaking enum value must fail verification.
func TestVerifyWideEventRejectsRawValues(t *testing.T) {
	good := NewWideEvent("fs_get", "2xx", 1, false, time.Millisecond, 0, 0, nil)
	if err := VerifyWideEvent(good); err != nil {
		t.Fatalf("baseline event rejected: %v", err)
	}

	raw := good
	raw.DurationNs = 12345 // not a bucket bound
	if err := VerifyWideEvent(raw); err == nil {
		t.Error("event with raw DurationNs passed verification")
	}

	leaky := good
	leaky.Op = "/top-secret/payroll.txt" // path-shaped, not an op-class enum
	if err := VerifyWideEvent(leaky); err == nil {
		t.Error("event with path-shaped op passed verification")
	}
}

// TestBucketCeil pins the bucketing function's contract.
func TestBucketCeil(t *testing.T) {
	cases := []struct {
		in   int64
		want uint64
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 3},
		{4, 7},
		{1000, 1023},
	}
	for _, c := range cases {
		if got := BucketCeil(c.in); got != c.want {
			t.Errorf("BucketCeil(%d) = %d, want %d", c.in, got, c.want)
		}
		if got := BucketCeil(c.in); !IsBucketBound(got) {
			t.Errorf("BucketCeil(%d) = %d is not its own bucket bound", c.in, got)
		}
	}
}

// TestWideEventJSONStable: the wire names carry the "Le" suffix marking
// bucket upper bounds, so a collector can tell at a glance no field is a
// raw measurement.
func TestWideEventJSONStable(t *testing.T) {
	ev := NewWideEvent("fs_put", "2xx", 7, true, time.Millisecond, 100, 0, nil)
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, key := range []string{`"ts"`, `"traceId"`, `"op"`, `"code"`, `"sampled"`, `"durationNsLe"`, `"bytesInLe"`, `"lockWaitNsLe"`, `"ecallsLe"`, `"journalCommitNsLe"`} {
		if !strings.Contains(s, key) {
			t.Errorf("marshaled wide event missing %s: %s", key, s)
		}
	}
}
