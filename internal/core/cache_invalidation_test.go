package core

import (
	"bytes"
	"errors"
	"testing"

	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/store"
)

// newTunedServer is newDirectServer with caller-controlled tuning knobs
// (lock shards, cache budget, features); stores and PKI are filled in.
func newTunedServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	authority, err := ca.New("tuned CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.CACertPEM = authority.CertificatePEM()
	cfg.ContentStore = store.NewMemory()
	cfg.GroupStore = store.NewMemory()
	server, err := NewServer(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return server
}

// These tests pin the security property of the relation caches: a
// revocation — permission cleared, access denied, or group membership
// removed — is visible to the *very next* request, with no grace window.
// Each test first proves the cache was actually serving the
// authorization (nonzero hits), so a pass can't come from caching being
// accidentally off.

func cacheHits(t *testing.T, s *Server, kind string) uint64 {
	t.Helper()
	st, ok := s.CacheStats()[kind]
	if !ok {
		t.Fatalf("no cache stats for kind %q", kind)
	}
	return st.Hits
}

// warmRead downloads the path a few times so the ACL, membership, and
// directory relations for it are all cache-resident.
func warmRead(t *testing.T, d *DirectSession, path string, want []byte) {
	t.Helper()
	for i := 0; i < 3; i++ {
		got, err := d.Download(path)
		if err != nil {
			t.Fatalf("warm read %s: %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("warm read %s = %q, want %q", path, got, want)
		}
	}
}

func TestPermissionRevocationVisibleImmediately(t *testing.T) {
	server := newDirectServer(t)
	alice := server.Direct("alice")
	bob := server.Direct("bob")

	if err := alice.Mkdir("/d/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/d/f", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := alice.AddUser("bob", "team"); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetPermission("/d/f", "team", "r"); err != nil {
		t.Fatal(err)
	}
	warmRead(t, bob, "/d/f", []byte("secret"))
	if hits := cacheHits(t, server, "acls"); hits == 0 {
		t.Fatal("ACL cache never hit; the revocation test would prove nothing")
	}

	// Revoke and read back-to-back: the grant must be gone on the very
	// next request even though the old ACL was cache-hot a moment ago.
	if err := alice.SetPermission("/d/f", "team", "none"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Download("/d/f"); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("read after permission revocation: %v, want ErrPermissionDenied", err)
	}
}

func TestExplicitDenyVisibleImmediately(t *testing.T) {
	server := newDirectServer(t)
	alice := server.Direct("alice")
	bob := server.Direct("bob")

	if err := alice.Mkdir("/d/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/d/f", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := alice.AddUser("bob", "team"); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetPermission("/d/f", "team", "rw"); err != nil {
		t.Fatal(err)
	}
	warmRead(t, bob, "/d/f", []byte("secret"))

	if err := alice.SetPermission("/d/f", "team", "deny"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Download("/d/f"); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("read after deny: %v, want ErrPermissionDenied", err)
	}
}

func TestMembershipRevocationVisibleImmediately(t *testing.T) {
	server := newDirectServer(t)
	alice := server.Direct("alice")
	bob := server.Direct("bob")

	if err := alice.Mkdir("/d/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/d/f", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := alice.AddUser("bob", "team"); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetPermission("/d/f", "team", "r"); err != nil {
		t.Fatal(err)
	}
	warmRead(t, bob, "/d/f", []byte("secret"))
	if hits := cacheHits(t, server, "memberships"); hits == 0 {
		t.Fatal("member-list cache never hit; the revocation test would prove nothing")
	}

	// Kick bob out of the group; his cached member list must not grant
	// him one more read.
	if err := alice.RemoveUser("bob", "team"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Download("/d/f"); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("read after membership revocation: %v, want ErrPermissionDenied", err)
	}
}

// Grants must propagate just as immediately as revocations: a user with
// a cache-hot denial gains access the moment the grant lands.
func TestGrantVisibleImmediately(t *testing.T) {
	server := newDirectServer(t)
	alice := server.Direct("alice")
	bob := server.Direct("bob")

	if err := alice.Mkdir("/d/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/d/f", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := alice.AddUser("bob", "team"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := bob.Download("/d/f"); !errors.Is(err, ErrPermissionDenied) {
			t.Fatalf("read before grant: %v, want ErrPermissionDenied", err)
		}
	}
	if err := alice.SetPermission("/d/f", "team", "r"); err != nil {
		t.Fatal(err)
	}
	got, err := bob.Download("/d/f")
	if err != nil || !bytes.Equal(got, []byte("secret")) {
		t.Fatalf("read after grant: %q, %v", got, err)
	}
}

// Directory listings come from the cached parent body; a removal must be
// reflected in the immediately following PROPFIND/List.
func TestDirListingInvalidatedOnChildRemoval(t *testing.T) {
	server := newDirectServer(t)
	alice := server.Direct("alice")

	if err := alice.Mkdir("/d/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if entries, err := alice.List("/d/"); err != nil || len(entries) != 1 {
			t.Fatalf("warm list: %v %v", entries, err)
		}
	}
	if hits := cacheHits(t, server, "dirs"); hits == 0 {
		t.Fatal("directory cache never hit")
	}
	if err := alice.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	entries, err := alice.List("/d/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("listing after removal still shows %v", entries)
	}
}

// The same revocation sequences must behave identically with the caches
// disabled — the cache is a pure performance layer.
func TestRevocationParityWithCacheDisabled(t *testing.T) {
	server := newTunedServer(t, Config{CacheBytes: -1})
	alice := server.Direct("alice")
	bob := server.Direct("bob")

	if err := alice.Mkdir("/d/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/d/f", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if err := alice.AddUser("bob", "team"); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetPermission("/d/f", "team", "r"); err != nil {
		t.Fatal(err)
	}
	warmRead(t, bob, "/d/f", []byte("secret"))
	if hits := cacheHits(t, server, "acls"); hits != 0 {
		t.Fatalf("cache disabled but recorded %d hits", hits)
	}
	if err := alice.SetPermission("/d/f", "team", "none"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Download("/d/f"); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("read after revocation (cache off): %v, want ErrPermissionDenied", err)
	}
}
