package core

import (
	"context"
	"crypto/ecdsa"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"encoding/pem"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"segshare/internal/audit"
	"segshare/internal/enclave"
	"segshare/internal/enctls"
	"segshare/internal/journal"
	"segshare/internal/obs"
	"segshare/internal/pfs"
	"segshare/internal/rollback"
	"segshare/internal/store"
)

// GuardKind selects the whole-file-system rollback protection strategy
// (paper §V-E).
type GuardKind int

const (
	// GuardNone disables whole-file-system rollback protection.
	GuardNone GuardKind = iota + 1
	// GuardProtectedMemory binds root hashes to enclave protected memory.
	GuardProtectedMemory
	// GuardCounter binds root hashes to enclave monotonic counters.
	GuardCounter
)

// Features selects the optional SeGShare extensions (paper §V).
type Features struct {
	// Dedup enables server-side deduplication (§V-A).
	Dedup bool `json:"dedup"`
	// HidePaths enables filename and directory-structure hiding (§V-C).
	HidePaths bool `json:"hidePaths"`
	// RollbackProtection enables the per-file rollback tree (§V-D).
	RollbackProtection bool `json:"rollbackProtection"`
	// Guard selects the whole-file-system guard (§V-E); requires
	// RollbackProtection. Zero value means GuardNone.
	Guard GuardKind `json:"guard"`
}

// Config configures a SeGShare server.
type Config struct {
	// CACertPEM is the certificate of the trusted CA. It is part of the
	// enclave's measured code identity, so enclaves built for different
	// CAs attest differently (paper §III-B).
	CACertPEM []byte
	// Version is the enclave version (ISVSVN equivalent).
	Version uint32
	// ContentStore, GroupStore, and DedupStore are the untrusted stores
	// (paper §IV-B, §V-A). DedupStore may be nil when Features.Dedup is
	// off.
	ContentStore store.Backend
	GroupStore   store.Backend
	DedupStore   store.Backend
	// Features selects the enabled extensions. Features are part of the
	// measured identity: an operator cannot silently disable rollback
	// protection without changing the measurement.
	Features Features
	// FileSystemOwner optionally names the FSO user whose default group
	// becomes the root directory's owner on first contact.
	FileSystemOwner string
	// RootKey optionally injects SK_r obtained through the replication
	// protocol (paper §V-F). When set, the sealed key in storage is
	// ignored and nothing is persisted: replicas re-run replication after
	// a restart.
	RootKey []byte
	// LockShards sets the number of per-path lock shards in the request
	// path (see locks.go). Zero means the default (64); 1 approximates
	// the former single global RWMutex, which benchmarks use as the
	// before-configuration.
	LockShards int
	// CacheBytes bounds the in-enclave relation caches (decoded ACLs,
	// member lists, group list, directory bodies, derived file keys).
	// Zero means the default (8 MiB); negative disables caching.
	CacheBytes int64
	// CryptoWorkers bounds the chunk-crypto worker pool on the content
	// data path (DESIGN §14). Zero means the default,
	// min(GOMAXPROCS, 8); negative (or 1) forces strictly serial
	// sealing/opening, which benchmarks use as the before-configuration.
	CryptoWorkers int
	// Resilience, when non-nil, wraps the content, group, and dedup
	// stores in store.Resilient (DESIGN §15): per-op-class deadlines,
	// retry with backoff for retryable errors, and a per-backend circuit
	// breaker. An open breaker flips the server into degraded read-only
	// mode: mutations fail fast with ErrDegraded at the mutate()
	// chokepoint while reads keep flowing, CheckDegraded reports the
	// episode for /readyz, every breaker transition emits an
	// EventDegraded audit record, and affected requests carry the
	// degraded wide-event flag. The Obs and OnState fields are
	// overwritten by the server during wiring (OnState is chained).
	Resilience *store.ResilientOptions
	// Bridge tunes the switchless call bridge.
	Bridge enclave.BridgeConfig
	// Logger receives structured request logs (request id, operation
	// class, status, duration — never paths, users, or groups). Nil means
	// discard, which keeps tests and benchmarks quiet.
	Logger *slog.Logger
	// Obs is the metric registry the server and all its components
	// (bridge, stores, dedup, rollback tree) report into. Nil means
	// obs.Default(). Exported telemetry is bounded by the leak budget
	// documented in package obs.
	Obs *obs.Registry
	// DisableJournal turns off the write-ahead intent journal that makes
	// multi-blob mutations atomic-on-recovery (see internal/journal and
	// txn.go). The journal is deliberately NOT part of the measured
	// Features: it changes durability, not the security surface clients
	// attest.
	DisableJournal bool
	// AuditStore, when non-nil, enables the tamper-evident audit log:
	// security events (authn, authz decisions, ACL/group mutations,
	// rollback failures, key operations) are sealed under keys derived
	// from SK_r and appended to hash-chained segments in this backend.
	AuditStore store.Backend
	// Audit tunes the audit writer (overflow policy, buffer sizes,
	// checkpoint cadence). Ignored when AuditStore is nil.
	Audit audit.Options
	// DisableWideEvents turns off per-request wide-event collection and
	// emission. Benchmarks use it as the before-configuration when
	// measuring telemetry overhead.
	DisableWideEvents bool
	// SamplePolicy selects which finished request traces are retained
	// and exported (tail-based sampling); nil means
	// obs.DefaultSamplePolicy() — slow, errored, contended, and a 1-in-N
	// floor.
	SamplePolicy *obs.SamplePolicy
	// Exporter, when non-nil, receives every wide event and each sampled
	// trace on a bounded async queue. The server does not own it: the
	// caller Closes it after Server.Close so the final batch drains.
	Exporter *obs.Exporter
	// Watchdog configures the stall watchdog; the zero value disables it.
	Watchdog WatchdogConfig
	// SLO, when non-nil, enables per-op-class burn-rate evaluation over
	// the request stream (objectives, windows, thresholds — see
	// obs.SLOConfig). Breaches emit an audit event, force-sample traces
	// of the offending op class, and (fast burns) trigger a profile
	// capture. The engine's Obs and OnBreach fields are overwritten by
	// the server during wiring.
	SLO *obs.SLOConfig
	// HotGroups bounds the per-group heavy-hitter sketch behind
	// /debug/hot: the top-k tenant pseudonyms by request volume and
	// bytes. 0 disables; negative means the default bound
	// (obs.DefaultHotK).
	HotGroups int
	// DisableRequestRegistry turns off the live in-flight request
	// registry (/debug/requests and the watchdog's exact over-deadline
	// check fall back accordingly). Benchmarks use it as the
	// before-configuration.
	DisableRequestRegistry bool
	// Profiler, when non-nil, receives capture triggers on watchdog
	// stall transitions and SLO fast-burn breaches. The caller owns it
	// (create before NewServer, Stop after Server.Close).
	Profiler *obs.ContinuousProfiler
	// Recovery, when non-nil, is the journal-recovery state the server
	// publishes progress into. Journal replay runs synchronously inside
	// NewServer, so a caller that wants /readyz to gate on it must create
	// the state and register its readiness check before calling NewServer.
	// Nil means the server allocates its own (see Server.Recovery).
	Recovery *RecoveryState
	// Admission, when non-nil with Enable set, turns on adaptive
	// admission control: per-op-class AIMD concurrency limits with a
	// bounded wait queue and priority shedding (DESIGN §16). The
	// LatencyTarget defaults to the SLO latency threshold when an SLO is
	// configured.
	Admission *AdmissionConfig
	// MaxBodyBytes caps request bodies via http.MaxBytesReader; requests
	// exceeding it get a leak-safe 413. 0 means the default (64 MiB),
	// negative disables the cap.
	MaxBodyBytes int64
}

// WatchdogConfig tunes the stall watchdog (see obs.Watchdog). All
// durations default when zero.
type WatchdogConfig struct {
	// Enable turns the watchdog on.
	Enable bool
	// Interval is the sweep cadence (default 1s).
	Interval time.Duration
	// RequestDeadline flags any in-flight request older than this
	// (default 30s).
	RequestDeadline time.Duration
	// RecoveryOverrun flags a journal recovery pass running longer than
	// this (default 30s).
	RecoveryOverrun time.Duration
	// ShardSkew flags one lock shard absorbing more than this much new
	// wait time between sweeps while also exceeding 4x the mean across
	// shards (default 100ms).
	ShardSkew time.Duration
}

// sloForceSampleNext is how many upcoming requests of a breached op
// class the SLO engine force-samples (in addition to every request of
// that class already in flight at breach time), so the trace ring holds
// evidence from inside the bad period.
const sloForceSampleNext = 25

// defaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is
// zero: large enough for any realistic file PUT through this API (which
// buffers bodies in enclave memory), small enough that one client
// cannot pin the crypto workers on a multi-gigabyte upload.
const defaultMaxBodyBytes = 64 << 20

func (w WatchdogConfig) withDefaults() WatchdogConfig {
	if w.Interval <= 0 {
		w.Interval = time.Second
	}
	if w.RequestDeadline <= 0 {
		w.RequestDeadline = 30 * time.Second
	}
	if w.RecoveryOverrun <= 0 {
		w.RecoveryOverrun = 30 * time.Second
	}
	if w.ShardSkew <= 0 {
		w.ShardSkew = 100 * time.Millisecond
	}
	return w
}

// Server is one SeGShare enclave with its untrusted plumbing: the call
// bridge, the split TLS stack, the trusted file manager, the access
// control component, and the request handler.
type Server struct {
	cfg      Config
	enclave  *enclave.Enclave
	bridge   *enclave.Bridge
	endpoint *enctls.TrustedEndpoint
	caPub    *ecdsa.PublicKey
	caPool   *x509.CertPool

	certifier *Certifier
	fm        *fileManager
	ac        *accessControl
	obs       *serverObs

	// locks schedules request concurrency: sharded per-path locks, a
	// group-store lock, and a whole-tree barrier (see locks.go).
	locks *lockManager
	// reset tracks the outstanding backup-restoration challenge (§V-G).
	reset resetState
	// recovery publishes journal-recovery progress for readiness gating
	// and the watchdog.
	recovery *RecoveryState
	// resilient holds the store resilience wrappers (empty unless
	// Config.Resilience), for degraded-mode readiness checks.
	resilient []*store.Resilient
	// watchdog is the stall detector, nil unless Config.Watchdog.Enable.
	watchdog *obs.Watchdog

	// admission is the adaptive admission controller, nil unless
	// Config.Admission.Enable (see admission.go).
	admission *admissionController
	// maxBody is the resolved request-body cap; <= 0 disables it.
	maxBody int64
	// draining is set by Drain: new requests are rejected with 503 +
	// Retry-After while in-flight ones complete.
	draining atomic.Bool

	httpServer *http.Server
	terminator *enctls.UntrustedTerminator
	serveOnce  sync.Once
	closeOnce  sync.Once
	drainOnce  sync.Once
}

// codeIdentity derives the enclave's measured identity from the
// configuration that must be attested: CA certificate, version, features,
// and FSO.
func codeIdentity(cfg Config) (enclave.CodeIdentity, error) {
	measured, err := json.Marshal(struct {
		CACertPEM []byte   `json:"caCertPem"`
		Features  Features `json:"features"`
		FSO       string   `json:"fso"`
	}{CACertPEM: cfg.CACertPEM, Features: cfg.Features, FSO: cfg.FileSystemOwner})
	if err != nil {
		return enclave.CodeIdentity{}, err
	}
	return enclave.CodeIdentity{Name: "segshare", Version: cfg.Version, Config: measured}, nil
}

// CodeIdentityFor returns the enclave code identity a server with this
// configuration launches with, e.g. so a replication requester can run
// under the same measurement.
func CodeIdentityFor(cfg Config) (enclave.CodeIdentity, error) {
	return codeIdentity(cfg)
}

// ExpectedMeasurement computes the measurement a CA should expect for a
// given configuration, without launching anything.
func ExpectedMeasurement(cfg Config) (enclave.Measurement, error) {
	code, err := codeIdentity(cfg)
	if err != nil {
		return enclave.Measurement{}, err
	}
	return code.Measurement(), nil
}

// NewServer launches the SeGShare enclave on the platform and assembles
// the server. The returned server has no TLS identity yet unless a
// previously provisioned certificate is found in storage; run the CA's
// ProvisionServer against Certifier() before Serve.
func NewServer(platform *enclave.Platform, cfg Config) (*Server, error) {
	if cfg.ContentStore == nil || cfg.GroupStore == nil {
		return nil, errors.New("segshare: content and group stores are required")
	}
	if cfg.Features.Dedup && cfg.DedupStore == nil {
		return nil, errors.New("segshare: dedup feature requires a dedup store")
	}
	if cfg.Features.Guard != 0 && cfg.Features.Guard != GuardNone && !cfg.Features.RollbackProtection {
		return nil, errors.New("segshare: whole-file-system guard requires rollback protection")
	}

	sObs := newServerObs(cfg.Obs, cfg.Logger)
	sObs.wideEvents = !cfg.DisableWideEvents
	sObs.exporter = cfg.Exporter
	if sObs.wideEvents {
		sObs.wideTotal = sObs.reg.Counter("segshare_wide_events_total",
			"Wide events emitted (one per finished request).", nil)
	}
	// Tail-based sampling: the policy decides at End which traces stay in
	// the ring; sampled ones additionally flow to the exporter.
	policy := cfg.SamplePolicy
	if policy == nil {
		policy = obs.DefaultSamplePolicy()
	}
	sObs.traces.SetPolicy(policy)
	sObs.traces.SetOnEnd(func(tr *obs.Trace, sampled bool) {
		if sampled {
			sObs.exporter.EnqueueTrace(tr.Snapshot())
		}
	})
	if !cfg.DisableRequestRegistry {
		sObs.requests = newRequestRegistry()
	}
	if cfg.HotGroups != 0 && sObs.requests != nil {
		// Heavy-hitter accounting rides on the registry (the group tag
		// lives on the in-flight entry), so disabling the registry
		// disables it too.
		k := cfg.HotGroups
		if k < 0 {
			k = obs.DefaultHotK
		}
		pseud, err := obs.NewPseudonymizer()
		if err != nil {
			return nil, err
		}
		sObs.pseud = pseud
		sObs.hot = obs.NewTopK(k)
	}
	sObs.profiler = cfg.Profiler
	if cfg.Exporter != nil {
		hot := sObs.hot
		cfg.Exporter.SetMeta(func() obs.BatchMeta {
			var m obs.BatchMeta // the exporter fills time/depth/drops
			if hot != nil {
				h := hot.Snapshot()
				m.Hot = &h
			}
			return m
		})
	}
	// The resilience layer wraps the raw backends first, then
	// store.Instrumented wraps the Resilient chain, so the measured
	// latency is what the trusted side experiences — retries, deadline
	// waits, and fast failures included. Breaker transitions feed the
	// audit trail; sObs.audit is nil until the log opens below, and
	// auditEmit tolerates that (pre-launch transitions cannot happen —
	// no request runs yet).
	var resilientStores []*store.Resilient
	wrapResilient := func(b store.Backend, role string) store.Backend {
		if cfg.Resilience == nil {
			return b
		}
		opt := *cfg.Resilience
		opt.Obs = sObs.reg
		userOnState := opt.OnState
		opt.OnState = func(from, to store.BreakerState) {
			sObs.auditEmit(audit.Event{
				Event:  audit.EventDegraded,
				Detail: role + " " + from.String() + "->" + to.String(),
			})
			if userOnState != nil {
				userOnState(from, to)
			}
		}
		rw := store.NewResilient(b, role, opt)
		resilientStores = append(resilientStores, rw)
		return rw
	}
	cfg.ContentStore = wrapResilient(cfg.ContentStore, "content")
	cfg.GroupStore = wrapResilient(cfg.GroupStore, "group")
	if cfg.DedupStore != nil {
		cfg.DedupStore = wrapResilient(cfg.DedupStore, "dedup")
	}
	if len(resilientStores) > 0 {
		// Wide events carry a degraded flag for every request that runs
		// during an episode, not only the rejected mutations.
		sObs.degraded = func() bool {
			for _, rw := range resilientStores {
				if rw.State() != store.BreakerClosed {
					return true
				}
			}
			return false
		}
	}

	// All backend traffic is measured through store.Instrumented; the
	// labels name the store role only. The bridge reports into the same
	// registry.
	cfg.ContentStore = store.NewInstrumented(cfg.ContentStore, "content", sObs.reg)
	cfg.GroupStore = store.NewInstrumented(cfg.GroupStore, "group", sObs.reg)
	if cfg.DedupStore != nil {
		cfg.DedupStore = store.NewInstrumented(cfg.DedupStore, "dedup", sObs.reg)
	}
	if cfg.Bridge.Obs == nil {
		cfg.Bridge.Obs = sObs.reg
	}

	block, _ := pem.Decode(cfg.CACertPEM)
	if block == nil {
		return nil, errors.New("segshare: invalid CA certificate PEM")
	}
	caCert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("segshare: parse CA certificate: %w", err)
	}
	caPub, ok := caCert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("segshare: CA key must be ECDSA")
	}
	pool := x509.NewCertPool()
	pool.AddCert(caCert)

	code, err := codeIdentity(cfg)
	if err != nil {
		return nil, err
	}
	encl, err := platform.Launch(code)
	if err != nil {
		return nil, err
	}

	rootKey := cfg.RootKey
	keyOrigin := "root_replicated" // injected via §V-F replication
	if rootKey == nil {
		rootKey, keyOrigin, err = loadOrCreateRootKey(encl, cfg.GroupStore)
		if err != nil {
			return nil, err
		}
	}

	if cfg.AuditStore != nil {
		auditKeys, err := audit.DeriveKeys(rootKey)
		if err != nil {
			return nil, err
		}
		auditOpt := cfg.Audit
		if auditOpt.Obs == nil {
			auditOpt.Obs = sObs.reg
		}
		auditBackend := store.NewInstrumented(cfg.AuditStore, "audit", sObs.reg)
		log, err := audit.Open(auditBackend, auditKeys, encl.Counter("audit-log"), auditOpt)
		if err != nil {
			return nil, fmt.Errorf("segshare: open audit log: %w", err)
		}
		sObs.audit = log
		// The first record of every run documents how the enclave came by
		// SK_r: generated fresh, unsealed from storage, or replicated.
		log.Emit(audit.Event{Event: audit.EventKeyOp, Detail: keyOrigin})
	}

	var contentGuard, groupGuard rollback.RootGuard
	switch cfg.Features.Guard {
	case GuardProtectedMemory:
		contentGuard = rollback.NewProtectedMemoryGuard(encl, "content-root")
		groupGuard = rollback.NewProtectedMemoryGuard(encl, "group-root")
	case GuardCounter:
		contentGuard = rollback.NewCounterGuard(encl, "content-root")
		groupGuard = rollback.NewCounterGuard(encl, "group-root")
	}

	recovery := cfg.Recovery
	if recovery == nil {
		recovery = &RecoveryState{}
	}
	var jl *journal.Journal
	if !cfg.DisableJournal {
		jKeys, err := journal.DeriveKeys(rootKey)
		if err != nil {
			return nil, err
		}
		// Journal records live next to the !meta:* objects in the group
		// store; sequence numbers bind to an enclave monotonic counter.
		jl, err = journal.Open(cfg.GroupStore, jKeys, encl.Counter("journal"),
			journal.Options{Obs: sObs.reg, OnScan: recovery.progress})
		if err != nil {
			return nil, fmt.Errorf("segshare: open journal: %w", err)
		}
	}

	cacheBytes := cfg.CacheBytes
	switch {
	case cacheBytes == 0:
		cacheBytes = defaultCacheBytes
	case cacheBytes < 0:
		cacheBytes = 0 // disabled
	}
	cryptoWorkers := cfg.CryptoWorkers
	switch {
	case cryptoWorkers == 0:
		cryptoWorkers = pfs.DefaultWorkers()
	case cryptoWorkers < 0:
		cryptoWorkers = 1
	}
	sObs.cryptoWorkers.Set(int64(cryptoWorkers))
	// The degraded gate runs at the head of every mutation (txn.go). It
	// uses MutationsAllowed — not State — so that once a breaker's
	// cooldown elapses the gating mutation itself flows down to the
	// store layer as a half-open probe; gating on State alone would
	// leave no traffic to close the breaker with.
	var degradedGate func() error
	if len(resilientStores) > 0 {
		degradedGate = func() error {
			for _, rw := range resilientStores {
				if !rw.MutationsAllowed() {
					return fmt.Errorf("%w (%s store breaker %s)", ErrDegraded, rw.Role(), rw.State())
				}
			}
			return nil
		}
	}
	fm, err := newFileManager(fmConfig{
		rootKey:       rootKey,
		contentStore:  cfg.ContentStore,
		groupStore:    cfg.GroupStore,
		dedupStore:    cfg.DedupStore,
		hidePaths:     cfg.Features.HidePaths,
		rollbackOn:    cfg.Features.RollbackProtection,
		dedupEnabled:  cfg.Features.Dedup,
		contentGuard:  contentGuard,
		groupGuard:    groupGuard,
		cacheBytes:    cacheBytes,
		cryptoWorkers: cryptoWorkers,
		journal:       jl,
		recovery:      recovery,
		degradedGate:  degradedGate,
		obs:           sObs,
	})
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:       cfg,
		enclave:   encl,
		caPub:     caPub,
		caPool:    pool,
		fm:        fm,
		resilient: resilientStores,
		ac:        &accessControl{fm: fm, fso: userID(cfg.FileSystemOwner)},
		certifier: newCertifier(encl, cfg.GroupStore, caPub),
		obs:       sObs,
		recovery:  recovery,
		// The journal relies on at most one mutation being in flight
		// (txn.go stages per-operation state on the file manager), which
		// coupled mode guarantees; rollback protection needs it anyway.
		locks: newLockManager(cfg.LockShards, cfg.Features.RollbackProtection || jl != nil, sObs),
	}

	// Adaptive admission control and the request-body cap (DESIGN §16).
	// The AIMD latency target inherits the SLO threshold so "overloaded"
	// and "missing the SLO" mean the same thing.
	if cfg.Admission != nil && cfg.Admission.Enable {
		acfg := *cfg.Admission
		if acfg.LatencyTarget <= 0 && cfg.SLO != nil && cfg.SLO.LatencyThreshold > 0 {
			acfg.LatencyTarget = cfg.SLO.LatencyThreshold
		}
		s.admission = newAdmissionController(acfg, sObs.reg)
	}
	switch {
	case cfg.MaxBodyBytes == 0:
		s.maxBody = defaultMaxBodyBytes
	case cfg.MaxBodyBytes > 0:
		s.maxBody = cfg.MaxBodyBytes
	}

	// segshare_build_info pins the deployment's shape next to its
	// metrics: the enclave version and which durability/integrity
	// subsystems are on. All values come from a closed configuration
	// set — never request data.
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	sObs.reg.Gauge("segshare_build_info",
		"Constant 1; labels carry the enclave version and feature switches.",
		obs.Labels{
			"version":  fmt.Sprintf("v%d", cfg.Version),
			"journal":  onOff(jl != nil),
			"rollback": onOff(cfg.Features.RollbackProtection),
			"audit":    onOff(sObs.audit != nil),
		}).Set(1)

	// The SLO engine watches the request stream through finishRequest;
	// a breach retains the evidence trail: force-sampled traces of the
	// offending op class, an audit record, and (fast burns) a profile
	// pair captured at the moment of breach, all joined by trace id.
	if cfg.SLO != nil {
		sloCfg := *cfg.SLO
		sloCfg.Obs = sObs.reg
		sloCfg.OnBreach = func(op, speed string, burnMilli int64) {
			_, oldestID := sObs.traces.ForceSampleOp(op, sloForceSampleNext)
			sObs.auditEmit(audit.Event{
				Event:     audit.EventSLOBreach,
				Op:        op,
				Detail:    speed,
				RequestID: oldestID,
			})
			if speed == obs.BreachFast {
				sObs.profiler.Trigger("slo_"+speed, oldestID)
			}
		}
		sObs.slo = obs.NewSLOEngine(sloCfg)
		sObs.slo.Start()
	}

	if cfg.Watchdog.Enable {
		wcfg := cfg.Watchdog.withDefaults()
		// lastDeadlineID remembers the oldest over-deadline request's
		// trace id so the triggered profile capture can name it.
		var lastDeadlineID atomic.Uint64
		wd := obs.NewWatchdog(obs.WatchdogOptions{
			Interval: wcfg.Interval,
			Obs:      sObs.reg,
			OnTrigger: func(check string) {
				sObs.auditEmit(audit.Event{Event: audit.EventWatchdog, Detail: check})
				var tid uint64
				if check == "request_deadline" {
					tid = lastDeadlineID.Load()
				}
				sObs.profiler.Trigger("watchdog_"+check, tid)
			},
		})
		_ = wd.AddCheck("request_deadline", func() error {
			if sObs.requests != nil {
				// The registry is exact: it knows each live request's op
				// and id, not just counts and ages.
				n, oldest, oldestID, op := sObs.requests.overDeadline(wcfg.RequestDeadline)
				if n > 0 {
					lastDeadlineID.Store(oldestID)
					return fmt.Errorf("%d requests in flight past %v (oldest %v, op %s)",
						n, wcfg.RequestDeadline, oldest.Round(time.Millisecond), op)
				}
				return nil
			}
			n, oldest := sObs.traces.OverDeadline(wcfg.RequestDeadline)
			if n > 0 {
				return fmt.Errorf("%d requests in flight past %v (oldest %v)",
					n, wcfg.RequestDeadline, oldest.Round(time.Millisecond))
			}
			return nil
		})
		if cfg.Exporter != nil {
			// Sustained export drops become a stalled-state transition
			// instead of only a counter quietly climbing.
			_ = wd.AddCheck("export_saturation", cfg.Exporter.SaturationProbe(5))
		}
		if sObs.audit != nil {
			_ = wd.AddCheck("audit_backlog", func() error {
				queued, capacity := sObs.audit.Backlog()
				if capacity > 0 && queued*10 >= capacity*9 {
					return fmt.Errorf("audit queue %d/%d (>= 90%%): writer wedged or lagging", queued, capacity)
				}
				return nil
			})
		}
		if jl != nil {
			_ = wd.AddCheck("journal_recovery", func() error {
				return recovery.Overrun(wcfg.RecoveryOverrun)
			})
		}
		_ = wd.AddCheck("lock_shard_skew", s.locks.skewProbe(wcfg.ShardSkew))
		wd.Start()
		s.watchdog = wd
	}

	s.bridge = enclave.NewBridge(cfg.Bridge)
	s.endpoint = enctls.NewTrustedEndpoint(s.bridge, &tls.Config{ClientCAs: pool})
	s.certifier.setOnInstall(s.endpoint.SetCertificate)
	if _, err := s.certifier.loadPersisted(); err != nil {
		s.bridge.Close()
		return nil, err
	}
	return s, nil
}

// loadOrCreateRootKey unseals SK_r from untrusted storage or generates
// and seals a fresh one on first start (paper §IV-B). The second return
// value names how the key was obtained, for the audit trail.
func loadOrCreateRootKey(encl *enclave.Enclave, meta store.Backend) ([]byte, string, error) {
	sealed, err := meta.Get(metaRootKey)
	switch {
	case err == nil:
		rootKey, err := encl.Unseal(sealed, []byte(metaRootKey))
		if err != nil {
			return nil, "", fmt.Errorf("segshare: unseal root key: %w", err)
		}
		return rootKey, "root_unseal", nil
	case errors.Is(err, store.ErrNotExist):
		rootKey := make([]byte, 32)
		if err := fillRandom(rootKey); err != nil {
			return nil, "", err
		}
		sealed, err := encl.Seal(rootKey, []byte(metaRootKey))
		if err != nil {
			return nil, "", err
		}
		if err := meta.Put(metaRootKey, sealed); err != nil {
			return nil, "", fmt.Errorf("segshare: persist root key: %w", err)
		}
		return rootKey, "root_generate", nil
	default:
		return nil, "", fmt.Errorf("segshare: load root key: %w", err)
	}
}

// Certifier returns the trusted certification component for the CA's
// provisioning protocol.
func (s *Server) Certifier() *Certifier { return s.certifier }

// Measurement returns the enclave's measurement, which the CA verifies
// during attestation.
func (s *Server) Measurement() enclave.Measurement { return s.enclave.Measurement() }

// Enclave exposes the underlying (simulated) enclave, e.g. for
// replication protocols.
func (s *Server) Enclave() *enclave.Enclave { return s.enclave }

// RootKey returns SK_r for the replication provider (paper §V-F). In a
// real TEE deployment this accessor does not cross the enclave boundary:
// only trusted code (the replication component) may call it. Each export
// is a key operation in the audit trail.
func (s *Server) RootKey() []byte {
	s.obs.auditEmit(audit.Event{Event: audit.EventKeyOp, Detail: "root_export"})
	out := make([]byte, len(s.fm.rootKey))
	copy(out, s.fm.rootKey)
	return out
}

// AuditLog returns the tamper-evident audit log, or nil when
// Config.AuditStore was not set.
func (s *Server) AuditLog() *audit.Log { return s.obs.audit }

// AuditHeadHandler serves GET /debug/audit/head on the admin listener:
// the sealed chain head, record/checkpoint counts, and the checkpoint
// counter. Leak budget: the head is a digest over ciphertext the host
// already stores; no principals, paths, or record contents appear.
func (s *Server) AuditHeadHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.obs.audit == nil {
			writeErr(w, http.StatusNotFound, errors.New("audit log disabled"))
			return
		}
		if err := s.obs.audit.Flush(); err != nil {
			writeErr(w, http.StatusInternalServerError, errors.New("audit flush failed"))
			return
		}
		writeJSON(w, http.StatusOK, s.obs.audit.Head())
	})
}

// Fsck walks the full file-system state of both stores under the
// whole-tree barrier: every node is decoded and (with rollback
// protection) validated against the hash tree and root guards, every
// directory entry must resolve, and every dedup indirection must reach
// its content. Used by the fault-injection harness and available to
// operators after a restore.
func (s *Server) Fsck() error {
	unlock := s.locks.wholeTree(nil)
	defer unlock()
	return s.fm.validateAll()
}

// CheckStore probes the content store, for readiness checks.
func (s *Server) CheckStore() error {
	_, err := s.cfg.ContentStore.Exists(metaRootKey)
	return err
}

// CheckDegraded reports an error while any store circuit breaker is not
// closed, i.e. the server is serving in degraded read-only mode. Wire it
// as a /readyz check named "store_degraded"; the health endpoint prints
// only the check name, and the error body here names only the store role
// and breaker state (both closed sets). Deployments without
// Config.Resilience always pass.
func (s *Server) CheckDegraded() error {
	for _, rw := range s.resilient {
		if st := rw.State(); st != store.BreakerClosed {
			return fmt.Errorf("%s store breaker %s: degraded read-only mode", rw.Role(), st)
		}
	}
	return nil
}

// CheckEnclave reports whether the enclave is launched, for readiness
// checks.
func (s *Server) CheckEnclave() error {
	if s.enclave == nil {
		return errors.New("enclave not launched")
	}
	return nil
}

// BridgeMetrics returns switchless-call traffic counters.
func (s *Server) BridgeMetrics() enclave.BridgeMetrics { return s.bridge.Metrics() }

// Obs returns the server's metric registry, e.g. to mount obs.Handler on
// an untrusted admin listener.
func (s *Server) Obs() *obs.Registry { return s.obs.reg }

// Traces returns the server's request trace recorder.
func (s *Server) Traces() *obs.TraceRecorder { return s.obs.traces }

// SLO returns the burn-rate engine, or nil when Config.SLO was not set.
func (s *Server) SLO() *obs.SLOEngine { return s.obs.slo }

// SLOHandler serves GET /debug/slo: per-op-class burn-rate status in
// leak-bounded form (closed window names, log2-bucketed counts).
func (s *Server) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.obs.slo == nil {
			writeErr(w, http.StatusNotFound, errors.New("slo engine disabled"))
			return
		}
		s.obs.slo.Handler().ServeHTTP(w, r)
	})
}

// HotHandler serves GET /debug/hot: the per-group heavy-hitter sketch
// (pseudonymized ids, log2-bucketed counts).
func (s *Server) HotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.obs.hot == nil {
			writeErr(w, http.StatusNotFound, errors.New("heavy-hitter accounting disabled"))
			return
		}
		s.obs.hot.Handler().ServeHTTP(w, r)
	})
}

// HotStatus returns the per-group heavy-hitter snapshot, empty when
// accounting is disabled.
func (s *Server) HotStatus() obs.HotStatus { return s.obs.hot.Snapshot() }

// Watchdog returns the stall watchdog, or nil when disabled. Mount its
// Handler under /debug/watchdog on the admin listener.
func (s *Server) Watchdog() *obs.Watchdog { return s.watchdog }

// Recovery returns the journal-recovery state for readiness checks
// (Check) and inspection; never nil.
func (s *Server) Recovery() *RecoveryState { return s.recovery }

// HasCertificate reports whether a server certificate is installed.
func (s *Server) HasCertificate() bool {
	_, err := s.certifier.Certificate()
	return err == nil
}

// Serve accepts TLS clients on the given TCP listener until Close. It
// fails immediately if no server certificate has been provisioned.
func (s *Server) Serve(listener net.Listener) error {
	cert, err := s.certifier.Certificate()
	if err != nil {
		return err
	}
	s.endpoint.SetCertificate(cert)

	var startErr error
	s.serveOnce.Do(func() {
		s.terminator = enctls.NewUntrustedTerminator(s.bridge, listener)
		s.httpServer = &http.Server{
			Handler:           s.handler(),
			ReadHeaderTimeout: 30 * time.Second,
			// Whole-request bounds against slow-loris clients. Generous
			// enough for multi-GiB transfers over slow links while still
			// reclaiming wedged connections; header parsing stays on the
			// tighter bound above.
			ReadTimeout:  5 * time.Minute,
			WriteTimeout: 5 * time.Minute,
			IdleTimeout:  2 * time.Minute,
			// Expose the connection to the handler so per-request
			// ecall/ocall deltas can be read off the bridge conn.
			ConnContext: func(ctx context.Context, c net.Conn) context.Context {
				return context.WithValue(ctx, connCtxKey{}, c)
			},
			// Failed handshakes (e.g. rejected client certificates) are
			// expected under the threat model; route them to the
			// structured logger at debug level (discarded by default).
			ErrorLog: slog.NewLogLogger(s.obs.logger.Handler(), slog.LevelDebug),
		}
		go func() {
			_ = s.httpServer.Serve(s.endpoint)
		}()
	})
	return startErr
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	listener, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := s.Serve(listener); err != nil {
		listener.Close()
		return nil, err
	}
	return listener.Addr(), nil
}

// Addr returns the listening address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	if s.terminator == nil {
		return nil
	}
	return s.terminator.Addr()
}

// inflightCount reports how many requests are currently inside the
// handler chain, preferring the in-flight registry (exact, keyed by
// trace id) and falling back to the inflight gauge.
func (s *Server) inflightCount() int {
	if s.obs.requests != nil {
		return s.obs.requests.size()
	}
	return int(s.obs.inflight.Value())
}

// Drain gracefully quiesces the request plane ahead of Close. It stops
// admitting new requests (admit returns ErrOverloaded, so callers see a
// 503 with Retry-After and a load balancer watching CheckDraining stops
// routing here), waits until every in-flight request finishes or ctx
// expires, closes the journal against new intents (mutations that
// committed before the close still retire via MarkApplied, so a clean
// drain leaves an empty replay set), then flushes the audit log and the
// telemetry exporter so no enqueued record is lost. The outcome is
// recorded as an EventDrain audit event and in the segshare_drain_ns /
// segshare_drain_remaining gauges.
//
// Drain runs once; later calls return nil without waiting. It returns
// an error when the deadline expired with requests still in flight or
// the audit flush failed. Callers still invoke Close afterwards.
func (s *Server) Drain(ctx context.Context) error {
	var err error
	s.drainOnce.Do(func() {
		start := time.Now()
		s.draining.Store(true)
		remaining := s.inflightCount()
		if remaining > 0 {
			ticker := time.NewTicker(5 * time.Millisecond)
			defer ticker.Stop()
		wait:
			for remaining > 0 {
				select {
				case <-ctx.Done():
					break wait
				case <-ticker.C:
					remaining = s.inflightCount()
				}
			}
		}
		waited := time.Since(start)
		if s.fm.journal != nil {
			s.fm.journal.Close()
		}
		s.obs.drainNs.Set(int64(waited))
		s.obs.drainRemaining.Set(int64(remaining))
		s.obs.auditEmit(audit.Event{
			Event:  audit.EventDrain,
			Detail: fmt.Sprintf("waited %s, %d in flight at deadline", waited.Round(time.Millisecond), remaining),
		})
		if s.obs.audit != nil {
			err = s.obs.audit.Flush()
		}
		if s.obs.exporter != nil {
			s.obs.exporter.Flush()
		}
		if remaining > 0 && err == nil {
			err = fmt.Errorf("segshare: drain deadline: %d requests still in flight", remaining)
		}
	})
	return err
}

// CheckDraining reports an error once Drain has begun. Wire it as a
// /readyz check named "draining" so load balancers pull the instance
// out of rotation while in-flight requests finish.
func (s *Server) CheckDraining() error {
	if s.draining.Load() {
		return errors.New("draining")
	}
	return nil
}

// Close shuts the server down: terminator, HTTP server, endpoint, bridge,
// and the audit log (which drains its queue and seals a final checkpoint).
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.watchdog != nil {
			s.watchdog.Stop()
		}
		if s.obs.slo != nil {
			s.obs.slo.Stop()
		}
		if s.terminator != nil {
			err = s.terminator.Close()
		}
		if s.httpServer != nil {
			s.httpServer.Close()
		}
		s.endpoint.Close()
		s.bridge.Close()
		if s.obs.audit != nil {
			if aerr := s.obs.audit.Close(); aerr != nil && err == nil {
				err = aerr
			}
		}
	})
	return err
}

func fillRandom(b []byte) error {
	if _, err := randRead(b); err != nil {
		return fmt.Errorf("segshare: random: %w", err)
	}
	return nil
}
