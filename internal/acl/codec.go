package acl

import (
	"encoding/binary"
	"fmt"
)

// Administration-file type tags. Each encoded file starts with its tag so
// a confused deputy (e.g. an ACL swapped for a member list by a path bug)
// is caught at decode time; swaps by the adversary are already caught by
// the PAE associated data.
const (
	tagACL        = 0xA1
	tagMemberList = 0xA2
	tagGroupList  = 0xA3
)

type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() (byte, error) {
	if r.off+1 > len(r.buf) {
		return 0, ErrCodec
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, ErrCodec
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, ErrCodec
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v, nil
}

func (r *reader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(r.buf)-r.off)
	}
	return nil
}

// maxListLen bounds decoded list lengths to the remaining buffer so a
// corrupted count cannot trigger huge allocations.
func (r *reader) maxListLen(elemSize int) int {
	return (len(r.buf) - r.off) / elemSize
}

func (r *reader) groupIDs() ([]GroupID, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > r.maxListLen(4) {
		return nil, ErrCodec
	}
	ids := make([]GroupID, n)
	for i := range ids {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		ids[i] = GroupID(v)
		if i > 0 && ids[i] <= ids[i-1] {
			return nil, fmt.Errorf("%w: group list not strictly sorted", ErrCodec)
		}
	}
	return ids, nil
}

func appendGroupIDs(out []byte, ids []GroupID) []byte {
	out = binary.BigEndian.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		out = binary.BigEndian.AppendUint32(out, uint32(id))
	}
	return out
}

// Encode serialises the ACL. The layout matches the paper's accounting:
// 32 bits for owner count and flags, 32 bits per owner, and 32+32 bits
// per permission entry (§VII-B).
func (a *ACL) Encode() []byte {
	out := make([]byte, 0, 1+4+4+4*len(a.Owners)+4+8*len(a.Entries))
	out = append(out, tagACL)
	var flags uint32
	if a.Inherit {
		flags |= 1
	}
	out = binary.BigEndian.AppendUint32(out, flags)
	out = appendGroupIDs(out, a.Owners)
	out = binary.BigEndian.AppendUint32(out, uint32(len(a.Entries)))
	for _, e := range a.Entries {
		out = binary.BigEndian.AppendUint32(out, uint32(e.Group))
		out = binary.BigEndian.AppendUint32(out, uint32(e.Perm))
	}
	return out
}

// DecodeACL parses an encoded ACL, validating sortedness and bounds.
func DecodeACL(data []byte) (*ACL, error) {
	r := &reader{buf: data}
	tag, err := r.u8()
	if err != nil || tag != tagACL {
		return nil, fmt.Errorf("%w: not an ACL file", ErrCodec)
	}
	flags, err := r.u32()
	if err != nil {
		return nil, err
	}
	if flags&^uint32(1) != 0 {
		return nil, fmt.Errorf("%w: unknown ACL flags %#x", ErrCodec, flags)
	}
	a := &ACL{Inherit: flags&1 != 0}
	if a.Owners, err = r.groupIDs(); err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > r.maxListLen(8) {
		return nil, ErrCodec
	}
	a.Entries = make([]PermEntry, n)
	for i := range a.Entries {
		g, err := r.u32()
		if err != nil {
			return nil, err
		}
		p, err := r.u32()
		if err != nil {
			return nil, err
		}
		a.Entries[i] = PermEntry{Group: GroupID(g), Perm: Permission(p)}
		if i > 0 && a.Entries[i].Group <= a.Entries[i-1].Group {
			return nil, fmt.Errorf("%w: ACL entries not strictly sorted", ErrCodec)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return a, nil
}

// Encode serialises the member list.
func (m *MemberList) Encode() []byte {
	out := make([]byte, 0, 1+4+4*len(m.Groups))
	out = append(out, tagMemberList)
	return appendGroupIDs(out, m.Groups)
}

// DecodeMemberList parses an encoded member list.
func DecodeMemberList(data []byte) (*MemberList, error) {
	r := &reader{buf: data}
	tag, err := r.u8()
	if err != nil || tag != tagMemberList {
		return nil, fmt.Errorf("%w: not a member list file", ErrCodec)
	}
	m := &MemberList{}
	if m.Groups, err = r.groupIDs(); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode serialises the group list.
func (l *GroupList) Encode() []byte {
	out := []byte{tagGroupList}
	out = binary.BigEndian.AppendUint32(out, uint32(l.NextID))
	out = binary.BigEndian.AppendUint32(out, uint32(len(l.Groups)))
	for _, g := range l.Groups {
		out = binary.BigEndian.AppendUint32(out, uint32(g.ID))
		out = binary.BigEndian.AppendUint32(out, uint32(len(g.Name)))
		out = append(out, g.Name...)
		out = appendGroupIDs(out, g.Owners)
	}
	return out
}

// DecodeGroupList parses an encoded group list, validating ID order, name
// uniqueness, and that NextID exceeds every present ID.
func DecodeGroupList(data []byte) (*GroupList, error) {
	r := &reader{buf: data}
	tag, err := r.u8()
	if err != nil || tag != tagGroupList {
		return nil, fmt.Errorf("%w: not a group list file", ErrCodec)
	}
	next, err := r.u32()
	if err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > r.maxListLen(12) {
		return nil, ErrCodec
	}
	l := &GroupList{NextID: GroupID(next), Groups: make([]GroupRecord, n)}
	names := make(map[GroupName]bool, n)
	for i := range l.Groups {
		id, err := r.u32()
		if err != nil {
			return nil, err
		}
		nameLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		nameBytes, err := r.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		owners, err := r.groupIDs()
		if err != nil {
			return nil, err
		}
		rec := GroupRecord{ID: GroupID(id), Name: GroupName(nameBytes), Owners: owners}
		if rec.Name == "" {
			return nil, fmt.Errorf("%w: empty group name", ErrCodec)
		}
		if names[rec.Name] {
			return nil, fmt.Errorf("%w: duplicate group name %q", ErrCodec, rec.Name)
		}
		names[rec.Name] = true
		if i > 0 && rec.ID <= l.Groups[i-1].ID {
			return nil, fmt.Errorf("%w: group records not strictly sorted", ErrCodec)
		}
		if rec.ID >= l.NextID {
			return nil, fmt.Errorf("%w: group ID %d not below NextID %d", ErrCodec, rec.ID, l.NextID)
		}
		l.Groups[i] = rec
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return l, nil
}
