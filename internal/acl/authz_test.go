package acl

import (
	"math/rand"
	"testing"
)

func members(gs ...GroupID) *MemberList {
	var m MemberList
	for _, g := range gs {
		m.Add(g)
	}
	return &m
}

func TestAuthorizeFileMatrix(t *testing.T) {
	fileACL := &ACL{}
	fileACL.AddOwner(10)
	fileACL.SetPermission(1, PermRead)
	fileACL.SetPermission(2, PermWrite)
	fileACL.SetPermission(3, PermReadWrite)
	fileACL.SetPermission(4, PermDeny)

	tests := []struct {
		name   string
		member *MemberList
		want   Permission
		ok     bool
	}{
		{name: "reader can read", member: members(1), want: PermRead, ok: true},
		{name: "reader cannot write", member: members(1), want: PermWrite, ok: false},
		{name: "writer can write", member: members(2), want: PermWrite, ok: true},
		{name: "writer cannot read", member: members(2), want: PermRead, ok: false},
		{name: "rw can do both", member: members(3), want: PermReadWrite, ok: true},
		{name: "union across groups", member: members(1, 2), want: PermReadWrite, ok: true},
		{name: "no groups", member: members(), want: PermRead, ok: false},
		{name: "unlisted group", member: members(9), want: PermRead, ok: false},
		{name: "deny blocks grant", member: members(3, 4), want: PermRead, ok: false},
		{name: "deny alone", member: members(4), want: PermRead, ok: false},
		{name: "owner can read", member: members(10), want: PermRead, ok: true},
		{name: "owner can write", member: members(10), want: PermWrite, ok: true},
		{name: "owner overrides deny", member: members(10, 4), want: PermRead, ok: true},
		{name: "owner-level op needs ownership", member: members(3), want: PermNone, ok: false},
		{name: "owner-level op as owner", member: members(10), want: PermNone, ok: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AuthorizeFile(tt.member, fileACL, nil, tt.want); got != tt.ok {
				t.Fatalf("AuthorizeFile = %v, want %v", got, tt.ok)
			}
		})
	}
}

func TestAuthorizeFileNilACL(t *testing.T) {
	if AuthorizeFile(members(1), nil, nil, PermRead) {
		t.Fatal("nil ACL authorized")
	}
}

func TestAuthorizeFileInheritance(t *testing.T) {
	parent := &ACL{}
	parent.SetPermission(1, PermReadWrite)
	parent.SetPermission(2, PermRead)
	parent.SetPermission(4, PermRead)

	child := &ACL{Inherit: true}
	child.SetPermission(2, PermDeny) // local deny has precedence (paper §V-B)
	child.SetPermission(3, PermRead) // local-only grant
	child.SetPermission(4, PermReadWrite)

	tests := []struct {
		name   string
		member *MemberList
		want   Permission
		ok     bool
	}{
		{name: "inherited grant", member: members(1), want: PermReadWrite, ok: true},
		{name: "local deny beats inherited grant", member: members(2), want: PermRead, ok: false},
		{name: "local grant without parent entry", member: members(3), want: PermRead, ok: true},
		{name: "local entry precedence over parent", member: members(4), want: PermWrite, ok: true},
		{name: "absent everywhere", member: members(9), want: PermRead, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AuthorizeFile(tt.member, child, parent, tt.want); got != tt.ok {
				t.Fatalf("AuthorizeFile = %v, want %v", got, tt.ok)
			}
		})
	}

	t.Run("no inherit flag ignores parent", func(t *testing.T) {
		noInherit := &ACL{}
		noInherit.SetPermission(3, PermRead)
		if AuthorizeFile(members(1), noInherit, parent, PermRead) {
			t.Fatal("parent grant applied without inherit flag")
		}
	})
}

func TestAuthorizeGroupChange(t *testing.T) {
	target := &GroupRecord{ID: 5, Name: "g"}
	target.AddOwner(2)
	target.AddOwner(7)

	if !AuthorizeGroupChange(members(1, 2), target) {
		t.Fatal("owner membership not authorized")
	}
	if AuthorizeGroupChange(members(1, 3), target) {
		t.Fatal("non-owner authorized")
	}
	if AuthorizeGroupChange(members(), target) {
		t.Fatal("empty membership authorized")
	}
	if AuthorizeGroupChange(members(2), nil) {
		t.Fatal("nil target authorized")
	}
}

func TestEffectivePermission(t *testing.T) {
	fileACL := &ACL{}
	fileACL.AddOwner(10)
	fileACL.SetPermission(1, PermRead)
	fileACL.SetPermission(2, PermWrite)
	fileACL.SetPermission(4, PermDeny)

	tests := []struct {
		name   string
		member *MemberList
		want   Permission
	}{
		{name: "reader", member: members(1), want: PermRead},
		{name: "union", member: members(1, 2), want: PermReadWrite},
		{name: "owner", member: members(10), want: PermReadWrite},
		{name: "denied", member: members(1, 4), want: PermNone},
		{name: "stranger", member: members(9), want: PermNone},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EffectivePermission(tt.member, fileACL, nil); got != tt.want {
				t.Fatalf("EffectivePermission = %v, want %v", got, tt.want)
			}
		})
	}
	if EffectivePermission(members(1), nil, nil) != PermNone {
		t.Fatal("nil ACL yielded permissions")
	}
}

// Revocation is a pure ACL-file operation: after removing the entry, the
// same member list is immediately unauthorized (objectives P3, S4).
func TestImmediateRevocation(t *testing.T) {
	fileACL := &ACL{}
	fileACL.SetPermission(1, PermReadWrite)
	m := members(1)
	if !AuthorizeFile(m, fileACL, nil, PermRead) {
		t.Fatal("setup: not authorized")
	}
	fileACL.RemovePermission(1)
	if AuthorizeFile(m, fileACL, nil, PermRead) {
		t.Fatal("revoked group still authorized")
	}
}

// TestQuickAuthorizeAgainstSpec cross-checks AuthorizeFile against a
// direct, unoptimized transcription of the paper's predicate (Table IV
// plus the §V-B inheritance rule and the deny/owner conventions from
// DESIGN.md §6).
func TestQuickAuthorizeAgainstSpec(t *testing.T) {
	spec := func(member *MemberList, fileACL, parentACL *ACL, want Permission) bool {
		if fileACL == nil {
			return false
		}
		effective := func(g GroupID) (Permission, bool) {
			if p, ok := fileACL.PermissionFor(g); ok {
				return p, true
			}
			if fileACL.Inherit && parentACL != nil {
				return parentACL.PermissionFor(g)
			}
			return PermNone, false
		}
		for _, g := range member.Groups {
			if fileACL.IsOwner(g) {
				return true
			}
		}
		if want == PermNone {
			return false
		}
		var grants Permission
		for _, g := range member.Groups {
			p, ok := effective(g)
			if !ok {
				continue
			}
			if p.Has(PermDeny) {
				return false
			}
			grants |= p
		}
		return grants.Has(want)
	}

	rng := rand.New(rand.NewSource(99))
	buildACL := func() *ACL {
		a := &ACL{Inherit: rng.Intn(2) == 0}
		for i, n := 0, rng.Intn(6); i < n; i++ {
			perm := []Permission{PermRead, PermWrite, PermReadWrite, PermDeny}[rng.Intn(4)]
			a.SetPermission(GroupID(rng.Intn(8)+1), perm)
		}
		for i, n := 0, rng.Intn(3); i < n; i++ {
			a.AddOwner(GroupID(rng.Intn(8) + 1))
		}
		return a
	}
	for trial := 0; trial < 5000; trial++ {
		fileACL := buildACL()
		var parentACL *ACL
		if rng.Intn(2) == 0 {
			parentACL = buildACL()
		}
		var ml MemberList
		for i, n := 0, rng.Intn(5); i < n; i++ {
			ml.Add(GroupID(rng.Intn(8) + 1))
		}
		want := []Permission{PermRead, PermWrite, PermReadWrite, PermNone}[rng.Intn(4)]

		got := AuthorizeFile(&ml, fileACL, parentACL, want)
		expect := spec(&ml, fileACL, parentACL, want)
		if got != expect {
			t.Fatalf("trial %d: AuthorizeFile=%v spec=%v\nml=%v\nfile=%+v\nparent=%+v\nwant=%v",
				trial, got, expect, ml.Groups, fileACL, parentACL, want)
		}
	}
}
