package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// waitRecords polls the sink until it holds at least n records.
func waitRecords(t *testing.T, sink *MemorySink, n int) []ExportRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs := sink.Records()
		if len(recs) >= n {
			return recs
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink holds %d records, want >= %d", len(recs), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestExporterPrependsBatchMeta(t *testing.T) {
	sink := NewMemorySink()
	e := NewExporter(sink, ExporterOptions{FlushInterval: 5 * time.Millisecond})
	defer e.Close()

	p, _ := NewPseudonymizer()
	hot := NewTopK(4)
	hot.Offer(p.Pseudonym("group:eng"), 3, 100)
	e.SetMeta(func() BatchMeta {
		h := hot.Snapshot()
		return BatchMeta{Hot: &h}
	})

	e.EnqueueEvent(NewWideEvent("fs_get", "2xx", 1, false, time.Millisecond, 0, 0, nil))
	recs := waitRecords(t, sink, 2)

	if recs[0].Kind != "batch_meta" || recs[0].Meta == nil {
		t.Fatalf("batch does not lead with metadata: %+v", recs[0])
	}
	m := *recs[0].Meta
	if m.TimeUnixMs == 0 {
		t.Error("exporter did not stamp the flush time")
	}
	if err := VerifyBatchMeta(m); err != nil {
		t.Fatalf("VerifyBatchMeta: %v", err)
	}
	if m.Hot == nil || len(m.Hot.Entries) != 1 {
		t.Fatalf("batch meta hot snapshot = %+v, want the offered entry", m.Hot)
	}
	if recs[1].Kind != "wide_event" {
		t.Fatalf("record after meta = %q, want the enqueued event", recs[1].Kind)
	}
}

func TestExporterNoMetaWithoutSource(t *testing.T) {
	sink := NewMemorySink()
	e := NewExporter(sink, ExporterOptions{FlushInterval: 5 * time.Millisecond})
	defer e.Close()
	e.EnqueueEvent(NewWideEvent("fs_get", "2xx", 1, false, time.Millisecond, 0, 0, nil))
	recs := waitRecords(t, sink, 1)
	for _, r := range recs {
		if r.Kind == "batch_meta" {
			t.Fatal("meta record emitted with no SetMeta source installed")
		}
	}
}

func TestExporterQueueDepthGauge(t *testing.T) {
	reg := NewRegistry()
	sink := NewMemorySink()
	e := NewExporter(sink, ExporterOptions{Obs: reg, FlushInterval: 5 * time.Millisecond})
	e.EnqueueEvent(NewWideEvent("fs_get", "2xx", 1, false, time.Millisecond, 0, 0, nil))
	e.Close()

	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "segshare_export_queue_depth" {
			found = true
			if m.Value < 0 {
				t.Errorf("queue depth gauge = %v", m.Value)
			}
		}
	}
	if !found {
		t.Fatal("segshare_export_queue_depth not registered")
	}
	if errs := reg.VerifyAll(); len(errs) != 0 {
		t.Fatalf("VerifyAll: %v", errs)
	}
}

func TestSaturationProbeFlagsSustainedDrops(t *testing.T) {
	sink := &blockingSink{release: make(chan struct{})} // shared with exporter_test.go
	e := NewExporter(sink, ExporterOptions{QueueSize: 1, BatchSize: 1, FlushInterval: time.Hour})
	defer func() {
		close(sink.release)
		e.Close()
	}()

	ev := NewWideEvent("fs_get", "2xx", 1, false, time.Millisecond, 0, 0, nil)
	// First record reaches the sink and parks there; the exporter
	// goroutine is now stuck mid-flush.
	e.EnqueueEvent(ev)
	for sink.writes.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// One record fits the queue; everything further drops.
	e.EnqueueEvent(ev)

	probe := e.SaturationProbe(2)
	if err := probe(); err != nil {
		t.Fatalf("first sweep must only establish the baseline: %v", err)
	}
	if e.EnqueueEvent(ev) {
		t.Fatal("enqueue into a full queue did not drop")
	}
	if err := probe(); err != nil {
		t.Fatalf("one dropping sweep is below the window: %v", err)
	}
	e.EnqueueEvent(ev)
	if err := probe(); err == nil {
		t.Fatal("two consecutive dropping sweeps did not trip the probe")
	}
	// A quiet sweep resets the streak.
	if err := probe(); err != nil {
		t.Fatalf("probe did not recover after drops stopped: %v", err)
	}
}

func TestHTTPSinkPostsJSONArray(t *testing.T) {
	var mu sync.Mutex
	var gotCT string
	var gotBody []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		gotCT = r.Header.Get("Content-Type")
		gotBody, _ = io.ReadAll(r.Body)
	}))
	defer srv.Close()

	sink := NewHTTPSink(srv.URL, 1, time.Millisecond)
	recs := []ExportRecord{
		{Kind: "wide_event", Event: &WideEvent{Op: "fs_get"}},
		{Kind: "trace", Trace: &TraceSnapshot{ID: 7, Op: "fs_get"}},
	}
	if err := sink.Write(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotCT != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", gotCT)
	}
	var decoded []ExportRecord
	if err := json.Unmarshal(gotBody, &decoded); err != nil {
		t.Fatalf("body is not a JSON array: %v (%s)", err, gotBody)
	}
	if len(decoded) != 2 || decoded[0].Kind != "wide_event" || decoded[1].Kind != "trace" {
		t.Fatalf("decoded batch = %+v", decoded)
	}
}

func TestHTTPSinkBackoffHonorsContext(t *testing.T) {
	// A collector that always fails with a retryable status.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	sink := NewHTTPSink(srv.URL, 3, time.Hour) // hour-long backoff: only cancellation can end this
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := sink.Write(ctx, []ExportRecord{{Kind: "wide_event", Event: &WideEvent{Op: "fs_get"}}})
	if err != context.Canceled {
		t.Fatalf("Write under canceled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Write took %v; backoff ignored cancellation", elapsed)
	}
}
