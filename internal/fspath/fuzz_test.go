package fspath

import "testing"

// FuzzParse asserts Parse never panics, and accepted paths are stable
// under re-parsing and self-consistent with their decomposition.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"", "/", "/a", "/a/", "/a/b.txt", "/a//b", "/ünïcode/ f ", "/..", "x"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		again, err := Parse(p.String())
		if err != nil || again != p {
			t.Fatalf("unstable parse: %q -> %q (%v)", s, p, err)
		}
		if p.IsRoot() {
			return
		}
		parent := p.Parent()
		if !parent.IsDir() {
			t.Fatalf("parent of %q is not a directory: %q", p, parent)
		}
		// Rebuilding the child from parent+name gives the path back.
		var (
			rebuilt Path
			rErr    error
		)
		if p.IsDir() {
			rebuilt, rErr = parent.ChildDir(p.Name())
		} else {
			rebuilt, rErr = parent.ChildFile(p.Name())
		}
		if rErr != nil || rebuilt != p {
			t.Fatalf("decomposition broken: %q != %q (%v)", rebuilt, p, rErr)
		}
	})
}
