package pfs

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestEncryptCtxCancelled verifies chunk-level cancellation on the seal
// path: an already-canceled context stops both the serial and parallel
// pipelines with a context error instead of finishing the file.
func TestEncryptCtxCancelled(t *testing.T) {
	key, fileID := compatKeyID(t)
	plain := compatPlain(8 * ChunkSize)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, workers := range []int{1, 4} {
		if _, err := EncryptWorkersCtx(ctx, key, fileID, plain, workers); err == nil {
			t.Errorf("workers=%d: sealed a full file under a canceled context", workers)
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled in chain", workers, err)
		}
	}
}

// TestDecryptCtxCancelled is the open-path counterpart.
func TestDecryptCtxCancelled(t *testing.T) {
	key, fileID := compatKeyID(t)
	plain := compatPlain(8 * ChunkSize)
	blob, err := Encrypt(key, fileID, plain)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, workers := range []int{1, 4} {
		if _, err := DecryptWorkersCtx(ctx, key, fileID, blob, workers); err == nil {
			t.Errorf("workers=%d: opened a full file under a canceled context", workers)
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled in chain", workers, err)
		}
	}
}

// TestCtxPathsMatchSerialOutput proves the context-aware code paths
// produce byte-identical results to the established ones when the
// context stays live — including the ReadAt-based serial decrypt used
// only when a context is supplied.
func TestCtxPathsMatchSerialOutput(t *testing.T) {
	key, fileID := compatKeyID(t)
	ctx := context.Background()
	for _, size := range compatSizes {
		plain := compatPlain(size)
		for _, workers := range []int{1, 4} {
			blob, err := EncryptWorkersCtx(ctx, key, fileID, plain, workers)
			if err != nil {
				t.Fatalf("size=%d workers=%d encrypt: %v", size, workers, err)
			}
			// Cross-read with the plain serial path: same format.
			got, err := Decrypt(key, fileID, blob)
			if err != nil {
				t.Fatalf("size=%d workers=%d serial decrypt: %v", size, workers, err)
			}
			if !bytes.Equal(got, plain) {
				t.Fatalf("size=%d workers=%d: ctx encrypt round-trip mismatch", size, workers)
			}
			// And the ctx decrypt reads serially-produced blobs.
			got, err = DecryptWorkersCtx(ctx, key, fileID, blob, workers)
			if err != nil {
				t.Fatalf("size=%d workers=%d ctx decrypt: %v", size, workers, err)
			}
			if !bytes.Equal(got, plain) {
				t.Fatalf("size=%d workers=%d: ctx decrypt mismatch", size, workers)
			}
		}
	}
}
