package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// HandlerOption extends the admin mux built by Handler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	health *Health
	extra  map[string]http.Handler
}

// WithHealth mounts /healthz (liveness) and /readyz (readiness) backed by
// h. A nil h is ignored.
func WithHealth(h *Health) HandlerOption {
	return func(c *handlerConfig) { c.health = h }
}

// WithEndpoint mounts an extra handler on the admin mux. The caller is
// responsible for keeping its output within the leak budget.
func WithEndpoint(pattern string, h http.Handler) HandlerOption {
	return func(c *handlerConfig) {
		if c.extra == nil {
			c.extra = make(map[string]http.Handler)
		}
		c.extra[pattern] = h
	}
}

// Handler serves the observability endpoints on an *untrusted* admin
// listener, separate from the enclave-terminated client port:
//
//	/metrics        OpenMetrics text format with exemplars (Prometheus
//	                0.0.4 format when the client asks for it via
//	                ?format=prometheus)
//	/debug/vars     JSON snapshot of all metrics
//	/debug/traces   recent request traces (?n= limits the count, clamped
//	                to the recorder's ring capacity)
//	/debug/pprof/*  the standard net/http/pprof handlers
//	/healthz        liveness (with WithHealth)
//	/readyz         readiness (with WithHealth)
//
// Everything served here is aggregate, leak-budget-checked telemetry of
// the untrusted host process; pprof profiles the *host* Go runtime, which
// in a real SGX deployment corresponds to profiling the untrusted runtime
// and the simulated enclave code that, here, shares its address space.
// rec may be nil to disable the traces endpoint.
func Handler(reg *Registry, rec *TraceRecorder, opts ...HandlerOption) http.Handler {
	var cfg handlerConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = reg.WriteOpenMetrics(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w, rec)
	})
	if rec != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			// Clamp to the ring capacity: the recorder can never return
			// more traces than it holds, and an unbounded n would let an
			// admin-port client request arbitrarily large allocations.
			maxN := rec.Capacity()
			n := 50
			if n > maxN {
				n = maxN
			}
			if q := r.URL.Query().Get("n"); q != "" {
				if v, err := strconv.Atoi(q); err == nil && v > 0 {
					n = v
					if n > maxN {
						n = maxN
					}
				}
			}
			writeTraceJSON(w, rec.Recent(n))
		})
	}
	if cfg.health != nil {
		mux.HandleFunc("/healthz", cfg.health.handleLive)
		mux.HandleFunc("/readyz", cfg.health.handleReady)
	}
	for pattern, h := range cfg.extra {
		mux.Handle(pattern, h)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeTraceJSON(w http.ResponseWriter, traces []TraceSnapshot) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(traces)
}
