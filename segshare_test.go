package segshare_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"segshare"
	"segshare/internal/core"
	"segshare/internal/store"
)

// deployment is a full SeGShare installation: CA, platform, server
// serving on a loopback TCP port, and a client factory.
type deployment struct {
	authority *segshare.CertAuthority
	platform  *segshare.Platform
	server    *segshare.Server
	cfg       segshare.ServerConfig
	addr      string

	contentAdv *store.Adversary
	groupAdv   *store.Adversary
}

func deploy(t *testing.T, features segshare.Features, fso string) *deployment {
	t.Helper()
	authority, err := segshare.NewCA("Integration CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := segshare.NewPlatform(segshare.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	contentAdv := store.NewAdversary(store.NewMemory())
	groupAdv := store.NewAdversary(store.NewMemory())
	cfg := segshare.ServerConfig{
		CACertPEM:       authority.CertificatePEM(),
		ContentStore:    contentAdv,
		GroupStore:      groupAdv,
		DedupStore:      segshare.NewMemoryStore(),
		Features:        features,
		FileSystemOwner: fso,
	}
	server, err := segshare.NewServer(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := segshare.Provision(authority, platform, server, cfg, []string{"localhost"}); err != nil {
		t.Fatal(err)
	}
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return &deployment{
		authority:  authority,
		platform:   platform,
		server:     server,
		cfg:        cfg,
		addr:       addr.String(),
		contentAdv: contentAdv,
		groupAdv:   groupAdv,
	}
}

func (d *deployment) client(t *testing.T, user string) *segshare.Client {
	t.Helper()
	cred, err := d.authority.IssueClientCertificate(segshare.Identity{
		UserID: user,
		Email:  user + "@example.com",
	}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c, err := segshare.NewClient(segshare.ClientConfig{
		Addr:       d.addr,
		CACertPEM:  d.authority.CertificatePEM(),
		Credential: cred,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

var allFeatures = segshare.Features{
	Dedup:              true,
	HidePaths:          true,
	RollbackProtection: true,
	Guard:              segshare.GuardCounter,
}

func TestEndToEndSingleUser(t *testing.T) {
	for _, tt := range []struct {
		name     string
		features segshare.Features
	}{
		{name: "base", features: segshare.Features{}},
		{name: "all-extensions", features: allFeatures},
	} {
		t.Run(tt.name, func(t *testing.T) {
			d := deploy(t, tt.features, "")
			alice := d.client(t, "alice")

			who, err := alice.WhoAmI()
			if err != nil {
				t.Fatalf("WhoAmI: %v", err)
			}
			if who.UserID != "alice" || who.Email != "alice@example.com" {
				t.Fatalf("identity = %+v", who)
			}

			if err := alice.Mkdir("/docs/"); err != nil {
				t.Fatalf("Mkdir: %v", err)
			}
			content := bytes.Repeat([]byte("hello world "), 10_000)
			if err := alice.Upload("/docs/big.txt", content); err != nil {
				t.Fatalf("Upload: %v", err)
			}
			got, err := alice.Download("/docs/big.txt")
			if err != nil || !bytes.Equal(got, content) {
				t.Fatalf("Download: %d bytes, err %v", len(got), err)
			}

			listing, err := alice.List("/docs/")
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			if len(listing.Entries) != 1 || listing.Entries[0].Name != "big.txt" {
				t.Fatalf("listing = %+v", listing)
			}
			if listing.Entries[0].Permission != "rw" {
				t.Fatalf("owner permission = %s", listing.Entries[0].Permission)
			}

			if err := alice.Move("/docs/big.txt", "/docs/renamed.txt"); err != nil {
				t.Fatalf("Move: %v", err)
			}
			if _, err := alice.Download("/docs/big.txt"); !errors.Is(err, segshare.ErrNotFound) {
				t.Fatalf("old path after move: %v", err)
			}
			if err := alice.Remove("/docs/renamed.txt"); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if err := alice.Remove("/docs/"); err != nil {
				t.Fatalf("Remove dir: %v", err)
			}
		})
	}
}

func TestEndToEndGroupSharingAndRevocation(t *testing.T) {
	d := deploy(t, allFeatures, "")
	alice := d.client(t, "alice")
	bob := d.client(t, "bob")
	carol := d.client(t, "carol")

	if err := alice.Mkdir("/team/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/team/plan.txt", []byte("the plan")); err != nil {
		t.Fatal(err)
	}
	// Strangers are locked out (S1 enforcement path).
	if _, err := bob.Download("/team/plan.txt"); !errors.Is(err, segshare.ErrPermissionDenied) {
		t.Fatalf("bob before grant: %v", err)
	}

	// Group-based sharing (F1, P2).
	if err := alice.AddUser("bob", "engineering"); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetPermission("/team/plan.txt", "engineering", "rw"); err != nil {
		t.Fatal(err)
	}
	got, err := bob.Download("/team/plan.txt")
	if err != nil || string(got) != "the plan" {
		t.Fatalf("bob read: %q %v", got, err)
	}
	if err := bob.Upload("/team/plan.txt", []byte("revised plan")); err != nil {
		t.Fatalf("bob write: %v", err)
	}

	// Membership is per group: carol is out until added.
	if _, err := carol.Download("/team/plan.txt"); !errors.Is(err, segshare.ErrPermissionDenied) {
		t.Fatalf("carol: %v", err)
	}
	if err := alice.AddUser("carol", "engineering"); err != nil {
		t.Fatal(err)
	}
	if _, err := carol.Download("/team/plan.txt"); err != nil {
		t.Fatalf("carol after add: %v", err)
	}

	// Immediate membership revocation (P3/S4): one request, no
	// re-encryption, and bob is out on the very next access.
	if err := alice.RemoveUser("bob", "engineering"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Download("/team/plan.txt"); !errors.Is(err, segshare.ErrPermissionDenied) {
		t.Fatalf("bob after revocation: %v", err)
	}
	// Carol is unaffected (same encrypted file, same group).
	if _, err := carol.Download("/team/plan.txt"); err != nil {
		t.Fatalf("carol after bob's revocation: %v", err)
	}
}

func TestEndToEndInheritance(t *testing.T) {
	d := deploy(t, segshare.Features{}, "")
	alice := d.client(t, "alice")
	bob := d.client(t, "bob")

	if err := alice.Mkdir("/wiki/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/wiki/page1", []byte("p1")); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/wiki/page2", []byte("p2")); err != nil {
		t.Fatal(err)
	}
	// Central management (F10): grant on the directory, flag the files.
	if err := alice.SetPermission("/wiki/", "user:bob", "r"); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetInherit("/wiki/page1", true); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Download("/wiki/page1"); err != nil {
		t.Fatalf("inherited read: %v", err)
	}
	// page2 has no inherit flag: still denied.
	if _, err := bob.Download("/wiki/page2"); !errors.Is(err, segshare.ErrPermissionDenied) {
		t.Fatalf("non-inheriting file: %v", err)
	}
}

func TestEndToEndDeduplication(t *testing.T) {
	d := deploy(t, segshare.Features{Dedup: true}, "")
	alice := d.client(t, "alice")
	bob := d.client(t, "bob")

	payload := bytes.Repeat([]byte("dataset row\n"), 20_000)
	if err := alice.Upload("/alice-copy.bin", payload); err != nil {
		t.Fatal(err)
	}
	size1, err := d.cfg.DedupStore.TotalBytes()
	if err != nil {
		t.Fatal(err)
	}
	// A different user (different group) uploads identical content
	// (§V-A: dedup across groups).
	if err := bob.Upload("/bob-copy.bin", payload); err != nil {
		t.Fatal(err)
	}
	size2, err := d.cfg.DedupStore.TotalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if size2-size1 > 2048 {
		t.Fatalf("duplicate upload consumed %d extra dedup bytes", size2-size1)
	}
	got, err := bob.Download("/bob-copy.bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("bob download: %v", err)
	}
}

func TestEndToEndRollbackAttackDetected(t *testing.T) {
	d := deploy(t, segshare.Features{RollbackProtection: true, Guard: segshare.GuardCounter}, "")
	alice := d.client(t, "alice")

	if err := alice.Upload("/balance.txt", []byte("100")); err != nil {
		t.Fatal(err)
	}
	if err := d.contentAdv.RememberObject("/balance.txt"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/balance.txt", []byte("0")); err != nil {
		t.Fatal(err)
	}
	// The provider rolls the single file back to the richer version.
	if err := d.contentAdv.RollbackObject("/balance.txt"); err != nil {
		t.Fatal(err)
	}
	_, err := alice.Download("/balance.txt")
	if err == nil {
		t.Fatal("rolled-back file served successfully")
	}
}

func TestEndToEndTamperDetected(t *testing.T) {
	d := deploy(t, segshare.Features{}, "")
	alice := d.client(t, "alice")
	if err := alice.Upload("/ledger.txt", []byte("entries")); err != nil {
		t.Fatal(err)
	}
	if err := d.contentAdv.FlipBit("/ledger.txt", 77); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Download("/ledger.txt"); err == nil {
		t.Fatal("tampered file served successfully")
	}
}

func TestEndToEndBackupRestoreWithReset(t *testing.T) {
	features := segshare.Features{RollbackProtection: true, Guard: segshare.GuardCounter}
	d := deploy(t, features, "")
	alice := d.client(t, "alice")

	if err := alice.Upload("/keep.txt", []byte("backed up")); err != nil {
		t.Fatal(err)
	}
	// Backup: the provider copies the encrypted stores (§V-G).
	contentBackup := segshare.NewMemoryStore()
	groupBackup := segshare.NewMemoryStore()
	if err := segshare.CopyStore(contentBackup, d.cfg.ContentStore); err != nil {
		t.Fatal(err)
	}
	if err := segshare.CopyStore(groupBackup, d.cfg.GroupStore); err != nil {
		t.Fatal(err)
	}

	if err := alice.Upload("/keep.txt", []byte("post-backup change")); err != nil {
		t.Fatal(err)
	}

	// Restore the backup: an older state — the guard must reject it.
	if err := segshare.RestoreStore(d.cfg.ContentStore, contentBackup); err != nil {
		t.Fatal(err)
	}
	if err := segshare.RestoreStore(d.cfg.GroupStore, groupBackup); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Download("/keep.txt"); err == nil {
		t.Fatal("restored (stale) state served without CA reset")
	}

	// The CA authorizes the restoration with a signed reset message.
	nonce, err := d.server.ResetChallenge()
	if err != nil {
		t.Fatal(err)
	}
	sig, err := d.authority.SignReset(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.server.AcceptReset(sig); err != nil {
		t.Fatalf("AcceptReset: %v", err)
	}
	got, err := alice.Download("/keep.txt")
	if err != nil || string(got) != "backed up" {
		t.Fatalf("after reset: %q %v", got, err)
	}

	// A forged reset signature is rejected.
	nonce2, err := d.server.ResetChallenge()
	if err != nil {
		t.Fatal(err)
	}
	_ = nonce2
	if err := d.server.AcceptReset([]byte("forged")); err == nil {
		t.Fatal("forged reset accepted")
	}
}

func TestEndToEndReplication(t *testing.T) {
	// Root server A and replica B share one central data repository
	// (§V-F) and run on different platforms.
	d := deploy(t, segshare.Features{}, "")
	alice := d.client(t, "alice")
	if err := alice.Upload("/shared-repo.txt", []byte("written via A")); err != nil {
		t.Fatal(err)
	}

	replicaPlatform, err := segshare.NewPlatform(segshare.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	replicaCfg := d.cfg // same stores, same CA, same features
	provider := segshare.NewReplicationProvider(d.server)
	rootKey, err := segshare.RequestRootKey(replicaPlatform, replicaCfg, provider, d.platform)
	if err != nil {
		t.Fatalf("RequestRootKey: %v", err)
	}
	replicaCfg.RootKey = rootKey

	replica, err := segshare.NewServer(replicaPlatform, replicaCfg)
	if err != nil {
		t.Fatalf("replica NewServer: %v", err)
	}
	defer replica.Close()
	if err := segshare.Provision(d.authority, replicaPlatform, replica, replicaCfg, []string{"localhost"}); err != nil {
		t.Fatalf("replica Provision: %v", err)
	}
	addr, err := replica.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cred, err := d.authority.IssueClientCertificate(segshare.Identity{UserID: "alice"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	viaB, err := segshare.NewClient(segshare.ClientConfig{
		Addr:       addr.String(),
		CACertPEM:  d.authority.CertificatePEM(),
		Credential: cred,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer viaB.Close()

	got, err := viaB.Download("/shared-repo.txt")
	if err != nil || string(got) != "written via A" {
		t.Fatalf("read via replica: %q %v", got, err)
	}
	if err := viaB.Upload("/via-b.txt", []byte("written via B")); err != nil {
		t.Fatalf("write via replica: %v", err)
	}
	got, err = alice.Download("/via-b.txt")
	if err != nil || string(got) != "written via B" {
		t.Fatalf("read via root: %q %v", got, err)
	}
}

func TestEndToEndServerRestartPersistence(t *testing.T) {
	d := deploy(t, segshare.Features{RollbackProtection: true, Guard: segshare.GuardProtectedMemory}, "")
	alice := d.client(t, "alice")
	if err := alice.Upload("/durable.txt", []byte("survives restarts")); err != nil {
		t.Fatal(err)
	}
	d.server.Close()

	// Relaunch on the same platform with the same stores: sealing
	// restores SK_r, the persisted server certificate restores the TLS
	// identity without re-provisioning.
	server2, err := segshare.NewServer(d.platform, d.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer server2.Close()
	if !server2.HasCertificate() {
		t.Fatal("persisted certificate not restored")
	}
	addr, err := server2.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.addr = addr.String()
	alice2 := d.client(t, "alice")
	got, err := alice2.Download("/durable.txt")
	if err != nil || string(got) != "survives restarts" {
		t.Fatalf("after restart: %q %v", got, err)
	}
}

func TestEndToEndConcurrentUsers(t *testing.T) {
	d := deploy(t, segshare.Features{}, "")
	const users = 6
	errs := make(chan error, users)
	for i := 0; i < users; i++ {
		go func(i int) {
			user := fmt.Sprintf("user%d", i)
			c := d.client(t, user)
			dir := fmt.Sprintf("/u%d/", i)
			if err := c.Mkdir(dir); err != nil {
				errs <- fmt.Errorf("%s mkdir: %w", user, err)
				return
			}
			for j := 0; j < 5; j++ {
				path := fmt.Sprintf("%sf%d", dir, j)
				payload := []byte(fmt.Sprintf("%s-%d", user, j))
				if err := c.Upload(path, payload); err != nil {
					errs <- fmt.Errorf("%s upload: %w", user, err)
					return
				}
				got, err := c.Download(path)
				if err != nil || !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("%s download: %v", user, err)
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < users; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestEndToEndUnknownCAClientRejected(t *testing.T) {
	d := deploy(t, segshare.Features{}, "")
	foreign, err := segshare.NewCA("Foreign CA")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := foreign.IssueClientCertificate(segshare.Identity{UserID: "mallory"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mallory, err := segshare.NewClient(segshare.ClientConfig{
		Addr:       d.addr,
		CACertPEM:  d.authority.CertificatePEM(),
		Credential: cred,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mallory.Close()
	if err := mallory.Upload("/x", []byte("x")); err == nil {
		t.Fatal("foreign-CA client accepted")
	}
}

// TestMeasurementBindsConfiguration: the enclave measurement must change
// whenever any security-relevant configuration changes — otherwise an
// operator could silently disable an extension without failing the CA's
// attestation check.
func TestMeasurementBindsConfiguration(t *testing.T) {
	authority, err := segshare.NewCA("measured CA")
	if err != nil {
		t.Fatal(err)
	}
	base := segshare.ServerConfig{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: segshare.NewMemoryStore(),
		GroupStore:   segshare.NewMemoryStore(),
	}
	measurementOf := func(cfg segshare.ServerConfig) segshare.Measurement {
		t.Helper()
		m, err := core.ExpectedMeasurement(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	baseM := measurementOf(base)

	variants := map[string]func(*segshare.ServerConfig){
		"version": func(c *segshare.ServerConfig) { c.Version = 2 },
		"rollback": func(c *segshare.ServerConfig) {
			c.Features.RollbackProtection = true
		},
		"guard": func(c *segshare.ServerConfig) {
			c.Features.RollbackProtection = true
			c.Features.Guard = segshare.GuardCounter
		},
		"dedup":      func(c *segshare.ServerConfig) { c.Features.Dedup = true },
		"hide-paths": func(c *segshare.ServerConfig) { c.Features.HidePaths = true },
		"fso":        func(c *segshare.ServerConfig) { c.FileSystemOwner = "admin" },
	}
	for name, mutate := range variants {
		cfg := base
		mutate(&cfg)
		if measurementOf(cfg) == baseM {
			t.Errorf("variant %q did not change the measurement", name)
		}
	}

	// A different CA changes the measurement too (paper §III-B: the CA
	// key is hard-coded into the enclave).
	other, err := segshare.NewCA("other CA")
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.CACertPEM = other.CertificatePEM()
	if measurementOf(cfg) == baseM {
		t.Error("different CA did not change the measurement")
	}
	// Storage backends are NOT measured (they are untrusted).
	cfg = base
	cfg.ContentStore = segshare.NewMemoryStore()
	if measurementOf(cfg) != baseM {
		t.Error("untrusted store choice changed the measurement")
	}
}

// TestWhoAmIReportsOwnedGroups checks the ownership report end to end.
func TestWhoAmIReportsOwnedGroups(t *testing.T) {
	d := deploy(t, segshare.Features{}, "")
	alice := d.client(t, "alice")
	bob := d.client(t, "bob")

	if err := alice.AddUser("bob", "team"); err != nil {
		t.Fatal(err)
	}
	whoAlice, err := alice.WhoAmI()
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(whoAlice.OwnedGroups, "team") {
		t.Fatalf("alice owned groups = %v", whoAlice.OwnedGroups)
	}
	whoBob, err := bob.WhoAmI()
	if err != nil {
		t.Fatal(err)
	}
	if containsStr(whoBob.OwnedGroups, "team") {
		t.Fatalf("bob owns team: %v", whoBob.OwnedGroups)
	}
	if !containsStr(whoBob.Groups, "team") {
		t.Fatalf("bob groups = %v", whoBob.Groups)
	}
}

func containsStr(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// TestRuntimeCertificateReplacement: the CA can re-run the provisioning
// exchange at any time (paper §IV-A) and new connections pick up the
// fresh certificate with no restart.
func TestRuntimeCertificateReplacement(t *testing.T) {
	d := deploy(t, segshare.Features{}, "")
	alice := d.client(t, "alice")
	if err := alice.Upload("/before.txt", []byte("pre-roll")); err != nil {
		t.Fatal(err)
	}

	// Re-provision mid-flight.
	if err := segshare.Provision(d.authority, d.platform, d.server, d.cfg, []string{"localhost"}); err != nil {
		t.Fatalf("re-provision: %v", err)
	}

	// A NEW connection must work against the rolled certificate.
	fresh := d.client(t, "alice")
	got, err := fresh.Download("/before.txt")
	if err != nil || string(got) != "pre-roll" {
		t.Fatalf("after roll: %q %v", got, err)
	}
	if err := fresh.Upload("/after.txt", []byte("post-roll")); err != nil {
		t.Fatalf("upload after roll: %v", err)
	}
}
