package enclave

import (
	"errors"
	"fmt"

	"segshare/internal/pae"
)

// Sealing and protected memory errors.
var (
	// ErrUnseal is returned when sealed data cannot be unsealed, either
	// because it was sealed by an enclave with a different measurement or
	// on a different platform, or because it was tampered with.
	ErrUnseal = errors.New("enclave: unseal failed")
	// ErrNoProtectedData is returned when reading a protected memory slot
	// that has never been written.
	ErrNoProtectedData = errors.New("enclave: no protected data")
)

// Enclave is one launched enclave instance. It exposes the hardware-backed
// primitives trusted code may use. Enclaves are stateless across restarts
// except through sealing, monotonic counters, and protected memory, just
// like SGX enclaves (paper §II-A "Data Sealing").
type Enclave struct {
	platform    *Platform
	code        CodeIdentity
	measurement Measurement
	sealKey     []byte
}

func deriveSealKey(deviceKey []byte, m Measurement) ([]byte, error) {
	key, err := pae.DeriveBytes(deviceKey, "sgx-seal-key/mrenclave", m[:], 32)
	if err != nil {
		return nil, fmt.Errorf("enclave: derive seal key: %w", err)
	}
	return key, nil
}

// Measurement returns the enclave's measurement (MRENCLAVE).
func (e *Enclave) Measurement() Measurement { return e.measurement }

// CodeIdentity returns the identity the enclave was launched with.
func (e *Enclave) CodeIdentity() CodeIdentity { return e.code }

// Seal encrypts and integrity-protects data under the enclave's sealing
// key (policy MRENCLAVE: only an enclave with the same measurement on the
// same platform can unseal). The associated data is bound but not stored.
func (e *Enclave) Seal(plaintext, associatedData []byte) ([]byte, error) {
	key, err := pae.DeriveKey(e.sealKey, "seal", nil)
	if err != nil {
		return nil, err
	}
	return pae.Encrypt(key, plaintext, associatedData)
}

// Unseal reverses Seal. It returns ErrUnseal if the blob was produced by
// a different enclave identity or platform, or was modified.
func (e *Enclave) Unseal(sealed, associatedData []byte) ([]byte, error) {
	key, err := pae.DeriveKey(e.sealKey, "seal", nil)
	if err != nil {
		return nil, err
	}
	pt, err := pae.Decrypt(key, sealed, associatedData)
	if err != nil {
		return nil, ErrUnseal
	}
	return pt, nil
}

// ProtectedWrite stores data in the platform's protected memory slot for
// this enclave identity (paper §V-E's first whole-file-system rollback
// mitigation: memory only a specific enclave can access, persisted across
// restarts).
func (e *Enclave) ProtectedWrite(name string, data []byte) {
	id := protMemID{measurement: e.measurement, name: name}
	cp := make([]byte, len(data))
	copy(cp, data)
	e.platform.mu.Lock()
	defer e.platform.mu.Unlock()
	e.platform.protMem[id] = cp
}

// ProtectedRead reads a protected memory slot. It returns
// ErrNoProtectedData if the slot has never been written by this enclave
// identity.
func (e *Enclave) ProtectedRead(name string) ([]byte, error) {
	id := protMemID{measurement: e.measurement, name: name}
	e.platform.mu.Lock()
	defer e.platform.mu.Unlock()
	data, ok := e.platform.protMem[id]
	if !ok {
		return nil, ErrNoProtectedData
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}
