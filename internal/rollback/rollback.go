// Package rollback implements the hash machinery of SeGShare's rollback
// protection for individual files (paper §V-D) and for the whole file
// system (§V-E).
//
// The design follows the paper's optimized Merkle-tree variant:
//
//   - Every stored file is a tree node; its *main hash* combines a hash of
//     its path and a hash of its content. Inner files (directories)
//     additionally combine their bucket hashes.
//   - Each inner file keeps a fixed number of *bucket hashes*; a child is
//     assigned to a bucket by a hash of its path. A bucket hash is an
//     incremental multiset hash (package mhash) of the main hashes of the
//     children in that bucket, so a child update only touches one bucket
//     per ancestor — no sibling access.
//   - Validation of a file recomputes a single bucket per tree level,
//     reading only the stored main hashes of the files sharing the
//     bucket.
//   - The root's main hash represents the whole store; binding it to
//     enclave-protected state (protected memory or a monotonic counter)
//     prevents whole-store rollback.
//
// The tree walk itself (loading ancestors, persisting headers) is
// orchestrated by the trusted file manager in internal/core; this package
// provides the deterministic, unit-testable pieces: main-hash
// computation, bucket assignment and algebra, header codecs, and the two
// RootGuard strategies.
package rollback

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"segshare/internal/mhash"
	"segshare/internal/pae"
)

// NumBuckets is the number of bucket hashes per inner file. More buckets
// mean cheaper validation (fewer files per bucket) at a fixed 40-byte
// storage cost per bucket.
const NumBuckets = 16

// DigestSize is the size of a main hash.
const DigestSize = sha256.Size

// Digest is a node's main hash.
type Digest [DigestSize]byte

// IsZero reports whether d is the all-zero digest (used for "absent").
func (d Digest) IsZero() bool { return d == Digest{} }

// String renders a short prefix for logs.
func (d Digest) String() string { return fmt.Sprintf("main:%x…", d[:6]) }

// Rollback errors.
var (
	// ErrRollback is returned when stored hashes are inconsistent —
	// evidence of a rollback (or other replacement) attack.
	ErrRollback = errors.New("rollback: hash tree verification failed")
	// ErrHeader is returned when a node header fails to decode.
	ErrHeader = errors.New("rollback: malformed node header")
)

// Hasher derives all rollback hashes from a secret key (derived from the
// store's root key SK_r), making them unforgeable outside the enclave.
// Hasher is safe for concurrent use.
type Hasher struct {
	key []byte
	acc *mhash.Accumulator
}

// NewHasher creates a Hasher over key. The key is copied.
func NewHasher(key []byte) *Hasher {
	k := make([]byte, len(key))
	copy(k, key)
	return &Hasher{key: k, acc: mhash.NewAccumulator(k)}
}

// ContentDigest hashes a file's logical plaintext content.
func ContentDigest(content []byte) Digest {
	return sha256.Sum256(content)
}

// LeafMain computes the main hash of a leaf file (content file, ACL, or
// empty directory): a keyed combination of the path hash and the content
// digest.
func (h *Hasher) LeafMain(path string, content Digest) Digest {
	return h.main(0x00, path, content, nil)
}

// InnerMain computes the main hash of an inner file (non-empty
// directory): a keyed combination of the path hash, the directory content
// digest (its children list), and all bucket hashes.
func (h *Hasher) InnerMain(path string, content Digest, buckets *Buckets) Digest {
	return h.main(0x01, path, content, buckets)
}

func (h *Hasher) main(kind byte, path string, content Digest, buckets *Buckets) Digest {
	msg := make([]byte, 0, 1+8+len(path)+DigestSize+NumBuckets*mhash.EncodedSize)
	msg = append(msg, kind)
	msg = binary.BigEndian.AppendUint64(msg, uint64(len(path)))
	msg = append(msg, path...)
	msg = append(msg, content[:]...)
	if buckets != nil {
		for i := range buckets {
			msg = append(msg, buckets[i].Encode()...)
		}
	}
	return Digest(pae.MAC(h.key, msg))
}

// BucketIndex assigns a child path to a bucket.
func (h *Hasher) BucketIndex(childPath string) int {
	mac := pae.MAC(h.key, append([]byte("bucket\x00"), childPath...))
	return int(binary.BigEndian.Uint32(mac[:4]) % NumBuckets)
}

// Buckets is the per-inner-file array of bucket hashes.
type Buckets [NumBuckets]mhash.Hash

// AddChild incrementally adds a child's main hash to its bucket.
func (b *Buckets) AddChild(h *Hasher, childPath string, main Digest) {
	i := h.BucketIndex(childPath)
	b[i] = h.acc.Add(b[i], main[:])
}

// RemoveChild incrementally removes a child's main hash from its bucket.
func (b *Buckets) RemoveChild(h *Hasher, childPath string, main Digest) {
	i := h.BucketIndex(childPath)
	b[i] = h.acc.Remove(b[i], main[:])
}

// ReplaceChild swaps a child's old main hash for its new one — the O(1)
// per-ancestor update of paper §V-D.
func (b *Buckets) ReplaceChild(h *Hasher, childPath string, oldMain, newMain Digest) {
	i := h.BucketIndex(childPath)
	b[i] = h.acc.Replace(b[i], oldMain[:], newMain[:])
}

// VerifyBucket checks the bucket that childPath belongs to against the
// main hashes of all children sharing that bucket (including childPath's
// own). It returns ErrRollback on mismatch.
func (b *Buckets) VerifyBucket(h *Hasher, childPath string, bucketMains []Digest) error {
	i := h.BucketIndex(childPath)
	var want mhash.Hash
	for _, m := range bucketMains {
		want = h.acc.Add(want, m[:])
	}
	if !b[i].Equal(want) {
		return fmt.Errorf("%w: bucket %d of %q", ErrRollback, i, childPath)
	}
	return nil
}

// IsEmpty reports whether all buckets are empty, i.e. the directory has
// no children contributing hashes.
func (b *Buckets) IsEmpty() bool {
	for i := range b {
		if !b[i].IsEmpty() {
			return false
		}
	}
	return true
}
