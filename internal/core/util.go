package core

import (
	"crypto/rand"

	"segshare/internal/acl"
)

func randRead(b []byte) (int, error) { return rand.Read(b) }

func userID(s string) acl.UserID { return acl.UserID(s) }
