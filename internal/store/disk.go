package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is an on-disk Backend. Each object lives in one file named by the
// SHA-256 of its object name, so arbitrary names (including SeGShare paths
// containing "/" and names longer than NAME_MAX) map to flat, safe file
// names. The object file stores the real name in a small header followed
// by the payload. Disk supports the file-system backup story of paper
// §V-G: backing up the store is copying the directory.
type Disk struct {
	dir string
	mu  sync.RWMutex
}

var _ Backend = (*Disk)(nil)

const diskObjSuffix = ".obj"

// NewDisk creates (if necessary) and opens a disk-backed store rooted at
// dir. Temp files left behind by a crash mid-write are swept: they were
// never renamed into place, so no object refers to them.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), ".tmp-") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the directory holding the store, e.g. for backups.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) fileFor(name string) string {
	sum := sha256.Sum256([]byte(name))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+diskObjSuffix)
}

func encodeObject(name string, data []byte) []byte {
	out := make([]byte, 8+len(name)+len(data))
	binary.BigEndian.PutUint64(out, uint64(len(name)))
	copy(out[8:], name)
	copy(out[8+len(name):], data)
	return out
}

func decodeObject(raw []byte) (name string, data []byte, err error) {
	if len(raw) < 8 {
		return "", nil, errors.New("store: short object file")
	}
	n := binary.BigEndian.Uint64(raw)
	if uint64(len(raw)-8) < n {
		return "", nil, errors.New("store: truncated object file")
	}
	return string(raw[8 : 8+n]), raw[8+n:], nil
}

// Put implements Backend. Writes go through a temp file plus rename for
// crash atomicity.
func (d *Disk) Put(name string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeObject(d.fileFor(name), name, data)
}

func (d *Disk) writeObject(target, name string, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(encodeObject(name, data)); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write: %w", err)
	}
	// The data must be durable before the rename makes it visible, and the
	// rename must be durable before Put returns: a journal replay decides
	// what to redo based on which objects survived the crash.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmpName, target); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename: %w", err)
	}
	return d.syncDir()
}

// syncDir flushes the directory entry metadata (new/removed object
// files) to stable storage.
func (d *Disk) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return fmt.Errorf("store: open dir: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

func (d *Disk) readObject(name string) ([]byte, error) {
	raw, err := os.ReadFile(d.fileFor(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	storedName, data, err := decodeObject(raw)
	if err != nil {
		return nil, err
	}
	if storedName != name {
		return nil, fmt.Errorf("store: object name mismatch: stored %q, want %q", storedName, name)
	}
	return data, nil
}

// Get implements Backend.
func (d *Disk) Get(name string) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.readObject(name)
}

// Delete implements Backend.
func (d *Disk) Delete(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	err := os.Remove(d.fileFor(name))
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	if err != nil {
		return fmt.Errorf("store: delete: %w", err)
	}
	return d.syncDir()
}

// Rename implements Backend. Because the stored header carries the object
// name, renaming rewrites the object under its new name.
func (d *Disk) Rename(oldName, newName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := os.Stat(d.fileFor(newName)); err == nil {
		// A crash between writing the new object and removing the old one
		// leaves both. If the payloads match this is that interrupted
		// rename; completing it keeps retries idempotent. Any other
		// collision is a real conflict.
		oldData, oldErr := d.readObject(oldName)
		if oldErr == nil {
			newData, newErr := d.readObject(newName)
			if newErr == nil && bytes.Equal(oldData, newData) {
				if err := os.Remove(d.fileFor(oldName)); err != nil {
					return fmt.Errorf("store: remove old: %w", err)
				}
				return d.syncDir()
			}
		}
		return fmt.Errorf("%w: %q", ErrExist, newName)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: stat: %w", err)
	}
	data, err := d.readObject(oldName)
	if err != nil {
		return err
	}
	if err := d.writeObject(d.fileFor(newName), newName, data); err != nil {
		return err
	}
	if err := os.Remove(d.fileFor(oldName)); err != nil {
		return fmt.Errorf("store: remove old: %w", err)
	}
	return d.syncDir()
}

// Exists implements Backend.
func (d *Disk) Exists(name string) (bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if _, err := os.Stat(d.fileFor(name)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("store: stat: %w", err)
	}
	return true, nil
}

func (d *Disk) scan(visit func(name string, payloadBytes int64) error) error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: list: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), diskObjSuffix) {
			continue
		}
		name, size, err := readObjectHeader(filepath.Join(d.dir, e.Name()))
		if err != nil {
			return err
		}
		if err := visit(name, size); err != nil {
			return err
		}
	}
	return nil
}

func readObjectHeader(file string) (name string, payloadBytes int64, err error) {
	f, err := os.Open(file)
	if err != nil {
		return "", 0, fmt.Errorf("store: open: %w", err)
	}
	defer f.Close()
	var lenBuf [8]byte
	if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
		return "", 0, fmt.Errorf("store: header: %w", err)
	}
	n := binary.BigEndian.Uint64(lenBuf[:])
	nameBuf := make([]byte, n)
	if _, err := io.ReadFull(f, nameBuf); err != nil {
		return "", 0, fmt.Errorf("store: header name: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		return "", 0, fmt.Errorf("store: stat: %w", err)
	}
	return string(nameBuf), info.Size() - 8 - int64(n), nil
}

// List implements Backend.
func (d *Disk) List() ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var names []string
	err := d.scan(func(name string, _ int64) error {
		names = append(names, name)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// TotalBytes implements Backend. It counts payload bytes only, excluding
// the name headers, so it is comparable with Memory.TotalBytes.
func (d *Disk) TotalBytes() (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var total int64
	err := d.scan(func(_ string, payloadBytes int64) error {
		total += payloadBytes
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}
