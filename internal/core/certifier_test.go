package core

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"testing"
	"time"

	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/store"
)

type certFixture struct {
	authority *ca.Authority
	platform  *enclave.Platform
	enclave   *enclave.Enclave
	meta      *store.Memory
	certifier *Certifier
}

func newCertFixture(t *testing.T) *certFixture {
	t.Helper()
	authority, err := ca.New("certifier CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := platform.Launch(enclave.CodeIdentity{Name: "segshare", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	pub, ok := authority.Certificate().PublicKey.(*ecdsa.PublicKey)
	if !ok {
		t.Fatal("CA key not ECDSA")
	}
	meta := store.NewMemory()
	return &certFixture{
		authority: authority,
		platform:  platform,
		enclave:   encl,
		meta:      meta,
		certifier: newCertifier(encl, meta, pub),
	}
}

func (f *certFixture) provision(t *testing.T) {
	t.Helper()
	err := f.authority.ProvisionServer(
		f.certifier,
		f.platform.AttestationPublicKey(),
		f.enclave.Measurement(),
		[]string{"localhost"},
		time.Hour,
	)
	if err != nil {
		t.Fatalf("ProvisionServer: %v", err)
	}
}

func TestCertifierProvisionAndPersist(t *testing.T) {
	f := newCertFixture(t)
	if _, err := f.certifier.Certificate(); err == nil {
		t.Fatal("certificate available before provisioning")
	}
	f.provision(t)
	cert, err := f.certifier.Certificate()
	if err != nil {
		t.Fatalf("Certificate: %v", err)
	}
	if cert.Leaf == nil || cert.Leaf.Subject.CommonName != "segshare-enclave" {
		t.Fatalf("leaf = %+v", cert.Leaf)
	}

	// A fresh certifier on the same enclave identity restores it.
	restored := newCertifier(f.enclave, f.meta, f.certifier.caPub)
	ok, err := restored.loadPersisted()
	if err != nil || !ok {
		t.Fatalf("loadPersisted: %v %v", ok, err)
	}
	cert2, err := restored.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	if cert2.Leaf.SerialNumber.Cmp(cert.Leaf.SerialNumber) != 0 {
		t.Fatal("restored a different certificate")
	}
}

func TestCertifierRejectsInstallWithoutRequest(t *testing.T) {
	f := newCertFixture(t)
	if err := f.certifier.InstallCertificate([]byte("junk")); err == nil {
		t.Fatal("install without pending request accepted")
	}
}

func TestCertifierRejectsForeignCertificate(t *testing.T) {
	f := newCertFixture(t)
	// Run the request so a key pair is pending.
	_, _, err := f.certifier.CertificationRequest()
	if err != nil {
		t.Fatal(err)
	}
	// A certificate for a *different* key pair is rejected.
	otherKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{SerialNumber: big.NewInt(99), Subject: pkix.Name{CommonName: "x"}}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &otherKey.PublicKey, otherKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.certifier.InstallCertificate(der); err == nil {
		t.Fatal("certificate for foreign key accepted")
	}
}

func TestCertifierRejectsWrongCASignature(t *testing.T) {
	f := newCertFixture(t)
	_, csrDER, err := f.certifier.CertificationRequest()
	if err != nil {
		t.Fatal(err)
	}
	csr, err := x509.ParseCertificateRequest(csrDER)
	if err != nil {
		t.Fatal(err)
	}
	// A different CA signs a certificate over the enclave's (correct)
	// key pair — the enclave must reject it because its hard-coded CA
	// key does not verify the signature.
	foreign, err := ca.New("foreign CA")
	if err != nil {
		t.Fatal(err)
	}
	der := signWithAuthority(t, foreign, csr.PublicKey, time.Hour)
	if err := f.certifier.InstallCertificate(der); err == nil {
		t.Fatal("foreign-CA certificate accepted")
	}
}

// signWithAuthority issues a server-auth certificate over pub directly
// with the authority's exported key (emulating arbitrary CA behaviour
// the package API deliberately does not expose).
func signWithAuthority(t *testing.T, authority *ca.Authority, pub any, validity time.Duration) []byte {
	t.Helper()
	certPEM, keyPEM, err := authority.MarshalPEM()
	if err != nil {
		t.Fatal(err)
	}
	key := parseECKey(t, keyPEM)
	root := parseCert(t, certPEM)
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(4242),
		Subject:      pkix.Name{CommonName: "segshare-enclave"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(validity),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, root, pub, key)
	if err != nil {
		t.Fatal(err)
	}
	return der
}

func parseECKey(t *testing.T, keyPEM []byte) *ecdsa.PrivateKey {
	t.Helper()
	block, _ := pem.Decode(keyPEM)
	if block == nil {
		t.Fatal("no key PEM block")
	}
	key, err := x509.ParseECPrivateKey(block.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func parseCert(t *testing.T, certPEM []byte) *x509.Certificate {
	t.Helper()
	block, _ := pem.Decode(certPEM)
	if block == nil {
		t.Fatal("no cert PEM block")
	}
	cert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

func TestCertifierRejectsExpiredCertificate(t *testing.T) {
	f := newCertFixture(t)
	_, csrDER, err := f.certifier.CertificationRequest()
	if err != nil {
		t.Fatal(err)
	}
	csr, err := x509.ParseCertificateRequest(csrDER)
	if err != nil {
		t.Fatal(err)
	}
	der := signWithAuthority(t, f.authority, csr.PublicKey, -30*time.Minute) // already expired
	if err := f.certifier.InstallCertificate(der); err == nil {
		t.Fatal("expired certificate accepted")
	}
}
