package acl

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestACLCodecRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		give *ACL
	}{
		{name: "empty", give: &ACL{}},
		{name: "inherit only", give: &ACL{Inherit: true}},
		{name: "owners only", give: &ACL{Owners: []GroupID{1, 5, 9}}},
		{
			name: "full",
			give: &ACL{
				Inherit: true,
				Owners:  []GroupID{2},
				Entries: []PermEntry{
					{Group: 1, Perm: PermRead},
					{Group: 3, Perm: PermReadWrite},
					{Group: 8, Perm: PermDeny},
				},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := DecodeACL(tt.give.Encode())
			if err != nil {
				t.Fatalf("DecodeACL: %v", err)
			}
			if !reflect.DeepEqual(normalizeACL(got), normalizeACL(tt.give)) {
				t.Fatalf("round trip: got %+v, want %+v", got, tt.give)
			}
		})
	}
}

// normalizeACL maps nil and empty slices to a canonical form for
// comparison.
func normalizeACL(a *ACL) *ACL {
	cp := a.Clone()
	if len(cp.Owners) == 0 {
		cp.Owners = nil
	}
	if len(cp.Entries) == 0 {
		cp.Entries = nil
	}
	return cp
}

func TestACLEntrySizeMatchesPaper(t *testing.T) {
	// Paper §VII-B: 32 bits for owner count + inherit flag, 32 bits per
	// owner and per permission entry's group, 32 bits per permission.
	base := (&ACL{}).Encode()
	withOwner := (&ACL{Owners: []GroupID{1}}).Encode()
	if len(withOwner)-len(base) != 4 {
		t.Fatalf("owner entry costs %d bytes, want 4", len(withOwner)-len(base))
	}
	one := (&ACL{Entries: []PermEntry{{Group: 1, Perm: PermRead}}}).Encode()
	two := (&ACL{Entries: []PermEntry{{Group: 1, Perm: PermRead}, {Group: 2, Perm: PermRead}}}).Encode()
	if len(two)-len(one) != 8 {
		t.Fatalf("permission entry costs %d bytes, want 8", len(two)-len(one))
	}
}

func TestMemberListCodecRoundTrip(t *testing.T) {
	m := &MemberList{Groups: []GroupID{1, 2, 100, 4_000_000_000}}
	got, err := DecodeMemberList(m.Encode())
	if err != nil {
		t.Fatalf("DecodeMemberList: %v", err)
	}
	if !reflect.DeepEqual(got.Groups, m.Groups) {
		t.Fatalf("round trip: %v", got.Groups)
	}
	empty, err := DecodeMemberList((&MemberList{}).Encode())
	if err != nil || len(empty.Groups) != 0 {
		t.Fatalf("empty round trip: %v, %v", empty, err)
	}
}

func TestGroupListCodecRoundTrip(t *testing.T) {
	l := NewGroupList()
	if _, err := l.Create("team-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Create("team-b", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Create("ünïcode grüp", 1, 2); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGroupList(l.Encode())
	if err != nil {
		t.Fatalf("DecodeGroupList: %v", err)
	}
	if got.NextID != l.NextID {
		t.Fatalf("NextID = %d, want %d", got.NextID, l.NextID)
	}
	if !reflect.DeepEqual(normalizeGroups(got.Groups), normalizeGroups(l.Groups)) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got.Groups, l.Groups)
	}
}

func normalizeGroups(gs []GroupRecord) []GroupRecord {
	out := make([]GroupRecord, len(gs))
	for i, g := range gs {
		out[i] = g
		if len(g.Owners) == 0 {
			out[i].Owners = nil
		}
	}
	return out
}

func TestDecodeRejectsWrongTag(t *testing.T) {
	aclBytes := (&ACL{}).Encode()
	memBytes := (&MemberList{}).Encode()
	glBytes := NewGroupList().Encode()

	if _, err := DecodeACL(memBytes); !errors.Is(err, ErrCodec) {
		t.Fatalf("ACL from member list: %v", err)
	}
	if _, err := DecodeMemberList(glBytes); !errors.Is(err, ErrCodec) {
		t.Fatalf("member list from group list: %v", err)
	}
	if _, err := DecodeGroupList(aclBytes); !errors.Is(err, ErrCodec) {
		t.Fatalf("group list from ACL: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	a := &ACL{
		Owners:  []GroupID{1, 2},
		Entries: []PermEntry{{Group: 1, Perm: PermRead}, {Group: 2, Perm: PermWrite}},
	}
	valid := a.Encode()

	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeACL(nil); !errors.Is(err, ErrCodec) {
			t.Fatalf("want ErrCodec, got %v", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 1; cut < len(valid); cut++ {
			if _, err := DecodeACL(valid[:len(valid)-cut]); !errors.Is(err, ErrCodec) {
				t.Fatalf("truncate %d: want ErrCodec, got %v", cut, err)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := DecodeACL(append(bytes.Clone(valid), 0xFF)); !errors.Is(err, ErrCodec) {
			t.Fatalf("want ErrCodec, got %v", err)
		}
	})
	t.Run("unsorted owners", func(t *testing.T) {
		bad := &ACL{Owners: []GroupID{2, 1}}
		if _, err := DecodeACL(bad.Encode()); !errors.Is(err, ErrCodec) {
			t.Fatalf("want ErrCodec, got %v", err)
		}
	})
	t.Run("duplicate entry group", func(t *testing.T) {
		bad := &ACL{Entries: []PermEntry{{Group: 1, Perm: PermRead}, {Group: 1, Perm: PermWrite}}}
		if _, err := DecodeACL(bad.Encode()); !errors.Is(err, ErrCodec) {
			t.Fatalf("want ErrCodec, got %v", err)
		}
	})
	t.Run("huge count", func(t *testing.T) {
		// Tag + flags + owner count claiming 2^32-1 entries.
		bad := []byte{tagACL, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
		if _, err := DecodeACL(bad); !errors.Is(err, ErrCodec) {
			t.Fatalf("want ErrCodec, got %v", err)
		}
	})
}

func TestDecodeGroupListRejectsInvariantViolations(t *testing.T) {
	t.Run("duplicate names", func(t *testing.T) {
		l := &GroupList{
			NextID: 3,
			Groups: []GroupRecord{{ID: 1, Name: "x"}, {ID: 2, Name: "x"}},
		}
		if _, err := DecodeGroupList(l.Encode()); !errors.Is(err, ErrCodec) {
			t.Fatalf("want ErrCodec, got %v", err)
		}
	})
	t.Run("id >= NextID", func(t *testing.T) {
		l := &GroupList{NextID: 2, Groups: []GroupRecord{{ID: 5, Name: "x"}}}
		if _, err := DecodeGroupList(l.Encode()); !errors.Is(err, ErrCodec) {
			t.Fatalf("want ErrCodec, got %v", err)
		}
	})
	t.Run("unsorted ids", func(t *testing.T) {
		l := &GroupList{
			NextID: 10,
			Groups: []GroupRecord{{ID: 2, Name: "a"}, {ID: 1, Name: "b"}},
		}
		if _, err := DecodeGroupList(l.Encode()); !errors.Is(err, ErrCodec) {
			t.Fatalf("want ErrCodec, got %v", err)
		}
	})
	t.Run("empty name", func(t *testing.T) {
		l := &GroupList{NextID: 2, Groups: []GroupRecord{{ID: 1, Name: ""}}}
		if _, err := DecodeGroupList(l.Encode()); !errors.Is(err, ErrCodec) {
			t.Fatalf("want ErrCodec, got %v", err)
		}
	})
}

// Property: the ACL codec round-trips ACLs built through the mutation
// API.
func TestQuickACLCodecRoundTrip(t *testing.T) {
	prop := func(owners []uint16, groups []uint16, perms []uint32, inherit bool) bool {
		a := &ACL{Inherit: inherit}
		for _, o := range owners {
			a.AddOwner(GroupID(o))
		}
		for i, g := range groups {
			p := PermRead
			if i < len(perms) {
				p = Permission(perms[i])
			}
			a.SetPermission(GroupID(g), p)
		}
		got, err := DecodeACL(a.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalizeACL(got), normalizeACL(a))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: member list codec round-trips and never accepts unsorted
// corruption.
func TestQuickMemberListCodecRoundTrip(t *testing.T) {
	prop := func(groups []uint32) bool {
		var m MemberList
		for _, g := range groups {
			m.Add(GroupID(g))
		}
		got, err := DecodeMemberList(m.Encode())
		if err != nil {
			return false
		}
		if len(got.Groups) != len(m.Groups) {
			return false
		}
		for i := range got.Groups {
			if got.Groups[i] != m.Groups[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
