package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func bucketCount(h *Histogram, i int) uint64 { return h.buckets[i].Load() }

func TestHistogramZero(t *testing.T) {
	h := newHistogram()
	h.Observe(0)
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := h.Sum(); got != 0 {
		t.Fatalf("sum = %d, want 0", got)
	}
	if got := bucketCount(h, 0); got != 1 {
		t.Fatalf("bucket 0 = %d, want 1", got)
	}
	snap := h.Snapshot()
	if len(snap.Buckets) != 1 || snap.Buckets[0].UpperBound != 0 || snap.Buckets[0].Count != 1 {
		t.Fatalf("snapshot buckets = %+v, want one bucket le=0 count=1", snap.Buckets)
	}
}

func TestHistogramMaxUint64(t *testing.T) {
	h := newHistogram()
	h.Observe(math.MaxUint64)
	if got := bucketCount(h, 64); got != 1 {
		t.Fatalf("bucket 64 = %d, want 1", got)
	}
	if got := h.Sum(); got != math.MaxUint64 {
		t.Fatalf("sum = %d, want MaxUint64", got)
	}
	// A second max observation wraps the sum (Prometheus-counter
	// semantics) without touching counts.
	h.Observe(math.MaxUint64)
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	snap := h.Snapshot()
	if len(snap.Buckets) != 1 || snap.Buckets[0].UpperBound != math.MaxUint64 || snap.Buckets[0].Count != 2 {
		t.Fatalf("snapshot buckets = %+v", snap.Buckets)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1<<32 - 1, 32},
		{1 << 32, 33},
		{1<<63 - 1, 63},
		{1 << 63, 64},
		{math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.bucket {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Every bucket's upper bound must itself land in that bucket, and
	// bound+1 in the next (except the last).
	for i := 1; i < NumHistogramBuckets; i++ {
		ub := BucketUpperBound(i)
		if got := BucketIndex(ub); got != i {
			t.Errorf("BucketIndex(BucketUpperBound(%d)=%d) = %d", i, ub, got)
		}
		if i < 64 {
			if got := BucketIndex(ub + 1); got != i+1 {
				t.Errorf("BucketIndex(%d) = %d, want %d", ub+1, got, i+1)
			}
		}
	}
}

func TestHistogramNegativeDurationClamped(t *testing.T) {
	h := newHistogram()
	h.ObserveDuration(-5 * time.Second)
	if got := bucketCount(h, 0); got != 1 {
		t.Fatalf("bucket 0 = %d, want 1 (negative duration should clamp to 0)", got)
	}
	if got := h.Sum(); got != 0 {
		t.Fatalf("sum = %d, want 0", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(uint64(i % 1024))
				if i%64 == 0 {
					_ = h.Snapshot() // concurrent reads under -race
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	var total uint64
	for _, b := range h.Snapshot().Buckets {
		total += b.Count
	}
	if total != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*perG)
	}
}
