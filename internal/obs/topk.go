package obs

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// TopK is a space-saving heavy-hitter sketch over per-group request
// traffic: which tenants are hot, without keeping a counter per tenant.
// State is bounded at k slots; offering a key that has no slot evicts
// the current minimum and inherits its count (the classic
// Metwally/Agrawal/El Abbadi overestimate, tracked per slot so the
// export can say how much a count may lie).
//
// Leak budget: keys entering the sketch are already pseudonyms (see
// Pseudonymizer — group ids never reach this type), the slot count k is
// a config constant, and every exported count is a log2 bucket bound.

// PseudonymLen is the exported pseudonym length in hex characters. 12
// stays under the leak-budget's 16-hex-run digest-shape limit while
// keeping collisions negligible for any plausible tenant count.
const PseudonymLen = 12

// Pseudonymizer maps identity-bearing strings to fixed-length keyed
// pseudonyms. The key is random per process: pseudonyms are stable
// within one boot (so an operator can watch one hot tenant across
// snapshots and correlate with the exporter's batch metadata) but
// unlinkable across restarts and unrecoverable without the in-enclave
// key.
type Pseudonymizer struct {
	key [32]byte
	// cache memoizes id -> pseudonym so the request hot path pays the
	// HMAC only on a tenant's first request. Raw ids live only in this
	// in-enclave map, never in anything exported. Bounded: the map is
	// cleared when it exceeds pseudonymCacheMax distinct ids, so an
	// identity churn attack costs recomputation, not memory.
	cache sync.Map // id string -> pseudonym string
	size  atomic.Int64
}

// pseudonymCacheMax bounds the memoized id -> pseudonym map.
const pseudonymCacheMax = 4096

// NewPseudonymizer draws a fresh random key.
func NewPseudonymizer() (*Pseudonymizer, error) {
	p := &Pseudonymizer{}
	if _, err := rand.Read(p.key[:]); err != nil {
		return nil, err
	}
	return p, nil
}

// Pseudonym returns id's keyed pseudonym: lowercase hex, PseudonymLen
// characters.
func (p *Pseudonymizer) Pseudonym(id string) string {
	if v, ok := p.cache.Load(id); ok {
		return v.(string)
	}
	mac := hmac.New(sha256.New, p.key[:])
	mac.Write([]byte(id))
	sum := mac.Sum(nil)
	ps := hex.EncodeToString(sum)[:PseudonymLen]
	if p.size.Add(1) > pseudonymCacheMax {
		p.cache.Clear()
		p.size.Store(1)
	}
	p.cache.Store(id, ps)
	return ps
}

type hotSlot struct {
	reqs    uint64
	bytes   uint64
	overEst uint64 // count inherited from the slot this key displaced
}

// TopK is safe for concurrent use; Offer takes one short mutex.
type TopK struct {
	mu      sync.Mutex
	k       int
	slots   map[string]*hotSlot
	evicted uint64
}

// DefaultHotK is the slot bound used when the configuration leaves it
// to the default.
const DefaultHotK = 32

// NewTopK builds a sketch bounded at k slots (DefaultHotK when k <= 0).
func NewTopK(k int) *TopK {
	if k <= 0 {
		k = DefaultHotK
	}
	return &TopK{k: k, slots: make(map[string]*hotSlot, k)}
}

// Offer credits reqs requests and bytes to key, which must already be a
// pseudonym. A new key beyond the slot bound displaces the current
// minimum-count slot, inheriting its request count as the space-saving
// overestimate.
func (t *TopK) Offer(key string, reqs, bytes uint64) {
	if t == nil || key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.slots[key]; ok {
		s.reqs += reqs
		s.bytes += bytes
		return
	}
	if len(t.slots) < t.k {
		t.slots[key] = &hotSlot{reqs: reqs, bytes: bytes}
		return
	}
	var minKey string
	var min *hotSlot
	for k2, s := range t.slots {
		if min == nil || s.reqs < min.reqs {
			minKey, min = k2, s
		}
	}
	delete(t.slots, minKey)
	t.evicted++
	t.slots[key] = &hotSlot{reqs: min.reqs + reqs, bytes: bytes, overEst: min.reqs}
}

// HotEntry is one exported heavy hitter.
type HotEntry struct {
	// ID is the group's keyed pseudonym (class: pseudonym).
	ID string `json:"id"`
	// RequestsLe / BytesLe are the slot's counts (class: bucketed).
	RequestsLe uint64 `json:"requestsLe"`
	BytesLe    uint64 `json:"bytesLe"`
	// OverEstLe bounds how much RequestsLe may overstate the true count
	// due to slot inheritance (class: bucketed).
	OverEstLe uint64 `json:"overEstLe,omitempty"`
}

// HotStatus is the /debug/hot JSON body and the exporter batch-metadata
// payload.
type HotStatus struct {
	// K is the configured slot bound (class: config).
	K int `json:"k"`
	// EvictedLe counts slot displacements since boot (class: bucketed).
	EvictedLe uint64 `json:"evictedLe"`
	// Entries lists the current heavy hitters, busiest first.
	Entries []HotEntry `json:"entries"`
}

// HotEntryFields / HotStatusFields classify the exported fields for the
// leak-budget meta-test.
var HotEntryFields = map[string]FieldClass{
	"ID":         FieldPseudonym,
	"RequestsLe": FieldBucketed,
	"BytesLe":    FieldBucketed,
	"OverEstLe":  FieldBucketed,
}

var HotStatusFields = map[string]FieldClass{
	"K":         FieldConfig,
	"EvictedLe": FieldBucketed,
	"Entries":   FieldNested,
}

// Snapshot exports the sketch: pseudonymous ids with log2-bucketed
// counts, sorted by request count descending (raw counts order the
// sort; only bucket bounds leave).
func (t *TopK) Snapshot() HotStatus {
	if t == nil {
		return HotStatus{Entries: []HotEntry{}}
	}
	t.mu.Lock()
	type kv struct {
		key string
		s   hotSlot
	}
	items := make([]kv, 0, len(t.slots))
	for k, s := range t.slots {
		items = append(items, kv{k, *s})
	}
	evicted := t.evicted
	k := t.k
	t.mu.Unlock()
	sort.Slice(items, func(i, j int) bool {
		if items[i].s.reqs != items[j].s.reqs {
			return items[i].s.reqs > items[j].s.reqs
		}
		return items[i].key < items[j].key
	})
	st := HotStatus{K: k, EvictedLe: BucketCeil(int64(evicted)), Entries: make([]HotEntry, 0, len(items))}
	for _, it := range items {
		st.Entries = append(st.Entries, HotEntry{
			ID:         it.key,
			RequestsLe: BucketCeil(int64(it.s.reqs)),
			BytesLe:    BucketCeil(int64(it.s.bytes)),
			OverEstLe:  BucketCeil(int64(it.s.overEst)),
		})
	}
	return st
}

// VerifyHotStatus checks a snapshot against the leak budget: ids must
// be exactly PseudonymLen lowercase hex characters and every count a
// log2 bucket bound.
func VerifyHotStatus(st HotStatus) error {
	if !IsBucketBound(st.EvictedLe) {
		return &wideFieldError{field: "EvictedLe"}
	}
	for _, e := range st.Entries {
		if len(e.ID) != PseudonymLen {
			return &wideFieldError{field: "ID"}
		}
		for _, r := range e.ID {
			if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
				return &wideFieldError{field: "ID"}
			}
		}
		if !IsBucketBound(e.RequestsLe) {
			return &wideFieldError{field: "RequestsLe"}
		}
		if !IsBucketBound(e.BytesLe) {
			return &wideFieldError{field: "BytesLe"}
		}
		if !IsBucketBound(e.OverEstLe) {
			return &wideFieldError{field: "OverEstLe"}
		}
	}
	return nil
}

// Handler serves the /debug/hot JSON view.
func (t *TopK) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Snapshot())
	})
}
