package bench

import (
	"fmt"
	"io"
	"time"

	"segshare"
	"segshare/internal/baseline/hescheme"
	"segshare/internal/enclave"
)

// Experiment E7 — revocation-cost ablation quantifying Table III's P3
// column: revoking one member of a group that shares F files of size S
// costs SeGShare one member-list update, while the hybrid-encryption
// baseline re-encrypts every file and re-wraps every remaining member's
// key.

// RevocationConfig parameterises E7.
type RevocationConfig struct {
	// Files shared with the group.
	Files int
	// FileSize of each shared file in bytes.
	FileSize int
	// Members in the group before the revocation.
	Members int
	// Runs per system.
	Runs int
}

// DefaultRevocation is the default workload.
func DefaultRevocation() RevocationConfig {
	return RevocationConfig{Files: 32, FileSize: 256 << 10, Members: 16, Runs: 5}
}

// RevocationRow is one system's result.
type RevocationRow struct {
	System           string
	Files            int
	FileSize         int
	Members          int
	Latency          Stat
	ReencryptedBytes int64
	RewrappedKeys    int
}

// RunRevocationAblation executes E7 for SeGShare and the HE baseline.
func RunRevocationAblation(cfg RevocationConfig) ([]RevocationRow, error) {
	seg, err := runSegShareRevocation(cfg)
	if err != nil {
		return nil, fmt.Errorf("segshare revocation: %w", err)
	}
	he, err := runHERevocation(cfg)
	if err != nil {
		return nil, fmt.Errorf("he revocation: %w", err)
	}
	return []RevocationRow{seg, he}, nil
}

func runSegShareRevocation(cfg RevocationConfig) (RevocationRow, error) {
	env, err := NewEnv(EnvConfig{})
	if err != nil {
		return RevocationRow{}, err
	}
	defer env.Close()
	owner, err := env.NewClient("owner")
	if err != nil {
		return RevocationRow{}, err
	}
	direct := env.Direct("owner")
	payload := randomPayload(cfg.FileSize)
	for i := 0; i < cfg.Members; i++ {
		if err := direct.AddUser(fmt.Sprintf("member-%d", i), "shared-group"); err != nil {
			return RevocationRow{}, err
		}
	}
	for i := 0; i < cfg.Files; i++ {
		path := fmt.Sprintf("/shared-%d.bin", i)
		if err := direct.Upload(path, payload); err != nil {
			return RevocationRow{}, err
		}
		if err := direct.SetPermission(path, "shared-group", "rw"); err != nil {
			return RevocationRow{}, err
		}
	}
	// Revoking member-0: ONE member-list update, regardless of files or
	// file sizes. Re-add between runs to keep state comparable; the pair
	// halves to the single-op estimate.
	pair, err := measure(cfg.Runs, func() error {
		if err := owner.RemoveUser("member-0", "shared-group"); err != nil {
			return err
		}
		return owner.AddUser("member-0", "shared-group")
	})
	if err != nil {
		return RevocationRow{}, err
	}
	single := Stat{Mean: pair.Mean / 2, Std: pair.Std / 2, N: pair.N}
	return RevocationRow{
		System:   "segshare",
		Files:    cfg.Files,
		FileSize: cfg.FileSize,
		Members:  cfg.Members,
		Latency:  single,
		// No content bytes touched, no keys rewrapped (P3).
	}, nil
}

func runHERevocation(cfg RevocationConfig) (RevocationRow, error) {
	system := hescheme.New()
	users := make([]string, cfg.Members+1)
	users[0] = "owner"
	for i := 0; i < cfg.Members; i++ {
		users[i+1] = fmt.Sprintf("member-%d", i)
	}
	for _, u := range users {
		if err := system.RegisterUser(u); err != nil {
			return RevocationRow{}, err
		}
	}
	payload := randomPayload(cfg.FileSize)

	// Re-provision the corpus each run: a revocation rewrites it, so each
	// measured revocation must start from the fully shared state. Only
	// the revocation itself is timed.
	var lastCost hescheme.RevocationCost
	samples := make([]time.Duration, 0, cfg.Runs)
	for run := 0; run <= cfg.Runs; run++ { // first iteration is warm-up
		for i := 0; i < cfg.Files; i++ {
			if err := system.Upload("owner", fmt.Sprintf("/shared-%d.bin", i), payload, users[1:]...); err != nil {
				return RevocationRow{}, err
			}
		}
		start := time.Now()
		cost, err := system.RevokeEverywhere("owner", "member-0")
		if err != nil {
			return RevocationRow{}, err
		}
		if run > 0 {
			samples = append(samples, time.Since(start))
			lastCost = cost
		}
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	mean := sum / time.Duration(len(samples))
	return RevocationRow{
		System:           "he-baseline",
		Files:            cfg.Files,
		FileSize:         cfg.FileSize,
		Members:          cfg.Members,
		Latency:          Stat{Mean: mean, N: len(samples)},
		ReencryptedBytes: lastCost.ReencryptedBytes,
		RewrappedKeys:    lastCost.RewrappedKeys,
	}, nil
}

// Experiment E8 — switchless-call ablation (paper §VI): the same upload
// workload with the bridge in switchless mode vs blocking transitions.

// SwitchlessRow is one bridge mode's result.
type SwitchlessRow struct {
	Mode        string
	Upload      Stat
	Download    Stat
	Transitions uint64
}

// RunSwitchlessAblation executes E8.
func RunSwitchlessAblation(fileSize, runs int) ([]SwitchlessRow, error) {
	var rows []SwitchlessRow
	for _, mode := range []enclave.CallMode{enclave.ModeSwitchless, enclave.ModeBlocking} {
		env, err := NewEnv(EnvConfig{Bridge: segshare.BridgeConfig{Mode: mode}})
		if err != nil {
			return nil, err
		}
		client, err := env.NewClient("bench-user")
		if err != nil {
			env.Close()
			return nil, err
		}
		payload := randomPayload(fileSize)
		up, err := measure(runs, func() error { return client.Upload("/switchless.bin", payload) })
		if err != nil {
			env.Close()
			return nil, err
		}
		down, err := measure(runs, func() error { return client.DownloadTo("/switchless.bin", io.Discard) })
		if err != nil {
			env.Close()
			return nil, err
		}
		name := "switchless"
		if mode == enclave.ModeBlocking {
			name = "blocking"
		}
		rows = append(rows, SwitchlessRow{
			Mode:        name,
			Upload:      up,
			Download:    down,
			Transitions: env.Server.BridgeMetrics().Transitions,
		})
		env.Close()
	}
	return rows, nil
}
