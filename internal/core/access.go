package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"segshare/internal/acl"
	"segshare/internal/fspath"
	"segshare/internal/obs"
)

// accessControl is SeGShare's access control component (paper Fig. 1): it
// owns relation updates (updateRel) and authorization checks (auth_f,
// auth_g), using the trusted file manager to read and write the encrypted
// relation files. The request handler calls it with the user identity
// extracted from the client certificate — authorization never looks at
// anything else (objective F8).
type accessControl struct {
	fm *fileManager
	// fso optionally names the file-system owner; on first contact the
	// FSO's default group becomes the root directory's owner so root
	// permissions are manageable.
	fso acl.UserID
}

// withStats returns a view of ac whose file manager attributes work to
// rs (see fileManager.withStats). A nil rs returns ac unchanged.
func (ac *accessControl) withStats(rs *obs.ReqStats) *accessControl {
	if rs == nil {
		return ac
	}
	v := *ac
	v.fm = ac.fm.withStats(rs)
	return &v
}

// withRequest returns a view of ac bound to one request's stats and
// cancellation context (see fileManager.withRequest).
func (ac *accessControl) withRequest(rs *obs.ReqStats, ctx context.Context) *accessControl {
	if rs == nil && ctx == nil {
		return ac
	}
	v := *ac
	v.fm = ac.fm.withRequest(rs, ctx)
	return &v
}

// memberListOrEmpty returns the user's effective member list. Users that
// never contacted the system have no stored list; their membership in
// their own default group g_u is definitional (paper Table I: "each user
// u has a default group g_u"), so it is synthesized here whenever the
// default group exists — e.g. because another user granted them a
// permission before their first login.
func (ac *accessControl) memberListOrEmpty(u acl.UserID) (*acl.MemberList, error) {
	ml, err := ac.fm.readMemberList(u)
	switch {
	case errors.Is(err, ErrNotFound):
		ml = &acl.MemberList{}
	case err != nil:
		return nil, err
	}
	gl, err := ac.fm.readGroupList()
	if err != nil {
		return nil, err
	}
	if rec, ok := gl.ByName(acl.DefaultGroupName(u)); ok {
		ml.Add(rec.ID)
	}
	return ml, nil
}

// ensureUser lazily creates the user's default group g_u and member list
// on first contact, and bootstraps the FSO's root ownership.
func (ac *accessControl) ensureUser(u acl.UserID) (*acl.MemberList, error) {
	ml, err := ac.fm.readMemberList(u)
	if err == nil {
		return ml, nil
	}
	if !errors.Is(err, ErrNotFound) {
		return nil, err
	}
	gid, err := ac.ensureGroup(acl.DefaultGroupName(u))
	if err != nil {
		return nil, err
	}
	ml = &acl.MemberList{}
	ml.Add(gid)
	if err := ac.fm.writeMemberList(u, ml); err != nil {
		return nil, err
	}
	if ac.fso != "" && u == ac.fso {
		if err := ac.bootstrapFSO(gid); err != nil {
			return nil, err
		}
	}
	return ml, nil
}

// bootstrapFSO grants the file-system owner's default group ownership of
// the root directory if the root is still unowned.
func (ac *accessControl) bootstrapFSO(gid acl.GroupID) error {
	rootACL, err := ac.fm.readACL(fspath.Root)
	if err != nil {
		return err
	}
	if len(rootACL.Owners) > 0 {
		return nil
	}
	rootACL.AddOwner(gid)
	return ac.fm.writeACL(fspath.Root, rootACL)
}

// ensureGroup returns the ID of the named group, creating a record for
// default groups ("user:<id>") on demand. A default group is owned by
// itself, so the user it belongs to manages it.
func (ac *accessControl) ensureGroup(name acl.GroupName) (acl.GroupID, error) {
	gl, err := ac.fm.readGroupList()
	if err != nil {
		return 0, err
	}
	if rec, ok := gl.ByName(name); ok {
		return rec.ID, nil
	}
	if !strings.HasPrefix(string(name), "user:") {
		return 0, fmt.Errorf("%w: %s", ErrGroupNotFound, name)
	}
	rec, err := gl.Create(name)
	if err != nil {
		return 0, err
	}
	rec.AddOwner(rec.ID)
	if err := ac.fm.writeGroupList(gl); err != nil {
		return 0, err
	}
	return rec.ID, nil
}

// defaultGroupID returns the ID of the user's default group, which must
// already exist (ensureUser ran).
func (ac *accessControl) defaultGroupID(u acl.UserID) (acl.GroupID, error) {
	return ac.ensureGroup(acl.DefaultGroupName(u))
}

// authFile evaluates auth_f for a member list on a path, consulting the
// parent's ACL when the inherit flag is set (paper §V-B).
func (ac *accessControl) authFile(ml *acl.MemberList, path fspath.Path, want acl.Permission) (bool, error) {
	a, err := ac.fm.readACL(path)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	var parent *acl.ACL
	if a.Inherit && !path.IsRoot() {
		parent, err = ac.fm.readACL(path.Parent())
		if err != nil && !errors.Is(err, ErrNotFound) {
			return false, err
		}
	}
	return acl.AuthorizeFile(ml, a, parent, want), nil
}

// authGroup evaluates auth_g for a member list on a group record.
func (ac *accessControl) authGroup(ml *acl.MemberList, rec *acl.GroupRecord) bool {
	return acl.AuthorizeGroupChange(ml, rec)
}

// --- Algo 1: external requests ---------------------------------------

// PutDir implements "user u wants to create a directory at path".
func (ac *accessControl) PutDir(u acl.UserID, path fspath.Path) error {
	return ac.fm.mutate("mkcol", func() error { return ac.putDir(u, path) })
}

func (ac *accessControl) putDir(u acl.UserID, path fspath.Path) error {
	if !path.IsDir() || path.IsRoot() {
		return fmt.Errorf("%w: not a creatable directory path", ErrBadRequest)
	}
	ml, err := ac.ensureUser(u)
	if err != nil {
		return err
	}
	if ok, err := ac.fm.pathExists(path); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	parent := path.Parent()
	if ok, err := ac.fm.pathExists(parent); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: parent %s", ErrNotFound, parent)
	}
	if !parent.IsRoot() {
		ok, err := ac.authFile(ml, parent, acl.PermWrite)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: write %s", ErrPermissionDenied, parent)
		}
	}
	gu, err := ac.defaultGroupID(u)
	if err != nil {
		return err
	}
	dirACL := &acl.ACL{}
	dirACL.AddOwner(gu)
	return ac.fm.createDir(path, dirACL)
}

// PutFile implements "user u wants to create or update a file at path".
func (ac *accessControl) PutFile(u acl.UserID, path fspath.Path, content []byte) (created bool, err error) {
	err = ac.fm.mutate("put", func() error {
		var ferr error
		created, ferr = ac.putFile(u, path, content)
		return ferr
	})
	return created, err
}

func (ac *accessControl) putFile(u acl.UserID, path fspath.Path, content []byte) (created bool, err error) {
	if path.IsDir() {
		return false, fmt.Errorf("%w: %s is a directory path", ErrBadRequest, path)
	}
	ml, err := ac.ensureUser(u)
	if err != nil {
		return false, err
	}
	parent := path.Parent()
	parentExists, err := ac.fm.pathExists(parent)
	if err != nil {
		return false, err
	}
	fileExists, err := ac.fm.pathExists(path)
	if err != nil {
		return false, err
	}

	// Algo 1's "path2 == /" exception lets any user create at the (ACL-
	// less) root. Read literally it would also let anyone overwrite
	// existing root-level files; we scope it to creation — updates always
	// require write permission on the file or its parent.
	authorized := parent.IsRoot() && !fileExists
	if !authorized && parentExists {
		authorized, err = ac.authFile(ml, parent, acl.PermWrite)
		if err != nil {
			return false, err
		}
	}
	if !authorized && fileExists {
		authorized, err = ac.authFile(ml, path, acl.PermWrite)
		if err != nil {
			return false, err
		}
	}
	if !authorized {
		return false, fmt.Errorf("%w: write %s", ErrPermissionDenied, path)
	}
	if !fileExists && !parentExists {
		return false, fmt.Errorf("%w: parent %s", ErrNotFound, parent)
	}

	var newACL *acl.ACL
	if !fileExists {
		gu, err := ac.defaultGroupID(u)
		if err != nil {
			return false, err
		}
		newACL = &acl.ACL{}
		newACL.AddOwner(gu)
	}
	return ac.fm.writeContent(path, content, newACL)
}

// GetFile implements the read half of "get file content".
func (ac *accessControl) GetFile(u acl.UserID, path fspath.Path) ([]byte, error) {
	ml, err := ac.memberListOrEmpty(u)
	if err != nil {
		return nil, err
	}
	if ok, err := ac.fm.pathExists(path); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	ok, err := ac.authFile(ml, path, acl.PermRead)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: read %s", ErrPermissionDenied, path)
	}
	return ac.fm.readContent(path)
}

// GetFileRange is GetFile for a byte range: same authorization, but the
// read decrypts only the chunks the range touches when the stored format
// allows it (see fileManager.readContentRange).
func (ac *accessControl) GetFileRange(u acl.UserID, path fspath.Path, br ByteRange) (RangeResult, error) {
	ml, err := ac.memberListOrEmpty(u)
	if err != nil {
		return RangeResult{}, err
	}
	if ok, err := ac.fm.pathExists(path); err != nil {
		return RangeResult{}, err
	} else if !ok {
		return RangeResult{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	ok, err := ac.authFile(ml, path, acl.PermRead)
	if err != nil {
		return RangeResult{}, err
	}
	if !ok {
		return RangeResult{}, fmt.Errorf("%w: read %s", ErrPermissionDenied, path)
	}
	return ac.fm.readContentRange(path, br)
}

// ListedEntry is a directory child with the requesting user's effective
// permission.
type ListedEntry struct {
	Name       string
	IsDir      bool
	Permission acl.Permission
}

// GetDir implements "get directory listing", annotating each child with
// the user's effective permission.
func (ac *accessControl) GetDir(u acl.UserID, path fspath.Path) ([]ListedEntry, error) {
	ml, err := ac.memberListOrEmpty(u)
	if err != nil {
		return nil, err
	}
	if ok, err := ac.fm.pathExists(path); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	ok, err := ac.authFile(ml, path, acl.PermRead)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: read %s", ErrPermissionDenied, path)
	}
	entries, err := ac.fm.readDir(path)
	if err != nil {
		return nil, err
	}
	dirACL, err := ac.fm.readACL(path)
	if err != nil {
		return nil, err
	}
	out := make([]ListedEntry, 0, len(entries))
	for _, e := range entries {
		child, err := childPath(path, e)
		if err != nil {
			return nil, err
		}
		childACL, err := ac.fm.readACL(child)
		if err != nil {
			return nil, err
		}
		out = append(out, ListedEntry{
			Name:       e.Name,
			IsDir:      e.IsDir,
			Permission: acl.EffectivePermission(ml, childACL, dirACL),
		})
	}
	return out, nil
}

func childPath(dir fspath.Path, e DirEntry) (fspath.Path, error) {
	if e.IsDir {
		return dir.ChildDir(e.Name)
	}
	return dir.ChildFile(e.Name)
}

// requireOwner checks the owner-level auth_f(u, "", f) used by permission
// and ownership updates.
func (ac *accessControl) requireOwner(u acl.UserID, path fspath.Path) (*acl.ACL, error) {
	ml, err := ac.memberListOrEmpty(u)
	if err != nil {
		return nil, err
	}
	a, err := ac.fm.readACL(path)
	if errors.Is(err, ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if err != nil {
		return nil, err
	}
	if !acl.AuthorizeFile(ml, a, nil, acl.PermNone) {
		return nil, fmt.Errorf("%w: not an owner of %s", ErrPermissionDenied, path)
	}
	return a, nil
}

// SetPermission implements set_p: the owner sets permission p for group g
// on the file at path. PermNone removes the entry.
func (ac *accessControl) SetPermission(u acl.UserID, path fspath.Path, group acl.GroupName, p acl.Permission) error {
	return ac.fm.mutate("set_p", func() error { return ac.setPermission(u, path, group, p) })
}

func (ac *accessControl) setPermission(u acl.UserID, path fspath.Path, group acl.GroupName, p acl.Permission) error {
	a, err := ac.requireOwner(u, path)
	if err != nil {
		return err
	}
	gid, err := ac.ensureGroup(group)
	if err != nil {
		return err
	}
	if p == acl.PermNone {
		a.RemovePermission(gid)
	} else {
		a.SetPermission(gid, p)
	}
	return ac.fm.writeACL(path, a)
}

// SetInherit implements the rI update of paper §V-B.
func (ac *accessControl) SetInherit(u acl.UserID, path fspath.Path, inherit bool) error {
	return ac.fm.mutate("set_inherit", func() error { return ac.setInherit(u, path, inherit) })
}

func (ac *accessControl) setInherit(u acl.UserID, path fspath.Path, inherit bool) error {
	a, err := ac.requireOwner(u, path)
	if err != nil {
		return err
	}
	a.Inherit = inherit
	return ac.fm.writeACL(path, a)
}

// SetFileOwner adds or removes a group from the file's owners (rFO),
// allowing multiple file owners (objective F7).
func (ac *accessControl) SetFileOwner(u acl.UserID, path fspath.Path, group acl.GroupName, owner bool) error {
	return ac.fm.mutate("set_owner", func() error { return ac.setFileOwner(u, path, group, owner) })
}

func (ac *accessControl) setFileOwner(u acl.UserID, path fspath.Path, group acl.GroupName, owner bool) error {
	a, err := ac.requireOwner(u, path)
	if err != nil {
		return err
	}
	gid, err := ac.ensureGroup(group)
	if err != nil {
		return err
	}
	if owner {
		a.AddOwner(gid)
	} else {
		a.RemoveOwner(gid)
		if len(a.Owners) == 0 {
			return fmt.Errorf("%w: a file needs at least one owner", ErrBadRequest)
		}
	}
	return ac.fm.writeACL(path, a)
}

// AddUser implements add_u: create the group on first use (creator joins
// and owns it), then add u2 — which only rewrites u2's member list file.
func (ac *accessControl) AddUser(u1, u2 acl.UserID, group acl.GroupName) error {
	return ac.fm.mutate("add_u", func() error { return ac.addUser(u1, u2, group) })
}

func (ac *accessControl) addUser(u1, u2 acl.UserID, group acl.GroupName) error {
	if strings.HasPrefix(string(group), "user:") {
		return fmt.Errorf("%w: default groups cannot be managed", ErrBadRequest)
	}
	ml1, err := ac.ensureUser(u1)
	if err != nil {
		return err
	}
	gl, err := ac.fm.readGroupList()
	if err != nil {
		return err
	}
	rec, ok := gl.ByName(group)
	if !ok {
		gu1, err := ac.defaultGroupID(u1)
		if err != nil {
			return err
		}
		// Re-read: ensureGroup above may have rewritten the list.
		gl, err = ac.fm.readGroupList()
		if err != nil {
			return err
		}
		rec, err = gl.Create(group, gu1)
		if err != nil {
			return err
		}
		if err := ac.fm.writeGroupList(gl); err != nil {
			return err
		}
		// The creator becomes a member (Algo 1: rG ∪ (u1, g)).
		ml1.Add(rec.ID)
		if err := ac.fm.writeMemberList(u1, ml1); err != nil {
			return err
		}
	}
	if !ac.authGroup(ml1, rec) {
		return fmt.Errorf("%w: not an owner of group %s", ErrPermissionDenied, group)
	}
	ml2, err := ac.memberListOrEmptyForUpdate(u2)
	if err != nil {
		return err
	}
	ml2.Add(rec.ID)
	return ac.fm.writeMemberList(u2, ml2)
}

// memberListOrEmptyForUpdate loads a member list that is about to be
// written back; absent lists start empty (the target user may never have
// contacted the system — separation of authentication and authorization
// allows granting before first login).
func (ac *accessControl) memberListOrEmptyForUpdate(u acl.UserID) (*acl.MemberList, error) {
	ml, err := ac.fm.readMemberList(u)
	if errors.Is(err, ErrNotFound) {
		// Materialize the default group too so the user's own identity
		// relations are complete.
		if _, err := ac.ensureUser(u); err != nil {
			return nil, err
		}
		return ac.fm.readMemberList(u)
	}
	return ml, err
}

// RemoveUser implements rmv_u: an immediate membership revocation that
// only rewrites u2's member list file (objectives P3, S4).
func (ac *accessControl) RemoveUser(u1, u2 acl.UserID, group acl.GroupName) error {
	return ac.fm.mutate("rmv_u", func() error { return ac.removeUser(u1, u2, group) })
}

func (ac *accessControl) removeUser(u1, u2 acl.UserID, group acl.GroupName) error {
	ml1, err := ac.ensureUser(u1)
	if err != nil {
		return err
	}
	gl, err := ac.fm.readGroupList()
	if err != nil {
		return err
	}
	rec, ok := gl.ByName(group)
	if !ok {
		return fmt.Errorf("%w: %s", ErrGroupNotFound, group)
	}
	if !ac.authGroup(ml1, rec) {
		return fmt.Errorf("%w: not an owner of group %s", ErrPermissionDenied, group)
	}
	ml2, err := ac.fm.readMemberList(u2)
	if errors.Is(err, ErrNotFound) {
		return nil // nothing to revoke
	}
	if err != nil {
		return err
	}
	if ml2.Remove(rec.ID) {
		return ac.fm.writeMemberList(u2, ml2)
	}
	return nil
}

// SetGroupOwner adds or removes an owning group of a group (rGO),
// enabling multiple group owners (objective F7).
func (ac *accessControl) SetGroupOwner(u acl.UserID, group, ownerGroup acl.GroupName, owner bool) error {
	return ac.fm.mutate("set_gowner", func() error { return ac.setGroupOwner(u, group, ownerGroup, owner) })
}

func (ac *accessControl) setGroupOwner(u acl.UserID, group, ownerGroup acl.GroupName, owner bool) error {
	ml, err := ac.ensureUser(u)
	if err != nil {
		return err
	}
	gl, err := ac.fm.readGroupList()
	if err != nil {
		return err
	}
	rec, ok := gl.ByName(group)
	if !ok {
		return fmt.Errorf("%w: %s", ErrGroupNotFound, group)
	}
	if !ac.authGroup(ml, rec) {
		return fmt.Errorf("%w: not an owner of group %s", ErrPermissionDenied, group)
	}
	ownerRec, ok := gl.ByName(ownerGroup)
	if !ok {
		return fmt.Errorf("%w: %s", ErrGroupNotFound, ownerGroup)
	}
	if owner {
		rec.AddOwner(ownerRec.ID)
	} else {
		rec.RemoveOwner(ownerRec.ID)
		if len(rec.Owners) == 0 {
			return fmt.Errorf("%w: a group needs at least one owner", ErrBadRequest)
		}
	}
	return ac.fm.writeGroupList(gl)
}

// DeleteGroup removes a group entirely. As the paper notes (§IV-B), this
// is the one deliberately expensive operation: every member list must be
// visited.
func (ac *accessControl) DeleteGroup(u acl.UserID, group acl.GroupName) error {
	return ac.fm.mutate("del_g", func() error { return ac.deleteGroup(u, group) })
}

func (ac *accessControl) deleteGroup(u acl.UserID, group acl.GroupName) error {
	if strings.HasPrefix(string(group), "user:") {
		return fmt.Errorf("%w: default groups cannot be deleted", ErrBadRequest)
	}
	ml, err := ac.ensureUser(u)
	if err != nil {
		return err
	}
	gl, err := ac.fm.readGroupList()
	if err != nil {
		return err
	}
	rec, ok := gl.ByName(group)
	if !ok {
		return fmt.Errorf("%w: %s", ErrGroupNotFound, group)
	}
	if !ac.authGroup(ml, rec) {
		return fmt.Errorf("%w: not an owner of group %s", ErrPermissionDenied, group)
	}
	// Scrub the group from every member list.
	_, rootDB, err := ac.fm.loadDir(ac.fm.group, groupRootName)
	if err != nil {
		return err
	}
	for _, e := range rootDB.entries {
		if !strings.HasPrefix(e.Name, memberNamePfx) {
			continue
		}
		uid := acl.UserID(strings.TrimPrefix(e.Name, memberNamePfx))
		uml, err := ac.fm.readMemberList(uid)
		if err != nil {
			return err
		}
		if uml.Remove(rec.ID) {
			if err := ac.fm.writeMemberList(uid, uml); err != nil {
				return err
			}
		}
	}
	gl.Delete(rec.ID)
	return ac.fm.writeGroupList(gl)
}

// Memberships returns the names of the groups the user belongs to.
func (ac *accessControl) Memberships(u acl.UserID) ([]acl.GroupName, error) {
	ml, err := ac.memberListOrEmpty(u)
	if err != nil {
		return nil, err
	}
	gl, err := ac.fm.readGroupList()
	if err != nil {
		return nil, err
	}
	var names []acl.GroupName
	for _, gid := range ml.Groups {
		if rec, ok := gl.ByID(gid); ok {
			names = append(names, rec.Name)
		}
	}
	return names, nil
}

// OwnedGroups returns the names of the groups the user owns (directly or
// through rGO), i.e. those the user may manage with auth_g.
func (ac *accessControl) OwnedGroups(u acl.UserID) ([]acl.GroupName, error) {
	ml, err := ac.memberListOrEmpty(u)
	if err != nil {
		return nil, err
	}
	gl, err := ac.fm.readGroupList()
	if err != nil {
		return nil, err
	}
	var names []acl.GroupName
	for i := range gl.Groups {
		if ac.authGroup(ml, &gl.Groups[i]) {
			names = append(names, gl.Groups[i].Name)
		}
	}
	return names, nil
}

// Remove implements the remove file/directory request.
func (ac *accessControl) Remove(u acl.UserID, path fspath.Path) error {
	return ac.fm.mutate("delete", func() error { return ac.remove(u, path) })
}

func (ac *accessControl) remove(u acl.UserID, path fspath.Path) error {
	ml, err := ac.memberListOrEmpty(u)
	if err != nil {
		return err
	}
	if ok, err := ac.fm.pathExists(path); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	ok, err := ac.authFile(ml, path, acl.PermWrite)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: write %s", ErrPermissionDenied, path)
	}
	return ac.fm.removePath(path, true)
}

// Move implements the move file/directory request: write access on the
// source and on the destination parent (or destination-parent-is-root,
// mirroring Algo 1's creation rule).
func (ac *accessControl) Move(u acl.UserID, src, dst fspath.Path) error {
	return ac.fm.mutate("move", func() error { return ac.move(u, src, dst) })
}

func (ac *accessControl) move(u acl.UserID, src, dst fspath.Path) error {
	ml, err := ac.memberListOrEmpty(u)
	if err != nil {
		return err
	}
	if ok, err := ac.fm.pathExists(src); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, src)
	}
	if ok, err := ac.authFile(ml, src, acl.PermWrite); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: write %s", ErrPermissionDenied, src)
	}
	dstParent := dst.Parent()
	if !dstParent.IsRoot() {
		if ok, err := ac.fm.pathExists(dstParent); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("%w: parent %s", ErrNotFound, dstParent)
		}
		if ok, err := ac.authFile(ml, dstParent, acl.PermWrite); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("%w: write %s", ErrPermissionDenied, dstParent)
		}
	}
	return ac.fm.movePath(src, dst)
}
