package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestTracesQueryClampedToCapacity(t *testing.T) {
	reg := NewRegistry()
	rec := NewTraceRecorder(8)
	for i := 0; i < 20; i++ {
		rec.Start("fs_get").End()
	}
	h := Handler(reg, rec)

	for _, q := range []string{"?n=1000000000", "?n=9", ""} {
		req := httptest.NewRequest(http.MethodGet, "/debug/traces"+q, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("GET /debug/traces%s = %d", q, w.Code)
		}
		var traces []TraceSnapshot
		if err := json.Unmarshal(w.Body.Bytes(), &traces); err != nil {
			t.Fatal(err)
		}
		if len(traces) > rec.Capacity() {
			t.Fatalf("query %q returned %d traces, ring capacity is %d", q, len(traces), rec.Capacity())
		}
	}

	// A small n is still honored.
	req := httptest.NewRequest(http.MethodGet, "/debug/traces?n=2", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var traces []TraceSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("n=2 returned %d traces", len(traces))
	}
}

func TestHealthEndpoints(t *testing.T) {
	reg := NewRegistry()
	health := NewHealth()
	storeUp := true
	if err := health.AddCheck("store", func() error {
		if !storeUp {
			return errors.New("dial tcp: secret-host:9999 refused")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	h := Handler(reg, nil, WithHealth(health))

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}

	// Liveness is unconditional.
	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", w.Code)
	}
	// Not ready until the server flips the flag.
	if w := get("/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady = %d", w.Code)
	}
	health.SetReady(true)
	if w := get("/readyz"); w.Code != http.StatusOK {
		t.Fatalf("/readyz after SetReady = %d: %s", w.Code, w.Body)
	}
	// A failing probe flips readiness and reports the check name only —
	// never the probe's error text (leak budget).
	storeUp = false
	w := get("/readyz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with failing store = %d", w.Code)
	}
	body := w.Body.String()
	if body != "check failed: store\n" {
		t.Fatalf("/readyz body = %q", body)
	}
	// Shutdown drain.
	storeUp = true
	health.SetReady(false)
	if w := get("/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d", w.Code)
	}
}

func TestHealthCheckNameLeakBudget(t *testing.T) {
	health := NewHealth()
	if err := health.AddCheck("user_alice_probe", func() error { return nil }); err == nil {
		t.Fatal("identity-bearing check name must be rejected")
	}
	if err := health.AddCheck("store", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestWithEndpoint(t *testing.T) {
	reg := NewRegistry()
	h := Handler(reg, nil, WithEndpoint("/debug/audit/head", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"records":1}`)
		})))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/audit/head", nil))
	if w.Code != http.StatusOK || w.Body.String() != `{"records":1}` {
		t.Fatalf("extra endpoint: %d %q", w.Code, w.Body)
	}
}
