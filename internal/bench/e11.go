package bench

import (
	"fmt"
)

// E11 — crash-consistency journal overhead (DESIGN.md §11). Every
// mutation now stages its blob writes, seals them into one intent record,
// and pays one extra sealed write (plus one delete) to the group store.
// This experiment measures what that costs on the PUT path, for creates
// and updates across content sizes, by running the identical workload
// with the journal on and off.

// E11Config parameterizes the journal-overhead experiment.
type E11Config struct {
	// Sizes holds the content sizes to sweep.
	Sizes []int
	// Runs is the number of measured repetitions per cell.
	Runs int
}

// DefaultE11 returns the scaled-down default parameters.
func DefaultE11() E11Config {
	return E11Config{Sizes: []int{1 << 10, 64 << 10, 1 << 20}, Runs: 30}
}

// E11Row is one measured cell: the same operation with and without the
// intent journal, plus the relative overhead.
type E11Row struct {
	Op       string // "put-create" or "put-update"
	Size     int
	With     Stat
	Without  Stat
	Overhead float64 // (with-without)/without
}

// RunE11 measures PUT latency with the journal enabled and disabled.
func RunE11(cfg E11Config) ([]E11Row, error) {
	if len(cfg.Sizes) == 0 || cfg.Runs <= 0 {
		return nil, fmt.Errorf("bench: e11 config incomplete: %+v", cfg)
	}
	var rows []E11Row
	for _, op := range []string{"put-create", "put-update"} {
		for _, size := range cfg.Sizes {
			with, err := e11Cell(op, size, cfg.Runs, false)
			if err != nil {
				return nil, err
			}
			without, err := e11Cell(op, size, cfg.Runs, true)
			if err != nil {
				return nil, err
			}
			overhead := 0.0
			if without.Mean > 0 {
				overhead = float64(with.Mean-without.Mean) / float64(without.Mean)
			}
			rows = append(rows, E11Row{Op: op, Size: size, With: with, Without: without, Overhead: overhead})
		}
	}
	return rows, nil
}

func e11Cell(op string, size, runs int, disableJournal bool) (Stat, error) {
	env, err := NewEnv(EnvConfig{DisableJournal: disableJournal})
	if err != nil {
		return Stat{}, err
	}
	defer env.Close()
	d := env.Direct("owner")
	if err := d.Mkdir("/bench/"); err != nil {
		return Stat{}, err
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	if op == "put-update" {
		if err := d.Upload("/bench/f", payload); err != nil {
			return Stat{}, err
		}
		return measure(runs, func() error {
			return d.Upload("/bench/f", payload)
		})
	}
	n := 0
	return measure(runs, func() error {
		n++
		return d.Upload(fmt.Sprintf("/bench/f%d", n), payload)
	})
}
