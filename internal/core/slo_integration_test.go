package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"segshare/internal/audit"
	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/obs"
	"segshare/internal/store"
)

// TestSLOBreachEvidenceTrail wires the full observability stack — SLO
// engine, in-flight registry, heavy-hitter sketch, continuous profiler,
// audit log — into one server and drives a burn-rate breach through it.
// A breach must leave the complete evidence trail: an slo_breach audit
// record, force-sampled traces of the offending op class, and a profile
// pair captured with the breach reason. Run under -race, this is also
// the concurrency acceptance test for the new wiring.
func TestSLOBreachEvidenceTrail(t *testing.T) {
	reg := obs.NewRegistry()
	authority, err := ca.New("slo test CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	profiler, err := obs.NewContinuousProfiler(obs.ProfilerOptions{
		Dir:         t.TempDir(),
		Interval:    time.Hour, // captures come from triggers only
		CPUDuration: 20 * time.Millisecond,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer profiler.Stop()

	auditStore := store.NewMemory()
	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewMemory(),
		GroupStore:   store.NewMemory(),
		Obs:          reg,
		AuditStore:   auditStore,
		Audit:        audit.Options{CheckpointEvery: 4, Overflow: audit.OverflowBlock},
		// Keep nothing on policy grounds, so every retained trace below is
		// provably the SLO engine's force-sampling at work.
		SamplePolicy: &obs.SamplePolicy{SlowNs: time.Hour.Nanoseconds(), ErrorStatus: 999, ContentionNs: time.Hour.Nanoseconds()},
		SLO: &obs.SLOConfig{
			Objective:        0.9,
			LatencyThreshold: time.Nanosecond, // every request is "bad"
			FastBurn:         1,
			SlowBurn:         1,
			FastShort:        50 * time.Millisecond,
			FastLong:         200 * time.Millisecond,
			SlowShort:        300 * time.Millisecond,
			SlowLong:         600 * time.Millisecond,
			EvalInterval:     time.Hour, // the test drives Evaluate directly
			MinEvents:        1,
		},
		HotGroups: -1,
		Profiler:  profiler,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })

	// A workload whose every request overruns the 1ns latency threshold.
	d := server.Direct("alice")
	if err := d.Mkdir("/reports/"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := d.Upload(fmt.Sprintf("/reports/q%d.txt", i), []byte("numbers")); err != nil {
			t.Fatal(err)
		}
	}

	sampledBefore := server.Traces().Sampled()
	server.SLO().Evaluate(time.Now())

	// /debug/slo reports the breach in leak-bounded form.
	st := server.SLO().Status()
	if err := obs.VerifySLOStatus(st); err != nil {
		t.Fatalf("VerifySLOStatus: %v", err)
	}
	breached := false
	for _, c := range st.Classes {
		if c.FastBurning {
			breached = true
		}
	}
	if !breached {
		t.Fatalf("no class fast-burning after an all-bad workload: %+v", st.Classes)
	}
	rec := httptest.NewRecorder()
	server.SLOHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/slo", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), obs.WindowFastShort) {
		t.Fatalf("/debug/slo = %d: %s", rec.Code, rec.Body)
	}

	// The breach armed force-sampling: subsequent requests of the
	// breached class are retained despite the keep-nothing policy.
	for i := 0; i < 5; i++ {
		if err := d.Upload("/reports/q0.txt", []byte("revised")); err != nil {
			t.Fatal(err)
		}
	}
	if got := server.Traces().Sampled(); got < sampledBefore+5 {
		t.Fatalf("sampled = %d after breach (was %d); force-sampling did not arm", got, sampledBefore)
	}

	// The fast burn triggered a profile pair tagged with the breach
	// reason.
	deadline := time.Now().Add(10 * time.Second)
	for {
		found := false
		for _, e := range profiler.Index().Entries {
			if e.Reason == "slo_"+obs.BreachFast {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slo_fast_burn profile captured: %+v", profiler.Index().Entries)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /debug/hot charges the workload to alice's pseudonymized default
	// group — and never the raw id.
	rec = httptest.NewRecorder()
	server.HotHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/hot = %d", rec.Code)
	}
	var hot obs.HotStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &hot); err != nil {
		t.Fatal(err)
	}
	if len(hot.Entries) == 0 {
		t.Fatal("/debug/hot is empty after the workload")
	}
	if err := obs.VerifyHotStatus(hot); err != nil {
		t.Fatalf("VerifyHotStatus: %v", err)
	}
	if strings.Contains(rec.Body.String(), "alice") {
		t.Fatalf("/debug/hot leaks the user id: %s", rec.Body)
	}

	// /debug/requests answers (empty: nothing in flight between calls).
	rec = httptest.NewRecorder()
	server.RequestsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/requests = %d", rec.Code)
	}

	// The whole deployment — SLO gauges, profiler counters, hot sketch —
	// stays inside the leak budget.
	if got := reg.LeakBudgetViolations(); got != 0 {
		t.Fatalf("leak budget violations = %d", got)
	}
	if errs := reg.VerifyAll(); len(errs) != 0 {
		t.Fatalf("VerifyAll: %v", errs)
	}
	for _, m := range reg.Snapshot() {
		for _, l := range m.Labels {
			if strings.Contains(l.Value, "alice") || strings.Contains(l.Value, "reports") {
				t.Fatalf("metric %s label %s=%s leaks identity", m.Name, l.Key, l.Value)
			}
		}
	}

	// Offline audit verification: the breach is in the sealed log.
	keys, err := audit.DeriveKeys(server.RootKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	liveCounter := server.Enclave().Counter("audit-log").Value()
	var dump bytes.Buffer
	if _, err := audit.Verify(auditStore, keys, audit.VerifyOptions{ExpectCounter: liveCounter, Dump: &dump}); err != nil {
		t.Fatalf("offline verification failed: %v", err)
	}
	foundBreach := false
	dec := json.NewDecoder(&dump)
	for dec.More() {
		var r audit.Record
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		if r.Event == audit.EventSLOBreach && r.Detail == obs.BreachFast {
			foundBreach = true
		}
	}
	if !foundBreach {
		t.Fatal("no slo_breach/fast_burn record in the verified audit log")
	}
}
