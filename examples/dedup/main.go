// Dedup: demonstrates server-side deduplication across groups (paper
// §V-A). Two unrelated users upload the same large dataset; the
// deduplication store keeps a single encrypted copy, and releasing one
// reference leaves the other intact.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"segshare"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	authority, err := segshare.NewCA("Dedup Demo CA")
	if err != nil {
		return err
	}
	platform, err := segshare.NewPlatform(segshare.PlatformConfig{})
	if err != nil {
		return err
	}
	dedupStore := segshare.NewMemoryStore()
	cfg := segshare.ServerConfig{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: segshare.NewMemoryStore(),
		GroupStore:   segshare.NewMemoryStore(),
		DedupStore:   dedupStore,
		Features:     segshare.Features{Dedup: true},
	}
	server, err := segshare.NewServer(platform, cfg)
	if err != nil {
		return err
	}
	defer server.Close()
	if err := segshare.Provision(authority, platform, server, cfg, []string{"localhost"}); err != nil {
		return err
	}
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}

	connect := func(user string) (*segshare.Client, error) {
		cred, err := authority.IssueClientCertificate(segshare.Identity{UserID: user}, time.Hour)
		if err != nil {
			return nil, err
		}
		return segshare.NewClient(segshare.ClientConfig{
			Addr:       addr.String(),
			CACertPEM:  authority.CertificatePEM(),
			Credential: cred,
		})
	}
	alice, err := connect("alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := connect("bob")
	if err != nil {
		return err
	}
	defer bob.Close()

	dataset := bytes.Repeat([]byte("sensor-reading,12.7,ok\n"), 200_000) // ~4.4 MiB
	report := func(stage string) error {
		stored, err := dedupStore.TotalBytes()
		if err != nil {
			return err
		}
		fmt.Printf("%-38s dedup store: %6.2f MiB\n", stage, float64(stored)/(1<<20))
		return nil
	}

	if err := alice.Mkdir("/alice/"); err != nil {
		return err
	}
	if err := bob.Mkdir("/bob/"); err != nil {
		return err
	}

	if err := alice.Upload("/alice/dataset.csv", dataset); err != nil {
		return err
	}
	if err := report("alice uploaded 4.4 MiB"); err != nil {
		return err
	}

	// Bob — a different user, different default group, no sharing
	// relationship — uploads the exact same dataset.
	if err := bob.Upload("/bob/the-same-data.csv", dataset); err != nil {
		return err
	}
	if err := report("bob uploaded the same 4.4 MiB"); err != nil {
		return err
	}

	// Both can read; there is still one encrypted copy.
	if got, err := bob.Download("/bob/the-same-data.csv"); err != nil || !bytes.Equal(got, dataset) {
		return fmt.Errorf("bob's copy corrupt: %v", err)
	}

	// Alice deletes hers; bob's reference keeps the object alive.
	if err := alice.Remove("/alice/dataset.csv"); err != nil {
		return err
	}
	if err := report("alice deleted her copy"); err != nil {
		return err
	}
	if got, err := bob.Download("/bob/the-same-data.csv"); err != nil || !bytes.Equal(got, dataset) {
		return fmt.Errorf("bob lost his copy: %v", err)
	}

	// Bob deletes too; the object is garbage collected.
	if err := bob.Remove("/bob/the-same-data.csv"); err != nil {
		return err
	}
	if err := report("bob deleted his copy"); err != nil {
		return err
	}
	fmt.Println("one encrypted copy served two groups; freed when the last reference went")
	return nil
}
