package pfs

import (
	"bytes"
	"testing"

	"segshare/internal/pae"
)

// FuzzDecrypt feeds arbitrary blobs to the verified reader: it must never
// panic and must reject everything that is not a faithful encryption.
func FuzzDecrypt(f *testing.F) {
	key, err := pae.KeyFromBytes(bytes.Repeat([]byte{3}, pae.KeySize))
	if err != nil {
		f.Fatal(err)
	}
	valid, err := Encrypt(key, []byte("/f"), bytes.Repeat([]byte("x"), 3*ChunkSize/2))
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Fuzz(func(t *testing.T, blob []byte) {
		pt, err := Decrypt(key, []byte("/f"), blob)
		if err != nil {
			return
		}
		// Anything accepted must re-encrypt to the same plaintext (the
		// blob itself differs due to fresh nonces).
		re, err := Encrypt(key, []byte("/f"), pt)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decrypt(key, []byte("/f"), re)
		if err != nil || !bytes.Equal(back, pt) {
			t.Fatalf("round trip after fuzz-accepted blob failed: %v", err)
		}
	})
}

// FuzzDecryptParallel feeds arbitrary blobs to the parallel reader. It
// must never panic (in any worker goroutine), must agree with the serial
// reader on accept/reject, and must return identical plaintext when both
// accept. Corrupted chunk boundaries are the interesting region: the
// parallel path slices chunk extents straight out of the blob, so the
// seeds bias mutations there.
func FuzzDecryptParallel(f *testing.F) {
	key, err := pae.KeyFromBytes(bytes.Repeat([]byte{7}, pae.KeySize))
	if err != nil {
		f.Fatal(err)
	}
	// 5 full chunks plus a partial tail: enough leaves for two tree
	// levels and a promoted odd node.
	valid, err := Encrypt(key, []byte("/f"), bytes.Repeat([]byte("y"), 5*ChunkSize+100))
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:ChunkSize+pae.Overhead]) // exactly one chunk, no tree/footer
	boundary := append([]byte(nil), valid...)
	boundary[ChunkSize+pae.Overhead] ^= 0xFF // first byte of chunk 1
	f.Add(boundary)
	tail := append([]byte(nil), valid...)
	tail[5*(ChunkSize+pae.Overhead)+10] ^= 0x01 // inside the partial tail chunk
	f.Add(tail)
	f.Fuzz(func(t *testing.T, blob []byte) {
		serialPt, serialErr := Decrypt(key, []byte("/f"), blob)
		parPt, parErr := DecryptWorkers(key, []byte("/f"), blob, 4)
		if (serialErr == nil) != (parErr == nil) {
			t.Fatalf("serial/parallel disagree: serial err=%v, parallel err=%v", serialErr, parErr)
		}
		if serialErr == nil && !bytes.Equal(serialPt, parPt) {
			t.Fatal("serial and parallel readers accepted the blob with different plaintexts")
		}
	})
}

// FuzzMutateValid flips fuzz-chosen bytes of a valid blob; decryption
// must either return the original plaintext (no effective change) or an
// error — never wrong data.
func FuzzMutateValid(f *testing.F) {
	key, err := pae.KeyFromBytes(bytes.Repeat([]byte{5}, pae.KeySize))
	if err != nil {
		f.Fatal(err)
	}
	plaintext := bytes.Repeat([]byte("secret"), 2048)
	valid, err := Encrypt(key, []byte("/f"), plaintext)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint32(0), byte(1))
	f.Add(uint32(len(valid)-1), byte(0xFF))
	f.Fuzz(func(t *testing.T, pos uint32, mask byte) {
		blob := bytes.Clone(valid)
		blob[int(pos)%len(blob)] ^= mask
		got, err := Decrypt(key, []byte("/f"), blob)
		if err != nil {
			return
		}
		if !bytes.Equal(got, plaintext) {
			t.Fatalf("mutated blob decrypted to different plaintext (pos=%d mask=%x)", pos, mask)
		}
	})
}
