package core

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"segshare/internal/audit"
	"segshare/internal/cache"
	"segshare/internal/obs"
)

// serverObs bundles the server's observability state: the metric
// registry, the per-request trace recorder, the structured logger, and
// the tamper-evident audit sink. Every signal leaving this struct except
// the audit log crosses the enclave boundary, so all of it is
// op-class-and-aggregate only — request identity (user, group, path)
// stays inside (see the leak budget in package obs). Audit records DO
// carry identity, which is why they are sealed before they reach storage
// (package audit).
type serverObs struct {
	reg    *obs.Registry
	logger *slog.Logger
	traces *obs.TraceRecorder

	// audit is nil unless Config.AuditStore is set; set once during
	// NewServer, before any request runs.
	audit *audit.Log

	inflight *obs.Gauge

	// Rollback hash-tree instruments (paper §V-D/E hot paths).
	treeUpdateDepth   *obs.Histogram
	treeValidateDepth *obs.Histogram
	rollbackFailures  *obs.Counter

	// Lock-manager wait histograms, pre-registered per scope so the hot
	// acquisition path never takes the registry lock. Scopes are the
	// closed compile-time set in locks.go; durations only, no identity.
	lockWaits map[string]*obs.Histogram

	// exporter ships wide events and sampled traces off the request path;
	// nil discards them (Enqueue* are nil-safe). Set once in NewServer.
	exporter *obs.Exporter
	// wideEvents gates per-request wide-event collection and emission.
	wideEvents bool
	wideTotal  *obs.Counter

	// reqMetrics caches per-op request instruments so the finish-request
	// hot path never rebuilds label maps or takes the registry lock. Op
	// and status classes are closed compile-time sets, so the cache is
	// bounded.
	reqMetrics sync.Map // op string -> *opRequestMetrics
	bodyIn     *obs.Counter
	bodyOut    *obs.Counter

	// requests is the live in-flight registry backing /debug/requests
	// and the watchdog's exact over-deadline check; nil when
	// Config.DisableRequestRegistry (bench baseline).
	requests *requestRegistry
	// slo evaluates burn rates over the request stream; nil when
	// Config.SLO is nil.
	slo *obs.SLOEngine
	// hot is the per-group heavy-hitter sketch and pseud the keyed
	// pseudonymizer feeding it; both nil when Config.HotGroups is 0.
	hot   *obs.TopK
	pseud *obs.Pseudonymizer
	// profiler receives capture triggers on watchdog and SLO fast-burn
	// transitions; nil when the deployment runs without the continuous
	// profiler. The caller owns its lifecycle.
	profiler *obs.ContinuousProfiler

	// degraded reports whether any store circuit breaker is not closed —
	// the same exported bit as segshare_store_breaker_state — so every
	// request served during a degraded episode carries the wide-event
	// flag. Nil when resilience is off.
	degraded func() bool

	// Parallel chunk-crypto pipeline instruments (DESIGN §14):
	// worker-pool size, one-shot seal/open counts by execution mode, and
	// read-coalescing outcomes. Aggregate-only — no path or size labels.
	cryptoWorkers      *obs.Gauge
	cryptoSealSerial   *obs.Counter
	cryptoSealParallel *obs.Counter
	cryptoOpenSerial   *obs.Counter
	cryptoOpenParallel *obs.Counter
	coalesceLeader     *obs.Counter
	coalesceShared     *obs.Counter
	coalesceInflight   *obs.Gauge

	// Overload-resilience instruments (DESIGN §16): client-cancelled
	// requests (HTTP 499) and the graceful-drain outcome. The admission
	// limiter registers its own per-class instruments (admission.go).
	cancelled      *obs.Counter
	drainNs        *obs.Gauge
	drainRemaining *obs.Gauge
}

// opRequestMetrics holds one op class's request instruments. Status-class
// counters fill in lazily (indexed by the status' hundreds digit) so the
// exported series match what the server has actually answered.
type opRequestMetrics struct {
	latency *obs.Histogram
	byCode  [6]atomic.Pointer[obs.Counter]
}

// auditEmit forwards one security event to the audit log, if enabled,
// charging the (queue-send-only) cost to the request's stats.
func (o *serverObs) auditEmit(ev audit.Event) { o.auditEmitStats(nil, ev) }

func (o *serverObs) auditEmitStats(rs *obs.ReqStats, ev audit.Event) {
	if o.audit == nil {
		return
	}
	start := time.Now()
	o.audit.Emit(ev)
	rs.AddAuditEnqueue(time.Since(start))
}

func newServerObs(reg *obs.Registry, logger *slog.Logger) *serverObs {
	if reg == nil {
		reg = obs.Default()
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	lockWaits := make(map[string]*obs.Histogram, len(lockScopes))
	for _, scope := range lockScopes {
		lockWaits[scope] = reg.Histogram("segshare_lock_wait_ns",
			"Request lock acquisition wait by lock scope (ns).", obs.Labels{"scope": scope})
	}
	return &serverObs{
		reg:               reg,
		logger:            logger,
		traces:            obs.NewTraceRecorder(obs.DefaultTraceCapacity),
		inflight:          reg.Gauge("segshare_requests_inflight", "Requests currently being handled.", nil),
		treeUpdateDepth:   reg.Histogram("segshare_rollback_tree_update_depth", "Ancestor levels written per rollback-tree update.", nil),
		treeValidateDepth: reg.Histogram("segshare_rollback_tree_validate_depth", "Ancestor levels checked per rollback-tree validation.", nil),
		rollbackFailures:  reg.Counter("segshare_rollback_failures_total", "Requests rejected by rollback/integrity verification.", nil),
		lockWaits:         lockWaits,
		bodyIn:            reg.Counter("segshare_request_body_bytes_total", "Request body bytes received.", nil),
		bodyOut:           reg.Counter("segshare_response_body_bytes_total", "Response body bytes sent.", nil),
		cryptoWorkers: reg.Gauge("segshare_crypto_workers",
			"Configured chunk-crypto worker-pool size.", nil),
		cryptoSealSerial: reg.Counter("segshare_crypto_ops_total",
			"One-shot chunk-crypto operations by direction and execution mode.", obs.Labels{"op": "seal", "mode": "serial"}),
		cryptoSealParallel: reg.Counter("segshare_crypto_ops_total",
			"One-shot chunk-crypto operations by direction and execution mode.", obs.Labels{"op": "seal", "mode": "parallel"}),
		cryptoOpenSerial: reg.Counter("segshare_crypto_ops_total",
			"One-shot chunk-crypto operations by direction and execution mode.", obs.Labels{"op": "open", "mode": "serial"}),
		cryptoOpenParallel: reg.Counter("segshare_crypto_ops_total",
			"One-shot chunk-crypto operations by direction and execution mode.", obs.Labels{"op": "open", "mode": "parallel"}),
		coalesceLeader: reg.Counter("segshare_crypto_coalesce_total",
			"Coalesced content reads by role: the leader decrypts, shared callers ride its flight.", obs.Labels{"role": "leader"}),
		coalesceShared: reg.Counter("segshare_crypto_coalesce_total",
			"Coalesced content reads by role: the leader decrypts, shared callers ride its flight.", obs.Labels{"role": "shared"}),
		coalesceInflight: reg.Gauge("segshare_crypto_coalesce_inflight",
			"Content reads currently inside a coalescing flight.", nil),
		cancelled: reg.Counter("segshare_requests_cancelled_total",
			"Requests that ended because the client disconnected first (HTTP 499).", nil),
		drainNs: reg.Gauge("segshare_drain_ns",
			"Duration of the last graceful-drain wait (ns); 0 until a drain runs.", nil),
		drainRemaining: reg.Gauge("segshare_drain_remaining",
			"Requests still in flight when the drain deadline expired (0 after a clean drain).", nil),
	}
}

// observeCryptoSeal/observeCryptoOpen record one one-shot chunk-crypto
// operation by execution mode, called from the fileman chokepoints.
func (o *serverObs) observeCryptoSeal(parallel bool) {
	if parallel {
		o.cryptoSealParallel.Inc()
	} else {
		o.cryptoSealSerial.Inc()
	}
}

func (o *serverObs) observeCryptoOpen(parallel bool) {
	if parallel {
		o.cryptoOpenParallel.Inc()
	} else {
		o.cryptoOpenSerial.Inc()
	}
}

// requestMetrics returns op's cached instruments, registering them on
// first use.
func (o *serverObs) requestMetrics(op string) *opRequestMetrics {
	if m, ok := o.reqMetrics.Load(op); ok {
		return m.(*opRequestMetrics)
	}
	m := &opRequestMetrics{latency: o.reg.Histogram("segshare_request_ns",
		"End-to-end request handling latency (ns).", obs.Labels{"op": op})}
	actual, _ := o.reqMetrics.LoadOrStore(op, m)
	return actual.(*opRequestMetrics)
}

// lockWait records how long one lock acquisition blocked, by scope.
func (o *serverObs) lockWait(scope string, d time.Duration) {
	if h, ok := o.lockWaits[scope]; ok {
		h.ObserveDuration(d)
	}
}

// cacheHooks wires one in-enclave cache's events into the registry. The
// cache label is a compile-time constant naming the relation kind, never
// a key: hit/miss/eviction counts and occupancy are aggregate-only.
func (o *serverObs) cacheHooks(kind string) cache.Hooks {
	labels := obs.Labels{"cache": kind}
	hits := o.reg.Counter("segshare_cache_hits_total", "In-enclave cache hits by relation kind.", labels)
	misses := o.reg.Counter("segshare_cache_misses_total", "In-enclave cache misses by relation kind.", labels)
	evictions := o.reg.Counter("segshare_cache_evictions_total", "In-enclave cache CLOCK evictions by relation kind.", labels)
	entries := o.reg.Gauge("segshare_cache_entries", "In-enclave cache occupancy (entries) by relation kind.", labels)
	bytes := o.reg.Gauge("segshare_cache_bytes", "In-enclave cache occupancy (cost units) by relation kind.", labels)
	return cache.Hooks{
		Hit:   hits.Inc,
		Miss:  misses.Inc,
		Evict: evictions.Inc,
		Size: func(n int, cost int64) {
			entries.Set(int64(n))
			bytes.Set(cost)
		},
	}
}

// observeRequest records one finished request: counter by op class and
// status class, latency histogram by op class (carrying the request's
// trace id as an exemplar), and byte traffic.
func (o *serverObs) observeRequest(op string, status int, dur time.Duration, bytesIn, bytesOut int64, traceID uint64) {
	m := o.requestMetrics(op)
	idx := status / 100
	if idx < 1 {
		idx = 1
	} else if idx > 5 {
		idx = 5
	}
	ctr := m.byCode[idx].Load()
	if ctr == nil {
		// The registry returns the same counter for the same (op, code),
		// so a racing double-store is benign.
		ctr = o.reg.Counter("segshare_requests_total", "Handled requests by operation class and status class.",
			obs.Labels{"op": op, "code": statusClass(status)})
		m.byCode[idx].Store(ctr)
	}
	ctr.Inc()
	m.latency.ObserveDurationWithExemplar(dur, traceID)
	if bytesIn > 0 {
		o.bodyIn.Add(uint64(bytesIn))
	}
	if bytesOut > 0 {
		o.bodyOut.Add(uint64(bytesOut))
	}
}

// finishRequest is the single chokepoint every finished request —
// HTTP-handled or DirectSession — funnels through. It closes the trace
// (the tail-sampling decision happens inside End), updates the
// aggregate metrics with the request's trace id as an exemplar, and
// emits the canonical wide event. Returns whether the trace was
// sampled, for the request log line.
func (o *serverObs) finishRequest(op string, status int, dur time.Duration, bytesIn, bytesOut int64, tr *obs.Trace, rs *obs.ReqStats) (sampled bool) {
	var traceID uint64
	if tr != nil {
		traceID = tr.ID()
		tr.Annotate("bytes_in", bytesIn)
		tr.Annotate("bytes_out", bytesOut)
		tr.Annotate(obs.LockWaitAnnotation, rs.LockWaitNs())
		tr.SetStatus(status)
		sampled = tr.End()
	}
	if o.requests != nil && traceID != 0 {
		if a := o.requests.remove(traceID); a != nil && a.hotGroup != "" {
			o.hot.Offer(a.hotGroup, 1, uint64(bytesIn+bytesOut))
		}
	}
	if status == StatusClientClosedRequest {
		o.cancelled.Inc()
	}
	o.slo.Record(op, status, dur)
	o.observeRequest(op, status, dur, bytesIn, bytesOut, traceID)
	if o.wideEvents {
		ev := obs.NewWideEvent(op, statusClass(status), traceID, sampled, dur, bytesIn, bytesOut, rs)
		o.exporter.EnqueueEvent(ev)
		if o.wideTotal != nil {
			o.wideTotal.Inc()
		}
	}
	return sampled
}

// beginRequest opens the per-request telemetry: the trace, and (when
// the registry is on) the in-flight entry finishRequest later removes.
// rs may be nil (wide events off); the registry tolerates it.
func (o *serverObs) beginRequest(op string, rs *obs.ReqStats) *obs.Trace {
	if o.degraded != nil && o.degraded() {
		rs.MarkDegraded()
	}
	tr := o.traces.Start(op)
	if o.requests != nil {
		o.requests.add(&activeRequest{id: tr.ID(), op: op, start: tr.StartTime(), tr: tr, rs: rs})
	}
	return tr
}

// tagRequestGroup attributes the request's traffic to a group for the
// heavy-hitter sketch. The group id is pseudonymized here, before it is
// stored anywhere — the registry and sketch only ever see the keyed
// pseudonym. Called from the request's own goroutine (handler after
// authn, API group mutations, direct sessions); later calls overwrite,
// so a group-management request is charged to its target group rather
// than the caller's default group.
func (o *serverObs) tagRequestGroup(tr *obs.Trace, groupID string) {
	if o.hot == nil || o.requests == nil || groupID == "" {
		return
	}
	if a := o.requests.lookup(tr.ID()); a != nil {
		a.hotGroup = o.pseud.Pseudonym(groupID)
	}
}

func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	case status >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}
