package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"segshare/internal/store"
)

// walkState is the structural summary of a log after a full walk.
type walkState struct {
	head        [sha256.Size]byte
	seq         uint64 // last record sequence number
	checkpoints uint64
	lastCounter uint64 // counter of the last checkpoint
	segments    int
	bytes       int64
}

// walk reads every segment in order, verifying framing, sequence
// continuity, the hash chain, and checkpoint authenticity/monotonicity.
// onRecord, if non-nil, is called with each record frame's sequence
// number and ciphertext payload. macKey authenticates checkpoints.
func walk(b store.Backend, macKey []byte, onRecord func(seq uint64, payload []byte) error) (*walkState, error) {
	names, err := b.List()
	if err != nil {
		return nil, fmt.Errorf("audit: list segments: %w", err)
	}
	var segs []string
	for _, n := range names {
		if strings.HasPrefix(n, SegmentPrefix) {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs)

	st := &walkState{head: chainSeed}
	for i, name := range segs {
		if want := segmentName(i + 1); name != want {
			return nil, fmt.Errorf("%w: segment %q where %q expected", ErrTruncated, name, want)
		}
		body, err := b.Get(name)
		if err != nil {
			return nil, fmt.Errorf("audit: read segment %s: %w", name, err)
		}
		st.segments++
		st.bytes += int64(len(body))
		atSegmentStart := true
		for len(body) > 0 {
			if len(body) < frameHeaderLen {
				return nil, fmt.Errorf("%w: %s ends inside a frame header", ErrTruncated, name)
			}
			kind := body[0]
			seq := binary.BigEndian.Uint64(body[1:9])
			plen := int(binary.BigEndian.Uint32(body[9:13]))
			if len(body) < frameHeaderLen+plen {
				return nil, fmt.Errorf("%w: %s ends inside a frame payload", ErrTruncated, name)
			}
			payload := body[frameHeaderLen : frameHeaderLen+plen]
			body = body[frameHeaderLen+plen:]

			switch kind {
			case kindRecord:
				if seq != st.seq+1 {
					if atSegmentStart {
						return nil, fmt.Errorf("%w: %s starts at entry %d, expected %d", ErrSegmentOrder, name, seq, st.seq+1)
					}
					return nil, fmt.Errorf("%w: entry %d follows %d", ErrSegmentOrder, seq, st.seq)
				}
				st.seq = seq
				if onRecord != nil {
					if err := onRecord(seq, payload); err != nil {
						return nil, err
					}
				}
			case kindCheckpoint:
				c, err := decodeCheckpoint(macKey, payload)
				if err != nil {
					return nil, err
				}
				if c.seq != st.seq {
					return nil, fmt.Errorf("%w: checkpoint covers entry %d at position %d", ErrChainMismatch, c.seq, st.seq)
				}
				if c.head != st.head {
					return nil, fmt.Errorf("%w: checkpoint after entry %d", ErrChainMismatch, st.seq)
				}
				if c.counter <= st.lastCounter {
					return nil, fmt.Errorf("%w: counter %d after %d", ErrCheckpointReplay, c.counter, st.lastCounter)
				}
				st.lastCounter = c.counter
				st.checkpoints++
			default:
				return nil, fmt.Errorf("%w: unknown frame kind %d", ErrTruncated, kind)
			}
			st.head = chainNext(st.head, kind, seq, payload)
			atSegmentStart = false
		}
	}
	return st, nil
}

// VerifyOptions tunes an offline verification.
type VerifyOptions struct {
	// ExpectCounter, when nonzero, is the enclave monotonic counter value
	// the log's final checkpoint must carry (obtained from the live
	// /debug/audit/head endpoint or the enclave platform). It catches
	// whole-log rollback to an older, internally consistent prefix.
	ExpectCounter uint64
	// ExpectRecords, when nonzero, is the exact number of records the log
	// must contain.
	ExpectRecords uint64
	// ExpectHead, when nonzero-length, is the hex chain head the log must
	// end on.
	ExpectHead string
	// Dump, when non-nil, receives every decrypted record as one JSON
	// object per line.
	Dump io.Writer
}

// VerifyResult summarises a successful verification.
type VerifyResult struct {
	Records     uint64 `json:"records"`
	Checkpoints uint64 `json:"checkpoints"`
	Segments    int    `json:"segments"`
	Bytes       int64  `json:"bytes"`
	LastCounter uint64 `json:"lastCounter"`
	ChainHead   string `json:"chainHead"`
}

// Verify walks a stored audit log, checking chain integrity, record
// authenticity, checkpoint MACs, and counter continuity. It returns the
// first integrity violation found, classified by the error variables in
// this package.
func Verify(b store.Backend, keys Keys, opts VerifyOptions) (*VerifyResult, error) {
	var enc *json.Encoder
	if opts.Dump != nil {
		enc = json.NewEncoder(opts.Dump)
	}
	st, err := walk(b, keys.MAC, func(seq uint64, payload []byte) error {
		rec, err := openRecord(keys, seq, payload)
		if err != nil {
			return err
		}
		if enc != nil {
			return enc.Encode(rec)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if opts.ExpectCounter != 0 && st.lastCounter != opts.ExpectCounter {
		return nil, fmt.Errorf("%w: last checkpoint counter %d, enclave counter %d",
			ErrCheckpointReplay, st.lastCounter, opts.ExpectCounter)
	}
	if opts.ExpectRecords != 0 && st.seq != opts.ExpectRecords {
		return nil, fmt.Errorf("%w: %d records, expected %d", ErrTruncated, st.seq, opts.ExpectRecords)
	}
	head := hex.EncodeToString(st.head[:])
	if opts.ExpectHead != "" && head != opts.ExpectHead {
		return nil, fmt.Errorf("%w: chain head %s, expected %s", ErrChainMismatch, head, opts.ExpectHead)
	}
	return &VerifyResult{
		Records:     st.seq,
		Checkpoints: st.checkpoints,
		Segments:    st.segments,
		Bytes:       st.bytes,
		LastCounter: st.lastCounter,
		ChainHead:   head,
	}, nil
}
