package core

import (
	"fmt"
	"sync"
	"time"
)

// RecoveryState tracks journal recovery progress so readiness and the
// stall watchdog can observe it without reaching into the journal. The
// server begins recovery synchronously inside NewServer (strict replay
// before the first request), but a crash with a large intent backlog can
// keep it busy for a while; /readyz reports "journal_recovery" until
// finish, and the watchdog flags a recovery that overruns its budget.
//
// A nil *RecoveryState is valid and inert, so callers that do not gate
// readiness pay nothing.
type RecoveryState struct {
	mu       sync.Mutex
	active   bool
	started  time.Time
	replayed int
	runs     int
}

// begin marks a recovery pass as started.
func (r *RecoveryState) begin() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.active = true
	r.started = time.Now()
	r.replayed = 0
	r.runs++
	r.mu.Unlock()
}

// progress records verified-intent replay progress (monotone count).
func (r *RecoveryState) progress(replayed int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if replayed > r.replayed {
		r.replayed = replayed
	}
	r.mu.Unlock()
}

// finish marks the pass complete.
func (r *RecoveryState) finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.active = false
	r.mu.Unlock()
}

// Check is a readiness probe: non-nil while a recovery pass is running.
// The reason stays inside the leak budget — a count and a duration, no
// paths or principals.
func (r *RecoveryState) Check() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.active {
		return nil
	}
	return fmt.Errorf("journal recovery in progress (%d intents replayed, running %v)",
		r.replayed, time.Since(r.started).Round(time.Millisecond))
}

// Overrun reports whether an active recovery pass has exceeded limit.
// The watchdog uses it to capture a profile of a wedged replay.
func (r *RecoveryState) Overrun(limit time.Duration) error {
	if r == nil || limit <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.active || time.Since(r.started) <= limit {
		return nil
	}
	return fmt.Errorf("journal recovery running %v, budget %v (%d intents replayed)",
		time.Since(r.started).Round(time.Millisecond), limit, r.replayed)
}

// Runs returns how many recovery passes have started (tests).
func (r *RecoveryState) Runs() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}
