package pae

import (
	"bytes"
	"testing"
)

// TestAppendRoundTrip checks the Append variants against the plain
// Seal/Open pair: same wire format, prefix preserved, in-place reuse.
func TestAppendRoundTrip(t *testing.T) {
	key, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("the quick brown fox")
	aad := []byte("context")

	prefix := []byte("hdr:")
	dst := append(make([]byte, 0, len(prefix)+len(pt)+Overhead), prefix...)
	out, err := c.AppendSeal(dst, pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:len(prefix)], prefix) {
		t.Fatal("AppendSeal clobbered the prefix")
	}
	ct := out[len(prefix):]
	if len(ct) != len(pt)+Overhead {
		t.Fatalf("ciphertext length = %d, want %d", len(ct), len(pt)+Overhead)
	}
	// Open accepts what AppendSeal produced.
	got, err := c.Open(ct, aad)
	if err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("Open(AppendSeal(...)) = %q, %v", got, err)
	}
	// AppendOpen accepts what Seal produced, preserving its own prefix.
	sealed, err := c.Seal(pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	dst2 := append(make([]byte, 0, len(prefix)+len(pt)), prefix...)
	out2, err := c.AppendOpen(dst2, sealed, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out2, append(append([]byte(nil), prefix...), pt...)) {
		t.Fatalf("AppendOpen = %q", out2)
	}
	// Wrong AAD still fails through the append path.
	if _, err := c.AppendOpen(nil, ct, []byte("other")); err != ErrDecrypt {
		t.Fatalf("AppendOpen with wrong AAD = %v, want ErrDecrypt", err)
	}
	// Undersized input is rejected, not sliced out of range.
	if _, err := c.AppendOpen(nil, ct[:Overhead-1], aad); err != ErrDecrypt {
		t.Fatalf("AppendOpen on short input = %v, want ErrDecrypt", err)
	}
}

// TestAppendSealNoAlloc pins the zero-allocation contract the chunk
// pipeline depends on: with sufficient capacity, neither variant
// allocates.
func TestAppendSealNoAlloc(t *testing.T) {
	key, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 4096)
	aad := make([]byte, 10)
	dst := make([]byte, 0, len(pt)+Overhead)
	if n := testing.AllocsPerRun(100, func() {
		if _, err := c.AppendSeal(dst[:0], pt, aad); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AppendSeal allocs/op = %v, want 0", n)
	}
	ct, err := c.Seal(pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	ptBuf := make([]byte, 0, len(pt))
	if n := testing.AllocsPerRun(100, func() {
		if _, err := c.AppendOpen(ptBuf[:0], ct, aad); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AppendOpen allocs/op = %v, want 0", n)
	}
}
