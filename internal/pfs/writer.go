package pfs

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"segshare/internal/pae"
)

// Writer encrypts a protected file in one streaming pass. Leaf hashes
// (32 bytes per 4 KiB chunk) accumulate until Close writes the Merkle
// tree and footer.
//
// In serial mode (NewWriter, or NewWriterWorkers with workers <= 1) only
// one chunk of plaintext is buffered at a time and one goroutine does
// all the sealing. With workers > 1 chunks are sealed concurrently by a
// bounded pool; a FIFO drain emits ciphertexts to dst strictly in chunk
// order, so the encoded output is identical to serial mode (modulo the
// random nonces) and at most 2×workers chunks are in flight — the
// enclave's memory footprint stays bounded regardless of file size.
//
// Writer mirrors the library's single-writer discipline: it is not safe
// for concurrent use by multiple callers (the worker pool is internal).
type Writer struct {
	cipher *pae.Cipher
	macKey []byte
	fileID []byte
	dst    io.Writer

	buf    []byte
	index  int64
	plain  int64
	leaves [][hashSize]byte
	closed bool
	err    error

	// Serial-mode scratch, reused across chunks: aad is
	// BE64(index) ‖ fileID with the index rewritten in place, ct is the
	// sealed-chunk buffer (dst must not retain what Write hands it, per
	// the io.Writer contract).
	aad []byte
	ct  []byte

	// Parallel pipeline state; jobs is nil in serial mode.
	workers int
	jobs    chan *sealJob
	pending []*sealJob
	wg      sync.WaitGroup
	bufPtr  *[]byte // pool token for buf, handed to the job on submit
}

var _ io.WriteCloser = (*Writer)(nil)

// sealJob carries one chunk through the worker pool. The shell and its
// ciphertext buffer are pooled; the plaintext buffer travels from the
// writer's fill loop into the job and back to chunkBufPool on drain.
type sealJob struct {
	index    int64
	plain    []byte
	plainPtr *[]byte
	ct       []byte
	err      error
	done     sync.WaitGroup
}

var (
	chunkBufPool = sync.Pool{New: func() any {
		b := make([]byte, 0, ChunkSize)
		return &b
	}}
	sealJobPool = sync.Pool{New: func() any {
		return &sealJob{ct: make([]byte, 0, ChunkSize+pae.Overhead)}
	}}
)

// NewWriter starts writing a protected file identified by fileID (the
// associated data binding chunks to this file, e.g. its path) to dst
// under fileKey.
func NewWriter(fileKey pae.Key, fileID []byte, dst io.Writer) (*Writer, error) {
	return NewWriterWorkers(fileKey, fileID, dst, 1)
}

// NewWriterWorkers is NewWriter with a bounded pool of workers sealing
// chunks concurrently. workers <= 1 selects the serial path; the encoded
// output is byte-compatible either way.
func NewWriterWorkers(fileKey pae.Key, fileID []byte, dst io.Writer, workers int) (*Writer, error) {
	ck, err := chunkKey(fileKey)
	if err != nil {
		return nil, err
	}
	cipher, err := pae.NewCipher(ck)
	if err != nil {
		return nil, err
	}
	mk, err := macKey(fileKey)
	if err != nil {
		return nil, err
	}
	id := make([]byte, len(fileID))
	copy(id, fileID)
	w := &Writer{
		cipher: cipher,
		macKey: mk,
		fileID: id,
		dst:    dst,
	}
	if workers > 1 {
		w.workers = workers
		// Channel capacity matches the drain window, so submits never
		// block on the channel itself — only on draining the oldest job.
		w.jobs = make(chan *sealJob, 2*workers)
		w.wg.Add(workers)
		for i := 0; i < workers; i++ {
			go w.worker()
		}
		w.bufPtr = chunkBufPool.Get().(*[]byte)
		w.buf = (*w.bufPtr)[:0]
	} else {
		w.buf = make([]byte, 0, ChunkSize)
	}
	return w, nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrWriterClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	written := 0
	for len(p) > 0 {
		room := ChunkSize - len(w.buf)
		n := min(room, len(p))
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		written += n
		if len(w.buf) == ChunkSize {
			if err := w.flushChunk(); err != nil {
				w.err = err
				return written, err
			}
		}
	}
	return written, nil
}

func (w *Writer) flushChunk() error {
	if w.jobs != nil {
		return w.submitChunk()
	}
	if w.aad == nil {
		w.aad = make([]byte, 8+len(w.fileID))
		copy(w.aad[8:], w.fileID)
	}
	binary.BigEndian.PutUint64(w.aad, uint64(w.index))
	ct, err := w.cipher.AppendSeal(w.ct[:0], w.buf, w.aad)
	if err != nil {
		return fmt.Errorf("pfs: seal chunk %d: %w", w.index, err)
	}
	w.ct = ct
	if _, err := w.dst.Write(ct); err != nil {
		return fmt.Errorf("pfs: write chunk %d: %w", w.index, err)
	}
	w.leaves = append(w.leaves, leafHash(ct))
	w.plain += int64(len(w.buf))
	w.index++
	w.buf = w.buf[:0]
	return nil
}

// worker seals jobs until the channel closes. Each worker keeps its own
// AAD buffer; ciphertexts land in the job's pooled buffer.
func (w *Writer) worker() {
	defer w.wg.Done()
	aad := make([]byte, 8+len(w.fileID))
	copy(aad[8:], w.fileID)
	for j := range w.jobs {
		binary.BigEndian.PutUint64(aad, uint64(j.index))
		j.ct, j.err = w.cipher.AppendSeal(j.ct[:0], j.plain, aad)
		j.done.Done()
	}
}

// submitChunk hands the current chunk buffer to the pool and takes a
// fresh one. The drain window (2×workers) bounds in-flight chunks:
// beyond it the oldest job is drained first, providing backpressure.
func (w *Writer) submitChunk() error {
	j := sealJobPool.Get().(*sealJob)
	j.index = w.index
	j.plain = w.buf
	j.plainPtr = w.bufPtr
	j.err = nil
	j.done.Add(1)
	w.plain += int64(len(w.buf))
	w.index++
	w.bufPtr = chunkBufPool.Get().(*[]byte)
	w.buf = (*w.bufPtr)[:0]
	w.pending = append(w.pending, j)
	w.jobs <- j
	if len(w.pending) >= 2*w.workers {
		return w.drainOldest()
	}
	return nil
}

// drainOldest waits for the oldest in-flight job and emits its
// ciphertext. Jobs complete out of order but drain strictly FIFO, which
// is what keeps the on-disk chunk order identical to serial mode.
func (w *Writer) drainOldest() error {
	j := w.pending[0]
	copy(w.pending, w.pending[1:])
	w.pending = w.pending[:len(w.pending)-1]
	j.done.Wait()
	err := j.err
	if err == nil {
		if _, werr := w.dst.Write(j.ct); werr != nil {
			err = fmt.Errorf("pfs: write chunk %d: %w", j.index, werr)
		} else {
			w.leaves = append(w.leaves, leafHash(j.ct))
		}
	} else {
		err = fmt.Errorf("pfs: seal chunk %d: %w", j.index, err)
	}
	w.recycle(j)
	return err
}

func (w *Writer) recycle(j *sealJob) {
	if j.plainPtr != nil {
		*j.plainPtr = j.plain[:0]
		chunkBufPool.Put(j.plainPtr)
	}
	j.plain, j.plainPtr = nil, nil
	sealJobPool.Put(j)
}

// shutdown drains every outstanding job (discarding results when the
// writer already failed) and stops the worker pool. Idempotent.
func (w *Writer) shutdown(emit bool) error {
	if w.jobs == nil {
		return nil
	}
	var err error
	for len(w.pending) > 0 {
		if emit && err == nil {
			err = w.drainOldest()
			continue
		}
		j := w.pending[0]
		copy(w.pending, w.pending[1:])
		w.pending = w.pending[:len(w.pending)-1]
		j.done.Wait()
		w.recycle(j)
	}
	close(w.jobs)
	w.wg.Wait()
	w.jobs = nil
	if w.bufPtr != nil {
		*w.bufPtr = (*w.bufPtr)[:0]
		chunkBufPool.Put(w.bufPtr)
		w.bufPtr, w.buf = nil, nil
	}
	return err
}

// Close flushes the final chunk, writes the Merkle tree and the
// authenticated footer, and invalidates the writer. It does not close the
// underlying destination.
func (w *Writer) Close() error {
	if w.closed {
		return ErrWriterClosed
	}
	w.closed = true
	if w.err != nil {
		w.shutdown(false)
		return w.err
	}
	// An empty file is stored as a single empty chunk so that the format
	// (and the integrity protection) is uniform.
	if len(w.buf) > 0 || w.index == 0 {
		if err := w.flushChunk(); err != nil {
			w.shutdown(false)
			return err
		}
	}
	if err := w.shutdown(true); err != nil {
		return err
	}
	levels := buildTree(w.leaves)
	// The leaf level is recomputable from the chunk ciphertexts and is not
	// stored; everything above it is.
	// Index into the level slice rather than ranging by value: slicing a
	// copied [32]byte loop variable would heap-allocate per node at the
	// interface call.
	for _, level := range levels[1:] {
		for i := range level {
			if _, err := w.dst.Write(level[i][:]); err != nil {
				return fmt.Errorf("pfs: write tree: %w", err)
			}
		}
	}
	f := footer{plainSize: w.plain, numChunks: w.index, root: levels[len(levels)-1][0]}
	if _, err := w.dst.Write(f.encode(w.macKey)); err != nil {
		return fmt.Errorf("pfs: write footer: %w", err)
	}
	return nil
}

// Encrypt is the one-shot convenience: it protects plaintext and returns
// the encoded blob. The output buffer is preallocated at its exact final
// size (Overhead is deterministic), so encoding never reallocates
// mid-stream.
func Encrypt(fileKey pae.Key, fileID, plaintext []byte) ([]byte, error) {
	buf := sliceWriter{data: make([]byte, 0, int64(len(plaintext))+Overhead(int64(len(plaintext))))}
	w, err := NewWriter(fileKey, fileID, &buf)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(plaintext); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.data, nil
}

// sliceWriter is a minimal in-memory io.Writer that keeps ownership of
// its buffer (bytes.Buffer would also work; this avoids the extra copy on
// extraction).
type sliceWriter struct{ data []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}
