package store

import (
	"errors"
	"testing"

	"segshare/internal/obs"
)

// The backend conformance suite: one shared semantics table every
// Backend implementation and every wrapper chain must pass, so a new
// backend (or a wrapper that reorders/retries operations) cannot
// silently diverge from the contract the trusted side assumes —
// most importantly the Rename collision table, which journal
// roll-forward replay depends on:
//
//	old present, new absent              -> success (move)
//	both present, identical payloads     -> success (complete interrupted rename, old removed)
//	both present, differing payloads     -> ErrExist
//	old absent,  new present             -> ErrExist
//	both absent                          -> ErrNotExist
func conformanceBackends(t *testing.T) map[string]Backend {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	resilientOpts := ResilientOptions{
		ReadDeadline:     -1, // no deadlines in the semantics suite:
		MutationDeadline: -1, // it checks answers, not timing
		Obs:              obs.NewRegistry(),
	}
	return map[string]Backend{
		"memory": NewMemory(),
		"disk":   disk,
		"resilient_memory": NewResilient(
			NewMemory(), "content", resilientOpts),
		"instrumented_faulty_memory": NewInstrumented(
			NewFaulty(NewMemory()), "content", obs.NewRegistry()),
		"resilient_instrumented_memory": NewResilient(
			NewInstrumented(NewMemory(), "content", obs.NewRegistry()),
			"content", resilientOpts),
		"instrumented_resilient_faultplan_memory": NewInstrumented(
			NewResilient(NewFaultyWithPlan(NewMemory(), NewFaultPlan()), "content", resilientOpts),
			"content", obs.NewRegistry()),
	}
}

func TestBackendConformance(t *testing.T) {
	for name, b := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) {
			testBackendConformance(t, b)
		})
	}
}

func testBackendConformance(t *testing.T, b Backend) {
	t.Helper()

	// Absent-object errors.
	if _, err := b.Get("absent"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get(absent) = %v, want ErrNotExist", err)
	}
	if err := b.Delete("absent"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Delete(absent) = %v, want ErrNotExist", err)
	}
	if ok, err := b.Exists("absent"); err != nil || ok {
		t.Fatalf("Exists(absent) = %v, %v, want false, nil", ok, err)
	}
	if err := b.Rename("absent", "also-absent"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Rename(absent, absent) = %v, want ErrNotExist", err)
	}

	// Put / Get round trip and overwrite.
	if err := b.Put("a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, err := b.Get("a"); err != nil || string(got) != "v1" {
		t.Fatalf("Get(a) = %q, %v", got, err)
	}
	if err := b.Put("a", []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	if got, err := b.Get("a"); err != nil || string(got) != "v2-longer" {
		t.Fatalf("Get(a) after overwrite = %q, %v", got, err)
	}
	if ok, err := b.Exists("a"); err != nil || !ok {
		t.Fatalf("Exists(a) = %v, %v, want true, nil", ok, err)
	}

	// Plain rename: old present, new absent.
	if err := b.Rename("a", "b"); err != nil {
		t.Fatalf("Rename(a, b) = %v", err)
	}
	if ok, _ := b.Exists("a"); ok {
		t.Fatal("old name still present after rename")
	}
	if got, err := b.Get("b"); err != nil || string(got) != "v2-longer" {
		t.Fatalf("Get(b) after rename = %q, %v", got, err)
	}

	// Rename collision with differing payloads.
	if err := b.Put("c", []byte("other")); err != nil {
		t.Fatal(err)
	}
	if err := b.Rename("b", "c"); !errors.Is(err, ErrExist) {
		t.Fatalf("Rename onto differing payload = %v, want ErrExist", err)
	}
	if got, err := b.Get("b"); err != nil || string(got) != "v2-longer" {
		t.Fatalf("source mutated by failed rename: %q, %v", got, err)
	}
	if got, err := b.Get("c"); err != nil || string(got) != "other" {
		t.Fatalf("target mutated by failed rename: %q, %v", got, err)
	}

	// Rename collision onto an identical payload: the interrupted-rename
	// completion — succeed and remove the source.
	if err := b.Put("d", []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	if err := b.Rename("b", "d"); err != nil {
		t.Fatalf("Rename completion = %v, want success", err)
	}
	if ok, _ := b.Exists("b"); ok {
		t.Fatal("source still present after rename completion")
	}
	if got, err := b.Get("d"); err != nil || string(got) != "v2-longer" {
		t.Fatalf("Get(d) after completion = %q, %v", got, err)
	}

	// Old absent, new present: ErrExist (the target-first check order).
	if err := b.Rename("b", "d"); !errors.Is(err, ErrExist) {
		t.Fatalf("Rename(absent, present) = %v, want ErrExist", err)
	}

	// Delete.
	if err := b.Delete("c"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("c"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get after delete = %v, want ErrNotExist", err)
	}

	// List ordering: lexicographic over all present names.
	if err := b.Put("z-last", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("0-first", []byte("0")); err != nil {
		t.Fatal(err)
	}
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0-first", "d", "z-last"}
	if len(names) != len(want) {
		t.Fatalf("List = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List = %v, want %v", names, want)
		}
	}

	// TotalBytes counts payload bytes only.
	total, err := b.TotalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if wantTotal := int64(len("v2-longer") + 1 + 1); total != wantTotal {
		t.Fatalf("TotalBytes = %d, want %d", total, wantTotal)
	}

	// Wrapper chains must still expose the innermost backend.
	switch Innermost(b).(type) {
	case *Memory, *Disk:
	default:
		t.Fatalf("Innermost returned %T", Innermost(b))
	}
}
