package core

import (
	"segshare/internal/acl"
	"segshare/internal/fspath"
)

// DirectSession executes requests for a user directly against the
// enclave, bypassing the network layer. It serves two purposes: an
// embedded API for programs that link the server in-process, and fast
// corpus setup for the benchmark harness (populating thousands of files
// through TLS would measure the network, not the system under test).
// Authorization is enforced exactly as over the wire; only transport and
// certificate parsing are skipped.
type DirectSession struct {
	s *Server
	u acl.UserID
}

// Direct returns an in-process session for the given user ID. The caller
// vouches for the identity — in the deployed system identities only ever
// come from client certificates.
func (s *Server) Direct(user string) *DirectSession {
	return &DirectSession{s: s, u: acl.UserID(user)}
}

func (d *DirectSession) parse(path string) (fspath.Path, error) {
	return fspath.Parse(path)
}

// Mkdir creates a directory.
func (d *DirectSession) Mkdir(path string) error {
	p, err := d.parse(path)
	if err != nil {
		return err
	}
	if err := d.s.provisionUser(d.u); err != nil {
		return err
	}
	unlock := d.s.locks.fsWrite(false, p)
	defer unlock()
	return d.s.ac.PutDir(d.u, p)
}

// Upload creates or updates a content file.
func (d *DirectSession) Upload(path string, content []byte) error {
	p, err := d.parse(path)
	if err != nil {
		return err
	}
	if err := d.s.provisionUser(d.u); err != nil {
		return err
	}
	unlock := d.s.locks.fsWrite(false, p)
	defer unlock()
	_, err = d.s.ac.PutFile(d.u, p, content)
	return err
}

// Download returns a file's content.
func (d *DirectSession) Download(path string) ([]byte, error) {
	p, err := d.parse(path)
	if err != nil {
		return nil, err
	}
	unlock := d.s.locks.fsRead(p)
	defer unlock()
	return d.s.ac.GetFile(d.u, p)
}

// List returns a directory listing.
func (d *DirectSession) List(path string) ([]ListedEntry, error) {
	p, err := d.parse(path)
	if err != nil {
		return nil, err
	}
	unlock := d.s.locks.fsRead(p)
	defer unlock()
	return d.s.ac.GetDir(d.u, p)
}

// Remove deletes a file or empty directory.
func (d *DirectSession) Remove(path string) error {
	p, err := d.parse(path)
	if err != nil {
		return err
	}
	unlock := d.s.locks.fsWrite(false, p)
	defer unlock()
	return d.s.ac.Remove(d.u, p)
}

// Move relocates a file or directory subtree.
func (d *DirectSession) Move(src, dst string) error {
	sp, err := d.parse(src)
	if err != nil {
		return err
	}
	dp, err := d.parse(dst)
	if err != nil {
		return err
	}
	unlock := d.s.locks.moveLocks(sp, dp)
	defer unlock()
	return d.s.ac.Move(d.u, sp, dp)
}

// SetPermission sets a group's permission on a path ("none" clears).
func (d *DirectSession) SetPermission(path, group string, permission PermissionSpec) error {
	p, err := d.parse(path)
	if err != nil {
		return err
	}
	perm, err := ParsePermission(permission)
	if err != nil {
		return err
	}
	unlock := d.s.locks.fsWrite(true, p)
	defer unlock()
	return d.s.ac.SetPermission(d.u, p, acl.GroupName(group), perm)
}

// SetInherit toggles permission inheritance.
func (d *DirectSession) SetInherit(path string, inherit bool) error {
	p, err := d.parse(path)
	if err != nil {
		return err
	}
	unlock := d.s.locks.fsWrite(false, p)
	defer unlock()
	return d.s.ac.SetInherit(d.u, p, inherit)
}

// AddUser adds a user to a group (creating it on first use).
func (d *DirectSession) AddUser(user, group string) error {
	if err := d.s.provisionUser(d.u, acl.UserID(user)); err != nil {
		return err
	}
	unlock := d.s.locks.groupWrite()
	defer unlock()
	return d.s.ac.AddUser(d.u, acl.UserID(user), acl.GroupName(group))
}

// RemoveUser removes a user from a group.
func (d *DirectSession) RemoveUser(user, group string) error {
	if err := d.s.provisionUser(d.u); err != nil {
		return err
	}
	unlock := d.s.locks.groupWrite()
	defer unlock()
	return d.s.ac.RemoveUser(d.u, acl.UserID(user), acl.GroupName(group))
}

// StoredContentBytes reports the content store's total size; the
// storage-overhead experiment reads it.
func (s *Server) StoredContentBytes() (int64, error) {
	return s.cfg.ContentStore.TotalBytes()
}
