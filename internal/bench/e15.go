package bench

import (
	"crypto/rand"
	"errors"
	"fmt"
	"time"

	"segshare/internal/core"
	"segshare/internal/obs"
	"segshare/internal/store"
)

// E15 — resilient store I/O layer (DESIGN.md §15). The wrapper adds a
// per-op-class deadline (through a bounded worker), retries with
// backoff, and a circuit breaker to every untrusted-store operation.
// This experiment prices the wrapper on the healthy path — single-stream
// 8 MiB PUT/GET throughput with resilience off vs on, target overhead
// under 2% — and then drives an injected brownout through a resilient
// deployment to measure the degraded-mode contract: how fast gated
// mutations fail while the breaker is open, and how long after the
// backend revives the first mutation succeeds (cooldown + one half-open
// probe).

// E15Config parameterizes the resilience experiment.
type E15Config struct {
	// FileMiB is the transfer size per healthy-path operation.
	FileMiB int
	// Ops is the number of PUTs (and GETs) measured per healthy cell.
	Ops int
	// Reps repeats each healthy cell and keeps the best throughput.
	Reps int
	// FailFastOps is how many gated mutations are timed while the
	// breaker is open.
	FailFastOps int
	// Cooldown is the breaker cooldown used in the brownout cell; the
	// measured recovery time is roughly Cooldown plus one probe.
	Cooldown time.Duration
}

// DefaultE15 returns the scaled-down default parameters.
func DefaultE15() E15Config {
	return E15Config{FileMiB: 8, Ops: 6, Reps: 3, FailFastOps: 64, Cooldown: 100 * time.Millisecond}
}

// E15Row is one measured cell. The healthy-path rows ("put", "get")
// carry throughputs and the overhead percentage; the "brownout" row
// carries the degraded-mode timings instead.
type E15Row struct {
	Op          string  // "put", "get", or "brownout"
	Baseline    float64 // MiB/s without the resilient wrapper
	Resilient   float64 // MiB/s with it
	OverheadPct float64 // (Baseline-Resilient)/Baseline × 100

	FailFast time.Duration // brownout: mean latency of one gated (rejected) mutation
	Recovery time.Duration // brownout: backend revival → first successful mutation
}

// e15Rep measures one rep of single-stream PUT and GET throughput
// against one deployment, reusing the E14 cell harness.
func e15Rep(sess *core.DirectSession, content []byte, ops int) (put, get float64, err error) {
	size := len(content)
	path := "/e15.bin"
	put, _, err = e14Cell(ops, size, func(int) error {
		return sess.Upload(path, content)
	})
	if err != nil {
		return 0, 0, err
	}
	get, _, err = e14Cell(ops, size, func(int) error {
		got, err := sess.Download(path)
		if err != nil {
			return err
		}
		if len(got) != size {
			return fmt.Errorf("bench: e15 download returned %d bytes, want %d", len(got), size)
		}
		return nil
	})
	return put, get, err
}

// e15Brownout drives a full backend brownout through a resilient
// deployment: trip the breaker, time the fail-fast rejections, revive
// the backend, and time the recovery through the half-open probe.
func e15Brownout(cfg E15Config) (failFast, recovery time.Duration, err error) {
	plan := store.NewFaultPlan()
	env, err := NewEnv(EnvConfig{
		FaultPlan: plan,
		Resilience: &store.ResilientOptions{
			Retries:          -1, // fail-fast measurements must not include backoff sleeps
			BreakerThreshold: 3,
			BreakerCooldown:  cfg.Cooldown,
			BreakerProbes:    1,
		},
	})
	if err != nil {
		return 0, 0, err
	}
	defer env.Close()
	sess := env.Direct("alice")
	payload := []byte("brownout probe payload")
	if err := sess.Upload("/seed.bin", payload); err != nil {
		return 0, 0, err
	}

	// Brownout: every store mutation fails until Revive. A few failing
	// uploads trip the breaker open.
	plan.KillAtOp(1, errors.New("bench: injected brownout"))
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := sess.Upload("/trip.bin", payload)
		if errors.Is(err, core.ErrDegraded) {
			break
		}
		if err == nil {
			return 0, 0, fmt.Errorf("bench: e15 upload succeeded during brownout")
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("bench: e15 breaker never opened: %v", err)
		}
	}

	// Fail-fast: gated mutations are rejected at the mutate() chokepoint
	// without touching the backend; mean latency over FailFastOps calls.
	// If the cooldown elapses mid-loop an op is admitted as a half-open
	// probe and fails against the dead backend instead (reopening the
	// breaker) — that is the wrapper working as designed, so only a
	// success is a measurement error.
	start := time.Now()
	for i := 0; i < cfg.FailFastOps; i++ {
		if err := sess.Upload("/gated.bin", payload); err == nil {
			return 0, 0, fmt.Errorf("bench: e15 gated upload succeeded during brownout")
		}
	}
	failFast = time.Since(start) / time.Duration(cfg.FailFastOps)

	// Recovery: from backend revival to the first mutation that makes it
	// through (cooldown elapses, the upload rides down as the half-open
	// probe, its success closes the breaker).
	plan.Revive()
	start = time.Now()
	for {
		err := sess.Upload("/recovered.bin", payload)
		if err == nil {
			break
		}
		if !errors.Is(err, core.ErrDegraded) {
			return 0, 0, fmt.Errorf("bench: e15 recovery upload: %v", err)
		}
		if time.Since(start) > 10*time.Second {
			return 0, 0, fmt.Errorf("bench: e15 breaker never closed")
		}
		time.Sleep(time.Millisecond)
	}
	recovery = time.Since(start)
	return failFast, recovery, nil
}

// RunE15 measures the resilient wrapper: healthy-path overhead on
// single-stream PUT/GET (fresh deployment per configuration, as in E14)
// and the brownout fail-fast/recovery cell.
func RunE15(cfg E15Config) ([]E15Row, error) {
	if cfg.FileMiB <= 0 || cfg.Ops <= 0 || cfg.FailFastOps <= 0 || cfg.Cooldown <= 0 {
		return nil, fmt.Errorf("bench: e15 config incomplete: %+v", cfg)
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 1
	}
	size := cfg.FileMiB << 20
	content := make([]byte, size)
	if _, err := rand.Read(content); err != nil {
		return nil, err
	}

	// Both deployments live for the whole sweep and reps are interleaved
	// between them, so machine drift (thermal, GC cadence) hits the
	// baseline and resilient cells equally — the comparison is paired,
	// which a sub-2% target needs on a noisy host.
	cells := []struct {
		name       string
		resilience *store.ResilientOptions
	}{
		{"baseline", nil},
		{"resilient", &store.ResilientOptions{}},
	}
	throughput := map[string][2]float64{} // cell -> best {put, get}
	sessions := make([]*core.DirectSession, len(cells))
	for i, cell := range cells {
		env, err := NewEnv(EnvConfig{Resilience: cell.resilience})
		if err != nil {
			return nil, err
		}
		defer env.Close()
		sessions[i] = env.Direct("alice")
		if err := sessions[i].Upload("/e15.bin", content); err != nil {
			return nil, err
		}
	}
	for rep := 0; rep < reps; rep++ {
		for i, cell := range cells {
			put, get, err := e15Rep(sessions[i], content, cfg.Ops)
			if err != nil {
				return nil, err
			}
			best := throughput[cell.name]
			if put > best[0] {
				best[0] = put
			}
			if get > best[1] {
				best[1] = get
			}
			throughput[cell.name] = best
		}
	}

	var rows []E15Row
	for i, op := range []string{"put", "get"} {
		row := E15Row{
			Op:        op,
			Baseline:  throughput["baseline"][i],
			Resilient: throughput["resilient"][i],
		}
		if row.Baseline > 0 {
			row.OverheadPct = (row.Baseline - row.Resilient) / row.Baseline * 100
		}
		// Basis points keep sub-percent overheads visible in the integer
		// gauge; op comes from a closed set, inside the leak budget.
		labels := obs.Labels{"op": op}
		obs.Default().Gauge("segshare_bench_resilience_overhead_bp",
			"Healthy-path overhead of the resilient store wrapper, in basis points.", labels).
			Set(int64(row.OverheadPct * 100))
		rows = append(rows, row)
	}

	failFast, recovery, err := e15Brownout(cfg)
	if err != nil {
		return nil, err
	}
	obs.Default().Gauge("segshare_bench_brownout_failfast_us",
		"Mean latency of one degraded-mode rejected mutation, in microseconds.", nil).
		Set(failFast.Microseconds())
	obs.Default().Gauge("segshare_bench_brownout_recovery_ms",
		"Backend revival to first successful mutation, in milliseconds.", nil).
		Set(recovery.Milliseconds())
	rows = append(rows, E15Row{Op: "brownout", FailFast: failFast, Recovery: recovery})
	return rows, nil
}
