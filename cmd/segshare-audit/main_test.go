package main

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"segshare/internal/audit"
	"segshare/internal/obs"
	"segshare/internal/store"
)

// buildDiskLog writes a small audit log to dir and returns the hex root
// key and the final counter value.
func buildDiskLog(t *testing.T, dir string) (rootHex string, counter uint64) {
	t.Helper()
	rootKey := []byte("cli-test-root-key-0123456789abcd")
	keys, err := audit.DeriveKeys(rootKey)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := store.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	log, err := audit.Open(backend, keys, nil, audit.Options{
		CheckpointEvery: 4, SegmentEntries: 8, Overflow: audit.OverflowBlock, Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		log.Emit(audit.Event{
			Event: audit.EventFileAuthzAllow, Decision: audit.DecisionAllow,
			Op: "fs_get", User: "alice", Path: fmt.Sprintf("/f-%d", i),
		})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(rootKey), log.Head().Counter
}

// segmentData reads every stored object by its logical segment name; the
// disk store hashes file names, so tampering goes through the store API
// rather than the directory listing.
func segmentData(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	backend, err := store.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	names, err := backend.List()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, n := range names {
		data, err := backend.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		out[n] = data
	}
	return out
}

func putSegment(t *testing.T, dir, name string, data []byte) {
	t.Helper()
	backend, err := store.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Put(name, data); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCleanLog(t *testing.T) {
	dir := t.TempDir()
	rootHex, counter := buildDiskLog(t, dir)
	code, err := run([]string{"verify", "-data", dir, "-root", rootHex,
		"-expect-counter", fmt.Sprint(counter), "-expect-records", "20"})
	if code != 0 || err != nil {
		t.Fatalf("verify clean log: code=%d err=%v", code, err)
	}
}

func TestVerifyRootKeyFile(t *testing.T) {
	dir := t.TempDir()
	rootHex, _ := buildDiskLog(t, dir)
	keyFile := filepath.Join(t.TempDir(), "sk_r.hex")
	if err := os.WriteFile(keyFile, []byte(rootHex+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	code, err := run([]string{"verify", "-data", dir, "-root-file", keyFile})
	if code != 0 || err != nil {
		t.Fatalf("verify with -root-file: code=%d err=%v", code, err)
	}
}

// TestVerifyDetectsTampering exercises the four required tamper classes
// end to end through the CLI; each must fail (exit 2) with its own
// distinct error class in the message.
func TestVerifyDetectsTampering(t *testing.T) {
	cases := []struct {
		name    string
		tamper  func(t *testing.T, dir string)
		extra   []string
		wantErr error
	}{
		{
			name: "bit-flip",
			tamper: func(t *testing.T, dir string) {
				segs := segmentData(t, dir)
				data := segs["seg-00000001"]
				data[20] ^= 0x01
				putSegment(t, dir, "seg-00000001", data)
			},
			wantErr: audit.ErrRecordCorrupt,
		},
		{
			name: "truncate",
			tamper: func(t *testing.T, dir string) {
				segs := segmentData(t, dir)
				data := segs["seg-00000001"]
				putSegment(t, dir, "seg-00000001", data[:len(data)-5])
			},
			wantErr: audit.ErrTruncated,
		},
		{
			name: "swap-segments",
			tamper: func(t *testing.T, dir string) {
				segs := segmentData(t, dir)
				putSegment(t, dir, "seg-00000001", segs["seg-00000002"])
				putSegment(t, dir, "seg-00000002", segs["seg-00000001"])
			},
			wantErr: audit.ErrSegmentOrder,
		},
		{
			name: "checkpoint-replay",
			tamper: func(t *testing.T, dir string) {
				// Whole-log rollback: drop the trailing segments so the log
				// ends on an earlier, internally consistent checkpoint. Only
				// -expect-counter exposes it.
				backend, err := store.NewDisk(dir)
				if err != nil {
					t.Fatal(err)
				}
				names, err := backend.List()
				if err != nil {
					t.Fatal(err)
				}
				for _, n := range names {
					if n != "seg-00000001" {
						if err := backend.Delete(n); err != nil {
							t.Fatal(err)
						}
					}
				}
			},
			extra:   nil, // counter flag added below
			wantErr: audit.ErrCheckpointReplay,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			rootHex, counter := buildDiskLog(t, dir)
			tc.tamper(t, dir)
			args := []string{"verify", "-data", dir, "-root", rootHex}
			if tc.name == "checkpoint-replay" {
				args = append(args, "-expect-counter", fmt.Sprint(counter))
			}
			args = append(args, tc.extra...)
			code, err := run(args)
			if code != 2 {
				t.Fatalf("tampered log verified: code=%d err=%v", code, err)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got error %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestVerifyWrongKeyFails(t *testing.T) {
	dir := t.TempDir()
	buildDiskLog(t, dir)
	wrong := hex.EncodeToString([]byte("not-the-right-root-key-at-all!!!"))
	code, _ := run([]string{"verify", "-data", dir, "-root", wrong})
	if code != 2 {
		t.Fatalf("wrong key accepted: code=%d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _ := run(nil); code != 1 {
		t.Fatalf("no args: code=%d", code)
	}
	if code, _ := run([]string{"frobnicate"}); code != 1 {
		t.Fatalf("bad command: code=%d", code)
	}
	if code, _ := run([]string{"verify", "-root", "aa"}); code != 1 {
		t.Fatalf("missing -data: code=%d", code)
	}
	if code, _ := run([]string{"verify", "-data", t.TempDir()}); code != 1 {
		t.Fatalf("missing key: code=%d", code)
	}
	if code, _ := run([]string{"verify", "-data", t.TempDir(), "-root", "zz"}); code != 1 {
		t.Fatalf("bad hex: code=%d", code)
	}
}
