// Package audit implements SeGShare's tamper-evident security-event log.
//
// The threat model (paper §III) assumes a malicious cloud provider, so an
// audit trail kept in untrusted storage is worthless unless the provider
// can neither read it, forge records, reorder them, nor silently cut the
// tail off. This package reuses the paper's own machinery to get all four
// properties:
//
//   - Records are serialized inside the enclave and encrypted with
//     internal/pae (AES-GCM) under a key derived from the sealed root key
//     SK_r, so the host sees only ciphertext — principals, paths, and
//     group names never cross the boundary in the clear.
//   - Every entry extends a hash chain h_i = SHA-256(h_{i-1} ‖ entry_i)
//     over the *stored* bytes, so reordering or splicing breaks the chain.
//   - Periodic checkpoint entries carry the current chain head and the
//     value of an enclave monotonic counter, MACed under a second derived
//     key. A rolled-back or truncated log presents a stale counter value,
//     detectable exactly like content rollback (paper §V-E).
//
// The log is append-only and segmented: entries accumulate into numbered
// segment objects written through the untrusted store.Backend interface.
// cmd/segshare-audit verifies a log offline given the derived keys.
package audit

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"segshare/internal/pae"
)

// EventType is the closed set of audited security events. The set is
// compile-time constant; free-form event names are not accepted so the
// per-event metrics keep their bounded label space.
type EventType string

// Audited event types.
const (
	// EventAuthnSuccess: a client certificate was accepted.
	EventAuthnSuccess EventType = "authn_success"
	// EventAuthnFailure: a request carried no or an invalid certificate.
	EventAuthnFailure EventType = "authn_failure"
	// EventFileAuthzAllow: auth_f granted a file/directory operation.
	EventFileAuthzAllow EventType = "authz_allow"
	// EventFileAuthzDeny: auth_f or auth_g rejected an operation.
	EventFileAuthzDeny EventType = "authz_deny"
	// EventACLChange: a permission, inherit flag, or file owner changed.
	EventACLChange EventType = "acl_change"
	// EventGroupChange: a membership or group-ownership mutation.
	EventGroupChange EventType = "group_change"
	// EventRollbackFailure: rollback/integrity validation rejected stored
	// state.
	EventRollbackFailure EventType = "rollback_failure"
	// EventKeyOp: a root-key lifecycle operation (generate, unseal,
	// replicate, export).
	EventKeyOp EventType = "key_op"
	// EventRecovery: the journal recovery pass re-applied or discarded
	// incomplete intents at startup or after a backup restoration.
	EventRecovery EventType = "recovery"
	// EventWatchdog: the stall watchdog detected a healthy→stalled
	// transition on one of its checks and captured a profile snapshot.
	EventWatchdog EventType = "watchdog"
	// EventDegraded: a store circuit breaker changed state — the server
	// entered, probed, or left degraded read-only mode. Detail names the
	// store role and the transition (e.g. "content closed->open").
	EventDegraded EventType = "degraded"
	// EventSLOBreach: a burn-rate window pair crossed its threshold —
	// the service started consuming error budget fast enough to matter.
	// Detail carries the breach speed ("fast_burn"/"slow_burn"), Op the
	// affected operation class.
	EventSLOBreach EventType = "slo_breach"
	// EventDrain: the server completed (or timed out) a graceful drain.
	// Detail carries the wait duration and how many requests were still
	// in flight at the deadline ("clean" drains report 0).
	EventDrain EventType = "drain"
)

// Decisions recorded on authorization events.
const (
	DecisionAllow = "allow"
	DecisionDeny  = "deny"
)

// Event is what call sites emit. The writer assigns sequence number and
// timestamp. All identity-bearing fields (User, Target, Group, Path) are
// encrypted before they reach untrusted storage.
type Event struct {
	Event    EventType
	Decision string
	// Op is the operation class or API route, from the same closed set as
	// the request metrics.
	Op string
	// RequestID correlates the record with the request's trace span
	// (obs.Trace.ID) and structured log line.
	RequestID uint64
	// User is the acting principal; Target the affected principal (for
	// membership changes).
	User   string
	Target string
	Group  string
	Path   string
	Detail string
}

// Record is one sealed log entry: an Event plus writer-assigned ordering.
type Record struct {
	Seq       uint64    `json:"seq"`
	TimeNanos int64     `json:"time"`
	Event     EventType `json:"event"`
	Decision  string    `json:"decision,omitempty"`
	Op        string    `json:"op,omitempty"`
	RequestID uint64    `json:"reqId,omitempty"`
	User      string    `json:"user,omitempty"`
	Target    string    `json:"target,omitempty"`
	Group     string    `json:"group,omitempty"`
	Path      string    `json:"path,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

// Keys are the two audit keys derived from the root key SK_r: an
// encryption key for records and a MAC key for checkpoints. An operator
// who obtains SK_r (e.g. through the §V-F replication protocol) can
// re-derive them to verify and read the log offline.
type Keys struct {
	Enc pae.Key
	MAC []byte
}

// Key-derivation labels (domain separation against every other SK_r use).
const (
	labelRecordKey     = "audit/record"
	labelCheckpointKey = "audit/checkpoint"
)

// DeriveKeys derives the audit keys from the root key.
func DeriveKeys(rootKey []byte) (Keys, error) {
	enc, err := pae.DeriveKey(rootKey, labelRecordKey, nil)
	if err != nil {
		return Keys{}, fmt.Errorf("audit: derive record key: %w", err)
	}
	mac, err := pae.DeriveBytes(rootKey, labelCheckpointKey, nil, 32)
	if err != nil {
		return Keys{}, fmt.Errorf("audit: derive checkpoint key: %w", err)
	}
	return Keys{Enc: enc, MAC: mac}, nil
}

// --- wire format -------------------------------------------------------
//
// A segment object is a concatenation of frames:
//
//	kind(1) ‖ seq(8, big-endian) ‖ len(4, big-endian) ‖ payload
//
// kind 1 (record): payload is PAE ciphertext of the JSON record, with
// associated data binding the format version and sequence number.
// kind 2 (checkpoint): payload is seq(8) ‖ counter(8) ‖ head(32) ‖
// mac(32), where head is the chain head over all preceding entries and
// mac is HMAC-SHA256 under the checkpoint key.
//
// The chain covers the stored frame: h_i = SHA-256(h_{i-1} ‖ kind ‖ seq ‖
// payload). The sequence number rides in the clear — the host already
// counts entries as it stores them — so the verifier can localize
// reordering before attempting decryption.

const (
	kindRecord     byte = 1
	kindCheckpoint byte = 2

	frameHeaderLen    = 1 + 8 + 4
	checkpointBodyLen = 8 + 8 + 32 + 32

	// SegmentPrefix names segment objects in the audit store:
	// seg-00000001, seg-00000002, …
	SegmentPrefix = "seg-"
)

// chainSeed anchors h_0.
var chainSeed = sha256.Sum256([]byte("segshare-audit-log-v1"))

const recordAAD = "segshare-audit-record-v1"

func recordAssociatedData(seq uint64) []byte {
	ad := make([]byte, len(recordAAD)+8)
	copy(ad, recordAAD)
	binary.BigEndian.PutUint64(ad[len(recordAAD):], seq)
	return ad
}

// sealRecord serializes and encrypts one record.
func sealRecord(keys Keys, rec Record) ([]byte, error) {
	plain, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("audit: marshal record: %w", err)
	}
	ct, err := pae.Encrypt(keys.Enc, plain, recordAssociatedData(rec.Seq))
	if err != nil {
		return nil, fmt.Errorf("audit: seal record: %w", err)
	}
	return ct, nil
}

// openRecord reverses sealRecord. Any authentication failure maps to
// ErrRecordCorrupt.
func openRecord(keys Keys, seq uint64, payload []byte) (Record, error) {
	plain, err := pae.Decrypt(keys.Enc, payload, recordAssociatedData(seq))
	if err != nil {
		return Record{}, fmt.Errorf("%w: entry %d", ErrRecordCorrupt, seq)
	}
	var rec Record
	if err := json.Unmarshal(plain, &rec); err != nil {
		return Record{}, fmt.Errorf("%w: entry %d: %v", ErrRecordCorrupt, seq, err)
	}
	if rec.Seq != seq {
		return Record{}, fmt.Errorf("%w: entry %d claims seq %d", ErrRecordCorrupt, seq, rec.Seq)
	}
	return rec, nil
}

// checkpoint is the plaintext content of a checkpoint frame.
type checkpoint struct {
	seq     uint64
	counter uint64
	head    [sha256.Size]byte
}

func checkpointMAC(macKey []byte, c checkpoint) [sha256.Size]byte {
	mac := hmac.New(sha256.New, macKey)
	mac.Write([]byte("segshare-audit-checkpoint-v1"))
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], c.seq)
	binary.BigEndian.PutUint64(buf[8:], c.counter)
	mac.Write(buf[:])
	mac.Write(c.head[:])
	var out [sha256.Size]byte
	copy(out[:], mac.Sum(nil))
	return out
}

func encodeCheckpoint(macKey []byte, c checkpoint) []byte {
	out := make([]byte, checkpointBodyLen)
	binary.BigEndian.PutUint64(out[0:8], c.seq)
	binary.BigEndian.PutUint64(out[8:16], c.counter)
	copy(out[16:48], c.head[:])
	tag := checkpointMAC(macKey, c)
	copy(out[48:80], tag[:])
	return out
}

// decodeCheckpoint parses and authenticates a checkpoint payload.
func decodeCheckpoint(macKey []byte, payload []byte) (checkpoint, error) {
	if len(payload) != checkpointBodyLen {
		return checkpoint{}, fmt.Errorf("%w: checkpoint body %d bytes", ErrCheckpointForged, len(payload))
	}
	var c checkpoint
	c.seq = binary.BigEndian.Uint64(payload[0:8])
	c.counter = binary.BigEndian.Uint64(payload[8:16])
	copy(c.head[:], payload[16:48])
	want := checkpointMAC(macKey, c)
	if !hmac.Equal(want[:], payload[48:80]) {
		return checkpoint{}, fmt.Errorf("%w: entry %d", ErrCheckpointForged, c.seq)
	}
	return c, nil
}

// encodeFrame appends one frame to buf and returns the extended buffer.
func encodeFrame(buf []byte, kind byte, seq uint64, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	hdr[0] = kind
	binary.BigEndian.PutUint64(hdr[1:9], seq)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// chainNext advances the hash chain over one frame.
func chainNext(head [sha256.Size]byte, kind byte, seq uint64, payload []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(head[:])
	h.Write([]byte{kind})
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seq)
	h.Write(buf[:])
	h.Write(payload)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// segmentName returns the store object name of the i-th segment (1-based).
func segmentName(i int) string { return fmt.Sprintf("%s%08d", SegmentPrefix, i) }

// Verification and integrity errors. Each class of tampering maps to a
// distinct error so an operator (and the test suite) can tell a flipped
// bit from a cut tail from a replayed checkpoint.
var (
	// ErrRecordCorrupt: a record ciphertext failed authentication (bit
	// flip, spliced foreign record, or wrong key).
	ErrRecordCorrupt = errors.New("audit: record authentication failed")
	// ErrTruncated: a segment ends mid-frame, a segment is missing from
	// the sequence, or the log holds fewer records than expected.
	ErrTruncated = errors.New("audit: log truncated")
	// ErrSegmentOrder: entries appear out of sequence (e.g. two segment
	// objects were swapped).
	ErrSegmentOrder = errors.New("audit: segments out of order")
	// ErrChainMismatch: a checkpoint's recorded chain head does not match
	// the recomputed chain.
	ErrChainMismatch = errors.New("audit: hash chain mismatch")
	// ErrCheckpointForged: a checkpoint failed MAC verification.
	ErrCheckpointForged = errors.New("audit: checkpoint authentication failed")
	// ErrCheckpointReplay: checkpoint counter values regress within the
	// log, or the final checkpoint is stale against the expected enclave
	// counter value — the signature of a replayed (rolled back) log.
	ErrCheckpointReplay = errors.New("audit: checkpoint replay")
	// ErrLogRollback: at startup, the persisted log trails the enclave's
	// monotonic counter — the stored log was rolled back or truncated
	// while the enclave was down.
	ErrLogRollback = errors.New("audit: stored log behind enclave counter")
)
