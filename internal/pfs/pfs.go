// Package pfs reimplements the functionality SeGShare uses from the Intel
// SGX Protected File System Library (paper §II-A): authenticated,
// confidential storage of a file in untrusted memory. On write, data is
// split into 4 KiB chunks, each chunk is encrypted with AES-GCM, and a
// Merkle hash tree over the chunk ciphertexts protects integrity,
// ordering, and extension/truncation. On read, chunks are verified before
// their plaintext is released; random access verifies a single Merkle path
// instead of the whole file.
//
// The encrypted encoding is self-contained: chunks first, then the Merkle
// tree nodes, then a fixed-size footer whose HMAC (under a key derived
// from the file key) authenticates all structural metadata and the tree
// root. A single pass suffices for writing, so the enclave only ever
// buffers one chunk (paper §VI's streaming requirement).
package pfs

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"

	"segshare/internal/pae"
)

const (
	// ChunkSize is the plaintext chunk granularity, matching the 4 KiB
	// chunks of Intel's Protected File System Library.
	ChunkSize = 4096
	// hashSize is the size of a Merkle tree node.
	hashSize = sha256.Size
	// footerSize is the length of the fixed trailer.
	footerSize = 8 /*magic*/ + 4 /*version*/ + 8 /*plainSize*/ + 8 /*numChunks*/ + hashSize /*root*/ + sha256.Size /*mac*/
)

var footerMagic = [8]byte{'S', 'G', 'P', 'F', 'S', 'v', '0', '1'}

// Errors returned by the protected file system.
var (
	// ErrCorrupt is returned when a protected file fails integrity
	// verification anywhere (chunk, tree, or footer).
	ErrCorrupt = errors.New("pfs: integrity verification failed")
	// ErrWriterClosed is returned when writing to a closed Writer.
	ErrWriterClosed = errors.New("pfs: writer closed")
	// ErrReadRange is returned for out-of-range random access.
	ErrReadRange = errors.New("pfs: read out of range")
)

// Overhead returns the total ciphertext expansion for a plaintext of the
// given size: per-chunk AEAD overhead, the stored Merkle tree levels, and
// the footer. The storage-overhead experiment (paper §VII-B) uses it as
// the predicted value to compare measurements against.
func Overhead(plainSize int64) int64 {
	chunks := numChunks(plainSize)
	return chunks*pae.Overhead + storedNodeCount(chunks)*hashSize + footerSize
}

func numChunks(plainSize int64) int64 {
	if plainSize == 0 {
		return 1 // a single empty chunk keeps the format uniform
	}
	return (plainSize + ChunkSize - 1) / ChunkSize
}

// storedNodeCount returns the number of Merkle nodes persisted for a tree
// with n leaves. Leaf hashes are recomputable from the chunk ciphertexts
// and are not stored; all levels above the leaves are.
func storedNodeCount(n int64) int64 {
	var total int64
	for n > 1 {
		n = (n + 1) / 2
		total += n
	}
	return total
}

// chunkKey derives the chunk-encryption key; the footer MAC uses a
// separate derived key so chunk and metadata protection are domain
// separated.
func chunkKey(fileKey pae.Key) (pae.Key, error) {
	return pae.DeriveKey(fileKey[:], "pfs-chunk-key", nil)
}

func macKey(fileKey pae.Key) ([]byte, error) {
	return pae.DeriveBytes(fileKey[:], "pfs-footer-mac", nil, 32)
}

func chunkAAD(fileID []byte, index int64) []byte {
	aad := make([]byte, 8+len(fileID))
	binary.BigEndian.PutUint64(aad, uint64(index))
	copy(aad[8:], fileID)
	return aad
}

// hashScratchPool holds prefix‖data scratch buffers for leafHash. Going
// through hash.Hash would cost heap allocations per call (the interface
// defeats escape analysis); concatenating into pooled scratch and using
// sha256.Sum256 keeps the per-chunk hot path allocation-free.
var hashScratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1+ChunkSize+pae.Overhead)
	return &b
}}

func leafHash(chunkCiphertext []byte) [hashSize]byte {
	sp := hashScratchPool.Get().(*[]byte)
	s := append(append((*sp)[:0], 0x00), chunkCiphertext...) // leaf domain separator
	out := sha256.Sum256(s)
	*sp = s[:0]
	hashScratchPool.Put(sp)
	return out
}

func innerHash(left, right [hashSize]byte) [hashSize]byte {
	var b [1 + 2*hashSize]byte
	b[0] = 0x01 // inner-node domain separator
	copy(b[1:], left[:])
	copy(b[1+hashSize:], right[:])
	return sha256.Sum256(b[:])
}

// buildTree builds a Merkle tree bottom-up over the leaf hashes. The
// returned slice stores levels from leaves upward: level 0 is the leaves,
// the last level is the single root. Odd nodes are promoted unchanged
// (Bitcoin-style duplication is avoided; promotion keeps proofs simple
// and collision-free together with the domain separators and the leaf
// count authenticated in the footer).
func buildTree(leaves [][hashSize]byte) [][][hashSize]byte {
	levels := [][][hashSize]byte{leaves}
	for len(levels[len(levels)-1]) > 1 {
		prev := levels[len(levels)-1]
		next := make([][hashSize]byte, 0, (len(prev)+1)/2)
		for i := 0; i < len(prev); i += 2 {
			if i+1 < len(prev) {
				next = append(next, innerHash(prev[i], prev[i+1]))
			} else {
				next = append(next, prev[i])
			}
		}
		levels = append(levels, next)
	}
	return levels
}

type footer struct {
	plainSize int64
	numChunks int64
	root      [hashSize]byte
}

func (f footer) encode(key []byte) []byte {
	out := make([]byte, 0, footerSize)
	out = append(out, footerMagic[:]...)
	out = binary.BigEndian.AppendUint32(out, 1)
	out = binary.BigEndian.AppendUint64(out, uint64(f.plainSize))
	out = binary.BigEndian.AppendUint64(out, uint64(f.numChunks))
	out = append(out, f.root[:]...)
	mac := pae.MAC(key, out)
	return append(out, mac[:]...)
}

func parseFooter(key, raw []byte) (footer, error) {
	if len(raw) != footerSize {
		return footer{}, ErrCorrupt
	}
	body, mac := raw[:footerSize-sha256.Size], raw[footerSize-sha256.Size:]
	if !pae.VerifyMAC(key, body, mac) {
		return footer{}, ErrCorrupt
	}
	if !bytes.Equal(body[:8], footerMagic[:]) {
		return footer{}, ErrCorrupt
	}
	if binary.BigEndian.Uint32(body[8:12]) != 1 {
		return footer{}, ErrCorrupt
	}
	f := footer{
		plainSize: int64(binary.BigEndian.Uint64(body[12:20])),
		numChunks: int64(binary.BigEndian.Uint64(body[20:28])),
	}
	copy(f.root[:], body[28:28+hashSize])
	if f.plainSize < 0 || f.numChunks != numChunks(f.plainSize) {
		return footer{}, ErrCorrupt
	}
	return f, nil
}
