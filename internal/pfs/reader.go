package pfs

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"segshare/internal/pae"
)

// Reader provides verified random access to a protected file. Every chunk
// read is authenticated (AES-GCM) and its Merkle path is checked against
// the root authenticated by the footer, so a tampered, reordered,
// truncated, or extended blob is always detected. Multiple Readers over
// the same blob may be used concurrently, mirroring the library's
// many-readers discipline.
type Reader struct {
	cipher *pae.Cipher
	fileID []byte
	src    io.ReaderAt
	ftr    footer

	chunksEnd   int64
	lastChunkPt int64
	levelCounts []int64
	levelOffs   []int64
}

// Open parses and verifies the footer of a protected file stored in src
// (whose total encoded length is size) and returns a Reader. It returns
// ErrCorrupt if the footer fails authentication or the structure is
// implausible.
func Open(fileKey pae.Key, fileID []byte, src io.ReaderAt, size int64) (*Reader, error) {
	mk, err := macKey(fileKey)
	if err != nil {
		return nil, err
	}
	if size < footerSize {
		return nil, ErrCorrupt
	}
	rawFooter := make([]byte, footerSize)
	if _, err := src.ReadAt(rawFooter, size-footerSize); err != nil {
		return nil, fmt.Errorf("pfs: read footer: %w", err)
	}
	ftr, err := parseFooter(mk, rawFooter)
	if err != nil {
		return nil, err
	}

	ck, err := chunkKey(fileKey)
	if err != nil {
		return nil, err
	}
	cipher, err := pae.NewCipher(ck)
	if err != nil {
		return nil, err
	}

	r := &Reader{
		cipher: cipher,
		fileID: append([]byte(nil), fileID...),
		src:    src,
		ftr:    ftr,
	}
	r.lastChunkPt = ftr.plainSize - (ftr.numChunks-1)*ChunkSize
	r.chunksEnd = (ftr.numChunks-1)*(ChunkSize+pae.Overhead) + r.lastChunkPt + pae.Overhead

	// Precompute the node counts and byte offsets of each tree level. The
	// leaf level (0) is not stored — its offset is a sentinel — because
	// leaf hashes are recomputed from the chunk ciphertexts.
	count := ftr.numChunks
	off := r.chunksEnd
	r.levelCounts = append(r.levelCounts, count)
	r.levelOffs = append(r.levelOffs, -1)
	for count > 1 {
		count = (count + 1) / 2
		r.levelCounts = append(r.levelCounts, count)
		r.levelOffs = append(r.levelOffs, off)
		off += count * hashSize
	}
	if off+footerSize != size {
		return nil, ErrCorrupt
	}
	return r, nil
}

// Size returns the plaintext size of the protected file.
func (r *Reader) Size() int64 { return r.ftr.plainSize }

// NumChunks returns the number of 4 KiB chunks.
func (r *Reader) NumChunks() int64 { return r.ftr.numChunks }

func (r *Reader) chunkExtent(index int64) (off, ctLen int64) {
	off = index * (ChunkSize + pae.Overhead)
	ctLen = ChunkSize + pae.Overhead
	if index == r.ftr.numChunks-1 {
		ctLen = r.lastChunkPt + pae.Overhead
	}
	return off, ctLen
}

func (r *Reader) readNode(level int, index int64) ([hashSize]byte, error) {
	if level == 0 {
		// Leaf hashes are not stored; recompute from the sibling chunk's
		// ciphertext.
		off, ctLen := r.chunkExtent(index)
		ct := make([]byte, ctLen)
		if _, err := r.src.ReadAt(ct, off); err != nil {
			return [hashSize]byte{}, fmt.Errorf("pfs: read sibling chunk: %w", err)
		}
		return leafHash(ct), nil
	}
	var node [hashSize]byte
	if _, err := r.src.ReadAt(node[:], r.levelOffs[level]+index*hashSize); err != nil {
		return node, fmt.Errorf("pfs: read tree node: %w", err)
	}
	return node, nil
}

// verifyPath checks that leaf (the recomputed hash of chunk index's
// ciphertext) is consistent with the authenticated root, reading only the
// sibling nodes along the path.
func (r *Reader) verifyPath(index int64, leaf [hashSize]byte) error {
	node := leaf
	idx := index
	for level := 0; level < len(r.levelCounts)-1; level++ {
		sibling := idx ^ 1
		if sibling >= r.levelCounts[level] {
			// Odd node promoted unchanged to the next level.
			idx >>= 1
			continue
		}
		sib, err := r.readNode(level, sibling)
		if err != nil {
			return err
		}
		if idx&1 == 0 {
			node = innerHash(node, sib)
		} else {
			node = innerHash(sib, node)
		}
		idx >>= 1
	}
	if node != r.ftr.root {
		return ErrCorrupt
	}
	return nil
}

// chunk reads, verifies, and decrypts the chunk with the given index.
func (r *Reader) chunk(index int64) ([]byte, error) {
	off, ctLen := r.chunkExtent(index)
	ct := make([]byte, ctLen)
	if _, err := r.src.ReadAt(ct, off); err != nil {
		return nil, fmt.Errorf("%w: chunk %d unreadable", ErrCorrupt, index)
	}
	if err := r.verifyPath(index, leafHash(ct)); err != nil {
		return nil, err
	}
	pt, err := r.cipher.Open(ct, chunkAAD(r.fileID, index))
	if err != nil {
		return nil, ErrCorrupt
	}
	return pt, nil
}

// ReadAt implements io.ReaderAt over the plaintext.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrReadRange
	}
	if off >= r.ftr.plainSize {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	read := 0
	for read < len(p) && off < r.ftr.plainSize {
		idx := off / ChunkSize
		pt, err := r.chunk(idx)
		if err != nil {
			return read, err
		}
		within := off - idx*ChunkSize
		n := copy(p[read:], pt[within:])
		read += n
		off += int64(n)
	}
	if read < len(p) {
		return read, io.EOF
	}
	return read, nil
}

// WriteTo streams the whole verified plaintext to w, one chunk at a time,
// rebuilding the full Merkle tree from the chunk ciphertexts so integrity
// does not rest on the stored inner nodes. The chunk, plaintext, and AAD
// buffers are reused across chunks (w must not retain what it is handed,
// per the io.Writer contract), so the loop itself does not allocate.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	var (
		total  int64
		leaves = make([][hashSize]byte, 0, r.ftr.numChunks)
		ct     = make([]byte, 0, ChunkSize+pae.Overhead)
		ptBuf  = make([]byte, 0, ChunkSize)
		aad    = make([]byte, 8+len(r.fileID))
	)
	copy(aad[8:], r.fileID)
	for idx := int64(0); idx < r.ftr.numChunks; idx++ {
		off, ctLen := r.chunkExtent(idx)
		ct = ct[:ctLen]
		if _, err := r.src.ReadAt(ct, off); err != nil {
			return total, fmt.Errorf("%w: chunk %d unreadable", ErrCorrupt, idx)
		}
		leaves = append(leaves, leafHash(ct))
		binary.BigEndian.PutUint64(aad, uint64(idx))
		pt, err := r.cipher.AppendOpen(ptBuf[:0], ct, aad)
		if err != nil {
			return total, ErrCorrupt
		}
		n, err := w.Write(pt)
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("pfs: stream out: %w", err)
		}
	}
	levels := buildTree(leaves)
	if levels[len(levels)-1][0] != r.ftr.root {
		return total, ErrCorrupt
	}
	// Also verify the stored inner-node region against the rebuilt tree so
	// a full read detects tampering anywhere in the blob, not only in the
	// chunks.
	off := r.chunksEnd
	stored := make([]byte, hashSize)
	for _, level := range levels[1:] {
		for i := range level {
			if _, err := r.src.ReadAt(stored, off); err != nil {
				return total, fmt.Errorf("%w: stored tree unreadable", ErrCorrupt)
			}
			if !bytes.Equal(stored, level[i][:]) {
				return total, ErrCorrupt
			}
			off += hashSize
		}
	}
	return total, nil
}

// Decrypt is the one-shot convenience: it verifies the whole blob and
// returns the plaintext.
func Decrypt(fileKey pae.Key, fileID, blob []byte) ([]byte, error) {
	r, err := Open(fileKey, fileID, bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.Grow(int(r.Size()))
	if _, err := r.WriteTo(&out); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}
