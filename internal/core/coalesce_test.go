package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/store"
)

// TestFlightGroupCoalesces pins the singleflight contract with a gated
// leader: followers that arrive while the leader's fn runs share its
// result and never run their own fn; once the flight completes, the next
// caller leads a fresh one.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32

	type result struct {
		val    []byte
		shared bool
		err    error
	}
	leaderCh := make(chan result, 1)
	go func() {
		val, shared, err := g.do(nil, "k", func() ([]byte, error) {
			calls.Add(1)
			close(started)
			<-release
			return []byte("payload"), nil
		})
		leaderCh <- result{val, shared, err}
	}()
	<-started

	const followers = 4
	followerCh := make(chan result, followers)
	for i := 0; i < followers; i++ {
		go func() {
			val, shared, err := g.do(nil, "k", func() ([]byte, error) {
				t.Error("follower fn ran despite an in-flight leader")
				return nil, nil
			})
			followerCh <- result{val, shared, err}
		}()
	}
	// The leader is parked on release with its flight registered, so the
	// followers join it as soon as they are scheduled; the pause lets them
	// all reach do before the flight completes.
	time.Sleep(20 * time.Millisecond)
	close(release)

	lead := <-leaderCh
	if lead.shared || lead.err != nil || string(lead.val) != "payload" {
		t.Fatalf("leader got (%q, shared=%t, %v)", lead.val, lead.shared, lead.err)
	}
	for i := 0; i < followers; i++ {
		r := <-followerCh
		if !r.shared || r.err != nil || string(r.val) != "payload" {
			t.Fatalf("follower got (%q, shared=%t, %v)", r.val, r.shared, r.err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("leader fn ran %d times, want 1", n)
	}

	// Forget-on-completion: the next call leads its own flight.
	val, shared, err := g.do(nil, "k", func() ([]byte, error) {
		calls.Add(1)
		return []byte("second"), nil
	})
	if shared || err != nil || string(val) != "second" {
		t.Fatalf("post-flight call got (%q, shared=%t, %v)", val, shared, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("fn ran %d times total, want 2", n)
	}
}

// TestFlightGroupLeaderPanic checks panic safety: a follower of a flight
// whose leader panicked neither hangs nor observes a zero-value success —
// it retries as the new leader and returns its own result. The panic
// itself still propagates on the leader's goroutine only.
func TestFlightGroupLeaderPanic(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		_, _, _ = g.do(nil, "k", func() ([]byte, error) {
			close(started)
			<-release
			panic("leader died")
		})
	}()
	<-started
	type result struct {
		val []byte
		err error
	}
	followerCh := make(chan result, 1)
	go func() {
		val, _, err := g.do(nil, "k", func() ([]byte, error) {
			return []byte("own"), nil
		})
		followerCh <- result{val, err}
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	r := <-followerCh
	if r.err != nil || string(r.val) != "own" {
		t.Fatalf("follower of panicked flight got (%q, %v), want its own retry result", r.val, r.err)
	}
}

// TestCoalescedReadStress hammers one hot path with concurrent readers
// while a writer overwrites it and the owner toggles another user's
// permission — the revocation race the coalescing layer must stay exact
// under. Run with -race: the detector checks the flight result sharing,
// and the content assertions check that no reader ever observes a torn
// or never-written value through a shared flight.
func TestCoalescedReadStress(t *testing.T) {
	authority, err := ca.New("coalesce CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewMemory(),
		GroupStore:   store.NewMemory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })

	alice := server.Direct("alice")
	bob := server.Direct("bob")
	if err := alice.Mkdir("/shared/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/shared/hot", []byte("seed")); err != nil {
		t.Fatal(err)
	}
	if err := alice.AddUser("bob", "team"); err != nil {
		t.Fatal(err)
	}

	const iters = 60
	legal := sync.Map{}
	legal.Store("seed", true)

	var wg sync.WaitGroup
	fail := make(chan error, 16)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Writer: overwrites the hot file with distinct values.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < iters; j++ {
			v := fmt.Sprintf("v-%d", j)
			legal.Store(v, true)
			if err := alice.Upload("/shared/hot", []byte(v)); err != nil {
				report("upload: %v", err)
				return
			}
		}
	}()

	// Permission toggler: grants and revokes bob's read access.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < iters; j++ {
			spec := PermissionSpec("r")
			if j%2 == 1 {
				spec = "none"
			}
			if err := alice.SetPermission("/shared/hot", "team", spec); err != nil {
				report("set permission: %v", err)
				return
			}
		}
	}()

	// Coalescing readers: concurrent GETs of the same path. Any value
	// ever written is legal; anything else means a flight leaked bytes
	// across a write.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters*2; j++ {
				got, err := alice.Download("/shared/hot")
				if err != nil {
					report("alice download: %v", err)
					return
				}
				if _, ok := legal.Load(string(got)); !ok {
					report("alice read torn content %q", got)
					return
				}
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters*2; j++ {
				got, err := bob.Download("/shared/hot")
				switch {
				case err == nil:
					if _, ok := legal.Load(string(got)); !ok {
						report("bob read torn content %q", got)
						return
					}
				case errors.Is(err, ErrPermissionDenied):
				default:
					report("bob download: %v", err)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The final value is one that was actually written.
	got, err := alice.Download("/shared/hot")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := legal.Load(string(got)); !ok {
		t.Fatalf("final content %q was never written", got)
	}
	// Every uncoalesced read leads a flight, so the leader counter proves
	// the coalescing layer was actually on this code path.
	if n := server.obs.coalesceLeader.Value(); n == 0 {
		t.Fatal("coalesce leader counter is zero: reads bypassed the flight group")
	}
	if n := server.obs.coalesceInflight.Value(); n != 0 {
		t.Fatalf("coalesce inflight gauge = %d after quiesce, want 0", n)
	}
}
