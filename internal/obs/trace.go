package obs

import (
	"sort"
	"sync"
	"time"
)

// TraceRecorder keeps the last N request traces in a ring buffer. A trace
// is one request labeled by operation class only (leak budget: the class
// set is closed and compile-time constant; logical paths, user IDs, and
// group names never enter a trace). Within a trace, spans record where
// the time went — dispatch, store I/O, tree updates.
//
// Annotations are deliberately numeric-only: the API offers no way to
// attach a string to a trace, so identity-bearing request data cannot be
// smuggled into the export. Annotation keys pass the same token denylist
// as metric names.
type TraceRecorder struct {
	mu      sync.Mutex
	ring    []*Trace
	next    int
	seq     uint64
	dropped uint64

	active Gauge
}

// DefaultTraceCapacity is the ring size used when none is given.
const DefaultTraceCapacity = 256

// NewTraceRecorder returns a recorder keeping the last capacity traces.
func NewTraceRecorder(capacity int) *TraceRecorder {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRecorder{ring: make([]*Trace, 0, capacity)}
}

// Trace is one in-flight or finished request.
type Trace struct {
	mu     sync.Mutex
	id     uint64
	op     string
	start  time.Time
	end    time.Time
	status int
	spans  []span
	annots []annotation

	rec *TraceRecorder
}

type span struct {
	name  string
	start time.Time
	end   time.Time
}

type annotation struct {
	key   string
	value int64
}

// Start opens a new trace for the given operation class and inserts it
// into the ring, evicting the oldest trace when full.
func (r *TraceRecorder) Start(op string) *Trace {
	t := &Trace{op: op, start: time.Now(), status: 0, rec: r}
	r.mu.Lock()
	r.seq++
	t.id = r.seq
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, t)
	} else {
		r.ring[r.next] = t
		r.next = (r.next + 1) % cap(r.ring)
		r.dropped++
	}
	r.mu.Unlock()
	r.active.Add(1)
	return t
}

// Dropped returns how many traces have been evicted from the ring.
func (r *TraceRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Active returns the number of started-but-unfinished traces.
func (r *TraceRecorder) Active() int64 { return r.active.Value() }

// Capacity returns the ring size: the maximum number of traces Recent can
// ever return.
func (r *TraceRecorder) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cap(r.ring)
}

// ID returns the trace's ring-unique id, usable as a request id in logs
// and audit records to correlate them with the exported trace.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// SetStatus records the response status code.
func (t *Trace) SetStatus(code int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = code
	t.mu.Unlock()
}

// Annotate attaches a numeric fact (byte counts, depths, item counts) to
// the trace. Keys violating the leak-budget token rules are dropped.
func (t *Trace) Annotate(key string, value int64) {
	if t == nil {
		return
	}
	if verifyName(key, "annotation key") != nil {
		return
	}
	t.mu.Lock()
	t.annots = append(t.annots, annotation{key: key, value: value})
	t.mu.Unlock()
}

// Span times a sub-operation: call the returned func to close it.
func (t *Trace) Span(name string) func() {
	if t == nil {
		return func() {}
	}
	if verifyName(name, "span name") != nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		end := time.Now()
		t.mu.Lock()
		t.spans = append(t.spans, span{name: name, start: start, end: end})
		t.mu.Unlock()
	}
}

// End closes the trace.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.mu.Lock()
	done := !t.end.IsZero()
	if !done {
		t.end = time.Now()
	}
	t.mu.Unlock()
	if !done && t.rec != nil {
		t.rec.active.Add(-1)
	}
}

// SpanSnapshot is one finished span for export.
type SpanSnapshot struct {
	Name    string `json:"name"`
	OffsetN int64  `json:"offsetNs"`
	DurN    int64  `json:"durationNs"`
}

// TraceSnapshot is one trace for export.
type TraceSnapshot struct {
	ID          uint64           `json:"id"`
	Op          string           `json:"op"`
	Start       time.Time        `json:"start"`
	DurationN   int64            `json:"durationNs"`
	Finished    bool             `json:"finished"`
	Status      int              `json:"status,omitempty"`
	Spans       []SpanSnapshot   `json:"spans,omitempty"`
	Annotations map[string]int64 `json:"annotations,omitempty"`
}

func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSnapshot{ID: t.id, Op: t.op, Start: t.start, Status: t.status}
	if !t.end.IsZero() {
		s.Finished = true
		s.DurationN = t.end.Sub(t.start).Nanoseconds()
	} else {
		s.DurationN = time.Since(t.start).Nanoseconds()
	}
	for _, sp := range t.spans {
		s.Spans = append(s.Spans, SpanSnapshot{
			Name:    sp.name,
			OffsetN: sp.start.Sub(t.start).Nanoseconds(),
			DurN:    sp.end.Sub(sp.start).Nanoseconds(),
		})
	}
	if len(t.annots) > 0 {
		s.Annotations = make(map[string]int64, len(t.annots))
		for _, a := range t.annots {
			s.Annotations[a.key] = a.value
		}
	}
	return s
}

// Recent returns up to n most recent traces, newest first.
func (r *TraceRecorder) Recent(n int) []TraceSnapshot {
	r.mu.Lock()
	traces := make([]*Trace, len(r.ring))
	copy(traces, r.ring)
	r.mu.Unlock()

	sort.Slice(traces, func(i, j int) bool { return traces[i].id > traces[j].id })
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	out := make([]TraceSnapshot, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.snapshot())
	}
	return out
}
