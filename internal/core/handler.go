package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"segshare/internal/acl"
	"segshare/internal/audit"
	"segshare/internal/ca"
	"segshare/internal/fspath"
	"segshare/internal/obs"
	"segshare/internal/store"
)

// The request handler (paper Fig. 1) parses each request, allocates it to
// the user identified by the client certificate, and dispatches to the
// access control component. The protocol is WebDAV-flavoured HTTP under
// /fs/ (GET, PUT, DELETE, MKCOL, MOVE, PROPFIND) plus a JSON management
// API under /api/ for the permission and group requests of Algo 1.

// FSPrefix is the URL prefix of the file-system namespace.
const FSPrefix = "/fs"

// PermissionSpec is the wire form of a permission set.
type PermissionSpec string

// ParsePermission maps the wire form to permission bits.
func ParsePermission(s PermissionSpec) (acl.Permission, error) {
	switch s {
	case "r":
		return acl.PermRead, nil
	case "w":
		return acl.PermWrite, nil
	case "rw":
		return acl.PermReadWrite, nil
	case "deny":
		return acl.PermDeny, nil
	case "none":
		return acl.PermNone, nil
	default:
		return 0, fmt.Errorf("%w: permission %q", ErrBadRequest, s)
	}
}

// FormatPermission is the inverse of ParsePermission for responses.
func FormatPermission(p acl.Permission) PermissionSpec {
	switch {
	case p.Has(acl.PermDeny):
		return "deny"
	case p.Has(acl.PermReadWrite):
		return "rw"
	case p.Has(acl.PermWrite):
		return "w"
	case p.Has(acl.PermRead):
		return "r"
	default:
		return "none"
	}
}

// ListingEntry is the JSON form of one directory child.
type ListingEntry struct {
	Name       string         `json:"name"`
	IsDir      bool           `json:"isDir"`
	Permission PermissionSpec `json:"permission"`
}

// Listing is the JSON body of a directory GET/PROPFIND.
type Listing struct {
	Path    string         `json:"path"`
	Entries []ListingEntry `json:"entries"`
}

// WhoAmI is the JSON body of GET /api/whoami.
type WhoAmI struct {
	UserID   string   `json:"userId"`
	Email    string   `json:"email,omitempty"`
	FullName string   `json:"fullName,omitempty"`
	Groups   []string `json:"groups"`
	// OwnedGroups are the groups the user may manage (auth_g).
	OwnedGroups []string `json:"ownedGroups,omitempty"`
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handler() http.Handler {
	return s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := traceFrom(r)
		endAuthn := tr.Span("authn")
		id, err := identityFromRequest(r)
		endAuthn()
		if err != nil {
			s.obs.auditEmit(audit.Event{
				Event:     audit.EventAuthnFailure,
				Op:        opClass(r),
				RequestID: tr.ID(),
			})
			writeErr(w, http.StatusUnauthorized, err)
			return
		}
		s.obs.auditEmit(audit.Event{
			Event:     audit.EventAuthnSuccess,
			Op:        opClass(r),
			RequestID: tr.ID(),
			User:      id.UserID,
		})
		// Charge the request to the caller's default group ("user:<id>")
		// for heavy-hitter accounting; group-targeted API mutations
		// retag with their target group below.
		s.obs.tagRequestGroup(tr, "user:"+id.UserID)
		u := acl.UserID(id.UserID)
		defer tr.Span("dispatch")()
		switch {
		case r.URL.Path == FSPrefix || strings.HasPrefix(r.URL.Path, FSPrefix+"/"):
			s.serveFS(w, r, u)
		case strings.HasPrefix(r.URL.Path, "/api/"):
			s.serveAPI(w, r, id)
		default:
			writeErr(w, http.StatusNotFound, fmt.Errorf("%w: unknown path %s", ErrBadRequest, r.URL.Path))
		}
	}))
}

// opClass buckets a request into its operation class — the only request
// attribute that may label exported telemetry. The class set is closed
// and compile-time constant; logical paths, user IDs, and group names
// never leave the enclave (leak budget, package obs).
func opClass(r *http.Request) string {
	switch {
	case r.URL.Path == FSPrefix || strings.HasPrefix(r.URL.Path, FSPrefix+"/"):
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			return "fs_get"
		case http.MethodPut:
			return "fs_put"
		case http.MethodDelete:
			return "fs_delete"
		case "MKCOL":
			return "fs_mkcol"
		case "MOVE":
			return "fs_move"
		case "PROPFIND":
			return "fs_propfind"
		case http.MethodOptions:
			return "fs_options"
		default:
			return "fs_other"
		}
	case strings.HasPrefix(r.URL.Path, "/api/"):
		switch strings.TrimPrefix(r.URL.Path, "/api/") {
		case "whoami":
			return "api_whoami"
		case "permission":
			return "api_permission"
		case "inherit":
			return "api_inherit"
		case "owner":
			return "api_owner"
		case "groups/add":
			return "api_groups_add"
		case "groups/remove":
			return "api_groups_remove"
		case "groups/owner":
			return "api_groups_owner"
		case "groups/delete":
			return "api_groups_delete"
		default:
			return "api_other"
		}
	default:
		return "other"
	}
}

// traceCtxKey carries the request's obs trace through the context.
type traceCtxKey struct{}

func contextWithTrace(ctx context.Context, tr *obs.Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// traceFrom returns the request's trace, or nil (safe to use) outside the
// instrumented handler.
func traceFrom(r *http.Request) *obs.Trace {
	tr, _ := r.Context().Value(traceCtxKey{}).(*obs.Trace)
	return tr
}

// statsCtxKey carries the request's ReqStats collector through the
// context; connCtxKey carries the server-side net.Conn (installed by
// http.Server.ConnContext in Serve).
type (
	statsCtxKey struct{}
	connCtxKey  struct{}
)

func contextWithStats(ctx context.Context, rs *obs.ReqStats) context.Context {
	return context.WithValue(ctx, statsCtxKey{}, rs)
}

// statsFrom returns the request's stats collector, or nil (all ReqStats
// methods are nil-safe) outside the instrumented handler.
func statsFrom(r *http.Request) *obs.ReqStats {
	rs, _ := r.Context().Value(statsCtxKey{}).(*obs.ReqStats)
	return rs
}

// reqAC returns the request's access-control view and stats collector.
// The view attributes store/cache/journal work done on behalf of this
// request to its wide event and carries the request's cancellation
// context end to end (DESIGN §16); without either it is s.ac itself.
func (s *Server) reqAC(r *http.Request) (*accessControl, *obs.ReqStats) {
	rs := statsFrom(r)
	return s.ac.withRequest(rs, r.Context()), rs
}

// bridgeCallCounts unwraps the request's connection down to the
// enclave-TLS bridge conn and reads its cumulative ecall/ocall
// counters. Requests not served over the trusted endpoint (tests using
// httptest, DirectSession) return zeros.
func bridgeCallCounts(r *http.Request) (ecalls, ocalls int64) {
	conn, _ := r.Context().Value(connCtxKey{}).(interface{ NetConn() net.Conn })
	if conn == nil {
		return 0, 0
	}
	bc, _ := conn.NetConn().(interface{ BridgeCallCounts() (int64, int64) })
	if bc == nil {
		return 0, 0
	}
	return bc.BridgeCallCounts()
}

// statusRecorder captures the response status and body size.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// countingBody counts request body bytes actually consumed.
type countingBody struct {
	io.ReadCloser
	n int64
}

func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.ReadCloser.Read(p)
	b.n += int64(n)
	return n, err
}

// instrument wraps the request handler with the per-request telemetry:
// one trace, one ReqStats collector, one latency observation, and one
// wide event per request, labeled by operation class only, plus a
// structured log line (request id, op class, status, duration — byte
// counts are already visible to the host via TLS record sizes, so
// logging them leaks nothing new).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		op := opClass(r)
		var rs *obs.ReqStats
		if s.obs.wideEvents {
			rs = &obs.ReqStats{}
		}
		tr := s.obs.beginRequest(op, rs)
		// The trace id doubles as the request id in log lines and audit
		// records, so all three can be joined after the fact.
		id := tr.ID()
		s.obs.inflight.Add(1)

		ecall0, ocall0 := bridgeCallCounts(r)

		body := &countingBody{ReadCloser: r.Body}
		r.Body = body
		rw := &statusRecorder{ResponseWriter: w}
		ctx := contextWithTrace(r.Context(), tr)
		ctx = contextWithStats(ctx, rs)
		r = r.WithContext(ctx)

		start := time.Now()
		// Admission (DESIGN §16): drain rejects everything new; the
		// adaptive limiter admits, queues, or sheds by op class. A shed
		// request still flows through the full telemetry tail below, so
		// 503s are visible in every metric, trace, and log line.
		release, admitErr := s.admit(r.Context(), op)
		if admitErr != nil {
			writeMappedErr(rw, admitErr)
		} else {
			if s.maxBody > 0 {
				r.Body = http.MaxBytesReader(rw, r.Body, s.maxBody)
			}
			next.ServeHTTP(rw, r)
			release(time.Since(start))
		}
		dur := time.Since(start)

		if rw.status == 0 {
			rw.status = http.StatusOK
		}
		s.obs.inflight.Add(-1)
		// Attribute the connection's ecall/ocall delta to this request.
		// HTTP keep-alive serializes requests per connection, so the delta
		// belongs to this request alone.
		if ecall1, ocall1 := bridgeCallCounts(r); ecall1 > ecall0 || ocall1 > ocall0 {
			rs.AddBridgeCalls(ecall1-ecall0, ocall1-ocall0)
		}
		sampled := s.obs.finishRequest(op, rw.status, dur, body.n, rw.bytes, tr, rs)
		s.obs.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.Uint64("id", id),
			slog.String("op", op),
			slog.Int("status", rw.status),
			slog.Duration("duration", dur),
			slog.Int64("bytesIn", body.n),
			slog.Int64("bytesOut", rw.bytes),
			slog.Bool("sampled", sampled))
	})
}

func identityFromRequest(r *http.Request) (ca.Identity, error) {
	if r.TLS == nil || len(r.TLS.PeerCertificates) == 0 {
		return ca.Identity{}, errors.New("segshare: no client certificate")
	}
	return ca.IdentityFromCertificate(r.TLS.PeerCertificates[0])
}

// fsPath extracts and validates the file-system path from the URL.
func fsPath(r *http.Request) (fspath.Path, error) {
	raw := strings.TrimPrefix(r.URL.Path, FSPrefix)
	if raw == "" {
		raw = "/"
	}
	p, err := fspath.Parse(raw)
	if err != nil {
		return fspath.Path{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return p, nil
}

// auditAuthz records the outcome of one file authorization check. Only
// definitive decisions are logged: a nil err is an allow, ErrPermissionDenied
// a deny; other errors (not found, bad request, integrity) are not
// authorization outcomes.
func (s *Server) auditAuthz(r *http.Request, u acl.UserID, path string, err error) {
	if s.obs.audit == nil {
		return
	}
	ev := audit.Event{
		Op:        opClass(r),
		RequestID: traceFrom(r).ID(),
		User:      string(u),
		Path:      path,
	}
	switch {
	case err == nil:
		ev.Event, ev.Decision = audit.EventFileAuthzAllow, audit.DecisionAllow
	case errors.Is(err, ErrPermissionDenied):
		ev.Event, ev.Decision = audit.EventFileAuthzDeny, audit.DecisionDeny
	default:
		return
	}
	s.obs.auditEmit(ev)
}

func (s *Server) serveFS(w http.ResponseWriter, r *http.Request, u acl.UserID) {
	path, err := fsPath(r)
	if err != nil {
		writeMappedErr(w, err)
		return
	}
	ac, rs := s.reqAC(r)
	switch r.Method {
	case "PROPFIND":
		s.servePropfind(w, r, u, path)

	case http.MethodOptions:
		serveOptions(w)

	case http.MethodGet, http.MethodHead:
		if path.IsDir() {
			unlock := s.locks.fsRead(rs, path)
			entries, err := ac.GetDir(u, path)
			unlock()
			s.auditAuthz(r, u, path.String(), err)
			if err != nil {
				writeMappedErr(w, err)
				return
			}
			listing := Listing{Path: path.String(), Entries: make([]ListingEntry, 0, len(entries))}
			for _, e := range entries {
				listing.Entries = append(listing.Entries, ListingEntry{
					Name:       e.Name,
					IsDir:      e.IsDir,
					Permission: FormatPermission(e.Permission),
				})
			}
			writeJSON(w, http.StatusOK, listing)
			return
		}
		// A valid single-range GET is served as 206 through the random-
		// access read path; malformed or multi-range specs fall through to
		// the full representation (RFC 9110 permits ignoring Range), as
		// does HEAD. If-Range also forces the full representation: this
		// server emits no validators (no ETag/Last-Modified), so no
		// If-Range validator can match, and RFC 9110 §13.1.5 says a
		// non-matching If-Range means "ignore Range" — a 206 here could
		// splice ranges of two different file versions at the client.
		if br, ok := parseRangeHeader(r.Header.Get("Range")); ok &&
			r.Method == http.MethodGet && r.Header.Get("If-Range") == "" {
			unlock := s.locks.fsRead(rs, path)
			res, err := ac.GetFileRange(u, path, br)
			unlock()
			s.auditAuthz(r, u, path.String(), err)
			if errors.Is(err, ErrRangeNotSatisfiable) {
				w.Header().Set("Accept-Ranges", "bytes")
				w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", res.Total))
				writeErr(w, http.StatusRequestedRangeNotSatisfiable, err)
				return
			}
			if err != nil {
				writeMappedErr(w, err)
				return
			}
			w.Header().Set("Accept-Ranges", "bytes")
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Range",
				fmt.Sprintf("bytes %d-%d/%d", res.Off, res.Off+int64(len(res.Data))-1, res.Total))
			w.Header().Set("Content-Length", strconv.Itoa(len(res.Data)))
			w.WriteHeader(http.StatusPartialContent)
			_, _ = w.Write(res.Data)
			return
		}
		unlock := s.locks.fsRead(rs, path)
		content, err := ac.GetFile(u, path)
		unlock()
		s.auditAuthz(r, u, path.String(), err)
		if err != nil {
			writeMappedErr(w, err)
			return
		}
		w.Header().Set("Accept-Ranges", "bytes")
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(content)))
		w.WriteHeader(http.StatusOK)
		if r.Method != http.MethodHead {
			_, _ = w.Write(content)
		}

	case http.MethodPut:
		content, err := io.ReadAll(r.Body)
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				// The limit is configuration, not request data, so naming
				// it leaks nothing.
				writeMappedErr(w, fmt.Errorf("%w: body exceeds %d bytes", ErrTooLarge, mbe.Limit))
				return
			}
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var created bool
		err = s.provisionUser(rs, u)
		if err == nil {
			unlock := s.locks.fsWrite(rs, false, path)
			created, err = ac.PutFile(u, path, content)
			unlock()
		}
		s.auditAuthz(r, u, path.String(), err)
		if err != nil {
			writeMappedErr(w, err)
			return
		}
		if created {
			w.WriteHeader(http.StatusCreated)
		} else {
			w.WriteHeader(http.StatusNoContent)
		}

	case "MKCOL":
		err := s.provisionUser(rs, u)
		if err == nil {
			unlock := s.locks.fsWrite(rs, false, path)
			err = ac.PutDir(u, path)
			unlock()
		}
		s.auditAuthz(r, u, path.String(), err)
		if err != nil {
			writeMappedErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)

	case http.MethodDelete:
		unlock := s.locks.fsWrite(rs, false, path)
		err := ac.Remove(u, path)
		unlock()
		s.auditAuthz(r, u, path.String(), err)
		if err != nil {
			writeMappedErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)

	case "MOVE":
		destRaw := r.Header.Get("Destination")
		if !strings.HasPrefix(destRaw, FSPrefix) {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("%w: Destination must start with %s", ErrBadRequest, FSPrefix))
			return
		}
		dst, err := fspath.Parse(strings.TrimPrefix(destRaw, FSPrefix))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		unlock := s.locks.moveLocks(rs, path, dst)
		err = ac.Move(u, path, dst)
		unlock()
		s.auditAuthz(r, u, path.String()+" -> "+dst.String(), err)
		if err != nil {
			writeMappedErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)

	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("%w: method %s", ErrBadRequest, r.Method))
	}
}

// API request bodies.
type (
	permissionReq struct {
		Path       string         `json:"path"`
		Group      string         `json:"group"`
		Permission PermissionSpec `json:"permission"`
	}
	inheritReq struct {
		Path    string `json:"path"`
		Inherit bool   `json:"inherit"`
	}
	ownerReq struct {
		Path  string `json:"path"`
		Group string `json:"group"`
		Owner bool   `json:"owner"`
	}
	membershipReq struct {
		User  string `json:"user"`
		Group string `json:"group"`
	}
	groupOwnerReq struct {
		Group      string `json:"group"`
		OwnerGroup string `json:"ownerGroup"`
		Owner      bool   `json:"owner"`
	}
	groupDeleteReq struct {
		Group string `json:"group"`
	}
)

func (s *Server) serveAPI(w http.ResponseWriter, r *http.Request, id ca.Identity) {
	u := acl.UserID(id.UserID)
	route := strings.TrimPrefix(r.URL.Path, "/api/")
	ac, rs := s.reqAC(r)

	if r.Method == http.MethodGet {
		if route != "whoami" {
			writeErr(w, http.StatusNotFound, fmt.Errorf("%w: unknown API %q", ErrBadRequest, route))
			return
		}
		unlock := s.locks.groupRead(rs)
		groups, err := ac.Memberships(u)
		var owned []acl.GroupName
		if err == nil {
			owned, err = ac.OwnedGroups(u)
		}
		unlock()
		if err != nil {
			writeMappedErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, WhoAmI{
			UserID:      id.UserID,
			Email:       id.Email,
			FullName:    id.FullName,
			Groups:      groupNames(groups),
			OwnedGroups: groupNames(owned),
		})
		return
	}
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("%w: method %s", ErrBadRequest, r.Method))
		return
	}

	// ev collects the audit shape of the mutation; cases that parse
	// successfully fill it in, and auditAPIChange records the decision
	// once the outcome is known.
	var ev audit.Event
	var err error
	switch route {
	case "permission":
		var req permissionReq
		if err = decodeJSON(r, &req); err != nil {
			break
		}
		var p acl.Permission
		if p, err = ParsePermission(req.Permission); err != nil {
			break
		}
		var path fspath.Path
		if path, err = parseAPIPath(req.Path); err != nil {
			break
		}
		ev = audit.Event{Event: audit.EventACLChange, Path: path.String(),
			Group: req.Group, Detail: "permission=" + string(req.Permission)}
		// groupWrite: granting to a default group ("user:x") may create
		// its group-list record on demand.
		unlock := s.locks.fsWrite(rs, true, path)
		err = ac.SetPermission(u, path, acl.GroupName(req.Group), p)
		unlock()

	case "inherit":
		var req inheritReq
		if err = decodeJSON(r, &req); err != nil {
			break
		}
		var path fspath.Path
		if path, err = parseAPIPath(req.Path); err != nil {
			break
		}
		ev = audit.Event{Event: audit.EventACLChange, Path: path.String(),
			Detail: fmt.Sprintf("inherit=%t", req.Inherit)}
		unlock := s.locks.fsWrite(rs, false, path)
		err = ac.SetInherit(u, path, req.Inherit)
		unlock()

	case "owner":
		var req ownerReq
		if err = decodeJSON(r, &req); err != nil {
			break
		}
		var path fspath.Path
		if path, err = parseAPIPath(req.Path); err != nil {
			break
		}
		ev = audit.Event{Event: audit.EventACLChange, Path: path.String(),
			Group: req.Group, Detail: fmt.Sprintf("owner=%t", req.Owner)}
		unlock := s.locks.fsWrite(rs, true, path)
		err = ac.SetFileOwner(u, path, acl.GroupName(req.Group), req.Owner)
		unlock()

	case "groups/add":
		var req membershipReq
		if err = decodeJSON(r, &req); err != nil {
			break
		}
		ev = audit.Event{Event: audit.EventGroupChange, Target: req.User, Group: req.Group}
		// Provision both principals first: adding a never-seen user must
		// not bootstrap identity relations (or the FSO root ACL) inside
		// the group-only critical section.
		err = s.provisionUser(rs, u, acl.UserID(req.User))
		if err == nil {
			unlock := s.locks.groupWrite(rs)
			err = ac.AddUser(u, acl.UserID(req.User), acl.GroupName(req.Group))
			unlock()
		}

	case "groups/remove":
		var req membershipReq
		if err = decodeJSON(r, &req); err != nil {
			break
		}
		ev = audit.Event{Event: audit.EventGroupChange, Target: req.User, Group: req.Group}
		err = s.provisionUser(rs, u)
		if err == nil {
			unlock := s.locks.groupWrite(rs)
			err = ac.RemoveUser(u, acl.UserID(req.User), acl.GroupName(req.Group))
			unlock()
		}

	case "groups/owner":
		var req groupOwnerReq
		if err = decodeJSON(r, &req); err != nil {
			break
		}
		ev = audit.Event{Event: audit.EventGroupChange, Group: req.Group,
			Detail: fmt.Sprintf("ownerGroup=%s owner=%t", req.OwnerGroup, req.Owner)}
		err = s.provisionUser(rs, u)
		if err == nil {
			unlock := s.locks.groupWrite(rs)
			err = ac.SetGroupOwner(u, acl.GroupName(req.Group), acl.GroupName(req.OwnerGroup), req.Owner)
			unlock()
		}

	case "groups/delete":
		var req groupDeleteReq
		if err = decodeJSON(r, &req); err != nil {
			break
		}
		ev = audit.Event{Event: audit.EventGroupChange, Group: req.Group, Detail: "delete"}
		err = s.provisionUser(rs, u)
		if err == nil {
			unlock := s.locks.groupWrite(rs)
			err = ac.DeleteGroup(u, acl.GroupName(req.Group))
			unlock()
		}

	default:
		err = fmt.Errorf("%w: unknown API %q", ErrBadRequest, route)
	}
	// Group-targeted mutations are charged to their target group in the
	// heavy-hitter sketch, not the caller's default group.
	if ev.Group != "" {
		s.obs.tagRequestGroup(traceFrom(r), ev.Group)
	}
	s.auditAPIChange(r, u, ev, err)
	if err != nil {
		writeMappedErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// auditAPIChange records one management-API mutation outcome. Requests
// that failed before reaching access control (parse errors) carry an
// empty event and are skipped, as are outcomes that are not
// authorization decisions.
func (s *Server) auditAPIChange(r *http.Request, u acl.UserID, ev audit.Event, err error) {
	if s.obs.audit == nil || ev.Event == "" {
		return
	}
	switch {
	case err == nil:
		ev.Decision = audit.DecisionAllow
	case errors.Is(err, ErrPermissionDenied):
		ev.Decision = audit.DecisionDeny
	default:
		return
	}
	ev.Op = opClass(r)
	ev.RequestID = traceFrom(r).ID()
	ev.User = string(u)
	s.obs.auditEmit(ev)
}

// parseRangeHeader parses a single-range "bytes=a-b" / "bytes=a-" /
// "bytes=-n" header. Multi-range and malformed specs return ok=false so
// the caller serves the full representation instead.
func parseRangeHeader(h string) (ByteRange, bool) {
	const pfx = "bytes="
	if !strings.HasPrefix(h, pfx) {
		return ByteRange{}, false
	}
	spec := strings.TrimSpace(strings.TrimPrefix(h, pfx))
	if spec == "" || strings.Contains(spec, ",") {
		return ByteRange{}, false
	}
	dash := strings.Index(spec, "-")
	if dash < 0 {
		return ByteRange{}, false
	}
	first, last := strings.TrimSpace(spec[:dash]), strings.TrimSpace(spec[dash+1:])
	if first == "" {
		n, err := strconv.ParseInt(last, 10, 64)
		if err != nil || n <= 0 {
			return ByteRange{}, false
		}
		return ByteRange{Start: -1, End: -1, SuffixLen: n}, true
	}
	start, err := strconv.ParseInt(first, 10, 64)
	if err != nil || start < 0 {
		return ByteRange{}, false
	}
	if last == "" {
		return ByteRange{Start: start, End: -1}, true
	}
	end, err := strconv.ParseInt(last, 10, 64)
	if err != nil || end < start {
		return ByteRange{}, false
	}
	return ByteRange{Start: start, End: end}, true
}

func parseAPIPath(raw string) (fspath.Path, error) {
	p, err := fspath.Parse(raw)
	if err != nil {
		return fspath.Path{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return p, nil
}

func decodeJSON(r *http.Request, into any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w: body exceeds %d bytes", ErrTooLarge, mbe.Limit)
		}
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// recorded when a request ends because its client disconnected first.
// Nothing meaningful reaches the client — it is gone — but the status
// keeps cancellations distinguishable in metrics, traces, and logs.
const StatusClientClosedRequest = 499

// retryAfterSeconds is the constant Retry-After hint on every 503. All
// three 503 causes (shed, degraded read-only mode, saturated worker
// pool) clear on the order of a breaker cooldown or an AIMD interval —
// a couple of seconds — so one honest constant beats a leaky oracle.
const retryAfterSeconds = "2"

// writeMappedErr translates core errors to HTTP statuses.
func writeMappedErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrPermissionDenied):
		writeErr(w, http.StatusForbidden, err)
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrGroupNotFound):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrExists), errors.Is(err, ErrNotEmpty):
		writeErr(w, http.StatusConflict, err)
	case errors.Is(err, ErrBadRequest):
		writeErr(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrRangeNotSatisfiable):
		writeErr(w, http.StatusRequestedRangeNotSatisfiable, err)
	case errors.Is(err, ErrTooLarge):
		writeErr(w, http.StatusRequestEntityTooLarge, err)
	case errors.Is(err, ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		// The client is gone; the status exists for telemetry only.
		writeErr(w, StatusClientClosedRequest, err)
	case errors.Is(err, ErrDegraded),
		errors.Is(err, ErrOverloaded),
		errors.Is(err, store.ErrSaturated),
		errors.Is(err, store.ErrCircuitOpen):
		// Fast rejections before any trusted state changed: degraded
		// read-only mode, admission shed, or a saturated backend pool.
		// 503 + Retry-After tells well-behaved clients to back off,
		// unlike the 500s below which signal store/integrity trouble.
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrIntegrity), errors.Is(err, ErrRollback):
		writeErr(w, http.StatusInternalServerError, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}

func groupNames(groups []acl.GroupName) []string {
	names := make([]string, len(groups))
	for i, g := range groups {
		names[i] = string(g)
	}
	return names
}
