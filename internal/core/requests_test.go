package core

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"segshare/internal/obs"
)

// newRegistryObs builds a serverObs with the in-flight registry and
// heavy-hitter accounting wired, on a fresh metric registry — enough to
// exercise beginRequest/finishRequest without a full server.
func newRegistryObs(t *testing.T) *serverObs {
	t.Helper()
	o := newServerObs(obs.NewRegistry(), nil)
	o.requests = newRequestRegistry()
	p, err := obs.NewPseudonymizer()
	if err != nil {
		t.Fatal(err)
	}
	o.pseud = p
	o.hot = obs.NewTopK(4)
	return o
}

func TestRequestRegistryLifecycle(t *testing.T) {
	o := newRegistryObs(t)
	rs := &obs.ReqStats{}
	tr := o.beginRequest("fs_get", rs)
	if got := o.requests.size(); got != 1 {
		t.Fatalf("size after begin = %d, want 1", got)
	}

	closeSpan := tr.Span("store_get")
	snap := o.requests.snapshot(0)
	if len(snap) != 1 {
		t.Fatalf("snapshot = %d entries, want 1", len(snap))
	}
	e := snap[0]
	if e.TraceID != tr.ID() || e.Op != "fs_get" || e.Span != "store_get" {
		t.Fatalf("snapshot entry = %+v", e)
	}
	if err := obs.VerifyInFlightRequest(e); err != nil {
		t.Fatalf("VerifyInFlightRequest: %v", err)
	}
	if !obs.IsBucketBound(e.AgeNs) {
		t.Errorf("AgeNs = %d is not a bucket bound", e.AgeNs)
	}
	closeSpan()
	if got := o.requests.snapshot(0)[0].Span; got != "" {
		t.Errorf("span still open after close: %q", got)
	}

	// Group attribution pseudonymizes at tag time: the raw id is never
	// stored, and a later tag (group-targeted mutation) overwrites.
	o.tagRequestGroup(tr, "user:alice")
	o.tagRequestGroup(tr, "group:finance-team")
	a := o.requests.lookup(tr.ID())
	if a == nil {
		t.Fatal("request missing from registry")
	}
	if len(a.hotGroup) != obs.PseudonymLen || strings.Contains(a.hotGroup, "finance") {
		t.Fatalf("stored group tag %q is not a pseudonym", a.hotGroup)
	}
	if a.hotGroup != o.pseud.Pseudonym("group:finance-team") {
		t.Error("later tag did not overwrite the earlier one")
	}

	// finishRequest removes the entry and charges the sketch.
	o.finishRequest("fs_get", 200, time.Millisecond, 10, 20, tr, rs)
	if got := o.requests.size(); got != 0 {
		t.Fatalf("size after finish = %d, want 0", got)
	}
	hot := o.hot.Snapshot()
	if len(hot.Entries) != 1 {
		t.Fatalf("hot entries = %d, want 1", len(hot.Entries))
	}
	if hot.Entries[0].BytesLe < 30 {
		t.Errorf("BytesLe = %d, want >= 30 (10 in + 20 out)", hot.Entries[0].BytesLe)
	}
	if err := obs.VerifyHotStatus(hot); err != nil {
		t.Fatalf("VerifyHotStatus: %v", err)
	}

	// An untagged request finishes without charging anyone.
	tr2 := o.beginRequest("fs_get", rs)
	o.finishRequest("fs_get", 200, time.Millisecond, 5, 5, tr2, rs)
	if got := len(o.hot.Snapshot().Entries); got != 1 {
		t.Fatalf("untagged request grew the sketch to %d entries", got)
	}
}

func TestRequestRegistryOverDeadline(t *testing.T) {
	o := newRegistryObs(t)
	rs := &obs.ReqStats{}
	tr := o.beginRequest("fs_move", rs)
	time.Sleep(2 * time.Millisecond)

	n, oldest, oldestID, op := o.requests.overDeadline(time.Millisecond)
	if n != 1 || oldestID != tr.ID() || op != "fs_move" {
		t.Fatalf("overDeadline = (%d, %v, %d, %q), want the live request", n, oldest, oldestID, op)
	}
	if oldest < time.Millisecond {
		t.Errorf("oldest = %v, want >= 1ms", oldest)
	}
	if n, _, _, _ := o.requests.overDeadline(time.Hour); n != 0 {
		t.Fatalf("hour deadline flagged %d requests", n)
	}
	o.finishRequest("fs_move", 200, time.Millisecond, 0, 0, tr, rs)
	if n, _, _, _ := o.requests.overDeadline(time.Nanosecond); n != 0 {
		t.Fatal("finished request still over deadline")
	}
}

func TestRequestsHandler(t *testing.T) {
	s := &Server{obs: newRegistryObs(t)}
	rs := &obs.ReqStats{}
	var open []*obs.Trace
	for i := 0; i < 3; i++ {
		open = append(open, s.obs.beginRequest("fs_get", rs))
	}

	rec := httptest.NewRecorder()
	s.RequestsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/requests = %d: %s", rec.Code, rec.Body)
	}
	var st inFlightStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != 3 || len(st.Requests) != 3 {
		t.Fatalf("status = count %d / %d listed, want 3/3", st.Count, len(st.Requests))
	}
	for _, r := range st.Requests {
		if err := obs.VerifyInFlightRequest(r); err != nil {
			t.Fatalf("VerifyInFlightRequest over the wire: %v", err)
		}
	}

	// ?n= limits the listing but the count stays total.
	rec = httptest.NewRecorder()
	s.RequestsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests?n=2", nil))
	var limited inFlightStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &limited); err != nil {
		t.Fatal(err)
	}
	if limited.Count != 3 || len(limited.Requests) != 2 {
		t.Fatalf("limited = count %d / %d listed, want 3/2", limited.Count, len(limited.Requests))
	}

	for _, tr := range open {
		s.obs.finishRequest("fs_get", 200, time.Millisecond, 0, 0, tr, rs)
	}

	// With the registry disabled the endpoint says so rather than lying
	// with an empty list.
	disabled := &Server{obs: newServerObs(obs.NewRegistry(), nil)}
	rec = httptest.NewRecorder()
	disabled.RequestsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled registry = %d, want 404", rec.Code)
	}
	if got := disabled.InFlightRequests(0); got != nil {
		t.Fatalf("InFlightRequests on disabled registry = %v, want nil", got)
	}
}
