// Replication: deploys two SeGShare enclaves on different (simulated)
// machines over one central data repository (paper §V-F). The replica
// obtains the root key SK_r from the root enclave via mutual remote
// attestation, after which clients can use either server interchangeably.
package main

import (
	"fmt"
	"log"
	"time"

	"segshare"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	authority, err := segshare.NewCA("Replication Demo CA")
	if err != nil {
		return err
	}

	// The central data repository shared by all replicas.
	contentStore := segshare.NewMemoryStore()
	groupStore := segshare.NewMemoryStore()
	cfg := segshare.ServerConfig{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: contentStore,
		GroupStore:   groupStore,
	}

	// Root enclave on machine A.
	platformA, err := segshare.NewPlatform(segshare.PlatformConfig{})
	if err != nil {
		return err
	}
	serverA, err := segshare.NewServer(platformA, cfg)
	if err != nil {
		return err
	}
	defer serverA.Close()
	if err := segshare.Provision(authority, platformA, serverA, cfg, []string{"localhost"}); err != nil {
		return err
	}
	addrA, err := serverA.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Println("root enclave A serving on", addrA)

	// Replica enclave on machine B: same measured code, different
	// platform, no sealed root key — it must run the §V-F transfer.
	platformB, err := segshare.NewPlatform(segshare.PlatformConfig{})
	if err != nil {
		return err
	}
	provider := segshare.NewReplicationProvider(serverA)
	replicaCfg := cfg
	rootKey, err := segshare.RequestRootKey(platformB, replicaCfg, provider, platformA)
	if err != nil {
		return fmt.Errorf("root key transfer: %w", err)
	}
	fmt.Println("replica B: obtained SK_r via mutual attestation")
	replicaCfg.RootKey = rootKey

	serverB, err := segshare.NewServer(platformB, replicaCfg)
	if err != nil {
		return err
	}
	defer serverB.Close()
	if err := segshare.Provision(authority, platformB, serverB, replicaCfg, []string{"localhost"}); err != nil {
		return err
	}
	addrB, err := serverB.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Println("replica enclave B serving on", addrB)

	// One user, two sessions — one against each replica.
	connect := func(addr string) (*segshare.Client, error) {
		cred, err := authority.IssueClientCertificate(segshare.Identity{UserID: "alice"}, time.Hour)
		if err != nil {
			return nil, err
		}
		return segshare.NewClient(segshare.ClientConfig{
			Addr:       addr,
			CACertPEM:  authority.CertificatePEM(),
			Credential: cred,
		})
	}
	viaA, err := connect(addrA.String())
	if err != nil {
		return err
	}
	defer viaA.Close()
	viaB, err := connect(addrB.String())
	if err != nil {
		return err
	}
	defer viaB.Close()

	if err := viaA.Upload("/cross.txt", []byte("written through A")); err != nil {
		return err
	}
	got, err := viaB.Download("/cross.txt")
	if err != nil {
		return err
	}
	fmt.Printf("read through B: %q\n", got)

	if err := viaB.Upload("/cross.txt", []byte("updated through B")); err != nil {
		return err
	}
	got, err = viaA.Download("/cross.txt")
	if err != nil {
		return err
	}
	fmt.Printf("read through A: %q\n", got)
	fmt.Println("both enclaves serve the same repository with the same SK_r")
	return nil
}
