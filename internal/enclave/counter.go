package enclave

import (
	"errors"
	"time"
)

// ErrCounterWornOut is returned when a monotonic counter has exceeded the
// platform's wear limit, mirroring the fast wear-out of SGX's hardware
// counters the paper cites (§V-E, [63]).
var ErrCounterWornOut = errors.New("enclave: monotonic counter worn out")

// MonotonicCounter is a persisted, strictly increasing counter accessible
// only to enclaves with the owning measurement. SeGShare's whole-file-
// system rollback protection binds each store's root hash to a counter
// value (paper §V-E).
type MonotonicCounter struct {
	enclave *Enclave
	id      counterID
}

// Counter returns the named monotonic counter for this enclave identity,
// creating it at zero on first use.
func (e *Enclave) Counter(name string) *MonotonicCounter {
	id := counterID{measurement: e.measurement, name: name}
	e.platform.mu.Lock()
	defer e.platform.mu.Unlock()
	if _, ok := e.platform.counters[id]; !ok {
		e.platform.counters[id] = &counterState{}
	}
	return &MonotonicCounter{enclave: e, id: id}
}

// Value returns the counter's current value.
func (c *MonotonicCounter) Value() uint64 {
	p := c.enclave.platform
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters[c.id].value
}

// Increment advances the counter by one and returns the new value. It
// simulates the hardware increment latency and enforces the wear limit
// configured on the platform.
func (c *MonotonicCounter) Increment() (uint64, error) {
	p := c.enclave.platform
	if d := p.cfg.CounterIncrementLatency; d > 0 {
		time.Sleep(d)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.counters[c.id]
	if limit := p.cfg.CounterWearLimit; limit > 0 && st.wear >= limit {
		return st.value, ErrCounterWornOut
	}
	st.wear++
	st.value++
	return st.value, nil
}

// Wear returns the number of increments performed on the counter, used by
// tests and the ablation benchmarks.
func (c *MonotonicCounter) Wear() uint64 {
	p := c.enclave.platform
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters[c.id].wear
}
