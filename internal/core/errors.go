// Package core implements SeGShare's enclave: the trusted file manager,
// the access control component, the request handler, and the server that
// wires them to the split TLS interface and the untrusted stores (paper
// §IV, Fig. 1).
package core

import "errors"

// Core errors, matched by handlers and clients with errors.Is.
var (
	// ErrPermissionDenied is returned when the access control component
	// rejects a request (auth_f or auth_g failed).
	ErrPermissionDenied = errors.New("segshare: permission denied")
	// ErrNotFound is returned for requests on absent files/directories.
	ErrNotFound = errors.New("segshare: not found")
	// ErrExists is returned when creating something that already exists.
	ErrExists = errors.New("segshare: already exists")
	// ErrNotEmpty is returned when removing a non-empty directory.
	ErrNotEmpty = errors.New("segshare: directory not empty")
	// ErrIntegrity is returned when stored data fails authenticated
	// decryption — evidence of tampering by the untrusted provider.
	ErrIntegrity = errors.New("segshare: integrity violation")
	// ErrRollback is returned when the rollback-protection tree or the
	// root guard detects stale data.
	ErrRollback = errors.New("segshare: rollback detected")
	// ErrBadRequest is returned for malformed requests.
	ErrBadRequest = errors.New("segshare: bad request")
	// ErrRangeNotSatisfiable is returned when a byte range lies entirely
	// outside the file (HTTP 416).
	ErrRangeNotSatisfiable = errors.New("segshare: range not satisfiable")
	// ErrGroupNotFound is returned for operations on unknown groups.
	ErrGroupNotFound = errors.New("segshare: group not found")
	// ErrDegraded is returned for mutations while the server is in
	// degraded read-only mode: a backend circuit breaker is open and the
	// request was rejected before any trusted state changed (HTTP 503).
	ErrDegraded = errors.New("segshare: degraded read-only mode")
	// ErrOverloaded is returned when admission control sheds a request
	// (queue full, queue timeout, or draining). Like ErrDegraded it is a
	// fast rejection before any trusted state changed (HTTP 503 with
	// Retry-After).
	ErrOverloaded = errors.New("segshare: overloaded")
	// ErrCanceled is returned when the client's request context ends
	// before the operation completes. Mutations only observe it before
	// the journal intent commits — after that the op always finishes —
	// so a canceled request never leaves partial trusted state (HTTP
	// 499, client closed request).
	ErrCanceled = errors.New("segshare: request canceled")
	// ErrTooLarge is returned when a request body exceeds the configured
	// cap (HTTP 413).
	ErrTooLarge = errors.New("segshare: request body too large")
)
