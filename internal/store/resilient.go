package store

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"segshare/internal/obs"
)

// Resilient errors, matched with errors.Is. All three are terminal for
// the attempt that produced them: a deadline or open circuit is never
// retried by the wrapper itself (see the retry-safety notes on do).
var (
	// ErrDeadlineExceeded is returned when a backend operation overran its
	// per-op-class deadline. The operation may still be running in a
	// bounded background worker; only its result is abandoned.
	ErrDeadlineExceeded = errors.New("store: backend deadline exceeded")
	// ErrCircuitOpen is returned when the per-backend circuit breaker
	// rejects a mutation without dispatching it.
	ErrCircuitOpen = errors.New("store: circuit breaker open")
	// ErrSaturated is returned when the bounded worker pool has no free
	// slot: every worker is pinned by an operation that already overran
	// its deadline.
	ErrSaturated = errors.New("store: backend worker pool saturated")
)

// BreakerState is the circuit breaker's position. The zero value is
// closed (healthy).
type BreakerState int32

// Breaker states, in escalation order: closed (normal traffic) → open
// (mutations rejected without dispatch) → half-open (a bounded probe
// budget of mutations may pass to test the backend) → closed again.
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String returns the state's metric-label form (closed set, [a-z_]).
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half_open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// ResilientOptions tunes a Resilient wrapper. The zero value gets
// production defaults; tests inject Now/Sleep for determinism.
type ResilientOptions struct {
	// ReadDeadline bounds Get/Exists/List/TotalBytes (default 5s;
	// negative disables the deadline for the class).
	ReadDeadline time.Duration
	// MutationDeadline bounds Put/Delete/Rename (default 15s; negative
	// disables).
	MutationDeadline time.Duration
	// Retries is how many times a retryable failure is re-attempted after
	// the first try (default 2; negative means 0).
	Retries int
	// RetryBase is the exponential backoff base; attempt n sleeps a
	// uniform random duration in [0, min(RetryBase<<n, RetryMax)] — full
	// jitter (default 5ms).
	RetryBase time.Duration
	// RetryMax caps one backoff sleep (default 250ms).
	RetryMax time.Duration
	// BreakerThreshold is how many consecutive countable failures of one
	// op class trip the breaker open (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before the next
	// mutation attempt transitions it to half-open (default 3s).
	BreakerCooldown time.Duration
	// BreakerProbes is both the number of concurrently admitted half-open
	// probe mutations and the consecutive probe successes required to
	// close (default 2).
	BreakerProbes int
	// Workers bounds the background worker pool that executes backend
	// calls so deadline-abandoned operations cannot pin unbounded
	// goroutines (default 16).
	Workers int
	// Obs receives the wrapper's metrics (nil = obs.Default()).
	Obs *obs.Registry
	// OnState, when non-nil, observes every breaker transition. Called
	// outside the breaker lock, in transition order.
	OnState func(from, to BreakerState)
	// Now overrides the clock for cooldown arithmetic (tests).
	Now func() time.Time
	// Sleep overrides the backoff sleep (tests).
	Sleep func(time.Duration)
}

func (o ResilientOptions) withDefaults() ResilientOptions {
	if o.ReadDeadline == 0 {
		o.ReadDeadline = 5 * time.Second
	}
	if o.MutationDeadline == 0 {
		o.MutationDeadline = 15 * time.Second
	}
	switch {
	case o.Retries < 0:
		o.Retries = 0
	case o.Retries == 0:
		o.Retries = 2
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 5 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 250 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 3 * time.Second
	}
	if o.BreakerProbes <= 0 {
		o.BreakerProbes = 2
	}
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Resilient wraps a Backend with the I/O discipline a remote store
// needs: per-op-class deadlines enforced through a bounded worker pool,
// retry with exponential backoff and full jitter for retryable errors
// only, and a per-backend circuit breaker. It composes with the other
// wrappers in the usual Unwrapper idiom; the server wraps
// Instrumented(Resilient(raw)) so the measured latency includes retries
// and deadline waits.
//
// # Retry safety, per operation
//
// Get/Exists/List/TotalBytes are reads — always safe. Put is a full
// overwrite — idempotent. A retried Delete that finds the object gone
// (ErrNotExist on attempt > 0) is treated as success: the previous
// attempt applied before its error surfaced. Rename is safe to retry
// because every Backend implements idempotent completion (retrying a
// partially-applied rename — both names present with equal payloads —
// finishes it); a retry of a fully-applied rename surfaces
// ErrNotExist/ErrExist, which the caller's own existence checks
// disambiguate. A deadline expiry is NEVER retried for any class: the
// abandoned attempt may still apply in its background worker, and a
// concurrent second dispatch could reorder writes.
type Resilient struct {
	inner Backend
	role  string
	opt   ResilientOptions

	sem chan struct{}

	mu           sync.Mutex
	state        BreakerState
	consecFails  [2]int // indexed by opClass
	openedAt     time.Time
	probeBusy    int
	probeSuccess int

	retriesC     *obs.Counter
	deadlinesC   *obs.Counter
	saturatedC   *obs.Counter
	canceledC    *obs.Counter
	transitionsC map[BreakerState]*obs.Counter
	stateG       *obs.Gauge
}

var (
	_ Backend       = (*Resilient)(nil)
	_ Unwrapper     = (*Resilient)(nil)
	_ ContextGetter = (*Resilient)(nil)
	_ ContextGetter = (*Instrumented)(nil)
)

type opClass int

const (
	classRead opClass = iota
	classMutation
)

// NewResilient wraps inner for the given store role ("content", "group",
// "dedup" — a compile-time set, so the metric label stays inside the
// leak budget).
func NewResilient(inner Backend, role string, opt ResilientOptions) *Resilient {
	opt = opt.withDefaults()
	reg := opt.Obs
	if reg == nil {
		reg = obs.Default()
	}
	roleLabel := obs.Labels{"store": role}
	r := &Resilient{
		inner: inner,
		role:  role,
		opt:   opt,
		sem:   make(chan struct{}, opt.Workers),
		retriesC: reg.Counter("segshare_store_retries_total",
			"Backend operations re-attempted after a retryable failure.", roleLabel),
		deadlinesC: reg.Counter("segshare_store_deadline_exceeded_total",
			"Backend operations abandoned past their per-op-class deadline.", roleLabel),
		saturatedC: reg.Counter("segshare_store_saturated_total",
			"Backend operations rejected because the bounded worker pool was full.", roleLabel),
		canceledC: reg.Counter("segshare_store_canceled_total",
			"Backend operations abandoned because the request context ended first.", roleLabel),
		transitionsC: make(map[BreakerState]*obs.Counter, 3),
		stateG: reg.Gauge("segshare_store_breaker_state",
			"Circuit breaker position: 0 closed, 1 half-open, 2 open.", roleLabel),
	}
	for _, st := range []BreakerState{BreakerClosed, BreakerHalfOpen, BreakerOpen} {
		r.transitionsC[st] = reg.Counter("segshare_store_breaker_transitions_total",
			"Circuit breaker transitions by destination state.",
			obs.Labels{"store": role, "to": st.String()})
	}
	return r
}

// Unwrap returns the wrapped backend.
func (r *Resilient) Unwrap() Backend { return r.inner }

// Role returns the store role this wrapper was created for.
func (r *Resilient) Role() string { return r.role }

// State returns the breaker's current position without side effects
// (the lazy open→half-open transition happens only on admission).
func (r *Resilient) State() BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// MutationsAllowed is the server's degraded-mode preflight: it reports
// whether a mutation reaching this backend right now would be admitted,
// performing the lazy open→half-open transition when the cooldown has
// elapsed. The caller that gets true must actually send the mutation —
// that is what consumes a probe slot and lets the breaker close again;
// gating all mutations on State() alone would deadlock the recovery.
func (r *Resilient) MutationsAllowed() bool {
	r.mu.Lock()
	notify := r.maybeHalfOpenLocked()
	allowed := r.state == BreakerClosed ||
		(r.state == BreakerHalfOpen && r.probeBusy < r.opt.BreakerProbes)
	r.mu.Unlock()
	r.fire(notify)
	return allowed
}

// maybeHalfOpenLocked performs the lazy open→half-open transition once
// the cooldown elapsed. Caller holds r.mu; returned transitions must be
// fired after unlock.
func (r *Resilient) maybeHalfOpenLocked() []breakerTransition {
	if r.state == BreakerOpen && r.opt.Now().Sub(r.openedAt) >= r.opt.BreakerCooldown {
		return r.transitionLocked(BreakerHalfOpen)
	}
	return nil
}

type breakerTransition struct{ from, to BreakerState }

func (r *Resilient) transitionLocked(to BreakerState) []breakerTransition {
	from := r.state
	if from == to {
		return nil
	}
	r.state = to
	r.stateG.Set(stateGaugeValue(to))
	r.transitionsC[to].Inc()
	switch to {
	case BreakerOpen:
		r.openedAt = r.opt.Now()
		r.probeSuccess = 0
	case BreakerHalfOpen:
		r.probeSuccess = 0
	case BreakerClosed:
		r.consecFails = [2]int{}
		r.probeSuccess = 0
	}
	return []breakerTransition{{from: from, to: to}}
}

func stateGaugeValue(s BreakerState) int64 {
	switch s {
	case BreakerHalfOpen:
		return 1
	case BreakerOpen:
		return 2
	default:
		return 0
	}
}

// fire delivers transition notifications outside the breaker lock.
func (r *Resilient) fire(ts []breakerTransition) {
	if r.opt.OnState == nil {
		return
	}
	for _, t := range ts {
		r.opt.OnState(t.from, t.to)
	}
}

// admit decides whether to dispatch one logical operation. Reads always
// pass (an open breaker must not block cache fills or journal-recovery
// reads); mutations consume a probe slot in half-open and are rejected
// outright while open.
func (r *Resilient) admit(class opClass) (probe bool, err error) {
	if class == classRead {
		return false, nil
	}
	r.mu.Lock()
	notify := r.maybeHalfOpenLocked()
	switch r.state {
	case BreakerClosed:
	case BreakerOpen:
		err = fmt.Errorf("%w: %s store", ErrCircuitOpen, r.role)
	case BreakerHalfOpen:
		if r.probeBusy >= r.opt.BreakerProbes {
			err = fmt.Errorf("%w: %s store (probe budget exhausted)", ErrCircuitOpen, r.role)
		} else {
			r.probeBusy++
			probe = true
		}
	}
	r.mu.Unlock()
	r.fire(notify)
	return probe, err
}

// settle records one logical operation's final outcome on the breaker.
// Semantic results (ErrNotExist/ErrExist) are backend health signals of
// success, not failure — and so is a caller-side context cancellation,
// which says nothing about backend health.
func (r *Resilient) settle(class opClass, probe bool, err error) {
	failure := err != nil && !errors.Is(err, ErrNotExist) && !errors.Is(err, ErrExist) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	r.mu.Lock()
	var notify []breakerTransition
	if probe {
		r.probeBusy--
	}
	switch r.state {
	case BreakerClosed:
		if failure {
			r.consecFails[class]++
			if r.consecFails[class] >= r.opt.BreakerThreshold {
				notify = r.transitionLocked(BreakerOpen)
			}
		} else {
			r.consecFails[class] = 0
		}
	case BreakerHalfOpen:
		// Only admitted probes decide the half-open verdict; reads flow
		// freely and a read-class success must not close a breaker that
		// opened on failing mutations.
		if probe {
			if failure {
				notify = r.transitionLocked(BreakerOpen)
			} else {
				r.probeSuccess++
				if r.probeSuccess >= r.opt.BreakerProbes {
					notify = r.transitionLocked(BreakerClosed)
				}
			}
		}
	case BreakerOpen:
		// Outcomes of reads (and of mutations admitted before the trip)
		// don't move an open breaker; only the cooldown does.
	}
	r.mu.Unlock()
	r.fire(notify)
}

// dispatch runs fn in a bounded worker and waits for it up to the
// class deadline. On expiry the worker keeps running (it still holds
// its pool slot until fn returns) but the caller gets its budget back.
func (r *Resilient) dispatch(op string, deadline time.Duration, fn func() error) error {
	return r.dispatchCtx(nil, op, deadline, fn)
}

// dispatchCtx is dispatch with an optional caller context: when ctx ends
// before fn completes, the caller stops waiting (the worker keeps its
// pool slot until fn returns, exactly like a deadline expiry) and gets a
// context error back. A nil ctx waits on the deadline alone.
func (r *Resilient) dispatchCtx(ctx context.Context, op string, deadline time.Duration, fn func() error) error {
	select {
	case r.sem <- struct{}{}:
	default:
		r.saturatedC.Inc()
		return fmt.Errorf("%w: %s %s", ErrSaturated, r.role, op)
	}
	done := make(chan error, 1)
	go func() {
		defer func() { <-r.sem }()
		done <- fn()
	}()
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	var timerC <-chan time.Time
	if deadline > 0 {
		timer := time.NewTimer(deadline)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case err := <-done:
		return err
	case <-timerC:
		r.deadlinesC.Inc()
		return fmt.Errorf("%w: %s %s after %v", ErrDeadlineExceeded, r.role, op, deadline)
	case <-ctxDone:
		r.canceledC.Inc()
		return fmt.Errorf("store: %s %s canceled: %w", r.role, op, context.Cause(ctx))
	}
}

// retryable reports whether a failed attempt may be re-dispatched.
// Semantic results are final; deadline expiries must not be retried
// (the attempt may still apply — see the type comment); an open circuit
// is rejected before dispatch and retrying it would only spin; a
// context cancellation means the caller is gone — retrying would burn a
// worker slot for a result nobody reads.
func retryable(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, ErrNotExist),
		errors.Is(err, ErrExist),
		errors.Is(err, ErrDeadlineExceeded),
		errors.Is(err, ErrCircuitOpen),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// do runs one logical backend operation: breaker admission, then up to
// 1+Retries dispatch attempts with full-jitter backoff between them,
// then one breaker settlement with the final outcome.
func (r *Resilient) do(op string, class opClass, fn func() error) error {
	return r.doCtx(nil, op, class, fn)
}

// doCtx is do with an optional caller context threaded into each
// dispatch. A cancellation is terminal (never retried) and settles the
// breaker as a non-failure.
func (r *Resilient) doCtx(ctx context.Context, op string, class opClass, fn func() error) error {
	probe, err := r.admit(class)
	if err != nil {
		return err
	}
	deadline := r.opt.ReadDeadline
	if class == classMutation {
		deadline = r.opt.MutationDeadline
	}
	for attempt := 0; ; attempt++ {
		err = r.dispatchCtx(ctx, op, deadline, fn)
		if err == nil || attempt >= r.opt.Retries || !retryable(err) {
			break
		}
		r.retriesC.Inc()
		r.opt.Sleep(r.backoff(attempt))
	}
	if op == "delete" && err != nil && errors.Is(err, ErrNotExist) && r.deleteAppliedEarlier(err) {
		err = nil
	}
	r.settle(class, probe, err)
	return err
}

// backoff returns the full-jitter sleep before re-attempt n+1:
// uniform in [0, min(RetryBase<<n, RetryMax)].
func (r *Resilient) backoff(attempt int) time.Duration {
	ceil := r.opt.RetryBase << uint(attempt)
	if ceil > r.opt.RetryMax || ceil <= 0 {
		ceil = r.opt.RetryMax
	}
	return time.Duration(rand.Int63n(int64(ceil) + 1))
}

// deleteAppliedEarlier reports whether an ErrNotExist from Delete is the
// echo of an earlier attempt of the same logical call that applied
// before its error surfaced. Tracked per call via the retried marker.
func (r *Resilient) deleteAppliedEarlier(err error) bool {
	var m *retriedMarker
	return errors.As(err, &m)
}

// retriedMarker wraps an error returned by a retry attempt (attempt>0)
// so post-loop policy can distinguish "first answer" from "answer after
// the backend already absorbed an attempt".
type retriedMarker struct{ err error }

func (m *retriedMarker) Error() string { return m.err.Error() }
func (m *retriedMarker) Unwrap() error { return m.err }

// Put implements Backend.
func (r *Resilient) Put(name string, data []byte) error {
	return r.do("put", classMutation, func() error { return r.inner.Put(name, data) })
}

// Get implements Backend.
func (r *Resilient) Get(name string) ([]byte, error) {
	return r.GetContext(nil, name)
}

// GetContext implements ContextGetter: a Get whose wait is additionally
// bounded by the caller's context. The inner backend call is not
// interrupted — it runs to completion in its bounded worker — but the
// caller stops waiting, stops retrying, and the abandoned result is
// dropped.
func (r *Resilient) GetContext(ctx context.Context, name string) ([]byte, error) {
	var out []byte
	err := r.doCtx(ctx, "get", classRead, func() error {
		data, err := r.inner.Get(name)
		if err != nil {
			return err
		}
		out = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Delete implements Backend. An ErrNotExist surfaced by a retry attempt
// — after an earlier attempt of the same call already reached the
// backend — reports success: the delete applied, only its first
// acknowledgment was lost.
func (r *Resilient) Delete(name string) error {
	attempts := 0
	return r.do("delete", classMutation, func() error {
		attempts++
		err := r.inner.Delete(name)
		if attempts > 1 && err != nil && errors.Is(err, ErrNotExist) {
			return &retriedMarker{err: err}
		}
		return err
	})
}

// Rename implements Backend. Safe to retry because every Backend
// completes a partially-applied rename idempotently (equal payloads
// under both names → finish by removing the old one).
func (r *Resilient) Rename(oldName, newName string) error {
	return r.do("rename", classMutation, func() error { return r.inner.Rename(oldName, newName) })
}

// Exists implements Backend.
func (r *Resilient) Exists(name string) (bool, error) {
	var out bool
	err := r.do("exists", classRead, func() error {
		ok, err := r.inner.Exists(name)
		out = ok
		return err
	})
	return out, err
}

// List implements Backend.
func (r *Resilient) List() ([]string, error) {
	var out []string
	err := r.do("list", classRead, func() error {
		names, err := r.inner.List()
		out = names
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TotalBytes implements Backend.
func (r *Resilient) TotalBytes() (int64, error) {
	var out int64
	err := r.do("bytes", classRead, func() error {
		n, err := r.inner.TotalBytes()
		out = n
		return err
	})
	return out, err
}
