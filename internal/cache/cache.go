// Package cache is a size-bounded, generation-tagged in-enclave cache
// with CLOCK (second-chance) eviction. SeGShare uses it to keep
// *decrypted and validated* relation objects — the group list, member
// lists, ACLs, directory bodies — and derived per-file keys inside the
// enclave, so repeat authorization checks do not re-fetch and re-decrypt
// the same small files from untrusted storage (cf. IBBE-SGX, which makes
// the same observation for SGX group access control).
//
// # Safety model
//
// Enclave memory is trusted: a value that was loaded, decrypted, and
// rollback-validated once may be served again without re-validation
// until a mutation invalidates it. Two mechanisms keep stale state out:
//
//  1. Write-through invalidation. Every mutation path deletes the keys
//     it rewrote *after* the backing store write completes, so the next
//     read misses and reloads the new state.
//  2. Generation tags. Loaders capture Gen() before touching the backing
//     store and pass it to Put; Put rejects the insert if any
//     invalidation happened in between. A slow reader that decrypted a
//     pre-mutation value can therefore never resurrect it into the
//     cache after the mutation's invalidation ran.
//
// Values are shared between callers; callers that mutate loaded objects
// must clone on Get (the typed accessors in internal/core do).
//
// The cache is safe for concurrent use. Get takes only a read lock —
// the CLOCK reference bit is atomic — so concurrent readers never
// serialize against each other on the hot hit path.
package cache

import (
	"sync"
	"sync/atomic"
)

// entry is one cached value with its CLOCK state.
type entry[V any] struct {
	key  string
	val  V
	cost int64
	ref  atomic.Bool // CLOCK second-chance bit, set on Get
	dead bool        // invalidated; skipped and reclaimed by the hand
}

// Hooks are optional event callbacks, e.g. to feed metric counters.
// Any field may be nil. Hit and Miss run outside the cache's locks;
// Evict and Size run under the write lock and must be cheap and must
// not call back into the cache.
type Hooks struct {
	Hit   func()
	Miss  func()
	Evict func()
	// Size receives the occupancy after every mutating call.
	Size func(entries int, cost int64)
}

// Cache is a size-bounded map from string keys to values of type V.
// The zero value is not usable; call New. A nil *Cache is valid and
// behaves as an always-miss cache, so callers can disable caching
// without branching.
type Cache[V any] struct {
	mu       sync.RWMutex
	capacity int64
	used     int64
	entries  map[string]*entry[V]
	ring     []*entry[V] // CLOCK ring; may contain dead entries
	hand     int
	gen      atomic.Uint64
	hooks    Hooks

	hits, misses, evictions atomic.Uint64
}

// New returns a cache bounded to capacity cost units (typically bytes of
// decoded value). A capacity <= 0 returns nil: the always-miss cache.
// At most one Hooks value may be passed.
func New[V any](capacity int64, hooks ...Hooks) *Cache[V] {
	if capacity <= 0 {
		return nil
	}
	c := &Cache[V]{
		capacity: capacity,
		entries:  make(map[string]*entry[V]),
	}
	if len(hooks) > 0 {
		c.hooks = hooks[0]
	}
	return c
}

// Gen returns the current generation. Capture it *before* reading the
// backing store and pass it to Put; see the package doc.
func (c *Cache[V]) Gen() uint64 {
	if c == nil {
		return 0
	}
	return c.gen.Load()
}

// Get returns the cached value for key. The returned value is shared;
// callers that mutate it must clone first.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.RLock()
	e, ok := c.entries[key]
	if ok {
		e.ref.Store(true)
	}
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		if c.hooks.Miss != nil {
			c.hooks.Miss()
		}
		return zero, false
	}
	c.hits.Add(1)
	if c.hooks.Hit != nil {
		c.hooks.Hit()
	}
	return e.val, true
}

// Put inserts key with the given cost, evicting CLOCK victims as needed.
// The insert is rejected (returning false) when gen is stale — an
// invalidation ran after the caller captured it — or when a single value
// exceeds the whole capacity.
func (c *Cache[V]) Put(key string, val V, cost int64, gen uint64) bool {
	if c == nil || cost > c.capacity {
		return false
	}
	if cost < 1 {
		cost = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen.Load() {
		return false
	}
	if old, ok := c.entries[key]; ok {
		c.removeEntry(old)
	}
	for c.used+cost > c.capacity {
		if !c.evictOne() {
			return false // nothing evictable left (all dead slots drained)
		}
	}
	e := &entry[V]{key: key, val: val, cost: cost}
	c.entries[key] = e
	c.ring = append(c.ring, e)
	c.used += cost
	c.notifySize()
	return true
}

// Invalidate removes key and bumps the generation so in-flight loads of
// the old value cannot be inserted afterwards. It must be called after
// the backing-store mutation completed (invalidate-last ordering).
func (c *Cache[V]) Invalidate(key string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.removeEntry(e)
	}
	c.gen.Add(1)
	c.notifySize()
	c.mu.Unlock()
}

// Flush drops every entry and bumps the generation. Whole-tree
// operations (backup restoration, group deletion sweeps) use it instead
// of enumerating keys.
func (c *Cache[V]) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = make(map[string]*entry[V])
	c.ring = c.ring[:0]
	c.hand = 0
	c.used = 0
	c.gen.Add(1)
	c.notifySize()
	c.mu.Unlock()
}

// notifySize reports occupancy to the Size hook. Caller holds mu.
func (c *Cache[V]) notifySize() {
	if c.hooks.Size != nil {
		c.hooks.Size(len(c.entries), c.used)
	}
}

// removeEntry unlinks e from the map and accounting; the ring slot is
// reclaimed lazily when the hand passes it. Caller holds mu.
func (c *Cache[V]) removeEntry(e *entry[V]) {
	delete(c.entries, e.key)
	if !e.dead {
		e.dead = true
		c.used -= e.cost
	}
}

// evictOne advances the CLOCK hand: dead slots are compacted away,
// referenced entries get a second chance, and the first unreferenced
// live entry is evicted. Caller holds mu. Returns false when the ring
// holds no live entries.
func (c *Cache[V]) evictOne() bool {
	for sweep := 0; len(c.ring) > 0; {
		if c.hand >= len(c.ring) {
			c.hand = 0
			sweep++
			if sweep > 2 { // all live entries referenced twice over: give up
				return false
			}
		}
		e := c.ring[c.hand]
		if e.dead {
			c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
			continue
		}
		if e.ref.Swap(false) {
			c.hand++
			continue
		}
		c.removeEntry(e)
		c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
		c.evictions.Add(1)
		if c.hooks.Evict != nil {
			c.hooks.Evict()
		}
		return true
	}
	return false
}

// Stats is a point-in-time snapshot of the cache's counters and size.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Cost      int64
	Capacity  int64
}

// HitRate returns Hits/(Hits+Misses) in [0,1], or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the current counters and occupancy.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   len(c.entries),
		Cost:      c.used,
		Capacity:  c.capacity,
	}
}
