package store

import (
	"context"
	"time"

	"segshare/internal/obs"
)

// Instrumented wraps a Backend and records per-operation latency, byte
// traffic, and error counts into an obs.Registry. The role label names
// which of SeGShare's three stores the backend serves ("content",
// "group", "dedup"); the set of roles is a compile-time constant, so
// the label stays inside the leak budget — and the operations themselves
// are executed *by* the untrusted host, which therefore learns nothing
// from their aggregate timing that it could not measure itself.
//
// Instrumented composes with the adversarial wrappers in either order:
// Instrumented(Faulty(Memory)) measures the latency the trusted side
// experiences including injected faults, while Faulty(Instrumented(...))
// measures only the successful backend calls.
type Instrumented struct {
	inner Backend

	opNS      map[string]*obs.Histogram
	opErrs    map[string]*obs.Counter
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
	objsTotal *obs.Gauge
}

var (
	_ Backend   = (*Instrumented)(nil)
	_ Unwrapper = (*Instrumented)(nil)
)

// instrumentedOps is the closed set of Backend operations.
var instrumentedOps = []string{"put", "get", "delete", "rename", "exists", "list", "bytes"}

// NewInstrumented wraps inner, reporting into reg (obs.Default() when
// nil) under the given role.
func NewInstrumented(inner Backend, role string, reg *obs.Registry) *Instrumented {
	if reg == nil {
		reg = obs.Default()
	}
	roleLabel := obs.Labels{"store": role}
	i := &Instrumented{
		inner:     inner,
		opNS:      make(map[string]*obs.Histogram, len(instrumentedOps)),
		opErrs:    make(map[string]*obs.Counter, len(instrumentedOps)),
		bytesIn:   reg.Counter("segshare_store_write_bytes_total", "Ciphertext bytes written to the untrusted backend.", roleLabel),
		bytesOut:  reg.Counter("segshare_store_read_bytes_total", "Ciphertext bytes read from the untrusted backend.", roleLabel),
		objsTotal: reg.Gauge("segshare_store_object_delta", "Net object count change observed through this wrapper.", roleLabel),
	}
	for _, op := range instrumentedOps {
		labels := obs.Labels{"store": role, "op": op}
		i.opNS[op] = reg.Histogram("segshare_store_op_ns", "Untrusted backend operation latency (ns).", labels)
		i.opErrs[op] = reg.Counter("segshare_store_errors_total", "Untrusted backend operations returning an error.", labels)
	}
	return i
}

// Unwrap returns the wrapped backend.
func (i *Instrumented) Unwrap() Backend { return i.inner }

func (i *Instrumented) observe(op string, start time.Time, err error) {
	i.opNS[op].ObserveDuration(time.Since(start))
	if err != nil {
		i.opErrs[op].Inc()
	}
}

// Put implements Backend.
func (i *Instrumented) Put(name string, data []byte) error {
	start := time.Now()
	err := i.inner.Put(name, data)
	i.observe("put", start, err)
	if err == nil {
		i.bytesIn.Add(uint64(len(data)))
		i.objsTotal.Add(1)
	}
	return err
}

// Get implements Backend.
func (i *Instrumented) Get(name string) ([]byte, error) {
	start := time.Now()
	data, err := i.inner.Get(name)
	i.observe("get", start, err)
	if err == nil {
		i.bytesOut.Add(uint64(len(data)))
	}
	return data, err
}

// GetContext forwards to the inner backend's ContextGetter when it has
// one, falling back to a plain (uninterruptible) Get, so the ctx-aware
// read path composes through the usual Instrumented(Resilient(raw))
// stack.
func (i *Instrumented) GetContext(ctx context.Context, name string) ([]byte, error) {
	cg, ok := i.inner.(ContextGetter)
	if !ok {
		return i.Get(name)
	}
	start := time.Now()
	data, err := cg.GetContext(ctx, name)
	i.observe("get", start, err)
	if err == nil {
		i.bytesOut.Add(uint64(len(data)))
	}
	return data, err
}

// Delete implements Backend.
func (i *Instrumented) Delete(name string) error {
	start := time.Now()
	err := i.inner.Delete(name)
	i.observe("delete", start, err)
	if err == nil {
		i.objsTotal.Add(-1)
	}
	return err
}

// Rename implements Backend.
func (i *Instrumented) Rename(oldName, newName string) error {
	start := time.Now()
	err := i.inner.Rename(oldName, newName)
	i.observe("rename", start, err)
	return err
}

// Exists implements Backend.
func (i *Instrumented) Exists(name string) (bool, error) {
	start := time.Now()
	ok, err := i.inner.Exists(name)
	i.observe("exists", start, err)
	return ok, err
}

// List implements Backend.
func (i *Instrumented) List() ([]string, error) {
	start := time.Now()
	names, err := i.inner.List()
	i.observe("list", start, err)
	return names, err
}

// TotalBytes implements Backend.
func (i *Instrumented) TotalBytes() (int64, error) {
	start := time.Now()
	n, err := i.inner.TotalBytes()
	i.observe("bytes", start, err)
	return n, err
}
