package obs

import "time"

// WideEvent is the one canonical structured event emitted per request at
// the handler chokepoint: everything an operator needs to answer "why
// was this request slow" in a single record, joinable to the sampled
// trace and the audit trail through the trace id.
//
// # Leak budget
//
// A wide event crosses the enclave boundary (log line, JSONL export,
// HTTP sink), so every field belongs to exactly one of five closed
// classes, enumerated in WideEventFields and enforced by the meta-test:
//
//   - enum: a value from a small compile-time set (operation class,
//     status class), checked against the label-value rules.
//   - bucketed: a numeric rounded UP to its log₂ bucket upper bound
//     before it enters the struct — durations, sizes, and counts export
//     only their magnitude, the same granularity as the histograms.
//   - id: the request's trace id, a server-assigned sequence number
//     carrying no request content.
//   - time: the emission timestamp, millisecond precision (the host
//     observes request timing anyway).
//   - flag: a boolean derived from exported policy state (sampled).
//
// There is no string field that can carry request data: no path, user,
// group, header, or error text can enter a wide event by construction.
type WideEvent struct {
	// TimeUnixMs is the emission time (class: time).
	TimeUnixMs int64 `json:"ts"`
	// TraceID joins the event to /debug/traces and audit records
	// (class: id).
	TraceID uint64 `json:"traceId"`
	// Op is the operation class (class: enum).
	Op string `json:"op"`
	// Code is the status class, "1xx".."5xx" (class: enum).
	Code string `json:"code"`
	// Sampled reports whether the trace ring retained the full span tree
	// (class: flag).
	Sampled bool `json:"sampled"`
	// Degraded reports whether the request ran while the server was in
	// degraded read-only mode — derived from exported breaker state, the
	// same bit segshare_store_breaker_state and /readyz already publish
	// (class: flag).
	Degraded bool `json:"degraded"`

	// Every numeric below is a log₂ bucket upper bound (class: bucketed).
	DurationNs      uint64 `json:"durationNsLe"`
	BytesIn         uint64 `json:"bytesInLe"`
	BytesOut        uint64 `json:"bytesOutLe"`
	LockWaitNs      uint64 `json:"lockWaitNsLe"`
	CacheHits       uint64 `json:"cacheHitsLe"`
	CacheMisses     uint64 `json:"cacheMissesLe"`
	Ecalls          uint64 `json:"ecallsLe"`
	Ocalls          uint64 `json:"ocallsLe"`
	StoreOps        uint64 `json:"storeOpsLe"`
	JournalCommitNs uint64 `json:"journalCommitNsLe"`
	AuditEnqueueNs  uint64 `json:"auditEnqueueNsLe"`
}

// FieldClass is the leak-budget class of one WideEvent field.
type FieldClass string

// The closed set of wide-event field classes. The introspection
// surfaces added on top of wide events (SLO status, in-flight registry,
// top-k export, profiler index) reuse this vocabulary and extend it
// with four classes that carry no more than the originals:
//
//   - config: a deployment-time constant (objective, threshold, k) —
//     operator-chosen, never derived from request data.
//   - rate: a milli-scaled ratio of two already-exported aggregate
//     counts; it reveals nothing the counts do not.
//   - pseudonym: a fixed-length keyed pseudonym (per-process random
//     HMAC key, truncated) — stable within one boot for joining, but
//     unlinkable to the underlying identity and across restarts.
//   - nested: a slice/struct whose own fields are classified in their
//     own field map.
const (
	FieldEnum      FieldClass = "enum"
	FieldBucketed  FieldClass = "bucketed"
	FieldID        FieldClass = "id"
	FieldTime      FieldClass = "time"
	FieldFlag      FieldClass = "flag"
	FieldConfig    FieldClass = "config"
	FieldRate      FieldClass = "rate"
	FieldPseudonym FieldClass = "pseudonym"
	FieldNested    FieldClass = "nested"
)

// WideEventFields maps every WideEvent struct field name to its class.
// The meta-test reflects over WideEvent and fails if a field is missing
// here or carries a class its value does not satisfy — adding a field
// without classifying it breaks the build gate.
var WideEventFields = map[string]FieldClass{
	"TimeUnixMs":      FieldTime,
	"TraceID":         FieldID,
	"Op":              FieldEnum,
	"Code":            FieldEnum,
	"Sampled":         FieldFlag,
	"Degraded":        FieldFlag,
	"DurationNs":      FieldBucketed,
	"BytesIn":         FieldBucketed,
	"BytesOut":        FieldBucketed,
	"LockWaitNs":      FieldBucketed,
	"CacheHits":       FieldBucketed,
	"CacheMisses":     FieldBucketed,
	"Ecalls":          FieldBucketed,
	"Ocalls":          FieldBucketed,
	"StoreOps":        FieldBucketed,
	"JournalCommitNs": FieldBucketed,
	"AuditEnqueueNs":  FieldBucketed,
}

// BucketCeil rounds v up to the inclusive upper bound of its log₂
// bucket — the only transformation through which a raw per-request
// numeric may enter a wide event.
func BucketCeil(v int64) uint64 {
	if v <= 0 {
		return 0
	}
	return BucketUpperBound(BucketIndex(uint64(v)))
}

// IsBucketBound reports whether v is a value BucketCeil can produce,
// i.e. a log₂ bucket upper bound. The meta-test uses it.
func IsBucketBound(v uint64) bool {
	return v == BucketUpperBound(BucketIndex(v))
}

// NewWideEvent assembles the canonical event from raw measurements,
// bucketing every numeric. op and code must come from closed sets — the
// enum check still runs in VerifyWideEvent, this constructor just
// shapes the data.
func NewWideEvent(op, code string, traceID uint64, sampled bool, dur time.Duration, bytesIn, bytesOut int64, rs *ReqStats) WideEvent {
	ecalls, ocalls := rs.BridgeCalls()
	return WideEvent{
		TimeUnixMs:      time.Now().UnixMilli(),
		TraceID:         traceID,
		Op:              op,
		Code:            code,
		Sampled:         sampled,
		Degraded:        rs.Degraded(),
		DurationNs:      BucketCeil(int64(dur)),
		BytesIn:         BucketCeil(bytesIn),
		BytesOut:        BucketCeil(bytesOut),
		LockWaitNs:      BucketCeil(rs.LockWaitNs()),
		CacheHits:       BucketCeil(rs.CacheHits()),
		CacheMisses:     BucketCeil(rs.CacheMisses()),
		Ecalls:          BucketCeil(ecalls),
		Ocalls:          BucketCeil(ocalls),
		StoreOps:        BucketCeil(rs.StoreOps()),
		JournalCommitNs: BucketCeil(rs.JournalCommitNs()),
		AuditEnqueueNs:  BucketCeil(rs.AuditEnqueueNs()),
	}
}

// VerifyWideEvent checks one event against the leak budget: enum fields
// must satisfy the label-value rules and every bucketed field must hold
// a log₂ bucket bound. The meta-test runs it over events produced by a
// real workload; emitting paths may also assert with it in debug builds.
func VerifyWideEvent(ev WideEvent) error {
	if err := verifyLabelValue(ev.Op); err != nil {
		return err
	}
	if err := verifyLabelValue(ev.Code); err != nil {
		return err
	}
	for name, v := range map[string]uint64{
		"DurationNs": ev.DurationNs, "BytesIn": ev.BytesIn, "BytesOut": ev.BytesOut,
		"LockWaitNs": ev.LockWaitNs, "CacheHits": ev.CacheHits, "CacheMisses": ev.CacheMisses,
		"Ecalls": ev.Ecalls, "Ocalls": ev.Ocalls, "StoreOps": ev.StoreOps,
		"JournalCommitNs": ev.JournalCommitNs, "AuditEnqueueNs": ev.AuditEnqueueNs,
	} {
		if !IsBucketBound(v) {
			return &wideFieldError{field: name}
		}
	}
	return nil
}

type wideFieldError struct{ field string }

func (e *wideFieldError) Error() string {
	return "obs: wide event field " + e.field + " holds a raw value, not a log2 bucket bound"
}
