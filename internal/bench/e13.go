package bench

import (
	"fmt"
	"os"
	"time"

	"segshare/internal/core"
	"segshare/internal/obs"
)

// E13 — introspection overhead (DESIGN.md §13). The SLO engine, the
// in-flight request registry, per-group heavy-hitter accounting, and
// the continuous profiler all ride the request path added in this PR:
// every request registers and deregisters itself, feeds the burn rings,
// and charges the top-k sketch, while the profiler periodically stops
// the world for a CPU sample. This experiment measures what the whole
// introspection layer costs over the E12 wide-events baseline, with the
// same corpus, measurement loop, and interleaved best-of-N methodology.
// The budget is <= 2 % additional request CPU.

// E13Config parameterizes the introspection-overhead experiment.
type E13Config struct {
	// Clients holds the concurrency levels to sweep.
	Clients []int
	// Ops is the number of operations each client performs per cell.
	Ops int
	// FileSize is the content size of every file in the corpus.
	FileSize int
	// Reps repeats each cell and keeps the best throughput (same
	// rationale as E12Config.Reps). Default 5.
	Reps int
}

// DefaultE13 returns the scaled-down default parameters.
func DefaultE13() E13Config {
	return E13Config{Clients: []int{1, 16}, Ops: 300, FileSize: 4 << 10, Reps: 5}
}

// E13Row is one measured cell.
type E13Row struct {
	Variant     string  // "introspect-off" or "introspect-on"
	Workload    string  // "get-disjoint" or "mixed"
	Clients     int     // concurrent sessions
	Throughput  float64 // aggregate ops/second
	OverheadPct float64 // throughput loss vs introspect-off at the same cell (negative = faster)
}

// E13IntrospectStats proves the introspection layer was actually live
// during the "introspect-on" cells — the overhead number is meaningless
// if the machinery it prices sat idle.
type E13IntrospectStats struct {
	SLOClasses      int    // op classes tracked by the burn-rate engine
	HotGroups       int    // pseudonymized groups held by the top-k sketch
	ProfileCaptures uint64 // profile pairs the continuous profiler captured
}

// e13VarEnv is one variant's live deployment during a workload sweep.
type e13VarEnv struct {
	name     string
	env      *Env
	sessions []*core.DirectSession
	profiler *obs.ContinuousProfiler
	profDir  string
}

func (ve *e13VarEnv) close() {
	if ve.env != nil {
		ve.env.Close()
	}
	if ve.profiler != nil {
		ve.profiler.Stop()
	}
	if ve.profDir != "" {
		os.RemoveAll(ve.profDir)
	}
}

// newE13Variant builds one of the two configurations under comparison.
// "introspect-off" is the PR-6 baseline: wide events and tail sampling
// on, but no registry, SLO engine, sketch, or profiler. "introspect-on"
// enables all four at production-shaped settings (default SLO windows,
// default hot-k, 60s profile cadence with 1s CPU captures) — a cell
// that overlaps a capture pays the capture, exactly as production
// would.
func newE13Variant(on bool) (*e13VarEnv, error) {
	ve := &e13VarEnv{name: "introspect-off"}
	envCfg := EnvConfig{DisableRequestRegistry: true}
	if on {
		ve.name = "introspect-on"
		dir, err := os.MkdirTemp("", "segshare-e13-prof-")
		if err != nil {
			return nil, err
		}
		ve.profDir = dir
		ve.profiler, err = obs.NewContinuousProfiler(obs.ProfilerOptions{
			Dir:         dir,
			Interval:    time.Minute,
			CPUDuration: time.Second,
			MaxBytes:    8 << 20,
		})
		if err != nil {
			ve.close()
			return nil, err
		}
		envCfg = EnvConfig{
			SLO:       &obs.SLOConfig{},
			HotGroups: -1,
			Profiler:  ve.profiler,
		}
	}
	env, err := NewEnv(envCfg)
	if err != nil {
		ve.close()
		return nil, err
	}
	ve.env = env
	return ve, nil
}

// RunE13 sweeps every (workload, clients, variant) cell. Both variants
// stay alive per workload and each repetition measures them
// back-to-back (introspect-off first) so machine drift hits both sides
// of a comparison equally; best-of-Reps per variant then drops the
// disturbed runs — the same discipline as RunE12.
func RunE13(cfg E13Config) ([]E13Row, E13IntrospectStats, error) {
	if len(cfg.Clients) == 0 || cfg.Ops <= 0 {
		return nil, E13IntrospectStats{}, fmt.Errorf("bench: e13 config incomplete: %+v", cfg)
	}
	maxClients := 0
	for _, n := range cfg.Clients {
		if n > maxClients {
			maxClients = n
		}
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 1
	}
	var rows []E13Row
	var stats E13IntrospectStats
	for _, workload := range e12Workloads {
		var vars []*e13VarEnv
		fail := func(err error) ([]E13Row, E13IntrospectStats, error) {
			for _, ve := range vars {
				ve.close()
			}
			return nil, E13IntrospectStats{}, err
		}
		for _, on := range []bool{false, true} {
			ve, err := newE13Variant(on)
			if err != nil {
				return fail(err)
			}
			vars = append(vars, ve)
			if ve.sessions, err = e10Setup(ve.env, workload, maxClients, cfg.FileSize); err != nil {
				return fail(err)
			}
		}
		for _, n := range cfg.Clients {
			best := make([]E13Row, len(vars))
			for i, ve := range vars {
				best[i] = E13Row{Variant: ve.name, Workload: workload, Clients: n}
			}
			for rep := 0; rep < reps; rep++ {
				// Alternate measurement order between reps: on a drifting
				// host, always measuring the same variant second would bias
				// its best-of-N against it.
				order := []int{0, 1}
				if rep%2 == 1 {
					order = []int{1, 0}
				}
				for _, i := range order {
					ve := vars[i]
					cell, err := e10Cell(ve.env, ve.sessions, ve.name, workload, n, cfg.Ops, cfg.FileSize)
					if err != nil {
						return fail(err)
					}
					if cell.Throughput > best[i].Throughput {
						best[i].Throughput = cell.Throughput
					}
				}
			}
			base := best[0].Throughput // variant order pins introspect-off first
			for i := range best {
				if i > 0 && base > 0 {
					best[i].OverheadPct = 100 * (base - best[i].Throughput) / base
				}
				rows = append(rows, best[i])
			}
		}
		for _, ve := range vars {
			if ve.profiler != nil {
				if slo := ve.env.Server.SLO(); slo != nil {
					if c := len(slo.Status().Classes); c > stats.SLOClasses {
						stats.SLOClasses = c
					}
				}
				if g := len(ve.env.Server.HotStatus().Entries); g > stats.HotGroups {
					stats.HotGroups = g
				}
				stats.ProfileCaptures += uint64(len(ve.profiler.Index().Entries)) / 2
			}
			ve.close()
		}
	}
	return rows, stats, nil
}
