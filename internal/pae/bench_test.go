package pae

import (
	"fmt"
	"testing"
)

func BenchmarkSeal(b *testing.B) {
	key, err := NewRandomKey()
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCipher(key)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		pt := make([]byte, size)
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := c.Seal(pt, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOpen(b *testing.B) {
	key, err := NewRandomKey()
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCipher(key)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		ct, err := c.Seal(make([]byte, size), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := c.Open(ct, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendSeal measures the zero-alloc variant against pooled
// destination buffers — the configuration the pfs chunk pipeline runs.
func BenchmarkAppendSeal(b *testing.B) {
	key, err := NewRandomKey()
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCipher(key)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{4 << 10, 64 << 10} {
		pt := make([]byte, size)
		dst := make([]byte, 0, size+Overhead)
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := c.AppendSeal(dst[:0], pt, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendOpen measures the zero-alloc open path.
func BenchmarkAppendOpen(b *testing.B) {
	key, err := NewRandomKey()
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCipher(key)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{4 << 10, 64 << 10} {
		ct, err := c.Seal(make([]byte, size), nil)
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]byte, 0, size)
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := c.AppendOpen(dst[:0], ct, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDeriveKey(b *testing.B) {
	secret := make([]byte, 32)
	for i := 0; i < b.N; i++ {
		if _, err := DeriveKey(secret, "file-key", []byte("/some/path")); err != nil {
			b.Fatal(err)
		}
	}
}
