package core

import (
	"bytes"
	"errors"
	"fmt"

	"segshare/internal/fspath"
	"segshare/internal/pfs"
	"segshare/internal/store"
)

// ByteRange is a single parsed HTTP byte range, not yet resolved against
// the file size. Start == -1 requests the last SuffixLen bytes; End == -1
// means "through end of file".
type ByteRange struct {
	Start     int64
	End       int64
	SuffixLen int64
}

// RangeResult is a resolved range read: the requested bytes plus the
// offset and total size needed for a Content-Range response header. Data
// may alias a buffer shared with coalesced readers and must be treated as
// read-only.
type RangeResult struct {
	Data  []byte
	Off   int64
	Total int64
}

// resolve maps the parsed range onto a file of the given size, following
// RFC 9110 §14.1.2 semantics. A range starting past EOF is unsatisfiable;
// an end past EOF is clamped.
func (br ByteRange) resolve(total int64) (off, length int64, err error) {
	if br.Start < 0 {
		// Suffix range: last SuffixLen bytes.
		n := br.SuffixLen
		if n > total {
			n = total
		}
		if n <= 0 {
			return 0, 0, fmt.Errorf("%w: of %d bytes", ErrRangeNotSatisfiable, total)
		}
		return total - n, n, nil
	}
	if br.Start >= total {
		return 0, 0, fmt.Errorf("%w: start %d of %d bytes", ErrRangeNotSatisfiable, br.Start, total)
	}
	end := br.End
	if end < 0 || end >= total {
		end = total - 1
	}
	return br.Start, end - br.Start + 1, nil
}

// readContentRange serves a byte range of a content file. When the
// stored body is raw (no dedup indirection) and no rollback header
// precedes it, the pfs reader's random access decrypts only the chunks
// the range touches, verifying each chunk's Merkle path — the sibling
// validation the format was designed for — instead of opening the whole
// blob. Dedup indirections, rollback mode, and staged views fall back to
// a full (coalesced) read plus slicing, because those paths need the
// complete body to authenticate (full-content HMAC binding, header-over-
// body validation) before any byte may be released.
func (fm *fileManager) readContentRange(path fspath.Path, br ByteRange) (RangeResult, error) {
	if path.IsDir() {
		return RangeResult{}, fmt.Errorf("%w: %q is a directory path", ErrBadRequest, path)
	}
	if !fm.staging() && !fm.rollbackOn {
		res, fast, err := fm.rangeFast(path, br)
		if fast {
			return res, err
		}
	}
	full, err := fm.readContent(path)
	if err != nil {
		return RangeResult{}, err
	}
	total := int64(len(full))
	off, length, err := br.resolve(total)
	if err != nil {
		return RangeResult{Total: total}, err
	}
	return RangeResult{Data: full[off : off+length], Off: off, Total: total}, nil
}

// rangeFast is the random-access path: it opens the stored blob's footer,
// checks the body tag, and decrypts only the covered chunks. fast=false
// means the body is a dedup indirection and the caller must fall back;
// any error with fast=true is final.
func (fm *fileManager) rangeFast(path fspath.Path, br ByteRange) (res RangeResult, fast bool, err error) {
	name := path.String()
	fm.rs.AddStoreOps(1)
	raw, err := fm.content.backend.Get(fm.storageName(fm.content, name))
	if errors.Is(err, store.ErrNotExist) {
		return RangeResult{}, true, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return RangeResult{}, true, fmt.Errorf("segshare: load %q: %w", name, err)
	}
	key, err := fm.fileKey(fm.content, name)
	if err != nil {
		return RangeResult{}, true, err
	}
	r, err := pfs.Open(key, fm.fileID(fm.content, name), bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return RangeResult{}, true, fmt.Errorf("%w: %s", ErrIntegrity, name)
	}
	if r.Size() < 1 {
		return RangeResult{}, true, fmt.Errorf("%w: %s: empty content body", ErrIntegrity, name)
	}
	var tag [1]byte
	if _, err := r.ReadAt(tag[:], 0); err != nil {
		return RangeResult{}, true, fmt.Errorf("%w: %s", ErrIntegrity, name)
	}
	switch tag[0] {
	case bodyRaw:
	case bodyDedup:
		return RangeResult{}, false, nil
	default:
		return RangeResult{}, true, fmt.Errorf("%w: content body tag %#x", ErrIntegrity, tag[0])
	}
	// Content bytes sit at plaintext offset 1, after the body tag.
	total := r.Size() - 1
	off, length, err := br.resolve(total)
	if err != nil {
		return RangeResult{Total: total}, true, err
	}
	buf := make([]byte, length)
	if _, err := r.ReadAt(buf, off+1); err != nil {
		return RangeResult{}, true, fmt.Errorf("%w: %s", ErrIntegrity, name)
	}
	return RangeResult{Data: buf, Off: off, Total: total}, true, nil
}
