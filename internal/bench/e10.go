package bench

import (
	"fmt"
	"sync"
	"time"

	"segshare/internal/cache"
	"segshare/internal/core"
)

// E10 — concurrent request throughput (DESIGN.md §10). The paper's
// evaluation is single-client; this experiment measures what the sharded
// path locks and the in-enclave relation caches buy under concurrency:
// aggregate operations per second at 1/4/16/64 clients, for a
// global-lock/no-cache baseline versus the sharded+cached request path,
// on disjoint paths (no logical contention), one shared hot file
// (maximum contention), and a mixed GET/PUT/ACL-update workload.

// E10Config parameterizes the concurrency experiment.
type E10Config struct {
	// Clients holds the concurrency levels to sweep.
	Clients []int
	// Ops is the number of operations each client performs per cell.
	Ops int
	// FileSize is the content size of every file in the corpus.
	FileSize int
}

// DefaultE10 returns the scaled-down default parameters.
func DefaultE10() E10Config {
	return E10Config{Clients: []int{1, 4, 16, 64}, Ops: 300, FileSize: 4 << 10}
}

// E10Row is one measured cell.
type E10Row struct {
	Variant    string  // "global-lock" or "sharded+cache"
	Workload   string  // "get-disjoint", "get-shared", "mixed"
	Clients    int     // concurrent sessions
	Throughput float64 // aggregate ops/second
	HitRate    float64 // relation-cache hit rate during the cell (0 with cache off)
}

// e10Variants are the two server tunings under comparison. The baseline
// reproduces the pre-optimization request path: one lock shard behaves
// like the old global RWMutex, and a negative cache budget disables the
// relation caches so every authorization walk re-fetches, re-derives,
// and re-decrypts its relation files.
var e10Variants = []struct {
	name       string
	lockShards int
	cacheBytes int64
}{
	{"global-lock", 1, -1},
	{"sharded+cache", 0, 0},
}

var e10Workloads = []string{"get-disjoint", "get-shared", "mixed"}

// RunE10 sweeps every (variant, workload, clients) cell.
func RunE10(cfg E10Config) ([]E10Row, error) {
	if len(cfg.Clients) == 0 || cfg.Ops <= 0 {
		return nil, fmt.Errorf("bench: e10 config incomplete: %+v", cfg)
	}
	maxClients := 0
	for _, n := range cfg.Clients {
		if n > maxClients {
			maxClients = n
		}
	}
	var rows []E10Row
	for _, v := range e10Variants {
		for _, workload := range e10Workloads {
			env, err := NewEnv(EnvConfig{LockShards: v.lockShards, CacheBytes: v.cacheBytes})
			if err != nil {
				return nil, err
			}
			sessions, err := e10Setup(env, workload, maxClients, cfg.FileSize)
			if err != nil {
				env.Close()
				return nil, err
			}
			for _, n := range cfg.Clients {
				row, err := e10Cell(env, sessions, v.name, workload, n, cfg.Ops, cfg.FileSize)
				if err != nil {
					env.Close()
					return nil, err
				}
				rows = append(rows, row)
			}
			env.Close()
		}
	}
	return rows, nil
}

// e10Setup builds the corpus and per-client sessions. Client i owns
// /c<i>/ (created by itself, so it holds full rights there); the shared
// hot file is owned by "owner" and readable by the "readers" group
// every client belongs to.
func e10Setup(env *Env, workload string, clients, fileSize int) ([]*core.DirectSession, error) {
	payload := make([]byte, fileSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	owner := env.Direct("owner")
	if err := owner.Mkdir("/shared/"); err != nil {
		return nil, err
	}
	if err := owner.Upload("/shared/f", payload); err != nil {
		return nil, err
	}
	sessions := make([]*core.DirectSession, clients)
	for i := range sessions {
		user := fmt.Sprintf("u%d", i)
		if err := owner.AddUser(user, "readers"); err != nil {
			return nil, err
		}
		sessions[i] = env.Direct(user)
		if workload != "get-shared" {
			if err := sessions[i].Mkdir(fmt.Sprintf("/c%d/", i)); err != nil {
				return nil, err
			}
			if err := sessions[i].Upload(fmt.Sprintf("/c%d/f", i), payload); err != nil {
				return nil, err
			}
		}
	}
	if err := owner.SetPermission("/shared/f", "readers", "r"); err != nil {
		return nil, err
	}
	return sessions, nil
}

// e10Cell measures one concurrency level: wall-clock over clients×ops
// operations started together, plus the relation-cache hit rate over
// exactly that interval.
func e10Cell(env *Env, sessions []*core.DirectSession, variant, workload string, clients, ops, fileSize int) (E10Row, error) {
	payload := make([]byte, fileSize)
	before := env.Server.CacheStats()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := sessions[i]
			own := fmt.Sprintf("/c%d/f", i)
			<-start
			for j := 0; j < ops; j++ {
				var err error
				switch workload {
				case "get-disjoint":
					_, err = d.Download(own)
				case "get-shared":
					_, err = d.Download("/shared/f")
				default: // mixed: 80% GET, 15% PUT, 5% ACL toggle, own subtree
					switch {
					case j%20 < 16:
						_, err = d.Download(own)
					case j%20 < 19:
						err = d.Upload(own, payload)
					default:
						spec := core.PermissionSpec("r")
						if j%40 >= 20 {
							spec = "none"
						}
						err = d.SetPermission(own, "readers", spec)
					}
				}
				if err != nil {
					errs <- fmt.Errorf("e10 %s/%s client %d op %d: %w", variant, workload, i, j, err)
					return
				}
			}
		}(i)
	}
	begin := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(begin)
	close(errs)
	if err := <-errs; err != nil {
		return E10Row{}, err
	}

	return E10Row{
		Variant:    variant,
		Workload:   workload,
		Clients:    clients,
		Throughput: float64(clients*ops) / elapsed.Seconds(),
		HitRate:    hitRateDelta(before, env.Server.CacheStats()),
	}, nil
}

// hitRateDelta computes hits/(hits+misses) across the relation caches
// (derived keys excluded — they never miss twice and would flatter the
// number) between two CacheStats snapshots.
func hitRateDelta(before, after map[string]cache.Stats) float64 {
	var hits, total uint64
	for _, kind := range []string{"acls", "dirs", "memberships", "grouplist"} {
		h := after[kind].Hits - before[kind].Hits
		m := after[kind].Misses - before[kind].Misses
		hits += h
		total += h + m
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
