package core

import (
	"bytes"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"encoding/pem"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/store"
)

// handlerFixture builds a Server (without network plumbing) plus a way to
// invoke its handler as an authenticated user.
type handlerFixture struct {
	server    *Server
	authority *ca.Authority
	certs     map[string]*x509.Certificate
}

func newHandlerFixture(t *testing.T) *handlerFixture {
	t.Helper()
	authority, err := ca.New("handler test CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewMemory(),
		GroupStore:   store.NewMemory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return &handlerFixture{server: server, authority: authority, certs: make(map[string]*x509.Certificate)}
}

func (f *handlerFixture) cert(t *testing.T, user string) *x509.Certificate {
	t.Helper()
	if c, ok := f.certs[user]; ok {
		return c
	}
	cred, err := f.authority.IssueClientCertificate(ca.Identity{UserID: user}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	block, _ := pem.Decode(cred.CertPEM)
	cert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	f.certs[user] = cert
	return cert
}

// do performs a request as the given user (empty user = no client cert).
func (f *handlerFixture) do(t *testing.T, user, method, target string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, bytes.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	if user != "" {
		req.TLS = &tls.ConnectionState{PeerCertificates: []*x509.Certificate{f.cert(t, user)}}
	} else {
		req.TLS = &tls.ConnectionState{}
	}
	rec := httptest.NewRecorder()
	f.server.handler().ServeHTTP(rec, req)
	return rec
}

func TestHandlerStatusCodes(t *testing.T) {
	f := newHandlerFixture(t)

	// Build state: alice creates a dir and a file.
	if rec := f.do(t, "alice", "MKCOL", "/fs/docs/", nil, nil); rec.Code != http.StatusCreated {
		t.Fatalf("MKCOL = %d: %s", rec.Code, rec.Body)
	}
	if rec := f.do(t, "alice", http.MethodPut, "/fs/docs/a.txt", []byte("v1"), nil); rec.Code != http.StatusCreated {
		t.Fatalf("PUT create = %d: %s", rec.Code, rec.Body)
	}

	tests := []struct {
		name   string
		user   string
		method string
		target string
		body   []byte
		hdr    map[string]string
		want   int
	}{
		{name: "update is 204", user: "alice", method: "PUT", target: "/fs/docs/a.txt", body: []byte("v2"), want: 204},
		{name: "get is 200", user: "alice", method: "GET", target: "/fs/docs/a.txt", want: 200},
		{name: "list is 200", user: "alice", method: "GET", target: "/fs/docs/", want: 200},
		{name: "propfind multistatus", user: "alice", method: "PROPFIND", target: "/fs/docs/", want: 207},
		{name: "options", user: "alice", method: "OPTIONS", target: "/fs/docs/", want: 200},
		{name: "head", user: "alice", method: "HEAD", target: "/fs/docs/a.txt", want: 200},
		{name: "missing file 404", user: "alice", method: "GET", target: "/fs/docs/nope", want: 404},
		{name: "foreign read 403", user: "eve", method: "GET", target: "/fs/docs/a.txt", want: 403},
		{name: "foreign list 403", user: "eve", method: "GET", target: "/fs/docs/", want: 403},
		{name: "duplicate mkcol 409", user: "alice", method: "MKCOL", target: "/fs/docs/", want: 409},
		{name: "remove non-empty dir 409", user: "alice", method: "DELETE", target: "/fs/docs/", want: 409},
		{name: "bad path 400", user: "alice", method: "GET", target: "/fs/docs/../a.txt", want: 400},
		{name: "bad method 405", user: "alice", method: "PATCH", target: "/fs/docs/a.txt", want: 405},
		{name: "no certificate 401", user: "", method: "GET", target: "/fs/docs/a.txt", want: 401},
		{name: "unknown prefix 404", user: "alice", method: "GET", target: "/other", want: 404},
		{name: "unknown api post 400", user: "alice", method: "POST", target: "/api/nope", body: []byte("{}"), want: 400},
		{name: "api get only whoami", user: "alice", method: "GET", target: "/api/permission", want: 404},
		{name: "api bad json 400", user: "alice", method: "POST", target: "/api/permission", body: []byte("{"), want: 400},
		{name: "api unknown field 400", user: "alice", method: "POST", target: "/api/permission", body: []byte(`{"bogus":1}`), want: 400},
		{
			name: "move without destination 400",
			user: "alice", method: "MOVE", target: "/fs/docs/a.txt", want: 400,
		},
		{
			name: "move with bad destination 400",
			user: "alice", method: "MOVE", target: "/fs/docs/a.txt",
			hdr:  map[string]string{"Destination": "/fs/bad//path"},
			want: 400,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec := f.do(t, tt.user, tt.method, tt.target, tt.body, tt.hdr)
			if rec.Code != tt.want {
				t.Fatalf("status = %d, want %d (body: %s)", rec.Code, tt.want, rec.Body)
			}
		})
	}
}

func TestHandlerListingBody(t *testing.T) {
	f := newHandlerFixture(t)
	if rec := f.do(t, "alice", "MKCOL", "/fs/d/", nil, nil); rec.Code != 201 {
		t.Fatal(rec.Body)
	}
	if rec := f.do(t, "alice", "PUT", "/fs/d/file", []byte("x"), nil); rec.Code != 201 {
		t.Fatal(rec.Body)
	}
	if rec := f.do(t, "alice", "MKCOL", "/fs/d/sub/", nil, nil); rec.Code != 201 {
		t.Fatal(rec.Body)
	}
	rec := f.do(t, "alice", "GET", "/fs/d/", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("GET dir = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var listing Listing
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("decode listing: %v", err)
	}
	if listing.Path != "/d/" || len(listing.Entries) != 2 {
		t.Fatalf("listing = %+v", listing)
	}
	for _, e := range listing.Entries {
		if e.Permission != "rw" {
			t.Fatalf("owner permission = %s", e.Permission)
		}
	}
}

func TestHandlerMove(t *testing.T) {
	f := newHandlerFixture(t)
	if rec := f.do(t, "alice", "PUT", "/fs/a.txt", []byte("content"), nil); rec.Code != 201 {
		t.Fatal(rec.Body)
	}
	rec := f.do(t, "alice", "MOVE", "/fs/a.txt", nil, map[string]string{"Destination": "/fs/b.txt"})
	if rec.Code != 201 {
		t.Fatalf("MOVE = %d: %s", rec.Code, rec.Body)
	}
	if rec := f.do(t, "alice", "GET", "/fs/a.txt", nil, nil); rec.Code != 404 {
		t.Fatalf("old path = %d", rec.Code)
	}
	rec = f.do(t, "alice", "GET", "/fs/b.txt", nil, nil)
	if rec.Code != 200 || rec.Body.String() != "content" {
		t.Fatalf("new path = %d %q", rec.Code, rec.Body)
	}
}

func TestHandlerAPIFlow(t *testing.T) {
	f := newHandlerFixture(t)
	if rec := f.do(t, "alice", "PUT", "/fs/f", []byte("x"), nil); rec.Code != 201 {
		t.Fatal(rec.Body)
	}

	post := func(user, route, body string) *httptest.ResponseRecorder {
		return f.do(t, user, "POST", "/api/"+route, []byte(body), map[string]string{"Content-Type": "application/json"})
	}
	if rec := post("alice", "groups/add", `{"user":"bob","group":"team"}`); rec.Code != 204 {
		t.Fatalf("groups/add = %d: %s", rec.Code, rec.Body)
	}
	if rec := post("alice", "permission", `{"path":"/f","group":"team","permission":"r"}`); rec.Code != 204 {
		t.Fatalf("permission = %d: %s", rec.Code, rec.Body)
	}
	if rec := f.do(t, "bob", "GET", "/fs/f", nil, nil); rec.Code != 200 {
		t.Fatalf("bob GET = %d", rec.Code)
	}
	if rec := post("alice", "permission", `{"path":"/f","group":"team","permission":"bogus"}`); rec.Code != 400 {
		t.Fatalf("bad permission = %d", rec.Code)
	}
	if rec := post("alice", "permission", `{"path":"relative","group":"team","permission":"r"}`); rec.Code != 400 {
		t.Fatalf("bad path = %d", rec.Code)
	}
	if rec := post("bob", "groups/add", `{"user":"eve","group":"team"}`); rec.Code != 403 {
		t.Fatalf("non-owner groups/add = %d", rec.Code)
	}
	if rec := post("alice", "groups/remove", `{"user":"bob","group":"missing"}`); rec.Code != 404 {
		t.Fatalf("unknown group = %d: %s", rec.Code, rec.Body)
	}
	if rec := post("alice", "inherit", `{"path":"/f","inherit":true}`); rec.Code != 204 {
		t.Fatalf("inherit = %d: %s", rec.Code, rec.Body)
	}
	if rec := post("alice", "owner", `{"path":"/f","group":"user:bob","owner":true}`); rec.Code != 204 {
		t.Fatalf("owner = %d: %s", rec.Code, rec.Body)
	}
	if rec := post("alice", "groups/owner", `{"group":"team","ownerGroup":"user:bob","owner":true}`); rec.Code != 204 {
		t.Fatalf("groups/owner = %d: %s", rec.Code, rec.Body)
	}
	if rec := post("alice", "groups/delete", `{"group":"team"}`); rec.Code != 204 {
		t.Fatalf("groups/delete = %d: %s", rec.Code, rec.Body)
	}

	rec := f.do(t, "alice", "GET", "/api/whoami", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("whoami = %d", rec.Code)
	}
	var who WhoAmI
	if err := json.Unmarshal(rec.Body.Bytes(), &who); err != nil {
		t.Fatal(err)
	}
	if who.UserID != "alice" {
		t.Fatalf("whoami = %+v", who)
	}
}

func TestParseFormatPermission(t *testing.T) {
	for _, spec := range []PermissionSpec{"r", "w", "rw", "deny", "none"} {
		p, err := ParsePermission(spec)
		if err != nil {
			t.Fatalf("ParsePermission(%s): %v", spec, err)
		}
		if got := FormatPermission(p); got != spec {
			t.Fatalf("round trip %s -> %s", spec, got)
		}
	}
	if _, err := ParsePermission("x"); err == nil {
		t.Fatal("bogus permission accepted")
	}
}

// GET and HEAD must announce the plaintext length up front — clients
// size progress bars from it, and HEAD must carry it without a body.
func TestContentLengthFromPlaintext(t *testing.T) {
	f := newHandlerFixture(t)
	content := []byte("exactly twenty-three by")
	if rec := f.do(t, "alice", http.MethodPut, "/fs/a.txt", content, nil); rec.Code != 201 {
		t.Fatalf("PUT = %d: %s", rec.Code, rec.Body)
	}
	rec := f.do(t, "alice", http.MethodGet, "/fs/a.txt", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("GET = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Content-Length"); got != fmt.Sprint(len(content)) {
		t.Fatalf("GET Content-Length = %q, want %d", got, len(content))
	}
	if rec.Body.Len() != len(content) {
		t.Fatalf("GET body %d bytes, want %d", rec.Body.Len(), len(content))
	}
	rec = f.do(t, "alice", http.MethodHead, "/fs/a.txt", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("HEAD = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Content-Length"); got != fmt.Sprint(len(content)) {
		t.Fatalf("HEAD Content-Length = %q, want %d", got, len(content))
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("HEAD returned %d body bytes", rec.Body.Len())
	}
}
