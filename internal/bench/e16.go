package bench

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"segshare"
	"segshare/internal/core"
	"segshare/internal/obs"
	"segshare/internal/store"
)

// E16 — overload resilience (DESIGN.md §16). Without admission control
// an overloaded server accepts every request, queueing delay compounds,
// and every client's latency degrades together. With the adaptive
// limiter the server sheds the excess early (503 + Retry-After) and the
// admitted requests keep near-baseline latency. This experiment drives a
// closed-loop GET workload at 1x, 2x, and 4x the server's concurrency
// capacity through the full TLS + HTTP stack, with shedding off vs on,
// and reports goodput (successful ops/s) and the latency distribution of
// the successes. The acceptance target: at 2x load with admission on,
// admitted-request p99 stays within 2x of the 1x baseline.

// E16Config parameterizes the overload experiment.
type E16Config struct {
	// FileKiB is the size of the file each GET fetches.
	FileKiB int
	// BaseClients is the closed-loop concurrency treated as 1x load,
	// matched to the admission limit so 1x saturates without queueing.
	BaseClients int
	// Multipliers are the offered-load factors swept per configuration.
	Multipliers []int
	// Window is the measured wall-clock duration per cell.
	Window time.Duration
	// StoreLatency is injected into every store op so the server has a
	// real capacity ceiling (an in-memory store would serve any load).
	StoreLatency time.Duration
	// QueueTimeout bounds admission queueing in the shedding cells.
	QueueTimeout time.Duration
}

// DefaultE16 returns the scaled-down default parameters.
func DefaultE16() E16Config {
	return E16Config{
		FileKiB:      64,
		BaseClients:  4,
		Multipliers:  []int{1, 2, 4},
		Window:       1500 * time.Millisecond,
		StoreLatency: 2 * time.Millisecond,
		QueueTimeout: 25 * time.Millisecond,
	}
}

// E16Row is one measured cell.
type E16Row struct {
	Load      string // "1x", "2x", "4x"
	Admission bool   // shedding on?
	Goodput   float64
	P50, P99  time.Duration // latency of successful requests
	OK        int           // 200s
	Shed      int           // 503s
	Errors    int           // anything else
}

// e16Cell drives clients concurrent closed-loop GETs for the window and
// classifies every completion.
func e16Cell(env *Env, clients int, path string, window time.Duration) (E16Row, error) {
	conns := make([]*segshare.Client, clients)
	for i := range conns {
		c, err := env.NewClient("alice")
		if err != nil {
			return E16Row{}, err
		}
		defer c.Close()
		conns[i] = c
	}

	var mu sync.Mutex
	var lats []time.Duration
	var ok, shed, errs int
	stop := time.Now().Add(window)
	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *segshare.Client) {
			defer wg.Done()
			for time.Now().Before(stop) {
				start := time.Now()
				_, err := c.Download(path)
				dur := time.Since(start)
				mu.Lock()
				switch {
				case err == nil:
					ok++
					lats = append(lats, dur)
				case errors.Is(err, core.ErrOverloaded):
					shed++
				default:
					errs++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	row := E16Row{OK: ok, Shed: shed, Errors: errs, Goodput: float64(ok) / window.Seconds()}
	if len(lats) > 0 {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		row.P50 = lats[len(lats)/2]
		row.P99 = lats[len(lats)*99/100]
	}
	return row, nil
}

// RunE16 sweeps offered load with shedding off vs on. Each configuration
// gets a fresh deployment with the same injected store latency so the
// capacity ceiling is identical; only the admission controller differs.
func RunE16(cfg E16Config) ([]E16Row, error) {
	if cfg.FileKiB <= 0 || cfg.BaseClients <= 0 || len(cfg.Multipliers) == 0 ||
		cfg.Window <= 0 || cfg.StoreLatency <= 0 {
		return nil, fmt.Errorf("bench: e16 config incomplete: %+v", cfg)
	}
	content := make([]byte, cfg.FileKiB<<10)
	if _, err := rand.Read(content); err != nil {
		return nil, err
	}

	var rows []E16Row
	for _, admission := range []bool{false, true} {
		plan := store.NewFaultPlan()
		envCfg := EnvConfig{FaultPlan: plan}
		if admission {
			envCfg.Admission = &segshare.AdmissionConfig{
				Enable:       true,
				MaxInFlight:  cfg.BaseClients,
				MinInFlight:  1,
				QueueLimit:   cfg.BaseClients,
				QueueTimeout: cfg.QueueTimeout,
			}
		}
		env, err := NewEnv(envCfg)
		if err != nil {
			return nil, err
		}
		// Seed before latency injection so setup stays fast.
		if err := env.Direct("alice").Upload("/e16.bin", content); err != nil {
			env.Close()
			return nil, err
		}
		plan.SetLatency(cfg.StoreLatency)
		for _, m := range cfg.Multipliers {
			row, err := e16Cell(env, cfg.BaseClients*m, "/e16.bin", cfg.Window)
			if err != nil {
				env.Close()
				return nil, err
			}
			row.Load = fmt.Sprintf("%dx", m)
			row.Admission = admission
			rows = append(rows, row)

			onOff := "off"
			if admission {
				onOff = "on"
			}
			labels := obs.Labels{"load": row.Load, "admission": onOff}
			obs.Default().Gauge("segshare_bench_overload_goodput_ops",
				"Successful GETs per second under offered overload.", labels).
				Set(int64(row.Goodput))
			obs.Default().Gauge("segshare_bench_overload_p99_us",
				"p99 latency of admitted GETs under offered overload, in microseconds.", labels).
				Set(row.P99.Microseconds())
		}
		env.Close()
	}
	return rows, nil
}
