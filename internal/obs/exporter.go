package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ExportRecord is one item on the export pipeline: a wide event or a
// sampled trace. Exactly one of the payload fields is set.
type ExportRecord struct {
	Kind  string         `json:"kind"` // "wide_event" | "trace"
	Event *WideEvent     `json:"event,omitempty"`
	Trace *TraceSnapshot `json:"trace,omitempty"`
}

// ExportSink receives marshaled export batches off the request path.
type ExportSink interface {
	// Write delivers one batch of records. It runs on the exporter
	// goroutine; blocking here backs up the queue, never a request.
	Write(ctx context.Context, recs []ExportRecord) error
	// Close releases sink resources after the exporter drains.
	Close() error
}

// ExporterOptions configures the bounded async exporter.
type ExporterOptions struct {
	// QueueSize bounds the in-memory record queue. When full, Enqueue
	// drops and counts — the request path never blocks on export.
	// Default 4096.
	QueueSize int
	// BatchSize is the most records handed to the sink per Write.
	// Default 128.
	BatchSize int
	// FlushInterval bounds how long a partial batch may wait.
	// Default 1s.
	FlushInterval time.Duration
	// Obs, when set, registers drop/sent counters on the registry.
	Obs *Registry
}

// Exporter drains wide events and sampled traces to a sink on a
// background goroutine. Enqueue is non-blocking by construction: a full
// queue drops the record and increments a counter, because telemetry
// must never add latency to the request path it measures.
type Exporter struct {
	sink ExportSink
	ch   chan ExportRecord

	batchSize int
	flushIvl  time.Duration

	dropped atomic.Uint64
	sent    atomic.Uint64

	droppedCtr *Counter
	sentCtr    *Counter

	closeOnce sync.Once
	done      chan struct{}
	drained   chan struct{}
}

// NewExporter starts the exporter goroutine. The caller must Close it to
// flush and release the sink.
func NewExporter(sink ExportSink, opt ExporterOptions) *Exporter {
	if opt.QueueSize <= 0 {
		opt.QueueSize = 4096
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 128
	}
	if opt.FlushInterval <= 0 {
		opt.FlushInterval = time.Second
	}
	e := &Exporter{
		sink:      sink,
		ch:        make(chan ExportRecord, opt.QueueSize),
		batchSize: opt.BatchSize,
		flushIvl:  opt.FlushInterval,
		done:      make(chan struct{}),
		drained:   make(chan struct{}),
	}
	if opt.Obs != nil {
		e.droppedCtr = opt.Obs.Counter("segshare_export_dropped_total",
			"Telemetry records dropped because the export queue was full.", nil)
		e.sentCtr = opt.Obs.Counter("segshare_export_sent_total",
			"Telemetry records delivered to the export sink.", nil)
	}
	go e.run()
	return e
}

// Enqueue offers one record to the pipeline without blocking. It reports
// whether the record was accepted.
func (e *Exporter) Enqueue(rec ExportRecord) bool {
	if e == nil {
		return false
	}
	select {
	case e.ch <- rec:
		return true
	default:
		e.dropped.Add(1)
		if e.droppedCtr != nil {
			e.droppedCtr.Add(1)
		}
		return false
	}
}

// EnqueueEvent offers one wide event.
func (e *Exporter) EnqueueEvent(ev WideEvent) bool {
	return e.Enqueue(ExportRecord{Kind: "wide_event", Event: &ev})
}

// EnqueueTrace offers one sampled trace.
func (e *Exporter) EnqueueTrace(snap TraceSnapshot) bool {
	return e.Enqueue(ExportRecord{Kind: "trace", Trace: &snap})
}

// Dropped returns how many records were rejected by a full queue.
func (e *Exporter) Dropped() uint64 {
	if e == nil {
		return 0
	}
	return e.dropped.Load()
}

// Sent returns how many records the sink accepted.
func (e *Exporter) Sent() uint64 {
	if e == nil {
		return 0
	}
	return e.sent.Load()
}

func (e *Exporter) run() {
	defer close(e.drained)
	ticker := time.NewTicker(e.flushIvl)
	defer ticker.Stop()
	batch := make([]ExportRecord, 0, e.batchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := e.sink.Write(context.Background(), batch); err == nil {
			e.sent.Add(uint64(len(batch)))
			if e.sentCtr != nil {
				e.sentCtr.Add(uint64(len(batch)))
			}
		} else {
			// The sink already retried internally (HTTPSink) or the
			// write is not retryable (closed file): count the loss.
			e.dropped.Add(uint64(len(batch)))
			if e.droppedCtr != nil {
				e.droppedCtr.Add(uint64(len(batch)))
			}
		}
		batch = batch[:0]
	}
	for {
		select {
		case rec := <-e.ch:
			batch = append(batch, rec)
			if len(batch) >= e.batchSize {
				flush()
			}
		case <-ticker.C:
			flush()
		case <-e.done:
			// Drain whatever is queued, then flush once and exit.
			for {
				select {
				case rec := <-e.ch:
					batch = append(batch, rec)
					if len(batch) >= e.batchSize {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// Close stops the exporter, flushes the queue, and closes the sink.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	var err error
	e.closeOnce.Do(func() {
		close(e.done)
		<-e.drained
		err = e.sink.Close()
	})
	return err
}

// JSONLSink appends one JSON object per record to a file. Lines are
// whole records, so a crash mid-run leaves at most one torn trailing
// line.
type JSONLSink struct {
	mu sync.Mutex
	f  *os.File
}

// NewJSONLSink opens (appending) or creates the export file.
func NewJSONLSink(path string) (*JSONLSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &JSONLSink{f: f}, nil
}

// Write appends the batch as JSON lines.
func (s *JSONLSink) Write(_ context.Context, recs []ExportRecord) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.Write(buf.Bytes())
	return err
}

// Close syncs and closes the file.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// HTTPSink POSTs batches as JSONL to a collector endpoint, retrying with
// exponential backoff. Retries happen on the exporter goroutine and are
// bounded, so a dead collector costs queued records (counted drops), not
// request latency or unbounded memory.
type HTTPSink struct {
	url     string
	client  *http.Client
	retries int
	backoff time.Duration
}

// NewHTTPSink builds a sink for the given collector URL. retries is the
// number of attempts beyond the first (default 3); backoff is the initial
// retry delay, doubling per attempt (default 100ms).
func NewHTTPSink(url string, retries int, backoff time.Duration) *HTTPSink {
	if retries <= 0 {
		retries = 3
	}
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &HTTPSink{
		url:     url,
		client:  &http.Client{Timeout: 10 * time.Second},
		retries: retries,
		backoff: backoff,
	}
}

var errSinkStatus = errors.New("obs: export sink returned non-2xx status")

// Write POSTs the batch, retrying transient failures.
func (s *HTTPSink) Write(ctx context.Context, recs []ExportRecord) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	body := buf.Bytes()
	delay := s.backoff
	var lastErr error
	for attempt := 0; attempt <= s.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return ctx.Err()
			}
			delay *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/jsonl")
		resp, err := s.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return nil
		}
		lastErr = errSinkStatus
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return lastErr // the collector rejected the payload; retrying cannot help
		}
	}
	return lastErr
}

// Close is a no-op; the HTTP client holds no resources worth releasing.
func (s *HTTPSink) Close() error { return nil }

// MemorySink buffers records in memory for tests and the bench harness'
// -trace-out capture.
type MemorySink struct {
	mu   sync.Mutex
	recs []ExportRecord
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Write appends the batch.
func (s *MemorySink) Write(_ context.Context, recs []ExportRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, recs...)
	return nil
}

// Close is a no-op.
func (s *MemorySink) Close() error { return nil }

// Records returns a copy of everything written so far.
func (s *MemorySink) Records() []ExportRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ExportRecord, len(s.recs))
	copy(out, s.recs)
	return out
}

// MultiSink fans one batch out to several sinks; the first error wins
// but every sink sees the batch.
type MultiSink []ExportSink

// Write delivers the batch to every sink.
func (m MultiSink) Write(ctx context.Context, recs []ExportRecord) error {
	var first error
	for _, s := range m {
		if err := s.Write(ctx, recs); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes every sink.
func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
