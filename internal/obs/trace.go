package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceRecorder keeps request traces in a ring buffer. A trace is one
// request labeled by operation class only (leak budget: the class set is
// closed and compile-time constant; logical paths, user IDs, and group
// names never enter a trace). Within a trace, spans record where the
// time went — dispatch, store I/O, tree updates.
//
// Retention is tail-based: a trace enters the ring when it *ends*, and
// only if the sampling policy keeps it (slow, errored, contended, every
// Nth, or force-sampled). With no policy installed every finished trace
// is retained, which preserves the v1 uniform-window behavior. In-flight
// traces live in a separate active set so the stall watchdog can find
// over-deadline requests without them occupying ring slots.
//
// Annotations are deliberately numeric-only: the API offers no way to
// attach a string to a trace, so identity-bearing request data cannot be
// smuggled into the export. Annotation keys pass the same token denylist
// as metric names.
type TraceRecorder struct {
	mu      sync.Mutex
	ring    []*Trace
	next    int
	seq     uint64
	dropped uint64
	inFlight map[uint64]*Trace

	policy   atomic.Pointer[SamplePolicy]
	examined atomic.Uint64
	sampled  atomic.Uint64

	// armed maps op class -> *atomic.Int64 remaining force-sample
	// credits (see ForceSampleOp). armedAny short-circuits the map probe
	// on the Start hot path while no arming is outstanding.
	armed    sync.Map
	armedAny atomic.Bool

	// onEnd, when set, observes every finished trace with its sampling
	// decision — the export pipeline and sampling metrics hang off it.
	// It receives the live *Trace so discarded traces (the overwhelming
	// majority under a tail-sampling policy) cost no snapshot; call
	// Snapshot only on the traces worth shipping. Set once during
	// wiring, before traffic.
	onEnd func(t *Trace, sampled bool)

	active Gauge
}

// DefaultTraceCapacity is the ring size used when none is given.
const DefaultTraceCapacity = 256

// NewTraceRecorder returns a recorder keeping the last capacity retained
// traces.
func NewTraceRecorder(capacity int) *TraceRecorder {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRecorder{
		ring:     make([]*Trace, 0, capacity),
		inFlight: make(map[uint64]*Trace),
	}
}

// SamplePolicy decides which finished traces keep their full span tree.
// Zero thresholds disable the corresponding rule; a trace is retained if
// ANY enabled rule matches. The zero policy retains nothing except
// force-sampled traces — explicitly install nil to keep everything.
type SamplePolicy struct {
	// SlowNs retains traces with end-to-end duration >= SlowNs.
	SlowNs int64
	// ErrorStatus retains traces whose status code is >= this value
	// (e.g. 500 for server errors, 400 to include denials).
	ErrorStatus int
	// ContentionNs retains traces whose accumulated lock wait (the
	// lock_wait_ns annotation) is >= ContentionNs.
	ContentionNs int64
	// KeepOneIn retains every Nth finished trace regardless, keeping a
	// thin uniform baseline in the ring. 0 disables.
	KeepOneIn uint64
}

// DefaultSamplePolicy is the production default: keep server errors,
// anything slower than 50ms or blocked on locks for 10ms, and a 1%
// uniform baseline.
func DefaultSamplePolicy() *SamplePolicy {
	return &SamplePolicy{
		SlowNs:       (50 * time.Millisecond).Nanoseconds(),
		ErrorStatus:  500,
		ContentionNs: (10 * time.Millisecond).Nanoseconds(),
		KeepOneIn:    100,
	}
}

// SetPolicy installs the sampling policy. A nil policy retains every
// finished trace (the v1 behavior).
func (r *TraceRecorder) SetPolicy(p *SamplePolicy) { r.policy.Store(p) }

// Policy returns the installed sampling policy, or nil.
func (r *TraceRecorder) Policy() *SamplePolicy { return r.policy.Load() }

// SetOnEnd installs the finished-trace observer. Call once during
// wiring, before any request runs.
func (r *TraceRecorder) SetOnEnd(fn func(t *Trace, sampled bool)) { r.onEnd = fn }

// Examined returns how many traces have finished and been considered by
// the sampler.
func (r *TraceRecorder) Examined() uint64 { return r.examined.Load() }

// Sampled returns how many finished traces were retained.
func (r *TraceRecorder) Sampled() uint64 { return r.sampled.Load() }

// Trace is one in-flight or finished request.
type Trace struct {
	mu     sync.Mutex
	id     uint64
	op     string
	start  time.Time
	end    time.Time
	status int
	forced bool
	spans  []span
	// open is the stack of currently-open span names, innermost last —
	// the in-flight registry reads its top to say where a live request
	// is right now.
	open   []string
	annots []annotation
	// annotsBuf backs annots for the first few annotations so the common
	// request (a handful of numeric fields) never grows a heap slice.
	annotsBuf [4]annotation

	rec *TraceRecorder
}

type span struct {
	name  string
	start time.Time
	end   time.Time
}

type annotation struct {
	key   string
	value int64
}

// Start opens a new trace for the given operation class. The trace joins
// the active set; whether it enters the ring is decided at End by the
// sampling policy.
func (r *TraceRecorder) Start(op string) *Trace {
	t := &Trace{op: op, start: time.Now(), status: 0, rec: r}
	t.annots = t.annotsBuf[:0]
	if r.armedAny.Load() {
		if v, ok := r.armed.Load(op); ok {
			if v.(*atomic.Int64).Add(-1) >= 0 {
				t.forced = true // t is not shared yet; no lock needed
			} else {
				r.armed.Delete(op)
			}
		}
	}
	r.mu.Lock()
	r.seq++
	t.id = r.seq
	r.inFlight[t.id] = t
	r.mu.Unlock()
	r.active.Add(1)
	return t
}

// ForceSampleOp force-samples every in-flight trace of the given op
// class and arms the recorder to force-sample the next n starts of it —
// the SLO engine calls this on a burn-rate breach so the traces of the
// offending class are retained while the incident is live. It returns
// how many in-flight traces were forced and the id of the oldest one
// (0 when none), for correlating a triggered profile capture.
func (r *TraceRecorder) ForceSampleOp(op string, n int64) (inFlight int, oldestID uint64) {
	r.mu.Lock()
	var oldest *Trace
	for _, t := range r.inFlight {
		if t.op != op {
			continue
		}
		inFlight++
		if oldest == nil || t.start.Before(oldest.start) {
			oldest = t
		}
		t.mu.Lock()
		t.forced = true
		t.mu.Unlock()
	}
	r.mu.Unlock()
	if oldest != nil {
		oldestID = oldest.ID()
	}
	if n > 0 {
		c := &atomic.Int64{}
		c.Store(n)
		r.armed.Store(op, c)
		r.armedAny.Store(true)
	}
	return inFlight, oldestID
}

// retain inserts a finished trace into the ring, evicting the oldest
// retained trace when full.
func (r *TraceRecorder) retain(t *Trace) {
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, t)
	} else {
		r.ring[r.next] = t
		r.next = (r.next + 1) % cap(r.ring)
		r.dropped++
	}
	r.mu.Unlock()
}

// Dropped returns how many retained traces have been evicted from the
// ring.
func (r *TraceRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Active returns the number of started-but-unfinished traces.
func (r *TraceRecorder) Active() int64 { return r.active.Value() }

// OverDeadline reports how many in-flight traces started more than
// deadline ago, and the age of the oldest one. The watchdog's
// over-deadline check runs on it; only ages and counts leave, never ops
// or ids.
func (r *TraceRecorder) OverDeadline(deadline time.Duration) (n int, oldest time.Duration) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.inFlight {
		age := now.Sub(t.start)
		if age >= deadline {
			n++
		}
		if age > oldest {
			oldest = age
		}
	}
	return n, oldest
}

// Capacity returns the ring size: the maximum number of traces Recent can
// ever return.
func (r *TraceRecorder) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cap(r.ring)
}

// ID returns the trace's recorder-unique id, usable as a request id in
// logs, wide events, and audit records to correlate them with the
// exported trace.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// StartTime returns when the trace was opened. The field is written
// once at construction, so no lock is needed.
func (t *Trace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// SetStatus records the response status code.
func (t *Trace) SetStatus(code int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = code
	t.mu.Unlock()
}

// ForceSample marks the trace retained regardless of policy, e.g. when
// the watchdog fires while it is in flight.
func (t *Trace) ForceSample() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.forced = true
	t.mu.Unlock()
}

// Annotate attaches a numeric fact (byte counts, depths, item counts) to
// the trace. Keys violating the leak-budget token rules are dropped.
func (t *Trace) Annotate(key string, value int64) {
	if t == nil {
		return
	}
	if verifyName(key, "annotation key") != nil {
		return
	}
	t.mu.Lock()
	t.annots = append(t.annots, annotation{key: key, value: value})
	t.mu.Unlock()
}

// Span times a sub-operation: call the returned func to close it. While
// open, the span is visible to CurrentSpan (and through it the
// in-flight registry).
func (t *Trace) Span(name string) func() {
	if t == nil {
		return func() {}
	}
	if verifyName(name, "span name") != nil {
		return func() {}
	}
	start := time.Now()
	t.mu.Lock()
	t.open = append(t.open, name)
	t.mu.Unlock()
	return func() {
		end := time.Now()
		t.mu.Lock()
		// Spans close LIFO in practice (defer), but tolerate out-of-order
		// closes: remove the last open entry with this name.
		for i := len(t.open) - 1; i >= 0; i-- {
			if t.open[i] == name {
				t.open = append(t.open[:i], t.open[i+1:]...)
				break
			}
		}
		t.spans = append(t.spans, span{name: name, start: start, end: end})
		t.mu.Unlock()
	}
}

// CurrentSpan returns the innermost currently-open span name, or ""
// when none is open (or the trace is nil).
func (t *Trace) CurrentSpan() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.open) == 0 {
		return ""
	}
	return t.open[len(t.open)-1]
}

// LockWaitAnnotation is the annotation key the sampling policy's
// contention rule reads; the handler records the request's accumulated
// lock wait under it before End.
const LockWaitAnnotation = "lock_wait_ns"

// keep evaluates the policy against a finished trace. Caller holds t.mu.
func (p *SamplePolicy) keep(t *Trace, nth uint64) bool {
	if p.SlowNs > 0 && t.end.Sub(t.start).Nanoseconds() >= p.SlowNs {
		return true
	}
	if p.ErrorStatus > 0 && t.status >= p.ErrorStatus {
		return true
	}
	if p.ContentionNs > 0 {
		for _, a := range t.annots {
			if a.key == LockWaitAnnotation && a.value >= p.ContentionNs {
				return true
			}
		}
	}
	if p.KeepOneIn > 0 && nth%p.KeepOneIn == 0 {
		return true
	}
	return false
}

// End closes the trace: it leaves the active set, the sampling policy
// decides retention, and the finished-trace observer (metrics, export
// pipeline) runs. End reports whether the trace was retained.
func (t *Trace) End() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	if !t.end.IsZero() {
		t.mu.Unlock()
		return false
	}
	t.end = time.Now()
	t.mu.Unlock()

	r := t.rec
	if r == nil {
		return false
	}
	r.active.Add(-1)
	r.mu.Lock()
	delete(r.inFlight, t.id)
	r.mu.Unlock()

	nth := r.examined.Add(1)
	policy := r.policy.Load()
	t.mu.Lock()
	keep := t.forced || policy == nil || policy.keep(t, nth)
	t.mu.Unlock()
	if keep {
		r.sampled.Add(1)
		r.retain(t)
	}
	if r.onEnd != nil {
		r.onEnd(t, keep)
	}
	return keep
}

// SpanSnapshot is one finished span for export.
type SpanSnapshot struct {
	Name    string `json:"name"`
	OffsetN int64  `json:"offsetNs"`
	DurN    int64  `json:"durationNs"`
}

// TraceSnapshot is one trace for export.
type TraceSnapshot struct {
	ID          uint64           `json:"id"`
	Op          string           `json:"op"`
	Start       time.Time        `json:"start"`
	DurationN   int64            `json:"durationNs"`
	Finished    bool             `json:"finished"`
	Status      int              `json:"status,omitempty"`
	Spans       []SpanSnapshot   `json:"spans,omitempty"`
	Annotations map[string]int64 `json:"annotations,omitempty"`
}

// Snapshot captures the trace's exportable state: id, op, status,
// timing, finished spans, and numeric annotations.
func (t *Trace) Snapshot() TraceSnapshot { return t.snapshot() }

func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSnapshot{ID: t.id, Op: t.op, Start: t.start, Status: t.status}
	if !t.end.IsZero() {
		s.Finished = true
		s.DurationN = t.end.Sub(t.start).Nanoseconds()
	} else {
		s.DurationN = time.Since(t.start).Nanoseconds()
	}
	for _, sp := range t.spans {
		s.Spans = append(s.Spans, SpanSnapshot{
			Name:    sp.name,
			OffsetN: sp.start.Sub(t.start).Nanoseconds(),
			DurN:    sp.end.Sub(sp.start).Nanoseconds(),
		})
	}
	if len(t.annots) > 0 {
		s.Annotations = make(map[string]int64, len(t.annots))
		for _, a := range t.annots {
			s.Annotations[a.key] = a.value
		}
	}
	return s
}

// Recent returns up to n most recent retained traces, newest first.
func (r *TraceRecorder) Recent(n int) []TraceSnapshot {
	r.mu.Lock()
	traces := make([]*Trace, len(r.ring))
	copy(traces, r.ring)
	r.mu.Unlock()

	sort.Slice(traces, func(i, j int) bool { return traces[i].id > traces[j].id })
	if n > 0 && len(traces) > n {
		traces = traces[:n]
	}
	out := make([]TraceSnapshot, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.snapshot())
	}
	return out
}
