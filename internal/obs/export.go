package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders all exportable metrics in the Prometheus text
// exposition format (version 0.0.4). Histograms are rendered as
// cumulative *_bucket series plus *_sum and *_count.
//
// Internally all duration histograms observe nanoseconds (the *_ns name
// suffix marks the unit). The Prometheus convention is base-unit seconds,
// so *_ns histograms are transformed at export time: the series is renamed
// *_seconds and le boundaries and the sum are divided by 1e9. Non-duration
// histograms (depths, counts) export their integer values unchanged.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var lastName string
	for _, m := range snap {
		name := m.Name
		seconds := m.Kind == "histogram" && strings.HasSuffix(name, "_ns")
		if seconds {
			name = strings.TrimSuffix(name, "_ns") + "_seconds"
		}
		if m.Name != lastName {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, sanitizeHelp(m.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, m.Kind); err != nil {
				return err
			}
			lastName = m.Name
		}
		switch m.Kind {
		case "histogram":
			if err := writePromHistogram(w, name, m, seconds); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(m.Labels, ""), m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, m MetricSnapshot, seconds bool) error {
	h := m.Histogram
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(m.Labels, promBound(b.UpperBound, seconds)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabelsInf(m.Labels), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(m.Labels, ""), promValue(h.Sum, seconds)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(m.Labels, ""), h.Count)
	return err
}

// WriteOpenMetrics renders all exportable metrics in the OpenMetrics 1.0
// text format. It differs from WritePrometheus in three ways: counter
// families are declared by their base name (the _total suffix stays on
// the sample), histogram bucket lines carry exemplars — the most recent
// trace id per bucket, linking a bad latency bucket straight to its
// retained span tree in /debug/traces — and the body ends with # EOF.
// The same _ns → _seconds transform applies, including to exemplar
// values.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	snap := r.Snapshot()
	var lastName string
	for _, m := range snap {
		name := m.Name
		seconds := m.Kind == "histogram" && strings.HasSuffix(name, "_ns")
		if seconds {
			name = strings.TrimSuffix(name, "_ns") + "_seconds"
		}
		if m.Name != lastName {
			family := name
			if m.Kind == "counter" {
				family = strings.TrimSuffix(family, "_total")
			}
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, sanitizeHelp(m.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, m.Kind); err != nil {
				return err
			}
			lastName = m.Name
		}
		switch m.Kind {
		case "histogram":
			if err := writeOMHistogram(w, name, m, seconds); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(m.Labels, ""), m.Value); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func writeOMHistogram(w io.Writer, name string, m MetricSnapshot, seconds bool) error {
	h := m.Histogram
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name,
			promLabels(m.Labels, promBound(b.UpperBound, seconds)), cum,
			omExemplar(b.Exemplar, seconds)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabelsInf(m.Labels), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(m.Labels, ""), promValue(h.Sum, seconds)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(m.Labels, ""), h.Count)
	return err
}

// omExemplar renders the OpenMetrics exemplar suffix for one bucket line:
// ` # {trace_id="<id>"} <value> <unix seconds>`. The only label is the
// server-assigned trace id (leak budget: no request content).
func omExemplar(e *Exemplar, seconds bool) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s %s",
		strconv.FormatUint(e.TraceID, 10),
		promValue(e.Value, seconds),
		strconv.FormatFloat(float64(e.TimeUnixMs)/1e3, 'f', 3, 64))
}

// promBound renders one le boundary: integer for native-unit histograms,
// float seconds for nanosecond histograms.
func promBound(bound uint64, seconds bool) string {
	if !seconds {
		return strconv.FormatUint(bound, 10)
	}
	return strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)
}

// promValue renders a histogram sum in the export unit.
func promValue(v uint64, seconds bool) string {
	if !seconds {
		return strconv.FormatUint(v, 10)
	}
	return strconv.FormatFloat(float64(v)/1e9, 'g', -1, 64)
}

func promLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

func promLabelsInf(labels []Label) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%q,", l.Key, l.Value)
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

func sanitizeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// VarsSnapshot is the JSON body served at /debug/vars: the full metric
// state plus recorder health.
type VarsSnapshot struct {
	Timestamp     time.Time        `json:"timestamp"`
	Metrics       []MetricSnapshot `json:"metrics"`
	Violations     uint64           `json:"leakBudgetViolations"`
	TracesActive   int64            `json:"tracesActive,omitempty"`
	TracesDropped  uint64           `json:"tracesDropped,omitempty"`
	TracesExamined uint64           `json:"tracesExamined,omitempty"`
	TracesSampled  uint64           `json:"tracesSampled,omitempty"`
}

// Vars builds the /debug/vars snapshot. rec may be nil.
func (r *Registry) Vars(rec *TraceRecorder) VarsSnapshot {
	s := VarsSnapshot{
		Timestamp:  time.Now(),
		Metrics:    r.Snapshot(),
		Violations: r.LeakBudgetViolations(),
	}
	if rec != nil {
		s.TracesActive = rec.Active()
		s.TracesDropped = rec.Dropped()
		s.TracesExamined = rec.Examined()
		s.TracesSampled = rec.Sampled()
	}
	return s
}

// WriteJSON writes the /debug/vars snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer, rec *TraceRecorder) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Vars(rec))
}
