package core

import (
	"crypto/x509"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/obs"
	"segshare/internal/store"
)

// newTelemetryFixture builds a server wired to an in-memory export sink
// with a sample-everything policy, so every request must surface as one
// wide event and one retained trace.
func newTelemetryFixture(t *testing.T, reg *obs.Registry, sink *obs.MemorySink) *handlerFixture {
	t.Helper()
	authority, err := ca.New("telemetry test CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	exporter := obs.NewExporter(sink, obs.ExporterOptions{FlushInterval: 5 * time.Millisecond})
	t.Cleanup(func() { exporter.Close() })
	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewMemory(),
		GroupStore:   store.NewMemory(),
		AuditStore:   store.NewMemory(),
		Obs:          reg,
		Exporter:     exporter,
		// Everything takes longer than 1ns, so every request is sampled.
		SamplePolicy: &obs.SamplePolicy{SlowNs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return &handlerFixture{server: server, authority: authority, certs: make(map[string]*x509.Certificate)}
}

// TestWideEventPipelineEndToEnd drives the whole telemetry loop over
// real requests: handler chokepoint → wide event → bounded exporter →
// sink, tail-sampled trace alongside it, exemplar in the OpenMetrics
// export — with every exported field inside the leak budget.
func TestWideEventPipelineEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	sink := obs.NewMemorySink()
	f := newTelemetryFixture(t, reg, sink)

	steps := []struct {
		user, method, target string
		body                 []byte
		want                 int
	}{
		{"alice", "MKCOL", "/fs/top-secret-dir/", nil, 201},
		{"alice", "PUT", "/fs/top-secret-dir/payroll.txt", []byte("confidential numbers"), 201},
		{"alice", "GET", "/fs/top-secret-dir/payroll.txt", nil, 200},
		{"mallory", "GET", "/fs/top-secret-dir/payroll.txt", nil, 403},
		{"alice", "GET", "/fs/nope", nil, 404},
	}
	for _, s := range steps {
		if rec := f.do(t, s.user, s.method, s.target, s.body, nil); rec.Code != s.want {
			t.Fatalf("%s %s = %d (want %d): %s", s.method, s.target, rec.Code, s.want, rec.Body)
		}
	}

	// The exporter flushes on its own cadence; wait for everything.
	var events []obs.WideEvent
	var traces int
	deadline := time.Now().Add(5 * time.Second)
	for {
		events = events[:0]
		traces = 0
		for _, rec := range sink.Records() {
			switch {
			case rec.Kind == "wide_event" && rec.Event != nil:
				events = append(events, *rec.Event)
			case rec.Kind == "trace" && rec.Trace != nil:
				traces++
			}
		}
		if len(events) >= len(steps) && traces >= len(steps) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("export pipeline delivered %d events / %d traces, want %d each", len(events), traces, len(steps))
		}
		time.Sleep(10 * time.Millisecond)
	}

	wantOps := map[string]bool{"fs_mkcol": true, "fs_put": true, "fs_get": true}
	wantCodes := map[string]bool{"2xx": false, "4xx": false}
	for _, ev := range events {
		if err := obs.VerifyWideEvent(ev); err != nil {
			t.Errorf("wide event %+v violates the leak budget: %v", ev, err)
		}
		if !wantOps[ev.Op] {
			t.Errorf("unexpected op class %q", ev.Op)
		}
		if _, ok := wantCodes[ev.Code]; ok {
			wantCodes[ev.Code] = true
		}
		if ev.TraceID == 0 {
			t.Error("wide event carries no trace id")
		}
		if !ev.Sampled {
			t.Errorf("sample-everything policy left event %d unsampled", ev.TraceID)
		}
	}
	for code, seen := range wantCodes {
		if !seen {
			t.Errorf("no wide event with status class %s", code)
		}
	}

	// The GET must have charged store work to its stats.
	var anyStoreOps bool
	for _, ev := range events {
		if ev.Op == "fs_get" && ev.Code == "2xx" && ev.StoreOps > 0 {
			anyStoreOps = true
		}
	}
	if !anyStoreOps {
		t.Error("no successful GET event recorded store operations")
	}

	// Nothing request-identifying may appear in the serialized export.
	raw, err := json.Marshal(sink.Records())
	if err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"alice", "mallory", "top-secret", "payroll", "confidential"} {
		if strings.Contains(string(raw), leak) {
			t.Fatalf("export stream leaks %q", leak)
		}
	}

	// The latency histograms must carry exemplars joinable to the traces.
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# {trace_id="`) {
		t.Error("OpenMetrics export carries no exemplars")
	}

	// And the wide-event counter must account for every request.
	var wideTotal uint64
	for _, m := range reg.Snapshot() {
		if m.Name == "segshare_wide_events_total" {
			wideTotal = uint64(m.Value)
		}
	}
	if wideTotal < uint64(len(steps)) {
		t.Errorf("segshare_wide_events_total = %d, want >= %d", wideTotal, len(steps))
	}
}

// TestWatchdogSyntheticStall wires the watchdog into a full server and
// trips the request-deadline check with an artificially held-open trace:
// trigger, snapshot, /debug/watchdog visibility, then recovery once the
// request finishes.
func TestWatchdogSyntheticStall(t *testing.T) {
	reg := obs.NewRegistry()
	f := newWatchdogFixture(t, reg)
	wd := f.server.Watchdog()
	if wd == nil {
		t.Fatal("watchdog enabled in config but Server.Watchdog() is nil")
	}

	wd.Sweep()
	if got := wd.Stalled(); len(got) != 0 {
		t.Fatalf("idle server reports stalls: %v", got)
	}

	// Synthetic stall: a request that never finishes (entered through the
	// same beginRequest chokepoint real requests use, so the in-flight
	// registry sees it). With a 1ns deadline the next sweep must flag it.
	tr := f.server.obs.beginRequest("fs_get", &obs.ReqStats{})
	time.Sleep(time.Microsecond)
	wd.Sweep()
	stalled := wd.Stalled()
	found := false
	for _, name := range stalled {
		if name == "request_deadline" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Stalled() = %v, want request_deadline", stalled)
	}
	if snaps := wd.Snapshots(); len(snaps) == 0 {
		t.Fatal("stall captured no profile snapshot")
	} else if !strings.Contains(snaps[0].Goroutine, "goroutine") {
		t.Error("snapshot missing goroutine profile")
	}

	rec := httptest.NewRecorder()
	wd.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/watchdog", nil))
	if !strings.Contains(rec.Body.String(), "request_deadline") {
		t.Errorf("/debug/watchdog does not report the stall: %s", rec.Body.String())
	}

	// Finish the request; the check recovers on the next sweep.
	f.server.obs.finishRequest("fs_get", 200, time.Microsecond, 0, 0, tr, &obs.ReqStats{})
	wd.Sweep()
	for _, name := range wd.Stalled() {
		if name == "request_deadline" {
			t.Fatal("request_deadline still stalled after the request finished")
		}
	}
}

// newWatchdogFixture builds a server with the watchdog on manual-sweep
// settings: an hour-long interval (tests drive Sweep directly) and a
// 1ns request deadline so any in-flight request counts as stalled.
func newWatchdogFixture(t *testing.T, reg *obs.Registry) *handlerFixture {
	t.Helper()
	authority, err := ca.New("watchdog test CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewMemory(),
		GroupStore:   store.NewMemory(),
		AuditStore:   store.NewMemory(),
		Obs:          reg,
		Watchdog: WatchdogConfig{
			Enable:          true,
			Interval:        time.Hour,
			RequestDeadline: time.Nanosecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return &handlerFixture{server: server, authority: authority, certs: make(map[string]*x509.Certificate)}
}
