// Command segshare-ca operates the trusted certificate authority of a
// SeGShare deployment (paper §IV-A): it creates the CA key material and
// issues client credentials carrying identity information.
//
// Usage:
//
//	segshare-ca init  -dir ./pki -name "Acme CA"
//	segshare-ca issue -dir ./pki -user alice -email alice@acme.example -out ./creds
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"segshare"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "segshare-ca:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: segshare-ca <init|issue> [flags]")
	}
	switch args[0] {
	case "init":
		return runInit(args[1:])
	case "issue":
		return runIssue(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	dir := fs.String("dir", "./pki", "directory for the CA files")
	name := fs.String("name", "SeGShare CA", "CA common name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(*dir, "ca-key.pem")); err == nil {
		return fmt.Errorf("%s already contains a CA key; refusing to overwrite", *dir)
	}
	authority, err := segshare.NewCA(*name)
	if err != nil {
		return err
	}
	certPEM, keyPEM, err := authority.MarshalPEM()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o700); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, "ca-cert.pem"), certPEM, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, "ca-key.pem"), keyPEM, 0o600); err != nil {
		return err
	}
	fmt.Printf("created CA %q in %s\n", *name, *dir)
	return nil
}

func runIssue(args []string) error {
	fs := flag.NewFlagSet("issue", flag.ContinueOnError)
	dir := fs.String("dir", "./pki", "directory holding the CA files")
	user := fs.String("user", "", "user ID (required)")
	email := fs.String("email", "", "email address")
	fullName := fs.String("name", "", "full name")
	out := fs.String("out", ".", "output directory for the credential")
	days := fs.Int("days", 365, "validity in days")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *user == "" {
		return fmt.Errorf("-user is required")
	}
	authority, err := loadAuthority(*dir)
	if err != nil {
		return err
	}
	cred, err := authority.IssueClientCertificate(segshare.Identity{
		UserID:   *user,
		Email:    *email,
		FullName: *fullName,
	}, time.Duration(*days)*24*time.Hour)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o700); err != nil {
		return err
	}
	certPath := filepath.Join(*out, *user+"-cert.pem")
	keyPath := filepath.Join(*out, *user+"-key.pem")
	if err := os.WriteFile(certPath, cred.CertPEM, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(keyPath, cred.KeyPEM, 0o600); err != nil {
		return err
	}
	fmt.Printf("issued credential for %q: %s, %s\n", *user, certPath, keyPath)
	return nil
}

func loadAuthority(dir string) (*segshare.CertAuthority, error) {
	certPEM, err := os.ReadFile(filepath.Join(dir, "ca-cert.pem"))
	if err != nil {
		return nil, err
	}
	keyPEM, err := os.ReadFile(filepath.Join(dir, "ca-key.pem"))
	if err != nil {
		return nil, err
	}
	return segshare.LoadCA(certPEM, keyPEM)
}
