module segshare

go 1.24
