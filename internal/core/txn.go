package core

import (
	"errors"
	"fmt"
	"time"

	"segshare/internal/audit"
	"segshare/internal/journal"
	"segshare/internal/rollback"
)

// This file makes every logical operation atomic-on-recovery. A mutation
// runs inside mutate(), which stages all putBlob/deleteBlob calls in an
// opCtx instead of issuing them; when the operation's function returns
// successfully, the staged set is sealed into one journal intent,
// committed, applied to the backends, and marked applied. A crash or
// fault between any two backend writes is repaired by recoverJournal:
// committed intents are re-applied (roll forward), an intent torn during
// its commit is discarded (roll back). Without a journal, mutate still
// runs — writes go straight through as before, only the compensation
// hooks (dedup refcounts) keep their ordering guarantees.

// stagedPut is one buffered blob write. Header and body are kept as
// plaintext (the encoded rollback header and the logical body); the
// per-file encryption happens at apply time, so a recovery replay
// produces a fresh valid ciphertext.
type stagedPut struct {
	ns     *namespace
	name   string
	hdrEnc []byte
	body   []byte
	// needsToken marks a namespace-root write: the root-guard commit (and
	// the token it yields) is deferred to apply time, so an aborted
	// operation never advances the guard past the stored root.
	needsToken bool
}

type stagedDel struct {
	ns   *namespace
	name string
}

// opCtx is one in-flight logical operation: the staged write/delete set
// plus compensation hooks. Exactly one opCtx exists at a time — the lock
// manager serializes mutations whenever staging is on (coupled mode).
type opCtx struct {
	op      string
	staging bool

	order    []string
	puts     map[string]*stagedPut
	delOrder []string
	dels     map[string]*stagedDel

	// onCommit runs after the operation is durably applied; onAbort runs
	// when it failed before its intent committed. Used for dedup refcount
	// compensation, which cannot ride in the journal (Release is not
	// idempotent).
	onCommit []func()
	onAbort  []func()
}

func (tx *opCtx) stagePut(ns *namespace, name string, hdr *rollback.Header, body []byte, needsToken bool) {
	key := treeID(ns, name)
	if _, ok := tx.dels[key]; ok {
		// Delete-then-recreate within one operation: the recreate wins.
		delete(tx.dels, key)
	}
	var hdrEnc []byte
	if hdr != nil {
		hdrEnc = hdr.Encode()
	}
	if _, ok := tx.puts[key]; !ok {
		tx.order = append(tx.order, key)
	}
	tx.puts[key] = &stagedPut{
		ns:         ns,
		name:       name,
		hdrEnc:     hdrEnc,
		body:       append([]byte(nil), body...),
		needsToken: needsToken,
	}
}

func (tx *opCtx) stageDelete(ns *namespace, name string) {
	key := treeID(ns, name)
	// A staged put is dropped rather than shadowed — but the backend may
	// hold a pre-existing object under the same name (put-then-delete of
	// an existing file), so the delete is recorded regardless.
	delete(tx.puts, key)
	if _, ok := tx.dels[key]; !ok {
		tx.delOrder = append(tx.delOrder, key)
	}
	tx.dels[key] = &stagedDel{ns: ns, name: name}
}

// staged returns the staged state of a name: the buffered put, or
// deleted=true when a staged delete shadows the backend object.
func (tx *opCtx) staged(ns *namespace, name string) (sp *stagedPut, deleted bool) {
	key := treeID(ns, name)
	if sp, ok := tx.puts[key]; ok {
		return sp, false
	}
	if _, ok := tx.dels[key]; ok {
		return nil, true
	}
	return nil, false
}

// records converts the staged set into journal intent records: writes in
// first-staged order, then deletes.
func (tx *opCtx) records() ([]journal.Write, []journal.Delete) {
	var writes []journal.Write
	for _, key := range tx.order {
		sp, ok := tx.puts[key]
		if !ok {
			continue
		}
		writes = append(writes, journal.Write{
			Store:      sp.ns.kind,
			Name:       sp.name,
			Header:     sp.hdrEnc,
			Body:       sp.body,
			NeedsToken: sp.needsToken,
		})
	}
	var dels []journal.Delete
	for _, key := range tx.delOrder {
		d, ok := tx.dels[key]
		if !ok {
			continue
		}
		dels = append(dels, journal.Delete{Store: d.ns.kind, Name: d.name})
	}
	return writes, dels
}

func (tx *opCtx) runCommitHooks() {
	for _, fn := range tx.onCommit {
		fn()
	}
}

func (tx *opCtx) runAbortHooks() {
	for i := len(tx.onAbort) - 1; i >= 0; i-- {
		tx.onAbort[i]()
	}
}

// staging reports whether the active operation buffers writes for a
// journal intent (used by the putBlob/deleteBlob chokepoints and the
// relation caches, which must not cache uncommitted state).
func (fm *fileManager) staging() bool {
	return fm.tx != nil && fm.tx.staging
}

// afterOp schedules fn for after the operation durably commits. Outside
// any operation context (direct fileManager use in tests), the work has
// already hit the backends, so fn runs immediately.
func (fm *fileManager) afterOp(fn func()) {
	if fm.tx != nil {
		fm.tx.onCommit = append(fm.tx.onCommit, fn)
		return
	}
	fn()
}

// onOpAbort schedules fn for when the operation aborts before its intent
// committed. Outside an operation context callers compensate inline.
func (fm *fileManager) onOpAbort(fn func()) {
	if fm.tx != nil {
		fm.tx.onAbort = append(fm.tx.onAbort, fn)
	}
}

// mutate runs one logical operation. Re-entrant calls join the active
// operation (directory moves recurse through movePath/removePath). With
// a journal, writes stage into an intent that commits before any backend
// object changes; without one, fn's writes apply directly and only the
// hook ordering is provided.
func (fm *fileManager) mutate(op string, fn func() error) error {
	if fm.tx != nil {
		return fn()
	}
	// Cancellation is honored here and immediately before the intent
	// commit below — and nowhere later. A client that disconnects before
	// its mutation becomes durable saves the work; once the intent is
	// committed the operation always completes (or is finished by
	// recovery), preserving atomicity.
	if err := fm.ctxErr(); err != nil {
		return err
	}
	// Degraded read-only mode: while a store breaker is open, reject the
	// mutation before any trusted state changes. The gate admits breaker
	// probes itself (MutationsAllowed), so the mutations that do pass are
	// exactly the ones that can close the breaker again.
	if fm.shared.degraded != nil {
		if err := fm.shared.degraded(); err != nil {
			fm.rs.MarkDegraded()
			return err
		}
	}
	// A failure after an intent committed leaves the operation half
	// applied; finish it before accepting new work.
	if fm.shared.journalDirty.Load() {
		if err := fm.recoverJournal(recoverOpts{strict: true, validate: fm.rollbackOn}); err != nil {
			return err
		}
	}
	tx := &opCtx{
		op:      op,
		staging: fm.journal != nil,
		puts:    make(map[string]*stagedPut),
		dels:    make(map[string]*stagedDel),
	}
	fm.tx = tx
	defer func() { fm.tx = nil }()

	if err := fn(); err != nil {
		tx.runAbortHooks()
		return err
	}
	if !tx.staging || (len(tx.order) == 0 && len(tx.delOrder) == 0) {
		tx.runCommitHooks()
		return nil
	}

	// Last cancellation point: nothing durable exists yet, so aborting
	// here rolls back cleanly. After Commit returns, the op is applied
	// unconditionally — fm.ctx is never consulted again.
	if err := fm.ctxErr(); err != nil {
		tx.runAbortHooks()
		return err
	}
	writes, deletes := tx.records()
	commitStart := time.Now()
	seq, err := fm.journal.Commit(op, writes, deletes)
	fm.rs.AddJournalCommit(time.Since(commitStart))
	if err != nil {
		// The intent never became durable: the operation rolls back (no
		// backend object was touched yet).
		tx.runAbortHooks()
		return err
	}
	if err := fm.applyIntent(writes, deletes); err != nil {
		// The intent IS durable: recovery will finish the operation, so
		// commit hooks must not run yet and abort hooks must not run at
		// all. Refuse further mutations until the replay succeeds.
		fm.shared.journalDirty.Store(true)
		return err
	}
	if err := fm.journal.MarkApplied(seq); err != nil {
		// The operation applied fully; only the journal cleanup failed.
		// Report success, but force a (harmless, idempotent) replay before
		// the next mutation.
		fm.shared.journalDirty.Store(true)
	}
	tx.runCommitHooks()
	return nil
}

// nsByKind resolves a journal record's store kind.
func (fm *fileManager) nsByKind(kind string) (*namespace, error) {
	switch kind {
	case contentRootKey:
		return fm.content, nil
	case groupRootKey:
		return fm.group, nil
	}
	return nil, fmt.Errorf("%w: unknown store kind in journal record", ErrIntegrity)
}

// applyIntent writes an intent's staged state to the backends: all
// writes in order, then all deletes. Root writes flagged NeedsToken
// commit the namespace guard and take its fresh token, which keeps a
// recovery replay consistent with the guard state. Deletes tolerate
// already-absent objects so replays are idempotent.
func (fm *fileManager) applyIntent(writes []journal.Write, deletes []journal.Delete) error {
	for _, w := range writes {
		ns, err := fm.nsByKind(w.Store)
		if err != nil {
			return err
		}
		var hdr *rollback.Header
		if len(w.Header) > 0 {
			h, _, err := rollback.DecodeHeader(w.Header)
			if err != nil {
				return fmt.Errorf("%w: %s: bad header in journal record", ErrIntegrity, w.Name)
			}
			hdr = h
		}
		if w.NeedsToken {
			if hdr == nil {
				return fmt.Errorf("%w: %s: tokenless root record", ErrIntegrity, w.Name)
			}
			token, err := ns.guard.Commit(hdr.Main)
			if err != nil {
				return err
			}
			hdr.Token = token
		}
		if err := fm.putBlobRaw(ns, w.Name, hdr, w.Body); err != nil {
			return err
		}
	}
	for _, d := range deletes {
		ns, err := fm.nsByKind(d.Store)
		if err != nil {
			return err
		}
		if err := fm.deleteBlobRaw(ns, d.Name); err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
	}
	return nil
}

type recoverOpts struct {
	// strict enforces the journal's truncation bound against the enclave
	// counter; relaxed only after a CA-authorized backup restoration.
	strict bool
	// validate re-checks the rollback-tree path of every replayed object.
	validate bool
}

// recoverJournal scans the journal and re-applies every committed intent
// in order (crashes between an intent's commit and its application roll
// forward; a commit torn by the crash was never applied and its record
// is discarded — the rollback case). Replays are recorded in the audit
// trail, and with validate set, every object a replay touched is
// re-validated against the rollback tree afterwards.
func (fm *fileManager) recoverJournal(opts recoverOpts) error {
	if fm.journal == nil {
		return nil
	}
	fm.shared.recovery.begin()
	defer fm.shared.recovery.finish()
	set, err := fm.journal.Recover(opts.strict)
	if err != nil {
		return err
	}
	for i, rec := range set.Pending {
		if err := fm.applyIntent(rec.Writes, rec.Deletes); err != nil {
			return fmt.Errorf("segshare: replay journal intent %d: %w", rec.Seq, err)
		}
		if err := fm.journal.MarkApplied(rec.Seq); err != nil {
			return err
		}
		fm.shared.recovery.progress(i + 1)
	}
	fm.shared.journalDirty.Store(false)
	if len(set.Pending) > 0 || set.Discarded > 0 {
		fm.obs.auditEmit(audit.Event{
			Event:  audit.EventRecovery,
			Detail: fmt.Sprintf("replayed=%d discarded=%d", len(set.Pending), set.Discarded),
		})
	}
	if !opts.validate {
		return nil
	}
	seen := make(map[string]bool)
	for _, rec := range set.Pending {
		for _, w := range rec.Writes {
			key := w.Store + ":" + w.Name
			if seen[key] {
				continue
			}
			seen[key] = true
			ns, err := fm.nsByKind(w.Store)
			if err != nil {
				return err
			}
			hdr, body, err := fm.getBlob(ns, w.Name)
			if errors.Is(err, ErrNotFound) {
				continue // written then deleted within the same intent
			}
			if err != nil {
				return err
			}
			if err := fm.validateNode(ns, w.Name, hdr, body); err != nil {
				return err
			}
		}
	}
	return nil
}
