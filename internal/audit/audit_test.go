package audit

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"segshare/internal/enclave"
	"segshare/internal/obs"
	"segshare/internal/store"
)

func testKeys(t *testing.T) Keys {
	t.Helper()
	keys, err := DeriveKeys([]byte("test-root-key-0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

func testCounter(t *testing.T) *enclave.MonotonicCounter {
	t.Helper()
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := platform.Launch(enclave.CodeIdentity{Name: "audit-test", Version: 1, Config: []byte("cfg")})
	if err != nil {
		t.Fatal(err)
	}
	return encl.Counter("audit-log")
}

// buildLog writes n records through a fresh writer and closes it.
func buildLog(t *testing.T, b store.Backend, keys Keys, ctr *enclave.MonotonicCounter, n int, opt Options) {
	t.Helper()
	if opt.Obs == nil {
		opt.Obs = obs.NewRegistry()
	}
	log, err := Open(b, keys, ctr, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		log.Emit(Event{
			Event:     EventFileAuthzAllow,
			Decision:  DecisionAllow,
			Op:        "fs_get",
			RequestID: uint64(i + 1),
			User:      "alice",
			Path:      fmt.Sprintf("/doc-%d.txt", i),
		})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripAndDump(t *testing.T) {
	b := store.NewMemory()
	keys := testKeys(t)
	ctr := testCounter(t)
	reg := obs.NewRegistry()

	log, err := Open(b, keys, ctr, Options{CheckpointEvery: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Event: EventAuthnSuccess, User: "alice", Op: "fs_get", RequestID: 1},
		{Event: EventFileAuthzDeny, Decision: DecisionDeny, User: "bob", Path: "/secret.txt", Op: "fs_get", RequestID: 2},
		{Event: EventGroupChange, Decision: DecisionAllow, User: "alice", Target: "bob", Group: "finance", Op: "api_groups_add", RequestID: 3},
		{Event: EventRollbackFailure, Detail: "stale main hash"},
		{Event: EventKeyOp, Detail: "root_unseal"},
	}
	for _, ev := range events {
		log.Emit(ev)
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	head := log.Head()
	if head.Records != uint64(len(events)) {
		t.Fatalf("head records = %d, want %d", head.Records, len(events))
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	var dump bytes.Buffer
	res, err := Verify(b, keys, VerifyOptions{Dump: &dump, ExpectCounter: ctr.Value()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != uint64(len(events)) {
		t.Fatalf("verified %d records, want %d", res.Records, len(events))
	}
	if res.Checkpoints < 2 { // one at CheckpointEvery=4, one final
		t.Fatalf("checkpoints = %d, want >= 2", res.Checkpoints)
	}
	if res.LastCounter != ctr.Value() {
		t.Fatalf("last counter = %d, enclave counter = %d", res.LastCounter, ctr.Value())
	}

	var recs []Record
	dec := json.NewDecoder(&dump)
	for dec.More() {
		var r Record
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if len(recs) != len(events) {
		t.Fatalf("dumped %d records, want %d", len(recs), len(events))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.Event != events[i].Event || r.User != events[i].User || r.Path != events[i].Path ||
			r.Target != events[i].Target || r.Group != events[i].Group || r.RequestID != events[i].RequestID {
			t.Fatalf("record %d = %+v, want fields of %+v", i, r, events[i])
		}
		if r.TimeNanos == 0 {
			t.Fatalf("record %d has no timestamp", i)
		}
	}
}

// TestCiphertextHidesIdentity ensures no plaintext principal or path ever
// reaches the untrusted store.
func TestCiphertextHidesIdentity(t *testing.T) {
	b := store.NewMemory()
	keys := testKeys(t)
	buildLog(t, b, keys, nil, 10, Options{})
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		body, err := b.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, leak := range []string{"alice", "doc-", "authz_allow", "fs_get"} {
			if bytes.Contains(body, []byte(leak)) {
				t.Fatalf("segment %s leaks %q in plaintext", n, leak)
			}
		}
	}
}

func TestTamperBitFlip(t *testing.T) {
	b := store.NewMemory()
	keys := testKeys(t)
	buildLog(t, b, keys, testCounter(t), 20, Options{CheckpointEvery: 8})

	seg, err := b.Get(segmentName(1))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the first record's ciphertext payload (past the
	// frame header).
	seg[frameHeaderLen+3] ^= 0x01
	if err := b.Put(segmentName(1), seg); err != nil {
		t.Fatal(err)
	}
	_, err = Verify(b, keys, VerifyOptions{})
	if !errors.Is(err, ErrRecordCorrupt) {
		t.Fatalf("bit flip: got %v, want ErrRecordCorrupt", err)
	}
}

func TestTamperTruncateSegment(t *testing.T) {
	b := store.NewMemory()
	keys := testKeys(t)
	buildLog(t, b, keys, testCounter(t), 20, Options{CheckpointEvery: 8})

	seg, err := b.Get(segmentName(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put(segmentName(1), seg[:len(seg)-7]); err != nil {
		t.Fatal(err)
	}
	_, err = Verify(b, keys, VerifyOptions{})
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncation: got %v, want ErrTruncated", err)
	}
}

func TestTamperSwapSegments(t *testing.T) {
	b := store.NewMemory()
	keys := testKeys(t)
	// Small segments so the log spans several objects.
	buildLog(t, b, keys, testCounter(t), 30, Options{SegmentEntries: 8, CheckpointEvery: 100})

	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("want >= 3 segments, got %v", names)
	}
	s1, err := b.Get(segmentName(1))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Get(segmentName(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put(segmentName(1), s2); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(segmentName(2), s1); err != nil {
		t.Fatal(err)
	}
	_, err = Verify(b, keys, VerifyOptions{})
	if !errors.Is(err, ErrSegmentOrder) {
		t.Fatalf("segment swap: got %v, want ErrSegmentOrder", err)
	}
}

func TestTamperCheckpointReplay(t *testing.T) {
	b := store.NewMemory()
	keys := testKeys(t)
	ctr := testCounter(t)
	reg := obs.NewRegistry()

	// First epoch.
	log, err := Open(b, keys, ctr, Options{CheckpointEvery: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		log.Emit(Event{Event: EventFileAuthzAllow, Op: "fs_get"})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// The adversary snapshots the whole audit store, lets the enclave
	// write a second epoch, then rolls the store back — an internally
	// consistent but stale log (whole-store rollback, paper §V-E).
	snapshot := map[string][]byte{}
	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		data, err := b.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		snapshot[n] = data
	}

	log, err = Open(b, keys, ctr, Options{CheckpointEvery: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		log.Emit(Event{Event: EventFileAuthzDeny, Op: "fs_put"})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	liveCounter := ctr.Value()

	// Roll back.
	for _, n := range names {
		if err := b.Put(n, snapshot[n]); err != nil {
			t.Fatal(err)
		}
	}
	extra, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range extra {
		if _, ok := snapshot[n]; !ok {
			if err := b.Delete(n); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Without the live counter the stale log looks fine…
	if _, err := Verify(b, keys, VerifyOptions{}); err != nil {
		t.Fatalf("stale log should be internally consistent, got %v", err)
	}
	// …but against the enclave counter it is exposed.
	_, err = Verify(b, keys, VerifyOptions{ExpectCounter: liveCounter})
	if !errors.Is(err, ErrCheckpointReplay) {
		t.Fatalf("checkpoint replay: got %v, want ErrCheckpointReplay", err)
	}
	// The enclave notices the same rollback at startup.
	_, err = Open(b, keys, ctr, Options{Obs: reg})
	if !errors.Is(err, ErrLogRollback) {
		t.Fatalf("open after rollback: got %v, want ErrLogRollback", err)
	}
}

// TestTamperCheckpointForged covers in-place edits of a checkpoint frame.
func TestTamperCheckpointForged(t *testing.T) {
	b := store.NewMemory()
	keys := testKeys(t)
	buildLog(t, b, keys, testCounter(t), 8, Options{CheckpointEvery: 4})

	seg, err := b.Get(segmentName(1))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the last frame, which is the final checkpoint's MAC.
	seg[len(seg)-1] ^= 0x80
	if err := b.Put(segmentName(1), seg); err != nil {
		t.Fatal(err)
	}
	_, err = Verify(b, keys, VerifyOptions{})
	if !errors.Is(err, ErrCheckpointForged) {
		t.Fatalf("checkpoint forge: got %v, want ErrCheckpointForged", err)
	}
}

func TestResumeAcrossRestart(t *testing.T) {
	b := store.NewMemory()
	keys := testKeys(t)
	ctr := testCounter(t)
	reg := obs.NewRegistry()

	for epoch := 0; epoch < 3; epoch++ {
		log, err := Open(b, keys, ctr, Options{CheckpointEvery: 4, SegmentEntries: 16, Obs: reg})
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		for i := 0; i < 10; i++ {
			log.Emit(Event{Event: EventFileAuthzAllow, Op: "fs_get"})
		}
		if err := log.Close(); err != nil {
			t.Fatalf("epoch %d close: %v", epoch, err)
		}
	}
	res, err := Verify(b, keys, VerifyOptions{ExpectCounter: ctr.Value(), ExpectRecords: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 30 {
		t.Fatalf("records = %d, want 30", res.Records)
	}
	if res.Segments < 3 {
		t.Fatalf("segments = %d, want >= 3 (one per epoch)", res.Segments)
	}
}

func TestConcurrentEmitters(t *testing.T) {
	b := store.NewMemory()
	keys := testKeys(t)
	ctr := testCounter(t)
	reg := obs.NewRegistry()

	log, err := Open(b, keys, ctr, Options{
		Overflow: OverflowBlock, Buffer: 16, CheckpointEvery: 32, SegmentEntries: 64, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	const emitters, perEmitter = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				log.Emit(Event{
					Event:     EventFileAuthzAllow,
					Op:        "fs_put",
					RequestID: uint64(g*perEmitter + i),
					User:      "user",
				})
				if i%50 == 0 {
					_ = log.Head()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Verify(b, keys, VerifyOptions{ExpectCounter: ctr.Value(), ExpectRecords: emitters * perEmitter})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != emitters*perEmitter {
		t.Fatalf("records = %d, want %d", res.Records, emitters*perEmitter)
	}
}

// slowPutBackend delays every Put so the emit queue backs up.
type slowPutBackend struct {
	store.Backend
	delay time.Duration
}

func (s *slowPutBackend) Put(name string, data []byte) error {
	time.Sleep(s.delay)
	return s.Backend.Put(name, data)
}

func TestOverflowDropCountsAndChainSurvives(t *testing.T) {
	b := &slowPutBackend{Backend: store.NewMemory(), delay: 2 * time.Millisecond}
	keys := testKeys(t)
	reg := obs.NewRegistry()

	log, err := Open(b, keys, nil, Options{Overflow: OverflowDrop, Buffer: 2, CheckpointEvery: 1000, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	const emitted = 500
	for i := 0; i < emitted; i++ {
		log.Emit(Event{Event: EventAuthnSuccess, Op: "fs_get"})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	drops := log.Drops()
	if drops == 0 {
		t.Fatal("expected drops under a saturated queue")
	}
	res, err := Verify(b.Backend, keys, VerifyOptions{})
	if err != nil {
		t.Fatalf("log with drops must still verify: %v", err)
	}
	if res.Records+drops != emitted {
		t.Fatalf("records %d + drops %d != emitted %d", res.Records, drops, emitted)
	}
}

func TestOverflowBlockLosesNothing(t *testing.T) {
	b := &slowPutBackend{Backend: store.NewMemory(), delay: time.Millisecond}
	keys := testKeys(t)
	reg := obs.NewRegistry()

	log, err := Open(b, keys, nil, Options{Overflow: OverflowBlock, Buffer: 2, CheckpointEvery: 1000, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	const emitted = 100
	for i := 0; i < emitted; i++ {
		log.Emit(Event{Event: EventAuthnSuccess, Op: "fs_get"})
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if drops := log.Drops(); drops != 0 {
		t.Fatalf("block policy dropped %d events", drops)
	}
	if _, err := Verify(b.Backend, keys, VerifyOptions{ExpectRecords: emitted}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsPassLeakBudget(t *testing.T) {
	reg := obs.NewRegistry()
	b := store.NewMemory()
	buildLog(t, b, testKeys(t), nil, 5, Options{Obs: reg})
	if v := reg.LeakBudgetViolations(); v != 0 {
		t.Fatalf("leak budget violations = %d", v)
	}
	for _, err := range reg.VerifyAll() {
		t.Error(err)
	}
	// The event label must be present with its closed-set value.
	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "segshare_audit_records_total" {
			for _, l := range m.Labels {
				if l.Key == "event" && l.Value == string(EventFileAuthzAllow) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("segshare_audit_records_total{event=authz_allow} not registered")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	b := store.NewMemory()
	buildLog(t, b, testKeys(t), nil, 3, Options{})
	wrong, err := DeriveKeys([]byte("a-different-root-key"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(b, wrong, VerifyOptions{}); err == nil {
		t.Fatal("verification with the wrong key must fail")
	} else if !errors.Is(err, ErrRecordCorrupt) && !errors.Is(err, ErrCheckpointForged) {
		t.Fatalf("wrong key: got %v", err)
	}
}

func TestHeadIsLeakSafe(t *testing.T) {
	b := store.NewMemory()
	keys := testKeys(t)
	log, err := Open(b, keys, nil, Options{Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	log.Emit(Event{Event: EventFileAuthzDeny, User: "alice", Path: "/payroll.xlsx", Group: "finance"})
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(log.Head())
	if err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"alice", "payroll", "finance"} {
		if strings.Contains(string(raw), leak) {
			t.Fatalf("head JSON leaks %q: %s", leak, raw)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}
