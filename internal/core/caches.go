package core

import (
	"strings"

	"segshare/internal/acl"
	"segshare/internal/cache"
	"segshare/internal/pae"
)

// The in-enclave relation caches (IBBE-SGX makes the same observation:
// caching trusted group state inside the enclave is what makes SGX
// access control practical at scale). Every authorization check walks
// the same few small relation files — the group list, the caller's
// member list, the target's ACL and possibly its parent's — and each
// walk previously cost one untrusted-store fetch, one HKDF derivation,
// one AES-GCM open, and (with rollback protection) a validation pass
// per file. The caches keep the *decoded, validated* objects in enclave
// memory instead; see package cache for the generation-tag safety model.
//
// Invalidation is centralized in fileManager.putBlob/deleteBlob — the
// single chokepoints every mutation (ACL updates, membership changes,
// moves, removals, rollback-tree propagation) funnels through — so no
// write path can miss an invalidation. Values are invalidate-only,
// never updated in place: the next read goes back to the untrusted
// store and re-validates, which keeps rollback detection for freshly
// written files exactly as strong as without the cache.

// defaultCacheBytes bounds the relation caches to a deliberately small
// slice of the EPC budget (the paper's enclave keeps ~dozens of MiB of
// heap); relation files are tiny, so 8 MiB holds tens of thousands.
const defaultCacheBytes = 8 << 20

// fileKeyCost is the accounting cost of one cached derived key: the key
// itself plus map/ring overhead.
const fileKeyCost = 64

// relCaches bundles one cache per relation kind plus the derived
// per-file keys. Individual caches may be nil (always-miss); the struct
// itself is never nil on a fileManager.
type relCaches struct {
	acls     *cache.Cache[*acl.ACL]
	dirs     *cache.Cache[*dirBody]
	members  *cache.Cache[*acl.MemberList]
	groups   *cache.Cache[*acl.GroupList]
	fileKeys *cache.Cache[pae.Key]
}

// newRelCaches splits a total byte budget across the relation kinds.
// A non-positive budget disables caching entirely.
func newRelCaches(totalBytes int64, o *serverObs) *relCaches {
	if totalBytes <= 0 {
		return &relCaches{}
	}
	frac := func(pct int64) int64 { return totalBytes * pct / 100 }
	return &relCaches{
		acls:     cache.New[*acl.ACL](frac(35), o.cacheHooks("acls")),
		dirs:     cache.New[*dirBody](frac(30), o.cacheHooks("dirs")),
		members:  cache.New[*acl.MemberList](frac(20), o.cacheHooks("memberships")),
		groups:   cache.New[*acl.GroupList](frac(5), o.cacheHooks("grouplist")),
		fileKeys: cache.New[pae.Key](frac(10), o.cacheHooks("derived")),
	}
}

// flushAll empties every cache, e.g. after a backup restoration rebinds
// the root state to whatever the operator restored.
func (rc *relCaches) flushAll() {
	rc.acls.Flush()
	rc.dirs.Flush()
	rc.members.Flush()
	rc.groups.Flush()
	// Derived keys are a pure function of SK_r and the name; they stay.
}

// invalidateRel drops the cached decodings of a logical name after its
// blob in the untrusted store changed. Called with the store write
// completed (invalidate-last; see package cache).
func (fm *fileManager) invalidateRel(ns *namespace, name string) {
	if ns == fm.group {
		switch {
		case name == groupListName:
			fm.caches.groups.Invalidate(groupListName)
		case strings.HasPrefix(name, memberNamePfx):
			fm.caches.members.Invalidate(name)
		}
		return
	}
	switch {
	case strings.HasSuffix(name, ".acl"):
		fm.caches.acls.Invalidate(name)
	case ns.isInner(name):
		fm.caches.dirs.Invalidate(name)
	}
}

// CacheStats reports each relation cache's counters, keyed by the same
// kind names used for the cache metrics. Benchmarks read it to compute
// hit rates.
func (s *Server) CacheStats() map[string]cache.Stats {
	rc := s.fm.caches
	return map[string]cache.Stats{
		"acls":        rc.acls.Stats(),
		"dirs":        rc.dirs.Stats(),
		"memberships": rc.members.Stats(),
		"grouplist":   rc.groups.Stats(),
		"derived":     rc.fileKeys.Stats(),
	}
}
