// Package fspath implements SeGShare's file-system path model (paper
// §II-C): a tree of directory files rooted at "/", where a directory's
// path is the concatenation of directory names delimited and concluded by
// "/", and a content file's path is its parent directory's path followed
// by the filename. Consequently a path denotes a directory iff it ends in
// "/".
package fspath

import (
	"errors"
	"fmt"
	"strings"
)

// MaxPathLen bounds the length of an accepted path. It keeps ACL files,
// directory listings, and protocol messages small.
const MaxPathLen = 4096

// Path errors.
var (
	// ErrInvalidPath is returned for syntactically invalid paths.
	ErrInvalidPath = errors.New("fspath: invalid path")
	// ErrNotDir is returned when a directory path is required.
	ErrNotDir = errors.New("fspath: not a directory path")
)

// Root is the path of the root directory file f_Dr.
var Root = Path{raw: "/", dir: true}

// Path is a validated SeGShare path. The zero value is invalid; obtain
// paths via Parse, Dir, File, or navigation methods.
type Path struct {
	raw string
	dir bool
}

// Parse validates s and returns it as a Path. Directory paths must end in
// "/"; all path segments must be non-empty, must not be "." or "..", and
// must not contain control characters.
func Parse(s string) (Path, error) {
	if s == "" {
		return Path{}, fmt.Errorf("%w: empty", ErrInvalidPath)
	}
	if len(s) > MaxPathLen {
		return Path{}, fmt.Errorf("%w: longer than %d bytes", ErrInvalidPath, MaxPathLen)
	}
	if s[0] != '/' {
		return Path{}, fmt.Errorf("%w: %q is not absolute", ErrInvalidPath, s)
	}
	if s == "/" {
		return Root, nil
	}
	dir := strings.HasSuffix(s, "/")
	trimmed := strings.TrimSuffix(s[1:], "/")
	for _, seg := range strings.Split(trimmed, "/") {
		if err := validateSegment(seg); err != nil {
			return Path{}, fmt.Errorf("%w: %q: %v", ErrInvalidPath, s, err)
		}
	}
	return Path{raw: s, dir: dir}, nil
}

// MustParse is Parse for statically known-good paths; it panics on error.
// It is intended for tests and package-internal constants only.
func MustParse(s string) Path {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Dir builds a directory path from segments, e.g. Dir("a","b") == "/a/b/".
func Dir(segments ...string) (Path, error) {
	return build(segments, true)
}

// File builds a content-file path from segments, e.g.
// File("a","f.txt") == "/a/f.txt".
func File(segments ...string) (Path, error) {
	if len(segments) == 0 {
		return Path{}, fmt.Errorf("%w: a file path needs at least a filename", ErrInvalidPath)
	}
	return build(segments, false)
}

func build(segments []string, dir bool) (Path, error) {
	if len(segments) == 0 {
		return Root, nil
	}
	var b strings.Builder
	for _, seg := range segments {
		if err := validateSegment(seg); err != nil {
			return Path{}, fmt.Errorf("%w: %v", ErrInvalidPath, err)
		}
		b.WriteByte('/')
		b.WriteString(seg)
	}
	if dir {
		b.WriteByte('/')
	}
	return Parse(b.String())
}

func validateSegment(seg string) error {
	switch seg {
	case "":
		return errors.New("empty segment")
	case ".", "..":
		return fmt.Errorf("segment %q not allowed", seg)
	}
	for _, r := range seg {
		if r == '/' {
			return errors.New("slash in segment")
		}
		if r < 0x20 || r == 0x7f {
			return errors.New("control character in segment")
		}
	}
	return nil
}

// String returns the canonical textual form of the path.
func (p Path) String() string { return p.raw }

// IsZero reports whether p is the invalid zero value.
func (p Path) IsZero() bool { return p.raw == "" }

// IsDir reports whether p denotes a directory file.
func (p Path) IsDir() bool { return p.dir }

// IsRoot reports whether p is the root directory "/".
func (p Path) IsRoot() bool { return p.raw == "/" }

// Name returns the last segment of the path: the directory name for
// directories (§II-C defines the root's name as "/") and the filename for
// content files.
func (p Path) Name() string {
	if p.IsRoot() {
		return "/"
	}
	trimmed := strings.TrimSuffix(p.raw, "/")
	return trimmed[strings.LastIndexByte(trimmed, '/')+1:]
}

// Parent returns the path of the parent directory. The parent of the root
// is the root itself; callers that need to distinguish should check
// IsRoot first.
func (p Path) Parent() Path {
	if p.IsRoot() || p.IsZero() {
		return Root
	}
	trimmed := strings.TrimSuffix(p.raw, "/")
	idx := strings.LastIndexByte(trimmed, '/')
	if idx == 0 {
		return Root
	}
	return Path{raw: trimmed[:idx+1], dir: true}
}

// Segments returns the path's segments in order from the root. The root
// has no segments.
func (p Path) Segments() []string {
	if p.IsRoot() || p.IsZero() {
		return nil
	}
	return strings.Split(strings.TrimSuffix(p.raw[1:], "/"), "/")
}

// Depth returns the number of segments.
func (p Path) Depth() int { return len(p.Segments()) }

// ChildDir returns the directory child of p named name. p must be a
// directory path.
func (p Path) ChildDir(name string) (Path, error) {
	return p.child(name, true)
}

// ChildFile returns the content-file child of p named name. p must be a
// directory path.
func (p Path) ChildFile(name string) (Path, error) {
	return p.child(name, false)
}

func (p Path) child(name string, dir bool) (Path, error) {
	if !p.IsDir() {
		return Path{}, fmt.Errorf("%w: %q", ErrNotDir, p.raw)
	}
	if err := validateSegment(name); err != nil {
		return Path{}, fmt.Errorf("%w: %v", ErrInvalidPath, err)
	}
	raw := p.raw + name
	if dir {
		raw += "/"
	}
	return Parse(raw)
}

// IsAncestorOf reports whether p is a (strict) ancestor directory of
// other.
func (p Path) IsAncestorOf(other Path) bool {
	if !p.IsDir() || p.raw == other.raw {
		return false
	}
	return strings.HasPrefix(other.raw, p.raw)
}

// Rebase rewrites p, which must be equal to from or a descendant of from,
// so that the prefix from is replaced by to. Both from and to must be
// directory paths. It is the primitive behind MOVE of directories.
func (p Path) Rebase(from, to Path) (Path, error) {
	if !from.IsDir() || !to.IsDir() {
		return Path{}, fmt.Errorf("%w: rebase endpoints must be directories", ErrNotDir)
	}
	if p.raw != from.raw && !from.IsAncestorOf(p) {
		return Path{}, fmt.Errorf("%w: %q is not under %q", ErrInvalidPath, p.raw, from.raw)
	}
	return Parse(to.raw + strings.TrimPrefix(p.raw, from.raw))
}

// Compare orders paths lexicographically by their canonical string form.
func Compare(a, b Path) int { return strings.Compare(a.raw, b.raw) }
