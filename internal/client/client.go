// Package client implements SeGShare's user application (paper §IV-B): it
// links a user's local machine to the remote file system over a TLS
// connection that terminates inside the enclave. The client stores only
// its certificate and private key — constant client storage regardless of
// files, permissions, or group memberships (objective P1) — and needs no
// special hardware (F5).
package client

import (
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	"segshare/internal/ca"
	"segshare/internal/core"
)

// Client errors, mapped back from HTTP statuses so callers can use
// errors.Is against the same sentinels the server uses.
var (
	// ErrUnauthorized is returned when the TLS identity is rejected.
	ErrUnauthorized = errors.New("client: unauthorized")
)

// Config configures a client.
type Config struct {
	// Addr is the server's host:port.
	Addr string
	// ServerName is the expected name in the server certificate
	// (defaults to "localhost").
	ServerName string
	// CACertPEM is the trusted CA certificate; the client verifies the
	// enclave's server certificate against it (paper §IV-A: remote
	// attestation by users is unnecessary).
	CACertPEM []byte
	// Credential is the user's client certificate and key.
	Credential *ca.Credential
	// DialContext optionally overrides the TCP dialer, e.g. to simulate
	// network conditions in benchmarks.
	DialContext func(ctx context.Context, network, addr string) (net.Conn, error)
}

// Client is a SeGShare user application.
type Client struct {
	base string
	http *http.Client
}

// New builds a client from the configuration.
func New(cfg Config) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("client: missing server address")
	}
	if cfg.Credential == nil {
		return nil, errors.New("client: missing credential")
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(cfg.CACertPEM) {
		return nil, errors.New("client: invalid CA certificate PEM")
	}
	cert, err := cfg.Credential.TLSCertificate()
	if err != nil {
		return nil, fmt.Errorf("client: load credential: %w", err)
	}
	serverName := cfg.ServerName
	if serverName == "" {
		serverName = "localhost"
	}
	transport := &http.Transport{
		TLSClientConfig: &tls.Config{
			RootCAs:      pool,
			Certificates: []tls.Certificate{cert},
			ServerName:   serverName,
			MinVersion:   tls.VersionTLS12,
		},
		// Each client keeps one warm connection; SeGShare reuses the
		// secure channel for all subsequent communication (paper §I).
		MaxIdleConnsPerHost: 2,
	}
	if cfg.DialContext != nil {
		transport.DialContext = cfg.DialContext
	}
	return &Client{
		base: "https://" + cfg.Addr,
		http: &http.Client{Transport: transport},
	}, nil
}

// Close releases idle connections.
func (c *Client) Close() {
	c.http.CloseIdleConnections()
}

func (c *Client) fsURL(path string) string { return c.base + core.FSPrefix + path }

func (c *Client) do(req *http.Request, wantStatus ...int) (*http.Response, error) {
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", req.Method, req.URL.Path, err)
	}
	for _, want := range wantStatus {
		if resp.StatusCode == want {
			return resp, nil
		}
	}
	defer resp.Body.Close()
	return nil, decodeError(resp)
}

func decodeError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	var sentinel error
	switch resp.StatusCode {
	case http.StatusUnauthorized:
		sentinel = ErrUnauthorized
	case http.StatusForbidden:
		sentinel = core.ErrPermissionDenied
	case http.StatusNotFound:
		sentinel = core.ErrNotFound
	case http.StatusConflict:
		sentinel = core.ErrExists
	case http.StatusBadRequest:
		sentinel = core.ErrBadRequest
	case http.StatusRequestEntityTooLarge:
		sentinel = core.ErrTooLarge
	case http.StatusServiceUnavailable:
		// Shed by admission control, draining, or degraded read-only
		// mode; the server sets Retry-After on all of them.
		sentinel = core.ErrOverloaded
	default:
		return fmt.Errorf("client: server error: %s", msg)
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}

// Upload creates or updates the content file at path.
func (c *Client) Upload(path string, content []byte) error {
	return c.UploadStream(path, bytes.NewReader(content), int64(len(content)))
}

// UploadStream streams content from r (of the given length; -1 if
// unknown) to the file at path.
func (c *Client) UploadStream(path string, r io.Reader, length int64) error {
	req, err := http.NewRequest(http.MethodPut, c.fsURL(path), r)
	if err != nil {
		return err
	}
	if length >= 0 {
		req.ContentLength = length
	}
	resp, err := c.do(req, http.StatusCreated, http.StatusNoContent)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Download returns the content of the file at path.
func (c *Client) Download(path string) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.DownloadTo(path, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DownloadTo streams the file at path into w.
func (c *Client) DownloadTo(path string, w io.Writer) error {
	req, err := http.NewRequest(http.MethodGet, c.fsURL(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req, http.StatusOK)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(w, resp.Body); err != nil {
		return fmt.Errorf("client: download %s: %w", path, err)
	}
	return nil
}

// Mkdir creates the directory at path (which must end in "/").
func (c *Client) Mkdir(path string) error {
	req, err := http.NewRequest("MKCOL", c.fsURL(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req, http.StatusCreated)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// List returns the listing of the directory at path.
func (c *Client) List(path string) (*core.Listing, error) {
	if !strings.HasSuffix(path, "/") {
		return nil, fmt.Errorf("%w: listing requires a directory path", core.ErrBadRequest)
	}
	req, err := http.NewRequest(http.MethodGet, c.fsURL(path), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var listing core.Listing
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, fmt.Errorf("client: decode listing: %w", err)
	}
	return &listing, nil
}

// Remove deletes the file or empty directory at path.
func (c *Client) Remove(path string) error {
	req, err := http.NewRequest(http.MethodDelete, c.fsURL(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req, http.StatusNoContent)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Move relocates a file or directory subtree.
func (c *Client) Move(src, dst string) error {
	req, err := http.NewRequest("MOVE", c.fsURL(src), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Destination", core.FSPrefix+dst)
	resp, err := c.do(req, http.StatusCreated)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

func (c *Client) postAPI(route string, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/api/"+route, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req, http.StatusNoContent)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// SetPermission sets group's permission ("r", "w", "rw", "deny", or
// "none" to clear) on the file or directory at path. To grant an
// individual user, pass their default group "user:<id>" (paper Table I).
func (c *Client) SetPermission(path, group, permission string) error {
	return c.postAPI("permission", map[string]any{
		"path": path, "group": group, "permission": permission,
	})
}

// SetInherit toggles permission inheritance from the parent directory.
func (c *Client) SetInherit(path string, inherit bool) error {
	return c.postAPI("inherit", map[string]any{"path": path, "inherit": inherit})
}

// SetOwner adds (owner=true) or removes a group as owner of the file.
func (c *Client) SetOwner(path, group string, owner bool) error {
	return c.postAPI("owner", map[string]any{"path": path, "group": group, "owner": owner})
}

// AddUser adds a user to a group, creating the group on first use (the
// caller becomes member and owner).
func (c *Client) AddUser(user, group string) error {
	return c.postAPI("groups/add", map[string]any{"user": user, "group": group})
}

// RemoveUser removes a user from a group — an immediate membership
// revocation.
func (c *Client) RemoveUser(user, group string) error {
	return c.postAPI("groups/remove", map[string]any{"user": user, "group": group})
}

// SetGroupOwner adds or removes ownerGroup as an owner of group.
func (c *Client) SetGroupOwner(group, ownerGroup string, owner bool) error {
	return c.postAPI("groups/owner", map[string]any{
		"group": group, "ownerGroup": ownerGroup, "owner": owner,
	})
}

// DeleteGroup deletes a group entirely.
func (c *Client) DeleteGroup(group string) error {
	return c.postAPI("groups/delete", map[string]any{"group": group})
}

// WhoAmI returns the identity the server derived from the client
// certificate, plus current group memberships.
func (c *Client) WhoAmI() (*core.WhoAmI, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/api/whoami", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var who core.WhoAmI
	if err := json.NewDecoder(resp.Body).Decode(&who); err != nil {
		return nil, fmt.Errorf("client: decode whoami: %w", err)
	}
	return &who, nil
}
