package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"segshare/internal/audit"
	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/obs"
	"segshare/internal/store"
)

var errBrownout = errors.New("injected backend brownout")

// brownoutClock is the injected breaker clock: cooldowns elapse only
// when the test says so, which makes every transition deterministic.
type brownoutClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *brownoutClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *brownoutClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// brownoutMetric reads one exported metric value by name and exact
// label subset, so the test asserts what an operator's scrape would see.
func brownoutMetric(t *testing.T, reg *obs.Registry, name string, labels map[string]string) int64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			found := false
			for _, l := range m.Labels {
				if l.Key == k && l.Value == v {
					found = true
					break
				}
			}
			if !found {
				match = false
				break
			}
		}
		if match {
			return m.Value
		}
	}
	t.Fatalf("metric %s%v not found", name, labels)
	return 0
}

// TestBrownoutDegradedReadOnly drives a full store brownout through a
// journaled server and checks the degraded read-only contract end to
// end: mutations fail fast with ErrDegraded once the breaker opens
// (without reaching the backend), reads keep flowing, the episode is
// visible to /readyz, the breaker metrics, and the wide-event flag, and
// recovery happens through half-open probes after Revive — with one
// sealed audit record per breaker transition, verified offline.
func TestBrownoutDegradedReadOnly(t *testing.T) {
	reg := obs.NewRegistry()
	authority, err := ca.New("brownout test CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plan := store.NewFaultPlan()
	clock := &brownoutClock{t: time.Unix(1700000000, 0)}
	auditStore := store.NewMemory()

	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewFaultyWithPlan(store.NewMemory(), plan),
		GroupStore:   store.NewFaultyWithPlan(store.NewMemory(), plan),
		Obs:          reg,
		AuditStore:   auditStore,
		Audit:        audit.Options{Overflow: audit.OverflowBlock},
		Resilience: &store.ResilientOptions{
			// One attempt per op makes the failure count per upload
			// deterministic; retry behavior has its own tests in
			// internal/store.
			Retries:          -1,
			BreakerThreshold: 3,
			BreakerCooldown:  time.Second,
			BreakerProbes:    1,
			Now:              clock.now,
			Sleep:            func(time.Duration) {},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })

	payload := []byte("quarterly numbers")
	d := server.Direct("alice")
	if err := d.Mkdir("/docs/"); err != nil {
		t.Fatal(err)
	}
	if err := d.Upload("/docs/a.txt", payload); err != nil {
		t.Fatal(err)
	}
	if server.CheckDegraded() != nil {
		t.Fatal("degraded before any fault was injected")
	}

	// Brownout: every backend mutation now fails persistently. Each
	// upload's first mutation is the journal intent Put on the group
	// store, so each failed upload counts exactly one group-store
	// failure; three trip the breaker open.
	plan.KillAtOp(1, errBrownout)
	for i := 0; i < 3; i++ {
		err := d.Upload(fmt.Sprintf("/docs/fail%d.txt", i), payload)
		if err == nil {
			t.Fatalf("upload %d succeeded during brownout", i)
		}
		if errors.Is(err, ErrDegraded) {
			t.Fatalf("upload %d rejected as degraded before the breaker tripped: %v", i, err)
		}
	}

	// Open breaker: mutations are rejected at the mutate() gate with the
	// distinct degraded error, before a single op reaches the backend.
	if err := server.CheckDegraded(); err == nil {
		t.Fatal("CheckDegraded passes while the breaker is open")
	}
	opsBefore := plan.Ops()
	if err := d.Upload("/docs/gated.txt", payload); !errors.Is(err, ErrDegraded) {
		t.Fatalf("gated upload error = %v, want ErrDegraded", err)
	}
	if got := plan.Ops(); got != opsBefore {
		t.Fatalf("gated mutation reached the backend: ops %d -> %d", opsBefore, got)
	}

	// Reads are still served during the episode.
	got, err := d.Download("/docs/a.txt")
	if err != nil {
		t.Fatalf("read during degraded mode: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("degraded-mode read returned %q, want %q", got, payload)
	}

	// The episode is on the exported surface an operator scrapes.
	groupLabel := map[string]string{"store": "group"}
	if v := brownoutMetric(t, reg, "segshare_store_breaker_state", groupLabel); v != 2 {
		t.Fatalf("group breaker state gauge = %d, want 2 (open)", v)
	}
	if v := brownoutMetric(t, reg, "segshare_store_breaker_transitions_total",
		map[string]string{"store": "group", "to": "open"}); v != 1 {
		t.Fatalf("transitions to open = %d, want 1", v)
	}

	// writeMappedErr turns the degraded rejection into 503 on the wire.
	rec := httptest.NewRecorder()
	writeMappedErr(rec, fmt.Errorf("put: %w", ErrDegraded))
	if rec.Code != 503 {
		t.Fatalf("ErrDegraded maps to %d, want 503", rec.Code)
	}

	// Revive the backend. Mutations stay gated until the cooldown
	// elapses — the breaker, not backend health, drives admission.
	plan.Revive()
	if err := d.Upload("/docs/early.txt", payload); !errors.Is(err, ErrDegraded) {
		t.Fatalf("pre-cooldown upload error = %v, want ErrDegraded", err)
	}
	clock.advance(2 * time.Second)

	// The first post-cooldown mutation flows down as the half-open
	// probe; its success closes the breaker and ends the episode.
	if err := d.Upload("/docs/recovered.txt", payload); err != nil {
		t.Fatalf("recovery upload: %v", err)
	}
	if err := server.CheckDegraded(); err != nil {
		t.Fatalf("still degraded after recovery: %v", err)
	}
	if v := brownoutMetric(t, reg, "segshare_store_breaker_state", groupLabel); v != 0 {
		t.Fatalf("group breaker state gauge = %d after recovery, want 0 (closed)", v)
	}
	if got, err := d.Download("/docs/recovered.txt"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-recovery read = %q, %v", got, err)
	}
	if got := reg.LeakBudgetViolations(); got != 0 {
		t.Fatalf("leak budget violations = %d", got)
	}

	// Offline audit verification: the sealed log carries exactly one
	// degraded record per breaker transition, in order.
	keys, err := audit.DeriveKeys(server.RootKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	liveCounter := server.Enclave().Counter("audit-log").Value()
	var dump bytes.Buffer
	if _, err := audit.Verify(auditStore, keys, audit.VerifyOptions{ExpectCounter: liveCounter, Dump: &dump}); err != nil {
		t.Fatalf("offline verification failed: %v", err)
	}
	var transitions []string
	dec := json.NewDecoder(&dump)
	for dec.More() {
		var r audit.Record
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		if r.Event == audit.EventDegraded {
			transitions = append(transitions, r.Detail)
		}
	}
	want := []string{"group closed->open", "group open->half_open", "group half_open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("degraded audit records = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("degraded audit record %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

// TestBrownoutWideEventFlag checks that requests served during a
// degraded episode carry the wide-event degraded flag, and that the
// flag clears with the episode.
func TestBrownoutWideEventFlag(t *testing.T) {
	reg := obs.NewRegistry()
	authority, err := ca.New("brownout flag CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plan := store.NewFaultPlan()
	clock := &brownoutClock{t: time.Unix(1700000000, 0)}
	sink := &captureSink{}
	exporter := obs.NewExporter(sink, obs.ExporterOptions{Obs: reg})
	defer exporter.Close()

	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewFaultyWithPlan(store.NewMemory(), plan),
		GroupStore:   store.NewFaultyWithPlan(store.NewMemory(), plan),
		Obs:          reg,
		Exporter:     exporter,
		Resilience: &store.ResilientOptions{
			Retries:          -1,
			BreakerThreshold: 1,
			BreakerCooldown:  time.Second,
			BreakerProbes:    1,
			Now:              clock.now,
			Sleep:            func(time.Duration) {},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })

	d := server.Direct("alice")
	if err := d.Upload("/a.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	plan.KillAtOp(1, errBrownout)
	if err := d.Upload("/b.txt", []byte("x")); err == nil {
		t.Fatal("upload succeeded during brownout")
	}
	// A read during the episode carries the flag even though it succeeds.
	if _, err := d.Download("/a.txt"); err != nil {
		t.Fatal(err)
	}
	plan.Revive()
	clock.advance(2 * time.Second)
	if err := d.Upload("/c.txt", []byte("x")); err != nil {
		t.Fatalf("recovery upload: %v", err)
	}
	// Post-recovery traffic is clean again.
	if _, err := d.Download("/a.txt"); err != nil {
		t.Fatal(err)
	}
	exporter.Close()

	evs := sink.events()
	if len(evs) == 0 {
		t.Fatal("no wide events exported")
	}
	var degradedReads, cleanReads int
	for _, ev := range evs {
		if ev.Op != "fs_get" {
			continue
		}
		if ev.Degraded {
			degradedReads++
		} else {
			cleanReads++
		}
	}
	if degradedReads != 1 || cleanReads != 1 {
		t.Fatalf("fs_get wide events: degraded=%d clean=%d, want 1 and 1", degradedReads, cleanReads)
	}
}

// captureSink retains every exported wide event for assertions.
type captureSink struct {
	mu  sync.Mutex
	evs []obs.WideEvent
}

func (s *captureSink) Write(_ context.Context, recs []obs.ExportRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		if r.Kind == "wide_event" && r.Event != nil {
			s.evs = append(s.evs, *r.Event)
		}
	}
	return nil
}

func (s *captureSink) Close() error { return nil }

func (s *captureSink) events() []obs.WideEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.WideEvent(nil), s.evs...)
}
