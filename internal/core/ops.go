package core

import (
	"errors"
	"fmt"

	"segshare/internal/acl"
	"segshare/internal/fspath"
	"segshare/internal/rollback"
)

// This file implements the trusted file manager's logical operations:
// content files, directories, ACL files (content store), and member
// list / group list files (group store). Paths arrive pre-validated as
// fspath.Path values from the request handler.

func memberListName(u acl.UserID) string { return memberNamePfx + string(u) }

// pathExists reports whether the file or directory at path exists.
func (fm *fileManager) pathExists(path fspath.Path) (bool, error) {
	return fm.exists(fm.content, path.String())
}

// createDir creates a directory with the given initial ACL. The parent
// directory must exist; authorization is the caller's concern (Algo 1).
func (fm *fileManager) createDir(path fspath.Path, dirACL *acl.ACL) error {
	if !path.IsDir() || path.IsRoot() {
		return fmt.Errorf("%w: %q is not a creatable directory path", ErrBadRequest, path)
	}
	name := path.String()
	if ok, err := fm.exists(fm.content, name); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}

	_, aclMain, err := fm.writeLeaf(fm.content, aclName(name), dirACL.Encode())
	if err != nil {
		return err
	}
	body := (&dirBody{}).encode()
	var dirMain rollback.Digest
	if fm.rollbackOn {
		hdr := &rollback.Header{Inner: true}
		hdr.Main = fm.hasher.InnerMain(treeID(fm.content, name), rollback.ContentDigest(body), &hdr.Buckets)
		dirMain = hdr.Main
		if err := fm.putBlob(fm.content, name, hdr, body); err != nil {
			return err
		}
	} else if err := fm.putBlob(fm.content, name, nil, body); err != nil {
		return err
	}

	return fm.applyToParent(fm.content, path.Parent().String(), func(db *dirBody) error {
		if !db.add(path.Name(), true) {
			return fmt.Errorf("%w: %s", ErrExists, name)
		}
		return nil
	}, []bucketOp{
		{child: treeID(fm.content, name), newMain: dirMain},
		{child: treeID(fm.content, aclName(name)), newMain: aclMain},
	})
}

// writeContent creates or updates a content file. On creation, newACL
// becomes the file's ACL; on update the existing ACL is untouched.
func (fm *fileManager) writeContent(path fspath.Path, content []byte, newACL *acl.ACL) (created bool, err error) {
	if path.IsDir() {
		return false, fmt.Errorf("%w: %q is a directory path", ErrBadRequest, path)
	}
	name := path.String()
	existed, err := fm.exists(fm.content, name)
	if err != nil {
		return false, err
	}

	// Dedup refcount discipline: acquire the new reference first, release
	// the old one only after the whole operation durably commits, and
	// drop the fresh reference if the operation fails before the leaf is
	// durable. The old ordering (release before the leaf write) could
	// garbage-collect content that live files still referenced when a
	// later write failed.
	body, newHName, err := fm.encodeContent(content)
	if err != nil {
		return false, err
	}
	var oldHName string
	if existed && fm.dedup != nil {
		oldHName, err = fm.contentRefName(name)
		if err != nil {
			fm.dropDedupRef(newHName)
			return false, err
		}
	}
	leafDurable := false
	committed := false
	if newHName != "" {
		releaseNew := func() {
			if !leafDurable {
				fm.dropDedupRef(newHName)
			}
		}
		fm.onOpAbort(releaseNew)
		if fm.tx == nil {
			defer func() {
				if !committed {
					releaseNew()
				}
			}()
		}
	}

	oldMain, newMain, err := fm.writeLeaf(fm.content, name, body)
	if err != nil {
		return false, err
	}
	if !fm.staging() {
		// The leaf hit the backend: it now references newHName, so an
		// abort must not release it anymore.
		leafDurable = true
	}
	// Releasing the old reference waits for the durable commit. When the
	// rewrite stored identical content (oldHName == newHName), Put above
	// acquired a second reference on the same object, so one release
	// still balances the books.
	finish := func() {
		if oldHName != "" {
			name := oldHName
			fm.afterOp(func() { fm.dropDedupRef(name) })
		}
		committed = true
	}
	parent := path.Parent().String()
	if existed {
		err := fm.applyToParent(fm.content, parent, nil, []bucketOp{
			{child: treeID(fm.content, name), oldMain: oldMain, newMain: newMain},
		})
		if err != nil {
			return false, err
		}
		finish()
		return false, nil
	}

	_, aclMain, err := fm.writeLeaf(fm.content, aclName(name), newACL.Encode())
	if err != nil {
		return false, err
	}
	err = fm.applyToParent(fm.content, parent, func(db *dirBody) error {
		db.add(path.Name(), false)
		return nil
	}, []bucketOp{
		{child: treeID(fm.content, name), newMain: newMain},
		{child: treeID(fm.content, aclName(name)), newMain: aclMain},
	})
	if err != nil {
		return false, err
	}
	finish()
	return true, nil
}

// encodeContent builds a content file's body, deduplicating when the
// extension is enabled (paper §V-A). The returned hName (when non-empty)
// carries a freshly acquired reference the caller must account for.
func (fm *fileManager) encodeContent(content []byte) ([]byte, string, error) {
	if fm.dedup == nil {
		return encodeRawBody(content), "", nil
	}
	hName, _, err := fm.dedup.Put(content)
	if err != nil {
		return nil, "", err
	}
	return encodeDedupBody(hName), hName, nil
}

// contentRefName returns the dedup object a content file currently
// references, or "" for raw bodies and absent files.
func (fm *fileManager) contentRefName(name string) (string, error) {
	if fm.dedup == nil {
		return "", nil
	}
	_, body, err := fm.getBlob(fm.content, name)
	if errors.Is(err, ErrNotFound) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	_, hName, err := decodeContentBody(body)
	if err != nil {
		return "", err
	}
	return hName, nil
}

// dropDedupRef releases one dedup reference, best-effort: a failure
// leaves the refcount too high (content is retained longer than needed),
// never too low — the safe direction for a compensation that cannot be
// journaled (Release is not idempotent).
func (fm *fileManager) dropDedupRef(hName string) {
	if fm.dedup == nil || hName == "" {
		return
	}
	_, _ = fm.dedup.Release(hName)
}

// readContent returns a content file's plaintext, validating the
// rollback tree and resolving deduplication indirections. Concurrent
// reads of the same path are coalesced into one decryption flight: every
// caller already holds the path's read lock (sharded lock manager), so
// all flight members would observe identical bytes and the shared result
// is exact. Staging views bypass coalescing — their reads may diverge
// from the committed state the flight key describes.
func (fm *fileManager) readContent(path fspath.Path) ([]byte, error) {
	if fm.staging() {
		return fm.readContentUncoalesced(path)
	}
	fm.obs.coalesceInflight.Add(1)
	defer fm.obs.coalesceInflight.Add(-1)
	val, shared, err := fm.shared.reads.do(fm.ctx, path.String(), func() ([]byte, error) {
		return fm.readContentUncoalesced(path)
	})
	if shared {
		fm.obs.coalesceShared.Inc()
	} else {
		fm.obs.coalesceLeader.Inc()
	}
	return val, err
}

// readContentUncoalesced is the single-flight body of readContent. The
// returned slice may be shared across coalesced callers and must be
// treated as read-only.
func (fm *fileManager) readContentUncoalesced(path fspath.Path) ([]byte, error) {
	if path.IsDir() {
		return nil, fmt.Errorf("%w: %q is a directory path", ErrBadRequest, path)
	}
	name := path.String()
	hdr, body, err := fm.getBlob(fm.content, name)
	if err != nil {
		return nil, err
	}
	if err := fm.validateNode(fm.content, name, hdr, body); err != nil {
		return nil, err
	}
	raw, hName, err := decodeContentBody(body)
	if err != nil {
		return nil, err
	}
	if hName == "" {
		return raw, nil
	}
	if fm.dedup == nil {
		return nil, fmt.Errorf("%w: %s: dedup reference without dedup store", ErrIntegrity, name)
	}
	return fm.dedup.Get(hName)
}

// readDir returns a directory's children, validating the rollback tree
// on a cache miss. The cached dirBody is never handed out; callers get a
// copied entry slice.
func (fm *fileManager) readDir(path fspath.Path) ([]DirEntry, error) {
	if !path.IsDir() {
		return nil, fmt.Errorf("%w: %q is not a directory path", ErrBadRequest, path)
	}
	name := path.String()
	if db, ok := fm.caches.dirs.Get(name); ok {
		fm.rs.AddCacheHit()
		out := make([]DirEntry, len(db.entries))
		copy(out, db.entries)
		return out, nil
	}
	fm.rs.AddCacheMiss()
	gen := fm.caches.dirs.Gen()
	hdr, body, err := fm.getBlob(fm.content, name)
	if err != nil {
		return nil, err
	}
	if err := fm.validateNode(fm.content, name, hdr, body); err != nil {
		return nil, err
	}
	db, err := decodeDirBody(body)
	if err != nil {
		return nil, err
	}
	if !fm.staging() {
		fm.caches.dirs.Put(name, db, int64(len(body)), gen)
	}
	out := make([]DirEntry, len(db.entries))
	copy(out, db.entries)
	return out, nil
}

// readACL loads and validates the ACL file of a path, consulting the
// in-enclave cache first. The returned ACL is always the caller's to
// mutate: hits are cloned out, and the cached copy on a miss is a clone.
func (fm *fileManager) readACL(path fspath.Path) (*acl.ACL, error) {
	name := aclName(path.String())
	if a, ok := fm.caches.acls.Get(name); ok {
		fm.rs.AddCacheHit()
		return a.Clone(), nil
	}
	fm.rs.AddCacheMiss()
	gen := fm.caches.acls.Gen()
	hdr, body, err := fm.getBlob(fm.content, name)
	if err != nil {
		return nil, err
	}
	if err := fm.validateNode(fm.content, name, hdr, body); err != nil {
		return nil, err
	}
	a, err := acl.DecodeACL(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrIntegrity, name, err)
	}
	if !fm.staging() {
		fm.caches.acls.Put(name, a.Clone(), int64(len(body)), gen)
	}
	return a, nil
}

// writeACL replaces the ACL file of an existing path — the constant-cost
// permission update at the heart of immediate revocation (P3, S4).
func (fm *fileManager) writeACL(path fspath.Path, a *acl.ACL) error {
	name := aclName(path.String())
	if ok, err := fm.exists(fm.content, name); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	oldMain, newMain, err := fm.writeLeaf(fm.content, name, a.Encode())
	if err != nil {
		return err
	}
	return fm.applyToParent(fm.content, contentParent(name), nil, []bucketOp{
		{child: treeID(fm.content, name), oldMain: oldMain, newMain: newMain},
	})
}

// removePath deletes a content file or an empty directory together with
// its ACL. releaseDedup controls whether a dedup reference is dropped
// (false during moves, which carry the reference to the new name).
func (fm *fileManager) removePath(path fspath.Path, releaseDedup bool) error {
	if path.IsRoot() {
		return fmt.Errorf("%w: cannot remove the root directory", ErrBadRequest)
	}
	name := path.String()
	if path.IsDir() {
		_, db, err := fm.loadDir(fm.content, name)
		if err != nil {
			return err
		}
		if len(db.entries) > 0 {
			return fmt.Errorf("%w: %s", ErrNotEmpty, name)
		}
	}
	var relName string
	if !path.IsDir() && releaseDedup && fm.dedup != nil {
		// Capture the reference now; it is dropped only after the removal
		// durably commits, so a failed removal keeps the content
		// referenced.
		var err error
		relName, err = fm.contentRefName(name)
		if err != nil {
			return err
		}
	}

	var fileMain, aclMain rollback.Digest
	if fm.rollbackOn {
		hdr, err := fm.readHeader(fm.content, name)
		if err != nil {
			return err
		}
		fileMain = hdr.Main
		aclHdr, err := fm.readHeader(fm.content, aclName(name))
		if err != nil {
			return err
		}
		aclMain = aclHdr.Main
	}
	// Parent first: once the directory entry is gone no reader can reach
	// the blobs, so a fault between the steps leaves unreferenced objects
	// (garbage) instead of a dangling entry whose GET fails integrity.
	err := fm.applyToParent(fm.content, path.Parent().String(), func(db *dirBody) error {
		if !db.remove(path.Name(), path.IsDir()) {
			return fmt.Errorf("%w: %s missing in parent", ErrIntegrity, name)
		}
		return nil
	}, []bucketOp{
		{child: treeID(fm.content, name), oldMain: fileMain},
		{child: treeID(fm.content, aclName(name)), oldMain: aclMain},
	})
	if err != nil {
		return err
	}
	if err := fm.deleteBlob(fm.content, name); err != nil {
		return err
	}
	if err := fm.deleteBlob(fm.content, aclName(name)); err != nil {
		return err
	}
	if relName != "" {
		fm.afterOp(func() { fm.dropDedupRef(relName) })
	}
	return nil
}

// movePath moves a content file or a whole directory subtree to a new
// location (which must not exist). The file's ACL travels with it;
// deduplication references are carried over, not re-counted.
func (fm *fileManager) movePath(src, dst fspath.Path) error {
	if src.IsDir() != dst.IsDir() {
		return fmt.Errorf("%w: move between file and directory", ErrBadRequest)
	}
	if src.IsRoot() || dst.IsRoot() {
		return fmt.Errorf("%w: cannot move the root directory", ErrBadRequest)
	}
	if src.IsDir() && (src == dst || src.IsAncestorOf(dst)) {
		return fmt.Errorf("%w: cannot move a directory into itself", ErrBadRequest)
	}
	if ok, err := fm.pathExists(dst); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s", ErrExists, dst)
	}

	srcACL, err := fm.readACL(src)
	if err != nil {
		return err
	}
	if src.IsDir() {
		if err := fm.createDir(dst, srcACL); err != nil {
			return err
		}
		entries, err := fm.readDir(src)
		if err != nil {
			return err
		}
		for _, e := range entries {
			var childSrc, childDst fspath.Path
			var cErr error
			if e.IsDir {
				childSrc, cErr = src.ChildDir(e.Name)
			} else {
				childSrc, cErr = src.ChildFile(e.Name)
			}
			if cErr != nil {
				return cErr
			}
			if e.IsDir {
				childDst, cErr = dst.ChildDir(e.Name)
			} else {
				childDst, cErr = dst.ChildFile(e.Name)
			}
			if cErr != nil {
				return cErr
			}
			if err := fm.movePath(childSrc, childDst); err != nil {
				return err
			}
		}
		return fm.removePath(src, false)
	}

	// Content file: carry the body (raw or dedup indirection) verbatim.
	hdr, body, err := fm.getBlob(fm.content, src.String())
	if err != nil {
		return err
	}
	if err := fm.validateNode(fm.content, src.String(), hdr, body); err != nil {
		return err
	}
	raw, hName, err := decodeContentBody(body)
	if err != nil {
		return err
	}
	var newBody []byte
	if hName != "" {
		newBody = encodeDedupBody(hName)
	} else {
		newBody = encodeRawBody(raw)
	}
	dstName := dst.String()
	oldMain, newMain, err := fm.writeLeaf(fm.content, dstName, newBody)
	if err != nil {
		return err
	}
	_ = oldMain
	_, aclMain, err := fm.writeLeaf(fm.content, aclName(dstName), srcACL.Encode())
	if err != nil {
		return err
	}
	err = fm.applyToParent(fm.content, dst.Parent().String(), func(db *dirBody) error {
		db.add(dst.Name(), false)
		return nil
	}, []bucketOp{
		{child: treeID(fm.content, dstName), newMain: newMain},
		{child: treeID(fm.content, aclName(dstName)), newMain: aclMain},
	})
	if err != nil {
		return err
	}
	return fm.removePath(src, false)
}

// readMemberList loads and validates a user's member list file,
// consulting the in-enclave cache first. It returns ErrNotFound for
// users without one. The returned list is the caller's to mutate.
func (fm *fileManager) readMemberList(u acl.UserID) (*acl.MemberList, error) {
	name := memberListName(u)
	if m, ok := fm.caches.members.Get(name); ok {
		fm.rs.AddCacheHit()
		return m.Clone(), nil
	}
	fm.rs.AddCacheMiss()
	gen := fm.caches.members.Gen()
	hdr, body, err := fm.getBlob(fm.group, name)
	if err != nil {
		return nil, err
	}
	if err := fm.validateNode(fm.group, name, hdr, body); err != nil {
		return nil, err
	}
	m, err := acl.DecodeMemberList(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrIntegrity, name, err)
	}
	if !fm.staging() {
		fm.caches.members.Put(name, m.Clone(), int64(len(body)), gen)
	}
	return m, nil
}

// writeMemberList persists a user's member list file, creating it on
// first use.
func (fm *fileManager) writeMemberList(u acl.UserID, m *acl.MemberList) error {
	return fm.writeGroupFile(memberListName(u), m.Encode())
}

// readGroupList loads and validates the group list file, returning an
// empty list before any group exists. Consults the in-enclave cache
// first; the returned list is the caller's to mutate.
func (fm *fileManager) readGroupList() (*acl.GroupList, error) {
	if l, ok := fm.caches.groups.Get(groupListName); ok {
		fm.rs.AddCacheHit()
		return l.Clone(), nil
	}
	fm.rs.AddCacheMiss()
	gen := fm.caches.groups.Gen()
	hdr, body, err := fm.getBlob(fm.group, groupListName)
	if errors.Is(err, ErrNotFound) {
		l := acl.NewGroupList()
		if !fm.staging() {
			fm.caches.groups.Put(groupListName, l.Clone(), 16, gen)
		}
		return l, nil
	}
	if err != nil {
		return nil, err
	}
	if err := fm.validateNode(fm.group, groupListName, hdr, body); err != nil {
		return nil, err
	}
	l, err := acl.DecodeGroupList(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrIntegrity, groupListName, err)
	}
	if !fm.staging() {
		fm.caches.groups.Put(groupListName, l.Clone(), int64(len(body)), gen)
	}
	return l, nil
}

// writeGroupList persists the group list file.
func (fm *fileManager) writeGroupList(l *acl.GroupList) error {
	return fm.writeGroupFile(groupListName, l.Encode())
}

// writeGroupFile writes one flat group-store file and keeps the group
// root's children list and buckets in sync.
func (fm *fileManager) writeGroupFile(name string, body []byte) error {
	existed, err := fm.exists(fm.group, name)
	if err != nil {
		return err
	}
	oldMain, newMain, err := fm.writeLeaf(fm.group, name, body)
	if err != nil {
		return err
	}
	if existed {
		return fm.applyToParent(fm.group, groupRootName, nil, []bucketOp{
			{child: treeID(fm.group, name), oldMain: oldMain, newMain: newMain},
		})
	}
	return fm.applyToParent(fm.group, groupRootName, func(db *dirBody) error {
		db.add(name, false)
		return nil
	}, []bucketOp{
		{child: treeID(fm.group, name), newMain: newMain},
	})
}
