package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ExportRecord is one item on the export pipeline: a wide event, a
// sampled trace, or per-batch metadata. Exactly one of the payload
// fields is set.
type ExportRecord struct {
	Kind  string         `json:"kind"` // "wide_event" | "trace" | "batch_meta"
	Event *WideEvent     `json:"event,omitempty"`
	Trace *TraceSnapshot `json:"trace,omitempty"`
	Meta  *BatchMeta     `json:"meta,omitempty"`
}

// BatchMeta is the metadata record the exporter prepends to each flushed
// batch when a meta source is installed (SetMeta): pipeline state plus
// the heavy-hitter snapshot, so a collector sees which tenants were hot
// around the events in the batch without any extra query.
type BatchMeta struct {
	// TimeUnixMs is the flush time (class: time).
	TimeUnixMs int64 `json:"ts"`
	// QueueDepthLe is the export queue depth at flush (class: bucketed).
	QueueDepthLe uint64 `json:"queueDepthLe"`
	// DroppedLe is the cumulative drop count (class: bucketed).
	DroppedLe uint64 `json:"droppedLe"`
	// Hot is the current top-k snapshot, nil when the deployment runs
	// without heavy-hitter accounting (class: nested, see HotStatusFields).
	Hot *HotStatus `json:"hot,omitempty"`
}

// BatchMetaFields classifies the exported fields for the leak-budget
// meta-test.
var BatchMetaFields = map[string]FieldClass{
	"TimeUnixMs":   FieldTime,
	"QueueDepthLe": FieldBucketed,
	"DroppedLe":    FieldBucketed,
	"Hot":          FieldNested,
}

// VerifyBatchMeta checks one batch-metadata record against the leak
// budget.
func VerifyBatchMeta(m BatchMeta) error {
	if !IsBucketBound(m.QueueDepthLe) {
		return &wideFieldError{field: "QueueDepthLe"}
	}
	if !IsBucketBound(m.DroppedLe) {
		return &wideFieldError{field: "DroppedLe"}
	}
	if m.Hot != nil {
		return VerifyHotStatus(*m.Hot)
	}
	return nil
}

// ExportSink receives marshaled export batches off the request path.
type ExportSink interface {
	// Write delivers one batch of records. It runs on the exporter
	// goroutine; blocking here backs up the queue, never a request.
	Write(ctx context.Context, recs []ExportRecord) error
	// Close releases sink resources after the exporter drains.
	Close() error
}

// ExporterOptions configures the bounded async exporter.
type ExporterOptions struct {
	// QueueSize bounds the in-memory record queue. When full, Enqueue
	// drops and counts — the request path never blocks on export.
	// Default 4096.
	QueueSize int
	// BatchSize is the most records handed to the sink per Write.
	// Default 128.
	BatchSize int
	// FlushInterval bounds how long a partial batch may wait.
	// Default 1s.
	FlushInterval time.Duration
	// CloseTimeout bounds how long Close waits for the drain flush. Past
	// it the exporter's context is canceled, aborting retry backoffs in
	// sinks that honor it (HTTPSink), so shutdown cannot hang on a dead
	// collector. Default 5s.
	CloseTimeout time.Duration
	// Obs, when set, registers drop/sent counters and the queue-depth
	// gauge on the registry.
	Obs *Registry
}

// Exporter drains wide events and sampled traces to a sink on a
// background goroutine. Enqueue is non-blocking by construction: a full
// queue drops the record and increments a counter, because telemetry
// must never add latency to the request path it measures.
type Exporter struct {
	sink ExportSink
	ch   chan ExportRecord

	batchSize    int
	flushIvl     time.Duration
	closeTimeout time.Duration

	dropped atomic.Uint64
	sent    atomic.Uint64

	droppedCtr *Counter
	sentCtr    *Counter
	depthGauge *Gauge

	// meta, when set (SetMeta), produces the batch-metadata record
	// prepended to each flush. Stored atomically: wiring happens after
	// the run goroutine is already live.
	meta atomic.Pointer[func() BatchMeta]

	// ctx is canceled CloseTimeout after Close begins (and finally when
	// the drain completes), so sink retry backoffs abort instead of
	// stalling shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	closeOnce sync.Once
	done      chan struct{}
	drained   chan struct{}
	flushCh   chan chan struct{}
}

// NewExporter starts the exporter goroutine. The caller must Close it to
// flush and release the sink.
func NewExporter(sink ExportSink, opt ExporterOptions) *Exporter {
	if opt.QueueSize <= 0 {
		opt.QueueSize = 4096
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 128
	}
	if opt.FlushInterval <= 0 {
		opt.FlushInterval = time.Second
	}
	if opt.CloseTimeout <= 0 {
		opt.CloseTimeout = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Exporter{
		sink:         sink,
		ch:           make(chan ExportRecord, opt.QueueSize),
		batchSize:    opt.BatchSize,
		flushIvl:     opt.FlushInterval,
		closeTimeout: opt.CloseTimeout,
		ctx:          ctx,
		cancel:       cancel,
		done:         make(chan struct{}),
		drained:      make(chan struct{}),
		flushCh:      make(chan chan struct{}),
	}
	if opt.Obs != nil {
		e.droppedCtr = opt.Obs.Counter("segshare_export_dropped_total",
			"Telemetry records dropped because the export queue was full.", nil)
		e.sentCtr = opt.Obs.Counter("segshare_export_sent_total",
			"Telemetry records delivered to the export sink.", nil)
		e.depthGauge = opt.Obs.Gauge("segshare_export_queue_depth",
			"Telemetry records currently queued for export.", nil)
	}
	go e.run()
	return e
}

// SetMeta installs the batch-metadata source: fn runs on the exporter
// goroutine at each flush and its record is prepended to the batch.
// Safe to call while the exporter is running.
func (e *Exporter) SetMeta(fn func() BatchMeta) {
	if e == nil {
		return
	}
	e.meta.Store(&fn)
}

// QueueDepth returns the number of records currently queued.
func (e *Exporter) QueueDepth() int {
	if e == nil {
		return 0
	}
	return len(e.ch)
}

// Enqueue offers one record to the pipeline without blocking. It reports
// whether the record was accepted.
func (e *Exporter) Enqueue(rec ExportRecord) bool {
	if e == nil {
		return false
	}
	select {
	case e.ch <- rec:
		if e.depthGauge != nil {
			e.depthGauge.Set(int64(len(e.ch)))
		}
		return true
	default:
		e.dropped.Add(1)
		if e.droppedCtr != nil {
			e.droppedCtr.Add(1)
		}
		return false
	}
}

// EnqueueEvent offers one wide event.
func (e *Exporter) EnqueueEvent(ev WideEvent) bool {
	return e.Enqueue(ExportRecord{Kind: "wide_event", Event: &ev})
}

// EnqueueTrace offers one sampled trace.
func (e *Exporter) EnqueueTrace(snap TraceSnapshot) bool {
	return e.Enqueue(ExportRecord{Kind: "trace", Trace: &snap})
}

// Dropped returns how many records were rejected by a full queue.
func (e *Exporter) Dropped() uint64 {
	if e == nil {
		return 0
	}
	return e.dropped.Load()
}

// Sent returns how many records the sink accepted.
func (e *Exporter) Sent() uint64 {
	if e == nil {
		return 0
	}
	return e.sent.Load()
}

func (e *Exporter) run() {
	defer close(e.drained)
	ticker := time.NewTicker(e.flushIvl)
	defer ticker.Stop()
	batch := make([]ExportRecord, 0, e.batchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if fn := e.meta.Load(); fn != nil {
			m := (*fn)()
			m.TimeUnixMs = time.Now().UnixMilli()
			m.QueueDepthLe = BucketCeil(int64(len(e.ch)))
			m.DroppedLe = BucketCeil(int64(e.dropped.Load()))
			batch = append(batch, ExportRecord{})
			copy(batch[1:], batch)
			batch[0] = ExportRecord{Kind: "batch_meta", Meta: &m}
		}
		if e.depthGauge != nil {
			e.depthGauge.Set(int64(len(e.ch)))
		}
		if err := e.sink.Write(e.ctx, batch); err == nil {
			e.sent.Add(uint64(len(batch)))
			if e.sentCtr != nil {
				e.sentCtr.Add(uint64(len(batch)))
			}
		} else {
			// The sink already retried internally (HTTPSink) or the
			// write is not retryable (closed file): count the loss.
			e.dropped.Add(uint64(len(batch)))
			if e.droppedCtr != nil {
				e.droppedCtr.Add(uint64(len(batch)))
			}
		}
		batch = batch[:0]
	}
	for {
		select {
		case rec := <-e.ch:
			batch = append(batch, rec)
			if len(batch) >= e.batchSize {
				flush()
			}
		case <-ticker.C:
			flush()
		case reply := <-e.flushCh:
			// Synchronous flush (graceful drain): pull everything already
			// queued, write it out, then acknowledge.
			for {
				select {
				case rec := <-e.ch:
					batch = append(batch, rec)
					if len(batch) >= e.batchSize {
						flush()
					}
					continue
				default:
				}
				break
			}
			flush()
			close(reply)
		case <-e.done:
			// Drain whatever is queued, then flush once and exit.
			for {
				select {
				case rec := <-e.ch:
					batch = append(batch, rec)
					if len(batch) >= e.batchSize {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// Flush synchronously drains whatever is queued and writes it to the
// sink. It is the graceful-drain hook: the caller gets back control only
// after every record enqueued before the call has been offered to the
// sink. Safe to call concurrently with Enqueue; a no-op after Close.
func (e *Exporter) Flush() {
	if e == nil {
		return
	}
	reply := make(chan struct{})
	select {
	case e.flushCh <- reply:
		select {
		case <-reply:
		case <-e.drained:
		}
	case <-e.drained:
		// Exporter already stopped; Close flushed the queue.
	}
}

// Close stops the exporter, flushes the queue (bounded by
// CloseTimeout — past it the exporter context is canceled so sink
// retries abort), and closes the sink.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	var err error
	e.closeOnce.Do(func() {
		timer := time.AfterFunc(e.closeTimeout, e.cancel)
		close(e.done)
		<-e.drained
		timer.Stop()
		e.cancel()
		err = e.sink.Close()
	})
	return err
}

// SaturationProbe returns a watchdog check that reports a stall when
// the queue has dropped records in each of the last `window` probe
// sweeps — sustained telemetry loss, as opposed to a one-off burst the
// drop counter already records. window <= 0 defaults to 5 sweeps.
func (e *Exporter) SaturationProbe(window int) func() error {
	if window <= 0 {
		window = 5
	}
	var last uint64
	streak := 0
	first := true
	return func() error {
		cur := e.Dropped()
		grew := cur > last
		if first {
			// The first sweep has no delta to judge; establish the base.
			grew, first = false, false
		}
		last = cur
		if grew {
			streak++
		} else {
			streak = 0
		}
		if streak >= window {
			return fmt.Errorf("export queue dropped records in %d consecutive sweeps (%d total drops)", streak, cur)
		}
		return nil
	}
}

// JSONLSink appends one JSON object per record to a file. Lines are
// whole records, so a crash mid-run leaves at most one torn trailing
// line.
type JSONLSink struct {
	mu sync.Mutex
	f  *os.File
}

// NewJSONLSink opens (appending) or creates the export file.
func NewJSONLSink(path string) (*JSONLSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &JSONLSink{f: f}, nil
}

// Write appends the batch as JSON lines.
func (s *JSONLSink) Write(_ context.Context, recs []ExportRecord) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.Write(buf.Bytes())
	return err
}

// Close syncs and closes the file.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// HTTPSink POSTs batches as a JSON array to a collector endpoint,
// retrying with exponential backoff. Retries happen on the exporter
// goroutine and are bounded, and backoff sleeps honor context
// cancellation (the exporter cancels on Close timeout), so a dead
// collector costs queued records (counted drops), not request latency,
// unbounded memory, or a hung shutdown.
type HTTPSink struct {
	url     string
	client  *http.Client
	retries int
	backoff time.Duration
}

// NewHTTPSink builds a sink for the given collector URL. retries is the
// number of attempts beyond the first (default 3); backoff is the initial
// retry delay, doubling per attempt (default 100ms).
func NewHTTPSink(url string, retries int, backoff time.Duration) *HTTPSink {
	if retries <= 0 {
		retries = 3
	}
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &HTTPSink{
		url:     url,
		client:  &http.Client{Timeout: 10 * time.Second},
		retries: retries,
		backoff: backoff,
	}
}

var errSinkStatus = errors.New("obs: export sink returned non-2xx status")

// Write POSTs the batch, retrying transient failures.
func (s *HTTPSink) Write(ctx context.Context, recs []ExportRecord) error {
	body, err := json.Marshal(recs)
	if err != nil {
		return err
	}
	delay := s.backoff
	var lastErr error
	for attempt := 0; attempt <= s.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return ctx.Err()
			}
			delay *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return nil
		}
		lastErr = errSinkStatus
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return lastErr // the collector rejected the payload; retrying cannot help
		}
	}
	return lastErr
}

// Close is a no-op; the HTTP client holds no resources worth releasing.
func (s *HTTPSink) Close() error { return nil }

// MemorySink buffers records in memory for tests and the bench harness'
// -trace-out capture.
type MemorySink struct {
	mu   sync.Mutex
	recs []ExportRecord
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Write appends the batch.
func (s *MemorySink) Write(_ context.Context, recs []ExportRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, recs...)
	return nil
}

// Close is a no-op.
func (s *MemorySink) Close() error { return nil }

// Records returns a copy of everything written so far.
func (s *MemorySink) Records() []ExportRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ExportRecord, len(s.recs))
	copy(out, s.recs)
	return out
}

// MultiSink fans one batch out to several sinks; the first error wins
// but every sink sees the batch.
type MultiSink []ExportSink

// Write delivers the batch to every sink.
func (m MultiSink) Write(ctx context.Context, recs []ExportRecord) error {
	var first error
	for _, s := range m {
		if err := s.Write(ctx, recs); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes every sink.
func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
