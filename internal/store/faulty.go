package store

import (
	"sync"
	"time"
)

// FaultPlan is a deterministic failure schedule shared by every Faulty
// backend of one store under test. It counts mutating backend operations
// (put, delete, rename) across all attached backends and fires at a
// chosen point, either once (a transient fault) or permanently (a
// simulated process kill: from the n-th mutation on, every mutation
// fails until Revive). Crash-consistency tests dry-run an operation to
// learn its mutation count, then replay it once per failure point.
//
// Two further injection modes model a browning-out backend rather than a
// crashed one: SetLatency delays every operation (reads included) so
// deadline enforcement is testable, and FailReadsAtOp/KillReadsAtOp run
// an independent schedule over read operations (get, exists, list) so
// flaky reads can trip the circuit breaker deterministically.
type FaultPlan struct {
	mu        sync.Mutex
	ops       int
	countdown int // fire on the countdown-th next mutation; 0 = disarmed
	kill      bool
	killed    bool
	err       error

	latency time.Duration

	readOps       int
	readCountdown int
	readKill      bool
	readKilled    bool
	readErr       error
}

// NewFaultPlan returns a disarmed plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// FailAtOp arranges for the n-th subsequent mutating operation (counting
// from 1) to fail once with err; later mutations succeed again.
func (p *FaultPlan) FailAtOp(n int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.countdown = n
	p.kill = false
	p.killed = false
	p.err = err
}

// KillAtOp arranges for the n-th subsequent mutating operation and every
// one after it to fail with err, simulating a process kill mid-operation.
func (p *FaultPlan) KillAtOp(n int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.countdown = n
	p.kill = true
	p.killed = false
	p.err = err
}

// FailReadsAtOp arranges for the n-th subsequent read operation (get,
// exists, list; counting from 1) to fail once with err. The read
// schedule is independent of the mutation schedule.
func (p *FaultPlan) FailReadsAtOp(n int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.readCountdown = n
	p.readKill = false
	p.readKilled = false
	p.readErr = err
}

// KillReadsAtOp arranges for the n-th subsequent read operation and
// every one after it to fail with err, simulating a backend whose read
// path has browned out.
func (p *FaultPlan) KillReadsAtOp(n int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.readCountdown = n
	p.readKill = true
	p.readKilled = false
	p.readErr = err
}

// SetLatency delays every subsequent operation — reads and mutations —
// by d before it executes (or fails). Zero removes the delay.
func (p *FaultPlan) SetLatency(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.latency = d
}

// Revive disarms the plan ("restart the process"): mutations and reads
// succeed again and injected latency is cleared. The operation counters
// keep running.
func (p *FaultPlan) Revive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.countdown = 0
	p.kill = false
	p.killed = false
	p.readCountdown = 0
	p.readKill = false
	p.readKilled = false
	p.latency = 0
}

// Ops returns the number of mutating operations observed so far,
// including ones that were failed.
func (p *FaultPlan) Ops() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ops
}

// ReadOps returns the number of read operations observed so far,
// including ones that were failed.
func (p *FaultPlan) ReadOps() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readOps
}

func (p *FaultPlan) check(op string) error {
	var mutation bool
	switch op {
	case "put", "delete", "rename":
		mutation = true
	case "get", "exists", "list":
	default:
		return nil
	}
	p.mu.Lock()
	latency := p.latency
	var err error
	if mutation {
		p.ops++
		switch {
		case p.killed:
			err = p.err
		case p.countdown > 0:
			p.countdown--
			if p.countdown == 0 {
				if p.kill {
					p.killed = true
				}
				err = p.err
			}
		}
	} else {
		p.readOps++
		switch {
		case p.readKilled:
			err = p.readErr
		case p.readCountdown > 0:
			p.readCountdown--
			if p.readCountdown == 0 {
				if p.readKill {
					p.readKilled = true
				}
				err = p.readErr
			}
		}
	}
	p.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	return err
}

// Faulty wraps a Backend and injects errors on selected operations. It is
// the failure-injection harness used by tests to verify that I/O faults
// surface as errors instead of corrupting trusted state.
type Faulty struct {
	inner Backend
	plan  *FaultPlan

	mu        sync.Mutex
	failAfter map[string]int // op name -> remaining successes before failing
	failWith  error
}

var (
	_ Backend   = (*Faulty)(nil)
	_ Unwrapper = (*Faulty)(nil)
)

// Unwrap returns the wrapped backend.
func (f *Faulty) Unwrap() Backend { return f.inner }

// NewFaulty wraps inner. Until FailAfter is called it is transparent.
func NewFaulty(inner Backend) *Faulty {
	return &Faulty{inner: inner, failAfter: make(map[string]int)}
}

// NewFaultyWithPlan wraps inner and attaches a shared FaultPlan. Several
// backends (content, group, dedup stores) can share one plan so that a
// schedule covers an operation's writes wherever they land.
func NewFaultyWithPlan(inner Backend, plan *FaultPlan) *Faulty {
	return &Faulty{inner: inner, plan: plan, failAfter: make(map[string]int)}
}

// FailAfter arranges for the n-th subsequent invocation of op ("put",
// "get", "delete", "rename", "exists", "list") to fail with err, counting
// from 1. n == 1 fails the next call.
func (f *Faulty) FailAfter(op string, n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter[op] = n
	f.failWith = err
}

// Clear removes all pending fault injections.
func (f *Faulty) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter = make(map[string]int)
}

func (f *Faulty) shouldFail(op string) error {
	if f.plan != nil {
		if err := f.plan.check(op); err != nil {
			return err
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.failAfter[op]
	if !ok {
		return nil
	}
	n--
	if n > 0 {
		f.failAfter[op] = n
		return nil
	}
	delete(f.failAfter, op)
	return f.failWith
}

// Put implements Backend.
func (f *Faulty) Put(name string, data []byte) error {
	if err := f.shouldFail("put"); err != nil {
		return err
	}
	return f.inner.Put(name, data)
}

// Get implements Backend.
func (f *Faulty) Get(name string) ([]byte, error) {
	if err := f.shouldFail("get"); err != nil {
		return nil, err
	}
	return f.inner.Get(name)
}

// Delete implements Backend.
func (f *Faulty) Delete(name string) error {
	if err := f.shouldFail("delete"); err != nil {
		return err
	}
	return f.inner.Delete(name)
}

// Rename implements Backend.
func (f *Faulty) Rename(oldName, newName string) error {
	if err := f.shouldFail("rename"); err != nil {
		return err
	}
	return f.inner.Rename(oldName, newName)
}

// Exists implements Backend.
func (f *Faulty) Exists(name string) (bool, error) {
	if err := f.shouldFail("exists"); err != nil {
		return false, err
	}
	return f.inner.Exists(name)
}

// List implements Backend.
func (f *Faulty) List() ([]string, error) {
	if err := f.shouldFail("list"); err != nil {
		return nil, err
	}
	return f.inner.List()
}

// TotalBytes implements Backend.
func (f *Faulty) TotalBytes() (int64, error) {
	return f.inner.TotalBytes()
}
