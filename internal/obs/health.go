package obs

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Health tracks process liveness and readiness for the admin listener.
//
// Liveness is implicit — if /healthz answers, the process is alive.
// Readiness combines an operator-controlled flag (flipped by the server
// during startup and drain) with named probe functions (store reachable,
// enclave launched). The /readyz body names only the failing checks, never
// their error text: probe errors may quote object names or paths, and the
// admin listener is untrusted (leak budget).
type Health struct {
	ready atomic.Bool

	mu     sync.Mutex
	checks map[string]func() error
}

// NewHealth returns a Health that reports not-ready until SetReady(true).
func NewHealth() *Health { return &Health{} }

// SetReady flips the operator readiness flag.
func (h *Health) SetReady(ready bool) {
	if h == nil {
		return
	}
	h.ready.Store(ready)
}

// AddCheck registers a named readiness probe. The name must pass the
// leak-budget name rules; the probe is called on every /readyz request.
func (h *Health) AddCheck(name string, probe func() error) error {
	if err := verifyName(name, "health check name"); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.checks == nil {
		h.checks = make(map[string]func() error)
	}
	h.checks[name] = probe
	return nil
}

// failing returns the sorted names of checks currently returning an error.
func (h *Health) failing() []string {
	h.mu.Lock()
	probes := make(map[string]func() error, len(h.checks))
	for n, p := range h.checks {
		probes[n] = p
	}
	h.mu.Unlock()
	var out []string
	for name, probe := range probes {
		if err := probe(); err != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// handleLive serves /healthz.
func (h *Health) handleLive(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady serves /readyz: 200 when the ready flag is set and every
// probe passes, 503 otherwise with the names of what failed. Probes run
// even before the operator flag flips so a slow startup phase (e.g.
// journal recovery replaying inside NewServer) is distinguishable from
// a listener that merely has not opened yet — by check name only, never
// error text (leak budget).
func (h *Health) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	failing := h.failing()
	if !h.ready.Load() || len(failing) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		if !h.ready.Load() {
			fmt.Fprintln(w, "not ready")
		}
		for _, name := range failing {
			fmt.Fprintf(w, "check failed: %s\n", name)
		}
		return
	}
	fmt.Fprintln(w, "ok")
}
