package bench

import (
	"fmt"
	"io"
)

// Experiment E9 — audit-log overhead: the same request mix with the
// tamper-evident audit log off, on with the drop policy (wait-free emit),
// and on with the block policy (complete trail). Every request emits at
// least two audit records (authn + authz), so this bounds the per-request
// cost of sealing, chaining, and persisting the trail.

// AuditConfig parameterises E9.
type AuditConfig struct {
	// FileSize of the uploaded/downloaded payload in bytes.
	FileSize int
	// Runs per data point.
	Runs int
}

// DefaultAudit is the default workload.
func DefaultAudit() AuditConfig {
	return AuditConfig{FileSize: 64 << 10, Runs: 30}
}

// AuditRow is one audit mode's result.
type AuditRow struct {
	Mode     string // off | drop | block
	Upload   Stat
	Download Stat
	Grant    Stat // permission grant (ACL mutation, audited)
	Records  uint64
	Drops    uint64
	Bytes    int64 // persisted audit bytes
}

// RunAuditOverhead executes E9.
func RunAuditOverhead(cfg AuditConfig) ([]AuditRow, error) {
	modes := []struct {
		name     string
		env      EnvConfig
		auditing bool
	}{
		{name: "off", env: EnvConfig{}},
		{name: "drop", env: EnvConfig{Audit: true}, auditing: true},
		{name: "block", env: EnvConfig{Audit: true, AuditOverflow: 1}, auditing: true},
	}
	var rows []AuditRow
	for _, m := range modes {
		row, err := runAuditMode(m.name, m.env, m.auditing, cfg)
		if err != nil {
			return nil, fmt.Errorf("audit mode %s: %w", m.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runAuditMode(name string, envCfg EnvConfig, auditing bool, cfg AuditConfig) (AuditRow, error) {
	env, err := NewEnv(envCfg)
	if err != nil {
		return AuditRow{}, err
	}
	defer env.Close()
	client, err := env.NewClient("bench-user")
	if err != nil {
		return AuditRow{}, err
	}
	direct := env.Direct("bench-user")
	if err := direct.AddUser("reader", "bench-group"); err != nil {
		return AuditRow{}, err
	}
	payload := randomPayload(cfg.FileSize)

	up, err := measure(cfg.Runs, func() error { return client.Upload("/audited.bin", payload) })
	if err != nil {
		return AuditRow{}, err
	}
	down, err := measure(cfg.Runs, func() error { return client.DownloadTo("/audited.bin", io.Discard) })
	if err != nil {
		return AuditRow{}, err
	}
	grant, err := measure(cfg.Runs, func() error {
		return client.SetPermission("/audited.bin", "bench-group", "r")
	})
	if err != nil {
		return AuditRow{}, err
	}

	row := AuditRow{Mode: name, Upload: up, Download: down, Grant: grant}
	if auditing {
		log := env.Server.AuditLog()
		if err := log.Flush(); err != nil {
			return AuditRow{}, err
		}
		head := log.Head()
		row.Records = head.Records
		row.Drops = log.Drops()
		names, err := env.cfg.AuditStore.List()
		if err != nil {
			return AuditRow{}, err
		}
		for _, n := range names {
			data, err := env.cfg.AuditStore.Get(n)
			if err != nil {
				return AuditRow{}, err
			}
			row.Bytes += int64(len(data))
		}
	}
	return row, nil
}
