package core

import (
	"testing"

	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/obs"
	"segshare/internal/store"
)

// Microbenchmarks for the introspection layer's per-request cost: the
// in-process direct GET is the cheapest request the server can serve,
// so any fixed per-request overhead (registry add/remove, SLO ring
// writes, heavy-hitter offer) shows here at its worst. E13 measures the
// same comparison end-to-end; this pair exists for quick profiling
// (-cpuprofile) when the E13 overhead number moves.

func benchServer(b *testing.B, introspect bool) *Server {
	b.Helper()
	authority, err := ca.New("bench CA")
	if err != nil {
		b.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		CACertPEM:              authority.CertificatePEM(),
		ContentStore:           store.NewMemory(),
		GroupStore:             store.NewMemory(),
		DisableRequestRegistry: !introspect,
	}
	if introspect {
		cfg.SLO = &obs.SLOConfig{}
		cfg.HotGroups = -1
	}
	s, err := NewServer(platform, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func benchGet(b *testing.B, introspect bool) {
	s := benchServer(b, introspect)
	d := s.Direct("alice")
	if err := d.Upload("/f.txt", []byte("payload payload payload")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Download("/f.txt"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetIntrospectOff(b *testing.B) { benchGet(b, false) }
func BenchmarkGetIntrospectOn(b *testing.B)  { benchGet(b, true) }

func benchMixedParallel(b *testing.B, introspect bool) {
	s := benchServer(b, introspect)
	d := s.Direct("alice")
	if err := d.Upload("/f.txt", []byte("payload payload payload")); err != nil {
		b.Fatal(err)
	}
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%4 == 0 {
				if err := d.Upload("/f.txt", []byte("payload payload payload")); err != nil {
					b.Error(err)
					return
				}
			} else {
				if _, err := d.Download("/f.txt"); err != nil {
					b.Error(err)
					return
				}
			}
			i++
		}
	})
}

func BenchmarkMixedParallelIntrospectOff(b *testing.B) { benchMixedParallel(b, false) }
func BenchmarkMixedParallelIntrospectOn(b *testing.B)  { benchMixedParallel(b, true) }
