package acl

import (
	"bytes"
	"testing"
)

// The codec fuzzers assert two properties on arbitrary input: decoding
// never panics, and anything that decodes successfully re-encodes to a
// byte-identical form (canonical encoding).

func FuzzDecodeACL(f *testing.F) {
	f.Add([]byte{})
	f.Add((&ACL{}).Encode())
	full := &ACL{Inherit: true, Owners: []GroupID{1, 9}}
	full.SetPermission(2, PermRead)
	full.SetPermission(7, PermDeny)
	f.Add(full.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeACL(data)
		if err != nil {
			return
		}
		re := a.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical encoding: %x -> %x", data, re)
		}
	})
}

func FuzzDecodeMemberList(f *testing.F) {
	f.Add([]byte{})
	f.Add((&MemberList{Groups: []GroupID{1, 2, 3}}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMemberList(data)
		if err != nil {
			return
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Fatalf("non-canonical encoding")
		}
	})
}

func FuzzDecodeGroupList(f *testing.F) {
	l := NewGroupList()
	l.Create("a")
	l.Create("b", 1)
	f.Add([]byte{})
	f.Add(l.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeGroupList(data)
		if err != nil {
			return
		}
		if !bytes.Equal(g.Encode(), data) {
			t.Fatalf("non-canonical encoding")
		}
	})
}
