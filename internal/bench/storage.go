package bench

import (
	"fmt"
)

// Experiment E6 — paper §VII-B storage overhead: the encrypted storage
// required for a plaintext file plus its ACL, as a function of file size
// and ACL entry count. The paper reports 10.11–10.15 MB for a 10 MB file
// (1.12 %/1.48 %) and 202.09–202.13 MB for a 200 MB file (1.05 %/1.06 %)
// with 95 and 1119 ACL entries.

// StorageConfig parameterises E6.
type StorageConfig struct {
	// FileSizes are the plaintext sizes in bytes.
	FileSizes []int
	// ACLEntries are the permission-entry counts per file.
	ACLEntries []int
}

// DefaultStorage is the scaled default; cmd/segshare-bench accepts the
// paper's 10 MB/200 MB sizes.
func DefaultStorage() StorageConfig {
	return StorageConfig{
		FileSizes:  []int{1 << 20, 10 << 20},
		ACLEntries: []int{95, 1119},
	}
}

// StorageRow is one (size, entries) data point.
type StorageRow struct {
	PlainBytes  int64
	ACLEntries  int
	StoredBytes int64
	OverheadPct float64
}

// RunStorageOverhead executes the sweep. Every point uses a fresh server
// so store accounting isolates exactly one file and its ACL (plus the
// constant root structures, subtracted via the pre-upload baseline).
func RunStorageOverhead(cfg StorageConfig) ([]StorageRow, error) {
	var rows []StorageRow
	for _, size := range cfg.FileSizes {
		for _, entries := range cfg.ACLEntries {
			row, err := runStoragePoint(size, entries)
			if err != nil {
				return nil, fmt.Errorf("storage size=%d entries=%d: %w", size, entries, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runStoragePoint(size, entries int) (StorageRow, error) {
	env, err := NewEnv(EnvConfig{})
	if err != nil {
		return StorageRow{}, err
	}
	defer env.Close()
	direct := env.Direct("owner")

	// Pre-create the permission target groups so the group store growth
	// does not mix into the content-store measurement; then snapshot the
	// content store before the upload.
	before, err := env.ContentStore().TotalBytes()
	if err != nil {
		return StorageRow{}, err
	}
	if err := direct.Upload("/storage-target.bin", randomPayload(size)); err != nil {
		return StorageRow{}, err
	}
	for i := 0; i < entries; i++ {
		if err := direct.SetPermission("/storage-target.bin", fmt.Sprintf("user:g-%d", i), "r"); err != nil {
			return StorageRow{}, err
		}
	}
	after, err := env.ContentStore().TotalBytes()
	if err != nil {
		return StorageRow{}, err
	}
	// The parent (root) directory file also grew by one entry; that cost
	// is part of storing the file and stays included, as in the paper's
	// end-to-end numbers.
	stored := after - before
	return StorageRow{
		PlainBytes:  int64(size),
		ACLEntries:  entries,
		StoredBytes: stored,
		OverheadPct: 100 * float64(stored-int64(size)) / float64(size),
	}, nil
}
