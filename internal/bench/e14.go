package bench

import (
	"crypto/rand"
	"fmt"
	"runtime"
	"time"

	"segshare/internal/obs"
)

// E14 — parallel chunk-crypto pipeline (DESIGN.md §14). The content data
// path seals and opens 4 KiB PFS chunks through a bounded worker pool
// and recycles chunk/ciphertext buffers through sync.Pools. This
// experiment sweeps the worker count over single-stream 8 MiB PUT and
// GET, reporting throughput and allocations per operation. workers=1 is
// the serial before-configuration; on a single-core host the parallel
// cells measure pipeline overhead rather than speedup (EXPERIMENTS.md
// E14 discusses both readings).

// E14Config parameterizes the chunk-crypto sweep.
type E14Config struct {
	// Workers holds the pool sizes to sweep; 1 is the serial baseline.
	Workers []int
	// FileMiB is the transfer size per operation.
	FileMiB int
	// Ops is the number of PUTs (and GETs) measured per cell.
	Ops int
	// Reps repeats each cell and keeps the best throughput, interleaved
	// across worker counts so machine drift hits all cells equally.
	Reps int
}

// DefaultE14 returns the scaled-down default parameters.
func DefaultE14() E14Config {
	return E14Config{Workers: []int{1, 2, 4, 8}, FileMiB: 8, Ops: 6, Reps: 3}
}

// E14Row is one measured cell.
type E14Row struct {
	Workers     int
	Op          string  // "put" or "get"
	MiBPerSec   float64 // best-of-Reps single-stream throughput
	AllocsPerOp float64 // heap allocations per operation (mean over the best rep)
	Speedup     float64 // throughput vs workers=1 for the same op
}

// e14Cell measures ops back-to-back operations and returns throughput
// plus the mean allocation count per operation. Allocations are read
// from runtime.MemStats deltas around the timed loop; the direct session
// bypasses TLS and HTTP, so the delta is dominated by the data path
// under test.
func e14Cell(ops int, size int, fn func(i int) error) (mibps, allocs float64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := fn(i); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	bytes := float64(ops) * float64(size)
	mibps = bytes / (1 << 20) / elapsed.Seconds()
	allocs = float64(after.Mallocs-before.Mallocs) / float64(ops)
	return mibps, allocs, nil
}

// RunE14 sweeps the worker counts. Each worker count gets its own fresh
// deployment so pool sizing is fixed per cell; PUT overwrites one path
// (steady-state update) and GET re-reads it. Best-of-Reps throughput is
// kept per cell, and the winning rep's allocs/op rides along with it.
func RunE14(cfg E14Config) ([]E14Row, error) {
	if len(cfg.Workers) == 0 || cfg.FileMiB <= 0 || cfg.Ops <= 0 {
		return nil, fmt.Errorf("bench: e14 config incomplete: %+v", cfg)
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 1
	}
	size := cfg.FileMiB << 20
	content := make([]byte, size)
	if _, err := rand.Read(content); err != nil {
		return nil, err
	}

	var rows []E14Row
	base := map[string]float64{} // op -> workers=1 throughput
	for _, workers := range cfg.Workers {
		env, err := NewEnv(EnvConfig{CryptoWorkers: workers})
		if err != nil {
			return nil, err
		}
		sess := env.Direct("alice")
		path := "/e14.bin"
		if err := sess.Upload(path, content); err != nil {
			env.Close()
			return nil, err
		}

		put := E14Row{Workers: workers, Op: "put"}
		get := E14Row{Workers: workers, Op: "get"}
		for rep := 0; rep < reps; rep++ {
			mibps, allocs, err := e14Cell(cfg.Ops, size, func(int) error {
				return sess.Upload(path, content)
			})
			if err != nil {
				env.Close()
				return nil, err
			}
			if mibps > put.MiBPerSec {
				put.MiBPerSec, put.AllocsPerOp = mibps, allocs
			}
			mibps, allocs, err = e14Cell(cfg.Ops, size, func(int) error {
				got, err := sess.Download(path)
				if err != nil {
					return err
				}
				if len(got) != size {
					return fmt.Errorf("bench: e14 download returned %d bytes, want %d", len(got), size)
				}
				return nil
			})
			if err != nil {
				env.Close()
				return nil, err
			}
			if mibps > get.MiBPerSec {
				get.MiBPerSec, get.AllocsPerOp = mibps, allocs
			}
		}
		env.Close()

		for _, row := range []*E14Row{&put, &get} {
			if workers == cfg.Workers[0] {
				base[row.Op] = row.MiBPerSec
			}
			if b := base[row.Op]; b > 0 {
				row.Speedup = row.MiBPerSec / b
			}
			// The snapshot gauges let -metrics-out record the sweep next
			// to the crypto counters; worker count and op come from closed
			// sets, so the labels stay inside the leak budget.
			labels := obs.Labels{"op": row.Op, "pool": fmt.Sprintf("w%d", row.Workers)}
			obs.Default().Gauge("segshare_bench_allocs_per_op",
				"Heap allocations per 8 MiB data-path operation in the E14 sweep.", labels).
				Set(int64(row.AllocsPerOp))
			obs.Default().Gauge("segshare_bench_mib_per_sec",
				"Single-stream throughput per E14 cell, in MiB/s.", labels).
				Set(int64(row.MiBPerSec))
			rows = append(rows, *row)
		}
	}
	return rows, nil
}
