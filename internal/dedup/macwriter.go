package dedup

import (
	"crypto/hmac"
	"crypto/sha256"
	"hash"
)

// macWriter incrementally computes the content HMAC while plaintext
// streams through, so the enclave never needs the whole file in memory to
// address it (paper §VI streaming).
type macWriter struct {
	mac hash.Hash
}

func newMACWriter(key []byte) *macWriter {
	return &macWriter{mac: hmac.New(sha256.New, key)}
}

func (m *macWriter) Write(p []byte) (int, error) {
	return m.mac.Write(p)
}

// Sum returns the accumulated HMAC.
func (m *macWriter) Sum() []byte { return m.mac.Sum(nil) }
