package acl

import "testing"

// BenchmarkAuthorizeFile measures auth_f with a large ACL and member
// list, the hot path of every request.
func BenchmarkAuthorizeFile(b *testing.B) {
	fileACL := &ACL{}
	for g := GroupID(1); g <= 1000; g++ {
		fileACL.SetPermission(g, PermRead)
	}
	var ml MemberList
	for g := GroupID(500); g < 520; g++ {
		ml.Add(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !AuthorizeFile(&ml, fileACL, nil, PermRead) {
			b.Fatal("unexpected denial")
		}
	}
}

// BenchmarkACLCodec measures the decode+update+encode cycle of a
// permission change (paper §IV-B's "one decryption, a logarithmic
// search, one insert, one encryption").
func BenchmarkACLCodec(b *testing.B) {
	src := &ACL{}
	for g := GroupID(1); g <= 1000; g++ {
		src.SetPermission(g, PermRead)
	}
	encoded := src.Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := DecodeACL(encoded)
		if err != nil {
			b.Fatal(err)
		}
		a.SetPermission(GroupID(i%2000), PermWrite)
		if out := a.Encode(); len(out) == 0 {
			b.Fatal("empty encoding")
		}
	}
}
