package acl

// This file implements the authorization predicates of paper Table IV:
//
//	auth_f(u, p, f): ∃g: (u,g) ∈ rG ∧ ((p,g,f) ∈ rP ∨ (g,f) ∈ rFO)
//	auth_g(u, g2):   ∃g1: (u,g1) ∈ rG ∧ (g1,g2) ∈ rGO
//
// plus the inheritance-aware variant of §V-B, where a permission defined
// for a group on f takes precedence over one defined for the same group
// on f's parent.
//
// Deny semantics: the paper's p_deny revokes access. We give deny
// precedence over grants across a user's groups — if any group the user
// belongs to is denied on the file, the user is denied unless one of the
// user's groups *owns* the file (owners always retain control, otherwise
// an owner could lock themselves out irrecoverably).

// AuthorizeFile evaluates auth_f for a user whose memberships are member
// (the decoded member list), on a file whose ACL is fileACL. If the ACL's
// inherit flag is set, parentACL (which may be nil at the root) supplies
// fallback permissions per §V-B; otherwise parentACL is ignored.
//
// want is the permission being exercised (PermRead, PermWrite, or both).
// An empty want authorizes only file owners, matching Algo 1's
// auth_f(u, "", f) used for permission changes.
func AuthorizeFile(member *MemberList, fileACL, parentACL *ACL, want Permission) bool {
	if fileACL == nil {
		return false
	}
	owner := false
	granted := PermNone
	denied := false
	for _, g := range member.Groups {
		if fileACL.IsOwner(g) {
			owner = true
			continue
		}
		p, ok := fileACL.PermissionFor(g)
		if !ok && fileACL.Inherit && parentACL != nil {
			p, ok = parentACL.PermissionFor(g)
		}
		if !ok {
			continue
		}
		if p.Has(PermDeny) {
			denied = true
			continue
		}
		granted |= p
	}
	if owner {
		return true
	}
	if want == PermNone {
		// Only owners may perform owner-level operations.
		return false
	}
	if denied {
		return false
	}
	return granted.Has(want)
}

// AuthorizeGroupChange evaluates auth_g: whether a user whose memberships
// are member may modify the target group.
func AuthorizeGroupChange(member *MemberList, target *GroupRecord) bool {
	if target == nil {
		return false
	}
	// Both lists are sorted; walk the shorter against the longer with
	// binary search via IsOwnedBy.
	for _, g := range member.Groups {
		if target.IsOwnedBy(g) {
			return true
		}
	}
	return false
}

// EffectivePermission reports the combined permission a user holds on a
// file, applying the same owner/deny/grant rules as AuthorizeFile. Owners
// report PermReadWrite. It powers directory listings with permission
// flags.
func EffectivePermission(member *MemberList, fileACL, parentACL *ACL) Permission {
	if fileACL == nil {
		return PermNone
	}
	granted := PermNone
	denied := false
	for _, g := range member.Groups {
		if fileACL.IsOwner(g) {
			return PermReadWrite
		}
		p, ok := fileACL.PermissionFor(g)
		if !ok && fileACL.Inherit && parentACL != nil {
			p, ok = parentACL.PermissionFor(g)
		}
		if !ok {
			continue
		}
		if p.Has(PermDeny) {
			denied = true
			continue
		}
		granted |= p
	}
	if denied {
		return PermNone
	}
	return granted & PermReadWrite
}
