package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// backendsUnderTest returns fresh instances of every Backend
// implementation so the conformance tests run against all of them.
func backendsUnderTest(t *testing.T) map[string]Backend {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	return map[string]Backend{
		"memory":    NewMemory(),
		"disk":      disk,
		"adversary": NewAdversary(NewMemory()),
		"faulty":    NewFaulty(NewMemory()),
	}
}

func TestBackendBasics(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			testBackendBasics(t, b)
		})
	}
}

func testBackendBasics(t *testing.T, b Backend) {
	t.Helper()

	// Absent object.
	if _, err := b.Get("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get missing: want ErrNotExist, got %v", err)
	}
	if err := b.Delete("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Delete missing: want ErrNotExist, got %v", err)
	}
	if ok, err := b.Exists("missing"); err != nil || ok {
		t.Fatalf("Exists missing = %v, %v", ok, err)
	}

	// Put / Get round trip, including awkward names.
	names := []string{"/a/b.txt", "plain", "with space", "ünïcode/→", ""}
	for i, name := range names {
		data := []byte(fmt.Sprintf("payload-%d", i))
		if err := b.Put(name, data); err != nil {
			t.Fatalf("Put(%q): %v", name, err)
		}
		got, err := b.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("Get(%q) = %q, want %q", name, got, data)
		}
	}

	// Overwrite.
	if err := b.Put("plain", []byte("v2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if got, _ := b.Get("plain"); string(got) != "v2" {
		t.Fatalf("overwrite read back %q", got)
	}

	// List is sorted and complete.
	list, err := b.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if !sort.StringsAreSorted(list) {
		t.Fatalf("List not sorted: %v", list)
	}
	if len(list) != len(names) {
		t.Fatalf("List has %d entries, want %d: %v", len(list), len(names), list)
	}

	// Rename semantics.
	if err := b.Rename("plain", "renamed"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if ok, _ := b.Exists("plain"); ok {
		t.Fatal("old name still exists after rename")
	}
	if got, err := b.Get("renamed"); err != nil || string(got) != "v2" {
		t.Fatalf("renamed content = %q, %v", got, err)
	}
	if err := b.Rename("missing", "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Rename missing: want ErrNotExist, got %v", err)
	}
	if err := b.Rename("renamed", "/a/b.txt"); !errors.Is(err, ErrExist) {
		t.Fatalf("Rename onto existing: want ErrExist, got %v", err)
	}

	// Delete.
	if err := b.Delete("renamed"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if ok, _ := b.Exists("renamed"); ok {
		t.Fatal("object exists after delete")
	}

	// TotalBytes is the sum of payload sizes.
	total, err := b.TotalBytes()
	if err != nil {
		t.Fatalf("TotalBytes: %v", err)
	}
	var want int64
	remaining, _ := b.List()
	for _, name := range remaining {
		data, err := b.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		want += int64(len(data))
	}
	if total != want {
		t.Fatalf("TotalBytes = %d, want %d", total, want)
	}
}

func TestMemoryPutCopiesData(t *testing.T) {
	m := NewMemory()
	data := []byte("mutable")
	if err := m.Put("k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := m.Get("k")
	if string(got) != "mutable" {
		t.Fatal("Put did not copy caller's slice")
	}
	got[0] = 'Y'
	again, _ := m.Get("k")
	if string(again) != "mutable" {
		t.Fatal("Get exposed internal slice")
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("/enc/file", []byte("ciphertext")); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get("/enc/file")
	if err != nil || string(got) != "ciphertext" {
		t.Fatalf("reopen read = %q, %v", got, err)
	}
}

func TestMemoryConcurrentAccess(t *testing.T) {
	m := NewMemory()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("obj-%d", i)
			for j := 0; j < 200; j++ {
				if err := m.Put(name, []byte{byte(j)}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := m.Get(name); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if _, err := m.List(); err != nil {
					t.Errorf("List: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestAdversaryCorruptAndRollback(t *testing.T) {
	adv := NewAdversary(NewMemory())
	if err := adv.Put("obj", []byte("version-1")); err != nil {
		t.Fatal(err)
	}
	if err := adv.RememberObject("obj"); err != nil {
		t.Fatal(err)
	}
	if err := adv.Put("obj", []byte("version-2")); err != nil {
		t.Fatal(err)
	}

	if err := adv.RollbackObject("obj"); err != nil {
		t.Fatal(err)
	}
	got, _ := adv.Get("obj")
	if string(got) != "version-1" {
		t.Fatalf("rollback read = %q", got)
	}

	if err := adv.FlipBit("obj", 3); err != nil {
		t.Fatal(err)
	}
	got, _ = adv.Get("obj")
	if string(got) == "version-1" {
		t.Fatal("FlipBit did not change the object")
	}

	if err := adv.RollbackObject("never-remembered"); err == nil {
		t.Fatal("rollback of unremembered object succeeded")
	}
}

func TestAdversaryStoreRollback(t *testing.T) {
	adv := NewAdversary(NewMemory())
	if err := adv.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	adv.SnapshotStore()
	if err := adv.Put("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := adv.Put("b", []byte("new")); err != nil {
		t.Fatal(err)
	}
	adv.RollbackStore()
	got, _ := adv.Get("a")
	if string(got) != "1" {
		t.Fatalf("store rollback: a = %q", got)
	}
	if ok, _ := adv.Exists("b"); ok {
		t.Fatal("store rollback kept post-snapshot object")
	}
}

func TestAdversaryDropWrites(t *testing.T) {
	adv := NewAdversary(NewMemory())
	adv.SetDropWrites(true)
	if err := adv.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if ok, _ := adv.Exists("a"); ok {
		t.Fatal("dropped write landed")
	}
	adv.SetDropWrites(false)
	if err := adv.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if ok, _ := adv.Exists("a"); !ok {
		t.Fatal("write after re-enable missing")
	}
}

func TestFaultyInjection(t *testing.T) {
	errInjected := errors.New("injected")
	f := NewFaulty(NewMemory())
	f.FailAfter("put", 2, errInjected)

	if err := f.Put("a", nil); err != nil {
		t.Fatalf("first put should succeed: %v", err)
	}
	if err := f.Put("b", nil); !errors.Is(err, errInjected) {
		t.Fatalf("second put: want injected error, got %v", err)
	}
	if err := f.Put("c", nil); err != nil {
		t.Fatalf("third put should succeed: %v", err)
	}

	f.FailAfter("get", 1, errInjected)
	if _, err := f.Get("a"); !errors.Is(err, errInjected) {
		t.Fatalf("get: want injected error, got %v", err)
	}
	f.FailAfter("list", 1, errInjected)
	if _, err := f.List(); !errors.Is(err, errInjected) {
		t.Fatalf("list: want injected error, got %v", err)
	}
	f.Clear()
	if _, err := f.Get("a"); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}

// Property: for any sequence of puts, memory and disk backends agree on
// List and contents.
func TestQuickMemoryDiskEquivalence(t *testing.T) {
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	prop := func(keys []string, vals [][]byte) bool {
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			if err := mem.Put(k, v); err != nil {
				return false
			}
			if err := disk.Put(k, v); err != nil {
				return false
			}
		}
		ml, err1 := mem.List()
		dl, err2 := disk.List()
		if err1 != nil || err2 != nil || len(ml) != len(dl) {
			return false
		}
		for i := range ml {
			if ml[i] != dl[i] {
				return false
			}
			mv, err1 := mem.Get(ml[i])
			dv, err2 := disk.Get(dl[i])
			if err1 != nil || err2 != nil || !bytes.Equal(mv, dv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskDetectsNameMismatch(t *testing.T) {
	// If the provider copies one object file over another (header name no
	// longer matches the requested name), Get must refuse rather than
	// serve the wrong object.
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	// Overwrite b's file with a's file on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range entries {
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	if len(paths) != 2 {
		t.Fatalf("files = %v", paths)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[1], data, 0o600); err != nil {
		t.Fatal(err)
	}
	// Exactly one of the two names now detects the swap.
	_, errA := d.Get("a")
	_, errB := d.Get("b")
	if errA == nil && errB == nil {
		t.Fatal("object-file swap went unnoticed")
	}
}

func TestCopyAndCopyExact(t *testing.T) {
	src := NewMemory()
	dst := NewMemory()
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}} {
		if err := src.Put(kv[0], []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.Put("stale", []byte("x")); err != nil {
		t.Fatal(err)
	}

	if err := Copy(dst, src); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	if got, _ := dst.Get("a"); string(got) != "1" {
		t.Fatalf("copied a = %q", got)
	}
	if ok, _ := dst.Exists("stale"); !ok {
		t.Fatal("Copy removed extra object")
	}

	if err := CopyExact(dst, src); err != nil {
		t.Fatalf("CopyExact: %v", err)
	}
	if ok, _ := dst.Exists("stale"); ok {
		t.Fatal("CopyExact kept extra object")
	}
	names, _ := dst.List()
	if len(names) != 2 {
		t.Fatalf("after CopyExact: %v", names)
	}
}
