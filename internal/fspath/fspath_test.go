package fspath

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	tests := []struct {
		give     string
		wantDir  bool
		wantName string
	}{
		{give: "/", wantDir: true, wantName: "/"},
		{give: "/a/", wantDir: true, wantName: "a"},
		{give: "/a/b/", wantDir: true, wantName: "b"},
		{give: "/file.txt", wantDir: false, wantName: "file.txt"},
		{give: "/a/file.txt", wantDir: false, wantName: "file.txt"},
		{give: "/a b/c d.txt", wantDir: false, wantName: "c d.txt"},
		{give: "/ünïcodé/f", wantDir: false, wantName: "f"},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			p, err := Parse(tt.give)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.give, err)
			}
			if p.String() != tt.give {
				t.Fatalf("String() = %q", p.String())
			}
			if p.IsDir() != tt.wantDir {
				t.Fatalf("IsDir() = %v", p.IsDir())
			}
			if p.Name() != tt.wantName {
				t.Fatalf("Name() = %q, want %q", p.Name(), tt.wantName)
			}
		})
	}
}

func TestParseInvalid(t *testing.T) {
	tests := []string{
		"",
		"relative",
		"relative/",
		"//",
		"/a//b",
		"/a//",
		"/./",
		"/../",
		"/a/./b",
		"/a/../b",
		"/a/\x00bad",
		"/a/\x1fbad/",
		"/" + strings.Repeat("x", MaxPathLen+1),
	}
	for _, give := range tests {
		t.Run(give, func(t *testing.T) {
			if _, err := Parse(give); !errors.Is(err, ErrInvalidPath) {
				t.Fatalf("Parse(%q): want ErrInvalidPath, got %v", give, err)
			}
		})
	}
}

func TestDirAndFileBuilders(t *testing.T) {
	d, err := Dir("a", "b")
	if err != nil {
		t.Fatalf("Dir: %v", err)
	}
	if d.String() != "/a/b/" {
		t.Fatalf("Dir = %q", d)
	}
	f, err := File("a", "b.txt")
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	if f.String() != "/a/b.txt" {
		t.Fatalf("File = %q", f)
	}
	root, err := Dir()
	if err != nil || !root.IsRoot() {
		t.Fatalf("Dir() = %v, %v", root, err)
	}
	if _, err := File(); !errors.Is(err, ErrInvalidPath) {
		t.Fatalf("File(): want ErrInvalidPath, got %v", err)
	}
	if _, err := Dir("a", ".."); !errors.Is(err, ErrInvalidPath) {
		t.Fatalf("Dir with ..: want ErrInvalidPath, got %v", err)
	}
}

func TestParent(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{give: "/", want: "/"},
		{give: "/a/", want: "/"},
		{give: "/file", want: "/"},
		{give: "/a/b/", want: "/a/"},
		{give: "/a/b/c.txt", want: "/a/b/"},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			if got := MustParse(tt.give).Parent().String(); got != tt.want {
				t.Fatalf("Parent(%q) = %q, want %q", tt.give, got, tt.want)
			}
		})
	}
}

func TestSegmentsAndDepth(t *testing.T) {
	if s := Root.Segments(); s != nil {
		t.Fatalf("root segments = %v", s)
	}
	p := MustParse("/a/b/c.txt")
	want := []string{"a", "b", "c.txt"}
	got := p.Segments()
	if len(got) != len(want) {
		t.Fatalf("segments = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segments = %v, want %v", got, want)
		}
	}
	if p.Depth() != 3 {
		t.Fatalf("Depth = %d", p.Depth())
	}
}

func TestChildren(t *testing.T) {
	d := MustParse("/a/")
	cd, err := d.ChildDir("b")
	if err != nil || cd.String() != "/a/b/" {
		t.Fatalf("ChildDir: %v %v", cd, err)
	}
	cf, err := d.ChildFile("f.txt")
	if err != nil || cf.String() != "/a/f.txt" {
		t.Fatalf("ChildFile: %v %v", cf, err)
	}
	if _, err := cf.ChildFile("x"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("child of file: want ErrNotDir, got %v", err)
	}
	if _, err := d.ChildDir("a/b"); !errors.Is(err, ErrInvalidPath) {
		t.Fatalf("slash in name: want ErrInvalidPath, got %v", err)
	}
}

func TestIsAncestorOf(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{a: "/", b: "/a/", want: true},
		{a: "/", b: "/f", want: true},
		{a: "/a/", b: "/a/b/c", want: true},
		{a: "/a/", b: "/a/", want: false},
		{a: "/a/", b: "/ab/", want: false},
		{a: "/a/b/", b: "/a/", want: false},
		{a: "/f", b: "/f", want: false},
	}
	for _, tt := range tests {
		a, b := MustParse(tt.a), MustParse(tt.b)
		if got := a.IsAncestorOf(b); got != tt.want {
			t.Errorf("IsAncestorOf(%q, %q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestRebase(t *testing.T) {
	p := MustParse("/a/b/c.txt")
	got, err := p.Rebase(MustParse("/a/"), MustParse("/x/y/"))
	if err != nil {
		t.Fatalf("Rebase: %v", err)
	}
	if got.String() != "/x/y/b/c.txt" {
		t.Fatalf("Rebase = %q", got)
	}

	if _, err := p.Rebase(MustParse("/z/"), MustParse("/x/")); !errors.Is(err, ErrInvalidPath) {
		t.Fatalf("rebase outside subtree: want ErrInvalidPath, got %v", err)
	}
	if _, err := p.Rebase(MustParse("/f"), MustParse("/x/")); !errors.Is(err, ErrNotDir) {
		t.Fatalf("rebase from file: want ErrNotDir, got %v", err)
	}

	// Rebasing the moved directory itself.
	d := MustParse("/a/b/")
	got, err = d.Rebase(MustParse("/a/b/"), MustParse("/c/"))
	if err != nil || got.String() != "/c/" {
		t.Fatalf("self rebase = %v, %v", got, err)
	}
}

func TestCompare(t *testing.T) {
	a, b := MustParse("/a/"), MustParse("/b/")
	if Compare(a, b) >= 0 || Compare(b, a) <= 0 || Compare(a, a) != 0 {
		t.Fatal("Compare ordering broken")
	}
}

// Property: any path built from valid segments parses back to itself, and
// Parent/Name decompose it consistently.
func TestQuickBuildParseRoundTrip(t *testing.T) {
	sanitize := func(segs []string) []string {
		var out []string
		for _, s := range segs {
			clean := strings.Map(func(r rune) rune {
				if r < 0x20 || r == 0x7f || r == '/' {
					return 'x'
				}
				return r
			}, s)
			if clean == "" || clean == "." || clean == ".." {
				clean = "seg"
			}
			out = append(out, clean)
		}
		return out
	}
	prop := func(rawSegs []string, dir bool) bool {
		segs := sanitize(rawSegs)
		if len(segs) == 0 || len(strings.Join(segs, "/")) > MaxPathLen-8 {
			return true
		}
		var (
			p   Path
			err error
		)
		if dir {
			p, err = Dir(segs...)
		} else {
			p, err = File(segs...)
		}
		if err != nil {
			return false
		}
		reparsed, err := Parse(p.String())
		if err != nil || reparsed != p {
			return false
		}
		if p.Name() != segs[len(segs)-1] {
			return false
		}
		return p.Depth() == len(segs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
