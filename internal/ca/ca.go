// Package ca implements SeGShare's trusted authentication service (paper
// §III-A, §IV-A): a certificate authority that issues client certificates
// carrying identity information to users, and provisions server
// certificates to SeGShare enclaves after verifying their remote
// attestation. It also signs the reset messages used during backup
// restoration (§V-G).
package ca

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net"
	"time"

	"segshare/internal/enclave"
)

// Authority errors.
var (
	// ErrAttestation is returned when an enclave's quote fails
	// verification during server-certificate provisioning.
	ErrAttestation = errors.New("ca: enclave attestation failed")
	// ErrBadCSR is returned when the enclave's certificate signing
	// request is malformed or not bound to its quote.
	ErrBadCSR = errors.New("ca: invalid certificate signing request")
	// ErrBadIdentity is returned when identity information is missing.
	ErrBadIdentity = errors.New("ca: invalid identity")
)

// Identity is the identity information embedded in a client certificate.
// SeGShare separates authentication from authorization (objective F8):
// authorization decisions use only UserID, so certificates can be
// reissued or multiplied across devices without permission changes.
type Identity struct {
	// UserID is the stable identifier used for authorization.
	UserID string
	// Email is an optional contact address.
	Email string
	// FullName is an optional display name.
	FullName string
}

// Credential is a certificate plus its private key, ready for TLS use.
type Credential struct {
	// CertPEM is the PEM-encoded certificate.
	CertPEM []byte
	// KeyPEM is the PEM-encoded private key.
	KeyPEM []byte
}

// TLSCertificate parses the credential for use with crypto/tls.
func (c *Credential) TLSCertificate() (tls.Certificate, error) {
	return tls.X509KeyPair(c.CertPEM, c.KeyPEM)
}

// Authority is a certificate authority. It is safe for concurrent use.
type Authority struct {
	key     *ecdsa.PrivateKey
	cert    *x509.Certificate
	certDER []byte
}

// New creates a CA with a fresh self-signed root certificate.
func New(name string) (*Authority, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("ca: generate key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"SeGShare CA"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(20 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("ca: self-sign: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("ca: parse root: %w", err)
	}
	return &Authority{key: key, cert: cert, certDER: der}, nil
}

// nextSerial draws a random 128-bit serial; randomness keeps the
// authority stateless, so it can be persisted and reloaded without a
// serial counter.
func (a *Authority) nextSerial() *big.Int {
	limit := new(big.Int).Lsh(big.NewInt(1), 128)
	serial, err := rand.Int(rand.Reader, limit)
	if err != nil {
		// rand.Reader failing is unrecoverable for a CA.
		panic(fmt.Sprintf("ca: serial: %v", err))
	}
	return serial
}

// MarshalPEM exports the authority for persistence: its certificate and
// private key, both PEM encoded. Guard the key like any CA key.
func (a *Authority) MarshalPEM() (certPEM, keyPEM []byte, err error) {
	keyDER, err := x509.MarshalECPrivateKey(a.key)
	if err != nil {
		return nil, nil, fmt.Errorf("ca: marshal key: %w", err)
	}
	return a.CertificatePEM(),
		pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}),
		nil
}

// Load restores an authority previously exported with MarshalPEM.
func Load(certPEM, keyPEM []byte) (*Authority, error) {
	certBlock, _ := pem.Decode(certPEM)
	if certBlock == nil {
		return nil, errors.New("ca: invalid certificate PEM")
	}
	cert, err := x509.ParseCertificate(certBlock.Bytes)
	if err != nil {
		return nil, fmt.Errorf("ca: parse certificate: %w", err)
	}
	keyBlock, _ := pem.Decode(keyPEM)
	if keyBlock == nil {
		return nil, errors.New("ca: invalid key PEM")
	}
	key, err := x509.ParseECPrivateKey(keyBlock.Bytes)
	if err != nil {
		return nil, fmt.Errorf("ca: parse key: %w", err)
	}
	if !key.PublicKey.Equal(cert.PublicKey) {
		return nil, errors.New("ca: key does not match certificate")
	}
	return &Authority{key: key, cert: cert, certDER: certBlock.Bytes}, nil
}

// Certificate returns the CA root certificate.
func (a *Authority) Certificate() *x509.Certificate { return a.cert }

// CertificatePEM returns the PEM-encoded root certificate, which user
// applications and enclaves pin.
func (a *Authority) CertificatePEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: a.certDER})
}

// PublicKeyDER returns the CA public key in DER form. SeGShare hard-codes
// it into the enclave's measured configuration (paper §III-B), so an
// enclave built for one CA measures differently from one built for
// another.
func (a *Authority) PublicKeyDER() ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(&a.key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("ca: marshal public key: %w", err)
	}
	return der, nil
}

// CertPool returns a pool containing only this CA, for TLS verification.
func (a *Authority) CertPool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(a.cert)
	return pool
}

// IssueClientCertificate validates the identity and issues a client
// certificate for it. UserID is carried in the CommonName, FullName in
// Organization, Email as a SAN.
func (a *Authority) IssueClientCertificate(id Identity, validity time.Duration) (*Credential, error) {
	if id.UserID == "" {
		return nil, fmt.Errorf("%w: empty user id", ErrBadIdentity)
	}
	if validity <= 0 {
		validity = 365 * 24 * time.Hour
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("ca: client key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: a.nextSerial(),
		Subject: pkix.Name{
			CommonName:   id.UserID,
			Organization: []string{id.FullName},
		},
		NotBefore:   time.Now().Add(-time.Hour),
		NotAfter:    time.Now().Add(validity),
		KeyUsage:    x509.KeyUsageDigitalSignature,
		ExtKeyUsage: []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	}
	if id.Email != "" {
		tmpl.EmailAddresses = []string{id.Email}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.cert, &key.PublicKey, a.key)
	if err != nil {
		return nil, fmt.Errorf("ca: sign client cert: %w", err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("ca: marshal client key: %w", err)
	}
	return &Credential{
		CertPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		KeyPEM:  pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}),
	}, nil
}

// IdentityFromCertificate extracts the identity information from a client
// certificate previously issued by IssueClientCertificate.
func IdentityFromCertificate(cert *x509.Certificate) (Identity, error) {
	if cert.Subject.CommonName == "" {
		return Identity{}, fmt.Errorf("%w: certificate has no user id", ErrBadIdentity)
	}
	id := Identity{UserID: cert.Subject.CommonName}
	if len(cert.Subject.Organization) > 0 {
		id.FullName = cert.Subject.Organization[0]
	}
	if len(cert.EmailAddresses) > 0 {
		id.Email = cert.EmailAddresses[0]
	}
	return id, nil
}

// EnclaveCertifier is implemented by the enclave's trusted certification
// component (paper Fig. 1). The CA drives it during setup.
type EnclaveCertifier interface {
	// CertificationRequest makes the enclave generate a temporary key
	// pair and return (1) a CSR for it and (2) a quote whose report data
	// binds the CSR, so the CA knows the key pair lives in the attested
	// enclave.
	CertificationRequest() (quote *enclave.Quote, csrDER []byte, err error)
	// InstallCertificate hands the signed server certificate to the
	// enclave, which persists it and rolls its TLS identity.
	InstallCertificate(certDER []byte) error
}

// CSRReportData computes the quote report data that binds a CSR.
func CSRReportData(csrDER []byte) []byte {
	sum := sha256.Sum256(csrDER)
	return sum[:]
}

// ProvisionServer runs the setup-phase protocol of paper §IV-A: remote
// attestation of the enclave, CSR exchange, and installation of a signed
// server certificate valid for the given hosts.
func (a *Authority) ProvisionServer(
	target EnclaveCertifier,
	attestationKey *ecdsa.PublicKey,
	expected enclave.Measurement,
	hosts []string,
	validity time.Duration,
) error {
	quote, csrDER, err := target.CertificationRequest()
	if err != nil {
		return fmt.Errorf("ca: certification request: %w", err)
	}
	if err := enclave.VerifyQuote(attestationKey, quote, expected); err != nil {
		return fmt.Errorf("%w: %v", ErrAttestation, err)
	}
	var want [enclave.ReportDataSize]byte
	copy(want[:], CSRReportData(csrDER))
	if quote.ReportData != want {
		return fmt.Errorf("%w: quote does not bind CSR", ErrBadCSR)
	}
	csr, err := x509.ParseCertificateRequest(csrDER)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadCSR, err)
	}
	if err := csr.CheckSignature(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCSR, err)
	}
	if validity <= 0 {
		validity = 365 * 24 * time.Hour
	}
	tmpl := &x509.Certificate{
		SerialNumber: a.nextSerial(),
		Subject:      pkix.Name{CommonName: "segshare-enclave"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(validity),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	addHosts(tmpl, hosts)
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.cert, csr.PublicKey, a.key)
	if err != nil {
		return fmt.Errorf("ca: sign server cert: %w", err)
	}
	if err := target.InstallCertificate(der); err != nil {
		return fmt.Errorf("ca: install certificate: %w", err)
	}
	return nil
}

// IssueServerCertificate directly issues a TLS server credential for the
// given hosts. SeGShare enclaves use the attested ProvisionServer flow
// instead; this is for non-enclave services (the plaintext baseline
// servers of the evaluation).
func (a *Authority) IssueServerCertificate(hosts []string, validity time.Duration) (*Credential, error) {
	if validity <= 0 {
		validity = 365 * 24 * time.Hour
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("ca: server key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: a.nextSerial(),
		Subject:      pkix.Name{CommonName: "baseline-server"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(validity),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	addHosts(tmpl, hosts)
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.cert, &key.PublicKey, a.key)
	if err != nil {
		return nil, fmt.Errorf("ca: sign server cert: %w", err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("ca: marshal server key: %w", err)
	}
	return &Credential{
		CertPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		KeyPEM:  pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}),
	}, nil
}

// SignReset signs a backup-restoration reset message (paper §V-G). The
// payload identifies the restored state (e.g. the stores' root hashes).
func (a *Authority) SignReset(payload []byte) ([]byte, error) {
	digest := resetDigest(payload)
	sig, err := ecdsa.SignASN1(rand.Reader, a.key, digest)
	if err != nil {
		return nil, fmt.Errorf("ca: sign reset: %w", err)
	}
	return sig, nil
}

// VerifyReset verifies a reset-message signature under the CA public key
// (the one hard-coded into the enclave).
func VerifyReset(pub *ecdsa.PublicKey, payload, sig []byte) bool {
	return ecdsa.VerifyASN1(pub, resetDigest(payload), sig)
}

func resetDigest(payload []byte) []byte {
	h := sha256.New()
	h.Write([]byte("segshare-reset/v1\x00"))
	h.Write(payload)
	return h.Sum(nil)
}

// addHosts distributes host entries into DNS and IP SANs.
func addHosts(tmpl *x509.Certificate, hosts []string) {
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
			continue
		}
		tmpl.DNSNames = append(tmpl.DNSNames, h)
	}
}

// ParsePublicKeyDER parses a DER public key produced by PublicKeyDER.
func ParsePublicKeyDER(der []byte) (*ecdsa.PublicKey, error) {
	pub, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("ca: parse public key: %w", err)
	}
	ec, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("ca: public key is %T, want *ecdsa.PublicKey", pub)
	}
	return ec, nil
}
