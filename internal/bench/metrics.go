package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"segshare/internal/obs"
)

// WriteMetricsJSON dumps a JSON snapshot of the process-wide metric
// registry to path. Every Env built by this package registers its
// instruments in obs.Default(), so after a run the snapshot holds the
// accumulated counters and histograms of all experiments — the same
// signals the admin listener serves at /debug/vars, written next to the
// BENCH_*.json result files for offline comparison.
func WriteMetricsJSON(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("bench: metrics dir: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: metrics out: %w", err)
	}
	defer f.Close()
	if err := obs.Default().WriteJSON(f, nil); err != nil {
		return fmt.Errorf("bench: write metrics: %w", err)
	}
	return f.Close()
}
