package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"segshare/internal/acl"
	"segshare/internal/fspath"
	"segshare/internal/obs"
)

// The request path used to serialize through one global RWMutex. This
// file replaces it with a three-level lock manager so requests on
// disjoint paths proceed concurrently (paper Tables III–IV assume many
// parallel TLS clients):
//
//	barrier  — a whole-tree RWMutex. Every request holds it shared;
//	           whole-tree operations (backup restoration, directory
//	           moves, first-contact user provisioning) and — when
//	           rollback protection couples every write to the store
//	           root — all content mutations hold it exclusively.
//	group    — one RWMutex over the group store (member lists, group
//	           list). Authorization reads share it; membership and
//	           group mutations exclude each other and all readers.
//	shards   — N RWMutexes; a path hashes to one shard. An operation
//	           locks the shards of every path it touches (the path and
//	           its parent — a mutation always rewrites the parent's
//	           directory body, and a reader of a directory must be
//	           excluded from concurrent mutations of its entries) in
//	           ascending shard order, so overlapping multi-shard
//	           acquisitions cannot deadlock.
//
// Acquisition order is fixed: barrier, then group, then shards
// ascending. Unlock runs in reverse. Lock-wait time is observed per
// scope under the leak budget (durations only, no request identity).
//
// Why writes escalate to the barrier under rollback protection: every
// mutation then propagates hashes up to the namespace *root* and every
// read validates through ancestors up to the same root (§V-D/§V-E), so
// two writes — or a write and a read — on disjoint paths still share
// the root node. Per-path exclusion would be incorrect; reads still
// scale because they share the barrier.

// defaultLockShards is the default shard count. 64 keeps the chance of
// two concurrently-hot disjoint paths colliding low (< 2 % at 16 active
// requests against 2×64 slots) at the cost of 64 RWMutexes (~1.5 KiB) of
// enclave memory; it is deliberately far above typical core counts so
// the shard array, not the scheduler, stays out of the way.
const defaultLockShards = 64

// lockScopes is the closed set of acquisition scopes reported to the
// lock-wait histogram; serverObs pre-registers one series per scope.
var lockScopes = []string{"fs_read", "fs_write", "grp_read", "grp_write", "barrier"}

// lockManager implements the scheme above.
type lockManager struct {
	barrier sync.RWMutex
	group   sync.RWMutex
	shards  []sync.RWMutex
	// shardWait accumulates nanoseconds spent blocked per shard. The
	// watchdog's skew probe compares deltas between sweeps: one shard
	// absorbing most of the fleet's wait time means hot paths are
	// colliding on a single shard (or a holder is wedged).
	shardWait []atomic.Int64
	// coupled marks rollback-protection mode: content mutations escalate
	// to the exclusive barrier (see package comment above).
	coupled bool

	obs *serverObs
}

func newLockManager(shards int, coupled bool, obs *serverObs) *lockManager {
	if shards <= 0 {
		shards = defaultLockShards
	}
	return &lockManager{
		shards:    make([]sync.RWMutex, shards),
		shardWait: make([]atomic.Int64, shards),
		coupled:   coupled,
		obs:       obs,
	}
}

// shardIndex hashes a path's canonical string to a shard.
func (lm *lockManager) shardIndex(p fspath.Path) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(p.String()))
	return int(h.Sum32() % uint32(len(lm.shards)))
}

// shardSet returns the deduplicated, ascending shard indices of the
// given paths together with each path's parent (the parent's directory
// body and rollback buckets change with the child, and a directory
// reader must exclude entry mutations).
func (lm *lockManager) shardSet(paths ...fspath.Path) []int {
	seen := make(map[int]struct{}, 2*len(paths))
	for _, p := range paths {
		if p.IsZero() {
			continue
		}
		seen[lm.shardIndex(p)] = struct{}{}
		if !p.IsRoot() {
			seen[lm.shardIndex(p.Parent())] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// observeWait records how long an acquisition (all levels together)
// blocked, labeled by scope only, and attributes it to the request's
// stats collector for the wide event.
func (lm *lockManager) observeWait(rs *obs.ReqStats, scope string, start time.Time) {
	d := time.Since(start)
	if lm.obs != nil {
		lm.obs.lockWait(scope, d)
	}
	rs.AddLockWait(d)
}

// lockShard acquires shard i (exclusive or shared) and charges the time
// blocked to the per-shard wait accumulator.
func (lm *lockManager) lockShard(i int, exclusive bool) {
	start := time.Now()
	if exclusive {
		lm.shards[i].Lock()
	} else {
		lm.shards[i].RLock()
	}
	if d := time.Since(start); d > 0 {
		lm.shardWait[i].Add(int64(d))
	}
}

// shardWaits snapshots the cumulative per-shard wait nanoseconds.
func (lm *lockManager) shardWaits() []int64 {
	out := make([]int64, len(lm.shardWait))
	for i := range lm.shardWait {
		out[i] = lm.shardWait[i].Load()
	}
	return out
}

// skewProbe returns a watchdog probe that flags sustained contention
// skew: between two sweeps, one shard absorbed more than threshold of
// new wait time AND more than 4x the mean across shards. Both
// conditions must hold — absolute, so an idle server never trips, and
// relative, so uniformly heavy load (which sharding handles) does not.
func (lm *lockManager) skewProbe(threshold time.Duration) func() error {
	prev := lm.shardWaits()
	return func() error {
		cur := lm.shardWaits()
		var max, sum int64
		hot := -1
		for i := range cur {
			d := cur[i] - prev[i]
			sum += d
			if d > max {
				max, hot = d, i
			}
		}
		prev = cur
		if len(cur) < 2 || max < int64(threshold) {
			return nil
		}
		mean := sum / int64(len(cur))
		if mean > 0 && max > 4*mean {
			return fmt.Errorf("lock shard %d absorbed %v of wait (mean %v across %d shards)",
				hot, time.Duration(max), time.Duration(mean), len(cur))
		}
		return nil
	}
}

// fsRead locks for a read-only file-system operation touching the given
// paths: shared barrier, shared group (authorization reads member and
// group lists), shared shards.
func (lm *lockManager) fsRead(rs *obs.ReqStats, paths ...fspath.Path) (unlock func()) {
	start := time.Now()
	lm.barrier.RLock()
	lm.group.RLock()
	idx := lm.shardSet(paths...)
	for _, i := range idx {
		lm.lockShard(i, false)
	}
	lm.observeWait(rs, "fs_read", start)
	return func() {
		for j := len(idx) - 1; j >= 0; j-- {
			lm.shards[idx[j]].RUnlock()
		}
		lm.group.RUnlock()
		lm.barrier.RUnlock()
	}
}

// fsWrite locks for a content mutation on the given paths. groupWrite
// additionally takes the group lock exclusively, for operations that may
// create group records while rewriting an ACL (set_p, rFO).
func (lm *lockManager) fsWrite(rs *obs.ReqStats, groupWrite bool, paths ...fspath.Path) (unlock func()) {
	start := time.Now()
	if lm.coupled {
		lm.barrier.Lock()
		lm.observeWait(rs, "fs_write", start)
		return func() { lm.barrier.Unlock() }
	}
	lm.barrier.RLock()
	if groupWrite {
		lm.group.Lock()
	} else {
		lm.group.RLock()
	}
	idx := lm.shardSet(paths...)
	for _, i := range idx {
		lm.lockShard(i, true)
	}
	lm.observeWait(rs, "fs_write", start)
	return func() {
		for j := len(idx) - 1; j >= 0; j-- {
			lm.shards[idx[j]].Unlock()
		}
		if groupWrite {
			lm.group.Unlock()
		} else {
			lm.group.RUnlock()
		}
		lm.barrier.RUnlock()
	}
}

// groupRead locks for a read-only group-store operation (whoami,
// membership listings).
func (lm *lockManager) groupRead(rs *obs.ReqStats) (unlock func()) {
	start := time.Now()
	lm.barrier.RLock()
	lm.group.RLock()
	lm.observeWait(rs, "grp_read", start)
	return func() {
		lm.group.RUnlock()
		lm.barrier.RUnlock()
	}
}

// groupWrite locks for a group-store mutation (add_u, rmv_u, rGO,
// group deletion). Content shards are untouched: these operations only
// rewrite member-list and group-list files.
func (lm *lockManager) groupWrite(rs *obs.ReqStats) (unlock func()) {
	start := time.Now()
	lm.barrier.RLock()
	lm.group.Lock()
	lm.observeWait(rs, "grp_write", start)
	return func() {
		lm.group.Unlock()
		lm.barrier.RUnlock()
	}
}

// wholeTree locks the barrier exclusively: backup restoration, directory
// moves (the subtree's shard set is unbounded), and first-contact user
// provisioning (which may bootstrap the root ACL in the content store).
func (lm *lockManager) wholeTree(rs *obs.ReqStats) (unlock func()) {
	start := time.Now()
	lm.barrier.Lock()
	lm.observeWait(rs, "barrier", start)
	return func() { lm.barrier.Unlock() }
}

// --- server-level lock plans -----------------------------------------

// provisionUser makes sure u's member list and default group exist
// before the caller takes its operation locks, so the operation itself
// only ever *reads* identity relations. First contact is a whole-tree
// event: it writes the group store and, for the FSO, the root ACL in
// the content store.
func (s *Server) provisionUser(rs *obs.ReqStats, users ...acl.UserID) error {
	ac := s.ac.withStats(rs)
	for _, u := range users {
		unlock := s.locks.groupRead(rs)
		_, err := ac.fm.readMemberList(u)
		unlock()
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrNotFound) {
			return err
		}
		unlock = s.locks.wholeTree(rs)
		err = ac.fm.mutate("provision", func() error {
			_, perr := ac.ensureUser(u)
			return perr
		})
		unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// moveLocks returns the unlock for a MOVE: file moves take the ordered
// multi-shard write plan over source and destination; directory moves
// recurse over an unbounded subtree and escalate to the barrier.
func (lm *lockManager) moveLocks(rs *obs.ReqStats, src, dst fspath.Path) (unlock func()) {
	if src.IsDir() || dst.IsDir() {
		return lm.wholeTree(rs)
	}
	return lm.fsWrite(rs, false, src, dst)
}
