package enctls

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"segshare/internal/ca"
	"segshare/internal/enclave"
)

// testPKI builds a CA, a server certificate for 127.0.0.1, and a client
// credential.
type testPKI struct {
	authority  *ca.Authority
	serverCert tls.Certificate
	clientCert tls.Certificate
	pool       *x509.CertPool
}

func newTestPKI(t *testing.T) *testPKI {
	t.Helper()
	authority, err := ca.New("enctls test CA")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := authority.IssueClientCertificate(ca.Identity{UserID: "alice"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clientCert, err := cred.TLSCertificate()
	if err != nil {
		t.Fatal(err)
	}
	return &testPKI{
		authority:  authority,
		serverCert: issueServerCert(t, authority),
		clientCert: clientCert,
		pool:       authority.CertPool(),
	}
}

// issueServerCert provisions a server certificate through the CA's
// attestation flow with an in-test certifier.
func issueServerCert(t *testing.T, authority *ca.Authority) tls.Certificate {
	t.Helper()
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	code := enclave.CodeIdentity{Name: "segshare", Version: 1}
	encl, err := platform.Launch(code)
	if err != nil {
		t.Fatal(err)
	}
	certifier := &testCertifier{enclave: encl}
	err = authority.ProvisionServer(certifier, platform.AttestationPublicKey(), code.Measurement(), []string{"localhost"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(certifier.key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(certifier.installed)
	if err != nil {
		t.Fatal(err)
	}
	parsedKey, err := x509.ParseECPrivateKey(keyDER)
	if err != nil {
		t.Fatal(err)
	}
	return tls.Certificate{
		Certificate: [][]byte{certifier.installed},
		PrivateKey:  parsedKey,
		Leaf:        cert,
	}
}

type testCertifier struct {
	enclave   *enclave.Enclave
	key       *ecdsa.PrivateKey
	installed []byte
}

func (c *testCertifier) CertificationRequest() (*enclave.Quote, []byte, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	c.key = key
	csrDER, err := x509.CreateCertificateRequest(rand.Reader, &x509.CertificateRequest{
		Subject: pkix.Name{CommonName: "segshare-enclave"},
	}, key)
	if err != nil {
		return nil, nil, err
	}
	quote, err := c.enclave.Quote(ca.CSRReportData(csrDER))
	if err != nil {
		return nil, nil, err
	}
	return quote, csrDER, nil
}

func (c *testCertifier) InstallCertificate(certDER []byte) error {
	c.installed = certDER
	return nil
}

// echoFixture runs a line-echo service behind the split TLS stack and
// returns the dial address plus a teardown func.
func echoFixture(t *testing.T, pki *testPKI) string {
	t.Helper()
	bridge := enclave.NewBridge(enclave.BridgeConfig{Workers: 8})
	endpoint := NewTrustedEndpoint(bridge, &tls.Config{
		Certificates: []tls.Certificate{pki.serverCert},
		ClientCAs:    pki.pool,
	})
	tcp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	term := NewUntrustedTerminator(bridge, tcp)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := endpoint.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if _, err := io.WriteString(conn, "echo:"+line); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() {
		term.Close()
		endpoint.Close()
		bridge.Close()
		wg.Wait()
	})
	return term.Addr().String()
}

func clientConfig(pki *testPKI, withCert bool) *tls.Config {
	conf := &tls.Config{
		RootCAs:    pki.pool,
		ServerName: "localhost",
	}
	if withCert {
		conf.Certificates = []tls.Certificate{pki.clientCert}
	}
	return conf
}

func TestEndToEndEcho(t *testing.T) {
	pki := newTestPKI(t)
	addr := echoFixture(t, pki)

	conn, err := tls.Dial("tcp", addr, clientConfig(pki, true))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()

	for i := 0; i < 5; i++ {
		msg := fmt.Sprintf("hello %d\n", i)
		if _, err := io.WriteString(conn, msg); err != nil {
			t.Fatalf("write: %v", err)
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if line != "echo:"+msg {
			t.Fatalf("echo = %q", line)
		}
	}

	// The server presented the enclave certificate signed by the CA.
	state := conn.ConnectionState()
	if len(state.PeerCertificates) == 0 {
		t.Fatal("no server certificate")
	}
	if state.PeerCertificates[0].Subject.CommonName != "segshare-enclave" {
		t.Fatalf("server CN = %q", state.PeerCertificates[0].Subject.CommonName)
	}
}

func TestConcurrentClients(t *testing.T) {
	pki := newTestPKI(t)
	addr := echoFixture(t, pki)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := tls.Dial("tcp", addr, clientConfig(pki, true))
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			msg := fmt.Sprintf("client %d\n", i)
			if _, err := io.WriteString(conn, msg); err != nil {
				errs <- err
				return
			}
			line, err := bufio.NewReader(conn).ReadString('\n')
			if err != nil {
				errs <- err
				return
			}
			if line != "echo:"+msg {
				errs <- fmt.Errorf("client %d echo = %q", i, line)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientWithoutCertificateRejected(t *testing.T) {
	pki := newTestPKI(t)
	addr := echoFixture(t, pki)

	conn, err := tls.Dial("tcp", addr, clientConfig(pki, false))
	if err == nil {
		// TLS 1.3 reports the missing client cert on first use.
		_, err = io.WriteString(conn, "x\n")
		if err == nil {
			_, err = bufio.NewReader(conn).ReadString('\n')
		}
		conn.Close()
	}
	if err == nil {
		t.Fatal("connection without client certificate succeeded")
	}
}

func TestClientFromForeignCARejected(t *testing.T) {
	pki := newTestPKI(t)
	addr := echoFixture(t, pki)

	foreign, err := ca.New("foreign CA")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := foreign.IssueClientCertificate(ca.Identity{UserID: "mallory"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mallCert, err := cred.TLSCertificate()
	if err != nil {
		t.Fatal(err)
	}
	conf := clientConfig(pki, false)
	conf.Certificates = []tls.Certificate{mallCert}

	conn, err := tls.Dial("tcp", addr, conf)
	if err == nil {
		_, err = io.WriteString(conn, "x\n")
		if err == nil {
			_, err = bufio.NewReader(conn).ReadString('\n')
		}
		conn.Close()
	}
	if err == nil {
		t.Fatal("foreign-CA client accepted")
	}
}

func TestServerCertificateRoll(t *testing.T) {
	pki := newTestPKI(t)

	bridge := enclave.NewBridge(enclave.BridgeConfig{Workers: 8})
	endpoint := NewTrustedEndpoint(bridge, &tls.Config{
		Certificates: []tls.Certificate{pki.serverCert},
		ClientCAs:    pki.pool,
	})
	tcp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	term := NewUntrustedTerminator(bridge, tcp)
	defer func() {
		term.Close()
		endpoint.Close()
		bridge.Close()
	}()
	go func() {
		for {
			conn, err := endpoint.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(io.Discard, conn)
				conn.Close()
			}()
		}
	}()

	// Roll to a fresh certificate and verify new connections present it.
	newCert := issueServerCert(t, pki.authority)
	endpoint.SetCertificate(newCert)

	conn, err := tls.Dial("tcp", term.Addr().String(), clientConfig(pki, true))
	if err != nil {
		t.Fatalf("Dial after roll: %v", err)
	}
	defer conn.Close()
	if err := conn.Handshake(); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	got := conn.ConnectionState().PeerCertificates[0].SerialNumber
	want := newCert.Leaf.SerialNumber
	if got.Cmp(want) != 0 {
		t.Fatalf("serial = %v, want %v (rolled cert not in use)", got, want)
	}
}

func TestLargeTransfer(t *testing.T) {
	pki := newTestPKI(t)
	addr := echoFixture(t, pki)

	conn, err := tls.Dial("tcp", addr, clientConfig(pki, true))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One long line exercises buffering and backpressure across the
	// bridge.
	payload := make([]byte, 2<<20)
	for i := range payload {
		payload[i] = 'a' + byte(i%26)
	}
	payload[len(payload)-1] = '\n'

	var (
		readErr error
		got     []byte
		done    = make(chan struct{})
	)
	go func() {
		defer close(done)
		r := bufio.NewReaderSize(conn, 1<<16)
		got, readErr = r.ReadBytes('\n')
	}()
	if _, err := conn.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	<-done
	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	want := append([]byte("echo:"), payload...)
	if len(got) != len(want) {
		t.Fatalf("echoed %d bytes, want %d", len(got), len(want))
	}
}

func TestTrustedConnReadDeadline(t *testing.T) {
	conn := newTrustedConn(1, func(uint64, []byte) error { return nil }, func(uint64) {})

	// An already-expired deadline fails immediately with a timeout.
	if err := conn.SetReadDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	_, err := conn.Read(buf)
	var nerr net.Error
	if !errorsAs(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}

	// A future deadline expires while blocked in Read.
	if err := conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = conn.Read(buf)
	if !errorsAs(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("read returned after %v, before the deadline", elapsed)
	}

	// Clearing the deadline lets delivered data through.
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	go conn.deliver([]byte("data"))
	n, err := conn.Read(buf)
	if err != nil || n != 4 {
		t.Fatalf("Read after deliver: %d %v", n, err)
	}

	// EOF after drain.
	conn.deliverEOF()
	if _, err := conn.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func errorsAs(err error, target *net.Error) bool {
	if err == nil {
		return false
	}
	ne, ok := err.(net.Error)
	if ok {
		*target = ne
	}
	return ok
}
