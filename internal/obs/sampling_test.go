package obs

import (
	"sync"
	"testing"
	"time"
)

// strictPolicy samples nothing on its own: every rule is set so far out
// of reach that only the dimension a test exercises can trip it.
func strictPolicy() *SamplePolicy {
	return &SamplePolicy{
		SlowNs:       time.Hour.Nanoseconds(),
		ErrorStatus:  500,
		ContentionNs: time.Hour.Nanoseconds(),
		KeepOneIn:    0,
	}
}

// TestTailSamplingDimensions verifies each retention rule independently:
// a boring fast request is discarded, while slow, errored, and
// lock-contended requests keep their full span trees.
func TestTailSamplingDimensions(t *testing.T) {
	t.Run("fast 2xx discarded", func(t *testing.T) {
		r := NewTraceRecorder(8)
		r.SetPolicy(strictPolicy())
		tr := r.Start("fs_get")
		tr.SetStatus(200)
		if tr.End() {
			t.Fatal("unremarkable trace was sampled")
		}
		if got := len(r.Recent(8)); got != 0 {
			t.Fatalf("ring holds %d traces, want 0", got)
		}
		if r.Examined() != 1 || r.Sampled() != 0 {
			t.Fatalf("examined/sampled = %d/%d, want 1/0", r.Examined(), r.Sampled())
		}
	})

	t.Run("slow sampled", func(t *testing.T) {
		r := NewTraceRecorder(8)
		p := strictPolicy()
		p.SlowNs = 1 // any measurable duration is "slow"
		r.SetPolicy(p)
		tr := r.Start("fs_get")
		tr.SetStatus(200)
		time.Sleep(time.Microsecond)
		if !tr.End() {
			t.Fatal("slow trace was not sampled")
		}
		if got := len(r.Recent(8)); got != 1 {
			t.Fatalf("ring holds %d traces, want 1", got)
		}
	})

	t.Run("error sampled", func(t *testing.T) {
		r := NewTraceRecorder(8)
		r.SetPolicy(strictPolicy())
		tr := r.Start("fs_put")
		tr.SetStatus(503)
		if !tr.End() {
			t.Fatal("5xx trace was not sampled")
		}
	})

	t.Run("contention sampled", func(t *testing.T) {
		r := NewTraceRecorder(8)
		p := strictPolicy()
		p.ContentionNs = 1000
		r.SetPolicy(p)
		tr := r.Start("fs_move")
		tr.SetStatus(200)
		tr.Annotate(LockWaitAnnotation, 5000)
		if !tr.End() {
			t.Fatal("contended trace was not sampled")
		}
	})

	t.Run("keep one in n floor", func(t *testing.T) {
		r := NewTraceRecorder(16)
		p := strictPolicy()
		p.KeepOneIn = 3
		r.SetPolicy(p)
		var kept int
		for i := 0; i < 9; i++ {
			tr := r.Start("fs_get")
			tr.SetStatus(200)
			if tr.End() {
				kept++
			}
		}
		if kept != 3 {
			t.Fatalf("kept %d of 9 traces, want 3 (one in 3)", kept)
		}
	})

	t.Run("nil policy retains all", func(t *testing.T) {
		r := NewTraceRecorder(8)
		tr := r.Start("fs_get")
		tr.SetStatus(200)
		if !tr.End() {
			t.Fatal("nil policy discarded a trace (v1 behavior is retain-all)")
		}
	})

	t.Run("force sample overrides policy", func(t *testing.T) {
		r := NewTraceRecorder(8)
		r.SetPolicy(strictPolicy())
		tr := r.Start("fs_get")
		tr.SetStatus(200)
		tr.ForceSample()
		if !tr.End() {
			t.Fatal("forced trace was not sampled")
		}
	})
}

// TestSamplingOnEndFeed: the finished-trace observer receives every
// trace with its sampling verdict — the exporter wiring depends on it.
func TestSamplingOnEndFeed(t *testing.T) {
	r := NewTraceRecorder(8)
	p := strictPolicy()
	p.SlowNs = 1
	r.SetPolicy(p)

	var mu sync.Mutex
	verdicts := map[uint64]bool{}
	r.SetOnEnd(func(tr *Trace, sampled bool) {
		mu.Lock()
		verdicts[tr.ID()] = sampled
		mu.Unlock()
	})

	slow := r.Start("fs_get")
	time.Sleep(time.Microsecond)
	slow.SetStatus(200)
	slow.End()

	// Swap in a policy nothing can satisfy for the fast trace.
	r.SetPolicy(strictPolicy())
	fast := r.Start("fs_get")
	fast.SetStatus(200)
	fast.End()

	mu.Lock()
	defer mu.Unlock()
	if len(verdicts) != 2 {
		t.Fatalf("observer saw %d traces, want 2", len(verdicts))
	}
	if !verdicts[slow.ID()] {
		t.Error("observer reported the slow trace unsampled")
	}
	if verdicts[fast.ID()] {
		t.Error("observer reported the fast trace sampled")
	}
}

// TestDefaultSamplePolicy pins the default thresholds the server
// installs when the config leaves SamplePolicy nil.
func TestDefaultSamplePolicy(t *testing.T) {
	p := DefaultSamplePolicy()
	if p.SlowNs != (50 * time.Millisecond).Nanoseconds() {
		t.Errorf("SlowNs = %d", p.SlowNs)
	}
	if p.ErrorStatus != 500 {
		t.Errorf("ErrorStatus = %d", p.ErrorStatus)
	}
	if p.ContentionNs != (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("ContentionNs = %d", p.ContentionNs)
	}
	if p.KeepOneIn != 100 {
		t.Errorf("KeepOneIn = %d", p.KeepOneIn)
	}
}

// TestKeepOneInFloorConcurrent drives the 1-in-N floor from many
// goroutines under the race detector: examined counts are atomic, so
// exactly one in every KeepOneIn finished traces must be retained — no
// double-counting, no lost floor samples.
func TestKeepOneInFloorConcurrent(t *testing.T) {
	const (
		workers = 8
		each    = 250
		n       = 10
	)
	r := NewTraceRecorder(workers * each)
	p := strictPolicy()
	p.KeepOneIn = n
	r.SetPolicy(p)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr := r.Start("fs_get")
				tr.SetStatus(200)
				tr.End()
			}
		}()
	}
	wg.Wait()

	total := uint64(workers * each)
	if r.Examined() != total {
		t.Fatalf("examined = %d, want %d", r.Examined(), total)
	}
	if want := total / n; r.Sampled() != want {
		t.Fatalf("sampled = %d, want exactly the %d floor keeps", r.Sampled(), want)
	}
}

// TestForceSampleOpConcurrent arms force-sampling while traces start and
// end concurrently: the credit counter is atomic, so exactly the armed
// number of subsequent starts must be retained under a keep-nothing
// policy.
func TestForceSampleOpConcurrent(t *testing.T) {
	const (
		workers = 4
		each    = 100
		armed   = 50
	)
	r := NewTraceRecorder(workers * each)
	r.SetPolicy(strictPolicy())

	// An in-flight trace of the class is forced immediately and reported
	// as the oldest.
	live := r.Start("fs_get")
	inFlight, oldestID := r.ForceSampleOp("fs_get", armed)
	if inFlight != 1 || oldestID != live.ID() {
		t.Fatalf("ForceSampleOp = (%d, %d), want (1, %d)", inFlight, oldestID, live.ID())
	}
	live.SetStatus(200)
	if !live.End() {
		t.Fatal("in-flight trace was not force-sampled")
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr := r.Start("fs_get")
				tr.SetStatus(200)
				tr.End()
			}
		}()
	}
	wg.Wait()

	// The live trace plus exactly the armed credits, no matter how the
	// workers interleaved.
	if got := r.Sampled(); got != armed+1 {
		t.Fatalf("sampled = %d, want %d", got, armed+1)
	}

	// Other op classes are unaffected by the arming.
	other := r.Start("fs_put")
	other.SetStatus(200)
	if other.End() {
		t.Fatal("arming fs_get force-sampled an fs_put trace")
	}
}
