package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPseudonymizer(t *testing.T) {
	p, err := NewPseudonymizer()
	if err != nil {
		t.Fatal(err)
	}
	a := p.Pseudonym("group:finance-team")
	if len(a) != PseudonymLen {
		t.Fatalf("pseudonym length = %d, want %d", len(a), PseudonymLen)
	}
	for _, r := range a {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			t.Fatalf("pseudonym %q is not lowercase hex", a)
		}
	}
	if strings.Contains(a, "finance") {
		t.Fatalf("pseudonym %q leaks its input", a)
	}
	// Stable within one key: the operator can follow one tenant across
	// snapshots.
	if b := p.Pseudonym("group:finance-team"); b != a {
		t.Errorf("pseudonym not stable: %q vs %q", a, b)
	}
	if c := p.Pseudonym("group:eng"); c == a {
		t.Error("distinct ids collided")
	}
	// Unlinkable across keys (restarts).
	p2, err := NewPseudonymizer()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Pseudonym("group:finance-team") == a {
		t.Error("pseudonym survived a key change")
	}
}

func TestTopKExactUnderBound(t *testing.T) {
	p, _ := NewPseudonymizer()
	ids := []string{p.Pseudonym("a"), p.Pseudonym("b"), p.Pseudonym("c")}
	tk := NewTopK(8)
	tk.Offer(ids[0], 5, 500)
	tk.Offer(ids[1], 3, 300)
	tk.Offer(ids[0], 2, 200)
	tk.Offer(ids[2], 1, 100)

	st := tk.Snapshot()
	if err := VerifyHotStatus(st); err != nil {
		t.Fatalf("VerifyHotStatus: %v", err)
	}
	if st.K != 8 || len(st.Entries) != 3 {
		t.Fatalf("k=%d entries=%d, want 8/3", st.K, len(st.Entries))
	}
	// Busiest first; counts are bucket bounds covering the raw values.
	if st.Entries[0].ID != ids[0] {
		t.Fatalf("entries[0] = %q, want the busiest id", st.Entries[0].ID)
	}
	if st.Entries[0].RequestsLe < 7 || !IsBucketBound(st.Entries[0].RequestsLe) {
		t.Errorf("RequestsLe = %d, want bucket bound >= 7", st.Entries[0].RequestsLe)
	}
	if st.Entries[0].BytesLe < 700 || !IsBucketBound(st.Entries[0].BytesLe) {
		t.Errorf("BytesLe = %d, want bucket bound >= 700", st.Entries[0].BytesLe)
	}
	if st.Entries[0].OverEstLe != 0 {
		t.Errorf("OverEstLe = %d for a never-evicted slot", st.Entries[0].OverEstLe)
	}
	if st.EvictedLe != 0 {
		t.Errorf("EvictedLe = %d with no evictions", st.EvictedLe)
	}
}

func TestTopKEvictionInheritsCount(t *testing.T) {
	p, _ := NewPseudonymizer()
	a, b, c := p.Pseudonym("a"), p.Pseudonym("b"), p.Pseudonym("c")
	tk := NewTopK(2)
	tk.Offer(a, 5, 50)
	tk.Offer(b, 3, 30)
	// c displaces the minimum (b at 3) and inherits its count as the
	// space-saving overestimate.
	tk.Offer(c, 1, 10)

	st := tk.Snapshot()
	if err := VerifyHotStatus(st); err != nil {
		t.Fatalf("VerifyHotStatus: %v", err)
	}
	if len(st.Entries) != 2 {
		t.Fatalf("entries = %d, want bound 2 held", len(st.Entries))
	}
	var got *HotEntry
	for i := range st.Entries {
		if st.Entries[i].ID == c {
			got = &st.Entries[i]
		}
		if st.Entries[i].ID == b {
			t.Error("evicted id still present")
		}
	}
	if got == nil {
		t.Fatal("newly offered id missing")
	}
	if got.RequestsLe < 4 { // inherited 3 + its own 1
		t.Errorf("RequestsLe = %d, want >= 4 (inherited count)", got.RequestsLe)
	}
	if got.OverEstLe < 3 || !IsBucketBound(got.OverEstLe) {
		t.Errorf("OverEstLe = %d, want bucket bound >= 3", got.OverEstLe)
	}
	if st.EvictedLe < 1 {
		t.Errorf("EvictedLe = %d, want >= 1", st.EvictedLe)
	}
}

func TestTopKBoundHolds(t *testing.T) {
	p, _ := NewPseudonymizer()
	tk := NewTopK(4)
	for i := 0; i < 100; i++ {
		tk.Offer(p.Pseudonym(string(rune('a'+i%26))+string(rune('0'+i/26))), 1, 1)
	}
	if st := tk.Snapshot(); len(st.Entries) > 4 {
		t.Fatalf("entries = %d, bound 4 violated", len(st.Entries))
	}
}

func TestTopKNilAndEmptySafe(t *testing.T) {
	var tk *TopK
	tk.Offer("abc", 1, 1) // must not panic
	st := tk.Snapshot()
	if st.Entries == nil || len(st.Entries) != 0 {
		t.Fatalf("nil sketch Snapshot.Entries = %#v, want empty non-nil", st.Entries)
	}
	live := NewTopK(4)
	live.Offer("", 1, 1) // empty keys (unattributed) are ignored
	if st := live.Snapshot(); len(st.Entries) != 0 {
		t.Fatalf("empty key created a slot: %+v", st.Entries)
	}
}

func TestTopKHandler(t *testing.T) {
	p, _ := NewPseudonymizer()
	tk := NewTopK(4)
	tk.Offer(p.Pseudonym("group:eng"), 9, 900)

	rec := httptest.NewRecorder()
	tk.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hot", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var st HotStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("handler body: %v", err)
	}
	if len(st.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(st.Entries))
	}
	if err := VerifyHotStatus(st); err != nil {
		t.Fatalf("VerifyHotStatus over the wire: %v", err)
	}
	if strings.Contains(rec.Body.String(), "eng") {
		t.Error("handler body leaks the raw group id")
	}
}

func TestVerifyHotStatusRejectsRawIdentity(t *testing.T) {
	bad := HotStatus{Entries: []HotEntry{{ID: "finance-team!", RequestsLe: 1, BytesLe: 1}}}
	if err := VerifyHotStatus(bad); err == nil {
		t.Error("identity-shaped id passed verification")
	}
	raw := HotStatus{Entries: []HotEntry{{ID: "0123456789ab", RequestsLe: 17, BytesLe: 1}}}
	if err := VerifyHotStatus(raw); err == nil {
		t.Error("raw count passed verification")
	}
}
