// Package store provides SeGShare's untrusted storage: the raw byte
// stores the untrusted file manager writes encrypted objects into (paper
// §IV-B). SeGShare keeps three separate stores — content store, group
// store, and deduplication store — each of which is one Backend instance
// here.
//
// Because this layer is *untrusted* in the threat model, the package also
// ships adversarial wrappers used by tests and the security evaluation: a
// tampering/rollback adversary and a fault injector.
package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Store errors.
var (
	// ErrNotExist is returned when the named object is absent.
	ErrNotExist = errors.New("store: object does not exist")
	// ErrExist is returned by Rename when the target name exists.
	ErrExist = errors.New("store: object already exists")
)

// Backend is untrusted flat object storage keyed by opaque names. All
// values crossing this interface are ciphertext (or adversary-visible by
// design); implementations are free to inspect or mangle them — the
// trusted side must detect it.
//
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put creates or replaces the named object.
	Put(name string, data []byte) error
	// Get returns the named object's content. The returned slice is owned
	// by the caller.
	Get(name string) ([]byte, error)
	// Delete removes the named object. Deleting an absent object returns
	// ErrNotExist.
	Delete(name string) error
	// Rename atomically renames an object. It returns ErrNotExist if
	// oldName is absent and ErrExist if newName is present — except when
	// both names hold identical payloads, which is a crash- or
	// retry-interrupted rename that every implementation must complete
	// idempotently (remove oldName, report success). The conformance
	// suite pins this table for all backends.
	Rename(oldName, newName string) error
	// Exists reports whether the named object is present.
	Exists(name string) (bool, error)
	// List returns all object names in lexicographic order.
	List() ([]string, error)
	// TotalBytes returns the total stored payload size. The storage-
	// overhead experiment (paper §VII-B) reads it.
	TotalBytes() (int64, error)
}

// ContextGetter is implemented by backends whose Get can stop waiting
// when the caller's context ends (Resilient, and wrappers that forward
// it). GetContext with a nil context behaves exactly like Get. Callers
// type-assert: plain backends without the method are simply read
// uninterruptibly.
type ContextGetter interface {
	GetContext(ctx context.Context, name string) ([]byte, error)
}

// Unwrapper is implemented by every Backend wrapper (Instrumented,
// Faulty, Adversary), exposing the wrapped backend so that wrappers
// compose in any order and capability probes (like the Adversary's
// whole-store snapshot, which needs the underlying Memory store) can walk
// the chain.
type Unwrapper interface {
	Unwrap() Backend
}

// Innermost walks the Unwrap chain to the underlying non-wrapper Backend.
func Innermost(b Backend) Backend {
	for {
		u, ok := b.(Unwrapper)
		if !ok {
			return b
		}
		b = u.Unwrap()
	}
}

// Memory is an in-memory Backend.
type Memory struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

var _ Backend = (*Memory)(nil)

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{objects: make(map[string][]byte)}
}

// Put implements Backend.
func (m *Memory) Put(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[name] = cp
	return nil
}

// Get implements Backend.
func (m *Memory) Get(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Delete implements Backend.
func (m *Memory) Delete(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objects[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	delete(m.objects, name)
	return nil
}

// Rename implements Backend with the same collision semantics as Disk
// (the reference implementation): the target name is checked first, and
// a collision where both names hold identical payloads is an
// interrupted rename that is completed idempotently — journal
// roll-forward replays the same Rename and must succeed on every
// backend.
func (m *Memory) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.objects[oldName]
	if existing, collides := m.objects[newName]; collides {
		if ok && bytes.Equal(data, existing) {
			delete(m.objects, oldName)
			return nil
		}
		return fmt.Errorf("%w: %q", ErrExist, newName)
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, oldName)
	}
	m.objects[newName] = data
	delete(m.objects, oldName)
	return nil
}

// Exists implements Backend.
func (m *Memory) Exists(name string) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.objects[name]
	return ok, nil
}

// List implements Backend.
func (m *Memory) List() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.objects))
	for name := range m.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// TotalBytes implements Backend.
func (m *Memory) TotalBytes() (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, data := range m.objects {
		total += int64(len(data))
	}
	return total, nil
}

// snapshot returns a deep copy of the current object map. Used by the
// adversary wrapper to mount whole-store rollback attacks.
func (m *Memory) snapshot() map[string][]byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cp := make(map[string][]byte, len(m.objects))
	for name, data := range m.objects {
		d := make([]byte, len(data))
		copy(d, data)
		cp[name] = d
	}
	return cp
}

// restore replaces the object map with the given snapshot.
func (m *Memory) restore(snap map[string][]byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects = make(map[string][]byte, len(snap))
	for name, data := range snap {
		d := make([]byte, len(data))
		copy(d, data)
		m.objects[name] = d
	}
}
