package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchdogStallSnapshotRecover drives the full detection loop: a
// synthetic stall trips the check on the next sweep, a goroutine+mutex
// profile snapshot is captured, the trigger hook fires, /debug/watchdog
// reports the stall — and when the condition clears, the check recovers
// and the counters record both transitions.
func TestWatchdogStallSnapshotRecover(t *testing.T) {
	reg := NewRegistry()
	var stalled atomic.Bool
	var triggered []string
	var mu sync.Mutex
	wd := NewWatchdog(WatchdogOptions{
		Interval: time.Hour, // sweeps driven manually
		Obs:      reg,
		OnTrigger: func(check string) {
			mu.Lock()
			triggered = append(triggered, check)
			mu.Unlock()
		},
	})
	if err := wd.AddCheck("request_deadline", func() error {
		if stalled.Load() {
			return errInjectedStall
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	wd.Sweep()
	if got := wd.Stalled(); len(got) != 0 {
		t.Fatalf("healthy watchdog reports stalls: %v", got)
	}

	stalled.Store(true)
	wd.Sweep()
	if got := wd.Stalled(); len(got) != 1 || got[0] != "request_deadline" {
		t.Fatalf("Stalled() = %v, want [request_deadline]", got)
	}
	snaps := wd.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	if snaps[0].Check != "request_deadline" {
		t.Errorf("snapshot check = %q", snaps[0].Check)
	}
	if !strings.Contains(snaps[0].Goroutine, "goroutine") {
		t.Error("snapshot is missing the goroutine profile")
	}
	mu.Lock()
	if len(triggered) != 1 || triggered[0] != "request_deadline" {
		t.Errorf("OnTrigger calls = %v", triggered)
	}
	mu.Unlock()

	// A still-stalled check must not re-trigger or re-capture.
	wd.Sweep()
	if got := len(wd.Snapshots()); got != 1 {
		t.Fatalf("re-sweep of a stalled check captured again: %d snapshots", got)
	}

	rec := httptest.NewRecorder()
	wd.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/watchdog", nil))
	var status struct {
		Stalled   []string           `json:"stalled"`
		Snapshots []WatchdogSnapshot `json:"snapshots"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatalf("/debug/watchdog body: %v", err)
	}
	if len(status.Stalled) != 1 || status.Stalled[0] != "request_deadline" {
		t.Errorf("/debug/watchdog stalled = %v", status.Stalled)
	}
	if len(status.Snapshots) != 1 {
		t.Errorf("/debug/watchdog snapshots = %d, want 1", len(status.Snapshots))
	}

	stalled.Store(false)
	wd.Sweep()
	if got := wd.Stalled(); len(got) != 0 {
		t.Fatalf("recovered check still reported: %v", got)
	}

	counters := map[string]uint64{}
	for _, m := range reg.Snapshot() {
		counters[m.Name] = uint64(m.Value)
	}
	if counters["segshare_watchdog_triggers_total"] != 1 {
		t.Errorf("triggers counter = %d, want 1", counters["segshare_watchdog_triggers_total"])
	}
	if counters["segshare_watchdog_recoveries_total"] != 1 {
		t.Errorf("recoveries counter = %d, want 1", counters["segshare_watchdog_recoveries_total"])
	}
	if counters["segshare_watchdog_stalled_checks"] != 0 {
		t.Errorf("stalled gauge = %d, want 0", counters["segshare_watchdog_stalled_checks"])
	}
}

// TestWatchdogStress exercises the watchdog under -race: the background
// sweeper runs at a tight interval while probes flip between healthy and
// stalled and readers poll every exported surface concurrently. Tier-1
// runs this package with the race detector, so any unsynchronized access
// in the sweep/capture/read paths fails here.
func TestWatchdogStress(t *testing.T) {
	reg := NewRegistry()
	var stalls [4]atomic.Bool
	wd := NewWatchdog(WatchdogOptions{Interval: time.Millisecond, MaxSnapshots: 4, Obs: reg, OnTrigger: func(string) {}})
	names := []string{"request_deadline", "audit_backlog", "journal_recovery", "lock_shard_skew"}
	for i, name := range names {
		i := i
		if err := wd.AddCheck(name, func() error {
			if stalls[i].Load() {
				return errInjectedStall
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	wd.Start()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := range stalls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					stalls[i].Store(!stalls[i].Load())
					wd.Sweep()
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = wd.Stalled()
				_ = wd.Snapshots()
				rec := httptest.NewRecorder()
				wd.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/watchdog", nil))
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	wd.Stop()

	if snaps := wd.Snapshots(); len(snaps) > 4 {
		t.Errorf("snapshot ring exceeded its bound: %d", len(snaps))
	}
}

// TestWatchdogRejectsLeakyCheckName: check names surface on the admin
// listener, so they pass the same denylist as metric names.
func TestWatchdogRejectsLeakyCheckName(t *testing.T) {
	wd := NewWatchdog(WatchdogOptions{})
	if err := wd.AddCheck("user_request_stall", func() error { return nil }); err == nil {
		t.Fatal("identity-bearing check name accepted")
	}
}

// TestStartUptime: the gauge registers and the stop function is
// idempotent.
func TestStartUptime(t *testing.T) {
	reg := NewRegistry()
	stop := StartUptime(reg)
	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "segshare_uptime_seconds" {
			found = true
		}
	}
	if !found {
		t.Fatal("segshare_uptime_seconds not registered")
	}
	stop()
	stop()
}

var errInjectedStall = &injectedStall{}

type injectedStall struct{}

func (*injectedStall) Error() string { return "injected stall" }
