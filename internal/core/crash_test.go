package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"segshare/internal/acl"
	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/fspath"
	"segshare/internal/journal"
	"segshare/internal/rollback"
	"segshare/internal/store"
)

// This file is the crash-consistency harness for the intent journal. Each
// logical mutation is dry-run once to count its backend mutations, then
// replayed once per failure point, both as a transient fault and as a
// simulated process kill. After every schedule the "process" restarts —
// the file manager is rebuilt over the surviving store state with the
// same enclave platform — and the recovered store must pass the full
// fsck walk plus a dedup refcount audit.

var errInjected = errors.New("injected crash fault")

type crashFixture struct {
	t        *testing.T
	plan     *store.FaultPlan
	content  store.Backend
	group    store.Backend
	dedupB   store.Backend
	platform *enclave.Platform
	rootKey  []byte
	opts     fmOptions
	journal  bool

	fm *fileManager
	ac *accessControl
}

func newCrashFixture(t *testing.T, opts fmOptions, withJournal bool) *crashFixture {
	t.Helper()
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plan := store.NewFaultPlan()
	fx := &crashFixture{
		t:        t,
		plan:     plan,
		content:  store.NewFaultyWithPlan(store.NewMemory(), plan),
		group:    store.NewFaultyWithPlan(store.NewMemory(), plan),
		dedupB:   store.NewFaultyWithPlan(store.NewMemory(), plan),
		platform: platform,
		rootKey:  append([]byte(nil), testRootKey...),
		opts:     opts,
		journal:  withJournal,
	}
	if err := fx.boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	return fx
}

var testRootKey = []byte("crash-harness-root-key-32-bytes!")

// boot launches a fresh enclave over the surviving stores and rebuilds
// the file manager, which runs the journal recovery pass. Relaunching on
// the same platform resumes the monotonic counters, exactly like an
// enclave restart on one machine.
func (fx *crashFixture) boot() error {
	encl, err := fx.platform.Launch(enclave.CodeIdentity{Name: "segshare", Version: 1})
	if err != nil {
		return err
	}
	var contentGuard, groupGuard rollback.RootGuard
	switch fx.opts.guard {
	case GuardProtectedMemory:
		contentGuard = rollback.NewProtectedMemoryGuard(encl, "content-root")
		groupGuard = rollback.NewProtectedMemoryGuard(encl, "group-root")
	case GuardCounter:
		contentGuard = rollback.NewCounterGuard(encl, "content-root")
		groupGuard = rollback.NewCounterGuard(encl, "group-root")
	}
	var jl *journal.Journal
	if fx.journal {
		keys, err := journal.DeriveKeys(fx.rootKey)
		if err != nil {
			return err
		}
		jl, err = journal.Open(fx.group, keys, encl.Counter("journal"), journal.Options{})
		if err != nil {
			return err
		}
	}
	fm, err := newFileManager(fmConfig{
		rootKey:      fx.rootKey,
		contentStore: fx.content,
		groupStore:   fx.group,
		dedupStore:   fx.dedupB,
		hidePaths:    fx.opts.hidePaths,
		rollbackOn:   fx.opts.rollback,
		dedupEnabled: fx.opts.dedup,
		contentGuard: contentGuard,
		groupGuard:   groupGuard,
		journal:      jl,
	})
	if err != nil {
		return err
	}
	fx.fm = fm
	fx.ac = &accessControl{fm: fm}
	return nil
}

// restart simulates reviving the process after a crash: faults stop
// firing and a fresh file manager recovers over the surviving state.
func (fx *crashFixture) restart() error {
	fx.plan.Revive()
	return fx.boot()
}

func (fx *crashFixture) path(s string) fspath.Path {
	return mustPath(fx.t, s)
}

var (
	crashContentA = []byte("shared content A, deduplicated")
	crashContentC = []byte("unique content C")
)

// seedCorpus builds a small world touching every relation kind: nested
// directories, deduplicated files, a named group with members, and an
// explicit permission grant.
func seedCorpus(t *testing.T, fx *crashFixture) {
	t.Helper()
	steps := []struct {
		name string
		run  func() error
	}{
		{"mkdir /docs/", func() error { return fx.ac.PutDir("alice", fx.path("/docs/")) }},
		{"put /docs/a.txt", func() error { _, err := fx.ac.PutFile("alice", fx.path("/docs/a.txt"), crashContentA); return err }},
		{"put /docs/b.txt", func() error { _, err := fx.ac.PutFile("alice", fx.path("/docs/b.txt"), crashContentA); return err }},
		{"mkdir /docs/sub/", func() error { return fx.ac.PutDir("alice", fx.path("/docs/sub/")) }},
		{"put /docs/sub/c.txt", func() error { _, err := fx.ac.PutFile("alice", fx.path("/docs/sub/c.txt"), crashContentC); return err }},
		{"mkdir /docs/empty/", func() error { return fx.ac.PutDir("alice", fx.path("/docs/empty/")) }},
		{"add bob to team", func() error { return fx.ac.AddUser("alice", "bob", "team") }},
		{"grant team read", func() error { return fx.ac.SetPermission("alice", fx.path("/docs/a.txt"), "team", acl.PermRead) }},
	}
	for _, s := range steps {
		if err := s.run(); err != nil {
			t.Fatalf("seed %s: %v", s.name, err)
		}
	}
}

// collectDedupRefs walks the content tree and counts live references to
// each dedup object.
func (fx *crashFixture) collectDedupRefs() (map[string]int, error) {
	refs := make(map[string]int)
	var walk func(name string) error
	walk = func(name string) error {
		_, body, err := fx.fm.getBlob(fx.fm.content, name)
		if err != nil {
			return err
		}
		if fx.fm.content.isInner(name) {
			db, err := decodeDirBody(body)
			if err != nil {
				return err
			}
			for _, child := range fx.fm.treeChildren(fx.fm.content, name, db) {
				if err := walk(child); err != nil {
					return err
				}
			}
			return nil
		}
		if len(name) > 4 && name[len(name)-4:] == ".acl" {
			return nil
		}
		_, hName, err := decodeContentBody(body)
		if err != nil {
			return err
		}
		if hName != "" {
			refs[hName]++
		}
		return nil
	}
	if err := walk(fx.fm.content.rootName); err != nil {
		return nil, err
	}
	return refs, nil
}

// auditDedupRefcounts asserts the dedup invariant that crash windows may
// only leak upward: for every live reference the stored refcount must be
// at least the number of leaves pointing at the object.
func auditDedupRefcounts(t *testing.T, fx *crashFixture) {
	t.Helper()
	if fx.fm.dedup == nil {
		return
	}
	refs, err := fx.collectDedupRefs()
	if err != nil {
		t.Fatalf("collect dedup refs: %v", err)
	}
	for hName, live := range refs {
		stored, err := fx.fm.dedup.RefCount(hName)
		if err != nil {
			t.Fatalf("RefCount(%s): %v", hName, err)
		}
		if int(stored) < live {
			t.Fatalf("dedup refcount underflow: %s stored %d < live %d", hName, stored, live)
		}
	}
}

type crashScenario struct {
	name string
	run  func(fx *crashFixture) error
	// check asserts the scenario's atomicity postcondition after a
	// recovered restart: the operation either fully happened or did not
	// happen at all.
	check func(t *testing.T, fx *crashFixture)
}

func fileState(t *testing.T, fx *crashFixture, path string) (exists bool, content []byte) {
	t.Helper()
	data, err := fx.ac.GetFile("alice", fx.path(path))
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		t.Fatalf("GetFile %s: %v", path, err)
	}
	return true, data
}

func crashScenarios() []crashScenario {
	return []crashScenario{
		{
			name: "mkcol",
			run:  func(fx *crashFixture) error { return fx.ac.PutDir("alice", fx.path("/docs/new/")) },
		},
		{
			name: "put-create",
			run: func(fx *crashFixture) error {
				_, err := fx.ac.PutFile("alice", fx.path("/docs/new.txt"), []byte("fresh"))
				return err
			},
			check: func(t *testing.T, fx *crashFixture) {
				if ok, data := fileState(t, fx, "/docs/new.txt"); ok && string(data) != "fresh" {
					t.Fatalf("partial create: %q", data)
				}
			},
		},
		{
			name: "put-update",
			run: func(fx *crashFixture) error {
				_, err := fx.ac.PutFile("alice", fx.path("/docs/a.txt"), []byte("updated"))
				return err
			},
			check: func(t *testing.T, fx *crashFixture) {
				ok, data := fileState(t, fx, "/docs/a.txt")
				if !ok {
					t.Fatal("update lost the file")
				}
				if string(data) != "updated" && string(data) != string(crashContentA) {
					t.Fatalf("torn update: %q", data)
				}
			},
		},
		{
			name: "put-dedup-duplicate",
			run: func(fx *crashFixture) error {
				_, err := fx.ac.PutFile("alice", fx.path("/docs/dup.txt"), crashContentA)
				return err
			},
		},
		{
			name: "delete-file",
			run:  func(fx *crashFixture) error { return fx.ac.Remove("alice", fx.path("/docs/a.txt")) },
		},
		{
			name: "delete-dir",
			run:  func(fx *crashFixture) error { return fx.ac.Remove("alice", fx.path("/docs/empty/")) },
		},
		{
			name: "move-file",
			run: func(fx *crashFixture) error {
				return fx.ac.Move("alice", fx.path("/docs/a.txt"), fx.path("/docs/moved.txt"))
			},
			check: func(t *testing.T, fx *crashFixture) {
				srcOK, _ := fileState(t, fx, "/docs/a.txt")
				dstOK, _ := fileState(t, fx, "/docs/moved.txt")
				if srcOK == dstOK {
					t.Fatalf("move atomicity: src=%v dst=%v", srcOK, dstOK)
				}
			},
		},
		{
			name: "move-dir",
			run: func(fx *crashFixture) error {
				return fx.ac.Move("alice", fx.path("/docs/sub/"), fx.path("/docs/sub2/"))
			},
		},
		{
			name: "set-permission",
			run: func(fx *crashFixture) error {
				return fx.ac.SetPermission("alice", fx.path("/docs/a.txt"), "team", acl.PermReadWrite)
			},
		},
		{
			name: "add-user",
			run:  func(fx *crashFixture) error { return fx.ac.AddUser("alice", "carol", "team") },
		},
		{
			name: "remove-user",
			run:  func(fx *crashFixture) error { return fx.ac.RemoveUser("alice", "bob", "team") },
		},
		{
			name: "delete-group",
			run:  func(fx *crashFixture) error { return fx.ac.DeleteGroup("alice", "team") },
		},
	}
}

// TestCrashRecoveryMatrix is the tentpole acceptance test: every mutation
// type, crashed at every backend mutation it performs, both transiently
// and with a kill-until-restart, must recover to a store that passes the
// full fsck and the dedup refcount audit.
func TestCrashRecoveryMatrix(t *testing.T) {
	opts := fmOptions{rollback: true, guard: GuardCounter, dedup: true, hidePaths: true}
	for _, sc := range crashScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Dry run to learn the schedule length.
			dry := newCrashFixture(t, opts, true)
			seedCorpus(t, dry)
			before := dry.plan.Ops()
			if err := sc.run(dry); err != nil {
				t.Fatalf("dry run: %v", err)
			}
			mutations := dry.plan.Ops() - before
			if mutations == 0 {
				t.Fatal("scenario performs no backend mutations")
			}
			for k := 1; k <= mutations; k++ {
				for _, kill := range []bool{false, true} {
					label := fmt.Sprintf("op%d/kill=%v", k, kill)
					fx := newCrashFixture(t, opts, true)
					seedCorpus(t, fx)
					if kill {
						fx.plan.KillAtOp(k, errInjected)
					} else {
						fx.plan.FailAtOp(k, errInjected)
					}
					opErr := sc.run(fx)
					if err := fx.restart(); err != nil {
						t.Fatalf("%s: recovery restart failed (op err %v): %v", label, opErr, err)
					}
					if err := fx.fm.validateAll(); err != nil {
						t.Fatalf("%s: fsck after recovery (op err %v): %v", label, opErr, err)
					}
					auditDedupRefcounts(t, fx)
					if sc.check != nil {
						sc.check(t, fx)
					}
				}
			}
		})
	}
}

// TestCrashRecoveryAcrossFeatureCombos spot-checks the sweep's most
// write-heavy scenario under the remaining feature combinations.
func TestCrashRecoveryAcrossFeatureCombos(t *testing.T) {
	sc := crashScenarios()[2] // put-update
	for name, opts := range allOptionCombos() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			dry := newCrashFixture(t, opts, true)
			seedCorpus(t, dry)
			before := dry.plan.Ops()
			if err := sc.run(dry); err != nil {
				t.Fatalf("dry run: %v", err)
			}
			mutations := dry.plan.Ops() - before
			for k := 1; k <= mutations; k++ {
				fx := newCrashFixture(t, opts, true)
				seedCorpus(t, fx)
				fx.plan.KillAtOp(k, errInjected)
				opErr := sc.run(fx)
				if err := fx.restart(); err != nil {
					t.Fatalf("op%d: restart (op err %v): %v", k, opErr, err)
				}
				if err := fx.fm.validateAll(); err != nil {
					t.Fatalf("op%d: fsck (op err %v): %v", k, opErr, err)
				}
				auditDedupRefcounts(t, fx)
			}
		})
	}
}

// TestCrashWithoutJournalCorrupts demonstrates the defect the journal
// fixes: with the journal disabled, at least one kill schedule leaves the
// store in a state that fails recovery or the fsck walk.
func TestCrashWithoutJournalCorrupts(t *testing.T) {
	opts := fmOptions{rollback: true, guard: GuardCounter, dedup: true, hidePaths: true}
	sc := crashScenarios()[2] // put-update

	dry := newCrashFixture(t, opts, false)
	seedCorpus(t, dry)
	before := dry.plan.Ops()
	if err := sc.run(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	mutations := dry.plan.Ops() - before

	corrupted := 0
	for k := 1; k <= mutations; k++ {
		fx := newCrashFixture(t, opts, false)
		seedCorpus(t, fx)
		fx.plan.KillAtOp(k, errInjected)
		_ = sc.run(fx)
		if err := fx.restart(); err != nil {
			corrupted++
			continue
		}
		if err := fx.fm.validateAll(); err != nil {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatalf("expected at least one of %d kill schedules to corrupt the journal-less store", mutations)
	}
	t.Logf("journal-less store corrupted by %d/%d kill schedules", corrupted, mutations)
}

// TestCrashRecoveryStress hammers a full Server (journal on) with
// concurrent sessions while transient faults fire, then revives the
// store and requires a clean fsck. Run with -race in tier 1.
func TestCrashRecoveryStress(t *testing.T) {
	authority, err := ca.New("stress CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plan := store.NewFaultPlan()
	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewFaultyWithPlan(store.NewMemory(), plan),
		GroupStore:   store.NewFaultyWithPlan(store.NewMemory(), plan),
		DedupStore:   store.NewFaultyWithPlan(store.NewMemory(), plan),
		Features:     Features{Dedup: true, RollbackProtection: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	users := []string{"alice", "bob", "carol"}
	var wg sync.WaitGroup
	for i, u := range users {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			s := server.Direct(u)
			dir := fmt.Sprintf("/u%d/", i)
			if err := s.Mkdir(dir); err != nil {
				return
			}
			for n := 0; n < 25; n++ {
				// Every op may hit an injected fault; errors are the point.
				_ = s.Upload(fmt.Sprintf("%sf%d", dir, n), []byte(fmt.Sprintf("content %d from %s", n, u)))
				_, _ = s.Download(fmt.Sprintf("%sf%d", dir, n))
				if n%5 == 0 {
					_ = s.Move(fmt.Sprintf("%sf%d", dir, n), fmt.Sprintf("%smoved%d", dir, n))
				}
				if n%7 == 0 {
					_ = s.Remove(fmt.Sprintf("%sf%d", dir, n))
				}
			}
		}(i, u)
	}
	// Fire transient faults while the workers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 40; n++ {
			plan.FailAtOp(3, errInjected)
		}
		plan.Revive()
	}()
	wg.Wait()
	plan.Revive()

	// One clean mutation drains any pending intent, then the store must
	// pass a full fsck.
	if err := server.Direct("alice").Mkdir("/final/"); err != nil {
		t.Fatalf("post-revive mutation: %v", err)
	}
	if err := server.Fsck(); err != nil {
		t.Fatalf("Fsck after stress: %v", err)
	}
}
