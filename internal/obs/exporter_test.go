package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func testEvent(op string, traceID uint64) WideEvent {
	return NewWideEvent(op, "2xx", traceID, false, time.Millisecond, 100, 200, nil)
}

// TestExporterDeliversBothKinds: wide events and trace snapshots ride
// the same queue and arrive typed at the sink, fully drained by Close.
func TestExporterDeliversBothKinds(t *testing.T) {
	sink := NewMemorySink()
	e := NewExporter(sink, ExporterOptions{})
	if !e.EnqueueEvent(testEvent("fs_get", 1)) {
		t.Fatal("EnqueueEvent rejected with an empty queue")
	}
	if !e.EnqueueTrace(TraceSnapshot{ID: 1, Op: "fs_get"}) {
		t.Fatal("EnqueueTrace rejected with an empty queue")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	recs := sink.Records()
	if len(recs) != 2 {
		t.Fatalf("sink got %d records, want 2", len(recs))
	}
	kinds := map[string]bool{}
	for _, r := range recs {
		kinds[r.Kind] = true
		switch r.Kind {
		case "wide_event":
			if r.Event == nil || r.Event.Op != "fs_get" {
				t.Errorf("wide_event record malformed: %+v", r)
			}
		case "trace":
			if r.Trace == nil || r.Trace.ID != 1 {
				t.Errorf("trace record malformed: %+v", r)
			}
		}
	}
	if !kinds["wide_event"] || !kinds["trace"] {
		t.Fatalf("kinds seen: %v", kinds)
	}
	if e.Sent() != 2 {
		t.Errorf("Sent() = %d, want 2", e.Sent())
	}
}

// blockingSink wedges in Write until released, simulating a dead or
// slow collector.
type blockingSink struct {
	release chan struct{}
	writes  atomic.Int64
}

func (s *blockingSink) Write(_ context.Context, recs []ExportRecord) error {
	s.writes.Add(1)
	<-s.release
	return nil
}
func (s *blockingSink) Close() error { return nil }

// TestExporterBoundedQueueDrops: when the sink wedges, the queue fills
// and Enqueue turns into a counted drop — it must return immediately
// rather than block the request path.
func TestExporterBoundedQueueDrops(t *testing.T) {
	sink := &blockingSink{release: make(chan struct{})}
	e := NewExporter(sink, ExporterOptions{QueueSize: 2, BatchSize: 1})
	defer func() {
		close(sink.release)
		e.Close()
	}()

	deadline := time.Now().Add(5 * time.Second)
	for e.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drops recorded while the sink was wedged")
		}
		done := make(chan bool, 1)
		go func() { done <- e.EnqueueEvent(testEvent("fs_get", 9)) }()
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatal("EnqueueEvent blocked on a full queue")
		}
	}
}

// TestJSONLSink: records land one JSON object per line and survive a
// round-trip.
func TestJSONLSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	sink, err := NewJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExporter(sink, ExporterOptions{})
	e.EnqueueEvent(testEvent("fs_put", 3))
	e.EnqueueTrace(TraceSnapshot{ID: 3, Op: "fs_put"})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		lines++
		var rec ExportRecord
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not an ExportRecord: %v", lines, err)
		}
		if rec.Kind != "wide_event" && rec.Kind != "trace" {
			t.Errorf("line %d has kind %q", lines, rec.Kind)
		}
	}
	if lines != 2 {
		t.Fatalf("JSONL file has %d lines, want 2", lines)
	}
}

// TestHTTPSinkRetries: a collector that fails once with a 5xx gets the
// same batch again; a 4xx is terminal.
func TestHTTPSinkRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	sink := NewHTTPSink(srv.URL, 2, time.Millisecond)
	ev := testEvent("fs_get", 5)
	if err := sink.Write(context.Background(), []ExportRecord{{Kind: "wide_event", Event: &ev}}); err != nil {
		t.Fatalf("Write with one transient failure: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("collector called %d times, want 2 (initial + one retry)", got)
	}

	calls.Store(0)
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer reject.Close()
	badSink := NewHTTPSink(reject.URL, 5, time.Millisecond)
	if err := badSink.Write(context.Background(), []ExportRecord{{Kind: "wide_event", Event: &ev}}); err == nil {
		t.Fatal("Write to a rejecting collector reported success")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("4xx retried: collector called %d times, want 1", got)
	}
}

// TestExporterNilSafe: a nil exporter accepts and discards, so emitting
// code needs no branches.
func TestExporterNilSafe(t *testing.T) {
	var e *Exporter
	if e.EnqueueEvent(testEvent("fs_get", 1)) {
		t.Error("nil exporter claimed to accept an event")
	}
	if e.EnqueueTrace(TraceSnapshot{}) {
		t.Error("nil exporter claimed to accept a trace")
	}
	if e.Dropped() != 0 || e.Sent() != 0 {
		t.Error("nil exporter reported nonzero counters")
	}
}
