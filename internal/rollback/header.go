package rollback

import (
	"encoding/binary"
	"fmt"

	"segshare/internal/mhash"
)

// Header is the rollback metadata the trusted file manager prepends to a
// file's plaintext before encryption (paper §V-D): the file's own main
// hash, bucket hashes for inner files, and — in the root file only — the
// monotonic-counter token of §V-E.
type Header struct {
	// Main is the file's own main hash.
	Main Digest
	// Inner marks non-empty directory files that carry bucket hashes.
	Inner bool
	// Buckets are the bucket hashes; only meaningful when Inner.
	Buckets Buckets
	// Token is the whole-file-system rollback token (monotonic counter
	// value); only meaningful in a store's root file.
	Token uint64
}

const headerTag = 0xB1

// flag bits
const (
	flagInner = 1 << 0
)

// EncodedSize returns the exact encoded size of the header.
func (h *Header) EncodedSize() int {
	n := 1 + 1 + DigestSize + 8
	if h.Inner {
		n += NumBuckets * mhash.EncodedSize
	}
	return n
}

// Encode serialises the header.
func (h *Header) Encode() []byte {
	out := make([]byte, 0, h.EncodedSize())
	out = append(out, headerTag)
	var flags byte
	if h.Inner {
		flags |= flagInner
	}
	out = append(out, flags)
	out = append(out, h.Main[:]...)
	out = binary.BigEndian.AppendUint64(out, h.Token)
	if h.Inner {
		for i := range h.Buckets {
			out = append(out, h.Buckets[i].Encode()...)
		}
	}
	return out
}

// DecodeHeader parses a header from the start of data and returns it with
// the remaining bytes (the file's logical content).
func DecodeHeader(data []byte) (*Header, []byte, error) {
	if len(data) < 2 || data[0] != headerTag {
		return nil, nil, fmt.Errorf("%w: bad tag", ErrHeader)
	}
	flags := data[1]
	h := &Header{Inner: flags&flagInner != 0}
	off := 2
	if len(data) < off+DigestSize+8 {
		return nil, nil, fmt.Errorf("%w: truncated", ErrHeader)
	}
	copy(h.Main[:], data[off:])
	off += DigestSize
	h.Token = binary.BigEndian.Uint64(data[off:])
	off += 8
	if h.Inner {
		need := NumBuckets * mhash.EncodedSize
		if len(data) < off+need {
			return nil, nil, fmt.Errorf("%w: truncated buckets", ErrHeader)
		}
		for i := range h.Buckets {
			b, err := mhash.DecodeHash(data[off : off+mhash.EncodedSize])
			if err != nil {
				return nil, nil, fmt.Errorf("%w: bucket %d", ErrHeader, i)
			}
			h.Buckets[i] = b
			off += mhash.EncodedSize
		}
	}
	return h, data[off:], nil
}
