package pfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"segshare/internal/pae"
)

func testKey(t *testing.T) pae.Key {
	t.Helper()
	k, err := pae.NewRandomKey()
	if err != nil {
		t.Fatalf("NewRandomKey: %v", err)
	}
	return k
}

func deterministicData(n int) []byte {
	data := make([]byte, n)
	rng := rand.New(rand.NewSource(int64(n)))
	rng.Read(data)
	return data
}

func TestEncryptDecryptSizes(t *testing.T) {
	key := testKey(t)
	sizes := []int{
		0, 1, 100,
		ChunkSize - 1, ChunkSize, ChunkSize + 1,
		2 * ChunkSize, 2*ChunkSize + 17,
		5 * ChunkSize, 7*ChunkSize - 1, 64 * ChunkSize,
	}
	for _, size := range sizes {
		pt := deterministicData(size)
		blob, err := Encrypt(key, []byte("/f"), pt)
		if err != nil {
			t.Fatalf("size %d: Encrypt: %v", size, err)
		}
		wantLen := int64(size) + Overhead(int64(size))
		if int64(len(blob)) != wantLen {
			t.Fatalf("size %d: blob %d bytes, Overhead predicts %d", size, len(blob), wantLen)
		}
		got, err := Decrypt(key, []byte("/f"), blob)
		if err != nil {
			t.Fatalf("size %d: Decrypt: %v", size, err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestOverheadIsSmall(t *testing.T) {
	// The paper reports ~1% storage overhead for large files (§VII-B).
	const size = 10 << 20
	ratio := float64(Overhead(size)) / float64(size)
	if ratio > 0.02 {
		t.Fatalf("overhead ratio %.4f exceeds 2%%", ratio)
	}
}

func TestDecryptRejectsWrongKeyAndFileID(t *testing.T) {
	key := testKey(t)
	blob, err := Encrypt(key, []byte("/f"), deterministicData(3*ChunkSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(testKey(t), []byte("/f"), blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong key: want ErrCorrupt, got %v", err)
	}
	if _, err := Decrypt(key, []byte("/other"), blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong file id: want ErrCorrupt, got %v", err)
	}
}

func TestTamperDetectionEveryRegion(t *testing.T) {
	key := testKey(t)
	pt := deterministicData(3*ChunkSize + 123)
	blob, err := Encrypt(key, []byte("/f"), pt)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in a sample of positions across chunk data, tree, and
	// footer; all must be detected by a full read.
	positions := []int{
		0, 1000, ChunkSize + 5, 2*ChunkSize + 99, // chunk ciphertexts
		len(blob) - footerSize - 10,   // tree nodes
		len(blob) - footerSize + 2,    // footer body
		len(blob) - 1, len(blob) - 20, // footer mac / root
	}
	for _, pos := range positions {
		mutated := bytes.Clone(blob)
		mutated[pos] ^= 1
		if _, err := Decrypt(key, []byte("/f"), mutated); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("tamper at %d: want ErrCorrupt, got %v", pos, err)
		}
	}
}

func TestTruncationAndExtensionDetected(t *testing.T) {
	key := testKey(t)
	blob, err := Encrypt(key, []byte("/f"), deterministicData(4*ChunkSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(key, []byte("/f"), blob[:len(blob)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: want ErrCorrupt, got %v", err)
	}
	if _, err := Decrypt(key, []byte("/f"), append(bytes.Clone(blob), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("extended: want ErrCorrupt, got %v", err)
	}
	if _, err := Decrypt(key, []byte("/f"), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty blob: want ErrCorrupt, got %v", err)
	}
}

func TestChunkReorderDetected(t *testing.T) {
	key := testKey(t)
	blob, err := Encrypt(key, []byte("/f"), deterministicData(4*ChunkSize))
	if err != nil {
		t.Fatal(err)
	}
	mutated := bytes.Clone(blob)
	chunkLen := ChunkSize + pae.Overhead
	// Swap chunks 0 and 1.
	tmp := make([]byte, chunkLen)
	copy(tmp, mutated[:chunkLen])
	copy(mutated[:chunkLen], mutated[chunkLen:2*chunkLen])
	copy(mutated[chunkLen:2*chunkLen], tmp)
	if _, err := Decrypt(key, []byte("/f"), mutated); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reorder: want ErrCorrupt, got %v", err)
	}
}

func TestRandomAccessReadAt(t *testing.T) {
	key := testKey(t)
	pt := deterministicData(5*ChunkSize + 77)
	blob, err := Encrypt(key, []byte("/f"), pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(key, []byte("/f"), bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != int64(len(pt)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(pt))
	}

	tests := []struct {
		off int64
		n   int
	}{
		{off: 0, n: 10},
		{off: ChunkSize - 3, n: 6}, // crosses a chunk boundary
		{off: 3 * ChunkSize, n: ChunkSize},
		{off: int64(len(pt)) - 5, n: 5},
	}
	for _, tt := range tests {
		buf := make([]byte, tt.n)
		if _, err := r.ReadAt(buf, tt.off); err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", tt.off, tt.n, err)
		}
		if !bytes.Equal(buf, pt[tt.off:tt.off+int64(tt.n)]) {
			t.Fatalf("ReadAt(%d,%d) mismatch", tt.off, tt.n)
		}
	}

	// Read past EOF.
	buf := make([]byte, 10)
	n, err := r.ReadAt(buf, int64(len(pt))-4)
	if n != 4 || !errors.Is(err, io.EOF) {
		t.Fatalf("partial read at tail: n=%d err=%v", n, err)
	}
	if _, err := r.ReadAt(buf, int64(len(pt))); !errors.Is(err, io.EOF) {
		t.Fatalf("read at EOF: %v", err)
	}
	if _, err := r.ReadAt(buf, -1); !errors.Is(err, ErrReadRange) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestRandomAccessDetectsChunkTamper(t *testing.T) {
	key := testKey(t)
	pt := deterministicData(6 * ChunkSize)
	blob, err := Encrypt(key, []byte("/f"), pt)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with chunk 4 only; reads of chunk 1 must still succeed,
	// reads of chunk 4 must fail.
	chunkLen := ChunkSize + pae.Overhead
	blob[4*chunkLen+100] ^= 1
	r, err := Open(key, []byte("/f"), bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := r.ReadAt(buf, int64(ChunkSize)); err != nil {
		t.Fatalf("untampered chunk read failed: %v", err)
	}
	if _, err := r.ReadAt(buf, int64(4*ChunkSize)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered chunk read: want ErrCorrupt, got %v", err)
	}
}

func TestRandomAccessDetectsTreeTamper(t *testing.T) {
	key := testKey(t)
	pt := deterministicData(8 * ChunkSize)
	blob, err := Encrypt(key, []byte("/f"), pt)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a stored tree node (sibling of some chunk); ReadAt of the
	// chunk whose path uses it must fail.
	chunkLen := int64(ChunkSize + pae.Overhead)
	treeStart := 8 * chunkLen
	blob[treeStart+3] ^= 1 // inside leaf node 0
	r, err := Open(key, []byte("/f"), bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	// Chunk 2's Merkle path reads stored level-1 node 0 as its sibling.
	if _, err := r.ReadAt(buf, int64(2*ChunkSize)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestStreamingWriterMatchesOneShot(t *testing.T) {
	key := testKey(t)
	pt := deterministicData(3*ChunkSize + 500)

	var buf bytes.Buffer
	w, err := NewWriter(key, []byte("/f"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Write in awkward increments.
	for i := 0; i < len(pt); {
		n := 700
		if i+n > len(pt) {
			n = len(pt) - i
		}
		if _, err := w.Write(pt[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(key, []byte("/f"), buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("streamed write round trip mismatch")
	}

	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestWriteToStreamsAndVerifies(t *testing.T) {
	key := testKey(t)
	pt := deterministicData(9*ChunkSize + 9)
	blob, err := Encrypt(key, []byte("/f"), pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(key, []byte("/f"), bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := r.WriteTo(&out)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(pt)) || !bytes.Equal(out.Bytes(), pt) {
		t.Fatal("WriteTo mismatch")
	}
}

// Property: encrypt/decrypt round-trips for arbitrary content and IDs.
func TestQuickRoundTrip(t *testing.T) {
	key := testKey(t)
	prop := func(pt, id []byte) bool {
		blob, err := Encrypt(key, id, pt)
		if err != nil {
			return false
		}
		got, err := Decrypt(key, id, blob)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadAt agrees with the plaintext for arbitrary windows.
func TestQuickReadAtWindows(t *testing.T) {
	key := testKey(t)
	pt := deterministicData(4*ChunkSize + 321)
	blob, err := Encrypt(key, []byte("/f"), pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(key, []byte("/f"), bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(offRaw, lenRaw uint16) bool {
		off := int64(offRaw) % int64(len(pt))
		n := int(lenRaw) % 2000
		if off+int64(n) > int64(len(pt)) {
			n = int(int64(len(pt)) - off)
		}
		buf := make([]byte, n)
		if _, err := r.ReadAt(buf, off); err != nil {
			return false
		}
		return bytes.Equal(buf, pt[off:off+int64(n)])
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
