// Package enclave simulates the Intel SGX primitives SeGShare depends on
// (paper §II-A): enclave launch with a code measurement, data sealing,
// remote attestation via signed quotes, monotonic counters, protected
// memory, and the switchless call bridge between the untrusted host and
// the trusted enclave code.
//
// The simulation is API-faithful: every protocol-visible behaviour of the
// hardware (sealing policy MRENCLAVE, quote verification, counter
// monotonicity and wear) is reproduced in software. What is necessarily
// absent is the hardware isolation itself; the rest of the code base is
// written against these interfaces so that it would port to a real TEE
// runtime (EGo, Gramine) by swapping this package.
package enclave

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// MeasurementSize is the size in bytes of an enclave measurement
// (MRENCLAVE equivalent).
const MeasurementSize = sha256.Size

// Measurement identifies the initial code and data loaded into an enclave,
// i.e. the hash SGX computes at enclave build time.
type Measurement [MeasurementSize]byte

// String renders a short hex prefix for logs.
func (m Measurement) String() string { return fmt.Sprintf("mr:%x…", m[:6]) }

// CodeIdentity describes the code and static configuration loaded into an
// enclave. Everything in it is "measured": two enclaves have the same
// Measurement iff their CodeIdentity is identical. SeGShare hard-codes the
// CA's public key into the enclave by placing it in Config (paper §III-B).
type CodeIdentity struct {
	// Name of the enclave binary, e.g. "segshare".
	Name string
	// Version of the enclave binary (ISVSVN equivalent).
	Version uint32
	// Config is static configuration compiled into the enclave, such as
	// the CA public key.
	Config []byte
}

// Measurement computes the measurement of the identity.
func (c CodeIdentity) Measurement() Measurement {
	h := sha256.New()
	h.Write([]byte("segshare-enclave-measurement/v1\x00"))
	var ver [4]byte
	binary.BigEndian.PutUint32(ver[:], c.Version)
	writeLenPrefixed(h, []byte(c.Name))
	h.Write(ver[:])
	writeLenPrefixed(h, c.Config)
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}

func writeLenPrefixed(w io.Writer, b []byte) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(b)))
	w.Write(n[:])
	w.Write(b)
}

// PlatformConfig tunes the simulated hardware.
type PlatformConfig struct {
	// CounterIncrementLatency simulates the slowness of SGX monotonic
	// counter increments the paper cites (§V-E). Zero means no delay.
	CounterIncrementLatency time.Duration
	// CounterWearLimit is the number of increments a counter survives
	// before it wears out, mirroring the paper's wear-out concern.
	// Zero means unlimited.
	CounterWearLimit uint64
}

// Platform is one simulated SGX-capable machine: it owns the device root
// key that sealing derives from, the attestation key that signs quotes,
// the monotonic counter store, and the per-enclave protected memory.
//
// A Platform survives enclave restarts; launching an enclave with the same
// CodeIdentity yields the same sealing key and access to the same counters
// and protected memory, which is exactly the persistence model the
// whole-file-system rollback protection relies on.
type Platform struct {
	cfg       PlatformConfig
	deviceKey []byte
	attKey    *ecdsa.PrivateKey

	mu       sync.Mutex
	counters map[counterID]*counterState
	protMem  map[protMemID][]byte
}

type (
	counterID struct {
		measurement Measurement
		name        string
	}
	protMemID struct {
		measurement Measurement
		name        string
	}
)

type counterState struct {
	value uint64
	wear  uint64
}

// NewPlatform creates a simulated platform with fresh device and
// attestation keys.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	deviceKey := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, deviceKey); err != nil {
		return nil, fmt.Errorf("enclave: device key: %w", err)
	}
	attKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: attestation key: %w", err)
	}
	return &Platform{
		cfg:       cfg,
		deviceKey: deviceKey,
		attKey:    attKey,
		counters:  make(map[counterID]*counterState),
		protMem:   make(map[protMemID][]byte),
	}, nil
}

// AttestationPublicKey returns the public half of the platform's quote
// signing key. In real SGX this role is played by Intel's attestation
// service; verifiers must obtain it over a trusted channel.
func (p *Platform) AttestationPublicKey() *ecdsa.PublicKey {
	return &p.attKey.PublicKey
}

// Launch creates an enclave instance running the given code identity.
func (p *Platform) Launch(code CodeIdentity) (*Enclave, error) {
	m := code.Measurement()
	sealKey, err := deriveSealKey(p.deviceKey, m)
	if err != nil {
		return nil, err
	}
	return &Enclave{
		platform:    p,
		code:        code,
		measurement: m,
		sealKey:     sealKey,
	}, nil
}
