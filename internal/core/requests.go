package core

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"segshare/internal/obs"
)

var errRegistryDisabled = errors.New("request registry disabled")

// requestRegistry tracks every request currently being handled — HTTP
// and DirectSession alike — so "what is stuck in flight this second"
// has an exact answer: /debug/requests lists live requests with op
// class, age, innermost open span, and lock wait so far, and the
// watchdog's over-deadline check reads the registry instead of
// heuristics over the trace recorder's active set.
//
// Entries are registered in instrument()/observeDirect() and removed in
// finishRequest, the same chokepoint that closes the trace — a request
// cannot finish without leaving the registry.
//
// The map is sharded by trace id so the three per-request touches (add,
// group tag lookup, remove) of concurrent requests don't serialize on
// one mutex; snapshot/overDeadline walk all shards.
type requestRegistry struct {
	shards [requestRegistryShards]struct {
		mu   sync.Mutex
		reqs map[uint64]*activeRequest
	}
}

const requestRegistryShards = 16

// activeRequest is one live request. id, op, start, tr, and rs are set
// before the entry is published and never change; hotGroup is written
// only by the request's own goroutine (after authn identifies the
// principal) and read only at finish on that same goroutine, so it
// needs no lock.
type activeRequest struct {
	id    uint64
	op    string
	start time.Time
	tr    *obs.Trace
	rs    *obs.ReqStats

	// hotGroup is the pseudonymized group the request's traffic is
	// charged to in the top-k sketch ("" = unattributed). Identity is
	// pseudonymized at tag time: the raw group id is never stored here.
	hotGroup string
}

func newRequestRegistry() *requestRegistry {
	r := &requestRegistry{}
	for i := range r.shards {
		r.shards[i].reqs = make(map[uint64]*activeRequest)
	}
	return r
}

func (r *requestRegistry) add(a *activeRequest) {
	s := &r.shards[a.id%requestRegistryShards]
	s.mu.Lock()
	s.reqs[a.id] = a
	s.mu.Unlock()
}

func (r *requestRegistry) remove(id uint64) *activeRequest {
	s := &r.shards[id%requestRegistryShards]
	s.mu.Lock()
	a := s.reqs[id]
	delete(s.reqs, id)
	s.mu.Unlock()
	return a
}

func (r *requestRegistry) lookup(id uint64) *activeRequest {
	s := &r.shards[id%requestRegistryShards]
	s.mu.Lock()
	a := s.reqs[id]
	s.mu.Unlock()
	return a
}

// snapshot exports up to max live requests, oldest first, in the
// leak-bounded wire form (ages and waits log2-bucketed, op and span
// from closed sets).
func (r *requestRegistry) snapshot(max int) []obs.InFlightRequest {
	now := time.Now()
	var active []*activeRequest
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, a := range s.reqs {
			active = append(active, a)
		}
		s.mu.Unlock()
	}
	sort.Slice(active, func(i, j int) bool { return active[i].start.Before(active[j].start) })
	if max > 0 && len(active) > max {
		active = active[:max]
	}
	out := make([]obs.InFlightRequest, 0, len(active))
	for _, a := range active {
		out = append(out, obs.InFlightRequest{
			TraceID:    a.id,
			Op:         a.op,
			Span:       a.tr.CurrentSpan(),
			AgeNs:      obs.BucketCeil(now.Sub(a.start).Nanoseconds()),
			LockWaitNs: obs.BucketCeil(a.rs.LockWaitNs()),
		})
	}
	return out
}

// overDeadline reports how many live requests started more than
// deadline ago, plus the oldest one's age, trace id, and op class — the
// watchdog's request_deadline check and its profile-capture correlation
// read it.
func (r *requestRegistry) overDeadline(deadline time.Duration) (n int, oldest time.Duration, oldestID uint64, oldestOp string) {
	now := time.Now()
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, a := range s.reqs {
			age := now.Sub(a.start)
			if age < deadline {
				continue
			}
			n++
			if age > oldest {
				oldest, oldestID, oldestOp = age, a.id, a.op
			}
		}
		s.mu.Unlock()
	}
	return n, oldest, oldestID, oldestOp
}

// size returns the number of live requests.
func (r *requestRegistry) size() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.reqs)
		s.mu.Unlock()
	}
	return n
}

// inFlightStatus is the /debug/requests JSON body.
type inFlightStatus struct {
	Count    int                   `json:"count"`
	Requests []obs.InFlightRequest `json:"requests"`
}

// InFlightRequests returns up to max live requests (0 = all), oldest
// first. Empty when the registry is disabled.
func (s *Server) InFlightRequests(max int) []obs.InFlightRequest {
	if s.obs.requests == nil {
		return nil
	}
	return s.obs.requests.snapshot(max)
}

// RequestsHandler serves GET /debug/requests: the live request set in
// leak-bounded form. ?n= limits the listing (default 100, clamped to
// 1000).
func (s *Server) RequestsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.obs.requests == nil {
			writeErr(w, http.StatusNotFound, errRegistryDisabled)
			return
		}
		n := 100
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		if n > 1000 {
			n = 1000
		}
		st := inFlightStatus{
			Count:    s.obs.requests.size(),
			Requests: s.obs.requests.snapshot(n),
		}
		if st.Requests == nil {
			st.Requests = []obs.InFlightRequest{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}
