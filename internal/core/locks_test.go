package core

import (
	"sync"
	"testing"
	"time"

	"segshare/internal/fspath"
)

func TestShardSetIncludesParentAndIsSorted(t *testing.T) {
	lm := newLockManager(64, false, nil)
	p := mustPath(t, "/a/b/c.txt")
	idx := lm.shardSet(p)
	want := map[int]bool{
		lm.shardIndex(p):          true,
		lm.shardIndex(p.Parent()): true,
	}
	if len(idx) != len(want) {
		t.Fatalf("shardSet = %v, want the shards of the path and its parent", idx)
	}
	for i, v := range idx {
		if !want[v] {
			t.Fatalf("unexpected shard %d in %v", v, idx)
		}
		if i > 0 && idx[i-1] >= v {
			t.Fatalf("shard set not strictly ascending: %v", idx)
		}
	}
}

func TestShardSetRootHasNoParent(t *testing.T) {
	lm := newLockManager(8, false, nil)
	idx := lm.shardSet(fspath.Root)
	if len(idx) != 1 {
		t.Fatalf("shardSet(root) = %v, want exactly one shard", idx)
	}
}

// Disjoint-path writers must be able to hold their fsWrite plans at the
// same time (the whole point of sharding). The test picks two paths in
// different shards and verifies the second acquisition does not block on
// the first.
func TestDisjointWritesDoNotBlock(t *testing.T) {
	lm := newLockManager(64, false, nil)
	a := mustPath(t, "/a/x")
	var b fspath.Path
	for _, cand := range []string{"/b/y", "/c/z", "/d/w", "/e/v", "/f/u", "/g/t"} {
		p := mustPath(t, cand)
		if !shardsOverlap(lm, a, p) {
			b = p
			break
		}
	}
	if b.IsZero() {
		t.Skip("no disjoint candidate found (improbable)")
	}
	unlockA := lm.fsWrite(nil, false, a)
	defer unlockA()
	done := make(chan struct{})
	go func() {
		unlockB := lm.fsWrite(nil, false, b)
		unlockB()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("write on a disjoint path blocked behind an unrelated write lock")
	}
}

func shardsOverlap(lm *lockManager, a, b fspath.Path) bool {
	in := map[int]bool{}
	for _, i := range lm.shardSet(a) {
		in[i] = true
	}
	for _, i := range lm.shardSet(b) {
		if in[i] {
			return true
		}
	}
	return false
}

// Overlapping acquisitions must exclude: a write on a path blocks a read
// of the same path until released.
func TestOverlappingWriteExcludesRead(t *testing.T) {
	lm := newLockManager(64, false, nil)
	p := mustPath(t, "/a/x")
	unlock := lm.fsWrite(nil, false, p)
	acquired := make(chan struct{})
	go func() {
		u := lm.fsRead(nil, p)
		close(acquired)
		u()
	}()
	select {
	case <-acquired:
		t.Fatal("read acquired while an overlapping write was held")
	case <-time.After(50 * time.Millisecond):
	}
	unlock()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("read never acquired after write released")
	}
}

// In coupled (rollback-protection) mode every content write escalates to
// the exclusive barrier, so even disjoint writes serialize — and a
// concurrent whole-tree hold blocks them.
func TestCoupledModeWritesAreExclusive(t *testing.T) {
	lm := newLockManager(64, true, nil)
	a := mustPath(t, "/a/x")
	b := mustPath(t, "/b/y")
	unlockA := lm.fsWrite(nil, false, a)
	acquired := make(chan struct{})
	go func() {
		u := lm.fsWrite(nil, false, b)
		close(acquired)
		u()
	}()
	select {
	case <-acquired:
		t.Fatal("coupled-mode writes ran concurrently")
	case <-time.After(50 * time.Millisecond):
	}
	unlockA()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("second write never acquired")
	}
}

// Reads still share in coupled mode.
func TestCoupledModeReadsShare(t *testing.T) {
	lm := newLockManager(64, true, nil)
	p := mustPath(t, "/a/x")
	u1 := lm.fsRead(nil, p)
	defer u1()
	done := make(chan struct{})
	go func() {
		u2 := lm.fsRead(nil, p)
		u2()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent read blocked behind another read")
	}
}

// moveLocks must take the barrier for directory moves and the shard plan
// for file moves; directory moves therefore exclude everything.
func TestMoveLocksDirectoryEscalates(t *testing.T) {
	lm := newLockManager(64, false, nil)
	unlock := lm.moveLocks(nil, mustPath(t, "/a/"), mustPath(t, "/b/"))
	acquired := make(chan struct{})
	go func() {
		u := lm.fsRead(nil, mustPath(t, "/elsewhere"))
		close(acquired)
		u()
	}()
	select {
	case <-acquired:
		t.Fatal("read acquired during a directory move")
	case <-time.After(50 * time.Millisecond):
	}
	unlock()
	<-acquired
}

// Heavy mixed traffic through every plan, under -race: deadlock-freedom
// and ordered multi-shard acquisition. Failure mode is a test timeout.
func TestLockManagerMixedTrafficNoDeadlock(t *testing.T) {
	lm := newLockManager(4, false, nil) // few shards => frequent overlap
	paths := []fspath.Path{
		mustPath(t, "/a/x"), mustPath(t, "/a/y"), mustPath(t, "/b/x"),
		mustPath(t, "/b/"), mustPath(t, "/c/d/e"), fspath.Root,
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				p := paths[(g+i)%len(paths)]
				q := paths[(g+i*7+1)%len(paths)]
				switch i % 5 {
				case 0:
					u := lm.fsWrite(nil, i%2 == 0, p, q)
					u()
				case 1:
					u := lm.groupWrite(nil)
					u()
				case 2:
					u := lm.wholeTree(nil)
					u()
				case 3:
					u := lm.groupRead(nil)
					u()
				default:
					u := lm.fsRead(nil, p, q)
					u()
				}
			}
		}(g)
	}
	wg.Wait()
}
