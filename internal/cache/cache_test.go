package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutBasics(t *testing.T) {
	c := New[string](1024)
	if _, ok := c.Get("a"); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	if !c.Put("a", "alpha", 10, c.Gen()) {
		t.Fatal("Put rejected")
	}
	v, ok := c.Get("a")
	if !ok || v != "alpha" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Cost != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutReplacesExisting(t *testing.T) {
	c := New[int](100)
	c.Put("k", 1, 40, c.Gen())
	c.Put("k", 2, 60, c.Gen())
	v, ok := c.Get("k")
	if !ok || v != 2 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if st := c.Stats(); st.Cost != 60 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSizeBoundAndEviction(t *testing.T) {
	c := New[int](100)
	for i := 0; i < 10; i++ {
		if !c.Put(fmt.Sprintf("k%d", i), i, 10, c.Gen()) {
			t.Fatalf("Put k%d rejected", i)
		}
	}
	// Full. The next insert must evict exactly one unreferenced entry.
	if !c.Put("extra", 99, 10, c.Gen()) {
		t.Fatal("Put extra rejected")
	}
	st := c.Stats()
	if st.Cost > 100 {
		t.Fatalf("cost %d exceeds capacity", st.Cost)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestClockSecondChance(t *testing.T) {
	c := New[int](30)
	c.Put("a", 1, 10, c.Gen())
	c.Put("b", 2, 10, c.Gen())
	c.Put("c", 3, 10, c.Gen())
	// Touch a and c so their reference bits are set; b is the victim.
	c.Get("a")
	c.Get("c")
	c.Put("d", 4, 10, c.Gen())
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived although unreferenced")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s was evicted although referenced", k)
		}
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c := New[int](100)
	if c.Put("big", 1, 101, c.Gen()) {
		t.Fatal("oversized value accepted")
	}
}

func TestInvalidateRemovesAndBumpsGen(t *testing.T) {
	c := New[int](100)
	gen := c.Gen()
	c.Put("k", 1, 10, gen)
	c.Invalidate("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("invalidated key still cached")
	}
	// A load that started before the invalidation must not re-insert.
	if c.Put("k", 1, 10, gen) {
		t.Fatal("stale-generation Put accepted")
	}
	// A fresh load inserts fine.
	if !c.Put("k", 2, 10, c.Gen()) {
		t.Fatal("fresh Put rejected")
	}
}

func TestInvalidateMissingKeyStillBumpsGen(t *testing.T) {
	c := New[int](100)
	gen := c.Gen()
	c.Invalidate("never-cached")
	if c.Gen() == gen {
		t.Fatal("generation unchanged")
	}
}

func TestFlush(t *testing.T) {
	c := New[int](100)
	gen := c.Gen()
	c.Put("a", 1, 10, gen)
	c.Put("b", 2, 10, gen)
	c.Flush()
	if st := c.Stats(); st.Entries != 0 || st.Cost != 0 {
		t.Fatalf("stats after flush = %+v", st)
	}
	if c.Put("a", 1, 10, gen) {
		t.Fatal("pre-flush generation accepted")
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache[int]
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	if c.Put("k", 1, 1, c.Gen()) {
		t.Fatal("nil cache accepted Put")
	}
	c.Invalidate("k")
	c.Flush()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("stats = %+v", st)
	}
	if New[int](0) != nil || New[int](-5) != nil {
		t.Fatal("non-positive capacity must return nil")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", i%64)
				switch i % 5 {
				case 0:
					c.Put(k, i, int64(1+i%128), c.Gen())
				case 4:
					c.Invalidate(k)
				default:
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Cost > st.Capacity || st.Cost < 0 {
		t.Fatalf("accounting broken: %+v", st)
	}
}
