package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"segshare/internal/core"
	"segshare/internal/obs"
)

// E12 — telemetry overhead (DESIGN.md §12). The wide-event pipeline
// instruments every request: a per-request stats collector on the lock,
// cache, store, journal, and audit paths, a trace with a tail-sampling
// decision, and an enqueue into the bounded export queue. This
// experiment measures what that costs, reusing the E10 corpus and
// measurement loop: aggregate throughput with telemetry fully off
// (DisableWideEvents, the PR-5-era request path), with wide events and
// tail sampling on but no exporter, and with the full export pipeline
// draining into an in-memory sink.

// E12Config parameterizes the telemetry-overhead experiment.
type E12Config struct {
	// Clients holds the concurrency levels to sweep.
	Clients []int
	// Ops is the number of operations each client performs per cell.
	Ops int
	// FileSize is the content size of every file in the corpus.
	FileSize int
	// Reps repeats each cell and keeps the best throughput. Telemetry
	// overhead is small relative to scheduler noise, so a single run per
	// cell routinely reports ±20 %; best-of-N compares each variant's
	// least-disturbed run instead. Default 5.
	Reps int
}

// DefaultE12 returns the scaled-down default parameters.
func DefaultE12() E12Config {
	return E12Config{Clients: []int{1, 16}, Ops: 300, FileSize: 4 << 10, Reps: 5}
}

// E12Row is one measured cell.
type E12Row struct {
	Variant     string  // "telemetry-off", "wide-events", "wide-events+export"
	Workload    string  // "get-disjoint" or "mixed"
	Clients     int     // concurrent sessions
	Throughput  float64 // aggregate ops/second
	OverheadPct float64 // throughput loss vs telemetry-off at the same cell (negative = faster)
	Examined    uint64  // finished traces considered by the tail sampler during the cell
	Sampled     uint64  // traces the sampler retained during the cell
}

// E12ExportStats summarises what the export pipeline delivered across
// the "wide-events+export" cells — the end-to-end proof that wide
// events and sampled traces actually reach a sink off the request path.
type E12ExportStats struct {
	WideEvents uint64 // wide-event records delivered to the sink
	Traces     uint64 // sampled-trace records delivered to the sink
	Dropped    uint64 // records dropped by the bounded queue
}

// e12Variants are the three telemetry configurations under comparison.
var e12Variants = []struct {
	name    string
	disable bool
	export  bool
}{
	{"telemetry-off", true, false},
	{"wide-events", false, false},
	{"wide-events+export", false, true},
}

var e12Workloads = []string{"get-disjoint", "mixed"}

// e12Sink pays the same per-record serialization cost as a real JSONL
// sink but retains nothing, so the export variant measures the pipeline
// itself rather than the memory growth of an accumulating test sink.
type e12Sink struct {
	wideEvents atomic.Uint64
	traces     atomic.Uint64
}

func (s *e12Sink) Write(_ context.Context, recs []obs.ExportRecord) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
		switch recs[i].Kind {
		case "wide_event":
			s.wideEvents.Add(1)
		case "trace":
			s.traces.Add(1)
		}
	}
	return nil
}

func (s *e12Sink) Close() error { return nil }

// e12VarEnv is one variant's live deployment during a workload sweep.
type e12VarEnv struct {
	name     string
	env      *Env
	sessions []*core.DirectSession
	sink     *e12Sink
	exporter *obs.Exporter
}

// RunE12 sweeps every (workload, clients, variant) cell. All three
// variants stay alive per workload and each repetition measures them
// back-to-back (telemetry-off first), so slow machine drift — which on a
// shared host easily exceeds the effect under measurement — hits every
// variant of a comparison equally. Best-of-Reps per variant then drops
// the disturbed runs.
func RunE12(cfg E12Config) ([]E12Row, E12ExportStats, error) {
	if len(cfg.Clients) == 0 || cfg.Ops <= 0 {
		return nil, E12ExportStats{}, fmt.Errorf("bench: e12 config incomplete: %+v", cfg)
	}
	maxClients := 0
	for _, n := range cfg.Clients {
		if n > maxClients {
			maxClients = n
		}
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 1
	}
	var rows []E12Row
	var export E12ExportStats
	for _, workload := range e12Workloads {
		var vars []*e12VarEnv
		fail := func(err error) ([]E12Row, E12ExportStats, error) {
			for _, ve := range vars {
				if ve.env != nil {
					ve.env.Close()
				}
				ve.exporter.Close()
			}
			return nil, E12ExportStats{}, err
		}
		for _, v := range e12Variants {
			ve := &e12VarEnv{name: v.name}
			vars = append(vars, ve)
			envCfg := EnvConfig{DisableWideEvents: v.disable}
			if v.export {
				ve.sink = &e12Sink{}
				ve.exporter = obs.NewExporter(ve.sink, obs.ExporterOptions{})
				envCfg.Exporter = ve.exporter
			}
			env, err := NewEnv(envCfg)
			if err != nil {
				return fail(err)
			}
			ve.env = env
			if ve.sessions, err = e10Setup(env, workload, maxClients, cfg.FileSize); err != nil {
				return fail(err)
			}
		}
		for _, n := range cfg.Clients {
			best := make([]E12Row, len(vars))
			for i, ve := range vars {
				best[i] = E12Row{Variant: ve.name, Workload: workload, Clients: n}
			}
			for rep := 0; rep < reps; rep++ {
				for i, ve := range vars {
					examined0 := ve.env.Server.Traces().Examined()
					sampled0 := ve.env.Server.Traces().Sampled()
					cell, err := e10Cell(ve.env, ve.sessions, ve.name, workload, n, cfg.Ops, cfg.FileSize)
					if err != nil {
						return fail(err)
					}
					if cell.Throughput > best[i].Throughput {
						best[i].Throughput = cell.Throughput
						best[i].Examined = ve.env.Server.Traces().Examined() - examined0
						best[i].Sampled = ve.env.Server.Traces().Sampled() - sampled0
					}
				}
			}
			base := best[0].Throughput // variant order pins telemetry-off first
			for i := range best {
				if i > 0 && base > 0 {
					best[i].OverheadPct = 100 * (base - best[i].Throughput) / base
				}
				rows = append(rows, best[i])
			}
		}
		for _, ve := range vars {
			ve.env.Close()
			if ve.exporter != nil {
				ve.exporter.Close()
				export.WideEvents += ve.sink.wideEvents.Load()
				export.Traces += ve.sink.traces.Load()
				export.Dropped += ve.exporter.Dropped()
			}
		}
	}
	return rows, export, nil
}
