package plaindav

import (
	"crypto/tls"

	"segshare/internal/ca"
)

// IssueServerCert issues a TLS server certificate for this baseline from
// the given CA, so benchmarks run SeGShare and the baselines under the
// same PKI.
func IssueServerCert(authority *ca.Authority, hosts []string) (tls.Certificate, error) {
	cred, err := authority.IssueServerCertificate(hosts, 0)
	if err != nil {
		return tls.Certificate{}, err
	}
	return cred.TLSCertificate()
}
