package core

import (
	"errors"
	"fmt"
	"strings"

	"segshare/internal/acl"
	"segshare/internal/audit"
	"segshare/internal/rollback"
)

// This file maintains and validates the rollback-protection hash tree
// (paper §V-D/§V-E) over a namespace. Writes update one bucket per
// ancestor and re-derive each ancestor's main hash — O(depth), no sibling
// access. Reads validate one bucket per level, touching only the stored
// headers of the files sharing the bucket.

// treeID is the canonical identifier of a node in the hash tree,
// namespaced by store kind.
func treeID(ns *namespace, name string) string { return ns.kind + ":" + name }

// rollbackFailed counts a rejected validation, records it in the audit
// trail (a rollback failure is direct evidence of host tampering under
// the threat model), and passes the error through.
func (fm *fileManager) rollbackFailed(err error) error {
	fm.obs.rollbackFailures.Inc()
	fm.obs.auditEmit(audit.Event{Event: audit.EventRollbackFailure, Detail: err.Error()})
	return err
}

// bucketOp describes one child-hash change in a parent's buckets.
// A zero oldMain means the child is new; a zero newMain means it is being
// removed.
type bucketOp struct {
	child   string
	oldMain rollback.Digest
	newMain rollback.Digest
}

// writeLeaf writes a leaf file (content file, ACL, or administration
// file) and returns its previous and new main hashes (zero values when
// rollback protection is off, or when the file did not exist).
func (fm *fileManager) writeLeaf(ns *namespace, name string, body []byte) (oldMain, newMain rollback.Digest, err error) {
	if !fm.rollbackOn {
		return rollback.Digest{}, rollback.Digest{}, fm.putBlob(ns, name, nil, body)
	}
	prev, err := fm.readHeader(ns, name)
	switch {
	case err == nil:
		oldMain = prev.Main
	case errors.Is(err, ErrNotFound):
		// creating
	default:
		return oldMain, newMain, err
	}
	newMain = fm.hasher.LeafMain(treeID(ns, name), rollback.ContentDigest(body))
	return oldMain, newMain, fm.putBlob(ns, name, &rollback.Header{Main: newMain}, body)
}

// loadDir loads an inner node's header and decoded directory body.
func (fm *fileManager) loadDir(ns *namespace, name string) (*rollback.Header, *dirBody, error) {
	hdr, body, err := fm.getBlob(ns, name)
	if err != nil {
		return nil, nil, err
	}
	db, err := decodeDirBody(body)
	if err != nil {
		return nil, nil, err
	}
	return hdr, db, nil
}

// writeRootNode initializes a namespace root with the given body and no
// children (group store) — used only at first start.
func (fm *fileManager) writeRootNode(ns *namespace, db *dirBody) error {
	body := db.encode()
	var hdr *rollback.Header
	if fm.rollbackOn {
		hdr = &rollback.Header{Inner: true}
		hdr.Main = fm.hasher.InnerMain(treeID(ns, ns.rootName), rollback.ContentDigest(body), &hdr.Buckets)
	}
	return fm.putRootBlob(ns, hdr, body)
}

// applyToParent mutates an inner node: an optional directory-body change
// plus bucket updates for changed children, then recomputes the node's
// main hash and propagates the change to the namespace root, committing
// the root guard.
func (fm *fileManager) applyToParent(ns *namespace, parentName string, mutate func(*dirBody) error, ops []bucketOp) error {
	hdr, db, err := fm.loadDir(ns, parentName)
	if err != nil {
		return err
	}
	if mutate != nil {
		if err := mutate(db); err != nil {
			return err
		}
	}
	body := db.encode()
	if !fm.rollbackOn {
		return fm.putBlob(ns, parentName, nil, body)
	}
	oldMain := hdr.Main
	fm.applyBucketOps(hdr, ops)
	hdr.Main = fm.hasher.InnerMain(treeID(ns, parentName), rollback.ContentDigest(body), &hdr.Buckets)
	if parentName == ns.rootName {
		return fm.putRootBlob(ns, hdr, body)
	}
	if err := fm.putBlob(ns, parentName, hdr, body); err != nil {
		return err
	}
	return fm.propagateReplace(ns, parentName, oldMain, hdr.Main)
}

func (fm *fileManager) applyBucketOps(hdr *rollback.Header, ops []bucketOp) {
	for _, op := range ops {
		child := op.child
		switch {
		case op.oldMain.IsZero():
			hdr.Buckets.AddChild(fm.hasher, child, op.newMain)
		case op.newMain.IsZero():
			hdr.Buckets.RemoveChild(fm.hasher, child, op.oldMain)
		default:
			hdr.Buckets.ReplaceChild(fm.hasher, child, op.oldMain, op.newMain)
		}
	}
}

// propagateReplace walks from child's parent to the root, swapping the
// child's main hash in each ancestor's bucket and re-deriving the
// ancestor's main hash.
func (fm *fileManager) propagateReplace(ns *namespace, child string, oldMain, newMain rollback.Digest) error {
	depth := 0
	defer func() { fm.obs.treeUpdateDepth.Observe(uint64(depth)) }()
	for name := ns.parentOf(child); name != ""; name = ns.parentOf(name) {
		depth++
		hdr, body, err := fm.getBlob(ns, name)
		if err != nil {
			return err
		}
		hdr.Buckets.ReplaceChild(fm.hasher, treeID(ns, child), oldMain, newMain)
		prev := hdr.Main
		hdr.Main = fm.hasher.InnerMain(treeID(ns, name), rollback.ContentDigest(body), &hdr.Buckets)
		if name == ns.rootName {
			if err := fm.putRootBlob(ns, hdr, body); err != nil {
				return err
			}
		} else if err := fm.putBlob(ns, name, hdr, body); err != nil {
			return err
		}
		child, oldMain, newMain = name, prev, hdr.Main
	}
	return nil
}

// treeChildren enumerates the tree children of an inner node from its
// directory body: in the content store each entry contributes the child
// itself and its ACL file; the root additionally parents its own ACL.
func (fm *fileManager) treeChildren(ns *namespace, name string, db *dirBody) []string {
	var out []string
	if ns == fm.group {
		for _, e := range db.entries {
			out = append(out, e.Name)
		}
		return out
	}
	for _, e := range db.entries {
		child := name + e.Name
		if e.IsDir {
			child += "/"
		}
		out = append(out, child, aclName(child))
	}
	if name == ns.rootName {
		out = append(out, aclName(name))
	}
	return out
}

// validateNode performs the read-path rollback check of paper §V-D: the
// node's own main hash is recomputed from its content; then, for each
// ancestor level, the single bucket containing the child is recomputed
// from the stored main hashes of the files sharing it; finally the root's
// main hash is checked against the root guard (§V-E).
func (fm *fileManager) validateNode(ns *namespace, name string, hdr *rollback.Header, body []byte) error {
	if !fm.rollbackOn || !fm.validate {
		return nil
	}
	if hdr == nil {
		return fm.rollbackFailed(fmt.Errorf("%w: %s: missing rollback header", ErrIntegrity, name))
	}
	var want rollback.Digest
	if hdr.Inner {
		want = fm.hasher.InnerMain(treeID(ns, name), rollback.ContentDigest(body), &hdr.Buckets)
	} else {
		want = fm.hasher.LeafMain(treeID(ns, name), rollback.ContentDigest(body))
	}
	if want != hdr.Main {
		return fm.rollbackFailed(fmt.Errorf("%w: %s: stale main hash", ErrRollback, name))
	}
	depth := 0
	defer func() { fm.obs.treeValidateDepth.Observe(uint64(depth)) }()
	if name == ns.rootName {
		if err := fm.guardCheck(ns, hdr); err != nil {
			return fm.rollbackFailed(fmt.Errorf("%w: %s: %v", ErrRollback, name, err))
		}
		return nil
	}

	child := name
	childMain := hdr.Main
	for anc := ns.parentOf(name); anc != ""; anc = ns.parentOf(anc) {
		depth++
		ancHdr, ancBody, err := fm.getBlob(ns, anc)
		if err != nil {
			return err
		}
		ancDB, err := decodeDirBody(ancBody)
		if err != nil {
			return err
		}
		recomputed := fm.hasher.InnerMain(treeID(ns, anc), rollback.ContentDigest(ancBody), &ancHdr.Buckets)
		if recomputed != ancHdr.Main {
			return fm.rollbackFailed(fmt.Errorf("%w: %s: stale main hash", ErrRollback, anc))
		}
		// Recompute the single bucket holding child from the stored main
		// hashes of the files sharing it.
		childID := treeID(ns, child)
		bucketIdx := fm.hasher.BucketIndex(childID)
		var mains []rollback.Digest
		for _, sibling := range fm.treeChildren(ns, anc, ancDB) {
			sibID := treeID(ns, sibling)
			if fm.hasher.BucketIndex(sibID) != bucketIdx {
				continue
			}
			if sibling == child {
				mains = append(mains, childMain)
				continue
			}
			sibHdr, err := fm.readHeader(ns, sibling)
			if err != nil {
				return err
			}
			mains = append(mains, sibHdr.Main)
		}
		if err := ancHdr.Buckets.VerifyBucket(fm.hasher, childID, mains); err != nil {
			return fm.rollbackFailed(fmt.Errorf("%w: %s: %v", ErrRollback, anc, err))
		}
		if anc == ns.rootName {
			if err := fm.guardCheck(ns, ancHdr); err != nil {
				return fm.rollbackFailed(fmt.Errorf("%w: %s: %v", ErrRollback, anc, err))
			}
		}
		child, childMain = anc, ancHdr.Main
	}
	return nil
}

// guardCheck verifies a root header against the namespace guard. While
// the root is staged in the active operation its token is a placeholder
// (the guard commit happens at apply time), so the check is skipped —
// the staged main hash was derived in-enclave moments ago.
func (fm *fileManager) guardCheck(ns *namespace, hdr *rollback.Header) error {
	if fm.staging() {
		if sp, _ := fm.tx.staged(ns, ns.rootName); sp != nil {
			return nil
		}
	}
	return ns.guard.Check(hdr.Main, hdr.Token)
}

// validateAll is the full fsck walk used by Server.Fsck and the
// fault-injection harness: every node of both namespaces is loaded,
// decoded, and — with rollback protection on — validated against the
// hash tree and root guards; every directory entry must resolve and
// every dedup indirection must reach its content. With rollback off it
// degrades to a structural check that still catches dangling entries
// and undecodable bodies.
func (fm *fileManager) validateAll() error {
	for _, ns := range []*namespace{fm.content, fm.group} {
		if err := fm.validateSubtree(ns, ns.rootName); err != nil {
			return err
		}
	}
	return nil
}

func (fm *fileManager) validateSubtree(ns *namespace, name string) error {
	hdr, body, err := fm.getBlob(ns, name)
	if err != nil {
		return err
	}
	if err := fm.validateNode(ns, name, hdr, body); err != nil {
		return err
	}
	if ns.isInner(name) {
		db, err := decodeDirBody(body)
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrIntegrity, name, err)
		}
		for _, child := range fm.treeChildren(ns, name, db) {
			if err := fm.validateSubtree(ns, child); err != nil {
				return err
			}
		}
		return nil
	}
	return fm.validateLeafBody(ns, name, body)
}

// validateLeafBody decodes a leaf according to its namespace role and
// resolves dedup indirections, so the fsck proves every reachable byte
// is actually readable.
func (fm *fileManager) validateLeafBody(ns *namespace, name string, body []byte) error {
	if ns == fm.group {
		var err error
		switch {
		case strings.HasPrefix(name, memberNamePfx):
			_, err = acl.DecodeMemberList(body)
		case name == groupListName:
			_, err = acl.DecodeGroupList(body)
		}
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrIntegrity, name, err)
		}
		return nil
	}
	if strings.HasSuffix(name, ".acl") {
		if _, err := acl.DecodeACL(body); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrIntegrity, name, err)
		}
		return nil
	}
	_, hName, err := decodeContentBody(body)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrIntegrity, name, err)
	}
	if hName != "" {
		if fm.dedup == nil {
			return fmt.Errorf("%w: %s: dedup reference without dedup store", ErrIntegrity, name)
		}
		if _, err := fm.dedup.Get(hName); err != nil {
			return fmt.Errorf("%w: %s: unresolvable dedup reference: %v", ErrIntegrity, name, err)
		}
	}
	return nil
}
