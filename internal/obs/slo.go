package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// SLOEngine evaluates per-op-class service-level objectives over the
// request stream: a latency threshold (a request slower than it is
// "bad" even when it succeeds) and an error-rate target (the
// objective). Burn rate — how fast the error budget is being consumed
// relative to the rate that exactly exhausts it — is computed over the
// Google-SRE multi-window pairs: a breach requires BOTH windows of a
// pair over threshold, so a short spike (fails the long window) and a
// slowly-built backlog (fails the short window once the incident ends)
// both resolve correctly.
//
// Leak budget: the engine sees only (op class, status code, duration) —
// the same inputs the request counters already export. Its outputs are
// per-op-class gauges, log2-bucketed counts, and milli-scaled ratios of
// those counts; no request identity enters or leaves.

// The closed set of burn-rate window names. These are labels and JSON
// field values, deliberately NOT the configured durations: windows are
// tunable (tests shrink them to milliseconds) but the exported
// vocabulary stays constant.
const (
	WindowFastShort = "fast_short" // default 5m
	WindowFastLong  = "fast_long"  // default 1h
	WindowSlowShort = "slow_short" // default 6h
	WindowSlowLong  = "slow_long"  // default 3d
)

// The closed set of breach speeds, used as a metric label, audit
// detail, and profiler trigger reason.
const (
	BreachFast = "fast_burn"
	BreachSlow = "slow_burn"
)

// SLOConfig parameterizes the engine. Zero fields take the documented
// defaults.
type SLOConfig struct {
	// Objective is the good-request fraction target (default 0.999,
	// i.e. a 0.1% error budget).
	Objective float64
	// LatencyThreshold marks a request bad when it runs longer, even if
	// it succeeded (default 250ms).
	LatencyThreshold time.Duration
	// PerOpLatency overrides LatencyThreshold for specific op classes.
	PerOpLatency map[string]time.Duration
	// FastBurn is the paging threshold for the fast window pair
	// (default 14.4: the budget would be gone in ~2% of the SLO period).
	FastBurn float64
	// SlowBurn is the ticket threshold for the slow window pair
	// (default 1.0: budget consumed exactly at exhaustion rate).
	SlowBurn float64
	// FastShort, FastLong, SlowShort, SlowLong are the four window
	// durations (defaults 5m, 1h, 6h, 72h). Tests shrink them.
	FastShort, FastLong, SlowShort, SlowLong time.Duration
	// EvalInterval is the background evaluation cadence (default 10s).
	EvalInterval time.Duration
	// MinEvents gates breach detection: a window pair with fewer total
	// requests in its short window never breaches, so an idle server's
	// single failing probe cannot page (default 20).
	MinEvents uint64
	// Obs, when set, registers the segshare_slo_* instruments.
	Obs *Registry
	// OnBreach runs on every healthy-to-breached transition of a window
	// pair with the op class, the breach speed (BreachFast/BreachSlow),
	// and the short window's burn rate in millis. It runs on the
	// evaluation goroutine.
	OnBreach func(op, speed string, burnMilli int64)
	// Now overrides the clock, for tests. Default time.Now.
	Now func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.999
	}
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 250 * time.Millisecond
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 14.4
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 1.0
	}
	if c.FastShort <= 0 {
		c.FastShort = 5 * time.Minute
	}
	if c.FastLong <= 0 {
		c.FastLong = time.Hour
	}
	if c.SlowShort <= 0 {
		c.SlowShort = 6 * time.Hour
	}
	if c.SlowLong <= 0 {
		c.SlowLong = 72 * time.Hour
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 10 * time.Second
	}
	if c.MinEvents == 0 {
		c.MinEvents = 20
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// SLOEngine holds one tracker per op class seen on the request stream.
type SLOEngine struct {
	cfg SLOConfig

	mu       sync.Mutex
	trackers map[string]*sloTracker
	// byOp shadows trackers for the request hot path: Record hits an
	// existing op class with one lock-free load instead of taking e.mu.
	// Op classes are a closed compile-time set, so the map is bounded.
	byOp sync.Map // op string -> *sloTracker

	total    *Counter
	breaches map[string]*Counter // by speed

	stopOnce sync.Once
	stop     chan struct{}
	stopped  chan struct{}
	started  bool
}

// sloTracker is one op class's windows and breach state. Burn gauges
// and breach flags are written only by Evaluate (single goroutine);
// rings are written by Record under their own mutexes.
type sloTracker struct {
	op          string
	thresholdNs int64
	fast        *burnRing // width FastShort/5, span FastLong
	slow        *burnRing // width SlowShort/6, span SlowLong
	burn        map[string]*Gauge
	burnMilli   map[string]int64
	breached    map[string]bool // by speed
}

// NewSLOEngine builds the engine; call Start to launch the background
// evaluator (tests may drive Evaluate directly instead).
func NewSLOEngine(cfg SLOConfig) *SLOEngine {
	cfg = cfg.withDefaults()
	e := &SLOEngine{
		cfg:      cfg,
		trackers: make(map[string]*sloTracker),
		breaches: make(map[string]*Counter),
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	if cfg.Obs != nil {
		e.total = cfg.Obs.Counter("segshare_slo_requests_total",
			"Requests evaluated against the SLO (good + bad).", nil)
		for _, speed := range []string{BreachFast, BreachSlow} {
			e.breaches[speed] = cfg.Obs.Counter("segshare_slo_breaches_total",
				"Burn-rate window pairs that transitioned into breach.", Labels{"speed": speed})
		}
	}
	return e
}

// Start launches the evaluation goroutine; Stop halts it.
func (e *SLOEngine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	go e.run()
}

// Stop halts the evaluation goroutine, if started.
func (e *SLOEngine) Stop() {
	e.stopOnce.Do(func() {
		e.mu.Lock()
		started := e.started
		e.mu.Unlock()
		close(e.stop)
		if started {
			<-e.stopped
		}
	})
}

func (e *SLOEngine) run() {
	defer close(e.stopped)
	ticker := time.NewTicker(e.cfg.EvalInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.Evaluate(e.cfg.Now())
		case <-e.stop:
			return
		}
	}
}

// thresholdFor returns op's bad-latency threshold in nanoseconds.
func (e *SLOEngine) thresholdFor(op string) int64 {
	if d, ok := e.cfg.PerOpLatency[op]; ok && d > 0 {
		return d.Nanoseconds()
	}
	return e.cfg.LatencyThreshold.Nanoseconds()
}

func (e *SLOEngine) tracker(op string) *sloTracker {
	if t, ok := e.byOp.Load(op); ok {
		return t.(*sloTracker)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if t, ok := e.trackers[op]; ok {
		return t
	}
	t := &sloTracker{
		op:          op,
		thresholdNs: e.thresholdFor(op),
		fast:        newBurnRing(e.cfg.FastShort/5, e.cfg.FastLong),
		slow:        newBurnRing(e.cfg.SlowShort/6, e.cfg.SlowLong),
		burnMilli:   make(map[string]int64, 4),
		breached:    map[string]bool{BreachFast: false, BreachSlow: false},
	}
	if e.cfg.Obs != nil {
		t.burn = make(map[string]*Gauge, 4)
		for _, win := range []string{WindowFastShort, WindowFastLong, WindowSlowShort, WindowSlowLong} {
			t.burn[win] = e.cfg.Obs.Gauge("segshare_slo_burn_rate_milli",
				"Error-budget burn rate x1000 by op class and window.",
				Labels{"op": op, "win": win})
		}
	}
	e.trackers[op] = t
	e.byOp.Store(op, t)
	return t
}

// Record feeds one finished request into op's windows. A request is bad
// when it failed server-side (5xx) or overran the latency threshold.
// This is the request hot path: two short mutexed ring writes.
func (e *SLOEngine) Record(op string, status int, dur time.Duration) {
	if e == nil {
		return
	}
	t := e.tracker(op)
	bad := status >= 500 || dur.Nanoseconds() > t.thresholdNs
	now := e.cfg.Now()
	t.fast.add(now, bad)
	t.slow.add(now, bad)
	if e.total != nil {
		e.total.Inc()
	}
}

// windowSpec pairs a window name with where its counts come from.
type windowSpec struct {
	name string
	ring func(t *sloTracker) *burnRing
	dur  func(c *SLOConfig) time.Duration
}

var sloWindows = []windowSpec{
	{WindowFastShort, func(t *sloTracker) *burnRing { return t.fast }, func(c *SLOConfig) time.Duration { return c.FastShort }},
	{WindowFastLong, func(t *sloTracker) *burnRing { return t.fast }, func(c *SLOConfig) time.Duration { return c.FastLong }},
	{WindowSlowShort, func(t *sloTracker) *burnRing { return t.slow }, func(c *SLOConfig) time.Duration { return c.SlowShort }},
	{WindowSlowLong, func(t *sloTracker) *burnRing { return t.slow }, func(c *SLOConfig) time.Duration { return c.SlowLong }},
}

// Evaluate recomputes every tracker's burn rates and runs the breach
// state machine. The background goroutine calls it on EvalInterval;
// tests call it directly with a controlled clock.
func (e *SLOEngine) Evaluate(now time.Time) {
	e.mu.Lock()
	trackers := make([]*sloTracker, 0, len(e.trackers))
	for _, t := range e.trackers {
		trackers = append(trackers, t)
	}
	e.mu.Unlock()

	for _, t := range trackers {
		totals := make(map[string]uint64, 4)
		for _, w := range sloWindows {
			total, bad := w.ring(t).sums(now, w.dur(&e.cfg))
			milli := burnRateMilli(total, bad, e.cfg.Objective)
			totals[w.name] = total
			e.mu.Lock()
			t.burnMilli[w.name] = milli
			e.mu.Unlock()
			if t.burn != nil {
				t.burn[w.name].Set(milli)
			}
		}
		e.judge(t, BreachFast, WindowFastShort, WindowFastLong,
			int64(e.cfg.FastBurn*1000), totals[WindowFastShort])
		e.judge(t, BreachSlow, WindowSlowShort, WindowSlowLong,
			int64(e.cfg.SlowBurn*1000), totals[WindowSlowShort])
	}
}

// judge runs one window pair's breach state machine: both windows over
// the threshold AND enough traffic in the short window → breached.
func (e *SLOEngine) judge(t *sloTracker, speed, shortWin, longWin string, thresholdMilli int64, shortTotal uint64) {
	e.mu.Lock()
	over := t.burnMilli[shortWin] >= thresholdMilli && t.burnMilli[longWin] >= thresholdMilli &&
		shortTotal >= e.cfg.MinEvents
	was := t.breached[speed]
	t.breached[speed] = over
	burnMilli := t.burnMilli[shortWin]
	e.mu.Unlock()
	if over && !was {
		if c := e.breaches[speed]; c != nil {
			c.Inc()
		}
		if e.cfg.OnBreach != nil {
			e.cfg.OnBreach(t.op, speed, burnMilli)
		}
	}
}

// SLOWindowStatus is one window's exported state. Counts are log2
// bucket bounds; the burn rate is a milli-scaled ratio of two such
// aggregate counts.
type SLOWindowStatus struct {
	// Window names the window (class: enum, one of the Window* consts).
	Window string `json:"window"`
	// TotalLe / BadLe are the windowed request counts (class: bucketed).
	TotalLe uint64 `json:"totalLe"`
	BadLe   uint64 `json:"badLe"`
	// BurnMilli is the burn rate x1000 (class: rate — a ratio of the two
	// aggregate counts above, carrying no more than they do).
	BurnMilli int64 `json:"burnMilli"`
}

// SLOClassStatus is one op class's exported SLO state.
type SLOClassStatus struct {
	// Op is the operation class (class: enum).
	Op string `json:"op"`
	// ObjectiveMilli is the configured good-fraction target x1000
	// (class: config).
	ObjectiveMilli int64 `json:"objectiveMilli"`
	// LatencyThresholdNs is the configured bad-latency threshold
	// (class: config).
	LatencyThresholdNs int64 `json:"latencyThresholdNs"`
	// Windows holds the four burn-rate windows, in sloWindows order.
	Windows []SLOWindowStatus `json:"windows"`
	// FastBurning / SlowBurning report the window pairs' breach state
	// (class: flag).
	FastBurning bool `json:"fastBurning"`
	SlowBurning bool `json:"slowBurning"`
}

// SLOStatus is the /debug/slo JSON body.
type SLOStatus struct {
	// EvalUnixMs is when this snapshot was taken (class: time).
	EvalUnixMs int64 `json:"ts"`
	// Classes holds one entry per op class, sorted by op.
	Classes []SLOClassStatus `json:"classes"`
}

// SLOClassStatusFields / SLOWindowStatusFields classify every exported
// field for the leak-budget meta-test, like WideEventFields.
var SLOClassStatusFields = map[string]FieldClass{
	"Op":                 FieldEnum,
	"ObjectiveMilli":     FieldConfig,
	"LatencyThresholdNs": FieldConfig,
	"Windows":            FieldNested,
	"FastBurning":        FieldFlag,
	"SlowBurning":        FieldFlag,
}

var SLOWindowStatusFields = map[string]FieldClass{
	"Window":    FieldEnum,
	"TotalLe":   FieldBucketed,
	"BadLe":     FieldBucketed,
	"BurnMilli": FieldRate,
}

// Status snapshots every tracker for /debug/slo. All counts are
// re-bucketed through BucketCeil on the way out.
func (e *SLOEngine) Status() SLOStatus {
	now := e.cfg.Now()
	st := SLOStatus{EvalUnixMs: now.UnixMilli()}
	e.mu.Lock()
	trackers := make([]*sloTracker, 0, len(e.trackers))
	for _, t := range e.trackers {
		trackers = append(trackers, t)
	}
	e.mu.Unlock()
	sort.Slice(trackers, func(i, j int) bool { return trackers[i].op < trackers[j].op })
	for _, t := range trackers {
		cs := SLOClassStatus{
			Op:                 t.op,
			ObjectiveMilli:     int64(e.cfg.Objective * 1000),
			LatencyThresholdNs: t.thresholdNs,
		}
		for _, w := range sloWindows {
			total, bad := w.ring(t).sums(now, w.dur(&e.cfg))
			cs.Windows = append(cs.Windows, SLOWindowStatus{
				Window:    w.name,
				TotalLe:   BucketCeil(int64(total)),
				BadLe:     BucketCeil(int64(bad)),
				BurnMilli: burnRateMilli(total, bad, e.cfg.Objective),
			})
		}
		e.mu.Lock()
		cs.FastBurning = t.breached[BreachFast]
		cs.SlowBurning = t.breached[BreachSlow]
		e.mu.Unlock()
		st.Classes = append(st.Classes, cs)
	}
	if st.Classes == nil {
		st.Classes = []SLOClassStatus{}
	}
	return st
}

// VerifySLOStatus checks a status snapshot against the leak budget:
// enum fields must satisfy the label-value rules, counts must be log2
// bucket bounds, and window names must come from the closed set.
func VerifySLOStatus(st SLOStatus) error {
	for _, c := range st.Classes {
		if err := verifyLabelValue(c.Op); err != nil {
			return err
		}
		if len(c.Windows) != len(sloWindows) {
			return &wideFieldError{field: "Windows"}
		}
		for i, w := range c.Windows {
			if w.Window != sloWindows[i].name {
				return &wideFieldError{field: "Window"}
			}
			if !IsBucketBound(w.TotalLe) {
				return &wideFieldError{field: "TotalLe"}
			}
			if !IsBucketBound(w.BadLe) {
				return &wideFieldError{field: "BadLe"}
			}
		}
	}
	return nil
}

// Handler serves the /debug/slo JSON view.
func (e *SLOEngine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Status())
	})
}
