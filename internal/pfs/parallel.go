package pfs

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"segshare/internal/pae"
)

// Per-chunk AES-GCM with independent nonces and per-chunk associated
// data is embarrassingly parallel, and the encoded layout is fully
// deterministic: chunk i's ciphertext occupies exactly
// [i*(ChunkSize+pae.Overhead), ...) of the blob. The one-shot paths here
// exploit both: a bounded pool of workers seals/opens chunks directly
// into their final slots of an exactly-sized buffer (no per-chunk
// allocation, no reassembly pass), then a single goroutine builds the
// Merkle tree and footer. The bytes produced are identical to the serial
// Writer's modulo the random nonces, and every integrity guarantee of
// the serial Reader (chunk auth, rebuilt-tree root check, stored
// inner-node comparison) is preserved on the parallel open path.

// maxDefaultWorkers caps the default pool: past ~8 workers AES-GCM on a
// single stream is memory-bandwidth-bound and more goroutines only add
// scheduling noise.
const maxDefaultWorkers = 8

// minParallelChunks is the small-file cutoff: below it the pool's
// startup cost exceeds the sealing work and the serial path wins.
const minParallelChunks = 4

// DefaultWorkers returns the default crypto worker-pool size,
// min(GOMAXPROCS, 8).
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxDefaultWorkers {
		n = maxDefaultWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}

// UsesParallel reports whether a one-shot Encrypt/Decrypt of a plaintext
// of the given size actually fans out to the pool under the given worker
// count, or takes the serial fallback. Exported so callers can label
// their metrics without duplicating the cutoff policy.
func UsesParallel(plainSize int64, workers int) bool {
	return workers > 1 && numChunks(plainSize) >= minParallelChunks
}

// chunkCtxErr is the per-chunk cancellation check shared by every
// one-shot path. A nil ctx (the non-cancellable callers) costs one
// comparison per chunk; a live ctx costs one atomic load. Cancellation
// granularity is therefore one chunk (≤ ChunkSize of crypto work) on
// both the serial and parallel paths.
func chunkCtxErr(ctx context.Context, verb string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("pfs: %s canceled: %w", verb, context.Cause(ctx))
	}
	return nil
}

// EncryptWorkers is Encrypt with a bounded worker pool sealing chunks
// concurrently. workers <= 1 (or a file below the parallel cutoff) falls
// back to the serial path; the encoded blob is byte-compatible either
// way.
func EncryptWorkers(fileKey pae.Key, fileID, plaintext []byte, workers int) ([]byte, error) {
	return AppendEncryptCtx(nil, nil, fileKey, fileID, plaintext, workers)
}

// EncryptWorkersCtx is EncryptWorkers with a cancellation context:
// workers stop sealing at the next chunk boundary once ctx ends and the
// call returns an error wrapping the context's cause. A nil ctx is
// never canceled.
func EncryptWorkersCtx(ctx context.Context, fileKey pae.Key, fileID, plaintext []byte, workers int) ([]byte, error) {
	return AppendEncryptCtx(ctx, nil, fileKey, fileID, plaintext, workers)
}

// AppendEncrypt appends the encoded blob for plaintext to dst and
// returns the extended slice. When dst has len(plaintext)+Overhead spare
// capacity no further allocation happens, which lets callers embed a
// protected blob directly inside a larger object (see internal/dedup)
// without an intermediate copy.
func AppendEncrypt(dst []byte, fileKey pae.Key, fileID, plaintext []byte, workers int) ([]byte, error) {
	return AppendEncryptCtx(nil, dst, fileKey, fileID, plaintext, workers)
}

// AppendEncryptCtx is AppendEncrypt with a cancellation context observed
// between chunks.
func AppendEncryptCtx(ctx context.Context, dst []byte, fileKey pae.Key, fileID, plaintext []byte, workers int) ([]byte, error) {
	plainSize := int64(len(plaintext))
	need := len(dst) + int(plainSize+Overhead(plainSize))
	if cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	if !UsesParallel(plainSize, workers) {
		buf := sliceWriter{data: dst}
		w, err := NewWriter(fileKey, fileID, &buf)
		if err != nil {
			return nil, err
		}
		// Feed the writer chunk-sized pieces so cancellation lands on
		// chunk boundaries; the encoded bytes are identical to a single
		// Write (the writer seals on the same boundaries either way).
		for off := int64(0); ; off += ChunkSize {
			if err := chunkCtxErr(ctx, "seal"); err != nil {
				return nil, err
			}
			end := min(off+ChunkSize, plainSize)
			if _, err := w.Write(plaintext[off:end]); err != nil {
				return nil, err
			}
			if end >= plainSize {
				break
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		return buf.data, nil
	}

	ck, err := chunkKey(fileKey)
	if err != nil {
		return nil, err
	}
	cipher, err := pae.NewCipher(ck)
	if err != nil {
		return nil, err
	}
	mk, err := macKey(fileKey)
	if err != nil {
		return nil, err
	}

	nc := numChunks(plainSize)
	if int64(workers) > nc {
		workers = int(nc)
	}
	out := dst[:need]
	body := out[len(dst):]
	leaves := make([][hashSize]byte, nc)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			aad := make([]byte, 8+len(fileID))
			copy(aad[8:], fileID)
			for {
				i := next.Add(1) - 1
				if i >= nc || failed.Load() {
					return
				}
				if err := chunkCtxErr(ctx, "seal"); err != nil {
					errs[wi] = err
					failed.Store(true)
					return
				}
				ptOff := i * ChunkSize
				ptEnd := min(ptOff+ChunkSize, plainSize)
				ctOff := i * (ChunkSize + pae.Overhead)
				ctLen := (ptEnd - ptOff) + pae.Overhead
				binary.BigEndian.PutUint64(aad, uint64(i))
				// Seal directly into the chunk's final slot; the
				// three-index slice pins capacity so AEAD output cannot
				// bleed into the next chunk's region.
				ct, err := cipher.AppendSeal(body[ctOff:ctOff:ctOff+ctLen], plaintext[ptOff:ptEnd], aad)
				if err != nil {
					errs[wi] = fmt.Errorf("pfs: seal chunk %d: %w", i, err)
					failed.Store(true)
					return
				}
				leaves[i] = leafHash(ct)
			}
		}(wi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	levels := buildTree(leaves)
	pos := (nc-1)*(ChunkSize+pae.Overhead) + (plainSize - (nc-1)*ChunkSize) + pae.Overhead
	for _, level := range levels[1:] {
		for _, node := range level {
			copy(body[pos:], node[:])
			pos += hashSize
		}
	}
	f := footer{plainSize: plainSize, numChunks: nc, root: levels[len(levels)-1][0]}
	copy(body[pos:], f.encode(mk))
	return out, nil
}

// DecryptWorkers is Decrypt with a bounded worker pool opening chunks
// concurrently into their exact offsets of the output buffer. It
// provides the same guarantees as the serial path: every chunk is
// authenticated, the Merkle tree is rebuilt from the chunk ciphertexts
// and checked against the authenticated root, and the stored inner-node
// region is compared against the rebuilt tree.
func DecryptWorkers(fileKey pae.Key, fileID, blob []byte, workers int) ([]byte, error) {
	return DecryptWorkersCtx(nil, fileKey, fileID, blob, workers)
}

// DecryptWorkersCtx is DecryptWorkers with a cancellation context:
// workers (and the serial fallback) stop opening at the next chunk
// boundary once ctx ends, so a disconnected client stops consuming
// crypto CPU within one chunk. A nil ctx is never canceled.
func DecryptWorkersCtx(ctx context.Context, fileKey pae.Key, fileID, blob []byte, workers int) ([]byte, error) {
	r, err := Open(fileKey, fileID, bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		return nil, err
	}
	if !UsesParallel(r.ftr.plainSize, workers) {
		if ctx == nil {
			var out bytes.Buffer
			out.Grow(int(r.Size()))
			if _, err := r.WriteTo(&out); err != nil {
				return nil, err
			}
			return out.Bytes(), nil
		}
		out := make([]byte, r.ftr.plainSize)
		for off := int64(0); off < r.ftr.plainSize; off += ChunkSize {
			if err := chunkCtxErr(ctx, "open"); err != nil {
				return nil, err
			}
			end := min(off+ChunkSize, r.ftr.plainSize)
			if _, err := r.ReadAt(out[off:end], off); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	nc := r.ftr.numChunks
	if int64(workers) > nc {
		workers = int(nc)
	}
	out := make([]byte, r.ftr.plainSize)
	leaves := make([][hashSize]byte, nc)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			aad := make([]byte, 8+len(fileID))
			copy(aad[8:], fileID)
			for {
				i := next.Add(1) - 1
				if i >= nc || failed.Load() {
					return
				}
				if err := chunkCtxErr(ctx, "open"); err != nil {
					errs[wi] = err
					failed.Store(true)
					return
				}
				// Open validated the blob's structure, so the chunk
				// extents index it in bounds by construction.
				off, ctLen := r.chunkExtent(i)
				ct := blob[off : off+ctLen]
				leaves[i] = leafHash(ct)
				binary.BigEndian.PutUint64(aad, uint64(i))
				ptOff := i * ChunkSize
				ptLen := ctLen - pae.Overhead
				if _, err := r.cipher.AppendOpen(out[ptOff:ptOff:ptOff+ptLen], ct, aad); err != nil {
					errs[wi] = ErrCorrupt
					failed.Store(true)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	levels := buildTree(leaves)
	if levels[len(levels)-1][0] != r.ftr.root {
		return nil, ErrCorrupt
	}
	off := r.chunksEnd
	for _, level := range levels[1:] {
		for _, node := range level {
			if !bytes.Equal(blob[off:off+hashSize], node[:]) {
				return nil, ErrCorrupt
			}
			off += hashSize
		}
	}
	return out, nil
}
