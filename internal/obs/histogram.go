package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumHistogramBuckets is the number of log₂ buckets. Bucket 0 counts the
// value 0; bucket i (1 ≤ i ≤ 64) counts values v with
// 2^(i-1) ≤ v < 2^i, i.e. values whose bit length is i. Bucket 64 ends at
// the maximum uint64, so every value has exactly one bucket.
const NumHistogramBuckets = 65

// Histogram is a fixed-memory, lock-free histogram over uint64 values
// (typically durations in nanoseconds) with log₂ bucket boundaries. All
// methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumHistogramBuckets]atomic.Uint64

	// exemplars is allocated on the first ObserveWithExemplar, so
	// histograms that never see a trace id (the vast majority) pay one
	// nil pointer per instrument and zero per observation.
	exemplars atomic.Pointer[exemplarSet]
}

// Exemplar links a histogram bucket to the most recent trace that landed
// in it. The trace id is a server-assigned sequence number (leak budget:
// no request content); the value is the raw observation so operators can
// see where in the bucket it fell.
type Exemplar struct {
	TraceID    uint64 `json:"traceId"`
	Value      uint64 `json:"value"`
	TimeUnixMs int64  `json:"ts"`
}

type exemplarSet struct {
	slots [NumHistogramBuckets]atomic.Pointer[Exemplar]
}

func newHistogram() *Histogram { return &Histogram{} }

// BucketIndex returns the bucket an observation of v lands in.
func BucketIndex(v uint64) int { return bits.Len64(v) }

// BucketUpperBound returns the inclusive upper bound of bucket i: the
// largest value the bucket counts.
func BucketUpperBound(i int) uint64 {
	switch {
	case i <= 0:
		return 0
	case i >= 64:
		return math.MaxUint64
	default:
		return 1<<uint(i) - 1
	}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[BucketIndex(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds. Negative durations
// (clock steps) are clamped to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// ObserveWithExemplar records one value and remembers traceID as the
// bucket's exemplar, replacing any previous one. A zero traceID records
// the value without an exemplar.
func (h *Histogram) ObserveWithExemplar(v uint64, traceID uint64) {
	h.Observe(v)
	if traceID == 0 {
		return
	}
	set := h.exemplars.Load()
	if set == nil {
		set = &exemplarSet{}
		if !h.exemplars.CompareAndSwap(nil, set) {
			set = h.exemplars.Load()
		}
	}
	set.slots[BucketIndex(v)].Store(&Exemplar{
		TraceID:    traceID,
		Value:      v,
		TimeUnixMs: time.Now().UnixMilli(),
	})
}

// ObserveDurationWithExemplar is ObserveWithExemplar for durations.
func (h *Histogram) ObserveDurationWithExemplar(d time.Duration, traceID uint64) {
	if d < 0 {
		d = 0
	}
	h.ObserveWithExemplar(uint64(d), traceID)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values. It wraps around on
// overflow, like Prometheus counters.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// HistogramBucket is one non-empty bucket in a snapshot.
type HistogramBucket struct {
	// UpperBound is the largest value counted by this bucket (inclusive).
	UpperBound uint64 `json:"le"`
	// Count is the number of observations in this bucket alone.
	Count uint64 `json:"count"`
	// Exemplar is the most recent trace that landed in this bucket, if
	// any observation carried one.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Because the
// buckets are read individually while writers proceed, a snapshot is not
// an atomic cut, but every recorded observation eventually appears.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram state, keeping only non-empty buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	set := h.exemplars.Load()
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := HistogramBucket{UpperBound: BucketUpperBound(i), Count: n}
		if set != nil {
			b.Exemplar = set.slots[i].Load()
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}
