// Command segshare-server runs one SeGShare enclave server (paper Fig. 1)
// with on-disk untrusted stores. The operator holds the CA files and the
// binary performs the §IV-A provisioning flow locally at startup: launch
// the enclave, attest it, and install a server certificate.
//
// Usage:
//
//	segshare-ca init -dir ./pki
//	segshare-server -pki ./pki -data ./data -addr 127.0.0.1:8443 \
//	    -dedup -hide-paths -rollback -guard counter -fso admin
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"segshare"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "segshare-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		pkiDir   = flag.String("pki", "./pki", "directory holding ca-cert.pem and ca-key.pem")
		dataDir  = flag.String("data", "./data", "directory for the untrusted stores")
		addr     = flag.String("addr", "127.0.0.1:8443", "listen address")
		host     = flag.String("host", "localhost", "hostname in the server certificate")
		fso      = flag.String("fso", "", "file system owner user ID (owns the root directory)")
		dedup    = flag.Bool("dedup", false, "enable deduplication (§V-A)")
		hide     = flag.Bool("hide-paths", false, "hide filenames and directory structure (§V-C)")
		rollback = flag.Bool("rollback", false, "enable individual-file rollback protection (§V-D)")
		guard    = flag.String("guard", "none", "whole-file-system guard: none|protmem|counter (§V-E)")
	)
	flag.Parse()

	certPEM, err := os.ReadFile(filepath.Join(*pkiDir, "ca-cert.pem"))
	if err != nil {
		return fmt.Errorf("read CA certificate: %w", err)
	}
	keyPEM, err := os.ReadFile(filepath.Join(*pkiDir, "ca-key.pem"))
	if err != nil {
		return fmt.Errorf("read CA key: %w", err)
	}
	authority, err := segshare.LoadCA(certPEM, keyPEM)
	if err != nil {
		return err
	}

	features := segshare.Features{
		Dedup:              *dedup,
		HidePaths:          *hide,
		RollbackProtection: *rollback,
	}
	switch *guard {
	case "none", "":
		features.Guard = segshare.GuardNone
	case "protmem":
		features.Guard = segshare.GuardProtectedMemory
	case "counter":
		features.Guard = segshare.GuardCounter
	default:
		return fmt.Errorf("unknown guard %q", *guard)
	}

	contentStore, err := segshare.NewDiskStore(filepath.Join(*dataDir, "content"))
	if err != nil {
		return err
	}
	groupStore, err := segshare.NewDiskStore(filepath.Join(*dataDir, "group"))
	if err != nil {
		return err
	}
	cfg := segshare.ServerConfig{
		CACertPEM:       certPEM,
		ContentStore:    contentStore,
		GroupStore:      groupStore,
		Features:        features,
		FileSystemOwner: *fso,
	}
	if features.Dedup {
		dedupStore, err := segshare.NewDiskStore(filepath.Join(*dataDir, "dedup"))
		if err != nil {
			return err
		}
		cfg.DedupStore = dedupStore
	}

	platform, err := segshare.NewPlatform(segshare.PlatformConfig{})
	if err != nil {
		return err
	}
	server, err := segshare.NewServer(platform, cfg)
	if err != nil {
		return err
	}
	defer server.Close()

	fmt.Printf("enclave measurement: %v\n", server.Measurement())
	if !server.HasCertificate() {
		if err := segshare.Provision(authority, platform, server, cfg, []string{*host}); err != nil {
			return fmt.Errorf("provision server certificate: %w", err)
		}
		fmt.Println("server certificate provisioned by CA")
	} else {
		fmt.Println("reusing persisted server certificate")
	}

	listenAddr, err := server.ListenAndServe(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving on %s (features: dedup=%v hide=%v rollback=%v guard=%s)\n",
		listenAddr, *dedup, *hide, *rollback, *guard)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
