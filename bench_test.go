package segshare_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VII-B). Each benchmark maps to an experiment in DESIGN.md
// §4; run `go run ./cmd/segshare-bench` for the paper-style series output
// and EXPERIMENTS.md for the paper-vs-measured comparison.
//
//	Fig. 3  -> BenchmarkFig3Upload / BenchmarkFig3Download
//	E2      -> BenchmarkMembershipFirstGroup*
//	Fig. 4  -> BenchmarkFig4Membership* / BenchmarkFig4Permission*
//	Fig. 5  -> BenchmarkFig5*
//	E6      -> (storage; see segshare-bench -exp storage and TestRunStorageOverheadTiny)
//	E7      -> BenchmarkAblationRevocation*
//	E8      -> BenchmarkAblationSwitchless*

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"segshare"
	"segshare/internal/baseline/hescheme"
	"segshare/internal/bench"
	"segshare/internal/enclave"
)

func benchEnv(b *testing.B, cfg bench.EnvConfig) *bench.Env {
	b.Helper()
	env, err := bench.NewEnv(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(env.Close)
	return env
}

func benchClient(b *testing.B, env *bench.Env, user string) *segshare.Client {
	b.Helper()
	c, err := env.NewClient(user)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func payloadOf(size int) []byte {
	payload := make([]byte, size)
	rand.New(rand.NewSource(int64(size))).Read(payload)
	return payload
}

var fig3Sizes = []int{64 << 10, 1 << 20, 8 << 20}

// BenchmarkFig3Upload reproduces the upload half of paper Fig. 3.
func BenchmarkFig3Upload(b *testing.B) {
	b.Run("segshare", func(b *testing.B) {
		env := benchEnv(b, bench.EnvConfig{})
		client := benchClient(b, env, "bench")
		for _, size := range fig3Sizes {
			payload := payloadOf(size)
			b.Run(sizeLabel(size), func(b *testing.B) {
				if err := client.Upload("/fig3.bin", payload); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := client.Upload("/fig3.bin", payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
	for _, profile := range plainProfiles() {
		b.Run(profile.name, func(b *testing.B) {
			env := profile.start(b)
			for _, size := range fig3Sizes {
				payload := payloadOf(size)
				b.Run(sizeLabel(size), func(b *testing.B) {
					if err := env.put("/fig3.bin", payload); err != nil {
						b.Fatal(err)
					}
					b.SetBytes(int64(size))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := env.put("/fig3.bin", payload); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkFig3Download reproduces the download half of paper Fig. 3.
func BenchmarkFig3Download(b *testing.B) {
	b.Run("segshare", func(b *testing.B) {
		env := benchEnv(b, bench.EnvConfig{})
		client := benchClient(b, env, "bench")
		for _, size := range fig3Sizes {
			if err := client.Upload("/fig3.bin", payloadOf(size)); err != nil {
				b.Fatal(err)
			}
			b.Run(sizeLabel(size), func(b *testing.B) {
				if err := client.DownloadTo("/fig3.bin", io.Discard); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := client.DownloadTo("/fig3.bin", io.Discard); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
	for _, profile := range plainProfiles() {
		b.Run(profile.name, func(b *testing.B) {
			env := profile.start(b)
			for _, size := range fig3Sizes {
				if err := env.put("/fig3.bin", payloadOf(size)); err != nil {
					b.Fatal(err)
				}
				b.Run(sizeLabel(size), func(b *testing.B) {
					if err := env.get("/fig3.bin"); err != nil {
						b.Fatal(err)
					}
					b.SetBytes(int64(size))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := env.get("/fig3.bin"); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkMembershipFirstGroupAdd/Revoke reproduce the paper's second
// experiment (E2): adding/revoking a user to/from their first group.
func BenchmarkMembershipFirstGroupAdd(b *testing.B) {
	env := benchEnv(b, bench.EnvConfig{})
	owner := benchClient(b, env, "owner")
	if err := env.Direct("owner").AddUser("owner", "g"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := owner.AddUser(fmt.Sprintf("fresh-%d", i), "g"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMembershipFirstGroupRevoke(b *testing.B) {
	env := benchEnv(b, bench.EnvConfig{})
	owner := benchClient(b, env, "owner")
	direct := env.Direct("owner")
	for i := 0; i < b.N; i++ {
		if err := direct.AddUser(fmt.Sprintf("fresh-%d", i), "g"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := owner.RemoveUser(fmt.Sprintf("fresh-%d", i), "g"); err != nil {
			b.Fatal(err)
		}
	}
}

var fig4Counts = []int{0, 10, 100, 1000}

// BenchmarkFig4MembershipAdd reproduces the membership series of Fig. 4.
func BenchmarkFig4MembershipAdd(b *testing.B) {
	for _, count := range fig4Counts {
		b.Run(fmt.Sprintf("pre=%d", count), func(b *testing.B) {
			env := benchEnv(b, bench.EnvConfig{})
			owner := benchClient(b, env, "owner")
			direct := env.Direct("owner")
			for i := 0; i < count; i++ {
				if err := direct.AddUser("subject", fmt.Sprintf("pre-%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := direct.AddUser("owner", "bench-group"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := owner.AddUser("subject", "bench-group"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4PermissionAdd reproduces the permission series of Fig. 4.
func BenchmarkFig4PermissionAdd(b *testing.B) {
	for _, count := range fig4Counts {
		b.Run(fmt.Sprintf("pre=%d", count), func(b *testing.B) {
			env := benchEnv(b, bench.EnvConfig{})
			owner := benchClient(b, env, "owner")
			direct := env.Direct("owner")
			if err := direct.Upload("/target", []byte("x")); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < count; i++ {
				if err := direct.SetPermission("/target", fmt.Sprintf("user:pre-%d", i), "r"); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := owner.SetPermission("/target", "user:bench", "rw"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5 reproduces Fig. 5: marginal 10 kB upload/download with
// rollback protection on/off under flat and binary-tree layouts.
func BenchmarkFig5(b *testing.B) {
	const fileSize = 10 << 10
	payload := payloadOf(fileSize)
	for _, structure := range []string{"flat", "tree"} {
		for _, rollbackOn := range []bool{false, true} {
			for _, x := range []int{4, 8} {
				name := fmt.Sprintf("%s/rollback=%v/x=%d", structure, rollbackOn, x)
				b.Run(name, func(b *testing.B) {
					features := segshare.Features{}
					if rollbackOn {
						features.RollbackProtection = true
						features.Guard = segshare.GuardCounter
					}
					env := benchEnv(b, bench.EnvConfig{Features: features})
					client := benchClient(b, env, "bench")
					direct := env.Direct("bench")
					n := (1 << x) - 1
					dirs := map[string]bool{"/": true}
					for i := 0; i < n; i++ {
						path := fig5BenchPath(structure, i, x, dirs, direct.Mkdir, b)
						if err := direct.Upload(path, payload); err != nil {
							b.Fatal(err)
						}
					}
					b.Run("upload", func(b *testing.B) {
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							path := fig5BenchPath(structure, n+i+1, x, dirs, direct.Mkdir, b)
							if err := client.Upload(path, payload); err != nil {
								b.Fatal(err)
							}
						}
					})
					b.Run("download", func(b *testing.B) {
						path := fig5BenchPath(structure, 0, x, dirs, direct.Mkdir, b)
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if err := client.DownloadTo(path, io.Discard); err != nil {
								b.Fatal(err)
							}
						}
					})
				})
			}
		}
	}
}

func fig5BenchPath(structure string, i, depth int, dirs map[string]bool, mkdir func(string) error, b *testing.B) string {
	if structure == "flat" || depth < 1 {
		return fmt.Sprintf("/f%06d.bin", i)
	}
	dir := "/"
	for level := 0; level < depth; level++ {
		dir = fmt.Sprintf("%sb%d/", dir, (i>>level)&1)
		if !dirs[dir] {
			if err := mkdir(dir); err != nil {
				b.Fatal(err)
			}
			dirs[dir] = true
		}
	}
	return fmt.Sprintf("%sf%06d.bin", dir, i)
}

// BenchmarkAblationRevocation quantifies objective P3 (E7): one
// membership revocation in SeGShare vs a full re-encrypting revocation in
// the HE baseline, for a group sharing 32×256 KiB files.
func BenchmarkAblationRevocation(b *testing.B) {
	const (
		files    = 32
		fileSize = 256 << 10
		members  = 16
	)
	b.Run("segshare", func(b *testing.B) {
		env := benchEnv(b, bench.EnvConfig{})
		owner := benchClient(b, env, "owner")
		direct := env.Direct("owner")
		payload := payloadOf(fileSize)
		for i := 0; i < members; i++ {
			if err := direct.AddUser(fmt.Sprintf("member-%d", i), "grp"); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < files; i++ {
			path := fmt.Sprintf("/shared-%d.bin", i)
			if err := direct.Upload(path, payload); err != nil {
				b.Fatal(err)
			}
			if err := direct.SetPermission(path, "grp", "rw"); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := owner.RemoveUser("member-0", "grp"); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := owner.AddUser("member-0", "grp"); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("he-baseline", func(b *testing.B) {
		payload := payloadOf(fileSize)
		users := make([]string, members+1)
		users[0] = "owner"
		for i := 0; i < members; i++ {
			users[i+1] = fmt.Sprintf("member-%d", i)
		}
		system := hescheme.New()
		for _, u := range users {
			if err := system.RegisterUser(u); err != nil {
				b.Fatal(err)
			}
		}
		upload := func() {
			for i := 0; i < files; i++ {
				if err := system.Upload("owner", fmt.Sprintf("/shared-%d.bin", i), payload, users[1:]...); err != nil {
					b.Fatal(err)
				}
			}
		}
		upload()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := system.RevokeEverywhere("owner", "member-0"); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			upload()
			b.StartTimer()
		}
	})
}

// BenchmarkAblationSwitchless compares switchless and blocking enclave
// transitions on the same 1 MiB upload (E8, paper §VI).
func BenchmarkAblationSwitchless(b *testing.B) {
	payload := payloadOf(1 << 20)
	for _, mode := range []enclave.CallMode{enclave.ModeSwitchless, enclave.ModeBlocking} {
		name := "switchless"
		if mode == enclave.ModeBlocking {
			name = "blocking"
		}
		b.Run(name, func(b *testing.B) {
			env := benchEnv(b, bench.EnvConfig{Bridge: segshare.BridgeConfig{Mode: mode}})
			client := benchClient(b, env, "bench")
			if err := client.Upload("/sw.bin", payload); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.Upload("/sw.bin", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeLabel(size int) string {
	switch {
	case size >= 1<<20:
		return fmt.Sprintf("%dMiB", size>>20)
	case size >= 1<<10:
		return fmt.Sprintf("%dKiB", size>>10)
	default:
		return fmt.Sprintf("%dB", size)
	}
}

// plainProfiles adapts the baseline servers for the benchmark loops.
type plainProfile struct {
	name  string
	start func(b *testing.B) *plainEnv
}

type plainEnv struct {
	env *bench.PlainDAVEnv
}

func (p *plainEnv) put(path string, payload []byte) error {
	return bench.DAVPut(p.env.Client, p.env.Base+path, payload)
}

func (p *plainEnv) get(path string) error {
	return bench.DAVGet(p.env.Client, p.env.Base+path)
}

func plainProfiles() []plainProfile {
	mk := func(name string) plainProfile {
		return plainProfile{
			name: name,
			start: func(b *testing.B) *plainEnv {
				b.Helper()
				env, err := bench.NewPlainDAVByName(name)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(env.Close)
				return &plainEnv{env: env}
			},
		}
	}
	return []plainProfile{mk("apache"), mk("nginx")}
}
