package dedup

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"segshare/internal/store"
)

func newStore(t *testing.T) (*Store, *store.Adversary) {
	t.Helper()
	adv := store.NewAdversary(store.NewMemory())
	s, err := New(adv, []byte("root-key"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, adv
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newStore(t)
	content := []byte("shared report contents")
	hName, dup, err := s.Put(content)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if dup {
		t.Fatal("first Put reported duplicate")
	}
	got, err := s.Get(hName)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("Get = %q", got)
	}
}

func TestDeduplication(t *testing.T) {
	s, _ := newStore(t)
	content := bytes.Repeat([]byte("x"), 10_000)

	h1, _, err := s.Put(content)
	if err != nil {
		t.Fatal(err)
	}
	size1, err := s.TotalBytes()
	if err != nil {
		t.Fatal(err)
	}

	// Same content again (e.g. uploaded by a different group, §V-A).
	h2, dup, err := s.Put(content)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Fatal("second Put not reported as duplicate")
	}
	if h1 != h2 {
		t.Fatalf("content addresses differ: %s vs %s", h1, h2)
	}
	size2, err := s.TotalBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Only the tiny reference index may have grown.
	if size2-size1 > 1024 {
		t.Fatalf("duplicate Put grew store by %d bytes", size2-size1)
	}

	if n, err := s.RefCount(h1); err != nil || n != 2 {
		t.Fatalf("RefCount = %d, %v", n, err)
	}

	// Different content gets a different address.
	h3, dup, err := s.Put([]byte("different"))
	if err != nil {
		t.Fatal(err)
	}
	if dup || h3 == h1 {
		t.Fatalf("different content: dup=%v h=%s", dup, h3)
	}
}

func TestPutFromStreamingMatchesPut(t *testing.T) {
	s, _ := newStore(t)
	content := bytes.Repeat([]byte("stream me "), 5000)

	h1, dup, err := s.PutFrom(bytes.NewReader(content))
	if err != nil {
		t.Fatalf("PutFrom: %v", err)
	}
	if dup {
		t.Fatal("fresh PutFrom reported duplicate")
	}
	h2, dup, err := s.Put(content)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || !dup {
		t.Fatalf("Put after PutFrom: h1=%s h2=%s dup=%v", h1, h2, dup)
	}
	// Streaming again hits the temp-then-delete path.
	h3, dup, err := s.PutFrom(bytes.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h1 || !dup {
		t.Fatalf("second PutFrom: h=%s dup=%v", h3, dup)
	}
	if n, _ := s.RefCount(h1); n != 3 {
		t.Fatalf("RefCount = %d, want 3", n)
	}
	got, err := s.Get(h1)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("Get after streams: %v", err)
	}
}

func TestReleaseRefcounting(t *testing.T) {
	s, _ := newStore(t)
	content := []byte("refcounted")
	hName, _, err := s.Put(content)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(content); err != nil {
		t.Fatal(err)
	}

	removed, err := s.Release(hName)
	if err != nil || removed {
		t.Fatalf("first Release: removed=%v err=%v", removed, err)
	}
	if _, err := s.Get(hName); err != nil {
		t.Fatalf("object gone after first release: %v", err)
	}

	removed, err = s.Release(hName)
	if err != nil || !removed {
		t.Fatalf("final Release: removed=%v err=%v", removed, err)
	}
	if _, err := s.Get(hName); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after removal: want ErrNotFound, got %v", err)
	}
	if _, err := s.Release(hName); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Release after removal: want ErrNotFound, got %v", err)
	}
	if n, _ := s.RefCount(hName); n != 0 {
		t.Fatalf("RefCount after removal = %d", n)
	}
}

func TestGetUnknown(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Get("doesnotexist"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestTamperedObjectDetected(t *testing.T) {
	s, adv := newStore(t)
	hName, _, err := s.Put([]byte("sensitive"))
	if err != nil {
		t.Fatal(err)
	}
	if err := adv.FlipBit(hName, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(hName); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered Get: want ErrCorrupt, got %v", err)
	}
}

func TestSwappedObjectsDetected(t *testing.T) {
	s, adv := newStore(t)
	h1, _, err := s.Put([]byte("content one"))
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := s.Put([]byte("content two"))
	if err != nil {
		t.Fatal(err)
	}
	// The adversary swaps the two encrypted objects. Both decrypt fine,
	// but the address↔content binding must catch the swap.
	o1, err := adv.Get(h1)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := adv.Get(h2)
	if err != nil {
		t.Fatal(err)
	}
	if err := adv.Put(h1, o2); err != nil {
		t.Fatal(err)
	}
	if err := adv.Put(h2, o1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(h1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped Get h1: want ErrCorrupt, got %v", err)
	}
	if _, err := s.Get(h2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped Get h2: want ErrCorrupt, got %v", err)
	}
}

func TestTamperedRefIndexDetected(t *testing.T) {
	s, adv := newStore(t)
	if _, _, err := s.Put([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := adv.FlipBit(refsName, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RefCount("anything"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s, _ := newStore(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the goroutines share content, half are unique.
			content := []byte(fmt.Sprintf("unique-%d", i))
			if i%2 == 0 {
				content = []byte("shared")
			}
			if _, _, err := s.Put(content); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	h := s.contentName([]byte("shared"))
	if n, err := s.RefCount(h); err != nil || n != 8 {
		t.Fatalf("shared RefCount = %d, %v", n, err)
	}
}

// Property: Put/Get round-trips and duplicate detection track a reference
// map for arbitrary content sequences.
func TestQuickDedupSemantics(t *testing.T) {
	s, _ := newStore(t)
	seen := make(map[string]bool)
	prop := func(content []byte) bool {
		hName, dup, err := s.Put(content)
		if err != nil {
			return false
		}
		if dup != seen[hName] {
			return false
		}
		seen[hName] = true
		got, err := s.Get(hName)
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

type failingReader struct{ err error }

func (f failingReader) Read([]byte) (int, error) { return 0, f.err }

func TestPutFromPropagatesReaderError(t *testing.T) {
	s, _ := newStore(t)
	wantErr := errors.New("upload interrupted")
	if _, _, err := s.PutFrom(failingReader{err: wantErr}); !errors.Is(err, wantErr) {
		t.Fatalf("want reader error, got %v", err)
	}
	// The store holds no stray temp objects afterwards... PutFrom fails
	// before the temp write, so the backend must be empty.
	total, err := s.TotalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Fatalf("store holds %d bytes after failed upload", total)
	}
}
