package enctls

import (
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"segshare/internal/enclave"
)

// Bridge operation names shared by the two halves.
const (
	opOpen  = "enctls.open"  // ecall: new client connection
	opData  = "enctls.data"  // ecall: bytes from the network
	opEOF   = "enctls.eof"   // ecall: network read side finished
	opWrite = "enctls.write" // ocall: bytes to the network
	opClose = "enctls.close" // ocall: enclave closed the connection
)

// ErrEndpointClosed is returned by Accept after Close.
var ErrEndpointClosed = errors.New("enctls: endpoint closed")

// TrustedEndpoint is the enclave-resident half: it turns bridge traffic
// into net.Conns, wraps each in a TLS server connection using the
// enclave-held certificate, and exposes them through the net.Listener
// interface so the request handler (net/http) can serve on it directly.
//
// The TLS configuration always requires and verifies a client certificate
// against the configured CA pool, implementing the mutual authentication
// of paper §IV-A.
type TrustedEndpoint struct {
	bridge *enclave.Bridge

	mu       sync.Mutex
	tlsConf  *tls.Config
	conns    map[uint64]*trustedConn
	accept   chan net.Conn
	closed   bool
	closeErr chan struct{}
}

var _ net.Listener = (*TrustedEndpoint)(nil)

// NewTrustedEndpoint registers the trusted half on the bridge. tlsConf
// must carry the server certificate and the client CA pool; it is
// hardened here (min TLS 1.2, client certs required).
func NewTrustedEndpoint(bridge *enclave.Bridge, tlsConf *tls.Config) *TrustedEndpoint {
	conf := tlsConf.Clone()
	if conf.MinVersion == 0 {
		conf.MinVersion = tls.VersionTLS12
	}
	conf.ClientAuth = tls.RequireAndVerifyClientCert
	e := &TrustedEndpoint{
		bridge:   bridge,
		tlsConf:  conf,
		conns:    make(map[uint64]*trustedConn),
		accept:   make(chan net.Conn),
		closeErr: make(chan struct{}),
	}
	bridge.RegisterECall(opOpen, e.handleOpen)
	bridge.RegisterECall(opData, e.handleData)
	bridge.RegisterECall(opEOF, e.handleEOF)
	return e
}

// SetCertificate replaces the server certificate, used when the CA rolls
// the enclave's certificate at runtime (paper §IV-A).
func (e *TrustedEndpoint) SetCertificate(cert tls.Certificate) {
	e.mu.Lock()
	defer e.mu.Unlock()
	conf := e.tlsConf.Clone()
	conf.Certificates = []tls.Certificate{cert}
	e.tlsConf = conf
}

func splitID(payload []byte) (uint64, []byte, error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("enctls: short bridge payload")
	}
	return binary.BigEndian.Uint64(payload), payload[8:], nil
}

func (e *TrustedEndpoint) handleOpen(payload []byte) ([]byte, error) {
	id, _, err := splitID(payload)
	if err != nil {
		return nil, err
	}
	conn := newTrustedConn(id, e.writeOut, e.closeOut)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEndpointClosed
	}
	e.conns[id] = conn
	tlsConf := e.tlsConf
	e.mu.Unlock()

	tlsConn := tls.Server(conn, tlsConf)
	select {
	case e.accept <- tlsConn:
		return nil, nil
	case <-e.closeErr:
		return nil, ErrEndpointClosed
	}
}

func (e *TrustedEndpoint) handleData(payload []byte) ([]byte, error) {
	id, data, err := splitID(payload)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	conn := e.conns[id]
	e.mu.Unlock()
	if conn == nil {
		return nil, fmt.Errorf("enctls: data for unknown connection %d", id)
	}
	return nil, conn.deliver(data)
}

func (e *TrustedEndpoint) handleEOF(payload []byte) ([]byte, error) {
	id, _, err := splitID(payload)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	conn := e.conns[id]
	e.mu.Unlock()
	if conn != nil {
		conn.deliverEOF()
	}
	return nil, nil
}

func (e *TrustedEndpoint) writeOut(id uint64, p []byte) error {
	payload := make([]byte, 8+len(p))
	binary.BigEndian.PutUint64(payload, id)
	copy(payload[8:], p)
	_, err := e.bridge.OCall(opWrite, payload)
	return err
}

func (e *TrustedEndpoint) closeOut(id uint64) {
	e.mu.Lock()
	delete(e.conns, id)
	e.mu.Unlock()
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], id)
	// Best effort: the terminator may already be gone.
	_, _ = e.bridge.OCall(opClose, payload[:])
}

// Accept implements net.Listener. The returned conns are *tls.Conn with
// mutual authentication; the handshake runs lazily on first read/write.
func (e *TrustedEndpoint) Accept() (net.Conn, error) {
	select {
	case conn := <-e.accept:
		return conn, nil
	case <-e.closeErr:
		return nil, ErrEndpointClosed
	}
}

// Close implements net.Listener.
func (e *TrustedEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]*trustedConn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	close(e.closeErr)
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// Addr implements net.Listener.
func (e *TrustedEndpoint) Addr() net.Addr { return bridgeAddr{} }
