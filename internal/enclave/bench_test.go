package enclave

import (
	"testing"
	"time"
)

// BenchmarkBridgeECall isolates the per-call cost of the two bridge
// modes, the microscopic version of the E8 ablation.
func BenchmarkBridgeECall(b *testing.B) {
	for _, tt := range []struct {
		name string
		mode CallMode
	}{
		{name: "switchless", mode: ModeSwitchless},
		{name: "blocking", mode: ModeBlocking},
	} {
		b.Run(tt.name, func(b *testing.B) {
			br := NewBridge(BridgeConfig{Mode: tt.mode, SwitchLatency: 6 * time.Microsecond})
			defer br.Close()
			br.RegisterECall("noop", func(p []byte) ([]byte, error) { return p, nil })
			payload := make([]byte, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := br.ECall("noop", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSealUnseal(b *testing.B) {
	p, err := NewPlatform(PlatformConfig{})
	if err != nil {
		b.Fatal(err)
	}
	e, err := p.Launch(CodeIdentity{Name: "bench", Version: 1})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed, err := e.Seal(data, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Unseal(sealed, nil); err != nil {
			b.Fatal(err)
		}
	}
}
