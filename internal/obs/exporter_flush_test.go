package obs

import (
	"testing"
	"time"
)

// TestExporterFlushSynchronous: Flush returns only after every record
// enqueued before the call has been offered to the sink, without
// stopping the exporter.
func TestExporterFlushSynchronous(t *testing.T) {
	sink := NewMemorySink()
	// A long flush interval so delivery can only come from Flush.
	e := NewExporter(sink, ExporterOptions{FlushInterval: time.Hour, BatchSize: 1024})
	defer e.Close()

	for i := 0; i < 10; i++ {
		if !e.EnqueueEvent(testEvent("fs_get", uint64(i))) {
			t.Fatal("enqueue rejected")
		}
	}
	e.Flush()
	if got := len(sink.Records()); got != 10 {
		t.Fatalf("sink has %d records after Flush, want 10", got)
	}

	// The exporter keeps running: more records, another flush.
	e.EnqueueEvent(testEvent("fs_put", 99))
	e.Flush()
	if got := len(sink.Records()); got != 11 {
		t.Fatalf("sink has %d records after second Flush, want 11", got)
	}
}

// TestExporterFlushAfterClose: Flush on a stopped (or nil) exporter is a
// safe no-op — the drain path must tolerate any shutdown ordering.
func TestExporterFlushAfterClose(t *testing.T) {
	sink := NewMemorySink()
	e := NewExporter(sink, ExporterOptions{})
	e.EnqueueEvent(testEvent("fs_get", 1))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Flush()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Flush blocked on a closed exporter")
	}
	var nilExp *Exporter
	nilExp.Flush()
}
