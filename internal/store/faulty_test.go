package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFaultPlanFailAtOp(t *testing.T) {
	plan := NewFaultPlan()
	injected := errors.New("boom")
	b := NewFaultyWithPlan(NewMemory(), plan)

	plan.FailAtOp(2, injected)
	if err := b.Put("a", []byte("1")); err != nil {
		t.Fatalf("op 1 should succeed: %v", err)
	}
	if err := b.Put("b", []byte("2")); !errors.Is(err, injected) {
		t.Fatalf("op 2 should fail, got %v", err)
	}
	// A one-shot fault: later mutations succeed again.
	if err := b.Put("c", []byte("3")); err != nil {
		t.Fatalf("op 3 should succeed after transient fault: %v", err)
	}
	if got := plan.Ops(); got != 3 {
		t.Fatalf("Ops() = %d, want 3", got)
	}
}

func TestFaultPlanKillAtOpAndRevive(t *testing.T) {
	plan := NewFaultPlan()
	injected := errors.New("killed")
	b := NewFaultyWithPlan(NewMemory(), plan)

	plan.KillAtOp(1, injected)
	if err := b.Put("a", nil); !errors.Is(err, injected) {
		t.Fatalf("op 1 should fail, got %v", err)
	}
	if err := b.Delete("a"); !errors.Is(err, injected) {
		t.Fatalf("killed plan should keep failing, got %v", err)
	}
	// Reads are unaffected: a killed process cannot issue them anyway, and
	// the recovery pass after Revive must be able to scan the store.
	if _, err := b.Get("missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("get during kill should pass through, got %v", err)
	}
	plan.Revive()
	if err := b.Put("a", []byte("x")); err != nil {
		t.Fatalf("put after Revive: %v", err)
	}
}

func TestFaultPlanSharedAcrossBackends(t *testing.T) {
	plan := NewFaultPlan()
	injected := errors.New("boom")
	b1 := NewFaultyWithPlan(NewMemory(), plan)
	b2 := NewFaultyWithPlan(NewMemory(), plan)

	plan.FailAtOp(2, injected)
	if err := b1.Put("a", nil); err != nil {
		t.Fatalf("first backend op 1: %v", err)
	}
	if err := b2.Put("b", nil); !errors.Is(err, injected) {
		t.Fatalf("second backend should see the shared op 2 fault, got %v", err)
	}
}

func TestDiskRenameCompletesAfterCrash(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("old", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between the new object's write and the old one's
	// removal: both objects exist with the same payload.
	if err := d.writeObject(d.fileFor("new"), "new", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("old", "new"); err != nil {
		t.Fatalf("rename retry should complete the interrupted rename: %v", err)
	}
	if ok, _ := d.Exists("old"); ok {
		t.Fatal("old object should be gone after completed rename")
	}
	if data, err := d.Get("new"); err != nil || string(data) != "payload" {
		t.Fatalf("new object: %q, %v", data, err)
	}

	// A genuine collision (different payloads) still errors.
	if err := d.Put("src", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("dst", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("src", "dst"); !errors.Is(err, ErrExist) {
		t.Fatalf("conflicting rename should fail with ErrExist, got %v", err)
	}
}

func TestDiskSweepsTempFilesOnOpen(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("keep", []byte("x")); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, ".tmp-123456")
	if err := os.WriteFile(stale, []byte("torn write"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDisk(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file should be swept on open, got %v", err)
	}
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if data, err := d2.Get("keep"); err != nil || string(data) != "x" {
		t.Fatalf("object should survive the sweep: %q, %v", data, err)
	}
}
