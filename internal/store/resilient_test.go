package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"segshare/internal/obs"
)

var errTransient = errors.New("transient backend fault")

// fastOpts returns options tuned for deterministic tests: no real
// backoff sleeps, injectable clock.
func fastOpts(clock *fakeClock) ResilientOptions {
	o := ResilientOptions{
		RetryBase: time.Nanosecond,
		RetryMax:  time.Nanosecond,
		Obs:       obs.NewRegistry(),
		Sleep:     func(time.Duration) {},
	}
	if clock != nil {
		o.Now = clock.now
	}
	return o
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// countingBackend counts how often each op reached the real backend.
type countingBackend struct {
	Backend
	gets    atomic.Int32
	puts    atomic.Int32
	deletes atomic.Int32
}

func (c *countingBackend) Get(name string) ([]byte, error) {
	c.gets.Add(1)
	return c.Backend.Get(name)
}

func (c *countingBackend) Put(name string, data []byte) error {
	c.puts.Add(1)
	return c.Backend.Put(name, data)
}

func (c *countingBackend) Delete(name string) error {
	c.deletes.Add(1)
	return c.Backend.Delete(name)
}

func TestResilientRetriesTransientFaults(t *testing.T) {
	faulty := NewFaulty(NewMemory())
	opts := fastOpts(nil)
	r := NewResilient(faulty, "content", opts)

	faulty.FailAfter("put", 1, errTransient)
	if err := r.Put("a", []byte("v")); err != nil {
		t.Fatalf("Put with one transient fault = %v, want success via retry", err)
	}
	if got, err := r.Get("a"); err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}

	faulty.FailAfter("get", 1, errTransient)
	if got, err := r.Get("a"); err != nil || string(got) != "v" {
		t.Fatalf("Get with one transient fault = %q, %v", got, err)
	}
}

func TestResilientSemanticErrorsNotRetried(t *testing.T) {
	counting := &countingBackend{Backend: NewMemory()}
	r := NewResilient(counting, "content", fastOpts(nil))

	if _, err := r.Get("absent"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get(absent) = %v, want ErrNotExist", err)
	}
	if n := counting.gets.Load(); n != 1 {
		t.Fatalf("ErrNotExist was retried: %d backend attempts", n)
	}
	if err := r.Delete("absent"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Delete(absent) = %v, want ErrNotExist", err)
	}
	if n := counting.deletes.Load(); n != 1 {
		t.Fatalf("Delete ErrNotExist was retried: %d backend attempts", n)
	}
}

func TestResilientDeadline(t *testing.T) {
	plan := NewFaultPlan()
	opts := fastOpts(nil)
	opts.ReadDeadline = 10 * time.Millisecond
	opts.MutationDeadline = 10 * time.Millisecond
	counting := &countingBackend{Backend: NewFaultyWithPlan(NewMemory(), plan)}
	r := NewResilient(counting, "content", opts)

	if err := r.Put("a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	plan.SetLatency(300 * time.Millisecond)
	start := time.Now()
	_, err := r.Get("a")
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Get past deadline = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("deadline did not cut the wait: %v", elapsed)
	}
	// A deadline expiry must not be retried: the abandoned attempt may
	// still apply in its worker. Wait for the hung worker to drain, then
	// confirm exactly one dispatch happened.
	time.Sleep(400 * time.Millisecond)
	if n := counting.gets.Load(); n != 1 {
		t.Fatalf("deadline-exceeded Get dispatched %d times, want exactly 1", n)
	}
}

func TestResilientDeleteRetryTreatsNotExistAsSuccess(t *testing.T) {
	// The backend applies the delete but loses the acknowledgment: the
	// retry sees ErrNotExist, which must be reported as success.
	inner := NewMemory()
	var failNext atomic.Bool
	hook := &hookBackend{Backend: inner, onDelete: func(name string) error {
		err := inner.Delete(name)
		if failNext.CompareAndSwap(true, false) && err == nil {
			return errTransient // applied, but the answer was lost
		}
		return err
	}}
	r := NewResilient(hook, "content", fastOpts(nil))

	if err := r.Put("a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	failNext.Store(true)
	if err := r.Delete("a"); err != nil {
		t.Fatalf("Delete whose first attempt applied = %v, want success", err)
	}
	if ok, _ := r.Exists("a"); ok {
		t.Fatal("object still present")
	}
	// A plain Delete of an absent object still reports ErrNotExist.
	if err := r.Delete("a"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Delete(absent) = %v, want ErrNotExist", err)
	}
}

type hookBackend struct {
	Backend
	onDelete func(name string) error
}

func (h *hookBackend) Delete(name string) error { return h.onDelete(name) }

func TestResilientBreakerLifecycle(t *testing.T) {
	clock := newFakeClock()
	plan := NewFaultPlan()
	counting := &countingBackend{Backend: NewFaultyWithPlan(NewMemory(), plan)}

	opts := fastOpts(clock)
	opts.Retries = -1 // no retries: each logical op is one attempt
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = time.Second
	opts.BreakerProbes = 2

	var mu sync.Mutex
	var transitions []string
	opts.OnState = func(from, to BreakerState) {
		mu.Lock()
		defer mu.Unlock()
		transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
	}
	r := NewResilient(counting, "content", opts)

	if err := r.Put("a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if r.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", r.State())
	}

	// Brownout: every mutation fails. Threshold consecutive failures trip
	// the breaker.
	plan.KillAtOp(1, errTransient)
	for i := 0; i < 3; i++ {
		if err := r.Put("a", []byte("x")); !errors.Is(err, errTransient) {
			t.Fatalf("Put %d = %v, want injected fault", i, err)
		}
	}
	if r.State() != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, r.State())
	}

	// Open: mutations fail fast without reaching the backend...
	before := counting.puts.Load()
	if err := r.Put("a", []byte("x")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Put while open = %v, want ErrCircuitOpen", err)
	}
	if counting.puts.Load() != before {
		t.Fatal("open breaker still dispatched the mutation")
	}
	if r.MutationsAllowed() {
		t.Fatal("MutationsAllowed while open before cooldown")
	}
	// ...but reads pass through.
	if got, err := r.Get("a"); err != nil || string(got) != "v" {
		t.Fatalf("Get while open = %q, %v", got, err)
	}

	// Cooldown elapses while the backend is still dead: the half-open
	// probe fails and the breaker re-opens.
	clock.advance(2 * time.Second)
	if !r.MutationsAllowed() {
		t.Fatal("MutationsAllowed after cooldown = false, want half-open probe admission")
	}
	if err := r.Put("a", []byte("x")); !errors.Is(err, errTransient) {
		t.Fatalf("probe against dead backend = %v, want injected fault", err)
	}
	if r.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", r.State())
	}

	// Backend recovers; after another cooldown, probe successes close it.
	plan.Revive()
	clock.advance(2 * time.Second)
	for i := 0; i < 2; i++ {
		if err := r.Put("a", []byte("y")); err != nil {
			t.Fatalf("probe %d = %v, want success", i, err)
		}
	}
	if r.State() != BreakerClosed {
		t.Fatalf("state after %d probe successes = %v, want closed", 2, r.State())
	}
	if err := r.Put("a", []byte("z")); err != nil {
		t.Fatalf("Put after recovery = %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{
		"closed->open",
		"open->half_open", "half_open->open",
		"open->half_open", "half_open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestResilientWorkerPoolSaturation(t *testing.T) {
	plan := NewFaultPlan()
	opts := fastOpts(nil)
	opts.Workers = 1
	opts.Retries = -1
	opts.ReadDeadline = 5 * time.Millisecond
	r := NewResilient(NewFaultyWithPlan(NewMemory(), plan), "content", opts)

	if err := r.Put("a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Hang the single worker past its deadline, then race a second read
	// in while the first is still pinned.
	plan.SetLatency(300 * time.Millisecond)
	if _, err := r.Get("a"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("first Get = %v, want ErrDeadlineExceeded", err)
	}
	if _, err := r.Get("a"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("second Get = %v, want ErrSaturated", err)
	}
	// Once the hung op drains, the pool serves again.
	plan.SetLatency(0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := r.Get("a"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestResilientConcurrentStress(t *testing.T) {
	plan := NewFaultPlan()
	opts := fastOpts(nil)
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = time.Millisecond
	r := NewResilient(NewFaultyWithPlan(NewMemory(), plan), "content", opts)

	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%3 == 0 {
				plan.KillAtOp(1, errTransient)
			} else {
				plan.Revive()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("obj-%d", g)
			for i := 0; i < 100; i++ {
				_ = r.Put(name, []byte("v"))
				_, _ = r.Get(name)
				_, _ = r.Exists(name)
				_ = r.Delete(name)
				_ = r.MutationsAllowed()
				_ = r.State()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
}
