package hescheme

import (
	"bytes"
	"errors"
	"testing"
)

func newSystem(t *testing.T, users ...string) *System {
	t.Helper()
	s := New()
	for _, u := range users {
		if err := s.RegisterUser(u); err != nil {
			t.Fatalf("RegisterUser(%s): %v", u, err)
		}
	}
	return s
}

func TestUploadDownload(t *testing.T) {
	s := newSystem(t, "alice", "bob")
	content := []byte("hybrid encrypted payload")
	if err := s.Upload("alice", "/f", content, "bob"); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	for _, u := range []string{"alice", "bob"} {
		got, err := s.Download(u, "/f")
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("%s Download: %q %v", u, got, err)
		}
	}
}

func TestNoAccessWithoutLockbox(t *testing.T) {
	s := newSystem(t, "alice", "eve")
	if err := s.Upload("alice", "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Download("eve", "/f"); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("eve Download: %v", err)
	}
	if _, err := s.Download("alice", "/missing"); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("missing file: %v", err)
	}
	if err := s.Upload("ghost", "/g", []byte("x")); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown owner: %v", err)
	}
}

func TestGrantThenDownload(t *testing.T) {
	s := newSystem(t, "alice", "bob", "carol")
	if err := s.Upload("alice", "/f", []byte("shared"), "bob"); err != nil {
		t.Fatal(err)
	}
	// bob — any key holder — can extend access: the scheme cannot stop
	// him, which is part of why cryptographic ACLs are weak here.
	if err := s.Grant("bob", "/f", "carol"); err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if got, err := s.Download("carol", "/f"); err != nil || string(got) != "shared" {
		t.Fatalf("carol Download: %q %v", got, err)
	}
	if err := s.Grant("carol", "/missing", "bob"); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("grant on missing file: %v", err)
	}
}

func TestRevokeReencryptsAndRewraps(t *testing.T) {
	s := newSystem(t, "alice", "bob", "carol", "dave")
	content := bytes.Repeat([]byte("data"), 10_000)
	if err := s.Upload("alice", "/f", content, "bob", "carol", "dave"); err != nil {
		t.Fatal(err)
	}
	cost, err := s.Revoke("alice", "/f", "bob")
	if err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if cost.ReencryptedBytes != int64(len(content)) {
		t.Fatalf("ReencryptedBytes = %d, want %d", cost.ReencryptedBytes, len(content))
	}
	if cost.RewrappedKeys != 3 { // alice, carol, dave
		t.Fatalf("RewrappedKeys = %d, want 3", cost.RewrappedKeys)
	}
	if _, err := s.Download("bob", "/f"); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("bob after revoke: %v", err)
	}
	for _, u := range []string{"alice", "carol", "dave"} {
		if got, err := s.Download(u, "/f"); err != nil || !bytes.Equal(got, content) {
			t.Fatalf("%s after revoke: %v", u, err)
		}
	}
}

func TestRevokeEverywhere(t *testing.T) {
	s := newSystem(t, "alice", "bob")
	for _, path := range []string{"/a", "/b", "/c"} {
		if err := s.Upload("alice", path, bytes.Repeat([]byte("x"), 1000), "bob"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Upload("alice", "/private", []byte("alice only")); err != nil {
		t.Fatal(err)
	}
	cost, err := s.RevokeEverywhere("alice", "bob")
	if err != nil {
		t.Fatalf("RevokeEverywhere: %v", err)
	}
	if cost.ReencryptedBytes != 3000 {
		t.Fatalf("ReencryptedBytes = %d, want 3000", cost.ReencryptedBytes)
	}
	if cost.RewrappedKeys != 3 {
		t.Fatalf("RewrappedKeys = %d, want 3", cost.RewrappedKeys)
	}
	for _, path := range []string{"/a", "/b", "/c"} {
		if _, err := s.Download("bob", path); !errors.Is(err, ErrNoAccess) {
			t.Fatalf("bob on %s after revoke: %v", path, err)
		}
	}
}

func TestStoredBytesGrowsWithMembers(t *testing.T) {
	s := newSystem(t, "alice", "bob", "carol")
	if err := s.Upload("alice", "/f", bytes.Repeat([]byte("x"), 1000)); err != nil {
		t.Fatal(err)
	}
	one := s.StoredBytes()
	if err := s.Grant("alice", "/f", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := s.Grant("alice", "/f", "carol"); err != nil {
		t.Fatal(err)
	}
	three := s.StoredBytes()
	// HE violates P4: storage grows linearly with permitted users.
	if three <= one {
		t.Fatalf("storage did not grow with members: %d vs %d", one, three)
	}
}
