package enclave

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"segshare/internal/obs"
)

// CallMode selects how calls cross the enclave boundary.
type CallMode int

const (
	// ModeSwitchless routes calls through task queues served by persistent
	// worker threads, SGX SDK switchless-call style (paper §II-A, §VI).
	ModeSwitchless CallMode = iota + 1
	// ModeBlocking performs a synchronous enclave transition per call,
	// paying the configured switch latency. Used for the ablation bench.
	ModeBlocking
)

// Bridge errors.
var (
	// ErrBridgeClosed is returned for calls on a closed bridge.
	ErrBridgeClosed = errors.New("enclave: bridge closed")
	// ErrUnknownOp is returned when no handler is registered for an op.
	ErrUnknownOp = errors.New("enclave: unknown bridge op")
)

// Handler is a function exposed across the enclave boundary.
type Handler func(payload []byte) ([]byte, error)

// BridgeConfig tunes the call bridge.
type BridgeConfig struct {
	// Mode selects switchless or blocking transitions. Defaults to
	// ModeSwitchless.
	Mode CallMode
	// Workers is the number of worker goroutines per direction in
	// switchless mode. Defaults to 4.
	Workers int
	// QueueDepth is the task ring capacity per direction in switchless
	// mode. Defaults to 64.
	QueueDepth int
	// SwitchLatency is the simulated cost of one enclave transition
	// (enter or exit) in blocking mode. Defaults to 6µs, in the range
	// reported for SGX ecall round trips.
	SwitchLatency time.Duration
	// Obs is the metric registry the bridge reports into. Defaults to
	// obs.Default(). Bridge telemetry is aggregate by design: call counts
	// and bucketed durations per direction, never op names or payloads —
	// the untrusted host observes every transition anyway (paper §III-B),
	// so exporting their aggregate timing stays inside the leak budget.
	Obs *obs.Registry
}

func (c BridgeConfig) withDefaults() BridgeConfig {
	if c.Mode == 0 {
		c.Mode = ModeSwitchless
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SwitchLatency <= 0 {
		c.SwitchLatency = 6 * time.Microsecond
	}
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	return c
}

// bridgeInstruments are the per-direction obs instruments of one bridge
// direction (ecall or ocall).
type bridgeInstruments struct {
	calls     *obs.Counter
	callNS    *obs.Histogram // handler execution time
	queueNS   *obs.Histogram // wait between enqueue and worker pickup
	errsTotal *obs.Counter
}

func newBridgeInstruments(reg *obs.Registry, call string) bridgeInstruments {
	labels := obs.Labels{"call": call}
	return bridgeInstruments{
		calls:     reg.Counter("segshare_bridge_calls_total", "Calls across the enclave boundary by direction.", labels),
		callNS:    reg.Histogram("segshare_bridge_call_ns", "Handler execution time per boundary call (ns).", labels),
		queueNS:   reg.Histogram("segshare_bridge_queue_wait_ns", "Switchless task-queue wait before worker pickup (ns).", labels),
		errsTotal: reg.Counter("segshare_bridge_errors_total", "Boundary calls whose handler returned an error.", labels),
	}
}

// BridgeMetrics reports call traffic across the boundary.
type BridgeMetrics struct {
	ECalls      uint64
	OCalls      uint64
	Transitions uint64
}

type bridgeTask struct {
	handler  Handler
	payload  []byte
	resp     chan bridgeResult
	enqueued time.Time
	inst     *bridgeInstruments
}

type bridgeResult struct {
	data []byte
	err  error
}

// Bridge is the interface between the untrusted host process and the
// trusted enclave code. The untrusted side invokes trusted functions via
// ECall; trusted code invokes untrusted functions (storage, network) via
// OCall. All SeGShare network and file traffic crosses a Bridge, mirroring
// the prototype's use of switchless calls for its TLS library and the
// protected file system (paper §VI).
type Bridge struct {
	cfg BridgeConfig

	mu     sync.RWMutex
	ecalls map[string]Handler
	ocalls map[string]Handler

	etasks chan bridgeTask
	otasks chan bridgeTask
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	nECalls      atomic.Uint64
	nOCalls      atomic.Uint64
	nTransitions atomic.Uint64
	inflight     atomic.Int64

	einst       bridgeInstruments
	oinst       bridgeInstruments
	transitions *obs.Counter
}

// NewBridge creates a bridge and, in switchless mode, starts its worker
// goroutines. The caller must Close the bridge to stop them.
func NewBridge(cfg BridgeConfig) *Bridge {
	cfg = cfg.withDefaults()
	b := &Bridge{
		cfg:         cfg,
		ecalls:      make(map[string]Handler),
		ocalls:      make(map[string]Handler),
		done:        make(chan struct{}),
		einst:       newBridgeInstruments(cfg.Obs, "ecall"),
		oinst:       newBridgeInstruments(cfg.Obs, "ocall"),
		transitions: cfg.Obs.Counter("segshare_bridge_transitions_total", "Synchronous enclave enter/exit transitions (blocking mode).", nil),
	}
	if cfg.Mode == ModeSwitchless {
		b.etasks = make(chan bridgeTask)
		b.otasks = make(chan bridgeTask)
		for i := 0; i < cfg.Workers; i++ {
			b.wg.Add(2)
			go b.worker(b.etasks)
			go b.worker(b.otasks)
		}
	}
	return b
}

func (b *Bridge) worker(tasks <-chan bridgeTask) {
	defer b.wg.Done()
	for {
		select {
		case <-b.done:
			return
		case t := <-tasks:
			t.inst.queueNS.ObserveDuration(time.Since(t.enqueued))
			start := time.Now()
			data, err := t.handler(t.payload)
			t.inst.callNS.ObserveDuration(time.Since(start))
			if err != nil {
				t.inst.errsTotal.Inc()
			}
			t.resp <- bridgeResult{data: data, err: err}
		}
	}
}

// RegisterECall exposes a trusted function to the untrusted side.
func (b *Bridge) RegisterECall(op string, fn Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ecalls[op] = fn
}

// RegisterOCall exposes an untrusted function to trusted code.
func (b *Bridge) RegisterOCall(op string, fn Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ocalls[op] = fn
}

// ECall invokes the trusted handler registered for op.
func (b *Bridge) ECall(op string, payload []byte) ([]byte, error) {
	b.nECalls.Add(1)
	b.einst.calls.Inc()
	return b.call(b.ecalls, b.etasks, &b.einst, op, payload)
}

// OCall invokes the untrusted handler registered for op.
func (b *Bridge) OCall(op string, payload []byte) ([]byte, error) {
	b.nOCalls.Add(1)
	b.oinst.calls.Inc()
	return b.call(b.ocalls, b.otasks, &b.oinst, op, payload)
}

func (b *Bridge) call(table map[string]Handler, tasks chan bridgeTask, inst *bridgeInstruments, op string, payload []byte) ([]byte, error) {
	if b.closed.Load() {
		return nil, ErrBridgeClosed
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.mu.RLock()
	fn, ok := table[op]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownOp, op)
	}
	if b.cfg.Mode == ModeBlocking {
		// One transition to enter, one to leave.
		b.nTransitions.Add(2)
		b.transitions.Add(2)
		time.Sleep(2 * b.cfg.SwitchLatency)
		start := time.Now()
		data, err := fn(payload)
		inst.callNS.ObserveDuration(time.Since(start))
		if err != nil {
			inst.errsTotal.Inc()
		}
		return data, err
	}
	t := bridgeTask{handler: fn, payload: payload, resp: make(chan bridgeResult, 1), enqueued: time.Now(), inst: inst}
	select {
	case <-b.done:
		return nil, ErrBridgeClosed
	case tasks <- t:
	}
	select {
	case <-b.done:
		return nil, ErrBridgeClosed
	case r := <-t.resp:
		return r.data, r.err
	}
}

// Pending returns the number of boundary calls currently in flight
// (dispatched but not yet returned). The stall watchdog reads it to tell
// a wedged bridge from an idle one.
func (b *Bridge) Pending() int64 { return b.inflight.Load() }

// Metrics returns a snapshot of call counters.
func (b *Bridge) Metrics() BridgeMetrics {
	return BridgeMetrics{
		ECalls:      b.nECalls.Load(),
		OCalls:      b.nOCalls.Load(),
		Transitions: b.nTransitions.Load(),
	}
}

// Close stops the worker goroutines and fails all subsequent calls with
// ErrBridgeClosed. Close is idempotent.
func (b *Bridge) Close() {
	if b.closed.Swap(true) {
		return
	}
	close(b.done)
	b.wg.Wait()
}
