package enclave

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBridgeECallOCall(t *testing.T) {
	for _, mode := range []CallMode{ModeSwitchless, ModeBlocking} {
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			b := NewBridge(BridgeConfig{Mode: mode, SwitchLatency: time.Nanosecond})
			defer b.Close()

			b.RegisterECall("double", func(p []byte) ([]byte, error) {
				return append(p, p...), nil
			})
			b.RegisterOCall("echo", func(p []byte) ([]byte, error) {
				return p, nil
			})

			got, err := b.ECall("double", []byte("ab"))
			if err != nil {
				t.Fatalf("ECall: %v", err)
			}
			if !bytes.Equal(got, []byte("abab")) {
				t.Fatalf("ECall returned %q", got)
			}
			got, err = b.OCall("echo", []byte("xy"))
			if err != nil {
				t.Fatalf("OCall: %v", err)
			}
			if !bytes.Equal(got, []byte("xy")) {
				t.Fatalf("OCall returned %q", got)
			}
		})
	}
}

func TestBridgeUnknownOp(t *testing.T) {
	b := NewBridge(BridgeConfig{})
	defer b.Close()
	if _, err := b.ECall("nope", nil); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("want ErrUnknownOp, got %v", err)
	}
	if _, err := b.OCall("nope", nil); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("want ErrUnknownOp, got %v", err)
	}
}

func TestBridgeHandlerErrorPropagates(t *testing.T) {
	b := NewBridge(BridgeConfig{})
	defer b.Close()
	wantErr := errors.New("boom")
	b.RegisterECall("fail", func(p []byte) ([]byte, error) { return nil, wantErr })
	if _, err := b.ECall("fail", nil); !errors.Is(err, wantErr) {
		t.Fatalf("want handler error, got %v", err)
	}
}

func TestBridgeClose(t *testing.T) {
	b := NewBridge(BridgeConfig{})
	b.RegisterECall("op", func(p []byte) ([]byte, error) { return p, nil })
	b.Close()
	b.Close() // idempotent
	if _, err := b.ECall("op", nil); !errors.Is(err, ErrBridgeClosed) {
		t.Fatalf("want ErrBridgeClosed, got %v", err)
	}
}

func TestBridgeConcurrentCalls(t *testing.T) {
	b := NewBridge(BridgeConfig{Workers: 4})
	defer b.Close()
	b.RegisterECall("id", func(p []byte) ([]byte, error) { return p, nil })

	const callers = 16
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte{byte(i)}
			for j := 0; j < 100; j++ {
				got, err := b.ECall("id", payload)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("caller %d got %v", i, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBridgeMetrics(t *testing.T) {
	b := NewBridge(BridgeConfig{Mode: ModeBlocking, SwitchLatency: time.Nanosecond})
	defer b.Close()
	b.RegisterECall("op", func(p []byte) ([]byte, error) { return nil, nil })
	b.RegisterOCall("op", func(p []byte) ([]byte, error) { return nil, nil })

	for i := 0; i < 3; i++ {
		if _, err := b.ECall("op", nil); err != nil {
			t.Fatalf("ECall: %v", err)
		}
	}
	if _, err := b.OCall("op", nil); err != nil {
		t.Fatalf("OCall: %v", err)
	}
	m := b.Metrics()
	if m.ECalls != 3 || m.OCalls != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Transitions != 8 { // 4 calls × 2 transitions in blocking mode
		t.Fatalf("transitions = %d, want 8", m.Transitions)
	}
}

func TestBridgeSwitchlessHasNoTransitions(t *testing.T) {
	b := NewBridge(BridgeConfig{Mode: ModeSwitchless})
	defer b.Close()
	b.RegisterECall("op", func(p []byte) ([]byte, error) { return nil, nil })
	if _, err := b.ECall("op", nil); err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if m := b.Metrics(); m.Transitions != 0 {
		t.Fatalf("switchless mode recorded %d transitions", m.Transitions)
	}
}
