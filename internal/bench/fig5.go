package bench

import (
	"fmt"
	"io"
	"math/bits"

	"segshare"
)

// Experiment E5 — paper Fig. 5: upload/download latency of one additional
// 10 kB file with the individual-file rollback protection enabled or
// disabled, after (2^x − 1) 10 kB files were stored, in two directory
// structures: (1) directories organized as a binary tree with one file
// per leaf, and (2) all files flat under the root.

// Fig5Config parameterises the sweep.
type Fig5Config struct {
	// Exponents are the x values; each point pre-populates 2^x − 1 files.
	Exponents []int
	// Runs per point.
	Runs int
	// FileSize is the per-file payload (paper: 10 kB).
	FileSize int
}

// DefaultFig5 is the scaled-down default (the paper goes to x=14; pass
// higher exponents through cmd/segshare-bench for the full sweep).
func DefaultFig5() Fig5Config {
	return Fig5Config{Exponents: []int{0, 2, 4, 6, 8}, Runs: 5, FileSize: 10 << 10}
}

// Fig5Row is one (structure, rollback, x) measurement.
type Fig5Row struct {
	Structure string // flat | tree
	Rollback  bool
	Files     int
	Upload    Stat
	Download  Stat
}

// RunFig5 executes the sweep.
func RunFig5(cfg Fig5Config) ([]Fig5Row, error) {
	if cfg.FileSize <= 0 {
		cfg.FileSize = 10 << 10
	}
	var rows []Fig5Row
	for _, structure := range []string{"flat", "tree"} {
		for _, rollbackOn := range []bool{false, true} {
			for _, x := range cfg.Exponents {
				row, err := runFig5Point(cfg, structure, rollbackOn, x)
				if err != nil {
					return nil, fmt.Errorf("fig5 %s rollback=%v x=%d: %w", structure, rollbackOn, x, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

func runFig5Point(cfg Fig5Config, structure string, rollbackOn bool, x int) (Fig5Row, error) {
	features := segshare.Features{}
	if rollbackOn {
		features.RollbackProtection = true
		features.Guard = segshare.GuardCounter
	}
	env, err := NewEnv(EnvConfig{Features: features})
	if err != nil {
		return Fig5Row{}, err
	}
	defer env.Close()
	client, err := env.NewClient("bench-user")
	if err != nil {
		return Fig5Row{}, err
	}

	n := (1 << x) - 1
	direct := env.Direct("bench-user")
	payload := randomPayload(cfg.FileSize)
	madeDirs := map[string]bool{"/": true}
	for i := 0; i < n; i++ {
		path, err := fig5Path(structure, i, n, madeDirs, direct.Mkdir)
		if err != nil {
			return Fig5Row{}, err
		}
		if err := direct.Upload(path, payload); err != nil {
			return Fig5Row{}, fmt.Errorf("prepopulate %s: %w", path, err)
		}
	}

	// Measure the marginal upload of one additional file; each run uses a
	// fresh name so it is a creation, as in the paper.
	run := 0
	var lastPath string
	upload, err := measure(cfg.Runs, func() error {
		run++
		path, err := fig5Path(structure, n+run, 2*(n+cfg.Runs)+4, madeDirs, direct.Mkdir)
		if err != nil {
			return err
		}
		lastPath = path
		return client.Upload(path, payload)
	})
	if err != nil {
		return Fig5Row{}, err
	}
	download, err := measure(cfg.Runs, func() error {
		return client.DownloadTo(lastPath, io.Discard)
	})
	if err != nil {
		return Fig5Row{}, err
	}
	return Fig5Row{
		Structure: structure,
		Rollback:  rollbackOn,
		Files:     n,
		Upload:    upload,
		Download:  download,
	}, nil
}

// fig5Path places file i according to the structure: flat under the root,
// or at the leaf of a binary directory tree whose depth grows
// logarithmically with the corpus size.
func fig5Path(structure string, i, total int, madeDirs map[string]bool, mkdir func(string) error) (string, error) {
	if structure == "flat" {
		return fmt.Sprintf("/f%06d.bin", i), nil
	}
	depth := bits.Len(uint(total)) - 1
	if depth < 1 {
		return fmt.Sprintf("/f%06d.bin", i), nil
	}
	if depth > 14 {
		depth = 14
	}
	dir := "/"
	for level := 0; level < depth; level++ {
		bit := (i >> level) & 1
		dir = fmt.Sprintf("%sb%d/", dir, bit)
		if !madeDirs[dir] {
			if err := mkdir(dir); err != nil {
				return "", fmt.Errorf("mkdir %s: %w", dir, err)
			}
			madeDirs[dir] = true
		}
	}
	return fmt.Sprintf("%sf%06d.bin", dir, i), nil
}
