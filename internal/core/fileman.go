package core

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"segshare/internal/acl"
	"segshare/internal/dedup"
	"segshare/internal/journal"
	"segshare/internal/obs"
	"segshare/internal/pae"
	"segshare/internal/pfs"
	"segshare/internal/rollback"
	"segshare/internal/store"
)

// Reserved storage names for enclave metadata that lives outside the
// file-system tree (sealed blobs and public certificates).
const (
	metaRootKey    = "!meta:rootkey"
	metaServerCert = "!meta:servercert"
	metaServerKey  = "!meta:serverkey"
)

// Group-store logical names.
const (
	groupRootName  = "groupsroot"
	groupListName  = "grouplist"
	memberNamePfx  = "member:"
	contentRootKey = "content"
	groupRootKey   = "group"
)

// namespace describes one store's logical file tree: the content store's
// directory hierarchy or the group store's flat tree (paper §IV-B: "the
// files in the group store are stored flat and a root directory file
// stores a list of all contained files").
type namespace struct {
	kind     string
	backend  store.Backend
	guard    rollback.RootGuard
	rootName string
	parentOf func(name string) string
	isInner  func(name string) bool
}

// fileManager is the trusted file manager (paper §IV-B): it owns the root
// key SK_r, derives a unique file key per file, encrypts/decrypts every
// stored object, maintains directory bodies, deduplication indirections,
// and the rollback-protection hash tree. The untrusted file manager is
// the store.Backend implementations it calls into.
//
// fileManager is not safe for concurrent mutation; the server serializes
// state-changing requests (see Server).
type fileManager struct {
	rootKey []byte
	hideKey []byte
	hasher  *rollback.Hasher

	content *namespace
	group   *namespace
	dedup   *dedup.Store

	hidePaths  bool
	rollbackOn bool
	validate   bool

	// caches holds decoded, validated relation objects and derived file
	// keys in enclave memory (see caches.go); never nil, individual
	// caches may be (always-miss).
	caches *relCaches

	// journal is the write-ahead intent journal (see txn.go); nil
	// disables crash-consistent mutations (writes apply directly).
	journal *journal.Journal
	// tx is the operation in flight. It lives on the (possibly per-request
	// view) copy that runs the mutation, so a request's staging state is
	// never visible through another request's view; the lock manager still
	// serializes the mutations themselves.
	tx *opCtx
	// shared holds mutable state that must be visible across views.
	shared *fmShared

	// rs is the per-request stats collector carried by a view (see
	// withStats); nil on the base fileManager, and every ReqStats method
	// is nil-safe, so non-request paths pay one predicted branch.
	rs *obs.ReqStats

	// ctx is the request context carried by a view (see withRequest);
	// nil on the base fileManager and on non-request paths (recovery,
	// provisioning), which are never cancellable. Read paths observe it
	// between store round-trips and crypto chunks; mutations observe it
	// only before the journal intent commits (txn.go).
	ctx context.Context

	// cryptoWorkers bounds the chunk-crypto worker pool used on the
	// content data path (DESIGN §14); 1 means strictly serial. Resolved
	// in NewServer, never zero.
	cryptoWorkers int

	obs *serverObs
}

// fmShared is the cross-view mutable state of a fileManager. Views made
// by withStats are shallow copies; anything a view writes that later
// views must see lives here.
type fmShared struct {
	// journalDirty forces a recovery pass before the next mutation: a
	// committed intent failed mid-apply or could not be marked applied.
	journalDirty atomic.Bool
	// recovery publishes journal-recovery progress for /readyz and the
	// watchdog; may be nil.
	recovery *RecoveryState
	// reads coalesces concurrent content reads of the same path so a hot
	// object is decrypted once per flight (see coalesce.go).
	reads flightGroup
	// degraded gates mutations while a store circuit breaker is open:
	// non-nil only when resilience is configured, it returns an
	// ErrDegraded-wrapped error to reject the mutation before any trusted
	// state changes (see txn.go mutate).
	degraded func() error
}

// withStats returns a shallow view of fm that attributes store, cache,
// journal, and audit timings to rs. A nil rs returns fm unchanged. The
// view shares every backing object (caches, journal, namespaces,
// shared state) but carries its own tx slot.
func (fm *fileManager) withStats(rs *obs.ReqStats) *fileManager {
	if rs == nil {
		return fm
	}
	v := *fm
	v.tx = nil
	v.rs = rs
	return &v
}

// withRequest returns a shallow view of fm bound to one request: its
// stats collector (may be nil) and its cancellation context. Like
// withStats the view shares every backing object but carries its own tx
// slot, so one request's staging state and cancellation never leak into
// another's.
func (fm *fileManager) withRequest(rs *obs.ReqStats, ctx context.Context) *fileManager {
	if rs == nil && ctx == nil {
		return fm
	}
	v := *fm
	v.tx = nil
	v.rs = rs
	v.ctx = ctx
	return &v
}

// ctxErr reports the view's request cancellation, mapped to ErrCanceled
// so the handler can distinguish "client left" (499) from server faults.
// Views without a context never cancel.
func (fm *fileManager) ctxErr() error {
	if fm.ctx == nil {
		return nil
	}
	if err := fm.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, context.Cause(fm.ctx))
	}
	return nil
}

// backendGet reads one object through the namespace backend, bounded by
// the view's request context when the backend supports it (Resilient
// and Instrumented do; bare test backends fall back to a plain Get).
func (fm *fileManager) backendGet(ns *namespace, name string) ([]byte, error) {
	if fm.ctx != nil {
		if cg, ok := ns.backend.(store.ContextGetter); ok {
			return cg.GetContext(fm.ctx, name)
		}
	}
	return ns.backend.Get(name)
}

type fmConfig struct {
	rootKey      []byte
	contentStore store.Backend
	groupStore   store.Backend
	dedupStore   store.Backend

	hidePaths    bool
	rollbackOn   bool
	dedupEnabled bool
	contentGuard rollback.RootGuard
	groupGuard   rollback.RootGuard
	// cacheBytes bounds the in-enclave relation caches; <= 0 disables
	// them (the resolved value — Config defaulting happens in NewServer).
	cacheBytes int64
	// journal enables crash-consistent mutations; nil applies writes
	// directly (see txn.go).
	journal *journal.Journal
	// recovery publishes journal-recovery progress; may be nil.
	recovery *RecoveryState
	// cryptoWorkers bounds the chunk-crypto worker pool (resolved value;
	// < 1 is clamped to serial).
	cryptoWorkers int
	// degradedGate rejects mutations with an ErrDegraded-wrapped error
	// while a store circuit breaker is open; nil when resilience is off.
	degradedGate func() error
	obs          *serverObs
}

func newFileManager(cfg fmConfig) (*fileManager, error) {
	hideKey, err := pae.DeriveBytes(cfg.rootKey, "path-hiding", nil, 32)
	if err != nil {
		return nil, err
	}
	treeKey, err := pae.DeriveBytes(cfg.rootKey, "rollback-tree", nil, 32)
	if err != nil {
		return nil, err
	}
	if cfg.contentGuard == nil {
		cfg.contentGuard = rollback.NopGuard{}
	}
	if cfg.groupGuard == nil {
		cfg.groupGuard = rollback.NopGuard{}
	}
	if cfg.obs == nil {
		cfg.obs = newServerObs(nil, nil)
	}
	workers := cfg.cryptoWorkers
	if workers < 1 {
		workers = 1
	}
	fm := &fileManager{
		rootKey:       cfg.rootKey,
		hideKey:       hideKey,
		hasher:        rollback.NewHasher(treeKey),
		hidePaths:     cfg.hidePaths,
		rollbackOn:    cfg.rollbackOn,
		validate:      cfg.rollbackOn,
		caches:        newRelCaches(cfg.cacheBytes, cfg.obs),
		journal:       cfg.journal,
		shared:        &fmShared{recovery: cfg.recovery, degraded: cfg.degradedGate},
		cryptoWorkers: workers,
		obs:           cfg.obs,
	}
	fm.content = &namespace{
		kind:     contentRootKey,
		backend:  cfg.contentStore,
		guard:    cfg.contentGuard,
		rootName: "/",
		parentOf: contentParent,
		isInner:  func(name string) bool { return strings.HasSuffix(name, "/") },
	}
	fm.group = &namespace{
		kind:     groupRootKey,
		backend:  cfg.groupStore,
		guard:    cfg.groupGuard,
		rootName: groupRootName,
		parentOf: func(name string) string {
			if name == groupRootName {
				return ""
			}
			return groupRootName
		},
		isInner: func(name string) bool { return name == groupRootName },
	}
	if cfg.dedupEnabled {
		ds, err := dedup.New(cfg.dedupStore, cfg.rootKey, dedup.WithObs(cfg.obs.reg), dedup.WithWorkers(workers))
		if err != nil {
			return nil, err
		}
		fm.dedup = ds
	}
	// Finish whatever a previous run left behind before reading or
	// creating anything: committed intents roll forward, a torn commit is
	// discarded. Replayed paths are revalidated against the rollback tree.
	if err := fm.recoverJournal(recoverOpts{strict: true, validate: cfg.rollbackOn}); err != nil {
		return nil, err
	}
	if err := fm.mutate("init", fm.initRoots); err != nil {
		return nil, err
	}
	return fm, nil
}

// contentParent returns the tree parent of a content-store logical name.
// A file's ACL is a sibling of the file (paper Fig. 2), so its parent is
// the file's parent directory; the root's ACL is a child of the root.
func contentParent(name string) string {
	if name == "/" {
		return ""
	}
	if name == "/.acl" {
		return "/"
	}
	if strings.HasSuffix(name, "/.acl") { // directory ACL, e.g. "/D/.acl"
		return parentDir(strings.TrimSuffix(name, ".acl"))
	}
	if strings.HasSuffix(name, ".acl") { // content-file ACL
		return parentDir(strings.TrimSuffix(name, ".acl"))
	}
	return parentDir(name)
}

// parentDir returns the parent directory of a path-like logical name.
func parentDir(name string) string {
	trimmed := strings.TrimSuffix(name, "/")
	idx := strings.LastIndexByte(trimmed, '/')
	return trimmed[:idx+1]
}

// aclName returns the logical name of the ACL file accompanying a path
// (content file or directory).
func aclName(path string) string { return path + ".acl" }

// storageName maps a logical name to the name used in the untrusted
// store. With the filename-hiding extension (paper §V-C) it is the hex
// HMAC of the logical name, placing every file at a pseudorandom flat
// location; directory listing still works because directory bodies store
// the original child names.
func (fm *fileManager) storageName(ns *namespace, name string) string {
	if !fm.hidePaths {
		return name
	}
	mac := pae.MAC(fm.hideKey, []byte(ns.kind+":"+name))
	return hex.EncodeToString(mac[:])
}

// fileKey derives (or recalls) the per-file key. Keys are a pure
// function of SK_r and the name, so cached entries never go stale; the
// cache just bounds how often the HKDF expansion runs on hot names.
func (fm *fileManager) fileKey(ns *namespace, name string) (pae.Key, error) {
	ck := ns.kind + ":" + name
	if k, ok := fm.caches.fileKeys.Get(ck); ok {
		fm.rs.AddCacheHit()
		return k, nil
	}
	fm.rs.AddCacheMiss()
	gen := fm.caches.fileKeys.Gen()
	k, err := pae.DeriveKey(fm.rootKey, "file-key/"+ns.kind, []byte(name))
	if err == nil {
		fm.caches.fileKeys.Put(ck, k, fileKeyCost, gen)
	}
	return k, err
}

func (fm *fileManager) fileID(ns *namespace, name string) []byte {
	return []byte(ns.kind + ":" + name)
}

// putBlob writes a logical file. Inside a journaled operation the write
// is staged into the intent (txn.go) and only hits the backend at apply
// time; otherwise it applies directly via putBlobRaw.
func (fm *fileManager) putBlob(ns *namespace, name string, hdr *rollback.Header, body []byte) error {
	if fm.staging() {
		fm.tx.stagePut(ns, name, hdr, body, false)
		fm.invalidateRel(ns, name)
		return nil
	}
	return fm.putBlobRaw(ns, name, hdr, body)
}

// putRootBlob writes a namespace root together with its guard commit.
// The guard commit must coincide with the write becoming durable: staged
// root writes defer it to apply time (a fresh token per apply keeps
// recovery replays valid, and an aborted operation cannot advance the
// guard past the stored root), direct writes commit inline.
func (fm *fileManager) putRootBlob(ns *namespace, hdr *rollback.Header, body []byte) error {
	if hdr == nil {
		return fm.putBlob(ns, ns.rootName, nil, body)
	}
	if fm.staging() {
		fm.tx.stagePut(ns, ns.rootName, hdr, body, true)
		fm.invalidateRel(ns, ns.rootName)
		return nil
	}
	token, err := ns.guard.Commit(hdr.Main)
	if err != nil {
		return err
	}
	hdr.Token = token
	return fm.putBlobRaw(ns, ns.rootName, hdr, body)
}

// putBlobRaw encrypts and stores a logical file: optional rollback
// header followed by the body, protected with the per-file key.
func (fm *fileManager) putBlobRaw(ns *namespace, name string, hdr *rollback.Header, body []byte) error {
	var plain []byte
	if hdr != nil {
		enc := hdr.Encode()
		plain = make([]byte, 0, len(enc)+len(body))
		plain = append(plain, enc...)
		plain = append(plain, body...)
	} else {
		plain = body
	}
	key, err := fm.fileKey(ns, name)
	if err != nil {
		return err
	}
	blob, err := pfs.EncryptWorkers(key, fm.fileID(ns, name), plain, fm.cryptoWorkers)
	if err != nil {
		return err
	}
	fm.obs.observeCryptoSeal(pfs.UsesParallel(int64(len(plain)), fm.cryptoWorkers))
	fm.rs.AddStoreOps(1)
	if err := ns.backend.Put(fm.storageName(ns, name), blob); err != nil {
		return fmt.Errorf("segshare: store %q: %w", name, err)
	}
	fm.invalidateRel(ns, name)
	return nil
}

// getBlob loads, decrypts, and verifies a logical file, returning its
// rollback header (nil when the extension is off) and body. Reads
// observe the active operation's staged state first, so intra-operation
// re-reads (move recursion, parent updates) see their own writes.
func (fm *fileManager) getBlob(ns *namespace, name string) (*rollback.Header, []byte, error) {
	if fm.staging() {
		if sp, deleted := fm.tx.staged(ns, name); deleted {
			return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		} else if sp != nil {
			body := append([]byte(nil), sp.body...)
			if !fm.rollbackOn {
				return nil, body, nil
			}
			hdr, _, err := rollback.DecodeHeader(sp.hdrEnc)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %s: bad rollback header", ErrIntegrity, name)
			}
			return hdr, body, nil
		}
	}
	if err := fm.ctxErr(); err != nil {
		return nil, nil, err
	}
	fm.rs.AddStoreOps(1)
	raw, err := fm.backendGet(ns, fm.storageName(ns, name))
	if errors.Is(err, store.ErrNotExist) {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("segshare: load %q: %w", name, err)
	}
	key, err := fm.fileKey(ns, name)
	if err != nil {
		return nil, nil, err
	}
	plain, err := pfs.DecryptWorkersCtx(fm.ctx, key, fm.fileID(ns, name), raw, fm.cryptoWorkers)
	if errors.Is(err, pfs.ErrCorrupt) {
		return nil, nil, fmt.Errorf("%w: %s", ErrIntegrity, name)
	}
	if err != nil {
		return nil, nil, err
	}
	fm.obs.observeCryptoOpen(pfs.UsesParallel(int64(len(plain)), fm.cryptoWorkers))
	if !fm.rollbackOn {
		return nil, plain, nil
	}
	hdr, body, err := rollback.DecodeHeader(plain)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %s: bad rollback header", ErrIntegrity, name)
	}
	return hdr, body, nil
}

// readHeader reads only the rollback header of a logical file, verifying
// just the chunks it touches. Validation of sibling buckets uses it so
// that checking one bucket costs header-sized reads, not full files
// (paper §V-D's optimization).
func (fm *fileManager) readHeader(ns *namespace, name string) (*rollback.Header, error) {
	if fm.staging() {
		if sp, deleted := fm.tx.staged(ns, name); deleted {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		} else if sp != nil {
			hdr, _, err := rollback.DecodeHeader(sp.hdrEnc)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: bad rollback header", ErrIntegrity, name)
			}
			return hdr, nil
		}
	}
	fm.rs.AddStoreOps(1)
	raw, err := ns.backend.Get(fm.storageName(ns, name))
	if errors.Is(err, store.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("segshare: load %q: %w", name, err)
	}
	key, err := fm.fileKey(ns, name)
	if err != nil {
		return nil, err
	}
	r, err := pfs.Open(key, fm.fileID(ns, name), bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrIntegrity, name)
	}
	maxHdr := (&rollback.Header{Inner: true}).EncodedSize()
	if int64(maxHdr) > r.Size() {
		maxHdr = int(r.Size())
	}
	buf := make([]byte, maxHdr)
	if _, err := r.ReadAt(buf, 0); err != nil && maxHdr > 0 {
		return nil, fmt.Errorf("%w: %s", ErrIntegrity, name)
	}
	hdr, _, err := rollback.DecodeHeader(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: bad rollback header", ErrIntegrity, name)
	}
	return hdr, nil
}

func (fm *fileManager) exists(ns *namespace, name string) (bool, error) {
	if fm.staging() {
		if sp, deleted := fm.tx.staged(ns, name); deleted {
			return false, nil
		} else if sp != nil {
			return true, nil
		}
	}
	fm.rs.AddStoreOps(1)
	ok, err := ns.backend.Exists(fm.storageName(ns, name))
	if err != nil {
		return false, fmt.Errorf("segshare: stat %q: %w", name, err)
	}
	return ok, nil
}

// deleteBlob removes a logical file, or stages the removal inside a
// journaled operation (preserving ErrNotFound semantics by probing the
// staged state and the backend).
func (fm *fileManager) deleteBlob(ns *namespace, name string) error {
	if fm.staging() {
		if sp, deleted := fm.tx.staged(ns, name); deleted {
			return fmt.Errorf("%w: %s", ErrNotFound, name)
		} else if sp == nil {
			fm.rs.AddStoreOps(1)
			ok, err := ns.backend.Exists(fm.storageName(ns, name))
			if err != nil {
				return fmt.Errorf("segshare: stat %q: %w", name, err)
			}
			if !ok {
				return fmt.Errorf("%w: %s", ErrNotFound, name)
			}
		}
		fm.tx.stageDelete(ns, name)
		fm.invalidateRel(ns, name)
		return nil
	}
	return fm.deleteBlobRaw(ns, name)
}

func (fm *fileManager) deleteBlobRaw(ns *namespace, name string) error {
	fm.rs.AddStoreOps(1)
	err := ns.backend.Delete(fm.storageName(ns, name))
	if errors.Is(err, store.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return fmt.Errorf("segshare: delete %q: %w", name, err)
	}
	fm.invalidateRel(ns, name)
	return nil
}

// initRoots creates the root nodes of both namespaces on first start:
// the content root directory with its ACL, and the group-store root.
// It is idempotent across restarts.
func (fm *fileManager) initRoots() error {
	if ok, err := fm.exists(fm.content, fm.content.rootName); err != nil {
		return err
	} else if !ok {
		if err := fm.initContentRoot(); err != nil {
			return err
		}
	}
	if ok, err := fm.exists(fm.group, groupRootName); err != nil {
		return err
	} else if !ok {
		if err := fm.writeRootNode(fm.group, &dirBody{}); err != nil {
			return err
		}
	}
	return nil
}

// initContentRoot writes the root directory file and its (empty) ACL.
// The root ACL is a tree child of the root itself.
func (fm *fileManager) initContentRoot() error {
	aclBody := (&acl.ACL{}).Encode()
	rootBody := (&dirBody{}).encode()
	rootACL := aclName(fm.content.rootName) // "/.acl"
	if !fm.rollbackOn {
		if err := fm.putBlob(fm.content, rootACL, nil, aclBody); err != nil {
			return err
		}
		return fm.putBlob(fm.content, fm.content.rootName, nil, rootBody)
	}
	aclID := treeID(fm.content, rootACL)
	aclMain := fm.hasher.LeafMain(aclID, rollback.ContentDigest(aclBody))
	if err := fm.putBlob(fm.content, rootACL, &rollback.Header{Main: aclMain}, aclBody); err != nil {
		return err
	}
	hdr := &rollback.Header{Inner: true}
	hdr.Buckets.AddChild(fm.hasher, aclID, aclMain)
	hdr.Main = fm.hasher.InnerMain(treeID(fm.content, fm.content.rootName), rollback.ContentDigest(rootBody), &hdr.Buckets)
	return fm.putRootBlob(fm.content, hdr, rootBody)
}
