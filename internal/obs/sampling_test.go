package obs

import (
	"sync"
	"testing"
	"time"
)

// strictPolicy samples nothing on its own: every rule is set so far out
// of reach that only the dimension a test exercises can trip it.
func strictPolicy() *SamplePolicy {
	return &SamplePolicy{
		SlowNs:       time.Hour.Nanoseconds(),
		ErrorStatus:  500,
		ContentionNs: time.Hour.Nanoseconds(),
		KeepOneIn:    0,
	}
}

// TestTailSamplingDimensions verifies each retention rule independently:
// a boring fast request is discarded, while slow, errored, and
// lock-contended requests keep their full span trees.
func TestTailSamplingDimensions(t *testing.T) {
	t.Run("fast 2xx discarded", func(t *testing.T) {
		r := NewTraceRecorder(8)
		r.SetPolicy(strictPolicy())
		tr := r.Start("fs_get")
		tr.SetStatus(200)
		if tr.End() {
			t.Fatal("unremarkable trace was sampled")
		}
		if got := len(r.Recent(8)); got != 0 {
			t.Fatalf("ring holds %d traces, want 0", got)
		}
		if r.Examined() != 1 || r.Sampled() != 0 {
			t.Fatalf("examined/sampled = %d/%d, want 1/0", r.Examined(), r.Sampled())
		}
	})

	t.Run("slow sampled", func(t *testing.T) {
		r := NewTraceRecorder(8)
		p := strictPolicy()
		p.SlowNs = 1 // any measurable duration is "slow"
		r.SetPolicy(p)
		tr := r.Start("fs_get")
		tr.SetStatus(200)
		time.Sleep(time.Microsecond)
		if !tr.End() {
			t.Fatal("slow trace was not sampled")
		}
		if got := len(r.Recent(8)); got != 1 {
			t.Fatalf("ring holds %d traces, want 1", got)
		}
	})

	t.Run("error sampled", func(t *testing.T) {
		r := NewTraceRecorder(8)
		r.SetPolicy(strictPolicy())
		tr := r.Start("fs_put")
		tr.SetStatus(503)
		if !tr.End() {
			t.Fatal("5xx trace was not sampled")
		}
	})

	t.Run("contention sampled", func(t *testing.T) {
		r := NewTraceRecorder(8)
		p := strictPolicy()
		p.ContentionNs = 1000
		r.SetPolicy(p)
		tr := r.Start("fs_move")
		tr.SetStatus(200)
		tr.Annotate(LockWaitAnnotation, 5000)
		if !tr.End() {
			t.Fatal("contended trace was not sampled")
		}
	})

	t.Run("keep one in n floor", func(t *testing.T) {
		r := NewTraceRecorder(16)
		p := strictPolicy()
		p.KeepOneIn = 3
		r.SetPolicy(p)
		var kept int
		for i := 0; i < 9; i++ {
			tr := r.Start("fs_get")
			tr.SetStatus(200)
			if tr.End() {
				kept++
			}
		}
		if kept != 3 {
			t.Fatalf("kept %d of 9 traces, want 3 (one in 3)", kept)
		}
	})

	t.Run("nil policy retains all", func(t *testing.T) {
		r := NewTraceRecorder(8)
		tr := r.Start("fs_get")
		tr.SetStatus(200)
		if !tr.End() {
			t.Fatal("nil policy discarded a trace (v1 behavior is retain-all)")
		}
	})

	t.Run("force sample overrides policy", func(t *testing.T) {
		r := NewTraceRecorder(8)
		r.SetPolicy(strictPolicy())
		tr := r.Start("fs_get")
		tr.SetStatus(200)
		tr.ForceSample()
		if !tr.End() {
			t.Fatal("forced trace was not sampled")
		}
	})
}

// TestSamplingOnEndFeed: the finished-trace observer receives every
// trace with its sampling verdict — the exporter wiring depends on it.
func TestSamplingOnEndFeed(t *testing.T) {
	r := NewTraceRecorder(8)
	p := strictPolicy()
	p.SlowNs = 1
	r.SetPolicy(p)

	var mu sync.Mutex
	verdicts := map[uint64]bool{}
	r.SetOnEnd(func(tr *Trace, sampled bool) {
		mu.Lock()
		verdicts[tr.ID()] = sampled
		mu.Unlock()
	})

	slow := r.Start("fs_get")
	time.Sleep(time.Microsecond)
	slow.SetStatus(200)
	slow.End()

	// Swap in a policy nothing can satisfy for the fast trace.
	r.SetPolicy(strictPolicy())
	fast := r.Start("fs_get")
	fast.SetStatus(200)
	fast.End()

	mu.Lock()
	defer mu.Unlock()
	if len(verdicts) != 2 {
		t.Fatalf("observer saw %d traces, want 2", len(verdicts))
	}
	if !verdicts[slow.ID()] {
		t.Error("observer reported the slow trace unsampled")
	}
	if verdicts[fast.ID()] {
		t.Error("observer reported the fast trace sampled")
	}
}

// TestDefaultSamplePolicy pins the default thresholds the server
// installs when the config leaves SamplePolicy nil.
func TestDefaultSamplePolicy(t *testing.T) {
	p := DefaultSamplePolicy()
	if p.SlowNs != (50 * time.Millisecond).Nanoseconds() {
		t.Errorf("SlowNs = %d", p.SlowNs)
	}
	if p.ErrorStatus != 500 {
		t.Errorf("ErrorStatus = %d", p.ErrorStatus)
	}
	if p.ContentionNs != (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("ContentionNs = %d", p.ContentionNs)
	}
	if p.KeepOneIn != 100 {
		t.Errorf("KeepOneIn = %d", p.KeepOneIn)
	}
}
