package obs

import (
	"reflect"
	"testing"
)

// TestExportFieldClasses is the leak-budget meta-test for every exported
// telemetry struct beyond WideEvent (which has its own): each struct
// field must be classified in its field map, no stale classifications
// may remain, and each class must match the Go type that makes its
// guarantee enforceable. Adding a field without classifying it — the
// easy way to leak — fails here.
func TestExportFieldClasses(t *testing.T) {
	cases := []struct {
		name   string
		typ    reflect.Type
		fields map[string]FieldClass
	}{
		{"SLOWindowStatus", reflect.TypeOf(SLOWindowStatus{}), SLOWindowStatusFields},
		{"SLOClassStatus", reflect.TypeOf(SLOClassStatus{}), SLOClassStatusFields},
		{"HotEntry", reflect.TypeOf(HotEntry{}), HotEntryFields},
		{"HotStatus", reflect.TypeOf(HotStatus{}), HotStatusFields},
		{"InFlightRequest", reflect.TypeOf(InFlightRequest{}), InFlightRequestFields},
		{"ProfileInfo", reflect.TypeOf(ProfileInfo{}), ProfileInfoFields},
		{"ProfileIndex", reflect.TypeOf(ProfileIndex{}), ProfileIndexFields},
		{"BatchMeta", reflect.TypeOf(BatchMeta{}), BatchMetaFields},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.typ.NumField() != len(c.fields) {
				t.Errorf("%s has %d fields but the field map classifies %d", c.name, c.typ.NumField(), len(c.fields))
			}
			for i := 0; i < c.typ.NumField(); i++ {
				f := c.typ.Field(i)
				class, ok := c.fields[f.Name]
				if !ok {
					t.Errorf("field %s.%s is not classified", c.name, f.Name)
					continue
				}
				kind := f.Type.Kind()
				var ok2 bool
				switch class {
				case FieldEnum, FieldPseudonym:
					ok2 = kind == reflect.String
				case FieldBucketed, FieldID:
					ok2 = kind == reflect.Uint64
				case FieldTime, FieldRate:
					ok2 = kind == reflect.Int64
				case FieldFlag:
					ok2 = kind == reflect.Bool
				case FieldConfig:
					// Deployment constants: any integer width is fine, the
					// value never derives from request data.
					ok2 = kind == reflect.Int || kind == reflect.Int64 || kind == reflect.Uint64
				case FieldNested:
					// Nested exports carry their own field map; the container
					// is a slice or optional pointer.
					ok2 = kind == reflect.Slice || kind == reflect.Ptr
				default:
					t.Errorf("field %s.%s has unknown class %q", c.name, f.Name, class)
					continue
				}
				if !ok2 {
					t.Errorf("field %s.%s: class %q does not permit kind %v", c.name, f.Name, class, kind)
				}
				if f.Tag.Get("json") == "" {
					t.Errorf("field %s.%s has no json tag; these structs are export records", c.name, f.Name)
				}
			}
			for name := range c.fields {
				if _, ok := c.typ.FieldByName(name); !ok {
					t.Errorf("field map classifies %s.%s, which does not exist", c.name, name)
				}
			}
		})
	}
}
