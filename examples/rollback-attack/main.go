// Rollback-attack: plays the paper's §V-D/§V-E adversary against a
// SeGShare deployment. The malicious cloud provider (1) flips bits in
// stored ciphertext, (2) rolls a single file back to an older version,
// and (3) rolls the entire store back to a snapshot — and the enclave
// detects all three. Each attack runs against a fresh deployment because
// a successful detection leaves the store poisoned (the enclave refuses
// to serve anything whose integrity evidence is gone — that is the
// point).
package main

import (
	"fmt"
	"log"
	"time"

	"segshare"
	"segshare/internal/store"
)

type deployment struct {
	server    *segshare.Server
	client    *segshare.Client
	adversary *store.Adversary
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	attacks := []struct {
		name string
		play func(*deployment) error
	}{
		{name: "tamper", play: playTamper},
		{name: "single-file rollback", play: playFileRollback},
		{name: "whole-store rollback", play: playStoreRollback},
	}
	for _, attack := range attacks {
		d, err := newDeployment()
		if err != nil {
			return err
		}
		err = attack.play(d)
		d.client.Close()
		d.server.Close()
		if err != nil {
			return fmt.Errorf("attack %q: %w", attack.name, err)
		}
	}
	fmt.Println("\nall three attacks detected; the enclave never served stale or tampered data")
	return nil
}

func newDeployment() (*deployment, error) {
	authority, err := segshare.NewCA("Rollback Demo CA")
	if err != nil {
		return nil, err
	}
	platform, err := segshare.NewPlatform(segshare.PlatformConfig{})
	if err != nil {
		return nil, err
	}
	// The adversary IS the storage provider: it wraps the content store
	// and can mutate anything at will.
	adversary := store.NewAdversary(store.NewMemory())
	cfg := segshare.ServerConfig{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: adversary,
		GroupStore:   segshare.NewMemoryStore(),
		Features: segshare.Features{
			RollbackProtection: true,
			Guard:              segshare.GuardCounter,
		},
	}
	server, err := segshare.NewServer(platform, cfg)
	if err != nil {
		return nil, err
	}
	if err := segshare.Provision(authority, platform, server, cfg, []string{"localhost"}); err != nil {
		server.Close()
		return nil, err
	}
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		server.Close()
		return nil, err
	}
	cred, err := authority.IssueClientCertificate(segshare.Identity{UserID: "alice"}, time.Hour)
	if err != nil {
		server.Close()
		return nil, err
	}
	client, err := segshare.NewClient(segshare.ClientConfig{
		Addr:       addr.String(),
		CACertPEM:  authority.CertificatePEM(),
		Credential: cred,
	})
	if err != nil {
		server.Close()
		return nil, err
	}
	return &deployment{server: server, client: client, adversary: adversary}, nil
}

// playTamper flips one bit in a stored ciphertext.
func playTamper(d *deployment) error {
	if err := d.client.Upload("/notes.txt", []byte("meeting notes")); err != nil {
		return err
	}
	if err := d.adversary.FlipBit("/notes.txt", 123); err != nil {
		return err
	}
	if _, err := d.client.Download("/notes.txt"); err != nil {
		fmt.Println("attack 1 (tamper):     DETECTED —", firstLine(err))
		return nil
	}
	return fmt.Errorf("tampering went unnoticed")
}

// playFileRollback replaces a file with an older, perfectly valid
// ciphertext of itself.
func playFileRollback(d *deployment) error {
	if err := d.client.Upload("/wallet.txt", []byte("balance: 1000")); err != nil {
		return err
	}
	fmt.Println("alice: uploaded wallet with balance 1000")
	if err := d.adversary.RememberObject("/wallet.txt"); err != nil {
		return err
	}
	if err := d.client.Upload("/wallet.txt", []byte("balance: 0")); err != nil {
		return err
	}
	fmt.Println("alice: spent everything — balance now 0")
	if err := d.adversary.RollbackObject("/wallet.txt"); err != nil {
		return err
	}
	if _, err := d.client.Download("/wallet.txt"); err != nil {
		fmt.Println("attack 2 (file roll):  DETECTED —", firstLine(err))
		return nil
	}
	return fmt.Errorf("single-file rollback went unnoticed")
}

// playStoreRollback restores a snapshot of the ENTIRE store. Every
// internal hash matches — only the monotonic counter (§V-E) gives the
// staleness away.
func playStoreRollback(d *deployment) error {
	if err := d.client.Upload("/ledger.txt", []byte("v1")); err != nil {
		return err
	}
	d.adversary.SnapshotStore()
	if err := d.client.Upload("/ledger.txt", []byte("v2")); err != nil {
		return err
	}
	d.adversary.RollbackStore()
	if _, err := d.client.Download("/ledger.txt"); err != nil {
		fmt.Println("attack 3 (store roll): DETECTED —", firstLine(err))
		return nil
	}
	return fmt.Errorf("whole-store rollback went unnoticed")
}

func firstLine(err error) string {
	s := err.Error()
	if len(s) > 100 {
		s = s[:100] + "…"
	}
	return s
}
