package obs

import (
	"strings"
	"testing"
)

func TestVerifyMetricAcceptsBudgetedMetrics(t *testing.T) {
	ok := []struct {
		name   string
		labels Labels
	}{
		{"segshare_requests_total", Labels{"op": "fs_get", "code": "2xx"}},
		{"segshare_bridge_calls_total", Labels{"call": "ecall"}},
		{"segshare_store_op_ns", Labels{"store": "content", "op": "get"}},
		{"segshare_dedup_put_total", Labels{"result": "hit"}},
		{"segshare_rollback_tree_update_depth", nil},
	}
	for _, c := range ok {
		if err := VerifyMetric(c.name, c.labels); err != nil {
			t.Errorf("VerifyMetric(%q, %v) = %v, want nil", c.name, c.labels, err)
		}
	}
}

func TestVerifyMetricRejectsIdentityBearingMetrics(t *testing.T) {
	bad := []struct {
		name   string
		labels Labels
		why    string
	}{
		{"segshare_user_requests_total", nil, "token user in name"},
		{"segshare_requests_total", Labels{"user": "alice"}, "label key user"},
		{"segshare_requests_total", Labels{"group_name": "eng"}, "label key token"},
		{"segshare_requests_total", Labels{"op": "/fs/secret.txt"}, "path in value"},
		{"segshare_requests_total", Labels{"op": "9f86d081884c7d659a2feaa0c55ad015"}, "digest in value"},
		{"segshare_requests_total", Labels{"op": "alice@example.com"}, "email in value"},
		{"segshare_requests_total", Labels{"op": strings.Repeat("x", 40)}, "high cardinality shape"},
		{"segshare_file_key_ns", nil, "key token in name"},
		{"Segshare_Requests", nil, "uppercase name"},
		{"", nil, "empty name"},
	}
	for _, c := range bad {
		if err := VerifyMetric(c.name, c.labels); err == nil {
			t.Errorf("VerifyMetric(%q, %v) = nil, want error (%s)", c.name, c.labels, c.why)
		}
	}
}

// TestLeakBudgetQuarantine checks the fail-closed path: a violating
// registration still hands back a working instrument, but the metric is
// excluded from every export and counted as a violation.
func TestLeakBudgetQuarantine(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("segshare_user_uploads_total", "bad", nil)
	c.Inc() // caller code keeps working
	if got := c.Value(); got != 1 {
		t.Fatalf("quarantined counter value = %d, want 1", got)
	}
	if got := reg.LeakBudgetViolations(); got != 1 {
		t.Fatalf("violations = %d, want 1", got)
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "segshare_user_uploads_total" {
			t.Fatalf("quarantined metric appeared in snapshot")
		}
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "user_uploads") {
		t.Fatalf("quarantined metric appeared in Prometheus output:\n%s", b.String())
	}
}

// TestLeakBudgetWalkDetectsViolations is the meta-test for the denylist
// walk itself: VerifyAll on a poisoned registry must report the
// violation, proving the walk the integration test relies on actually
// catches bad metrics.
func TestLeakBudgetWalkDetectsViolations(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("segshare_requests_total", "good", Labels{"op": "fs_get"})
	if errs := reg.VerifyAll(); len(errs) != 0 {
		t.Fatalf("clean registry VerifyAll = %v, want none", errs)
	}
	reg.Counter("segshare_requests_total", "bad", Labels{"path": "slash"})
	errs := reg.VerifyAll()
	if len(errs) != 1 {
		t.Fatalf("VerifyAll on poisoned registry = %v, want exactly 1 error", errs)
	}
	if !strings.Contains(errs[0].Error(), "path") {
		t.Fatalf("violation error %q does not name the offending label", errs[0])
	}
}
