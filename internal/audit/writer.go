package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"segshare/internal/enclave"
	"segshare/internal/obs"
	"segshare/internal/store"
)

// Overflow selects what Emit does when the bounded queue is full. The
// trade-off is availability vs completeness: dropping keeps the request
// path wait-free under burst (drops are counted and visible in the
// metrics), blocking guarantees a complete trail at the cost of request
// latency coupling to audit-store throughput.
type Overflow int

const (
	// OverflowDrop discards the event and increments
	// segshare_audit_dropped_total. The default.
	OverflowDrop Overflow = iota
	// OverflowBlock blocks the emitter until the queue has room.
	OverflowBlock
)

// Default writer parameters.
const (
	DefaultSegmentEntries  = 256
	DefaultCheckpointEvery = 64
	DefaultBuffer          = 1024
)

// Options tunes the audit writer. The zero value selects the defaults.
type Options struct {
	// SegmentEntries is the number of frames per segment object before
	// the writer rolls to a new one.
	SegmentEntries int
	// CheckpointEvery is the number of records between checkpoints. Each
	// checkpoint costs one monotonic-counter increment, so this knob
	// trades truncation-detection granularity against counter wear
	// (paper §V-E).
	CheckpointEvery int
	// Buffer is the emit queue capacity.
	Buffer int
	// Overflow selects the full-queue policy.
	Overflow Overflow
	// Obs is the metric registry; nil means obs.Default().
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentEntries <= 0 {
		o.SegmentEntries = DefaultSegmentEntries
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	if o.Buffer <= 0 {
		o.Buffer = DefaultBuffer
	}
	if o.Obs == nil {
		o.Obs = obs.Default()
	}
	return o
}

// Log is the append-only audit writer. Emit is safe for concurrent use
// and never does store I/O itself: a single background goroutine drains
// the queue, extends the chain, and persists segments, so the request
// path pays one channel send per audited event.
type Log struct {
	backend store.Backend
	keys    Keys
	counter *enclave.MonotonicCounter
	opt     Options

	recCh  chan Record
	syncCh chan chan error
	quit   chan struct{}
	done   chan struct{}

	closeOnce sync.Once

	// mu guards the chain state below; the loop goroutine writes it,
	// Head() reads it.
	mu          sync.Mutex
	seq         uint64
	head        [sha256.Size]byte
	checkpoints uint64
	lastCounter uint64
	segIdx      int
	segBuf      []byte
	segEntries  int
	sinceCkpt   int
	dirty       bool
	lastErr     error

	reg        *obs.Registry
	dropped    *obs.Counter
	bytesTotal *obs.Counter
	ckptTotal  *obs.Counter
	errsTotal  *obs.Counter
	fsyncNS    *obs.Histogram
}

// Open resumes (or starts) the audit log stored in b. Existing segments
// are structurally verified — framing, chain, checkpoint MACs — and, when
// counter is non-nil, the final checkpoint must match the enclave
// counter's current value; a stored log that trails the counter was
// rolled back or truncated while the enclave was down and Open fails with
// ErrLogRollback. counter may be nil (e.g. in benchmarks), which keeps
// the chain but loses the hardware truncation binding.
func Open(b store.Backend, keys Keys, counter *enclave.MonotonicCounter, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	st, err := walk(b, keys.MAC, nil)
	if err != nil {
		return nil, err
	}
	if counter != nil {
		if cv := counter.Value(); cv != st.lastCounter {
			return nil, fmt.Errorf("%w: last checkpoint counter %d, enclave counter %d",
				ErrLogRollback, st.lastCounter, cv)
		}
	}
	l := &Log{
		backend:     b,
		keys:        keys,
		counter:     counter,
		opt:         opt,
		recCh:       make(chan Record, opt.Buffer),
		syncCh:      make(chan chan error),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
		seq:         st.seq,
		head:        st.head,
		checkpoints: st.checkpoints,
		lastCounter: st.lastCounter,
		segIdx:      st.segments + 1, // always append into a fresh segment
		reg:         opt.Obs,
		dropped:     opt.Obs.Counter("segshare_audit_dropped_total", "Audit events dropped by the overflow policy.", nil),
		bytesTotal:  opt.Obs.Counter("segshare_audit_bytes_total", "Encrypted audit bytes appended.", nil),
		ckptTotal:   opt.Obs.Counter("segshare_audit_checkpoints_total", "Audit checkpoints written (one counter increment each).", nil),
		errsTotal:   opt.Obs.Counter("segshare_audit_errors_total", "Audit append/flush failures.", nil),
		fsyncNS:     opt.Obs.Histogram("segshare_audit_fsync_ns", "Audit segment persist latency (ns).", nil),
	}
	go l.loop()
	return l, nil
}

// Emit queues one event. Under OverflowDrop a full queue drops the event
// (counted); under OverflowBlock the caller waits for room. Events
// emitted concurrently with Close may be discarded.
func (l *Log) Emit(ev Event) {
	rec := Record{
		TimeNanos: time.Now().UnixNano(),
		Event:     ev.Event,
		Decision:  ev.Decision,
		Op:        ev.Op,
		RequestID: ev.RequestID,
		User:      ev.User,
		Target:    ev.Target,
		Group:     ev.Group,
		Path:      ev.Path,
		Detail:    ev.Detail,
	}
	if l.opt.Overflow == OverflowBlock {
		select {
		case l.recCh <- rec:
		case <-l.quit:
		}
		return
	}
	select {
	case l.recCh <- rec:
	default:
		l.dropped.Inc()
	}
}

// Flush blocks until every event queued before the call is persisted and
// returns the first error seen since the previous Flush.
func (l *Log) Flush() error {
	ack := make(chan error, 1)
	select {
	case l.syncCh <- ack:
		return <-ack
	case <-l.done:
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.lastErr
	}
}

// Close drains the queue, writes a final checkpoint, persists the tail
// segment, and stops the writer.
func (l *Log) Close() error {
	l.closeOnce.Do(func() { close(l.quit) })
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// Head is the public, leak-budget-safe summary of the log: counts, the
// chain head (a digest over ciphertext the host already stores), and the
// checkpoint counter. No principals, paths, or record contents.
type Head struct {
	Records     uint64 `json:"records"`
	Checkpoints uint64 `json:"checkpoints"`
	Counter     uint64 `json:"counter"`
	ChainHead   string `json:"chainHead"`
}

// Head returns the current chain head state.
func (l *Log) Head() Head {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Head{
		Records:     l.seq,
		Checkpoints: l.checkpoints,
		Counter:     l.lastCounter,
		ChainHead:   hex.EncodeToString(l.head[:]),
	}
}

// Drops returns the number of events discarded by the overflow policy.
func (l *Log) Drops() uint64 { return l.dropped.Value() }

// Backlog returns how many emitted events are queued but not yet
// persisted, and the queue capacity. The stall watchdog compares the two
// to detect a wedged or lagging writer.
func (l *Log) Backlog() (queued, capacity int) {
	return len(l.recCh), cap(l.recCh)
}

// --- writer goroutine --------------------------------------------------

func (l *Log) loop() {
	defer close(l.done)
	for {
		select {
		case rec := <-l.recCh:
			l.append(rec)
			l.drain()
			l.flush()
		case ack := <-l.syncCh:
			l.drain()
			l.flush()
			l.mu.Lock()
			err := l.lastErr
			l.lastErr = nil
			l.mu.Unlock()
			ack <- err
		case <-l.quit:
			l.drain()
			l.finalCheckpoint()
			l.flush()
			return
		}
	}
}

// drain consumes every queued record without blocking.
func (l *Log) drain() {
	for {
		select {
		case rec := <-l.recCh:
			l.append(rec)
		default:
			return
		}
	}
}

// append seals one record onto the chain and schedules checkpoints and
// segment rolls.
func (l *Log) append(rec Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.Seq = l.seq + 1
	payload, err := sealRecord(l.keys, rec)
	if err != nil {
		l.errsTotal.Inc()
		l.lastErr = err
		return
	}
	l.seq = rec.Seq
	l.appendFrameLocked(kindRecord, rec.Seq, payload)
	l.reg.Counter("segshare_audit_records_total", "Audit records written, by event type.",
		obs.Labels{"event": string(rec.Event)}).Inc()
	l.sinceCkpt++
	if l.sinceCkpt >= l.opt.CheckpointEvery {
		l.checkpointLocked()
	}
	l.rollIfFullLocked()
}

// appendFrameLocked frames a payload, extends the chain, and grows the
// current segment buffer.
func (l *Log) appendFrameLocked(kind byte, seq uint64, payload []byte) {
	l.segBuf = encodeFrame(l.segBuf, kind, seq, payload)
	l.head = chainNext(l.head, kind, seq, payload)
	l.segEntries++
	l.dirty = true
	l.bytesTotal.Add(uint64(frameHeaderLen + len(payload)))
}

// checkpointLocked binds the current chain head to the next monotonic
// counter value and appends the sealed checkpoint frame.
func (l *Log) checkpointLocked() {
	next := l.lastCounter + 1
	if l.counter != nil {
		v, err := l.counter.Increment()
		if err != nil {
			l.errsTotal.Inc()
			l.lastErr = fmt.Errorf("audit: checkpoint counter: %w", err)
			return
		}
		next = v
	}
	c := checkpoint{seq: l.seq, counter: next, head: l.head}
	l.appendFrameLocked(kindCheckpoint, l.seq, encodeCheckpoint(l.keys.MAC, c))
	l.lastCounter = next
	l.checkpoints++
	l.sinceCkpt = 0
	l.ckptTotal.Inc()
}

// finalCheckpoint seals the tail on shutdown so a subsequent truncation
// of the last partial batch is detectable.
func (l *Log) finalCheckpoint() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sinceCkpt > 0 {
		l.checkpointLocked()
	}
}

// rollIfFullLocked starts a new segment once the current one is full.
// The full segment is persisted immediately so rolled segments are never
// dirty.
func (l *Log) rollIfFullLocked() {
	if l.segEntries < l.opt.SegmentEntries {
		return
	}
	l.persistLocked()
	l.segIdx++
	l.segBuf = nil
	l.segEntries = 0
}

// flush persists the current segment if it has unwritten frames.
func (l *Log) flush() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.persistLocked()
}

func (l *Log) persistLocked() {
	if !l.dirty {
		return
	}
	t := obs.StartTimer(l.fsyncNS)
	err := l.backend.Put(segmentName(l.segIdx), l.segBuf)
	t.Stop()
	if err != nil {
		l.errsTotal.Inc()
		l.lastErr = fmt.Errorf("audit: persist segment %d: %w", l.segIdx, err)
		return
	}
	l.dirty = false
}
