// Package segshare is a reproduction of "SeGShare: Secure Group File
// Sharing in the Cloud using Enclaves" (Fuhry et al., DSN 2020): an
// end-to-end encrypted, group-based file sharing service whose trusted
// core runs inside a (simulated) server-side enclave.
//
// The package is a facade over the implementation packages in internal/:
//
//   - A CertAuthority issues client certificates carrying identity
//     information and provisions server certificates to attested
//     enclaves.
//   - A Platform simulates one SGX-capable machine (sealing, attestation,
//     monotonic counters, protected memory).
//   - A Server is one SeGShare enclave plus its untrusted plumbing: the
//     switchless call bridge, the split TLS stack, the trusted file
//     manager, and the access control component.
//   - A Client is the user application: it stores only its certificate
//     and key, and talks WebDAV-flavoured HTTP over mutually
//     authenticated TLS that terminates inside the enclave.
//
// Minimal setup:
//
//	authority, _ := segshare.NewCA("Example CA")
//	platform, _ := segshare.NewPlatform(segshare.PlatformConfig{})
//	cfg := segshare.ServerConfig{
//		CACertPEM:    authority.CertificatePEM(),
//		ContentStore: segshare.NewMemoryStore(),
//		GroupStore:   segshare.NewMemoryStore(),
//	}
//	server, _ := segshare.NewServer(platform, cfg)
//	_ = segshare.Provision(authority, platform, server, cfg, []string{"localhost"})
//	addr, _ := server.ListenAndServe("127.0.0.1:0")
//
//	cred, _ := authority.IssueClientCertificate(segshare.Identity{UserID: "alice"}, 0)
//	alice, _ := segshare.NewClient(segshare.ClientConfig{
//		Addr:       addr.String(),
//		CACertPEM:  authority.CertificatePEM(),
//		Credential: cred,
//	})
//	_ = alice.Upload("/hello.txt", []byte("hi"))
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package segshare

import (
	"time"

	"segshare/internal/ca"
	"segshare/internal/client"
	"segshare/internal/core"
	"segshare/internal/enclave"
	"segshare/internal/replication"
	"segshare/internal/store"
)

// Core types, re-exported.
type (
	// Server is one SeGShare enclave with its untrusted plumbing.
	Server = core.Server
	// ServerConfig configures a Server.
	ServerConfig = core.Config
	// Features selects the optional extensions (paper §V).
	Features = core.Features
	// GuardKind selects the whole-file-system rollback guard (§V-E).
	GuardKind = core.GuardKind
	// Listing is a directory listing with effective permissions.
	Listing = core.Listing
	// ListingEntry is one child in a Listing.
	ListingEntry = core.ListingEntry
	// WhoAmI reports the server-derived identity and memberships.
	WhoAmI = core.WhoAmI
	// WatchdogConfig tunes the stall watchdog (ServerConfig.Watchdog).
	WatchdogConfig = core.WatchdogConfig
	// RecoveryState publishes journal-recovery progress for readiness
	// gating (ServerConfig.Recovery, Server.Recovery).
	RecoveryState = core.RecoveryState
	// AdmissionConfig tunes the adaptive admission controller
	// (ServerConfig.Admission): AIMD concurrency limits per operation
	// class, a bounded wait queue, and priority shedding under overload.
	AdmissionConfig = core.AdmissionConfig

	// Client is the SeGShare user application.
	Client = client.Client
	// ClientConfig configures a Client.
	ClientConfig = client.Config

	// CertAuthority is the trusted authentication service.
	CertAuthority = ca.Authority
	// Identity is the identity information in a client certificate.
	Identity = ca.Identity
	// Credential is a certificate plus private key.
	Credential = ca.Credential

	// Platform simulates one SGX-capable machine.
	Platform = enclave.Platform
	// PlatformConfig tunes the simulated hardware.
	PlatformConfig = enclave.PlatformConfig
	// Measurement identifies enclave code (MRENCLAVE equivalent).
	Measurement = enclave.Measurement
	// BridgeConfig tunes the switchless call bridge.
	BridgeConfig = enclave.BridgeConfig

	// Backend is untrusted object storage.
	Backend = store.Backend
	// ResilientOptions tunes the resilient store I/O layer — per-op
	// deadlines, retry with backoff, and the per-backend circuit breaker
	// (ServerConfig.Resilience).
	ResilientOptions = store.ResilientOptions

	// ReplicationProvider is the root-enclave side of §V-F replication.
	ReplicationProvider = replication.Provider
	// ReplicationRequester is the non-root side of §V-F replication.
	ReplicationRequester = replication.Requester
)

// Whole-file-system guard kinds.
const (
	// GuardNone disables whole-file-system rollback protection.
	GuardNone = core.GuardNone
	// GuardProtectedMemory binds root hashes to protected memory.
	GuardProtectedMemory = core.GuardProtectedMemory
	// GuardCounter binds root hashes to monotonic counters.
	GuardCounter = core.GuardCounter
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrPermissionDenied: the access control component rejected the
	// request.
	ErrPermissionDenied = core.ErrPermissionDenied
	// ErrNotFound: the file, directory, or group does not exist.
	ErrNotFound = core.ErrNotFound
	// ErrExists: the target already exists.
	ErrExists = core.ErrExists
	// ErrIntegrity: stored data was tampered with.
	ErrIntegrity = core.ErrIntegrity
	// ErrRollback: stale (rolled back) data was detected.
	ErrRollback = core.ErrRollback
	// ErrBadRequest: the request was malformed.
	ErrBadRequest = core.ErrBadRequest
	// ErrDegraded: the mutation was rejected because the server is in
	// degraded read-only mode (a store circuit breaker is open).
	ErrDegraded = core.ErrDegraded
	// ErrOverloaded: the admission controller shed the request (queue
	// full or queue-timeout) or the server is draining. Mapped to HTTP
	// 503 with a Retry-After header.
	ErrOverloaded = core.ErrOverloaded
	// ErrCanceled: the request's context ended (client disconnect or
	// deadline) before the work completed. Mapped to HTTP 499.
	ErrCanceled = core.ErrCanceled
	// ErrTooLarge: the request body exceeded the configured cap
	// (ServerConfig.MaxBodyBytes). Mapped to HTTP 413.
	ErrTooLarge = core.ErrTooLarge
)

// NewCA creates a certificate authority with a fresh root certificate.
func NewCA(name string) (*CertAuthority, error) { return ca.New(name) }

// LoadCA restores a certificate authority from PEM files previously
// exported with CertAuthority.MarshalPEM.
func LoadCA(certPEM, keyPEM []byte) (*CertAuthority, error) { return ca.Load(certPEM, keyPEM) }

// NewPlatform creates a simulated SGX platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) { return enclave.NewPlatform(cfg) }

// NewServer launches a SeGShare enclave on the platform.
func NewServer(platform *Platform, cfg ServerConfig) (*Server, error) {
	return core.NewServer(platform, cfg)
}

// NewClient creates a SeGShare user application.
func NewClient(cfg ClientConfig) (*Client, error) { return client.New(cfg) }

// NewMemoryStore returns an in-memory untrusted store.
func NewMemoryStore() Backend { return store.NewMemory() }

// NewDiskStore returns an on-disk untrusted store rooted at dir.
func NewDiskStore(dir string) (Backend, error) { return store.NewDisk(dir) }

// Provision runs the setup-phase protocol of paper §IV-A: the CA attests
// the server's enclave (checking the measurement expected for cfg) and
// installs a server certificate valid for hosts.
func Provision(authority *CertAuthority, platform *Platform, server *Server, cfg ServerConfig, hosts []string) error {
	expected, err := core.ExpectedMeasurement(cfg)
	if err != nil {
		return err
	}
	return authority.ProvisionServer(
		server.Certifier(),
		platform.AttestationPublicKey(),
		expected,
		hosts,
		365*24*time.Hour,
	)
}

// NewReplicationProvider wraps a running root server so replicas can
// obtain SK_r from it (paper §V-F).
func NewReplicationProvider(server *Server) *ReplicationProvider {
	return replication.NewProvider(server.Enclave(), server.RootKey())
}

// RequestRootKey runs the replica side of the §V-F key transfer against a
// provider reachable in-process (the transport-agnostic messages can also
// be shipped over a network). It returns the root key to put in
// ServerConfig.RootKey of the replica.
func RequestRootKey(replicaPlatform *Platform, replicaCfg ServerConfig, provider *ReplicationProvider, rootPlatform *Platform) ([]byte, error) {
	code, err := core.CodeIdentityFor(replicaCfg)
	if err != nil {
		return nil, err
	}
	encl, err := replicaPlatform.Launch(code)
	if err != nil {
		return nil, err
	}
	requester, err := replication.NewRequester(encl)
	if err != nil {
		return nil, err
	}
	resp, err := provider.Respond(requester.Request(), replicaPlatform.AttestationPublicKey())
	if err != nil {
		return nil, err
	}
	return requester.Receive(resp, rootPlatform.AttestationPublicKey())
}

// CopyStore replicates every object from src into dst (backup direction
// of paper §V-G).
func CopyStore(dst, src Backend) error { return store.Copy(dst, src) }

// RestoreStore makes dst an exact replica of src (restore direction of
// paper §V-G).
func RestoreStore(dst, src Backend) error { return store.CopyExact(dst, src) }
