// Package journal implements a sealed write-ahead intent journal that
// makes the file manager's multi-blob mutations atomic-on-recovery.
//
// Every SeGShare mutation is really a small transaction against the
// untrusted stores — content + ACL + parent directory file + rollback
// tree headers — but the backends only offer single-object puts. A fault
// or crash between those puts leaves a state the enclave itself later
// rejects as an integrity violation (paper §IV-C/§V-F assume the trusted
// proxy applies updates atomically, and §V-G's backup story presumes a
// consistent store to copy). The journal closes that window: the file
// manager seals the full intent (every blob to write or delete) into one
// journal object, commits it, applies the writes, and finally marks the
// intent applied. Recovery re-applies any intent that committed but was
// not marked applied; an intent that never finished committing is
// discarded, which rolls the operation back.
//
// Journal records are ordinary objects in a store.Backend, named
// "!journal:<seq>" next to the enclave's other reserved objects. Each
// record is AES-GCM sealed under HKDF(SK_r, "journal/record") with the
// object name as associated data, carries the SHA-256 of its predecessor
// record (hash chain, like internal/audit), and takes its sequence
// number from an enclave monotonic counter so a truncated journal is
// detected: the newest surviving record must sit within one step of the
// counter (the one-step slack is the legitimate crash window between the
// counter increment and the record write).
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"segshare/internal/obs"
	"segshare/internal/pae"
	"segshare/internal/store"
)

// ObjectPrefix is the reserved name prefix of journal records in the
// untrusted store.
const ObjectPrefix = "!journal:"

// ErrCorrupt reports a journal that fails integrity verification:
// undecryptable non-tail records, sequence gaps, broken hash chains, or
// truncation beyond the legitimate crash window. A corrupt journal is
// evidence of host tampering; recovery refuses to proceed.
var ErrCorrupt = errors.New("journal: corrupt")

// ErrClosed reports a commit attempted after the journal was closed by
// the graceful-drain path. Mutations racing a shutdown fail cleanly
// instead of writing intents nobody will apply.
var ErrClosed = errors.New("journal: closed")

// Counter is the enclave monotonic counter the journal binds sequence
// numbers to (satisfied by *enclave.MonotonicCounter).
type Counter interface {
	Increment() (uint64, error)
	Value() uint64
}

// Keys holds the journal sealing key derived from the root key SK_r.
type Keys struct {
	enc pae.Key
}

// DeriveKeys derives the journal keys from the root key (domain-separated
// from every other SK_r use).
func DeriveKeys(rootKey []byte) (Keys, error) {
	k, err := pae.DeriveKey(rootKey, "journal/record", nil)
	if err != nil {
		return Keys{}, err
	}
	return Keys{enc: k}, nil
}

// Write is one blob write inside an intent. Header and Body are the
// plaintext parts of the logical file; the applier re-encrypts them under
// the per-file key, so a replay produces a fresh valid ciphertext.
type Write struct {
	// Store names the namespace the write belongs to ("content"/"group").
	Store string `json:"s"`
	// Name is the logical (pre-hiding) object name.
	Name string `json:"n"`
	// Header is the encoded rollback header, absent when rollback
	// protection is off.
	Header []byte `json:"h,omitempty"`
	// Body is the plaintext body.
	Body []byte `json:"b,omitempty"`
	// NeedsToken marks a namespace-root write whose whole-file-system
	// guard token must be assigned at apply time (a fresh guard commit per
	// apply keeps replays valid).
	NeedsToken bool `json:"t,omitempty"`
}

// Delete is one blob deletion inside an intent. Deletions apply after all
// writes and tolerate already-absent objects, so replays are idempotent.
type Delete struct {
	Store string `json:"s"`
	Name  string `json:"n"`
}

// Intent is one logical operation's journal record.
type Intent struct {
	Seq uint64 `json:"seq"`
	// Op is the operation class (same closed set as the request metrics);
	// it is sealed with the rest of the record.
	Op string `json:"op"`
	// Prev is the SHA-256 of the predecessor record's sealed bytes.
	Prev    []byte   `json:"prev,omitempty"`
	Writes  []Write  `json:"w,omitempty"`
	Deletes []Delete `json:"d,omitempty"`
}

// Options tunes a Journal.
type Options struct {
	// Obs is the metric registry; nil means obs.Default().
	Obs *obs.Registry
	// OnScan, when set, is called during Recover with the number of
	// records verified so far — a progress heartbeat the recovery-overrun
	// watchdog check and the /readyz reason use. It runs with the journal
	// lock held: keep it to a counter store.
	OnScan func(verified int)
}

// RecoverySet is the outcome of scanning the journal at startup:
// committed-but-unapplied intents in sequence order, plus the number of
// torn tail records discarded (commits that crashed before completing).
type RecoverySet struct {
	Pending   []*Intent
	Discarded int
}

// Journal is the intent journal. It is safe for concurrent use, though
// the file manager serializes mutations anyway.
type Journal struct {
	mu       sync.Mutex
	backend  store.Backend
	keys     Keys
	ctr      Counter
	lastHash [sha256.Size]byte
	pending  int
	closed   bool
	onScan   func(verified int)

	commits     *obs.Counter
	commitBytes *obs.Counter
	replayed    *obs.Counter
	discardedC  *obs.Counter
	pendingG    *obs.Gauge
	commitNs    *obs.Histogram
}

func objectName(seq uint64) string {
	return fmt.Sprintf("%s%016x", ObjectPrefix, seq)
}

// Open attaches a journal to the backend. It does not recover pending
// intents — callers run Recover and re-apply what it returns before
// serving requests.
func Open(backend store.Backend, keys Keys, ctr Counter, opts Options) (*Journal, error) {
	reg := opts.Obs
	if reg == nil {
		reg = obs.Default()
	}
	j := &Journal{
		backend:     backend,
		keys:        keys,
		ctr:         ctr,
		onScan:      opts.OnScan,
		commits:     reg.Counter("segshare_journal_commits_total", "Intent records committed to the write-ahead journal.", nil),
		commitBytes: reg.Counter("segshare_journal_commit_bytes_total", "Sealed journal record bytes written.", nil),
		replayed:    reg.Counter("segshare_journal_replayed_total", "Intents re-applied by the recovery pass.", nil),
		discardedC:  reg.Counter("segshare_journal_discarded_total", "Torn tail records discarded by the recovery pass.", nil),
		pendingG:    reg.Gauge("segshare_journal_pending", "Committed intents not yet marked applied.", nil),
		commitNs:    reg.Histogram("segshare_journal_commit_ns", "Journal commit latency (seal + store put, ns).", nil),
	}
	seqs, err := j.scan()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		raw, err := backend.Get(objectName(seqs[len(seqs)-1]))
		if err != nil {
			return nil, fmt.Errorf("journal: read head: %w", err)
		}
		j.lastHash = sha256.Sum256(raw)
	}
	j.pending = len(seqs)
	j.pendingG.Set(int64(j.pending))
	return j, nil
}

// scan lists the journal objects and returns their sequence numbers in
// ascending order.
func (j *Journal) scan() ([]uint64, error) {
	names, err := j.backend.List()
	if err != nil {
		return nil, fmt.Errorf("journal: list: %w", err)
	}
	var seqs []uint64
	for _, name := range names {
		if !strings.HasPrefix(name, ObjectPrefix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(name, ObjectPrefix), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: malformed record object %q", ErrCorrupt, name)
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	return seqs, nil
}

// Commit seals one intent and appends it to the journal, returning the
// assigned sequence number. The caller applies the writes only after
// Commit succeeds and calls MarkApplied when done.
func (j *Journal) Commit(op string, writes []Write, deletes []Delete) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	start := time.Now()
	seq, err := j.ctr.Increment()
	if err != nil {
		return 0, fmt.Errorf("journal: counter: %w", err)
	}
	rec := Intent{Seq: seq, Op: op, Prev: append([]byte(nil), j.lastHash[:]...), Writes: writes, Deletes: deletes}
	plain, err := json.Marshal(&rec)
	if err != nil {
		return 0, fmt.Errorf("journal: encode: %w", err)
	}
	name := objectName(seq)
	blob, err := pae.Encrypt(j.keys.enc, plain, []byte(name))
	if err != nil {
		return 0, fmt.Errorf("journal: seal: %w", err)
	}
	if err := j.backend.Put(name, blob); err != nil {
		return 0, fmt.Errorf("journal: commit %d: %w", seq, err)
	}
	j.lastHash = sha256.Sum256(blob)
	j.pending++
	j.pendingG.Set(int64(j.pending))
	j.commits.Inc()
	j.commitBytes.Add(uint64(len(blob)))
	j.commitNs.ObserveDuration(time.Since(start))
	return seq, nil
}

// MarkApplied removes a fully applied intent from the journal. An
// already-absent record is not an error (a crash between apply and
// MarkApplied replays the intent, whose MarkApplied then races nothing).
func (j *Journal) MarkApplied(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.backend.Delete(objectName(seq))
	if err != nil && !errors.Is(err, store.ErrNotExist) {
		return fmt.Errorf("journal: mark applied %d: %w", seq, err)
	}
	if j.pending > 0 {
		j.pending--
	}
	j.pendingG.Set(int64(j.pending))
	return nil
}

// Close stops the journal accepting new commits. MarkApplied still
// works — in-flight mutations that committed before the close must be
// able to retire their intents, otherwise a clean drain would leave a
// non-empty replay set. Close is idempotent.
func (j *Journal) Close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
}

// PendingCount returns the number of committed-but-unapplied intents.
func (j *Journal) PendingCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pending
}

// Recover scans, unseals, and verifies the journal, returning the
// intents to re-apply in order. Verification requires contiguous
// sequence numbers, an intact hash chain, and no record beyond the
// enclave counter; the newest record alone may be unreadable (a commit
// torn by the crash) and is then deleted and counted as discarded.
//
// In strict mode (normal startup) the newest surviving record must also
// sit within one counter step of the enclave counter — anything farther
// means the host truncated the journal. After a CA-authorized backup
// restoration the counter is legitimately ahead of the restored records,
// so that one check is relaxed (strict=false).
func (j *Journal) Recover(strict bool) (RecoverySet, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var set RecoverySet
	seqs, err := j.scan()
	if err != nil {
		return set, err
	}
	top := j.ctr.Value()
	var lastGood []byte
	for i, seq := range seqs {
		if seq > top {
			return set, fmt.Errorf("%w: record %d beyond enclave counter %d", ErrCorrupt, seq, top)
		}
		if i > 0 && seqs[i-1] != seq-1 {
			return set, fmt.Errorf("%w: gap between records %d and %d", ErrCorrupt, seqs[i-1], seq)
		}
		name := objectName(seq)
		blob, err := j.backend.Get(name)
		if err != nil {
			return set, fmt.Errorf("journal: read record %d: %w", seq, err)
		}
		rec := new(Intent)
		plain, err := pae.Decrypt(j.keys.enc, blob, []byte(name))
		if err == nil {
			if uerr := json.Unmarshal(plain, rec); uerr != nil {
				err = uerr
			}
		}
		if err != nil {
			if i != len(seqs)-1 {
				return set, fmt.Errorf("%w: record %d unreadable", ErrCorrupt, seq)
			}
			// Torn tail: the crash interrupted this record's commit, so the
			// operation never applied — discard it (the rollback half of
			// recovery).
			if derr := j.backend.Delete(name); derr != nil && !errors.Is(derr, store.ErrNotExist) {
				return set, fmt.Errorf("journal: discard torn record %d: %w", seq, derr)
			}
			set.Discarded++
			j.discardedC.Inc()
			break
		}
		if rec.Seq != seq {
			return set, fmt.Errorf("%w: record %d claims sequence %d", ErrCorrupt, seq, rec.Seq)
		}
		if i > 0 {
			want := sha256.Sum256(lastGood)
			if !bytes.Equal(rec.Prev, want[:]) {
				return set, fmt.Errorf("%w: record %d breaks the hash chain", ErrCorrupt, seq)
			}
		}
		lastGood = blob
		set.Pending = append(set.Pending, rec)
		if j.onScan != nil {
			j.onScan(len(set.Pending))
		}
	}
	if strict && len(seqs) > 0 {
		if last := seqs[len(seqs)-1]; top-last > 1 {
			return set, fmt.Errorf("%w: newest record %d but enclave counter %d — journal truncated", ErrCorrupt, last, top)
		}
	}
	if lastGood != nil {
		j.lastHash = sha256.Sum256(lastGood)
	} else {
		j.lastHash = [sha256.Size]byte{}
	}
	j.pending = len(set.Pending)
	j.pendingG.Set(int64(j.pending))
	j.replayed.Add(uint64(len(set.Pending)))
	return set, nil
}
