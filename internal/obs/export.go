package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// WritePrometheus renders all exportable metrics in the Prometheus text
// exposition format (version 0.0.4). Histograms are rendered as
// cumulative *_bucket series with nanosecond le boundaries, plus *_sum
// and *_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var lastName string
	for _, m := range snap {
		if m.Name != lastName {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, sanitizeHelp(m.Help)); err != nil {
					return err
				}
			}
			kind := m.Kind
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, kind); err != nil {
				return err
			}
			lastName = m.Name
		}
		switch m.Kind {
		case "histogram":
			if err := writePromHistogram(w, m); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, promLabels(m.Labels, "", 0), m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m MetricSnapshot) error {
	h := m.Histogram
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(m.Labels, "le", b.UpperBound), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabelsInf(m.Labels), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.Name, promLabels(m.Labels, "", 0), h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m.Labels, "", 0), h.Count)
	return err
}

func promLabels(labels []Label, le string, bound uint64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%d\"", le, bound)
	}
	b.WriteByte('}')
	return b.String()
}

func promLabelsInf(labels []Label) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%q,", l.Key, l.Value)
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

func sanitizeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// VarsSnapshot is the JSON body served at /debug/vars: the full metric
// state plus recorder health.
type VarsSnapshot struct {
	Timestamp     time.Time        `json:"timestamp"`
	Metrics       []MetricSnapshot `json:"metrics"`
	Violations    uint64           `json:"leakBudgetViolations"`
	TracesActive  int64            `json:"tracesActive,omitempty"`
	TracesDropped uint64           `json:"tracesDropped,omitempty"`
}

// Vars builds the /debug/vars snapshot. rec may be nil.
func (r *Registry) Vars(rec *TraceRecorder) VarsSnapshot {
	s := VarsSnapshot{
		Timestamp:  time.Now(),
		Metrics:    r.Snapshot(),
		Violations: r.LeakBudgetViolations(),
	}
	if rec != nil {
		s.TracesActive = rec.Active()
		s.TracesDropped = rec.Dropped()
	}
	return s
}

// WriteJSON writes the /debug/vars snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer, rec *TraceRecorder) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Vars(rec))
}
