package pfs

import (
	"bytes"
	"fmt"
	"testing"

	"segshare/internal/pae"
)

func benchKey(b *testing.B) pae.Key {
	b.Helper()
	key, err := pae.NewRandomKey()
	if err != nil {
		b.Fatal(err)
	}
	return key
}

func BenchmarkEncrypt(b *testing.B) {
	key := benchKey(b)
	for _, size := range []int{64 << 10, 1 << 20, 8 << 20} {
		pt := make([]byte, size)
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := Encrypt(key, []byte("/f"), pt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecrypt(b *testing.B) {
	key := benchKey(b)
	for _, size := range []int{64 << 10, 1 << 20, 8 << 20} {
		blob, err := Encrypt(key, []byte("/f"), make([]byte, size))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := Decrypt(key, []byte("/f"), blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadAtRandomChunk measures verified random access — the
// operation header reads during bucket validation rely on.
func BenchmarkReadAtRandomChunk(b *testing.B) {
	key := benchKey(b)
	blob, err := Encrypt(key, []byte("/f"), make([]byte, 4<<20))
	if err != nil {
		b.Fatal(err)
	}
	r, err := Open(key, []byte("/f"), bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%1024) * ChunkSize
		if _, err := r.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}
