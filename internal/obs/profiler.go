package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ContinuousProfiler captures CPU + heap profile pairs on a cadence
// into a size-bounded on-disk ring, so "what was the CPU doing when it
// got slow" has an answer after the fact without an operator attached.
// Besides the interval, trigger hooks let the watchdog (stall
// transitions) and the SLO engine (fast-burn breaches) capture an extra
// pair at the interesting moment, tagged with the reason and optionally
// a trace id for correlation with /debug/traces and the audit trail.
//
// Leak budget: profiles describe the host Go runtime (function names,
// allocation sites), the same surface /debug/pprof already serves.
// Index metadata is reason (closed set, leak-budget name rules), seq,
// timestamp, trace id, and log2-bucketed sizes.

// TriggerReasonInterval tags cadence-driven captures; triggered
// captures carry the caller's reason (watchdog check name, SLO breach
// speed) which must pass the leak-budget name rules.
const TriggerReasonInterval = "interval"

// ProfilerOptions configures a ContinuousProfiler.
type ProfilerOptions struct {
	// Dir is the ring directory; it is created if missing. Required.
	Dir string
	// Interval is the capture cadence (default 60s).
	Interval time.Duration
	// CPUDuration is how long each CPU profile samples (default 5s,
	// clamped to Interval/2).
	CPUDuration time.Duration
	// MaxBytes bounds the ring's total on-disk size; oldest pairs are
	// evicted past it (default 32 MiB).
	MaxBytes int64
	// Obs, when set, registers capture/eviction counters and the ring
	// size gauge.
	Obs *Registry
}

// ProfileInfo is one ring entry in the /debug/profiles index.
type ProfileInfo struct {
	// Name is the on-disk file name, "<kind>-<seq>.pprof" (class: enum +
	// id composite; the shape is fixed and carries no request data).
	Name string `json:"name"`
	// Kind is "cpu" or "heap" (class: enum).
	Kind string `json:"kind"`
	// Seq is the capture sequence number (class: id).
	Seq uint64 `json:"seq"`
	// TimeUnixMs is the capture time (class: time).
	TimeUnixMs int64 `json:"ts"`
	// SizeLe is the file size (class: bucketed).
	SizeLe uint64 `json:"sizeLe"`
	// Reason says why the capture ran (class: enum — "interval",
	// "slo_fast_burn", "slo_slow_burn", "watchdog_<check>").
	Reason string `json:"reason"`
	// TraceID correlates a triggered capture with a trace (class: id;
	// 0 when the trigger had none).
	TraceID uint64 `json:"traceId,omitempty"`
}

// ProfileInfoFields classifies the index fields for the leak-budget
// meta-test.
var ProfileInfoFields = map[string]FieldClass{
	"Name":       FieldEnum,
	"Kind":       FieldEnum,
	"Seq":        FieldID,
	"TimeUnixMs": FieldTime,
	"SizeLe":     FieldBucketed,
	"Reason":     FieldEnum,
	"TraceID":    FieldID,
}

// ProfileIndex is the /debug/profiles JSON body.
type ProfileIndex struct {
	// MaxBytes is the configured ring bound (class: config).
	MaxBytes int64 `json:"maxBytes"`
	// TotalSizeLe is the ring's current on-disk size (class: bucketed).
	TotalSizeLe uint64 `json:"totalSizeLe"`
	// Entries lists the retained profiles, oldest first.
	Entries []ProfileInfo `json:"entries"`
}

// ProfileIndexFields classifies the index envelope.
var ProfileIndexFields = map[string]FieldClass{
	"MaxBytes":    FieldConfig,
	"TotalSizeLe": FieldBucketed,
	"Entries":     FieldNested,
}

var profileNameRe = regexp.MustCompile(`^(cpu|heap)-(\d+)\.pprof$`)

// VerifyProfileInfo checks one index entry against the leak budget.
func VerifyProfileInfo(p ProfileInfo) error {
	if !profileNameRe.MatchString(p.Name) {
		return &wideFieldError{field: "Name"}
	}
	if p.Kind != "cpu" && p.Kind != "heap" {
		return &wideFieldError{field: "Kind"}
	}
	if err := verifyName(p.Reason, "profile trigger reason"); err != nil {
		return err
	}
	if !IsBucketBound(p.SizeLe) {
		return &wideFieldError{field: "SizeLe"}
	}
	return nil
}

type profileTrigger struct {
	reason  string
	traceID uint64
}

// ContinuousProfiler runs one capture goroutine; see ProfilerOptions.
type ContinuousProfiler struct {
	dir      string
	interval time.Duration
	cpuDur   time.Duration
	maxBytes int64

	mu      sync.Mutex
	entries []ProfileInfo // oldest first
	size    int64
	seq     uint64

	trig    chan profileTrigger
	stop    chan struct{}
	stopped chan struct{}
	once    sync.Once

	captures  *Counter
	evictions *Counter
	dropped   *Counter
	ringBytes *Gauge
}

// NewContinuousProfiler prepares the ring directory (adopting any
// profiles a previous run left there, so the size bound holds across
// restarts) and starts the capture goroutine. Call Stop to halt it.
func NewContinuousProfiler(opt ProfilerOptions) (*ContinuousProfiler, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("obs: profiler needs a directory")
	}
	if opt.Interval <= 0 {
		opt.Interval = 60 * time.Second
	}
	if opt.CPUDuration <= 0 {
		opt.CPUDuration = 5 * time.Second
	}
	if opt.CPUDuration > opt.Interval/2 {
		opt.CPUDuration = opt.Interval / 2
	}
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = 32 << 20
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	p := &ContinuousProfiler{
		dir:      opt.Dir,
		interval: opt.Interval,
		cpuDur:   opt.CPUDuration,
		maxBytes: opt.MaxBytes,
		trig:     make(chan profileTrigger, 4),
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	if opt.Obs != nil {
		p.captures = opt.Obs.Counter("segshare_profiler_captures_total",
			"Profile pairs captured into the on-disk ring.", nil)
		p.evictions = opt.Obs.Counter("segshare_profiler_evictions_total",
			"Profiles evicted from the ring to hold the size bound.", nil)
		p.dropped = opt.Obs.Counter("segshare_profiler_triggers_dropped_total",
			"Capture triggers dropped because one was already pending.", nil)
		p.ringBytes = opt.Obs.Gauge("segshare_profiler_ring_bytes",
			"Current on-disk size of the profile ring.", nil)
	}
	if err := p.adoptExisting(); err != nil {
		return nil, err
	}
	go p.run()
	return p, nil
}

// adoptExisting indexes profiles left by a previous run, so eviction
// accounts for them. Metadata beyond name/size/mtime is gone; reason
// "interval" is assumed.
func (p *ContinuousProfiler) adoptExisting() error {
	des, err := os.ReadDir(p.dir)
	if err != nil {
		return err
	}
	for _, de := range des {
		m := profileNameRe.FindStringSubmatch(de.Name())
		if m == nil {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		var seq uint64
		fmt.Sscanf(m[2], "%d", &seq)
		p.entries = append(p.entries, ProfileInfo{
			Name:       de.Name(),
			Kind:       m[1],
			Seq:        seq,
			TimeUnixMs: info.ModTime().UnixMilli(),
			SizeLe:     BucketCeil(info.Size()),
			Reason:     TriggerReasonInterval,
		})
		p.size += info.Size()
		if seq >= p.seq {
			p.seq = seq + 1
		}
	}
	sort.Slice(p.entries, func(i, j int) bool { return p.entries[i].Seq < p.entries[j].Seq })
	p.evictLocked()
	if p.ringBytes != nil {
		p.ringBytes.Set(p.size)
	}
	return nil
}

// Trigger requests an extra capture pair. Non-blocking: when a capture
// is already pending the trigger is dropped and counted. reason must
// pass the leak-budget name rules (closed caller vocabulary).
func (p *ContinuousProfiler) Trigger(reason string, traceID uint64) {
	if p == nil {
		return
	}
	if verifyName(reason, "profile trigger reason") != nil {
		return
	}
	select {
	case p.trig <- profileTrigger{reason: reason, traceID: traceID}:
	default:
		if p.dropped != nil {
			p.dropped.Inc()
		}
	}
}

// Stop halts the capture goroutine, waiting for an in-progress capture
// to finish.
func (p *ContinuousProfiler) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		close(p.stop)
		<-p.stopped
	})
}

func (p *ContinuousProfiler) run() {
	defer close(p.stopped)
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			p.capturePair(TriggerReasonInterval, 0)
		case t := <-p.trig:
			p.capturePair(t.reason, t.traceID)
		case <-p.stop:
			return
		}
	}
}

// capturePair writes one CPU profile (sampling for cpuDur, or until
// Stop) and one heap profile, then enforces the ring bound.
func (p *ContinuousProfiler) capturePair(reason string, traceID uint64) {
	seq := p.seq
	p.seq++
	cpuName := fmt.Sprintf("cpu-%d.pprof", seq)
	if f, err := os.Create(filepath.Join(p.dir, cpuName)); err == nil {
		// StartCPUProfile fails if another CPU profile is running (e.g. an
		// operator hitting /debug/pprof/profile); skip the CPU half then.
		if err := pprof.StartCPUProfile(f); err == nil {
			select {
			case <-time.After(p.cpuDur):
			case <-p.stop:
			}
			pprof.StopCPUProfile()
			f.Close()
			p.record(cpuName, "cpu", seq, reason, traceID)
		} else {
			f.Close()
			os.Remove(filepath.Join(p.dir, cpuName))
		}
	}
	heapName := fmt.Sprintf("heap-%d.pprof", seq)
	if f, err := os.Create(filepath.Join(p.dir, heapName)); err == nil {
		err := pprof.Lookup("heap").WriteTo(f, 0)
		f.Close()
		if err == nil {
			p.record(heapName, "heap", seq, reason, traceID)
		} else {
			os.Remove(filepath.Join(p.dir, heapName))
		}
	}
	if p.captures != nil {
		p.captures.Inc()
	}
}

// record indexes one written profile and enforces the size bound.
func (p *ContinuousProfiler) record(name, kind string, seq uint64, reason string, traceID uint64) {
	info, err := os.Stat(filepath.Join(p.dir, name))
	if err != nil {
		return
	}
	p.mu.Lock()
	p.entries = append(p.entries, ProfileInfo{
		Name:       name,
		Kind:       kind,
		Seq:        seq,
		TimeUnixMs: time.Now().UnixMilli(),
		SizeLe:     BucketCeil(info.Size()),
		Reason:     reason,
		TraceID:    traceID,
	})
	p.size += info.Size()
	p.evictLocked()
	size := p.size
	p.mu.Unlock()
	if p.ringBytes != nil {
		p.ringBytes.Set(size)
	}
}

// evictLocked removes oldest entries (and their files) until the ring
// fits MaxBytes, always keeping the newest pair. Caller holds p.mu (or
// runs before the goroutine starts).
func (p *ContinuousProfiler) evictLocked() {
	for len(p.entries) > 2 && p.size > p.maxBytes {
		victim := p.entries[0]
		p.entries = p.entries[1:]
		path := filepath.Join(p.dir, victim.Name)
		if info, err := os.Stat(path); err == nil {
			p.size -= info.Size()
		}
		os.Remove(path)
		if p.evictions != nil {
			p.evictions.Inc()
		}
	}
}

// Index snapshots the ring's metadata, oldest first.
func (p *ContinuousProfiler) Index() ProfileIndex {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := ProfileIndex{
		MaxBytes:    p.maxBytes,
		TotalSizeLe: BucketCeil(p.size),
		Entries:     make([]ProfileInfo, len(p.entries)),
	}
	copy(idx.Entries, p.entries)
	return idx
}

// Handler serves the ring under a prefix (mount at /debug/profiles and
// /debug/profiles/): the bare prefix returns the JSON index, and
// /<name> streams one profile. Only names present in the index are
// served — the path never reaches the filesystem unchecked.
func (p *ContinuousProfiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Path
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		if name == "" || name == "profiles" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(p.Index())
			return
		}
		p.mu.Lock()
		known := false
		for _, e := range p.entries {
			if e.Name == name {
				known = true
				break
			}
		}
		p.mu.Unlock()
		if !known {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeFile(w, r, filepath.Join(p.dir, name))
	})
}
