package plaindav

import "os"

// syncDir fsyncs a directory, approximating Apache HTTPD's durable-write
// default on the object directory.
func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	defer f.Close()
	_ = f.Sync()
}
