// Package hescheme implements the Hybrid Encryption (HE) cryptographic
// access-control baseline the paper positions SeGShare against (§III-D,
// Table III, [10] SiRiUS-style): each file is encrypted under a unique
// symmetric file key, and the file key is wrapped for every user that
// should have access (an ECIES-style lockbox per user).
//
// Its defining drawback — the reason for objective P3 — is revocation:
// because permitted users hold the plaintext file key, revoking one user
// requires generating a new key, re-encrypting the whole file, and
// re-wrapping the new key for every remaining user. Revoke returns the
// work performed so the ablation benchmark (EXPERIMENTS.md E7) can
// compare it against SeGShare's constant-size ACL update.
package hescheme

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"segshare/internal/pae"
)

// Baseline errors.
var (
	// ErrUnknownUser is returned for unregistered users.
	ErrUnknownUser = errors.New("hescheme: unknown user")
	// ErrUnknownFile is returned for absent files.
	ErrUnknownFile = errors.New("hescheme: unknown file")
	// ErrNoAccess is returned when a user has no lockbox for a file.
	ErrNoAccess = errors.New("hescheme: no access")
)

type userRec struct {
	// priv simulates the user's client-side private key; the "server"
	// only ever uses the public half for wrapping.
	priv *ecdh.PrivateKey
}

type fileRec struct {
	ciphertext []byte
	// lockboxes maps user ID to the wrapped file key.
	lockboxes map[string][]byte
}

// RevocationCost reports the work one revocation performed.
type RevocationCost struct {
	// ReencryptedBytes is the plaintext volume re-encrypted.
	ReencryptedBytes int64
	// RewrappedKeys is the number of lockboxes recreated.
	RewrappedKeys int
}

// Add accumulates costs across files.
func (c *RevocationCost) Add(other RevocationCost) {
	c.ReencryptedBytes += other.ReencryptedBytes
	c.RewrappedKeys += other.RewrappedKeys
}

// System is an HE file-sharing deployment: a PKI of user keys plus the
// untrusted store of ciphertexts and lockboxes.
type System struct {
	mu    sync.Mutex
	users map[string]*userRec
	files map[string]*fileRec
}

// New creates an empty system.
func New() *System {
	return &System{
		users: make(map[string]*userRec),
		files: make(map[string]*fileRec),
	}
}

// RegisterUser creates a key pair for the user (the PKI step HE systems
// require; paper §III-D).
func (s *System) RegisterUser(id string) error {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return fmt.Errorf("hescheme: user key: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users[id] = &userRec{priv: priv}
	return nil
}

// wrap encrypts fileKey for the user with an ephemeral ECDH exchange.
func (s *System) wrap(user string, fileKey pae.Key) ([]byte, error) {
	rec, ok := s.users[user]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, user)
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	shared, err := eph.ECDH(rec.priv.PublicKey())
	if err != nil {
		return nil, err
	}
	kek, err := pae.DeriveKey(shared, "hescheme-lockbox", eph.PublicKey().Bytes())
	if err != nil {
		return nil, err
	}
	box, err := pae.Encrypt(kek, fileKey[:], []byte(user))
	if err != nil {
		return nil, err
	}
	return append(eph.PublicKey().Bytes(), box...), nil
}

// unwrap recovers the file key from a lockbox using the user's private
// key.
func (s *System) unwrap(user string, lockbox []byte) (pae.Key, error) {
	rec, ok := s.users[user]
	if !ok {
		return pae.Key{}, fmt.Errorf("%w: %s", ErrUnknownUser, user)
	}
	const pubLen = 32
	if len(lockbox) < pubLen {
		return pae.Key{}, errors.New("hescheme: short lockbox")
	}
	ephPub, err := ecdh.X25519().NewPublicKey(lockbox[:pubLen])
	if err != nil {
		return pae.Key{}, err
	}
	shared, err := rec.priv.ECDH(ephPub)
	if err != nil {
		return pae.Key{}, err
	}
	kek, err := pae.DeriveKey(shared, "hescheme-lockbox", lockbox[:pubLen])
	if err != nil {
		return pae.Key{}, err
	}
	raw, err := pae.Decrypt(kek, lockbox[pubLen:], []byte(user))
	if err != nil {
		return pae.Key{}, err
	}
	return pae.KeyFromBytes(raw)
}

// Upload encrypts content under a fresh file key and wraps it for the
// owner and every listed reader.
func (s *System) Upload(owner, path string, content []byte, readers ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fileKey, err := pae.NewRandomKey()
	if err != nil {
		return err
	}
	ct, err := pae.Encrypt(fileKey, content, []byte(path))
	if err != nil {
		return err
	}
	rec := &fileRec{ciphertext: ct, lockboxes: make(map[string][]byte, 1+len(readers))}
	for _, user := range append([]string{owner}, readers...) {
		box, err := s.wrap(user, fileKey)
		if err != nil {
			return err
		}
		rec.lockboxes[user] = box
	}
	s.files[path] = rec
	return nil
}

// Download decrypts the file for a permitted user — who thereby learns
// the plaintext file key, which is exactly why revocation must re-key.
func (s *System) Download(user, path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownFile, path)
	}
	box, ok := rec.lockboxes[user]
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoAccess, user, path)
	}
	fileKey, err := s.unwrap(user, box)
	if err != nil {
		return nil, err
	}
	return pae.Decrypt(fileKey, rec.ciphertext, []byte(path))
}

// Grant wraps the file key for an additional user. Any user with access
// can do this (they hold the key); granter must have access.
func (s *System) Grant(granter, path, user string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownFile, path)
	}
	box, ok := rec.lockboxes[granter]
	if !ok {
		return fmt.Errorf("%w: %s on %s", ErrNoAccess, granter, path)
	}
	fileKey, err := s.unwrap(granter, box)
	if err != nil {
		return err
	}
	newBox, err := s.wrap(user, fileKey)
	if err != nil {
		return err
	}
	rec.lockboxes[user] = newBox
	return nil
}

// Revoke removes a user's access with *immediate* effect: new file key,
// full re-encryption, and re-wrapping for all remaining users (paper
// §III-D). It returns the work performed.
func (s *System) Revoke(granter, path, revoked string) (RevocationCost, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.files[path]
	if !ok {
		return RevocationCost{}, fmt.Errorf("%w: %s", ErrUnknownFile, path)
	}
	granterBox, ok := rec.lockboxes[granter]
	if !ok {
		return RevocationCost{}, fmt.Errorf("%w: %s on %s", ErrNoAccess, granter, path)
	}
	oldKey, err := s.unwrap(granter, granterBox)
	if err != nil {
		return RevocationCost{}, err
	}
	plaintext, err := pae.Decrypt(oldKey, rec.ciphertext, []byte(path))
	if err != nil {
		return RevocationCost{}, err
	}

	newKey, err := pae.NewRandomKey()
	if err != nil {
		return RevocationCost{}, err
	}
	newCT, err := pae.Encrypt(newKey, plaintext, []byte(path))
	if err != nil {
		return RevocationCost{}, err
	}

	delete(rec.lockboxes, revoked)
	cost := RevocationCost{ReencryptedBytes: int64(len(plaintext))}
	newBoxes := make(map[string][]byte, len(rec.lockboxes))
	for user := range rec.lockboxes {
		box, err := s.wrap(user, newKey)
		if err != nil {
			return cost, err
		}
		newBoxes[user] = box
		cost.RewrappedKeys++
	}
	rec.ciphertext = newCT
	rec.lockboxes = newBoxes
	return cost, nil
}

// RevokeEverywhere revokes a user from every file they can access — the
// membership-revocation equivalent, whose cost motivates SeGShare's
// group-based design (paper §I, [23]).
func (s *System) RevokeEverywhere(granter, revoked string) (RevocationCost, error) {
	s.mu.Lock()
	var paths []string
	for path, rec := range s.files {
		if _, ok := rec.lockboxes[revoked]; ok {
			paths = append(paths, path)
		}
	}
	s.mu.Unlock()

	var total RevocationCost
	for _, path := range paths {
		cost, err := s.Revoke(granter, path, revoked)
		total.Add(cost)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// StoredBytes reports the untrusted storage consumed (ciphertexts plus
// lockboxes), for the storage-overhead comparison.
func (s *System) StoredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, rec := range s.files {
		total += int64(len(rec.ciphertext))
		for _, box := range rec.lockboxes {
			total += int64(len(box))
		}
	}
	return total
}
