package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestDirBodyAddRemoveContains(t *testing.T) {
	var d dirBody
	if !d.add("b", false) || !d.add("a", true) || !d.add("c", false) {
		t.Fatal("add returned false for new entries")
	}
	if d.add("b", false) {
		t.Fatal("duplicate add returned true")
	}
	// Same name, different kind, is a distinct entry.
	if !d.add("b", true) {
		t.Fatal("same-name dir entry rejected")
	}
	if !d.contains("a", true) || d.contains("a", false) {
		t.Fatal("contains wrong")
	}
	if !d.remove("c", false) || d.remove("c", false) {
		t.Fatal("remove semantics wrong")
	}
	for i := 1; i < len(d.entries); i++ {
		if !entryLess(d.entries[i-1], d.entries[i]) {
			t.Fatalf("entries not sorted: %v", d.entries)
		}
	}
}

func TestDirBodyCodecRoundTrip(t *testing.T) {
	var d dirBody
	d.add("file.txt", false)
	d.add("docs", true)
	d.add("ünïcode", false)
	got, err := decodeDirBody(d.encode())
	if err != nil {
		t.Fatalf("decodeDirBody: %v", err)
	}
	if len(got.entries) != len(d.entries) {
		t.Fatalf("entries = %v", got.entries)
	}
	for i := range got.entries {
		if got.entries[i] != d.entries[i] {
			t.Fatalf("entry %d = %v, want %v", i, got.entries[i], d.entries[i])
		}
	}

	empty, err := decodeDirBody((&dirBody{}).encode())
	if err != nil || len(empty.entries) != 0 {
		t.Fatalf("empty round trip: %v %v", empty, err)
	}
}

func TestDecodeDirBodyRejectsCorruption(t *testing.T) {
	var d dirBody
	d.add("a", false)
	d.add("b", true)
	valid := d.encode()

	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: nil},
		{name: "wrong tag", give: append([]byte{bodyRaw}, valid[1:]...)},
		{name: "truncated", give: valid[:len(valid)-1]},
		{name: "trailing", give: append(append([]byte{}, valid...), 1)},
		{name: "unsorted", give: (&dirBody{entries: []DirEntry{{Name: "b"}, {Name: "a"}}}).encode()},
		{name: "duplicate", give: (&dirBody{entries: []DirEntry{{Name: "a"}, {Name: "a"}}}).encode()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := decodeDirBody(tt.give); !errors.Is(err, ErrIntegrity) {
				t.Fatalf("want ErrIntegrity, got %v", err)
			}
		})
	}
}

func TestContentBodyCodec(t *testing.T) {
	raw, hName, err := decodeContentBody(encodeRawBody([]byte("data")))
	if err != nil || string(raw) != "data" || hName != "" {
		t.Fatalf("raw body: %q %q %v", raw, hName, err)
	}
	raw, hName, err = decodeContentBody(encodeDedupBody("abc123"))
	if err != nil || raw != nil || hName != "abc123" {
		t.Fatalf("dedup body: %q %q %v", raw, hName, err)
	}
	if _, _, err := decodeContentBody(nil); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("empty body: %v", err)
	}
	if _, _, err := decodeContentBody([]byte{0x7F}); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("unknown tag: %v", err)
	}
}

// Property: any set of (name, isDir) pairs added through the API encodes
// and decodes to the same sorted set.
func TestQuickDirBodyRoundTrip(t *testing.T) {
	prop := func(names []string, dirMask uint64) bool {
		var d dirBody
		ref := make(map[DirEntry]bool)
		for i, nameRaw := range names {
			name := sanitizeName(nameRaw)
			e := DirEntry{Name: name, IsDir: dirMask&(1<<(uint(i)%64)) != 0}
			d.add(e.Name, e.IsDir)
			ref[e] = true
		}
		got, err := decodeDirBody(d.encode())
		if err != nil || len(got.entries) != len(ref) {
			return false
		}
		for _, e := range got.entries {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func sanitizeName(s string) string {
	if s == "" {
		return "x"
	}
	return s
}

func TestContentParent(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{give: "/", want: ""},
		{give: "/.acl", want: "/"},
		{give: "/f", want: "/"},
		{give: "/f.acl", want: "/"},
		{give: "/D/", want: "/"},
		{give: "/D/.acl", want: "/"},
		{give: "/D/f", want: "/D/"},
		{give: "/D/f.acl", want: "/D/"},
		{give: "/D/E/", want: "/D/"},
		{give: "/D/E/.acl", want: "/D/"},
	}
	for _, tt := range tests {
		if got := contentParent(tt.give); got != tt.want {
			t.Errorf("contentParent(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}
