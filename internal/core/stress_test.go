package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"segshare/internal/audit"
	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/store"
)

// newStressFixture builds a server with the audit log on a dedicated
// memory backend (OverflowBlock, so the trail is complete) and returns
// both for offline chain verification after the workload.
func newStressFixture(t *testing.T, features Features, shards int) (*Server, store.Backend) {
	t.Helper()
	authority, err := ca.New("stress CA")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	auditStore := store.NewMemory()
	server, err := NewServer(platform, Config{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: store.NewMemory(),
		GroupStore:   store.NewMemory(),
		Features:     features,
		LockShards:   shards,
		AuditStore:   auditStore,
		Audit:        audit.Options{CheckpointEvery: 16, Overflow: audit.OverflowBlock},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return server, auditStore
}

// TestConcurrentStress hammers the request path with concurrent
// GET/PUT/MOVE/ACL-update traffic on overlapping and disjoint paths and
// asserts the three properties the lock manager and cache must preserve:
// no lost updates (each disjoint path ends at its writer's last value),
// no stale-cache authorization (reads observe only legal outcomes, and
// the dedicated tests in cache_invalidation_test.go pin the
// next-request-visibility guarantee), and an intact audit chain. Run
// with -race; the detector is the real assertion on the lock plans.
func TestConcurrentStress(t *testing.T) {
	cases := []struct {
		name     string
		features Features
		shards   int
	}{
		{"sharded", Features{}, 0},
		{"single-shard", Features{}, 1},
		{"coupled-rollback", Features{RollbackProtection: true, Guard: GuardCounter}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runConcurrentStress(t, tc.features, tc.shards)
		})
	}
}

func runConcurrentStress(t *testing.T, features Features, shards int) {
	server, auditStore := newStressFixture(t, features, shards)
	alice := server.Direct("alice")
	bob := server.Direct("bob")

	const (
		writers = 4
		iters   = 40
	)

	// Corpus: one private tree per disjoint writer, a shared file every
	// overlapping goroutine fights over, and a file that gets moved back
	// and forth.
	if err := alice.Mkdir("/shared/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/shared/f", []byte("seed")); err != nil {
		t.Fatal(err)
	}
	if err := alice.Mkdir("/mv/"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Upload("/mv/f", []byte("movable")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writers; i++ {
		if err := alice.Mkdir(fmt.Sprintf("/w%d/", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := alice.AddUser("bob", "team"); err != nil {
		t.Fatal(err)
	}

	// legalShared holds every value ever written to /shared/f; concurrent
	// reads must return one of them (torn or mixed reads are the failure).
	legalShared := sync.Map{}
	legalShared.Store("seed", true)

	var wg sync.WaitGroup
	fail := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Disjoint writers: each owns /w<i>/f and must win every one of its
	// own writes — the final content is its last value.
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/w%d/f", i)
			for j := 0; j < iters; j++ {
				if err := alice.Upload(path, []byte(fmt.Sprintf("w%d-%d", i, j))); err != nil {
					report("disjoint upload %s: %v", path, err)
					return
				}
				if got, err := alice.Download(path); err != nil {
					report("disjoint download %s: %v", path, err)
					return
				} else if !bytes.HasPrefix(got, []byte(fmt.Sprintf("w%d-", i))) {
					report("disjoint read %s saw foreign content %q", path, got)
					return
				}
			}
		}(i)
	}

	// Overlapping writers: all write the same path with distinct values.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				v := fmt.Sprintf("shared-%d-%d", i, j)
				legalShared.Store(v, true)
				if err := alice.Upload("/shared/f", []byte(v)); err != nil {
					report("shared upload: %v", err)
					return
				}
			}
		}(i)
	}

	// Readers on the contended file: any value ever written is legal,
	// anything else is a torn read or cache-corruption bug.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters*2; j++ {
				got, err := alice.Download("/shared/f")
				if err != nil {
					report("shared download: %v", err)
					return
				}
				if _, ok := legalShared.Load(string(got)); !ok {
					report("shared read saw torn content %q", got)
					return
				}
				if _, err := alice.List("/shared/"); err != nil {
					report("shared list: %v", err)
					return
				}
			}
		}()
	}

	// Mover: shuttles a file between two names. Readers racing the move
	// may legitimately see ErrNotFound at either name — never both a
	// wrong content and never a lock-order deadlock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		src, dst := "/mv/f", "/mv/g"
		for j := 0; j < iters; j++ {
			if err := alice.Move(src, dst); err != nil {
				report("move %s -> %s: %v", src, dst, err)
				return
			}
			src, dst = dst, src
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < iters; j++ {
			for _, p := range []string{"/mv/f", "/mv/g"} {
				got, err := alice.Download(p)
				switch {
				case err == nil:
					if !bytes.Equal(got, []byte("movable")) {
						report("moved file content %q", got)
						return
					}
				case errors.Is(err, ErrNotFound):
				default:
					report("move-racing download %s: %v", p, err)
					return
				}
			}
		}
	}()

	// ACL toggler + authorization reader: alice alternates grant/revoke
	// on the shared file while bob reads it. Bob must see exactly one of
	// two outcomes — a legal value or a clean permission denial.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < iters; j++ {
			spec := PermissionSpec("r")
			if j%2 == 1 {
				spec = "none"
			}
			if err := alice.SetPermission("/shared/f", "team", spec); err != nil {
				report("set permission: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < iters*2; j++ {
			got, err := bob.Download("/shared/f")
			switch {
			case err == nil:
				if _, ok := legalShared.Load(string(got)); !ok {
					report("bob read torn content %q", got)
					return
				}
			case errors.Is(err, ErrPermissionDenied):
			default:
				report("bob download: %v", err)
				return
			}
		}
	}()

	// Membership churn on an unrelated group, stressing the group lock
	// and member-list/group-list cache invalidation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < iters; j++ {
			if err := alice.AddUser("carol", "churn"); err != nil {
				report("add user: %v", err)
				return
			}
			if err := alice.RemoveUser("carol", "churn"); err != nil {
				report("remove user: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// No lost updates: every disjoint path holds its writer's last value.
	for i := 0; i < writers; i++ {
		path := fmt.Sprintf("/w%d/f", i)
		got, err := alice.Download(path)
		if err != nil {
			t.Fatalf("final download %s: %v", path, err)
		}
		want := fmt.Sprintf("w%d-%d", i, iters-1)
		if string(got) != want {
			t.Fatalf("lost update on %s: got %q, want %q", path, got, want)
		}
	}
	// The contended file holds some legally-written value.
	got, err := alice.Download("/shared/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := legalShared.Load(string(got)); !ok {
		t.Fatalf("final shared content %q was never written", got)
	}

	// Intact audit chain: close (seals the final checkpoint) and verify
	// offline with keys re-derived from SK_r, exactly as an operator
	// would. Any dropped, reordered, or torn record fails here.
	keys, err := audit.DeriveKeys(server.RootKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := audit.Verify(auditStore, keys, audit.VerifyOptions{
		ExpectCounter: server.Enclave().Counter("audit-log").Value(),
	})
	if err != nil {
		t.Fatalf("audit chain broken after concurrent workload: %v", err)
	}
	if res.Records == 0 {
		t.Fatal("audit log empty after workload")
	}
}
