package obs

// InFlightRequest is one live request as exported by /debug/requests.
// The registry itself lives in internal/core (it holds core types);
// this is the leak-bounded wire form: op class and current span come
// from closed compile-time sets, ages and waits are log2 bucket bounds,
// and the trace id is a server-assigned sequence number.
type InFlightRequest struct {
	// TraceID joins the live request to /debug/traces, log lines, and
	// audit records (class: id).
	TraceID uint64 `json:"traceId"`
	// Op is the operation class (class: enum).
	Op string `json:"op"`
	// Span names the request's currently-open innermost span, or "" when
	// none is open (class: enum).
	Span string `json:"span,omitempty"`
	// AgeNs is how long the request has been in flight (class: bucketed).
	AgeNs uint64 `json:"ageNsLe"`
	// LockWaitNs is the lock wait accumulated so far (class: bucketed).
	LockWaitNs uint64 `json:"lockWaitNsLe"`
}

// InFlightRequestFields classifies the exported fields for the
// leak-budget meta-test.
var InFlightRequestFields = map[string]FieldClass{
	"TraceID":    FieldID,
	"Op":         FieldEnum,
	"Span":       FieldEnum,
	"AgeNs":      FieldBucketed,
	"LockWaitNs": FieldBucketed,
}

// VerifyInFlightRequest checks one registry snapshot entry against the
// leak budget.
func VerifyInFlightRequest(r InFlightRequest) error {
	if err := verifyLabelValue(r.Op); err != nil {
		return err
	}
	if r.Span != "" {
		if err := verifyLabelValue(r.Span); err != nil {
			return err
		}
	}
	if !IsBucketBound(r.AgeNs) {
		return &wideFieldError{field: "AgeNs"}
	}
	if !IsBucketBound(r.LockWaitNs) {
		return &wideFieldError{field: "LockWaitNs"}
	}
	return nil
}
