package store

import (
	"sync"
)

// Faulty wraps a Backend and injects errors on selected operations. It is
// the failure-injection harness used by tests to verify that I/O faults
// surface as errors instead of corrupting trusted state.
type Faulty struct {
	inner Backend

	mu        sync.Mutex
	failAfter map[string]int // op name -> remaining successes before failing
	failWith  error
}

var (
	_ Backend   = (*Faulty)(nil)
	_ Unwrapper = (*Faulty)(nil)
)

// Unwrap returns the wrapped backend.
func (f *Faulty) Unwrap() Backend { return f.inner }

// NewFaulty wraps inner. Until FailAfter is called it is transparent.
func NewFaulty(inner Backend) *Faulty {
	return &Faulty{inner: inner, failAfter: make(map[string]int)}
}

// FailAfter arranges for the n-th subsequent invocation of op ("put",
// "get", "delete", "rename", "exists", "list") to fail with err, counting
// from 1. n == 1 fails the next call.
func (f *Faulty) FailAfter(op string, n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter[op] = n
	f.failWith = err
}

// Clear removes all pending fault injections.
func (f *Faulty) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter = make(map[string]int)
}

func (f *Faulty) shouldFail(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.failAfter[op]
	if !ok {
		return nil
	}
	n--
	if n > 0 {
		f.failAfter[op] = n
		return nil
	}
	delete(f.failAfter, op)
	return f.failWith
}

// Put implements Backend.
func (f *Faulty) Put(name string, data []byte) error {
	if err := f.shouldFail("put"); err != nil {
		return err
	}
	return f.inner.Put(name, data)
}

// Get implements Backend.
func (f *Faulty) Get(name string) ([]byte, error) {
	if err := f.shouldFail("get"); err != nil {
		return nil, err
	}
	return f.inner.Get(name)
}

// Delete implements Backend.
func (f *Faulty) Delete(name string) error {
	if err := f.shouldFail("delete"); err != nil {
		return err
	}
	return f.inner.Delete(name)
}

// Rename implements Backend.
func (f *Faulty) Rename(oldName, newName string) error {
	if err := f.shouldFail("rename"); err != nil {
		return err
	}
	return f.inner.Rename(oldName, newName)
}

// Exists implements Backend.
func (f *Faulty) Exists(name string) (bool, error) {
	if err := f.shouldFail("exists"); err != nil {
		return false, err
	}
	return f.inner.Exists(name)
}

// List implements Backend.
func (f *Faulty) List() ([]string, error) {
	if err := f.shouldFail("list"); err != nil {
		return nil, err
	}
	return f.inner.List()
}

// TotalBytes implements Backend.
func (f *Faulty) TotalBytes() (int64, error) {
	return f.inner.TotalBytes()
}
