package core

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"sync"
	"time"

	"segshare/internal/ca"
	"segshare/internal/enclave"
	"segshare/internal/store"
)

// Certifier is the trusted certification component (paper Fig. 1, §IV-A):
// on the CA's request it generates a temporary key pair inside the
// enclave, returns a CSR bound to an attestation quote, validates the
// certificate the CA signs, seals the private key, persists both in
// untrusted storage, and rolls the TLS endpoint's identity. The CA may
// repeat the exchange at any time to replace the certificate.
type Certifier struct {
	enclave *enclave.Enclave
	meta    store.Backend
	caPub   *ecdsa.PublicKey

	mu         sync.Mutex
	pendingKey *ecdsa.PrivateKey
	current    *tls.Certificate
	onInstall  func(tls.Certificate)
}

var _ ca.EnclaveCertifier = (*Certifier)(nil)

// errNoCertificate is returned when the enclave has no server certificate
// yet.
var errNoCertificate = errors.New("segshare: no server certificate provisioned")

func newCertifier(e *enclave.Enclave, meta store.Backend, caPub *ecdsa.PublicKey) *Certifier {
	return &Certifier{enclave: e, meta: meta, caPub: caPub}
}

// CertificationRequest implements ca.EnclaveCertifier.
func (c *Certifier) CertificationRequest() (*enclave.Quote, []byte, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("segshare: server key: %w", err)
	}
	csrDER, err := x509.CreateCertificateRequest(rand.Reader, &x509.CertificateRequest{
		Subject: pkix.Name{CommonName: "segshare-enclave"},
	}, key)
	if err != nil {
		return nil, nil, fmt.Errorf("segshare: csr: %w", err)
	}
	quote, err := c.enclave.Quote(ca.CSRReportData(csrDER))
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.pendingKey = key
	c.mu.Unlock()
	return quote, csrDER, nil
}

// InstallCertificate implements ca.EnclaveCertifier: the enclave checks
// the certificate's validity (signed by the hard-coded CA, matching the
// pending key pair, within its validity window), persists it, seals the
// key, and rolls the TLS identity.
func (c *Certifier) InstallCertificate(certDER []byte) error {
	c.mu.Lock()
	key := c.pendingKey
	c.pendingKey = nil
	c.mu.Unlock()
	if key == nil {
		return errors.New("segshare: no pending certification request")
	}
	cert, err := x509.ParseCertificate(certDER)
	if err != nil {
		return fmt.Errorf("segshare: parse server cert: %w", err)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok || !pub.Equal(&key.PublicKey) {
		return errors.New("segshare: server cert does not match enclave key pair")
	}
	if err := verifyCertSignature(c.caPub, cert); err != nil {
		return fmt.Errorf("segshare: server cert not signed by the hard-coded CA: %w", err)
	}
	now := time.Now()
	if now.Before(cert.NotBefore) || now.After(cert.NotAfter) {
		return errors.New("segshare: server cert outside validity window")
	}

	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return fmt.Errorf("segshare: marshal server key: %w", err)
	}
	sealed, err := c.enclave.Seal(keyDER, []byte(metaServerKey))
	if err != nil {
		return err
	}
	if err := c.meta.Put(metaServerCert, certDER); err != nil {
		return fmt.Errorf("segshare: persist server cert: %w", err)
	}
	if err := c.meta.Put(metaServerKey, sealed); err != nil {
		return fmt.Errorf("segshare: persist sealed key: %w", err)
	}
	return c.install(certDER, key, cert)
}

func (c *Certifier) install(certDER []byte, key *ecdsa.PrivateKey, leaf *x509.Certificate) error {
	tlsCert := tls.Certificate{
		Certificate: [][]byte{certDER},
		PrivateKey:  key,
		Leaf:        leaf,
	}
	c.mu.Lock()
	c.current = &tlsCert
	onInstall := c.onInstall
	c.mu.Unlock()
	if onInstall != nil {
		onInstall(tlsCert)
	}
	return nil
}

// loadPersisted restores a previously provisioned certificate after an
// enclave restart. It reports whether one was found.
func (c *Certifier) loadPersisted() (bool, error) {
	certDER, err := c.meta.Get(metaServerCert)
	if errors.Is(err, store.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	sealed, err := c.meta.Get(metaServerKey)
	if errors.Is(err, store.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	keyDER, err := c.enclave.Unseal(sealed, []byte(metaServerKey))
	if err != nil {
		// The sealed key belongs to a different enclave instance (e.g. a
		// replica sharing the central repository, §V-F) or was tampered
		// with. Either way this enclave simply has no usable persisted
		// certificate and must be (re-)provisioned by the CA.
		return false, nil
	}
	key, err := x509.ParseECPrivateKey(keyDER)
	if err != nil {
		return false, fmt.Errorf("segshare: parse server key: %w", err)
	}
	leaf, err := x509.ParseCertificate(certDER)
	if err != nil {
		return false, fmt.Errorf("segshare: parse server cert: %w", err)
	}
	if err := c.install(certDER, key, leaf); err != nil {
		return false, err
	}
	return true, nil
}

// Certificate returns the current TLS certificate.
func (c *Certifier) Certificate() (tls.Certificate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == nil {
		return tls.Certificate{}, errNoCertificate
	}
	return *c.current, nil
}

// setOnInstall registers the endpoint-roll callback.
func (c *Certifier) setOnInstall(fn func(tls.Certificate)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onInstall = fn
}

// caCertFromKey builds a minimal certificate shell so that
// CheckSignatureFrom can be attempted; verification really happens in
// verifyCertSignature.
func caCertFromKey(pub *ecdsa.PublicKey) *x509.Certificate {
	return &x509.Certificate{
		PublicKey:             pub,
		PublicKeyAlgorithm:    x509.ECDSA,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
}

// verifyCertSignature checks cert's signature directly against the CA
// public key hard-coded in the enclave.
func verifyCertSignature(pub *ecdsa.PublicKey, cert *x509.Certificate) error {
	shell := caCertFromKey(pub)
	return cert.CheckSignatureFrom(shell)
}
