package ca

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"math/big"
	"testing"
	"time"

	"segshare/internal/enclave"
)

func newAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := New("Test CA")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestClientCertificateIdentityRoundTrip(t *testing.T) {
	a := newAuthority(t)
	id := Identity{UserID: "alice", Email: "alice@example.com", FullName: "Alice A."}
	cred, err := a.IssueClientCertificate(id, time.Hour)
	if err != nil {
		t.Fatalf("IssueClientCertificate: %v", err)
	}

	block, _ := pem.Decode(cred.CertPEM)
	if block == nil {
		t.Fatal("no PEM block in certificate")
	}
	cert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		t.Fatalf("ParseCertificate: %v", err)
	}
	got, err := IdentityFromCertificate(cert)
	if err != nil {
		t.Fatalf("IdentityFromCertificate: %v", err)
	}
	if got != id {
		t.Fatalf("identity = %+v, want %+v", got, id)
	}

	// The certificate chains to the CA and is a client cert.
	if _, err := cert.Verify(x509.VerifyOptions{
		Roots:     a.CertPool(),
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	}); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	// And is loadable as a TLS key pair.
	if _, err := cred.TLSCertificate(); err != nil {
		t.Fatalf("TLSCertificate: %v", err)
	}
}

func TestIssueClientCertificateRejectsEmptyUserID(t *testing.T) {
	a := newAuthority(t)
	if _, err := a.IssueClientCertificate(Identity{}, time.Hour); !errors.Is(err, ErrBadIdentity) {
		t.Fatalf("want ErrBadIdentity, got %v", err)
	}
}

func TestIdentityFromForeignCertificate(t *testing.T) {
	// A certificate without a CommonName yields ErrBadIdentity.
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{SerialNumber: newSerial(), Subject: pkix.Name{}}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IdentityFromCertificate(cert); !errors.Is(err, ErrBadIdentity) {
		t.Fatalf("want ErrBadIdentity, got %v", err)
	}
}

func TestSerialNumbersAreUnique(t *testing.T) {
	a := newAuthority(t)
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		cred, err := a.IssueClientCertificate(Identity{UserID: "u"}, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		block, _ := pem.Decode(cred.CertPEM)
		cert, err := x509.ParseCertificate(block.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		s := cert.SerialNumber.String()
		if seen[s] {
			t.Fatalf("duplicate serial %s", s)
		}
		seen[s] = true
	}
}

func TestPublicKeyDERRoundTrip(t *testing.T) {
	a := newAuthority(t)
	der, err := a.PublicKeyDER()
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ParsePublicKeyDER(der)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(a.cert.PublicKey) {
		t.Fatal("parsed key differs from CA key")
	}
	if _, err := ParsePublicKeyDER([]byte("junk")); err == nil {
		t.Fatal("junk DER accepted")
	}
}

func TestSignVerifyReset(t *testing.T) {
	a := newAuthority(t)
	pubDER, err := a.PublicKeyDER()
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ParsePublicKeyDER(pubDER)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("root-hash-of-restored-state")
	sig, err := a.SignReset(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyReset(pub, payload, sig) {
		t.Fatal("valid reset signature rejected")
	}
	if VerifyReset(pub, []byte("other"), sig) {
		t.Fatal("reset signature verified for wrong payload")
	}
	other := newAuthority(t)
	otherPub, err := other.PublicKeyDER()
	if err != nil {
		t.Fatal(err)
	}
	op, _ := ParsePublicKeyDER(otherPub)
	if VerifyReset(op, payload, sig) {
		t.Fatal("reset signature verified under wrong CA key")
	}
}

// fakeCertifier simulates the enclave's trusted certification component
// well enough to exercise the provisioning protocol, including dishonest
// variants.
type fakeCertifier struct {
	enclave   *enclave.Enclave
	installed []byte

	// corruptions
	skipBinding bool
	forgeCSR    bool
}

func (f *fakeCertifier) CertificationRequest() (*enclave.Quote, []byte, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	csrDER, err := x509.CreateCertificateRequest(rand.Reader, &x509.CertificateRequest{
		Subject: pkix.Name{CommonName: "segshare-enclave"},
	}, key)
	if err != nil {
		return nil, nil, err
	}
	reportData := CSRReportData(csrDER)
	if f.skipBinding {
		reportData = make([]byte, 32)
	}
	quote, err := f.enclave.Quote(reportData)
	if err != nil {
		return nil, nil, err
	}
	if f.forgeCSR {
		// Swap in a different CSR after quoting.
		key2, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return nil, nil, err
		}
		csrDER, err = x509.CreateCertificateRequest(rand.Reader, &x509.CertificateRequest{
			Subject: pkix.Name{CommonName: "mallory"},
		}, key2)
		if err != nil {
			return nil, nil, err
		}
	}
	return quote, csrDER, nil
}

func (f *fakeCertifier) InstallCertificate(certDER []byte) error {
	f.installed = certDER
	return nil
}

func provisioningFixture(t *testing.T) (*Authority, *enclave.Platform, enclave.CodeIdentity, *enclave.Enclave) {
	t.Helper()
	a := newAuthority(t)
	platform, err := enclave.NewPlatform(enclave.PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pubDER, err := a.PublicKeyDER()
	if err != nil {
		t.Fatal(err)
	}
	code := enclave.CodeIdentity{Name: "segshare", Version: 1, Config: pubDER}
	encl, err := platform.Launch(code)
	if err != nil {
		t.Fatal(err)
	}
	return a, platform, code, encl
}

func TestProvisionServerHappyPath(t *testing.T) {
	a, platform, code, encl := provisioningFixture(t)
	certifier := &fakeCertifier{enclave: encl}
	err := a.ProvisionServer(certifier, platform.AttestationPublicKey(), code.Measurement(), []string{"localhost"}, time.Hour)
	if err != nil {
		t.Fatalf("ProvisionServer: %v", err)
	}
	cert, err := x509.ParseCertificate(certifier.installed)
	if err != nil {
		t.Fatalf("installed cert: %v", err)
	}
	if _, err := cert.Verify(x509.VerifyOptions{
		Roots:     a.CertPool(),
		DNSName:   "localhost",
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}); err != nil {
		t.Fatalf("server cert does not verify: %v", err)
	}
}

func TestProvisionServerRejectsWrongMeasurement(t *testing.T) {
	a, platform, _, _ := provisioningFixture(t)
	evil, err := platform.Launch(enclave.CodeIdentity{Name: "evil", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	certifier := &fakeCertifier{enclave: evil}
	expected := enclave.CodeIdentity{Name: "segshare", Version: 1}.Measurement()
	err = a.ProvisionServer(certifier, platform.AttestationPublicKey(), expected, nil, time.Hour)
	if !errors.Is(err, ErrAttestation) {
		t.Fatalf("want ErrAttestation, got %v", err)
	}
}

func TestProvisionServerRejectsUnboundCSR(t *testing.T) {
	a, platform, code, encl := provisioningFixture(t)
	certifier := &fakeCertifier{enclave: encl, skipBinding: true}
	err := a.ProvisionServer(certifier, platform.AttestationPublicKey(), code.Measurement(), nil, time.Hour)
	if !errors.Is(err, ErrBadCSR) {
		t.Fatalf("want ErrBadCSR, got %v", err)
	}
}

func TestProvisionServerRejectsSwappedCSR(t *testing.T) {
	a, platform, code, encl := provisioningFixture(t)
	certifier := &fakeCertifier{enclave: encl, forgeCSR: true}
	err := a.ProvisionServer(certifier, platform.AttestationPublicKey(), code.Measurement(), nil, time.Hour)
	if !errors.Is(err, ErrBadCSR) {
		t.Fatalf("want ErrBadCSR, got %v", err)
	}
}

var serialCounter int64 = 1000

func newSerial() *big.Int {
	serialCounter++
	return big.NewInt(serialCounter)
}

// parseCredCert parses the certificate of a credential.
func parseCredCert(t *testing.T, cred *Credential) *x509.Certificate {
	t.Helper()
	block, _ := pem.Decode(cred.CertPEM)
	if block == nil {
		t.Fatal("no PEM block")
	}
	cert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}
