// Quickstart: a complete single-process SeGShare deployment — CA,
// simulated SGX platform, enclave server, and one user — uploading and
// downloading a file over mutually authenticated TLS that terminates
// inside the enclave.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"segshare"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The file system owner operates a certificate authority (paper
	//    §III-A): the single trust anchor of the deployment.
	authority, err := segshare.NewCA("Quickstart CA")
	if err != nil {
		return err
	}

	// 2. The cloud provider offers an SGX-capable machine (simulated).
	platform, err := segshare.NewPlatform(segshare.PlatformConfig{})
	if err != nil {
		return err
	}

	// 3. Launch the SeGShare enclave. The CA certificate is part of the
	//    measured code identity; stores are untrusted.
	cfg := segshare.ServerConfig{
		CACertPEM:    authority.CertificatePEM(),
		ContentStore: segshare.NewMemoryStore(),
		GroupStore:   segshare.NewMemoryStore(),
	}
	server, err := segshare.NewServer(platform, cfg)
	if err != nil {
		return err
	}
	defer server.Close()
	fmt.Println("enclave measurement:", server.Measurement())

	// 4. Setup phase (paper §IV-A): the CA attests the enclave and
	//    provisions its server certificate.
	if err := segshare.Provision(authority, platform, server, cfg, []string{"localhost"}); err != nil {
		return err
	}
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Println("serving on", addr)

	// 5. The CA issues alice a client certificate carrying her identity.
	cred, err := authority.IssueClientCertificate(segshare.Identity{
		UserID: "alice",
		Email:  "alice@example.com",
	}, 24*time.Hour)
	if err != nil {
		return err
	}

	// 6. Alice's user application needs only the credential — constant
	//    client storage, no special hardware (objectives P1, F5).
	alice, err := segshare.NewClient(segshare.ClientConfig{
		Addr:       addr.String(),
		CACertPEM:  authority.CertificatePEM(),
		Credential: cred,
	})
	if err != nil {
		return err
	}
	defer alice.Close()

	// 7. Upload, list, download.
	payload := []byte("end-to-end encrypted: only the enclave ever sees this plaintext")
	if err := alice.Mkdir("/home/"); err != nil {
		return err
	}
	if err := alice.Upload("/home/note.txt", payload); err != nil {
		return err
	}
	listing, err := alice.List("/home/")
	if err != nil {
		return err
	}
	for _, e := range listing.Entries {
		fmt.Printf("listed: %s (perm=%s)\n", e.Name, e.Permission)
	}
	got, err := alice.Download("/home/note.txt")
	if err != nil {
		return err
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("round trip mismatch")
	}
	fmt.Println("downloaded:", string(got))

	// The store only ever held ciphertext; check for yourself:
	names, err := cfg.ContentStore.List()
	if err != nil {
		return err
	}
	blob, err := cfg.ContentStore.Get(names[0])
	if err != nil {
		return err
	}
	if bytes.Contains(blob, []byte("encrypted")) {
		return fmt.Errorf("plaintext leaked to untrusted storage")
	}
	fmt.Printf("untrusted store holds %d objects, all ciphertext\n", len(names))
	return nil
}
